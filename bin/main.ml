(* prudence-repro: command-line driver for the paper reproduction. *)

let list_experiments () =
  Format.printf "experiments:@.";
  List.iter
    (fun (e : Core.Experiments.experiment) ->
      Format.printf "  %-12s %-14s %s@." e.Core.Experiments.id
        e.Core.Experiments.paper_ref e.Core.Experiments.title)
    Core.Experiments.all;
  Format.printf
    "  %-12s %-14s aliases: run the apps experiment@." "fig7..fig13"
    "Figs. 7-13";
  0

(* --sched is process-global: every engine the command builds (including
   the ones buried inside experiments and sweeps) picks it up via
   [Engine.default_sched]. *)
let set_sched s =
  match Core.Sim.Engine.sched_of_string s with
  | Some sched -> Core.Sim.Engine.default_sched := sched
  | None ->
      Format.eprintf "unknown scheduler %S (wheel or heap)@." s;
      exit 2

let params sched scale seed cpus runs =
  if cpus <= 0 then begin
    Format.eprintf "--cpus must be positive (got %d)@." cpus;
    exit 2
  end;
  if runs <= 0 then begin
    Format.eprintf "--runs must be positive (got %d)@." runs;
    exit 2
  end;
  set_sched sched;
  { Core.Experiments.scale; seed; cpus; runs; trace = None }

let run_experiment ids p =
  let ids = if ids = [] then [ "all" ] else ids in
  let experiments =
    if ids = [ "all" ] then Core.Experiments.all
    else
      List.map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> e
          | None ->
              Format.eprintf "unknown experiment %S (try `list`)@." id;
              exit 2)
        ids
  in
  (* Dedupe (fig7..fig13 all alias apps). *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e : Core.Experiments.experiment) ->
      if not (Hashtbl.mem seen e.Core.Experiments.id) then begin
        Hashtbl.add seen e.Core.Experiments.id ();
        Format.printf "running %s (%s)...@.@." e.Core.Experiments.id
          e.Core.Experiments.paper_ref;
        let reports = e.Core.Experiments.run p in
        Core.Metrics.Report.print_all Format.std_formatter reports
      end)
    experiments;
  0

let trace_experiment id out want_hists ring p =
  if ring <= 0 then begin
    Format.eprintf "--ring must be positive (got %d)@." ring;
    exit 2
  end;
  let p = { p with Core.Experiments.trace = Some ring } in
  match Core.Experiments.run_traced p id with
  | None ->
      Format.eprintf "experiment %S cannot be traced; traceable: %s@." id
        (String.concat ", " Core.Experiments.traceable);
      2
  | Some runs ->
      let out =
        match out with Some f -> f | None -> Printf.sprintf "trace-%s.json" id
      in
      Core.Trace.Chrome.write_file out runs;
      List.iter
        (fun (label, tr) ->
          Format.printf "== %s: %d events retained (%d dropped)@." label
            (Core.Trace.total_events tr)
            (Core.Trace.total_dropped tr);
          let hist title h =
            Format.printf "%s@."
              (Core.Metrics.Histview.render ~title:(label ^ " " ^ title) h)
          in
          hist "defer->reuse lifetime" (Core.Trace.lifetime tr);
          if want_hists then begin
            hist "grace-period latency" (Core.Trace.gp_latency tr);
            hist "node-lock wait" (Core.Trace.lock_wait tr);
            hist "allocation-path cost" (Core.Trace.alloc_cost tr)
          end)
        runs;
      (let p50 (_, tr) = Core.Trace.Hist.percentile (Core.Trace.lifetime tr) 50. in
       match runs with
       | [ slub; prud ] when p50 slub > 0 ->
           Format.printf
             "median defer->reuse lifetime: %s (slub) vs %s (prudence), %.1fx@."
             (Core.Metrics.Histview.fmt_ns (p50 slub))
             (Core.Metrics.Histview.fmt_ns (p50 prud))
             (float_of_int (p50 slub) /. float_of_int (max 1 (p50 prud)))
       | _ -> ());
      Format.printf "wrote %s (load it at https://ui.perfetto.dev or \
                     chrome://tracing)@." out;
      0

let parse_scenarios names =
  let names = if names = [] then [ "all" ] else names in
  if names = [ "all" ] then Core.Workloads.Chaos.all_scenarios
  else
    List.map
      (fun name ->
        match Core.Workloads.Chaos.scenario_of_string name with
        | Some s -> s
        | None ->
            Format.eprintf "unknown scenario %S; scenarios: %s, all@." name
              (String.concat ", "
                 (List.map Core.Workloads.Chaos.scenario_name
                    Core.Workloads.Chaos.all_scenarios));
            exit 2)
      names

let parse_kinds alloc =
  match alloc with
  | "both" -> [ Core.Workloads.Env.Baseline; Core.Workloads.Env.Prudence_alloc ]
  | "all" -> Core.Workloads.Env.all_kinds
  | s -> (
      match Core.Workloads.Env.kind_of_string s with
      | Some k -> [ k ]
      | None ->
          Format.eprintf
            "unknown allocator %S (slub, prudence, ebr-debra, hyaline, both, \
             all)@."
            s;
          exit 2)

let chaos_params ring p =
  if ring <= 0 then begin
    Format.eprintf "--ring must be positive (got %d)@." ring;
    exit 2
  end;
  {
    Core.Chaos.seed = p.Core.Experiments.seed;
    cpus = p.Core.Experiments.cpus;
    scale = p.Core.Experiments.scale;
    ring;
  }

let run_chaos names alloc ring bundle_dir p =
  let scenarios = parse_scenarios names in
  let kinds = parse_kinds alloc in
  let cp = chaos_params ring p in
  Core.Metrics.Report.print Format.std_formatter
    (Core.Chaos.report ~kinds ?bundle_dir cp scenarios);
  0

let run_anatomy name alloc ring json p =
  let scenario =
    match Core.Workloads.Chaos.scenario_of_string name with
    | Some s -> s
    | None ->
        Format.eprintf "unknown scenario %S; scenarios: %s@." name
          (String.concat ", "
             (List.map Core.Workloads.Chaos.scenario_name
                Core.Workloads.Chaos.all_scenarios));
        exit 2
  in
  let kinds =
    match alloc with
    | "both" | "all" -> Core.Workloads.Env.all_kinds
    | _ -> parse_kinds alloc
  in
  let cp = chaos_params ring p in
  let results = Core.Anatomy.run ~kinds cp scenario in
  if json then
    print_string
      (String.concat "\n" (Core.Anatomy.json_of_results scenario results)
      ^ "\n")
  else
    Core.Metrics.Report.print Format.std_formatter
      (Core.Anatomy.report_results scenario results);
  if Core.Anatomy.sum_identity_ok results then 0 else 1

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_postmortem file =
  match read_whole_file file with
  | exception Sys_error e ->
      Format.eprintf "postmortem: %s@." e;
      2
  | content -> (
      match Core.Obs.Bundle.render content with
      | Ok text ->
          print_string text;
          0
      | Error e ->
          Format.eprintf "postmortem: %s@." e;
          2)

let run_tournament names alloc ring out p =
  let module T = Core.Tournament in
  let scenarios = parse_scenarios names in
  let kinds = match alloc with "both" | "all" -> Core.Workloads.Env.all_kinds
    | _ -> parse_kinds alloc
  in
  let cp = chaos_params ring p in
  let cells = T.run ~kinds cp scenarios in
  Core.Metrics.Report.print Format.std_formatter (T.report_cells kinds cells);
  (match out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (T.to_ndjson kinds cells));
      Format.printf "wrote %s (%d scheme rows + summary)@." file
        (List.length cells));
  let violations =
    List.fold_left
      (fun acc (c : T.cell) ->
        acc + c.T.outcome.Core.Workloads.Chaos.safety_violations)
      0 cells
  in
  if violations = 0 then 0 else 1

let run_stat alloc duration_ms sample_every capacity watch series format
    registry_table pages scale seed cpus sched =
  let module Live = Core.Stats.Live in
  let module Providers = Core.Stats.Providers in
  set_sched sched;
  if cpus <= 0 then begin
    Format.eprintf "--cpus must be positive (got %d)@." cpus;
    exit 2
  end;
  if duration_ms <= 0 then begin
    Format.eprintf "--duration-ms must be positive (got %d)@." duration_ms;
    exit 2
  end;
  if sample_every <= 0 then begin
    Format.eprintf "--sample-every must be positive (got %d ns)@." sample_every;
    exit 2
  end;
  if capacity <= 0 then begin
    Format.eprintf "--capacity must be positive (got %d)@." capacity;
    exit 2
  end;
  if pages <= 0 then begin
    Format.eprintf "--pages must be positive (got %d)@." pages;
    exit 2
  end;
  let ext =
    match format with
    | "csv" | "ndjson" -> format
    | s ->
        Format.eprintf "unknown series format %S (csv, ndjson)@." s;
        exit 2
  in
  let kinds = parse_kinds alloc in
  let series_file label =
    match series with
    | None -> None
    | Some base ->
        if List.length kinds = 1 then Some base
        else
          (* Both allocators share one --series flag: suffix the label. *)
          Some
            (match Filename.chop_suffix_opt ~suffix:("." ^ ext) base with
            | Some stem -> Printf.sprintf "%s-%s.%s" stem label ext
            | None -> Printf.sprintf "%s-%s" base label)
  in
  List.iter
    (fun kind ->
      let cfg =
        {
          Live.kind;
          seed;
          cpus;
          scale;
          duration_ns = duration_ms * 1_000_000;
          sample_every_ns = sample_every;
          capacity;
          total_pages = pages;
        }
      in
      let on_watch =
        if not watch then None
        else
          Some
            (fun ~time_ns ~snapshot ->
              Format.printf "---- %s @ %.1f ms (virtual) ----@.%s@."
                (Core.Workloads.Env.kind_label kind)
                (float_of_int time_ns /. 1e6)
                snapshot)
      in
      let r = Live.run ?on_watch cfg in
      Format.printf "==== %s: final state after %.0f ms virtual ====@."
        r.Live.label
        (float_of_int (duration_ms * 1_000_000) *. scale /. 1e6);
      Format.printf "%s@." (Providers.snapshot ~watch:r.Live.watch r.Live.env);
      if registry_table then
        Format.printf "%s@." (Core.Stats.Registry.table r.Live.registry);
      Format.printf "workload: %d list updates%s@." r.Live.updates
        (match r.Live.oom_at_ns with
        | None -> ""
        | Some t -> Printf.sprintf "; OOM at %.1f ms" (float_of_int t /. 1e6));
      (match series_file r.Live.label with
      | None -> ()
      | Some file ->
          let body =
            match ext with
            | "csv" -> Core.Sim.Sampler.to_csv r.Live.sampler
            | _ -> Core.Sim.Sampler.to_ndjson r.Live.sampler
          in
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc body);
          Format.printf "wrote %s (%d samples, %d dropped)@." file
            (Core.Sim.Sampler.rows r.Live.sampler)
            (Core.Sim.Sampler.dropped r.Live.sampler));
      Format.printf "@.")
    kinds;
  0

let parse_perf_scenarios names =
  let module Wc = Wallclock in
  let names = if names = [] then [ "all" ] else names in
  if names = [ "all" ] then Wc.all_scenarios
  else
    List.map
      (fun name ->
        match Wc.scenario_of_string name with
        | Some s -> s
        | None ->
            Format.eprintf "unknown perf scenario %S; scenarios: %s, all@."
              name
              (String.concat ", " (List.map Wc.scenario_name Wc.all_scenarios));
            exit 2)
      names

let run_regress baseline_file current_file tolerance json =
  let module B = Core.Stats.Bench_json in
  if tolerance < 0. then begin
    Format.eprintf "--tolerance-pct must be non-negative (got %g)@." tolerance;
    exit 2
  end;
  (* With --json, every exit path still emits the one summary NDJSON
     line automation keys on — a missing baseline or config mismatch
     reports as an error summary, not silent stderr. *)
  let fail_with ~code msg =
    Format.eprintf "%s@." msg;
    if json then
      print_endline
        (Core.Metrics.Json.to_string (B.summary_to_json ~error:msg []));
    code
  in
  let load what file k =
    match B.load_file file with
    | Ok t -> k t
    | Error e ->
        fail_with ~code:2 (Printf.sprintf "cannot load %s %s: %s" what file e)
  in
  load "baseline" baseline_file @@ fun baseline ->
  load "current" current_file @@ fun current ->
  match B.config_mismatch ~baseline ~current with
  | Some msg -> fail_with ~code:1 msg
  | None ->
      let drifts =
        B.compare_runs ~default_tolerance_pct:tolerance ~baseline ~current ()
      in
      let failed = B.failures drifts in
      if json then begin
        List.iter
          (fun d ->
            print_endline (Core.Metrics.Json.to_string (B.drift_to_json d)))
          drifts;
        print_endline (Core.Metrics.Json.to_string (B.summary_to_json drifts))
      end
      else Format.printf "%a" B.pp_drifts drifts;
      if failed = [] then 0
      else begin
        Format.eprintf "regression gate FAILED: %d metric(s) regressed or \
                        missing@."
          (List.length failed);
        1
      end

let run_perf names out p =
  let module Wc = Wallclock in
  let scenarios = parse_perf_scenarios names in
  let wp =
    {
      Wc.scale = p.Core.Experiments.scale;
      seed = p.Core.Experiments.seed;
      cpus = p.Core.Experiments.cpus;
      runs = p.Core.Experiments.runs;
    }
  in
  let ms = Wc.run_all ~scenarios wp in
  Format.printf "%s@." (Wc.table ms);
  Core.Stats.Bench_json.write_file out (Wc.to_bench wp ms);
  Format.printf
    "wrote %s (deterministic counters gate via `regress --tolerance-pct 0`; \
     wall timings are info-only)@."
    out;
  0

let run_prof names top by folded json p =
  let module Pr = Profrun in
  if top < 0 then begin
    Format.eprintf "--top must be non-negative (got %d)@." top;
    exit 2
  end;
  let by =
    match Pr.sort_key_of_string by with
    | Some k -> k
    | None ->
        Format.eprintf "unknown sort key %S (time, alloc)@." by;
        exit 2
  in
  let scenarios = parse_perf_scenarios names in
  let wp =
    {
      Wallclock.scale = p.Core.Experiments.scale;
      seed = p.Core.Experiments.seed;
      cpus = p.Core.Experiments.cpus;
      runs = p.Core.Experiments.runs;
    }
  in
  let rs = Pr.run_all ~scenarios wp in
  if json then print_string (Pr.to_ndjson rs)
  else
    List.iter
      (fun r ->
        let top = if top = 0 then None else Some top in
        Format.printf "%s@." (Pr.render ?top ~by r))
      rs;
  (match folded with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> List.iter (fun r -> output_string oc (Pr.folded ~by r)) rs);
      if not json then
        Format.printf
          "wrote %s (folded call paths; feed to flamegraph.pl or \
           speedscope)@."
          file);
  0

let parse_mutation mutate =
  let module Sweep = Core.Check.Sweep in
  match Sweep.mutation_of_string mutate with
  | Some m -> m
  | None ->
      Format.eprintf "unknown mutation %S (none, %s)@." mutate
        (String.concat ", " (List.map Sweep.mutation_name Sweep.all_mutations));
      exit 2

let parse_oracles disabled =
  let module Sweep = Core.Check.Sweep in
  List.fold_left
    (fun (o : Sweep.oracles) name ->
      match name with
      | "page-reuse" -> { o with Sweep.page_reuse = false }
      | "early-reuse" -> { o with Sweep.early_reuse = false }
      | "missed-qs" -> { o with Sweep.missed_qs = false }
      | "cb-conservation" -> { o with Sweep.cb_conservation = false }
      | _ ->
          Format.eprintf
            "unknown oracle %S (page-reuse, early-reuse, missed-qs, \
             cb-conservation)@."
            name;
          exit 2)
    Sweep.all_oracles disabled

let parse_plan = function
  | None -> None
  | Some s -> (
      match Core.Faults.Plan.of_compact s with
      | Ok p -> Some p
      | Error e ->
          Format.eprintf "bad --plan: %s@." e;
          exit 2)

let run_check names alloc sweeps shuffle_seed mutate duration_ms pages
    disabled plan skip_diff bundle_dir json seed cpus sched =
  let module Sweep = Core.Check.Sweep in
  let module J = Core.Metrics.Json in
  set_sched sched;
  if sweeps <= 0 || duration_ms <= 0 || pages <= 0 || cpus <= 0 then begin
    Format.eprintf
      "--sweeps, --duration-ms, --pages and --cpus must be positive@.";
    exit 2
  end;
  let scenarios = parse_scenarios names in
  let kinds = parse_kinds alloc in
  let mutation = parse_mutation mutate in
  let cfg =
    {
      Sweep.scenarios;
      kinds;
      sweeps;
      base_shuffle_seed = shuffle_seed;
      seed;
      cpus;
      duration_ns = duration_ms * 1_000_000;
      total_pages = pages;
      mutation;
      oracles = parse_oracles disabled;
      plan = parse_plan plan;
      bundle_dir;
    }
  in
  if not json then
    Format.printf
      "sweeping %d scenario(s) x %d allocator(s) x %d shuffled schedule(s) \
       (shuffle seeds %d..%d, workload seed %d)...@."
      (List.length scenarios) (List.length kinds) sweeps shuffle_seed
      (shuffle_seed + sweeps - 1)
      seed;
  let last = ref None in
  let progress (case : Sweep.case) =
    let key = (case.Sweep.scenario, case.Sweep.kind) in
    if (not json) && !last <> Some key then begin
      last := Some key;
      Format.printf "  %s/%s@."
        (Core.Workloads.Chaos.scenario_name case.Sweep.scenario)
        (Core.Workloads.Env.kind_label case.Sweep.kind)
    end
  in
  let verdicts = Sweep.run ~progress cfg in
  let sweep_failed = List.exists (fun v -> not (Sweep.ok v)) verdicts in
  if json then
    List.iter
      (fun (v : Sweep.verdict) ->
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("type", J.Str "verdict");
                  ( "scenario",
                    J.Str
                      (Core.Workloads.Chaos.scenario_name
                         v.Sweep.case.Sweep.scenario) );
                  ( "alloc",
                    J.Str (Core.Workloads.Env.kind_label v.Sweep.case.Sweep.kind)
                  );
                  ("shuffle_seed", J.Int v.Sweep.case.Sweep.shuffle_seed);
                  ("ok", J.Bool (Sweep.ok v));
                  ( "oracle_violations",
                    J.Int (List.length v.Sweep.oracle_violations) );
                  ( "reader_violations",
                    J.Int (List.length v.Sweep.reader_violations) );
                  ( "stall_violations",
                    J.Int (List.length v.Sweep.stall_violations) );
                  ("cb_violations", J.Int (List.length v.Sweep.cb_violations));
                  ("audit_failures", J.Int (List.length v.Sweep.audit_failures));
                  ("dropped_violations", J.Int v.Sweep.dropped_violations);
                  ("oracle_events", J.Int v.Sweep.oracle_events);
                  ("updates", J.Int v.Sweep.updates);
                  ("survived", J.Bool v.Sweep.survived);
                  ("replay", J.Str v.Sweep.replay);
                  ( "bundle",
                    match v.Sweep.bundle with
                    | Some path -> J.Str path
                    | None -> J.Null );
                ])))
      verdicts
  else Format.printf "@.%a@." Sweep.summary verdicts;
  let diff_failed =
    if skip_diff then false
    else begin
      let trace = Core.Check.Differential.gen ~seed () in
      let r = Core.Check.Differential.run ~seed trace in
      if json then
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("type", J.Str "differential");
                  ("ok", J.Bool r.Core.Check.Differential.ok);
                  ( "mismatches",
                    J.Int (List.length r.Core.Check.Differential.mismatches) );
                ]))
      else Format.printf "%a@." Core.Check.Differential.pp_result r;
      not r.Core.Check.Differential.ok
    end
  in
  let failed = sweep_failed || diff_failed in
  if json then
    print_endline
      (J.to_string
         (J.Obj
            [
              ("type", J.Str "summary");
              ("cases", J.Int (List.length verdicts));
              ( "failed_cases",
                J.Int
                  (List.length
                     (List.filter (fun v -> not (Sweep.ok v)) verdicts)) );
              ("differential", J.Bool (not skip_diff));
              ("ok", J.Bool (not failed));
            ]));
  if failed then 1 else 0

let run_fuzz_differential base fcfg alloc json =
  let module Fuzz = Core.Check.Fuzz in
  let module Diff = Core.Check.Differential in
  let module J = Core.Metrics.Json in
  let kinds =
    match alloc with
    | "both" | "all" -> Core.Workloads.Env.all_kinds
    | _ -> base.Core.Check.Sweep.kinds
  in
  if not json then
    Format.printf
      "differential fuzzing: budget %d, fuzz seed %d, %d backend(s) (%s)...@."
      fcfg.Fuzz.budget fcfg.Fuzz.seed (List.length kinds)
      (String.concat ", " (List.map Core.Workloads.Env.kind_label kinds));
  let progress (r : Fuzz.diff_record) =
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("type", J.Str "diff_case");
                ("exec", J.Int r.Fuzz.d_exec);
                ("trace_seed", J.Int r.Fuzz.trace_seed);
                ("ops", J.Int r.Fuzz.n_ops);
                ("slots", J.Int r.Fuzz.n_slots);
                ("gap_ns", J.Int r.Fuzz.gap_ns);
                ("ok", J.Bool r.Fuzz.result.Diff.ok);
                ( "mismatches",
                  J.Int (List.length r.Fuzz.result.Diff.mismatches) );
              ]))
    else if not r.Fuzz.result.Diff.ok then
      Format.printf "  #%-4d trace seed %d (%d ops, %d slots) DIVERGED@."
        r.Fuzz.d_exec r.Fuzz.trace_seed r.Fuzz.n_ops r.Fuzz.n_slots
  in
  let dr = Fuzz.run_differential ~progress ~kinds fcfg in
  let failed = dr.Fuzz.diff_failure <> None in
  if json then
    print_endline
      (J.to_string
         (J.Obj
            [
              ("type", J.Str "summary");
              ("mode", J.Str "differential");
              ("executed", J.Int dr.Fuzz.diff_executed);
              ("budget", J.Int fcfg.Fuzz.budget);
              ( "backends",
                J.List
                  (List.map
                     (fun k -> J.Str (Core.Workloads.Env.kind_label k))
                     kinds) );
              ("failure", J.Bool failed);
              ("ok", J.Bool (not failed));
            ]))
  else begin
    Format.printf "@.%d differential case(s) executed across %d backend(s)@."
      dr.Fuzz.diff_executed (List.length kinds);
    match dr.Fuzz.diff_failure with
    | None -> Format.printf "no divergence, every verdict clean.@."
    | Some r ->
        Format.printf "divergence at execution %d:@.%a@." r.Fuzz.d_exec
          Diff.pp_result r.Fuzz.result
  end;
  if failed then 1 else 0

let run_fuzz_cross_sched fcfg json =
  let module Fuzz = Core.Check.Fuzz in
  let module Sweep = Core.Check.Sweep in
  let module J = Core.Metrics.Json in
  if not json then
    Format.printf
      "cross-scheduler fuzzing: budget %d input(s) x {heap, wheel}, fuzz \
       seed %d...@."
      fcfg.Fuzz.budget fcfg.Fuzz.seed;
  let progress (r : Fuzz.xsched_record) =
    if json then
      print_endline
        (J.to_string
           (J.Obj
              [
                ("type", J.Str "xsched_case");
                ("exec", J.Int r.Fuzz.x_exec);
                ("origin", J.Str (Fuzz.origin_name r.Fuzz.x_origin));
                ( "scenario",
                  J.Str
                    (Core.Workloads.Chaos.scenario_name
                       r.Fuzz.x_input.Fuzz.scenario) );
                ( "alloc",
                  J.Str (Core.Workloads.Env.kind_label r.Fuzz.x_input.Fuzz.kind)
                );
                ("shuffle_seed", J.Int r.Fuzz.x_input.Fuzz.shuffle_seed);
                ("events_heap", J.Int r.Fuzz.x_heap.Sweep.events);
                ("events_wheel", J.Int r.Fuzz.x_wheel.Sweep.events);
                ("agree", J.Bool r.Fuzz.x_agree);
              ]))
    else if not r.Fuzz.x_agree then
      Format.printf
        "  #%-4d %-8s %-16s/%-9s s%d DIVERGED (heap %d vs wheel %d events)@."
        r.Fuzz.x_exec
        (Fuzz.origin_name r.Fuzz.x_origin)
        (Core.Workloads.Chaos.scenario_name r.Fuzz.x_input.Fuzz.scenario)
        (Core.Workloads.Env.kind_label r.Fuzz.x_input.Fuzz.kind)
        r.Fuzz.x_input.Fuzz.shuffle_seed r.Fuzz.x_heap.Sweep.events
        r.Fuzz.x_wheel.Sweep.events
  in
  let xr = Fuzz.run_cross_sched ~progress fcfg in
  let failed = xr.Fuzz.xsched_failure <> None in
  if json then
    print_endline
      (J.to_string
         (J.Obj
            [
              ("type", J.Str "summary");
              ("mode", J.Str "cross-sched");
              ("executed", J.Int xr.Fuzz.xsched_executed);
              ("budget", J.Int fcfg.Fuzz.budget);
              ("failure", J.Bool failed);
              ("ok", J.Bool (not failed));
            ]))
  else begin
    Format.printf
      "@.%d input(s) replayed under both schedulers (%d engine runs)@."
      xr.Fuzz.xsched_executed
      (2 * xr.Fuzz.xsched_executed);
    match xr.Fuzz.xsched_failure with
    | None ->
        Format.printf
          "no divergence: deterministic counters and oracle verdicts \
           identical under heap and wheel.@."
    | Some r ->
        Format.printf "divergence at execution %d:@." r.Fuzz.x_exec;
        Format.printf "--- heap verdict ---@.%a@." Sweep.pp_verdict
          r.Fuzz.x_heap;
        Format.printf "--- wheel verdict ---@.%a@." Sweep.pp_verdict
          r.Fuzz.x_wheel
  end;
  if failed then 1 else 0

let run_fuzz names alloc budget fuzz_seed mutate shuffle_seed duration_ms
    pages disabled plan no_minimize differential cross_sched inject_sched_bug
    bundle_dir json seed cpus sched =
  let module Sweep = Core.Check.Sweep in
  let module Fuzz = Core.Check.Fuzz in
  let module Minimize = Core.Check.Minimize in
  let module J = Core.Metrics.Json in
  set_sched sched;
  (* Self-test hook for the cross-scheduler differential: disable the
     wheel's same-instant batch sort so Shuffle dispatch order diverges
     from the heap — the replay must catch it and exit non-zero. *)
  if inject_sched_bug then Core.Sim.Engine.debug_no_batch_sort := true;
  if budget <= 0 || duration_ms <= 0 || pages <= 0 || cpus <= 0 then begin
    Format.eprintf
      "--budget, --duration-ms, --pages and --cpus must be positive@.";
    exit 2
  end;
  let base =
    {
      Sweep.scenarios = parse_scenarios names;
      kinds = parse_kinds alloc;
      sweeps = 1;
      base_shuffle_seed = shuffle_seed;
      seed;
      cpus;
      duration_ns = duration_ms * 1_000_000;
      total_pages = pages;
      mutation = parse_mutation mutate;
      oracles = parse_oracles disabled;
      plan = parse_plan plan;
      (* Campaign cases never dump bundles; only the final (minimized)
         witness does, via a bundle-armed re-run below. *)
      bundle_dir = None;
    }
  in
  let fcfg = { Fuzz.base; budget; seed = fuzz_seed; stop_on_failure = true } in
  if cross_sched then run_fuzz_cross_sched fcfg json
  else if differential then run_fuzz_differential base fcfg alloc json
  else begin
  if not json then
    Format.printf
      "fuzzing: budget %d, fuzz seed %d, workload seed %d, %d scenario(s) x \
       %d allocator(s)...@."
      budget fuzz_seed seed
      (List.length base.Sweep.scenarios)
      (List.length base.Sweep.kinds);
  let case_json (r : Fuzz.record) =
    let scfg, case = Fuzz.concretize fcfg r.Fuzz.input in
    J.Obj
      [
        ("type", J.Str "case");
        ("exec", J.Int r.Fuzz.exec);
        ("origin", J.Str (Fuzz.origin_name r.Fuzz.origin));
        ( "scenario",
          J.Str (Core.Workloads.Chaos.scenario_name r.Fuzz.input.Fuzz.scenario)
        );
        ("alloc", J.Str (Core.Workloads.Env.kind_label r.Fuzz.input.Fuzz.kind));
        ("shuffle_seed", J.Int r.Fuzz.input.Fuzz.shuffle_seed);
        ("duration_ns", J.Int r.Fuzz.input.Fuzz.duration_ns);
        ("cpus", J.Int r.Fuzz.input.Fuzz.cpus);
        ( "plan",
          match r.Fuzz.input.Fuzz.plan with
          | None -> J.Null
          | Some p -> J.Str (Core.Faults.Plan.to_compact p) );
        ("ok", J.Bool (Sweep.ok r.Fuzz.verdict));
        ("new_features", J.Int r.Fuzz.new_features);
        ("total_features", J.Int r.Fuzz.total_features);
        ("corpus_size", J.Int r.Fuzz.corpus_size);
        ("replay", J.Str (Sweep.replay_command scfg case));
      ]
  in
  let progress (r : Fuzz.record) =
    if json then print_endline (J.to_string (case_json r))
    else if r.Fuzz.new_features > 0 || not (Sweep.ok r.Fuzz.verdict) then
      Format.printf "  #%-4d %-8s %-16s/%-9s %s%s@." r.Fuzz.exec
        (Fuzz.origin_name r.Fuzz.origin)
        (Core.Workloads.Chaos.scenario_name r.Fuzz.input.Fuzz.scenario)
        (Core.Workloads.Env.kind_label r.Fuzz.input.Fuzz.kind)
        (if Sweep.ok r.Fuzz.verdict then
           Printf.sprintf "+%d features (%d total, corpus %d)"
             r.Fuzz.new_features r.Fuzz.total_features r.Fuzz.corpus_size
         else "FAIL")
        (if Sweep.ok r.Fuzz.verdict then "" else " <-- oracle fired")
  in
  let result = Fuzz.run ~progress fcfg in
  if not json then
    Format.printf
      "@.%d case(s) executed, %d coverage feature(s), corpus %d@."
      result.Fuzz.executed result.Fuzz.total_features
      (List.length result.Fuzz.corpus);
  match result.Fuzz.failure with
  | None ->
      if json then
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("type", J.Str "summary");
                  ("executed", J.Int result.Fuzz.executed);
                  ("budget", J.Int budget);
                  ("total_features", J.Int result.Fuzz.total_features);
                  ("corpus_size", J.Int (List.length result.Fuzz.corpus));
                  ("failure", J.Bool false);
                  ("ok", J.Bool true);
                ]))
      else Format.printf "no oracle fired within the budget.@.";
      0
  | Some (fcfg', fcase, fverdict) ->
      if not json then
        Format.printf "@.failure at execution %d:@.%a@." result.Fuzz.executed
          Sweep.pp_verdict fverdict;
      let minimized =
        if no_minimize then None
        else begin
          if not json then Format.printf "@.minimizing witness...@.";
          let progress (s : Minimize.step) =
            if json then
              print_endline
                (J.to_string
                   (J.Obj
                      [
                        ("type", J.Str "shrink");
                        ("action", J.Str s.Minimize.action);
                        ("candidate", J.Str s.Minimize.candidate);
                        ("kept", J.Bool s.Minimize.kept);
                      ]))
            else if s.Minimize.kept then
              Format.printf "  %s %s: still fails, kept@." s.Minimize.action
                s.Minimize.candidate
          in
          match Minimize.run ~progress fcfg' fcase with
          | m -> Some m
          | exception Minimize.Not_a_witness ->
              if not json then
                Format.printf "minimizer: case no longer fails (flaky?)@.";
              None
        end
      in
      let replay =
        match minimized with
        | Some m -> m.Minimize.replay
        | None -> Sweep.replay_command fcfg' fcase
      in
      (* Forensic bundle for the final witness: re-run the minimized case
         (or the original failure when minimization was skipped or came up
         empty) with the bundle dump armed. The re-run is deterministic,
         so the verdict matches what the campaign saw. *)
      let bundle =
        match bundle_dir with
        | None -> None
        | Some dir ->
            let wcfg, wcase =
              match minimized with
              | Some m -> (m.Minimize.cfg, m.Minimize.case)
              | None -> (fcfg', fcase)
            in
            let wv =
              Sweep.run_case { wcfg with Sweep.bundle_dir = Some dir } wcase
            in
            wv.Sweep.bundle
      in
      if json then begin
        (match minimized with
        | None -> ()
        | Some m ->
            let plan_specs =
              match m.Minimize.cfg.Sweep.plan with
              | Some p -> List.length p.Core.Faults.Plan.specs
              | None -> 0
            in
            print_endline
              (J.to_string
                 (J.Obj
                    [
                      ("type", J.Str "minimized");
                      ("runs", J.Int m.Minimize.runs);
                      ( "duration_ns",
                        J.Int m.Minimize.cfg.Sweep.duration_ns );
                      ("cpus", J.Int m.Minimize.cfg.Sweep.cpus);
                      ("plan_specs", J.Int plan_specs);
                      ("replay", J.Str m.Minimize.replay);
                    ])));
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("type", J.Str "summary");
                  ("executed", J.Int result.Fuzz.executed);
                  ("budget", J.Int budget);
                  ("total_features", J.Int result.Fuzz.total_features);
                  ("corpus_size", J.Int (List.length result.Fuzz.corpus));
                  ("failure", J.Bool true);
                  ("replay", J.Str replay);
                  ( "bundle",
                    match bundle with Some p -> J.Str p | None -> J.Null );
                  ("ok", J.Bool false);
                ]))
      end
      else begin
        (match minimized with
        | None -> ()
        | Some m ->
            Format.printf
              "@.minimal witness after %d shrink run(s): %d ms, %d cpus, %d \
               fault spec(s)@."
              m.Minimize.runs
              (m.Minimize.cfg.Sweep.duration_ns / 1_000_000)
              m.Minimize.cfg.Sweep.cpus
              (match m.Minimize.cfg.Sweep.plan with
              | Some p -> List.length p.Core.Faults.Plan.specs
              | None -> 0));
        (match bundle with
        | Some p -> Format.printf "@.bundle: %s@." p
        | None -> ());
        Format.printf "@.replay: %s@." replay
      end;
      1
  end

open Cmdliner

(* --scale accepts a float or the presets small/medium/full. *)
let scale_conv =
  let parse s =
    match s with
    | "small" -> Ok 0.05
    | "medium" -> Ok 0.3
    | "full" -> Ok 1.0
    | _ -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> Ok f
        | _ -> Error (`Msg (Printf.sprintf "invalid scale %S" s)))
  in
  Arg.conv (parse, Format.pp_print_float)

let scale_arg =
  let doc =
    "Workload scale factor: a float or small/medium/full (= 0.05/0.3/1.0; \
     1.0 = EXPERIMENTS.md defaults)."
  in
  Arg.(value & opt scale_conv 1.0 & info [ "scale" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let cpus_arg =
  let doc = "Simulated CPUs (the paper's machine had 64 logical CPUs)." in
  Arg.(value & opt int 8 & info [ "cpus" ] ~docv:"N" ~doc)

let runs_arg =
  let doc = "Repetitions for mean +/- stdev (paper: 3)." in
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc)

let sched_arg =
  let doc =
    "Engine event scheduler: 'wheel' (hierarchical timer wheel, default) \
     or 'heap' (the original 4-ary heap, kept for differential testing). \
     Deterministic counters are identical under both."
  in
  Arg.(value & opt string "wheel" & info [ "sched" ] ~docv:"S" ~doc)

let params_term =
  Term.(const params $ sched_arg $ scale_arg $ seed_arg $ cpus_arg $ runs_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids (fig3, costs, fig6, apps, ablations, \
                fig7..fig13) or 'all'.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their reports")
    Term.(const run_experiment $ ids $ params_term)

let trace_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id to trace (fig3, fig6).")
  in
  let out =
    let doc = "Output file for the Chrome trace-event JSON (default \
               trace-<experiment>.json)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let hists =
    let doc = "Also print the grace-period latency, lock-wait and \
               allocation-cost histograms." in
    Arg.(value & flag & info [ "hist" ] ~doc)
  in
  let ring =
    let doc = "Per-CPU event-ring capacity (oldest events drop on overflow)." in
    Arg.(value & opt int 65_536 & info [ "ring" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Rerun an experiment with tracing armed: write a Perfetto-loadable \
          Chrome trace and print latency histograms")
    Term.(const trace_experiment $ id $ out $ hists $ ring $ params_term)

let chaos_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (clean, stalled-reader, cb-flood, pressure-spike, \
                alloc-fault) or 'all' (default).")
  in
  let alloc =
    let doc =
      "Reclamation scheme(s): slub, prudence, ebr-debra, hyaline, both \
       (slub+prudence) or all."
    in
    Arg.(value & opt string "both" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let ring =
    let doc = "Per-CPU event-ring capacity for the GP-latency histogram." in
    Arg.(value & opt int 16_384 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let bundle_dir =
    let doc =
      "Arm the flight recorder and dump a forensic bundle into $(docv) for \
       every outcome whose mitigations fired (safety violation, OOM, \
       emergency flush, OOM delay or stall warning); render bundles with \
       the postmortem subcommand."
    in
    Arg.(
      value & opt (some string) None & info [ "bundle-dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run fault-injection scenarios over the selected reclamation \
          schemes and print a survival/degradation report (RCU stall \
          warnings, grace-period p99, backoff retries, emergency flushes)")
    Term.(const run_chaos $ names $ alloc $ ring $ bundle_dir $ params_term)

let anatomy_cmd =
  let scenario =
    Arg.(
      value & pos 0 string "clean"
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario to dissect (clean, stalled-reader, cb-flood, \
                pressure-spike, alloc-fault; default clean).")
  in
  let alloc =
    let doc =
      "Reclamation scheme(s): slub, prudence, ebr-debra, hyaline, or all \
       (default; 'both' also maps to all four here)."
    in
    Arg.(value & opt string "all" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let ring =
    let doc = "Per-CPU event-ring capacity." in
    Arg.(value & opt int 16_384 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let json =
    let doc =
      "Machine-readable output: one NDJSON 'phase' object per (scheme, \
       phase), one 'total' and one 'worst_gp' per scheme, one trailing \
       'summary' line with the sum-identity verdict."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "anatomy"
       ~doc:
         "Grace-period anatomy: run one chaos scenario under each \
          reclamation scheme with the phase tracer armed and decompose \
          every defer-to-reuse latency into defer-request, request-start, \
          qs-collection, complete-harvest and harvest-reuse (same schema \
          for all four backends), with a worst-GP drill-down naming the \
          holdout CPU; non-zero exit if the per-phase sums do not add up \
          exactly to the totals")
    Term.(const run_anatomy $ scenario $ alloc $ ring $ json $ params_term)

let postmortem_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE"
          ~doc:"Forensic bundle (NDJSON) written by check/fuzz \
                --bundle-dir or chaos --bundle-dir.")
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Render a forensic bundle into a human post-mortem: the \
          violation, a per-CPU timeline of the last trace events before \
          it, the offending objects' lineages \
          (deferred->harvested->reused), the anatomy of the implicated \
          grace periods and the full metric snapshot, plus the exact \
          replay command")
    Term.(const run_postmortem $ file)

let tournament_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (clean, stalled-reader, cb-flood, pressure-spike, \
                alloc-fault) or 'all' (default).")
  in
  let alloc =
    let doc =
      "Schemes to race: slub, prudence, ebr-debra, hyaline, or all \
       (default; 'both' also maps to all four here)."
    in
    Arg.(value & opt string "all" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let ring =
    let doc = "Per-CPU event-ring capacity for the latency histograms." in
    Arg.(value & opt int 16_384 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let out =
    let doc =
      "Also write the table as NDJSON to $(docv): one 'scheme' object per \
       (scenario, scheme) cell plus a trailing 'summary' line."
    in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:
         "Cross-scheme SMR tournament: run the chaos scenarios under every \
          reclamation scheme (SLUB callbacks, RCU+Prudence, EBR/DEBRA, \
          Hyaline) and print one comparison table -- throughput, end-of-run \
          limbo occupancy, defer-to-reuse latency percentiles, grace-period \
          p99, OOM resilience; non-zero exit on any safety violation")
    Term.(const run_tournament $ names $ alloc $ ring $ out $ params_term)

let check_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (clean, stalled-reader, cb-flood, pressure-spike, \
                alloc-fault) or 'all' (default).")
  in
  let alloc =
    let doc =
      "Allocator/SMR stack(s) to sweep: slub, prudence, ebr-debra, hyaline, \
       both (slub+prudence) or all."
    in
    Arg.(value & opt string "both" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let sweeps =
    let doc = "Shuffled schedules per (scenario, allocator) pair." in
    Arg.(value & opt int 20 & info [ "sweeps" ] ~docv:"N" ~doc)
  in
  let shuffle_seed =
    let doc =
      "First shuffle seed; the sweep uses seeds N..N+sweeps-1. Use the \
       seed printed by a failing run (with --sweeps=1) to replay it."
    in
    Arg.(value & opt int 1 & info [ "shuffle-seed" ] ~docv:"N" ~doc)
  in
  let mutate =
    let doc =
      "Mutation self-test: inject a known kernel bug class and require the \
       matching oracle to FAIL the sweep (proof the oracle has teeth). \
       'skip-gp' reclaims deferred objects without waiting for their grace \
       period (shadow oracle); 'drop-stall' disarms the stall detector \
       under pinned grace periods (missed-QS oracle); 'lose-cb' drops \
       every 64th call_rcu callback between accounting and list \
       (conservation oracle); 'free-latent-page' lets the shrinker return \
       still-deferred pages to the buddy (page-reuse oracle); \
       'skip-epoch-advance' advances the EBR epoch without scanning \
       reader announcements (early-reuse oracle, --alloc=ebr-debra); \
       'drop-retire-batch' ripens Hyaline batches while readers still \
       hold references (early-reuse oracle, --alloc=hyaline)."
    in
    Arg.(value & opt string "none" & info [ "mutate" ] ~docv:"M" ~doc)
  in
  let duration_ms =
    let doc = "Virtual run length per schedule, in milliseconds." in
    Arg.(value & opt int 50 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let pages =
    let doc = "Physical memory per run, in 4 KiB pages." in
    Arg.(value & opt int 8_192 & info [ "pages" ] ~docv:"N" ~doc)
  in
  let disable_oracle =
    let doc =
      "Disable one oracle (page-reuse, early-reuse, missed-qs, \
       cb-conservation); repeatable. Used by the necessity self-tests: a \
       --mutate run with its oracle disabled must pass."
    in
    Arg.(value & opt_all string [] & info [ "disable-oracle" ] ~docv:"O" ~doc)
  in
  let plan =
    let doc =
      "Fault-plan override in compact form ('seed:spec;spec;...', as \
       printed by failing replay commands) instead of the scenario's \
       default plan."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let skip_diff =
    let doc = "Skip the baseline-vs-Prudence differential trace replay." in
    Arg.(value & flag & info [ "skip-diff" ] ~doc)
  in
  let bundle_dir =
    let doc =
      "Dump a self-contained forensic bundle (NDJSON: violation, per-CPU \
       event window, offending object lineages, GP anatomy, metric \
       snapshot, replay command) into $(docv) for every failing case; \
       render with the postmortem subcommand."
    in
    Arg.(
      value & opt (some string) None & info [ "bundle-dir" ] ~docv:"DIR" ~doc)
  in
  let cpus =
    let doc = "Simulated CPUs per run." in
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N" ~doc)
  in
  let json =
    let doc =
      "Machine-readable output: one NDJSON object per sweep verdict, one \
       for the differential replay, one summary line; human progress \
       output is suppressed."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Schedule-exploration safety check: run the chaos matrix under \
          shuffled same-instant event orderings with the shadow-heap \
          oracle and invariant auditors armed, then differentially replay \
          one trace against both allocators; non-zero exit and a replay \
          command on any violation")
    Term.(
      const run_check $ names $ alloc $ sweeps $ shuffle_seed $ mutate
      $ duration_ms $ pages $ disable_oracle $ plan $ skip_diff $ bundle_dir
      $ json $ seed_arg $ cpus $ sched_arg)

let fuzz_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (clean, stalled-reader, cb-flood, pressure-spike, \
                alloc-fault) or 'all' (default).")
  in
  let alloc =
    let doc =
      "Allocator/SMR stack(s) to fuzz: slub, prudence, ebr-debra, hyaline, \
       both (slub+prudence) or all."
    in
    Arg.(value & opt string "both" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let budget =
    let doc = "Maximum cases to execute." in
    Arg.(value & opt int 100 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let fuzz_seed =
    let doc =
      "Fuzzer RNG seed (mutation choices). The same seed and budget replay \
       the identical campaign, case for case."
    in
    Arg.(value & opt int 1 & info [ "fuzz-seed" ] ~docv:"N" ~doc)
  in
  let mutate =
    let doc =
      "Inject a bug class (skip-gp, drop-stall, lose-cb, free-latent-page, \
       skip-epoch-advance, drop-retire-batch) so the fuzzer has something \
       to find; used by the guided-vs-brute self-test."
    in
    Arg.(value & opt string "none" & info [ "mutate" ] ~docv:"M" ~doc)
  in
  let shuffle_seed =
    let doc = "Shuffle seed for the seed corpus." in
    Arg.(value & opt int 1 & info [ "shuffle-seed" ] ~docv:"N" ~doc)
  in
  let duration_ms =
    let doc = "Base virtual run length per case, in milliseconds (the \
               duration mutator scales it x0.5..x2)." in
    Arg.(value & opt int 50 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let pages =
    let doc = "Physical memory per run, in 4 KiB pages." in
    Arg.(value & opt int 8_192 & info [ "pages" ] ~docv:"N" ~doc)
  in
  let disable_oracle =
    let doc = "Disable one oracle (page-reuse, early-reuse, missed-qs, \
               cb-conservation); repeatable." in
    Arg.(value & opt_all string [] & info [ "disable-oracle" ] ~docv:"O" ~doc)
  in
  let plan =
    let doc = "Fault-plan override for the seed corpus, in compact form." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let no_minimize =
    let doc = "Report the first failure as-is instead of shrinking it." in
    Arg.(value & flag & info [ "no-minimize" ] ~doc)
  in
  let bundle_dir =
    let doc =
      "On failure, re-run the final (minimized) witness with the flight \
       recorder armed and dump its forensic bundle into $(docv); the \
       summary NDJSON line carries the bundle path."
    in
    Arg.(
      value & opt (some string) None & info [ "bundle-dir" ] ~docv:"DIR" ~doc)
  in
  let differential =
    let doc =
      "Differential mode: instead of the coverage-guided campaign, draw \
       random op traces from the fuzz RNG and replay each under every \
       reclamation backend (--alloc=all by default); any divergence in the \
       backend-independent outcome sequence, or any oracle hit, is a \
       finding."
    in
    Arg.(value & flag & info [ "differential" ] ~doc)
  in
  let cross_sched =
    let doc =
      "Cross-scheduler mode: replay each fuzz input under both engine \
       schedulers (--sched=heap and --sched=wheel) and require identical \
       deterministic counters and oracle verdicts; any disagreement is a \
       finding."
    in
    Arg.(value & flag & info [ "cross-sched" ] ~doc)
  in
  let inject_sched_bug =
    let doc =
      "Self-test: disable the wheel's same-instant batch ordering so its \
       Shuffle dispatch order diverges from the heap's; a --cross-sched \
       run with this flag must fail (proof the differential has teeth)."
    in
    Arg.(value & flag & info [ "inject-sched-bug" ] ~doc)
  in
  let json =
    let doc =
      "Machine-readable output: one NDJSON 'case' object per execution, \
       'shrink' objects during minimization, a 'minimized' object and one \
       trailing 'summary' line; byte-identical across runs with the same \
       seeds and budget."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let cpus =
    let doc = "Base simulated CPUs per run (the CPU mutator varies 2..8)." in
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided schedule fuzzing: mutate (shuffle seed, fault \
          plan, duration, CPUs) from a per-scenario seed corpus, keeping \
          inputs that light up new behavioural coverage; on an oracle \
          failure, shrink the witness (drop fault specs, binary-search \
          duration, reduce CPUs) and print a one-line replay command; \
          deterministic and replayable from --fuzz-seed")
    Term.(
      const run_fuzz $ names $ alloc $ budget $ fuzz_seed $ mutate
      $ shuffle_seed $ duration_ms $ pages $ disable_oracle $ plan
      $ no_minimize $ differential $ cross_sched $ inject_sched_bug
      $ bundle_dir $ json $ seed_arg $ cpus $ sched_arg)

let stat_cmd =
  let alloc =
    let doc = "Allocator stack(s) to introspect: slub, prudence or both." in
    Arg.(value & opt string "both" & info [ "alloc" ] ~docv:"KIND" ~doc)
  in
  let duration_ms =
    let doc = "Virtual run length in milliseconds (scaled by --scale)." in
    Arg.(value & opt int 2_000 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let sample_every =
    let doc = "Sampler period in virtual nanoseconds." in
    Arg.(value & opt int 10_000_000 & info [ "sample-every" ] ~docv:"NS" ~doc)
  in
  let capacity =
    let doc = "Time-series ring capacity in rows (oldest rows drop)." in
    Arg.(value & opt int 4_096 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let watch =
    let doc =
      "Print a full snapshot periodically during the run (every 10 sampler \
       periods of virtual time), with churn columns showing per-interval \
       deltas."
    in
    Arg.(value & flag & info [ "watch" ] ~doc)
  in
  let series =
    let doc =
      "Export the sampled time series to $(docv) (with --alloc both, the \
       allocator label is appended to the file name)."
    in
    Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)
  in
  let format =
    let doc = "Series export format: csv or ndjson." in
    Arg.(value & opt string "csv" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let registry_table =
    let doc = "Also print the flat metric-registry table (every registered \
               counter/gauge/derived metric with its current value)." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let pages =
    let doc = "Physical memory, in 4 KiB pages." in
    Arg.(value & opt int 65_536 & info [ "pages" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Live allocator/RCU introspection: run the Fig. 3 endurance load \
          and report buddyinfo-style free-block counts, slabtop-style \
          per-cache activity, RCU grace-period/backlog state and \
          Prudence latent-cache occupancy; optionally sample any \
          registered metric into a bounded time-series ring and export it")
    Term.(
      const run_stat $ alloc $ duration_ms $ sample_every $ capacity $ watch
      $ series $ format $ registry_table $ pages $ scale_arg $ seed_arg
      $ cpus_arg $ sched_arg)

let perf_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (endurance, fig3, chaos-clean) or 'all' (default).")
  in
  let out =
    let doc = "Output file for the wall-clock benchmark JSON." in
    Arg.(
      value
      & opt string "BENCH_wallclock.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Wall-clock throughput benchmark: time pinned scenarios (fig3, \
          chaos clean, endurance) under both allocators and report \
          events/sec, sim-ns per wall-ms and words per update; writes \
          BENCH_wallclock.json whose deterministic counters (events, \
          updates, allocation counts, grace periods) gate in CI while \
          wall timings stay informational")
    Term.(const run_perf $ names $ out $ params_term)

let prof_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenarios (endurance, fig3, chaos-clean) or 'all' (default).")
  in
  let top =
    let doc = "Show only the $(docv) heaviest spans per run (0 = all)." in
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)
  in
  let by =
    let doc = "Span ordering and folded-path weight: 'time' (self ns) or \
               'alloc' (self minor words)." in
    Arg.(value & opt string "time" & info [ "by" ] ~docv:"KEY" ~doc)
  in
  let folded =
    let doc =
      "Also write folded call paths ('engine.dispatch;slab.alloc N' lines, \
       weighted per --by) to $(docv) for flamegraph.pl / speedscope."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let json =
    let doc =
      "Machine-readable output: one NDJSON object per span per run, one \
       scenario_summary per run, one trailing summary line; the human \
       tables are suppressed."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Hot-path profile: rerun the perf scenarios with the span profiler \
          installed across engine/buddy/slab/RCU/Prudence and report \
          per-span wall time, call counts and GC allocation words \
          (allocs-per-event, subsystem shares, folded stacks for \
          flamegraphs); deterministic counters are unchanged by profiling")
    Term.(const run_prof $ names $ top $ by $ folded $ json $ params_term)

let regress_cmd =
  let baseline =
    (* A plain string, not Arg.file: a missing baseline must reach the
       loader so `--json` still emits its error summary line. *)
    let doc = "Committed baseline BENCH_seed.json." in
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let current =
    let doc = "Freshly generated BENCH_seed.json to gate." in
    Arg.(
      required
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE" ~doc)
  in
  let tolerance =
    let doc =
      "Default drift tolerance in percent for metrics that do not carry \
       their own."
    in
    Arg.(value & opt float 5.0 & info [ "tolerance-pct" ] ~docv:"PCT" ~doc)
  in
  let json =
    let doc = "Emit one NDJSON object per metric drift instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "Bench regression gate: compare a fresh BENCH_seed.json against \
          the committed baseline; exit 1 when any metric drifts past its \
          tolerance in the paper-unexpected direction (or disappears)")
    Term.(const run_regress $ baseline $ current $ tolerance $ json)

let main_cmd =
  let doc =
    "Reproduction of 'Prudent Memory Reclamation in Procrastination-Based \
     Synchronization' (ASPLOS 2016)"
  in
  Cmd.group
    (Cmd.info "prudence-repro" ~version:Core.version ~doc)
    [
      list_cmd; run_cmd; trace_cmd; chaos_cmd; anatomy_cmd; tournament_cmd;
      check_cmd; fuzz_cmd; postmortem_cmd; stat_cmd; perf_cmd; prof_cmd;
      regress_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
