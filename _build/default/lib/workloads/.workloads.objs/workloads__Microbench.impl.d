lib/workloads/microbench.ml: Env List Rcu Sim Slab
