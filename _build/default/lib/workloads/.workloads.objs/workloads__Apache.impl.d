lib/workloads/apache.ml: Appmodel List
