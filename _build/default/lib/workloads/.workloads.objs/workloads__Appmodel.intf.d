lib/workloads/appmodel.mli: Env Sim Slab
