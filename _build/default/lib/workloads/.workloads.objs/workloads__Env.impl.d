lib/workloads/env.ml: Array Mem Prudence Rcu Sim Slab
