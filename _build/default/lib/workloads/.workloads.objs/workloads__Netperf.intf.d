lib/workloads/netperf.mli: Appmodel
