lib/workloads/netperf.ml: Appmodel List
