lib/workloads/env.mli: Mem Prudence Rcu Sim Slab
