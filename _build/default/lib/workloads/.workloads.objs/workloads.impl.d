lib/workloads/workloads.ml: Apache Appmodel Endurance Env Microbench Netperf Postgresql Postmark
