lib/workloads/endurance.mli: Env
