lib/workloads/postmark.ml: Appmodel Sim
