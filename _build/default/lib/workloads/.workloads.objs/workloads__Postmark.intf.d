lib/workloads/postmark.mli: Appmodel
