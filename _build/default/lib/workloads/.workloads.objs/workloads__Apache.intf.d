lib/workloads/apache.mli: Appmodel
