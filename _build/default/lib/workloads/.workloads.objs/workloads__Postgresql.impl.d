lib/workloads/postgresql.ml: Appmodel List Sim
