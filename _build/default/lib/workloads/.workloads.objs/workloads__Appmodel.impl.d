lib/workloads/appmodel.ml: Env Float Hashtbl List Printf Sim Slab
