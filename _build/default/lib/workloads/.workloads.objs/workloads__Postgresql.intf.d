lib/workloads/postgresql.mli: Appmodel
