lib/workloads/microbench.mli: Env Rcu Slab
