lib/workloads/endurance.ml: Env List Mem Printf Rcu Rcudata Sim Slab
