type op =
  | Acquire of string
  | Release of string
  | Release_deferred of string
  | Release_newest of string
  | Work of int

type cache_spec = { cache_name : string; obj_size : int }

type config = {
  bench_name : string;
  caches : cache_spec list;
  standing : (string * int) list;
      (* Objects acquired per CPU at startup and held for the whole run:
         listening sockets, open connections, resident files. They make
         end-of-run "requested bytes" non-zero, as in the paper's runs. *)
  gen_txn : Sim.Rng.t -> op list;
  txns_per_cpu : int;
  think_ns_mean : float;
}

type cache_result = {
  cache_name : string;
  snap : Slab.Slab_stats.snapshot;
  fragmentation : float;
  lock_contended : int;
  lock_wait_ns : int;
}

(* Running mean of a cache's fragmentation, sampled during the run (the
   end-of-run pools can be empty, which would make the §4.2 ratio
   undefined). *)
type frag_meter = { mutable sum : float; mutable n : int }

type result = {
  label : string;
  bench_name : string;
  txns : int;
  duration_ns : int;
  throughput : float;
  deferred_pct : float;
  caches : cache_result list;
  oom : bool;
  safety_violations : int;
}

(* Per-CPU, per-cache pool of held objects: a deque so transactions can
   release oldest-first (typical kernel lifetimes) or newest-first
   (scratch buffers). *)
type pool = (string, Slab.Frame.objekt Sim.Deque.t) Hashtbl.t

let pool_for (pool : pool) name =
  match Hashtbl.find_opt pool name with
  | Some d -> d
  | None ->
      let d = Sim.Deque.create () in
      Hashtbl.add pool name d;
      d

let run (env : Env.t) (cfg : config) =
  let backend = env.Env.backend in
  let caches =
    List.map
      (fun (spec : cache_spec) ->
        ( spec.cache_name,
          backend.Slab.Backend.create_cache ~name:spec.cache_name
            ~obj_size:spec.obj_size ))
      cfg.caches
  in
  let cache_by_name name =
    match List.assoc_opt name caches with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Appmodel: unknown cache %s" name)
  in
  let ncpus = Sim.Machine.nr_cpus env.Env.machine in
  let txns = ref 0 in
  let oom = ref false in
  let finish_times = ref [] in
  let frag_meters =
    List.map (fun (name, _) -> (name, { sum = 0.; n = 0 })) caches
  in
  Sim.Engine.every env.Env.eng ~period:1_000_000 (fun () ->
      List.iter
        (fun (name, cache) ->
          let f = Slab.Frame.fragmentation cache in
          if not (Float.is_nan f) then begin
            let m = List.assoc name frag_meters in
            m.sum <- m.sum +. f;
            m.n <- m.n + 1
          end)
        caches;
      true);
  for i = 0 to ncpus - 1 do
    let cpu = Env.cpu env i in
    let rng = Sim.Rng.split env.Env.rng in
    Sim.Process.spawn env.Env.eng (fun () ->
        let pool : pool = Hashtbl.create 8 in
        (try
           List.iter
             (fun (name, count) ->
               let cache = cache_by_name name in
               for _ = 1 to count do
                 match backend.Slab.Backend.alloc cache cpu with
                 | Some _obj -> () (* held for the whole run *)
                 | None ->
                     oom := true;
                     raise Exit
               done)
             cfg.standing;
           for _ = 1 to cfg.txns_per_cpu do
             let ops = cfg.gen_txn rng in
             List.iter
               (fun op ->
                 match op with
                 | Acquire name -> (
                     let cache = cache_by_name name in
                     match backend.Slab.Backend.alloc cache cpu with
                     | Some obj -> Sim.Deque.push_back (pool_for pool name) obj
                     | None ->
                         oom := true;
                         raise Exit)
                 | Release name -> (
                     match Sim.Deque.pop_front (pool_for pool name) with
                     | Some obj ->
                         backend.Slab.Backend.free (cache_by_name name) cpu obj
                     | None -> ())
                 | Release_newest name -> (
                     match Sim.Deque.pop_back (pool_for pool name) with
                     | Some obj ->
                         backend.Slab.Backend.free (cache_by_name name) cpu obj
                     | None -> ())
                 | Release_deferred name -> (
                     match Sim.Deque.pop_front (pool_for pool name) with
                     | Some obj ->
                         backend.Slab.Backend.free_deferred (cache_by_name name)
                           cpu obj
                     | None -> ())
                 | Work ns -> Sim.Machine.consume cpu ns)
               ops;
             incr txns;
             (* Charge the transaction's accumulated cost, then think
                (idle: pre-flush opportunity). *)
             Sim.Process.sleep env.Env.eng (Sim.Machine.drain cpu);
             let think =
               int_of_float
                 (Sim.Rng.exponential rng ~mean:cfg.think_ns_mean)
             in
             Sim.Machine.idle_sleep env.Env.machine cpu think
           done
         with Exit -> ());
        finish_times := Sim.Engine.now env.Env.eng :: !finish_times)
  done;
  Sim.Engine.run_until_quiet env.Env.eng;
  let duration = max 1 (List.fold_left max 0 !finish_times) in
  (* Settle deferred objects before the end-of-run measurements (§5.4
     measures fragmentation "after the completion of each run"). *)
  Sim.Process.spawn env.Env.eng (fun () -> backend.Slab.Backend.settle ());
  Sim.Engine.run_until_quiet env.Env.eng;
  let total_frees, total_deferred =
    List.fold_left
      (fun (f, d) (_, cache) ->
        let s = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
        (f + s.Slab.Slab_stats.frees, d + s.Slab.Slab_stats.deferred_frees))
      (0, 0) caches
  in
  {
    label = backend.Slab.Backend.label;
    bench_name = cfg.bench_name;
    txns = !txns;
    duration_ns = duration;
    throughput = float_of_int !txns /. (float_of_int duration /. 1e9);
    deferred_pct =
      (if total_frees + total_deferred = 0 then 0.
       else
         100.
         *. float_of_int total_deferred
         /. float_of_int (total_frees + total_deferred));
    caches =
      List.map
        (fun (name, cache) ->
          let contended, wait = Env.node_lock_stats env cache in
          let meter = List.assoc name frag_meters in
          let sampled_frag =
            if meter.n = 0 then Slab.Frame.fragmentation cache
            else meter.sum /. float_of_int meter.n
          in
          {
            cache_name = name;
            snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats;
            fragmentation = sampled_frag;
            lock_contended = contended;
            lock_wait_ns = wait;
          })
        caches;
    oom = !oom;
    safety_violations = List.length (Env.safety_violations env);
  }
