type config = {
  duration_ns : int;
  update_interval_ns : int;
  obj_size : int;
  sample_period_ns : int;
  list_len : int;
}

let default_config =
  {
    duration_ns = Sim.Clock.s 20;
    update_interval_ns = 20_000 (* 50k updates/s per cpu *);
    obj_size = 512;
    sample_period_ns = Sim.Clock.ms 10;
    list_len = 64;
  }

type result = {
  label : string;
  series : (int * float) array;
  oom_at_ns : int option;
  peak_used_mib : float;
  final_used_mib : float;
  updates : int;
  expedited_transitions : int;
  max_backlog : int;
  slab_churns : int;
  safety_violations : int;
}

let run (env : Env.t) (cfg : config) =
  let backend = env.Env.backend in
  let cache =
    backend.Slab.Backend.create_cache ~name:"endurance" ~obj_size:cfg.obj_size
  in
  let ncpus = Sim.Machine.nr_cpus env.Env.machine in
  let updates = ref 0 in
  (* Sample total used memory every 10 ms, like Fig. 3. *)
  let series = Sim.Series.create ~name:"used-mib" in
  Sim.Series.sample_every env.Env.eng series ~period:cfg.sample_period_ns
    (fun () -> float_of_int (Env.used_bytes env) /. (1024. *. 1024.));
  (* Each CPU updates its own list (no list-lock contention, §3.5). *)
  for i = 0 to ncpus - 1 do
    let cpu = Env.cpu env i in
    let rng = Sim.Rng.split env.Env.rng in
    Sim.Process.spawn env.Env.eng (fun () ->
        let list =
          Rcudata.Rculist.create ~backend ~readers:env.Env.readers ~cache
            ~name:(Printf.sprintf "endurance-%d" i)
        in
        (try
           for k = 0 to cfg.list_len - 1 do
             if not (Rcudata.Rculist.insert list cpu ~key:k ~value:0) then
               raise Exit
           done;
           while
             Sim.Engine.now env.Env.eng < cfg.duration_ns
             && not (Sim.Engine.stopped env.Env.eng)
           do
             let key = Sim.Rng.int rng cfg.list_len in
             (match
                Rcudata.Rculist.update list cpu ~key
                  ~value:(Sim.Rng.int rng 1000)
              with
             | `Updated -> incr updates
             | `Absent -> ()
             | `Oom ->
                 Mem.Pressure.declare_oom env.Env.pressure
                   ~now:(Sim.Engine.now env.Env.eng);
                 Sim.Engine.stop env.Env.eng;
                 raise Exit);
             Sim.Process.sleep env.Env.eng
               (cfg.update_interval_ns + Sim.Machine.drain cpu)
           done
         with Exit -> ()))
  done;
  Sim.Engine.run ~until:cfg.duration_ns env.Env.eng;
  let arr = Sim.Series.to_array series in
  let peak = Sim.Series.max_value series in
  let final = match Sim.Series.last series with Some (_, v) -> v | None -> 0. in
  let rcu_stats = Rcu.stats env.Env.rcu in
  {
    label = backend.Slab.Backend.label;
    series = arr;
    oom_at_ns = Mem.Pressure.oom_time env.Env.pressure;
    peak_used_mib = peak;
    final_used_mib = final;
    updates = !updates;
    expedited_transitions = rcu_stats.Rcu.expedited_transitions;
    max_backlog = rcu_stats.Rcu.max_backlog;
    slab_churns =
      Slab.Slab_stats.slab_churns (Slab.Slab_stats.snapshot cache.Slab.Frame.stats);
    safety_violations = List.length (Env.safety_violations env);
  }
