let caches =
  [
    { Appmodel.cache_name = "filp"; obj_size = 256 };
    { Appmodel.cache_name = "eventpoll_epi"; obj_size = 128 };
    { Appmodel.cache_name = "selinux"; obj_size = 64 };
    { Appmodel.cache_name = "kmalloc-64"; obj_size = 64 };
  ]

let gen_txn _rng =
  let buffers n =
    List.init n (fun _ -> Appmodel.Acquire "kmalloc-64")
    @ [ Appmodel.Work 800 ]
    @ List.init n (fun _ -> Appmodel.Release_newest "kmalloc-64")
  in
  (* accept + epoll registration *)
  Appmodel.
    [ Acquire "filp"; Acquire "eventpoll_epi"; Acquire "selinux"; Work 400 ]
  (* parse headers, open and serve the target file *)
  @ buffers 6
  @ Appmodel.[ Acquire "filp"; Work 600 ]
  @ buffers 6
  @ Appmodel.[ Release_newest "filp" ]
  (* connection close: epoll removal and socket release are RCU-deferred *)
  @ Appmodel.
      [
        Work 300;
        Release_deferred "filp";
        Release_deferred "eventpoll_epi";
        Release_deferred "selinux";
      ]

let config ?(txns_per_cpu = 3_000) () =
  {
    Appmodel.bench_name = "apache";
    caches;
    standing = [ ("filp", 80); ("eventpoll_epi", 80); ("selinux", 80); ("kmalloc-64", 40) ];
    gen_txn;
    txns_per_cpu;
    think_ns_mean = 2_500.;
  }
