(** pgbench/PostgreSQL model (§5.3): TPC-B-style transactions dominated by
    regular (non-deferred) kmalloc-64 allocator traffic — the paper notes
    PostgreSQL "triggers several free operations outside the context of
    deferred frees on the kmalloc-64 slab cache", which interferes with
    Prudence's latent-cache decisions and is why its kmalloc-64
    object-cache churn regresses slightly (Fig. 8). A small deferred
    stream (one RCU-published kmalloc-64 object per transaction, plus
    connection-churn filp/selinux) yields the paper's ~4.4% deferred share
    (Fig. 12). *)

val config : ?txns_per_cpu:int -> unit -> Appmodel.config
