(** Netperf TCP_CRR model (§5.3): each transaction is a TCP
    connect/request/response/close cycle — a socket file (filp) and its
    selinux blob allocated at accept and defer-freed at teardown (socket
    files are RCU-freed), plus a burst of kmalloc-256 packet buffers that
    are allocated and freed immediately. Tuned to the paper's ~14%
    deferred share (Fig. 12). *)

val config : ?txns_per_cpu:int -> unit -> Appmodel.config
