(** ApacheBench model (§5.3): each transaction is one HTTP request served
    by Apache's event MPM — an accepted connection (filp) registered with
    epoll (eventpoll_epi) and its selinux blob, all defer-freed at
    connection close (epoll unregistration is RCU-deferred, §5.4); the
    served file's filp and the header/buffer kmalloc-64 objects are freed
    immediately. Tuned to the paper's ~18% deferred share (Fig. 12). *)

val config : ?txns_per_cpu:int -> unit -> Appmodel.config
