type config = {
  pairs_per_cpu : int;
  obj_size : int;
  ops_per_quantum : int;
  op_work_ns : int;
}

let default_config =
  { pairs_per_cpu = 20_000; obj_size = 512; ops_per_quantum = 8; op_work_ns = 150 }

type result = {
  label : string;
  obj_size : int;
  pairs : int;
  duration_ns : int;
  pairs_per_sec : float;
  oom : bool;
  snap : Slab.Slab_stats.snapshot;
  lock_contended : int;
  lock_wait_ns : int;
  rcu : Rcu.stats;
}

let run (env : Env.t) (cfg : config) =
  let backend = env.Env.backend in
  let cache =
    backend.Slab.Backend.create_cache
      ~name:(Slab.Size_class.kmalloc_cache_name cfg.obj_size)
      ~obj_size:cfg.obj_size
  in
  let ncpus = Sim.Machine.nr_cpus env.Env.machine in
  let completed = ref 0 in
  let finish_times = ref [] in
  let oom = ref false in
  for i = 0 to ncpus - 1 do
    let cpu = Env.cpu env i in
    Sim.Process.spawn env.Env.eng (fun () ->
        let pairs_done = ref 0 in
        (try
           while !pairs_done < cfg.pairs_per_cpu do
             let quantum = min cfg.ops_per_quantum (cfg.pairs_per_cpu - !pairs_done) in
             for _ = 1 to quantum do
               match backend.Slab.Backend.alloc cache cpu with
               | Some obj ->
                   (* the "list update" the pair models *)
                   Sim.Machine.consume cpu cfg.op_work_ns;
                   backend.Slab.Backend.free_deferred cache cpu obj;
                   incr pairs_done
               | None ->
                   oom := true;
                   raise Exit
             done;
             Sim.Process.sleep env.Env.eng (Sim.Machine.drain cpu)
           done
         with Exit -> ());
        completed := !completed + !pairs_done;
        finish_times := Sim.Engine.now env.Env.eng :: !finish_times)
  done;
  (* Drive the simulation until every CPU loop has finished (daemon events
     such as scheduler ticks do not keep it alive). *)
  Sim.Engine.run_until_quiet env.Env.eng;
  let duration = List.fold_left max 0 !finish_times in
  let duration = max duration 1 in
  (* Settle deferred objects outside the timed region, as the paper does. *)
  Sim.Process.spawn env.Env.eng (fun () -> backend.Slab.Backend.settle ());
  Sim.Engine.run_until_quiet env.Env.eng;
  let contended, wait = Env.node_lock_stats env cache in
  {
    label = backend.Slab.Backend.label;
    obj_size = cfg.obj_size;
    pairs = !completed;
    duration_ns = duration;
    pairs_per_sec = float_of_int !completed /. (float_of_int duration /. 1e9);
    oom = !oom;
    snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats;
    lock_contended = contended;
    lock_wait_ns = wait;
    rcu = Rcu.stats env.Env.rcu;
  }
