(** The endurance experiment (paper §3.5 / Fig. 3 and §5.5): every CPU
    continuously performs linked-list update operations (each allocates a
    new 512-byte object and defer-frees the old version) while total used
    memory is sampled every 10 ms. On the baseline, RCU's throttled
    callback processing cannot keep up, memory climbs, processing is
    expedited under pressure, and the system finally hits OOM; Prudence
    reaches an equilibrium after the first grace periods and stays flat.
    This is also the DoS scenario of §3.4. *)

type config = {
  duration_ns : int;  (** Virtual run length (the paper ran ~200 s). *)
  update_interval_ns : int;  (** Gap between updates on each CPU. *)
  obj_size : int;  (** Paper: 512 bytes. *)
  sample_period_ns : int;  (** Paper: 10 ms. *)
  list_len : int;  (** Keys per per-CPU list. *)
}

val default_config : config

type result = {
  label : string;
  series : (int * float) array;  (** (time ns, used MiB) samples. *)
  oom_at_ns : int option;
  peak_used_mib : float;
  final_used_mib : float;
  updates : int;
  expedited_transitions : int;
  max_backlog : int;
  slab_churns : int;
  safety_violations : int;
}

val run : Env.t -> config -> result
