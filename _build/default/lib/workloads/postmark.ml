let caches =
  [
    { Appmodel.cache_name = "ext4_inode"; obj_size = 1024 };
    { Appmodel.cache_name = "dentry"; obj_size = 192 };
    { Appmodel.cache_name = "filp"; obj_size = 256 };
    { Appmodel.cache_name = "selinux"; obj_size = 64 };
    { Appmodel.cache_name = "kmalloc-64"; obj_size = 64 };
  ]

(* Postmark creates and deletes files in batches: two files per create
   transaction, two per delete transaction. *)
let create_txn =
  let one_file =
    Appmodel.[ Acquire "ext4_inode"; Acquire "dentry"; Acquire "selinux" ]
  in
  one_file @ one_file
  @ Appmodel.
      [
        Acquire "filp";
        Acquire "kmalloc-64";
        Acquire "kmalloc-64";
        Work 1_000;
        Release_newest "kmalloc-64";
        Release_newest "kmalloc-64";
        Release_newest "filp";
      ]

let readwrite_txn =
  Appmodel.
    [
      Acquire "filp";
      Acquire "kmalloc-64";
      Acquire "kmalloc-64";
      Acquire "kmalloc-64";
      Acquire "kmalloc-64";
      Work 1_200;
      Release_newest "kmalloc-64";
      Release_newest "kmalloc-64";
      Release_newest "kmalloc-64";
      Release_newest "kmalloc-64";
      Release_newest "filp";
    ]

(* unlink: the directory entry, inode and its security blob are published
   to RCU readers (path walk), so their frees are deferred. *)
let delete_txn =
  let one_file =
    Appmodel.
      [
        Release_deferred "dentry";
        Release_deferred "ext4_inode";
        Release_deferred "selinux";
      ]
  in
  Appmodel.[ Work 600 ] @ one_file @ one_file

let gen_txn rng =
  let p = Sim.Rng.float rng 1.0 in
  if p < 0.30 then create_txn
  else if p < 0.82 then readwrite_txn
  else delete_txn

let config ?(txns_per_cpu = 3_000) () =
  {
    Appmodel.bench_name = "postmark";
    caches;
    standing = [ ("ext4_inode", 60); ("dentry", 60); ("filp", 20) ];
    gen_txn;
    txns_per_cpu;
    think_ns_mean = 1_000.;
  }
