let caches =
  [
    { Appmodel.cache_name = "kmalloc-64"; obj_size = 64 };
    { Appmodel.cache_name = "filp"; obj_size = 256 };
    { Appmodel.cache_name = "selinux"; obj_size = 64 };
  ]

let gen_txn rng =
  (* The SQL work: a memory-context arena — a burst of small palloc-style
     allocations built up while parsing/executing, then released together
     when the context is reset. This bursty, non-deferred traffic on
     kmalloc-64 is what interferes with Prudence's latent-cache sizing
     decisions (the Fig. 8 regression). *)
  let palloc_storm n =
    List.init n (fun _ -> Appmodel.Acquire "kmalloc-64")
    @ [ Appmodel.Work (150 * n) ]
    @ List.init n (fun _ -> Appmodel.Release_newest "kmalloc-64")
  in
  let connection_churn =
    (* Occasionally a client session cycles: socket filp + selinux blob,
       deferred at close. *)
    if Sim.Rng.chance rng 0.10 then
      Appmodel.
        [
          Acquire "filp";
          Acquire "selinux";
          Work 400;
          Release_deferred "filp";
          Release_deferred "selinux";
        ]
    else []
  in
  Appmodel.[ Work 800 ]
  @ palloc_storm 40
  (* One catalog/snapshot entry published via RCU-style deferral. *)
  @ Appmodel.[ Acquire "kmalloc-64"; Release_deferred "kmalloc-64" ]
  @ connection_churn
  @ Appmodel.[ Work 600 ]

let config ?(txns_per_cpu = 3_000) () =
  {
    Appmodel.bench_name = "postgresql";
    caches;
    standing = [ ("filp", 32); ("selinux", 32); ("kmalloc-64", 60) ];
    gen_txn;
    txns_per_cpu;
    think_ns_mean = 4_000.;
  }
