(** The paper's microbenchmark (Fig. 6): kmalloc()/kfree_deferred() pairs
    in a tight loop on every CPU, per object size, reporting pairs executed
    per (virtual) second. *)

type config = {
  pairs_per_cpu : int;  (** Paper: 5M; scaled down by default. *)
  obj_size : int;
  ops_per_quantum : int;
      (** Loop iterations executed between virtual-time syncs (granularity
          / speed trade-off; does not change totals). *)
  op_work_ns : int;
      (** Non-allocator work per pair (list update etc.). *)
}

val default_config : config

type result = {
  label : string;
  obj_size : int;
  pairs : int;  (** Pairs actually completed (lower on OOM). *)
  duration_ns : int;
  pairs_per_sec : float;
  oom : bool;
  snap : Slab.Slab_stats.snapshot;
  lock_contended : int;
  lock_wait_ns : int;
  rcu : Rcu.stats;
}

val run : Env.t -> config -> result
(** Runs to completion (or OOM), settles outstanding deferred objects, and
    reports. The pairs/second figure excludes the settle phase, as in the
    paper (which measures the loop itself). *)
