let caches =
  [
    { Appmodel.cache_name = "filp"; obj_size = 256 };
    { Appmodel.cache_name = "selinux"; obj_size = 64 };
    { Appmodel.cache_name = "kmalloc-256"; obj_size = 256 };
  ]

(* One TCP_CRR transaction: handshake, one request/response, teardown.
   ~12 sk_buffs flow through kmalloc-256; the socket's filp and selinux
   objects are deferred at connection teardown. *)
let gen_txn _rng =
  let skb_burst n =
    List.concat
      (List.init n (fun _ ->
           Appmodel.[ Acquire "kmalloc-256"; Release_newest "kmalloc-256" ]))
  in
  Appmodel.[ Acquire "filp"; Acquire "selinux"; Work 500 ]
  @ skb_burst 4 (* handshake *)
  @ Appmodel.[ Work 700 ]
  @ skb_burst 8 (* request/response + teardown *)
  @ Appmodel.[ Work 400; Release_deferred "filp"; Release_deferred "selinux" ]

let config ?(txns_per_cpu = 3_000) () =
  {
    Appmodel.bench_name = "netperf";
    caches;
    standing = [ ("filp", 80); ("selinux", 80); ("kmalloc-256", 40) ];
    gen_txn;
    txns_per_cpu;
    think_ns_mean = 2_500.;
  }
