(** Postmark model (§5.3): a mail-server file workload — file create,
    read/append and delete transactions stressing ext4_inode, dentry, filp,
    selinux and kmalloc-64. Deletions defer-free the dentry, inode and
    selinux objects (unlink is RCU-deferred in the kernel); the mix is
    tuned to the paper's ~24.4% deferred-free share (Fig. 12), the highest
    of the four benchmarks. Files created but not yet deleted accumulate,
    as in a growing mail spool. *)

val config : ?txns_per_cpu:int -> unit -> Appmodel.config
