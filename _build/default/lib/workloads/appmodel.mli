(** Generic transaction engine for the synthetic application benchmarks
    (§5.3): Postmark, Netperf TCP_CRR, ApacheBench and pgbench are modelled
    as streams of transactions, each a sequence of slab-cache operations
    (allocate / free / defer-free on named caches) plus CPU work, separated
    by think time (spent idle, where Prudence may pre-flush).

    Objects a transaction does not release immediately go into a per-CPU,
    per-cache pool ordered oldest-first; later transactions release from
    the pool, so object lifetimes span transactions as they do in the
    kernel (an inode allocated at create is defer-freed at unlink much
    later). *)

type op =
  | Acquire of string  (** Allocate from the named cache into the pool. *)
  | Release of string  (** Immediately free the pool's oldest object. *)
  | Release_deferred of string  (** Defer-free the pool's oldest object. *)
  | Release_newest of string  (** Immediately free the newest (LIFO). *)
  | Work of int  (** Burn CPU ns (syscall work, copying, ...). *)

type cache_spec = { cache_name : string; obj_size : int }

type config = {
  bench_name : string;
  caches : cache_spec list;
  standing : (string * int) list;
      (** Objects acquired per CPU at startup and held for the whole run
          (listening sockets, open connections, resident files); they give
          the end-of-run fragmentation ratio a non-zero denominator. *)
  gen_txn : Sim.Rng.t -> op list;  (** One transaction. *)
  txns_per_cpu : int;
  think_ns_mean : float;  (** Idle time between transactions. *)
}

type cache_result = {
  cache_name : string;
  snap : Slab.Slab_stats.snapshot;
  fragmentation : float;  (** Measured after settle, as in §5.4. *)
  lock_contended : int;
  lock_wait_ns : int;
}

type result = {
  label : string;
  bench_name : string;
  txns : int;
  duration_ns : int;
  throughput : float;  (** Transactions per virtual second. *)
  deferred_pct : float;  (** Fig. 12: deferred frees / all frees, %. *)
  caches : cache_result list;
  oom : bool;
  safety_violations : int;
}

val run : Env.t -> config -> result
(** Execute [txns_per_cpu] transactions on every CPU, settle, measure.
    Throughput covers the transaction phase only. *)
