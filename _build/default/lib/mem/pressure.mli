(** Memory watermarks, pressure notification and OOM handling.

    Mirrors the kernel behaviour the paper relies on in §3.5: when free
    memory falls below a watermark, registered subsystems are notified (the
    RCU model uses this to expedite callback processing); when an allocation
    still cannot be satisfied, OOM handlers run, and if none reclaims
    memory, an out-of-memory event is recorded and the simulation stops —
    the analogue of the OOM killer firing at second 196 of Fig. 3. *)

type level =
  | Normal  (** Free pages above the low watermark. *)
  | Low  (** Below the low watermark: reclaim should be expedited. *)
  | Critical  (** Below the critical watermark: reclaim urgently. *)

val pp_level : Format.formatter -> level -> unit

type t

val create :
  Buddy.t -> ?low_ratio:float -> ?critical_ratio:float -> unit -> t
(** [create buddy ()] watches [buddy]. Watermarks default to 25% (low) and
    10% (critical) of total pages free. *)

val level : t -> level
(** Current pressure level, computed from the buddy's free-page count. *)

val on_level_change : t -> (level -> unit) -> unit
(** Register a notifier invoked when {!poll} observes a level transition. *)

val poll : t -> unit
(** Recompute the level and fire notifiers on change. Call after operations
    that allocate or release pages. *)

val on_oom : t -> (unit -> bool) -> unit
(** Register an OOM handler. Handlers run in registration order; a handler
    returns [true] if it (possibly) released memory and the failed
    allocation should be retried. *)

val handle_alloc_failure : t -> bool
(** Run the OOM handler chain once; [true] if any handler asked for a
    retry. *)

val declare_oom : t -> now:int -> unit
(** Record a fatal OOM at virtual time [now]. First call wins. *)

val oom_time : t -> int option
(** Virtual time of the fatal OOM, if one happened. *)

val oom_hit : t -> bool
