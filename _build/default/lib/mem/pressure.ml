type level = Normal | Low | Critical

let pp_level fmt = function
  | Normal -> Format.pp_print_string fmt "normal"
  | Low -> Format.pp_print_string fmt "low"
  | Critical -> Format.pp_print_string fmt "critical"

type t = {
  buddy : Buddy.t;
  low_pages : int;
  critical_pages : int;
  mutable current : level;
  mutable notifiers : (level -> unit) list;
  mutable oom_handlers : (unit -> bool) list;
  mutable oom_at : int option;
}

let create buddy ?(low_ratio = 0.25) ?(critical_ratio = 0.10) () =
  let total = Buddy.total_pages buddy in
  {
    buddy;
    low_pages = int_of_float (float_of_int total *. low_ratio);
    critical_pages = int_of_float (float_of_int total *. critical_ratio);
    current = Normal;
    notifiers = [];
    oom_handlers = [];
    oom_at = None;
  }

let compute t =
  let free = Buddy.free_pages t.buddy in
  if free <= t.critical_pages then Critical
  else if free <= t.low_pages then Low
  else Normal

let level t = compute t

let on_level_change t fn = t.notifiers <- t.notifiers @ [ fn ]

let poll t =
  let next = compute t in
  if next <> t.current then begin
    t.current <- next;
    List.iter (fun fn -> fn next) t.notifiers
  end

let on_oom t fn = t.oom_handlers <- t.oom_handlers @ [ fn ]

let handle_alloc_failure t =
  List.fold_left (fun retry fn -> fn () || retry) false t.oom_handlers

let declare_oom t ~now =
  match t.oom_at with None -> t.oom_at <- Some now | Some _ -> ()

let oom_time t = t.oom_at
let oom_hit t = t.oom_at <> None
