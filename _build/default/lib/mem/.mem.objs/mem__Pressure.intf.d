lib/mem/pressure.mli: Buddy Format
