lib/mem/buddy.mli:
