lib/mem/pressure.ml: Buddy Format List
