lib/mem/buddy.ml: Array Hashtbl Printf
