(** Size classes and sizing heuristics.

    Mirrors the SLUB heuristics the paper says Prudence reuses verbatim
    (§4.3): the slab order grows with object size until a minimum object
    count per slab is reached, and the per-CPU object cache shrinks as
    objects get larger ("larger objects are normally optimized for memory
    efficiency, hence have fewer objects in object cache and smaller
    slabs" — the driver of Fig. 6's size trend). *)

val kmalloc_sizes : int array
(** The generic allocation size classes: 8, 16, ..., 8192 bytes. *)

val kmalloc_class : int -> int
(** [kmalloc_class size] is the smallest class >= [size]. Raises
    [Invalid_argument] if [size] exceeds the largest class. *)

val kmalloc_cache_name : int -> string
(** ["kmalloc-64"] style name for a class size. *)

val slab_order : obj_size:int -> page_size:int -> int
(** Pages-per-slab order (0..3): smallest order giving at least 16 objects
    per slab, capped at order 3. *)

val objs_per_slab : obj_size:int -> page_size:int -> order:int -> int
(** Objects that fit in a [2^order]-page slab. At least 1. *)

val object_cache_capacity : obj_size:int -> int
(** Per-CPU object-cache capacity; decreasing in object size
    (120 for tiny objects down to 6 for 8 KiB). *)

val batch_count : capacity:int -> int
(** Objects moved per refill/flush: half the capacity (at least 1). *)

val min_free_slabs : int
(** Free slabs a node keeps before shrinking returns pages (SLUB's
    [min_partial]-style threshold). *)

val max_color : int
(** Number of cache-colouring offsets cycled across slabs. *)
