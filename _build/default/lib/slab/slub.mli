(** The SLUB-style baseline allocator (paper §2.3, §5.1).

    Allocation: per-CPU object cache first; on miss, refill a batch from
    the node's partial slabs (first-fit, like SLUB), growing the cache from
    the page allocator when the node has nothing free. Free: push into the
    object cache; on overflow, flush half back to the slabs and shrink the
    node when it accumulates too many free slabs.

    Deferred frees go through {!Rcu.call_rcu} (Listing 1): reclamation is
    entirely driven by the synchronization mechanism — batched, throttled,
    and oblivious of allocator state. This is precisely the behaviour whose
    pathologies (§3) Prudence removes. *)

type t

val create : Frame.env -> Rcu.t -> t
(** [create env rcu] makes a SLUB instance whose deferred frees are
    reclaimed by [rcu]'s callback machinery. *)

val env : t -> Frame.env
val rcu : t -> Rcu.t

val create_cache : t -> name:string -> obj_size:int -> Frame.cache
(** Create a named slab cache (or return the existing one by name). *)

val alloc : t -> Frame.cache -> Sim.Machine.cpu -> Frame.objekt option
(** Allocate an object; [None] when the page allocator is exhausted even
    after running the OOM handler chain. *)

val free : t -> Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit
(** Immediate free into the object cache (with overflow flushing). *)

val free_deferred : t -> Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit
(** Listing 1: register a reclamation callback with RCU. The object's
    memory stays unavailable until a grace period elapses {e and} the
    throttled callback processing reaches it. *)

val settle : t -> unit
(** Process-context helper: repeat grace periods + callback drains until no
    deferred object is outstanding. *)

val backend : t -> Backend.t
(** Package as an allocator-agnostic {!Backend.t}. *)
