type t = {
  backend : Backend.t;
  mutable classes : (int * Frame.cache) list; (* class size -> cache *)
}

let create backend = { backend; classes = [] }

let backend t = t.backend

let cache_for t ~size =
  let cls = Size_class.kmalloc_class size in
  match List.assoc_opt cls t.classes with
  | Some c -> c
  | None ->
      let c =
        t.backend.Backend.create_cache
          ~name:(Size_class.kmalloc_cache_name cls) ~obj_size:cls
      in
      t.classes <- (cls, c) :: t.classes;
      c

let alloc t cpu ~size = t.backend.Backend.alloc (cache_for t ~size) cpu

let free t cpu (obj : Frame.objekt) =
  t.backend.Backend.free obj.Frame.parent.Frame.cache cpu obj

let free_deferred t cpu (obj : Frame.objekt) =
  t.backend.Backend.free_deferred obj.Frame.parent.Frame.cache cpu obj

let iter_caches t f = List.iter (fun (_, c) -> f c) t.classes
