(** kmalloc-style size-class facade.

    Routes arbitrary-size allocation requests to per-size-class slab caches
    named [kmalloc-8 .. kmalloc-8192], as the kernel does; the paper's
    microbenchmark (Fig. 6) and several application caches (kmalloc-64, ...)
    go through this interface. Works over any {!Backend.t}. *)

type t

val create : Backend.t -> t

val backend : t -> Backend.t

val cache_for : t -> size:int -> Frame.cache
(** The (lazily created) cache of the smallest class >= [size]. *)

val alloc : t -> Sim.Machine.cpu -> size:int -> Frame.objekt option
(** kmalloc: allocate from the class cache for [size]. *)

val free : t -> Sim.Machine.cpu -> Frame.objekt -> unit
(** kfree. *)

val free_deferred : t -> Sim.Machine.cpu -> Frame.objekt -> unit
(** kfree_deferred (Prudence) / kfree_rcu-style deferred free (baseline). *)

val iter_caches : t -> (Frame.cache -> unit) -> unit
