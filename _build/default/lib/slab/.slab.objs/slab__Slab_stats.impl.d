lib/slab/slab_stats.ml: Format
