lib/slab/kmalloc.ml: Backend Frame List Size_class
