lib/slab/slub.ml: Backend Costs Frame List Rcu Sim Slab_stats
