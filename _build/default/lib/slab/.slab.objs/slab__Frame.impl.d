lib/slab/frame.ml: Array Costs Format List Mem Printf Sim Size_class Slab_stats
