lib/slab/size_class.ml: Array Printf
