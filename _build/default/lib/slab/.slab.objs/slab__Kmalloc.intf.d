lib/slab/kmalloc.mli: Backend Frame Sim
