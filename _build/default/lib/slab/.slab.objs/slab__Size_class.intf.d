lib/slab/size_class.mli:
