lib/slab/costs.mli:
