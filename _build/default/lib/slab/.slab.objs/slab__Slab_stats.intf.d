lib/slab/slab_stats.mli: Format
