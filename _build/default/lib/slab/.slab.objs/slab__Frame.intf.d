lib/slab/frame.mli: Costs Format Mem Sim Slab_stats
