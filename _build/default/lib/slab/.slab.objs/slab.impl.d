lib/slab/slab.ml: Backend Costs Frame Kmalloc Size_class Slab_stats Slub
