lib/slab/backend.ml: Frame Sim
