lib/slab/costs.ml:
