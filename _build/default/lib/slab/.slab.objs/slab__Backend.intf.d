lib/slab/backend.mli: Frame Sim
