lib/slab/slub.mli: Backend Frame Rcu Sim
