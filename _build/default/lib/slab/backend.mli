(** First-class allocator interface.

    Workloads and RCU-protected data structures are written against this
    record so the same benchmark code runs over the SLUB baseline and over
    Prudence — the comparison the whole evaluation depends on. *)

type t = {
  label : string;  (** "slub" or "prudence". *)
  create_cache : name:string -> obj_size:int -> Frame.cache;
      (** Create (or reuse) a named slab cache. *)
  alloc : Frame.cache -> Sim.Machine.cpu -> Frame.objekt option;
      (** Allocate one object; [None] on out-of-memory. *)
  free : Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit;
      (** Immediate free (the mutator knows no readers can hold it). *)
  free_deferred : Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit;
      (** Defer the free until readers are done: Listing 1 (baseline:
          [call_rcu]) vs Listing 2 (Prudence: [free_deferred]). *)
  settle : unit -> unit;
      (** Wait (in process context) until every deferred object has been
          reclaimed; used before end-of-run measurements. *)
  iter_caches : (Frame.cache -> unit) -> unit;
      (** Iterate every cache created through this backend. *)
}
