let kmalloc_sizes = [| 8; 16; 32; 64; 96; 128; 192; 256; 512; 1024; 2048; 4096; 8192 |]

let kmalloc_class size =
  if size <= 0 then invalid_arg "Size_class.kmalloc_class: non-positive size";
  let rec find i =
    if i >= Array.length kmalloc_sizes then
      invalid_arg
        (Printf.sprintf "Size_class.kmalloc_class: %d exceeds largest class"
           size)
    else if kmalloc_sizes.(i) >= size then kmalloc_sizes.(i)
    else find (i + 1)
  in
  find 0

let kmalloc_cache_name size = Printf.sprintf "kmalloc-%d" (kmalloc_class size)

let objs_per_slab ~obj_size ~page_size ~order =
  max 1 ((page_size lsl order) / obj_size)

let slab_order ~obj_size ~page_size =
  let rec go order =
    if order >= 3 then 3
    else if objs_per_slab ~obj_size ~page_size ~order >= 16 then order
    else go (order + 1)
  in
  go 0

let object_cache_capacity ~obj_size =
  if obj_size <= 64 then 120
  else if obj_size <= 128 then 60
  else if obj_size <= 256 then 54
  else if obj_size <= 512 then 30
  else if obj_size <= 1024 then 24
  else if obj_size <= 2048 then 15
  else if obj_size <= 4096 then 9
  else 6

let batch_count ~capacity = max 1 (capacity / 2)

let min_free_slabs = 8
let max_color = 8
