(** Virtual-time cost model for allocator operations.

    The paper measures (§3.3) that, relative to an object-cache hit, a
    refill is 4x and a slab-cache grow is 14x as expensive. Those ratios are
    the backbone of this model; the remaining entries are set to plausible
    values consistent with them. All costs are in virtual nanoseconds and
    are charged to the CPU performing the operation, so they flow into
    workload throughput. The node-lock hold times interact with
    {!Sim.Simlock} to model contention under bursty parallel flushing. *)

type t = {
  hit : int;  (** Allocation served from the object cache. *)
  free_to_cache : int;  (** Free that just pushes into the object cache. *)
  refill : int;  (** Object-cache refill from node slabs (4x hit). *)
  refill_per_obj : int;  (** Added per object moved during refill. *)
  flush : int;  (** Object-cache flush into node slabs. *)
  flush_per_obj : int;
  grow : int;  (** Slab-cache grow: page allocation + slab init (14x hit). *)
  shrink : int;  (** Returning one free slab's pages. *)
  node_lock_hold : int;  (** Serialized time under the node-list lock. *)
  defer_enqueue : int;  (** free_deferred fast path / call_rcu enqueue. *)
  latent_put : int;  (** Placing an object in latent cache/slab. *)
  merge : int;  (** Merging ripe latent objects into the object cache. *)
  merge_per_obj : int;
  premove : int;  (** Pre-moving one slab between node lists. *)
  page_lock_hold : int;
      (** Serialized time in the page allocator (zone lock) per slab
          grow/shrink. *)
  page_zero_per_page : int;
      (** Additional serialized time per page of the slab (zeroing /
          higher-order assembly); makes large-object slabs the most
          expensive to churn, as in Fig. 6. *)
  cold_touch : int;
      (** First-touch penalty when a mutator receives an object on a page
          it has never used (cache/TLB misses). Recycled objects are hot —
          one of Prudence's structural advantages. *)
  cold_touch_per_256b : int;  (** Extra first-touch cost per 256 bytes. *)
  llc_bytes : int;
      (** Last-level-cache size of the (scaled-down) machine. *)
  llc_pressure : int;
      (** Extra per-allocation cost for each doubling of the resident
          footprint beyond [llc_bytes] (capped at 4 doublings): a leaking
          baseline drags every memory touch into DRAM/TLB misses. *)
}

val default : t
(** hit = 40 ns; the full refill path (hit + refill = 160 ns) is 4x a hit
    and the full grow path (hit + refill + grow = 560 ns) is 14x, matching
    the paper's measurements. *)

val scaled : float -> t
(** [scaled f] multiplies every cost by [f] (for sensitivity ablations). *)
