type t = {
  hit : int;
  free_to_cache : int;
  refill : int;
  refill_per_obj : int;
  flush : int;
  flush_per_obj : int;
  grow : int;
  shrink : int;
  node_lock_hold : int;
  defer_enqueue : int;
  latent_put : int;
  merge : int;
  merge_per_obj : int;
  premove : int;
  page_lock_hold : int;
  page_zero_per_page : int;
  cold_touch : int;
  cold_touch_per_256b : int;
  llc_bytes : int;
  llc_pressure : int;
}

let default =
  {
    hit = 40;
    free_to_cache = 35;
    refill = 45;
    refill_per_obj = 1;
    flush = 50;
    flush_per_obj = 1;
    grow = 100;
    shrink = 150;
    node_lock_hold = 60;
    defer_enqueue = 30;
    latent_put = 25;
    merge = 50;
    merge_per_obj = 1;
    premove = 50;
    page_lock_hold = 60;
    page_zero_per_page = 80;
    cold_touch = 60;
    cold_touch_per_256b = 15;
    llc_bytes = 2 * 1024 * 1024;
    llc_pressure = 100;
  }

let scaled f =
  let s x = int_of_float (float_of_int x *. f) in
  {
    hit = s default.hit;
    free_to_cache = s default.free_to_cache;
    refill = s default.refill;
    refill_per_obj = s default.refill_per_obj;
    flush = s default.flush;
    flush_per_obj = s default.flush_per_obj;
    grow = s default.grow;
    shrink = s default.shrink;
    node_lock_hold = s default.node_lock_hold;
    defer_enqueue = s default.defer_enqueue;
    latent_put = s default.latent_put;
    merge = s default.merge;
    merge_per_obj = s default.merge_per_obj;
    premove = s default.premove;
    page_lock_hold = s default.page_lock_hold;
    page_zero_per_page = s default.page_zero_per_page;
    cold_touch = s default.cold_touch;
    cold_touch_per_256b = s default.cold_touch_per_256b;
    llc_bytes = default.llc_bytes;
    llc_pressure = s default.llc_pressure;
  }
