type t = {
  label : string;
  create_cache : name:string -> obj_size:int -> Frame.cache;
  alloc : Frame.cache -> Sim.Machine.cpu -> Frame.objekt option;
  free : Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit;
  free_deferred : Frame.cache -> Sim.Machine.cpu -> Frame.objekt -> unit;
  settle : unit -> unit;
  iter_caches : (Frame.cache -> unit) -> unit;
}
