lib/core/core.ml: Experiments Mem Metrics Prudence Rcu Rcudata Sim Slab Workloads
