lib/core/experiments.mli: Metrics Workloads
