lib/core/experiments.ml: Array Float List Metrics Option Printf Prudence Rcu Rcudata Sim Slab String Workloads
