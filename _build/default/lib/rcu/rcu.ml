(** Facade: [Rcu] re-exports the grace-period engine at top level plus the
    callback-list and reader-tracking submodules. *)

module Cblist = Cblist
module Readers = Readers
include Gp
