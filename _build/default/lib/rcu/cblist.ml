type entry = { cookie : int; fn : unit -> unit }

type t = {
  wait : entry Queue.t;
  done_ : (unit -> unit) Queue.t;
  mutable last_cookie : int;
}

let create () = { wait = Queue.create (); done_ = Queue.create (); last_cookie = min_int }

let enqueue t ~cookie fn =
  assert (cookie >= t.last_cookie);
  t.last_cookie <- cookie;
  Queue.push { cookie; fn } t.wait

let advance t ~completed =
  let moved = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.wait with
    | Some e when e.cookie <= completed ->
        ignore (Queue.pop t.wait);
        Queue.push e.fn t.done_;
        incr moved
    | _ -> continue := false
  done;
  !moved

let take_done t ~max =
  let rec take n acc =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.done_ with
      | None -> List.rev acc
      | Some fn -> take (n - 1) (fn :: acc)
  in
  take max []

let waiting t = Queue.length t.wait
let ready t = Queue.length t.done_
let total t = waiting t + ready t

let next_cookie t =
  match Queue.peek_opt t.wait with None -> None | Some e -> Some e.cookie
