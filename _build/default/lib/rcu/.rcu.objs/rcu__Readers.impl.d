lib/rcu/readers.ml: Array Gp Hashtbl List Printf Sim
