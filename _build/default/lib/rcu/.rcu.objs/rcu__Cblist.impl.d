lib/rcu/cblist.ml: List Queue
