lib/rcu/readers.mli: Gp Sim
