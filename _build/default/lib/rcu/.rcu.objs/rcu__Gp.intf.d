lib/rcu/gp.mli: Format Mem Sim
