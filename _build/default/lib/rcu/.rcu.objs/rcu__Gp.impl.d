lib/rcu/gp.ml: Array Cblist Format List Mem Sim
