lib/rcu/rcu.ml: Cblist Gp Readers
