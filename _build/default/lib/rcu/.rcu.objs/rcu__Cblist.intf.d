lib/rcu/cblist.mli:
