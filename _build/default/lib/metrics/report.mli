(** Experiment reports: what the paper said, what we measured. *)

type t = {
  id : string;  (** "fig3", "fig6", ... *)
  title : string;
  paper_claim : string;
      (** The result as stated in the paper (the shape to match). *)
  body : string;  (** Rendered table / chart / prose for this run. *)
  verdict : string;  (** One-line measured summary for EXPERIMENTS.md. *)
}

val make :
  id:string -> title:string -> paper_claim:string -> verdict:string ->
  string -> t

val print : Format.formatter -> t -> unit
(** Banner + claim + body + verdict. *)

val print_all : Format.formatter -> t list -> unit
