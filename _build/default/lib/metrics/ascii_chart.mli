(** Minimal ASCII line chart, used to print the Fig. 3 memory-over-time
    traces in the bench output. *)

val line :
  ?width:int ->
  ?height:int ->
  series:(string * (int * float) array) list ->
  unit ->
  string
(** [line ~series ()] plots each named series over a shared time axis
    (x = sample time in seconds, y = value). Each series is drawn with its
    own glyph; a legend and y-axis labels are included. Series may have
    different lengths/time ranges. *)
