let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let line ?(width = 72) ?(height = 16) ~series () =
  let all_points = List.concat_map (fun (_, a) -> Array.to_list a) series in
  match all_points with
  | [] -> "(no data)"
  | _ ->
      let tmin = List.fold_left (fun acc (t, _) -> min acc t) max_int all_points in
      let tmax = List.fold_left (fun acc (t, _) -> max acc t) min_int all_points in
      let vmax =
        List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 all_points
      in
      let vmax = if vmax <= 0.0 then 1.0 else vmax in
      let tspan = max 1 (tmax - tmin) in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, points) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          Array.iter
            (fun (t, v) ->
              let x = (t - tmin) * (width - 1) / tspan in
              let y =
                height - 1
                - int_of_float (v /. vmax *. float_of_int (height - 1))
              in
              let y = max 0 (min (height - 1) y) in
              grid.(y).(x) <- glyph)
            points)
        series;
      let buf = Buffer.create (width * height * 2) in
      Array.iteri
        (fun y row ->
          let label =
            if y = 0 then Printf.sprintf "%10.1f |" vmax
            else if y = height - 1 then Printf.sprintf "%10.1f |" 0.0
            else "           |"
          in
          Buffer.add_string buf label;
          Buffer.add_string buf (String.init width (fun x -> row.(x)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "           +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "            t = %.2fs .. %.2fs\n"
           (float_of_int tmin /. 1e9)
           (float_of_int tmax /. 1e9));
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "            %c = %s\n"
               glyphs.(si mod Array.length glyphs)
               name))
        series;
      Buffer.contents buf
