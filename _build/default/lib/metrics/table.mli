(** ASCII table rendering for benchmark reports. *)

type align = L | R

val render :
  ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a separator under the
    header. Column widths fit the widest cell; [align] defaults to left for
    the first column and right for the rest. Rows shorter than the header
    are padded with empty cells. *)

val fmt_f : ?dec:int -> float -> string
(** Format a float with [dec] decimals (default 2); NaN renders as "-". *)

val fmt_i : int -> string
(** Format an int with thousands separators (1234567 -> "1,234,567"). *)

val fmt_pct : ?dec:int -> float -> string
(** Format as a signed percentage ("+12.3%" / "-4.0%"). *)
