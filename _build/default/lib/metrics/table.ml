type align = L | R

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | L -> s ^ String.make (width - n) ' '
    | R -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then L else R) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
         cells)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: sep :: List.map line rows)

let fmt_f ?(dec = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" dec v

let fmt_i v =
  let s = string_of_int (abs v) in
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if v < 0 then "-" else "") ^ Buffer.contents buf

let fmt_pct ?(dec = 1) v =
  if Float.is_nan v then "-"
  else Printf.sprintf "%s%.*f%%" (if v >= 0.0 then "+" else "") dec v
