type t = {
  id : string;
  title : string;
  paper_claim : string;
  body : string;
  verdict : string;
}

let make ~id ~title ~paper_claim ~verdict body =
  { id; title; paper_claim; body; verdict }

let print fmt r =
  let bar = String.make 78 '=' in
  Format.fprintf fmt "%s@.[%s] %s@.%s@." bar (String.uppercase_ascii r.id)
    r.title bar;
  Format.fprintf fmt "paper:    %s@." r.paper_claim;
  Format.fprintf fmt "@.%s@." r.body;
  Format.fprintf fmt "@.measured: %s@.@." r.verdict

let print_all fmt rs = List.iter (print fmt) rs
