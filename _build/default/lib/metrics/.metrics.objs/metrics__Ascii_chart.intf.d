lib/metrics/ascii_chart.mli:
