lib/metrics/metrics.ml: Ascii_chart Report Table
