lib/metrics/report.ml: Format List String
