lib/metrics/table.mli:
