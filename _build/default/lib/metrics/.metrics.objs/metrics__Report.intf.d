lib/metrics/report.mli: Format
