lib/rcudata/rcuhash.mli: Rcu Sim Slab
