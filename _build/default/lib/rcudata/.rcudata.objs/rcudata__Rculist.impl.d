lib/rcudata/rculist.ml: List Rcu Slab
