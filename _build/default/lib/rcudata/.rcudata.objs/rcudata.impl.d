lib/rcudata/rcudata.ml: Rcuhash Rculist Rcutree
