lib/rcudata/rculist.mli: Rcu Sim Slab
