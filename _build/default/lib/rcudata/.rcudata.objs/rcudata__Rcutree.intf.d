lib/rcudata/rcutree.mli: Rcu Sim Slab
