lib/rcudata/rcutree.ml: List Rcu Slab
