lib/rcudata/rcuhash.ml: Array Printf Rculist
