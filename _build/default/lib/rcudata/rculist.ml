type entry = { key : int; value : int; obj : Slab.Frame.objekt }

type t = {
  backend : Slab.Backend.t;
  readers : Rcu.Readers.t;
  cache : Slab.Frame.cache;
  list_name : string;
  mutable entries : entry list;
}

let create ~backend ~readers ~cache ~name =
  { backend; readers; cache; list_name = name; entries = [] }

let name t = t.list_name
let length t = List.length t.entries

let insert t cpu ~key ~value =
  match t.backend.Slab.Backend.alloc t.cache cpu with
  | None -> false
  | Some obj ->
      t.entries <- { key; value; obj } :: t.entries;
      true

let update t cpu ~key ~value =
  let rec find = function
    | [] -> None
    | e :: _ when e.key = key -> Some e
    | _ :: rest -> find rest
  in
  match find t.entries with
  | None -> `Absent
  | Some old -> (
      match t.backend.Slab.Backend.alloc t.cache cpu with
      | None -> `Oom
      | Some obj ->
          let fresh = { key; value; obj } in
          (* Publish the new version, then defer the old one: pre-existing
             readers may still hold it (Fig. 1). *)
          t.entries <-
            List.map (fun e -> if e == old then fresh else e) t.entries;
          t.backend.Slab.Backend.free_deferred t.cache cpu old.obj;
          `Updated)

let delete t cpu ~key =
  let rec split acc = function
    | [] -> None
    | e :: rest when e.key = key -> Some (e, List.rev_append acc rest)
    | e :: rest -> split (e :: acc) rest
  in
  match split [] t.entries with
  | None -> false
  | Some (victim, rest) ->
      t.entries <- rest;
      t.backend.Slab.Backend.free_deferred t.cache cpu victim.obj;
      true

let lookup t cpu ~key =
  Rcu.Readers.with_section t.readers cpu (fun () ->
      let rec find = function
        | [] -> None
        | e :: _ when e.key = key ->
            (* The reader dereferences the object: track it so reclaiming
               it now would be flagged. *)
            Rcu.Readers.hold t.readers cpu ~oid:e.obj.Slab.Frame.oid;
            Some e.value
        | _ :: rest -> find rest
      in
      find t.entries)

let read_iter t cpu f =
  Rcu.Readers.with_section t.readers cpu (fun () ->
      List.iter
        (fun e ->
          Rcu.Readers.hold t.readers cpu ~oid:e.obj.Slab.Frame.oid;
          f ~key:e.key ~value:e.value;
          Rcu.Readers.release t.readers cpu ~oid:e.obj.Slab.Frame.oid)
        t.entries)

let keys t = List.map (fun e -> e.key) t.entries

let destroy t cpu =
  List.iter
    (fun e -> t.backend.Slab.Backend.free_deferred t.cache cpu e.obj)
    t.entries;
  t.entries <- []
