(** RCU-protected linked list (the paper's Fig. 1 running example).

    Writers never update an element in place: they allocate a new backing
    object from the slab cache, copy/modify, swing the list to the new
    version and defer-free the old one through the backend — exactly the
    procrastination pattern that stresses the allocator. Readers traverse
    inside read-side critical sections and register the references they
    hold with {!Rcu.Readers}, arming the premature-reuse checker. *)

type t

val create :
  backend:Slab.Backend.t ->
  readers:Rcu.Readers.t ->
  cache:Slab.Frame.cache ->
  name:string ->
  t
(** A list whose element payloads live in [cache] (e.g. 512-byte objects
    for the endurance experiment). *)

val name : t -> string
val length : t -> int

val insert : t -> Sim.Machine.cpu -> key:int -> value:int -> bool
(** Allocate a node and prepend it. [false] on out-of-memory. Duplicate
    keys are allowed (the newest shadows). *)

val update : t -> Sim.Machine.cpu -> key:int -> value:int ->
  [ `Updated | `Absent | `Oom ]
(** Copy-update: allocate the new version, replace the old in the list,
    defer-free the old version (Fig. 1). *)

val delete : t -> Sim.Machine.cpu -> key:int -> bool
(** Unlink the element and defer-free its backing object. *)

val lookup : t -> Sim.Machine.cpu -> key:int -> int option
(** Read-side traversal in a critical section; holds a tracked reference
    to the found element while "using" it. *)

val read_iter : t -> Sim.Machine.cpu -> (key:int -> value:int -> unit) -> unit
(** Visit every element inside one critical section. *)

val keys : t -> int list
(** Snapshot of the keys (test helper, not a simulated read). *)

val destroy : t -> Sim.Machine.cpu -> unit
(** Delete every element (defer-freeing each). *)
