(** RCU-protected hash table with per-bucket chains.

    The pattern behind the kernel's dcache/route-cache-style tables the
    paper cites (§1): lookups are wait-free read-side traversals; updates
    copy the entry, publish the new version and defer-free the old. Built
    on {!Rculist} chains, one per bucket. *)

type t

val create :
  backend:Slab.Backend.t ->
  readers:Rcu.Readers.t ->
  cache:Slab.Frame.cache ->
  buckets:int ->
  name:string ->
  t
(** [buckets] must be positive (fixed-size table). *)

val buckets : t -> int
val size : t -> int
(** Total entries across buckets. *)

val insert : t -> Sim.Machine.cpu -> key:int -> value:int -> bool
(** Insert (allowing duplicates to shadow); [false] on out-of-memory. *)

val update : t -> Sim.Machine.cpu -> key:int -> value:int ->
  [ `Updated | `Absent | `Oom ]

val delete : t -> Sim.Machine.cpu -> key:int -> bool
val lookup : t -> Sim.Machine.cpu -> key:int -> int option

val destroy : t -> Sim.Machine.cpu -> unit
(** Defer-free every entry. *)
