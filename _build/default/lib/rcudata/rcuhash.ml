type t = { chains : Rculist.t array }

let create ~backend ~readers ~cache ~buckets ~name =
  if buckets <= 0 then invalid_arg "Rcuhash.create: buckets must be positive";
  {
    chains =
      Array.init buckets (fun i ->
          Rculist.create ~backend ~readers ~cache
            ~name:(Printf.sprintf "%s[%d]" name i));
  }

let buckets t = Array.length t.chains

(* Knuth multiplicative hash; good enough for integer keys. *)
let bucket_of t key =
  let h = key * 2654435761 land max_int in
  t.chains.(h mod Array.length t.chains)

let size t =
  Array.fold_left (fun acc c -> acc + Rculist.length c) 0 t.chains

let insert t cpu ~key ~value = Rculist.insert (bucket_of t key) cpu ~key ~value
let update t cpu ~key ~value = Rculist.update (bucket_of t key) cpu ~key ~value
let delete t cpu ~key = Rculist.delete (bucket_of t key) cpu ~key
let lookup t cpu ~key = Rculist.lookup (bucket_of t key) cpu ~key

let destroy t cpu = Array.iter (fun c -> Rculist.destroy c cpu) t.chains
