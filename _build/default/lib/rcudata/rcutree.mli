(** RCU-protected binary search tree with path copying.

    The paper notes (§3.1) that tree updates defer {e multiple} objects per
    operation: "tree re-balancing results in multiple deferred objects"
    (citing RCU balanced trees). This structure models that traffic
    pattern: writers never mutate reachable nodes — an insert, update or
    delete rebuilds the root-to-site path from fresh slab objects,
    publishes the new root, and defer-frees every replaced node, so a
    single update defers O(depth) objects. Readers traverse inside
    read-side critical sections, registering each node they touch with the
    {!Rcu.Readers} checker.

    Keys are rotated into place with the classic root-insertion-free treap
    discipline replaced by simple BST shape (no rebalancing); the
    deferred-object traffic per update is the object of study, not the
    asymptotics. *)

type t

val create :
  backend:Slab.Backend.t ->
  readers:Rcu.Readers.t ->
  cache:Slab.Frame.cache ->
  name:string ->
  t

val name : t -> string
val size : t -> int
val depth : t -> int
(** Height of the current root version (0 for empty). *)

val insert : t -> Sim.Machine.cpu -> key:int -> value:int -> bool
(** Insert or replace [key]; path-copies from the root and defer-frees the
    old path (and the old node, if replacing). [false] on out-of-memory
    (the tree is unchanged). *)

val delete : t -> Sim.Machine.cpu -> key:int -> bool
(** Remove [key] if present; path-copies and defer-frees the old path and
    the removed node. [false] if absent or out-of-memory. *)

val lookup : t -> Sim.Machine.cpu -> key:int -> int option
(** Read-side traversal; every visited node is held (and released) through
    the reader tracker. *)

val to_sorted_list : t -> (int * int) list
(** In-order (key, value) pairs — test helper, not a simulated read. *)

val check_bst_invariant : t -> unit
(** Assert strict key ordering throughout the current version. *)

val destroy : t -> Sim.Machine.cpu -> unit
(** Defer-free every node of the current version. *)
