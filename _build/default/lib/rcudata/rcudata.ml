(** Facade: RCU-protected data structures used by workloads and examples. *)

module Rculist = Rculist
module Rcuhash = Rcuhash
module Rcutree = Rcutree
