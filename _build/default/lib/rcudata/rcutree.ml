type node = {
  key : int;
  value : int;
  left : node option;
  right : node option;
  obj : Slab.Frame.objekt;
}

type t = {
  backend : Slab.Backend.t;
  readers : Rcu.Readers.t;
  cache : Slab.Frame.cache;
  tree_name : string;
  mutable root : node option;
  mutable count : int;
}

let create ~backend ~readers ~cache ~name =
  { backend; readers; cache; tree_name = name; root = None; count = 0 }

let name t = t.tree_name
let size t = t.count

let rec node_depth = function
  | None -> 0
  | Some n -> 1 + max (node_depth n.left) (node_depth n.right)

let depth t = node_depth t.root

exception Oom

(* Fresh nodes are tracked per operation so that an out-of-memory failure
   midway through a path copy can roll back: unpublished nodes are freed
   immediately (no reader can hold them). *)
let fresh t cpu scratch ~key ~value ~left ~right =
  match t.backend.Slab.Backend.alloc t.cache cpu with
  | Some obj ->
      let n = { key; value; left; right; obj } in
      scratch := n :: !scratch;
      n
  | None -> raise Oom

let rollback t cpu scratch =
  List.iter
    (fun (n : node) -> t.backend.Slab.Backend.free t.cache cpu n.obj)
    !scratch

let defer t cpu (n : node) =
  t.backend.Slab.Backend.free_deferred t.cache cpu n.obj

(* Path-copying insert: returns the new subtree and the list of replaced
   nodes (the old path), plus whether the key was newly added. *)
let insert t cpu ~key ~value =
  let scratch = ref [] in
  let rec go = function
    | None -> (fresh t cpu scratch ~key ~value ~left:None ~right:None, [], true)
    | Some n when key < n.key ->
        let child, replaced, added = go n.left in
        ( fresh t cpu scratch ~key:n.key ~value:n.value ~left:(Some child)
            ~right:n.right,
          n :: replaced,
          added )
    | Some n when key > n.key ->
        let child, replaced, added = go n.right in
        ( fresh t cpu scratch ~key:n.key ~value:n.value ~left:n.left
            ~right:(Some child),
          n :: replaced,
          added )
    | Some n ->
        (* Replace in place (new version of the same key). *)
        (fresh t cpu scratch ~key ~value ~left:n.left ~right:n.right, [ n ], false)
  in
  match go t.root with
  | new_root, replaced, added ->
      (* Publish the new version, then defer the whole old path: its nodes
         may still be visible to pre-existing readers. *)
      t.root <- Some new_root;
      List.iter (defer t cpu) replaced;
      if added then t.count <- t.count + 1;
      true
  | exception Oom ->
      rollback t cpu scratch;
      false

(* Delete via path copying. The removed node's subtrees are re-joined by
   pulling up the rightmost node of the left subtree (also path-copied). *)
let delete t cpu ~key =
  let scratch = ref [] in
  (* pull_max returns (max node payload, new left-subtree, replaced). *)
  let rec pull_max (n : node) =
    match n.right with
    | None -> ((n.key, n.value), n.left, [ n ])
    | Some r ->
        let payload, right', replaced = pull_max r in
        ( payload,
          Some
            (fresh t cpu scratch ~key:n.key ~value:n.value ~left:n.left ~right:right'),
          n :: replaced )
  in
  (* go returns None when the key is absent, otherwise the rebuilt subtree
     (possibly None for an emptied leaf position) plus the replaced path. *)
  let rec go = function
    | None -> None
    | Some n when key < n.key -> (
        match go n.left with
        | None -> None
        | Some (sub, replaced) ->
            Some
              ( Some
                  (fresh t cpu scratch ~key:n.key ~value:n.value ~left:sub
                     ~right:n.right),
                n :: replaced ))
    | Some n when key > n.key -> (
        match go n.right with
        | None -> None
        | Some (sub, replaced) ->
            Some
              ( Some
                  (fresh t cpu scratch ~key:n.key ~value:n.value ~left:n.left
                     ~right:sub),
                n :: replaced ))
    | Some n -> (
        (* Found: join the subtrees. *)
        match (n.left, n.right) with
        | None, None -> Some (None, [ n ])
        | None, r -> Some (r, [ n ])
        | l, None -> Some (l, [ n ])
        | Some l, r ->
            let (mk, mv), left', replaced = pull_max l in
            Some
              ( Some (fresh t cpu scratch ~key:mk ~value:mv ~left:left' ~right:r),
                (n :: replaced) ))
  in
  match go t.root with
  | None -> false
  | Some (new_root, replaced) ->
      t.root <- new_root;
      List.iter (defer t cpu) replaced;
      t.count <- t.count - 1;
      true
  | exception Oom ->
      rollback t cpu scratch;
      false

let lookup t cpu ~key =
  Rcu.Readers.with_section t.readers cpu (fun () ->
      let rec go = function
        | None -> None
        | Some n ->
            Rcu.Readers.hold t.readers cpu ~oid:n.obj.Slab.Frame.oid;
            let r =
              if key < n.key then go n.left
              else if key > n.key then go n.right
              else Some n.value
            in
            Rcu.Readers.release t.readers cpu ~oid:n.obj.Slab.Frame.oid;
            r
      in
      go t.root)

let to_sorted_list t =
  let rec go acc = function
    | None -> acc
    | Some n -> go ((n.key, n.value) :: go acc n.right) n.left
  in
  go [] t.root

let check_bst_invariant t =
  let rec go lo hi = function
    | None -> ()
    | Some n ->
        assert (lo < n.key && n.key < hi);
        go lo n.key n.left;
        go n.key hi n.right
  in
  go min_int max_int t.root

let destroy t cpu =
  let rec go = function
    | None -> ()
    | Some n ->
        go n.left;
        go n.right;
        defer t cpu n
  in
  go t.root;
  t.root <- None;
  t.count <- 0
