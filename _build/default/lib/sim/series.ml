type t = {
  series_name : string;
  mutable rev_samples : (int * float) list;
  mutable n : int;
  mutable last_time : int;
}

let create ~name = { series_name = name; rev_samples = []; n = 0; last_time = min_int }

let name s = s.series_name

let push s ~time v =
  assert (time >= s.last_time);
  s.last_time <- time;
  s.rev_samples <- (time, v) :: s.rev_samples;
  s.n <- s.n + 1

let length s = s.n

let to_array s = Array.of_list (List.rev s.rev_samples)

let last s = match s.rev_samples with [] -> None | x :: _ -> Some x

let max_value s =
  List.fold_left (fun acc (_, v) -> if v > acc then v else acc) 0. s.rev_samples

let sample_every eng s ~period f =
  Engine.every eng ~period (fun () ->
      push s ~time:(Engine.now eng) (f ());
      true)

let downsample s ~max_points =
  let a = to_array s in
  let n = Array.length a in
  if n <= max_points || max_points <= 1 then a
  else
    Array.init max_points (fun i ->
        let j = i * (n - 1) / (max_points - 1) in
        a.(j))
