(* Two-stack deque with lazy rebalancing: [front] holds elements from the
   front inward, [back] from the back inward. *)
type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list;
  mutable size : int;
}

let create () = { front = []; back = []; size = 0 }

let length d = d.size
let is_empty d = d.size = 0

let push_front d x =
  d.front <- x :: d.front;
  d.size <- d.size + 1

let push_back d x =
  d.back <- x :: d.back;
  d.size <- d.size + 1

let pop_front d =
  match d.front with
  | x :: rest ->
      d.front <- rest;
      d.size <- d.size - 1;
      Some x
  | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: rest ->
          d.back <- [];
          d.front <- rest;
          d.size <- d.size - 1;
          Some x)

let pop_back d =
  match d.back with
  | x :: rest ->
      d.back <- rest;
      d.size <- d.size - 1;
      Some x
  | [] -> (
      match List.rev d.front with
      | [] -> None
      | x :: rest ->
          d.front <- [];
          d.back <- rest;
          d.size <- d.size - 1;
          Some x)

let peek_front d =
  match d.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev d.back with [] -> None | x :: _ -> Some x)

let peek_back d =
  match d.back with
  | x :: _ -> Some x
  | [] -> ( match List.rev d.front with [] -> None | x :: _ -> Some x)

let iter f d =
  List.iter f d.front;
  List.iter f (List.rev d.back)

let to_list d = d.front @ List.rev d.back

let clear d =
  d.front <- [];
  d.back <- [];
  d.size <- 0
