type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the integer seed into generator state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro state must not be all-zero; splitmix64 guarantees it for any
     seed, but keep a belt-and-braces fixup. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let seed = Int64.to_int (bits64 g) in
  create ~seed

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 g) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  let unit = Int64.to_float bits *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g 1.0 < p

let exponential g ~mean =
  let u = ref (float g 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let geometric g ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of range";
  if p = 1.0 then 0
  else begin
    let u = ref (float g 1.0) in
    if !u = 0.0 then u := 1e-12;
    int_of_float (Float.floor (log !u /. log (1.0 -. p)))
  end

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
