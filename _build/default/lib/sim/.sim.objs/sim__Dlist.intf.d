lib/sim/dlist.mli:
