lib/sim/series.ml: Array Engine List
