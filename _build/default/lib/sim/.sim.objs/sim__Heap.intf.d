lib/sim/heap.mli:
