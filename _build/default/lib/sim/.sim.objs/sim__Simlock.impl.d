lib/sim/simlock.ml:
