lib/sim/stat.mli: Format
