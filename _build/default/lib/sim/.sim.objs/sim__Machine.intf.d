lib/sim/machine.mli: Engine
