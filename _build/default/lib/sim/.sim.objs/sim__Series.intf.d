lib/sim/series.mli: Engine
