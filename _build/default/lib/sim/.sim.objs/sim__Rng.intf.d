lib/sim/rng.mli:
