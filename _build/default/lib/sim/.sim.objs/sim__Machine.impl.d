lib/sim/machine.ml: Array Engine List Process
