lib/sim/dlist.ml: List
