lib/sim/stat.ml: Float Format List
