lib/sim/simlock.mli:
