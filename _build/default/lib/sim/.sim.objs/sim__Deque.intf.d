lib/sim/deque.mli:
