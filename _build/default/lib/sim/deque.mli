(** Double-ended queue (amortized O(1) at both ends).

    Prudence's latent cache is a deque: ripe objects are merged from the
    front (oldest grace-period cookies first) while pre-flush evicts from
    the back (newest, furthest from being reusable). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option
val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
(** Front first. *)

val clear : 'a t -> unit
