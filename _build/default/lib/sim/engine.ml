type event = {
  time : int;
  seq : int;
  fn : unit -> unit;
  daemon : bool;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable now : int;
  mutable seq : int;
  mutable running : bool;
  mutable stop_requested : bool;
  mutable executed : int;
  mutable busy : int; (* queued non-daemon events *)
  mutable waiters : int; (* suspended processes (condition waits) *)
  queue : event Heap.t;
  rng : Rng.t;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    running = false;
    stop_requested = false;
    executed = 0;
    busy = 0;
    waiters = 0;
    queue = Heap.create ~cmp:compare_events ();
    rng = Rng.create ~seed;
  }

let now t = t.now
let rng t = t.rng

let schedule_at ?(daemon = false) t ~time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.now);
  let ev = { time; seq = t.seq; fn; daemon; cancelled = false } in
  t.seq <- t.seq + 1;
  if not daemon then t.busy <- t.busy + 1;
  Heap.push t.queue ev;
  ev

let schedule ?daemon t ~after fn =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?daemon t ~time:(t.now + after) fn

let incr_waiters t = t.waiters <- t.waiters + 1
let decr_waiters t = t.waiters <- t.waiters - 1
let busy t = t.busy + t.waiters

let cancel ev = ev.cancelled <- true

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested
let pending t = Heap.length t.queue
let executed t = t.executed

let exec t ev =
  t.now <- ev.time;
  if not ev.daemon then t.busy <- t.busy - 1;
  if not ev.cancelled then begin
    t.executed <- t.executed + 1;
    ev.fn ()
  end

let step t =
  if t.stop_requested then false
  else
    match Heap.pop t.queue with
    | None -> false
    | Some ev ->
        exec t ev;
        true

let run ?until t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stop_requested then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
          exec t (Heap.pop_exn t.queue);
          loop ()
  in
  loop ();
  t.running <- false;
  match until with
  | Some u when (not t.stop_requested) && u > t.now -> t.now <- u
  | _ -> ()

let every t ~period ?phase fn =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match phase with None -> period | Some p -> p in
  let rec tick () =
    if (not (stopped t)) && fn () then
      ignore (schedule ~daemon:true t ~after:period tick)
  in
  ignore (schedule ~daemon:true t ~after:first tick)

let run_until_quiet ?(horizon = max_int) t =
  let rec loop () =
    if t.stop_requested || t.busy + t.waiters = 0 then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
          exec t (Heap.pop_exn t.queue);
          loop ()
  in
  loop ()
