type cond = {
  engine : Engine.t;
  mutable queue : (unit -> unit) list; (* waiter resumptions, reversed *)
}

type _ Effect.t +=
  | Sleep : Engine.t * int -> unit Effect.t
  | Wait : cond -> unit Effect.t

let sleep eng ns = Effect.perform (Sleep (eng, ns))

let yield eng = sleep eng 0

module Cond = struct
  type t = cond

  let create engine = { engine; queue = [] }

  let wait c =
    Engine.incr_waiters c.engine;
    Effect.perform (Wait c)

  let broadcast c =
    let waiters = List.rev c.queue in
    c.queue <- [];
    List.iter
      (fun resume ->
        Engine.decr_waiters c.engine;
        ignore (Engine.schedule c.engine ~after:0 resume))
      waiters

  let waiters c = List.length c.queue
end

let spawn eng body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (e, ns) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (Engine.schedule e ~after:ns (fun () -> continue k ())))
          | Wait c ->
              Some
                (fun (k : (a, unit) continuation) ->
                  c.queue <- (fun () -> continue k ()) :: c.queue)
          | _ -> None);
    }
  in
  ignore (Engine.schedule eng ~after:0 (fun () -> match_with body () handler))

let wait_until eng c pred =
  ignore eng;
  let rec loop () =
    if not (pred ()) then begin
      Cond.wait c;
      loop ()
    end
  in
  loop ()
