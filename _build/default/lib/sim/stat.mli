(** Small descriptive-statistics helpers for reporting run-to-run spread
    (the paper reports mean and standard deviation over three runs). *)

type summary = {
  n : int;
  mean : float;
  stdev : float;  (** Sample standard deviation (n-1); 0 when n < 2. *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** [summarize xs] computes the summary of [xs]. Raises [Invalid_argument]
    on an empty list. *)

val mean : float list -> float
val percent_change : baseline:float -> float -> float
(** [percent_change ~baseline v] is [(v - baseline) / baseline * 100]. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline v] is [v /. baseline]. *)

val pp_summary : Format.formatter -> summary -> unit
