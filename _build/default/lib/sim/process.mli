(** Coroutine processes over OCaml effect handlers.

    Simulation actors (workload threads, the RCU grace-period driver, the
    endurance sampler, ...) are written as plain sequential functions that
    suspend on virtual time via {!sleep} or on conditions via {!Cond.wait}.
    Internally each process runs under an effect handler that converts
    suspensions into engine events, so all actors interleave
    deterministically on the single real thread.

    Restrictions: {!sleep}, {!yield} and {!Cond.wait} may only be performed
    from code (transitively) called from a process body passed to {!spawn};
    calling them from a bare engine event raises [Effect.Unhandled]. *)

val spawn : Engine.t -> (unit -> unit) -> unit
(** [spawn eng body] starts a process executing [body ()] at the current
    virtual time. The process ends when [body] returns. Exceptions escaping
    [body] propagate out of the engine's run loop. *)

val sleep : Engine.t -> int -> unit
(** [sleep eng ns] suspends the calling process for [ns] nanoseconds of
    virtual time. [sleep eng 0] yields to other events at the same time. *)

val yield : Engine.t -> unit
(** [yield eng] is [sleep eng 0]. *)

(** Condition variables for processes. *)
module Cond : sig
  type t
  (** A broadcast condition bound to an engine. *)

  val create : Engine.t -> t
  (** [create eng] makes a condition whose wakeups are scheduled on [eng]. *)

  val wait : t -> unit
  (** Suspend the calling process until the next {!broadcast}. Re-check your
      predicate in a loop, as with any condition variable. *)

  val broadcast : t -> unit
  (** Wake every waiter at the current virtual time. May be called from any
      context (process or plain event). *)

  val waiters : t -> int
  (** Number of processes currently blocked on the condition. *)
end

val wait_until : Engine.t -> Cond.t -> (unit -> bool) -> unit
(** [wait_until eng c pred] returns immediately if [pred ()]; otherwise
    blocks on [c] until a broadcast after which [pred ()] holds. *)
