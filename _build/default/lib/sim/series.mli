(** Time series recorded during a simulation (e.g. the Fig. 3 used-memory
    trace, sampled every 10 ms of virtual time). *)

type t

val create : name:string -> t
val name : t -> string

val push : t -> time:int -> float -> unit
(** Append a sample. Times should be non-decreasing (asserted). *)

val length : t -> int

val to_array : t -> (int * float) array
(** Samples in chronological order. *)

val last : t -> (int * float) option
val max_value : t -> float
(** Largest sample value; 0 if empty. *)

val sample_every : Engine.t -> t -> period:int -> (unit -> float) -> unit
(** [sample_every eng s ~period f] records [f ()] every [period] ns until
    the engine stops. The first sample is taken at time [period]. *)

val downsample : t -> max_points:int -> (int * float) array
(** Evenly thin the series to at most [max_points] points (keeps endpoints);
    used when printing long traces. *)
