(** Virtual-time units.

    Simulation time is an [int] number of nanoseconds (63-bit, enough for
    ~292 years of virtual time). These helpers keep unit conversions explicit
    at call sites. *)

val ns : int -> int
(** Identity; marks a literal as nanoseconds. *)

val us : int -> int
(** [us n] is [n] microseconds in nanoseconds. *)

val ms : int -> int
(** [ms n] is [n] milliseconds in nanoseconds. *)

val s : int -> int
(** [s n] is [n] seconds in nanoseconds. *)

val to_s : int -> float
(** [to_s t] converts nanoseconds to (float) seconds. *)

val to_ms : int -> float
(** [to_ms t] converts nanoseconds to (float) milliseconds. *)

val pp : Format.formatter -> int -> unit
(** Pretty-print a time with an adaptive unit (ns/us/ms/s). *)
