(** Deterministic pseudo-random number generator.

    xoshiro256++ seeded via splitmix64. Every simulation component draws
    randomness from an explicit generator so runs are reproducible from a
    single integer seed, and independent components can be given independent
    [split] streams. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val split : t -> t
(** [split rng] derives a new, statistically independent generator from
    [rng], advancing [rng]. Use one stream per subsystem. *)

val bits64 : t -> int64
(** [bits64 rng] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance rng p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** [exponential rng ~mean] draws from an exponential distribution; used for
    think times and inter-arrival times. *)

val geometric : t -> p:float -> int
(** [geometric rng ~p] is the number of Bernoulli(p) failures before the
    first success (support 0, 1, 2, ...). *)

val pick : t -> 'a array -> 'a
(** [pick rng a] is a uniformly random element of non-empty array [a]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
