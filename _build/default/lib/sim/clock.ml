let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let s t = t * 1_000_000_000

let to_s t = float_of_int t /. 1e9
let to_ms t = float_of_int t /. 1e6

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.1fus" (float_of_int t /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_s t)
