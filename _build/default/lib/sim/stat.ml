type summary = { n : int; mean : float; stdev : float; min : float; max : float }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stat.mean: empty list"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stat.summarize: empty list"
  | _ ->
      let n = List.length xs in
      let m = mean xs in
      let var =
        if n < 2 then 0.
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
          /. float_of_int (n - 1)
      in
      {
        n;
        mean = m;
        stdev = sqrt var;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
      }

let percent_change ~baseline v =
  if baseline = 0. then 0. else (v -. baseline) /. baseline *. 100.

let speedup ~baseline v = if baseline = 0. then 0. else v /. baseline

let pp_summary fmt s =
  Format.fprintf fmt "%.2f +/- %.2f (n=%d)" s.mean s.stdev s.n
