examples/idle_preflush.ml: Format List Prudence Sim Slab Workloads
