examples/idle_preflush.mli:
