examples/routing_table.ml: Format List Rcu Rcudata Sim Slab Workloads
