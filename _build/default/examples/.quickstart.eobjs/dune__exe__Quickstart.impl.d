examples/quickstart.ml: Format List Rcu Sim Slab Workloads
