examples/dos_attack.ml: Format Mem Rcu Sim Slab Workloads
