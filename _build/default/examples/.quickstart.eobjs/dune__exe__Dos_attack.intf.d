examples/dos_attack.mli:
