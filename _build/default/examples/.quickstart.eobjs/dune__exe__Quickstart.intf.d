examples/quickstart.mli:
