examples/routing_table.mli:
