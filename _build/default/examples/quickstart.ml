(* Quickstart: build the simulated stack, allocate objects through
   Prudence, defer-free them RCU-style, and watch them become reusable
   right after the grace period completes.

   Run with: dune exec examples/quickstart.exe *)

module W = Workloads

let () =
  (* One call builds the whole stack: virtual-time engine, an 4-CPU
     machine with scheduler ticks, a buddy page allocator, RCU, and the
     allocator under test. *)
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind = W.Env.Prudence_alloc;
        cpus = 4;
        seed = 7;
      }
  in
  let backend = env.W.Env.backend in
  let cache =
    backend.Slab.Backend.create_cache ~name:"my_objects" ~obj_size:256
  in
  let cpu = W.Env.cpu env 0 in

  (* Simulation code runs as a coroutine process over virtual time. *)
  Sim.Process.spawn env.W.Env.eng (fun () ->
      (* Allocate a batch of objects. *)
      let objs =
        List.init 10 (fun _ ->
            match backend.Slab.Backend.alloc cache cpu with
            | Some o -> o
            | None -> failwith "out of memory")
      in
      Format.printf "t=%a  allocated 10 objects (live=%d, slabs=%d)@."
        Sim.Clock.pp
        (Sim.Engine.now env.W.Env.eng)
        (Slab.Frame.live_objects cache)
        (Slab.Frame.total_slabs cache);

      (* Defer-free them: Listing 2's turnkey replacement for call_rcu.
         The objects go into the per-CPU latent cache, stamped with the
         grace period they must wait for. *)
      List.iter (fun o -> backend.Slab.Backend.free_deferred cache cpu o) objs;
      Format.printf "t=%a  deferred 10 frees (latent=%d, rcu callbacks=%d)@."
        Sim.Clock.pp
        (Sim.Engine.now env.W.Env.eng)
        (Slab.Frame.latent_total cache)
        (Rcu.pending_callbacks env.W.Env.rcu);

      (* Wait for a grace period: every CPU passes a quiescent state. *)
      Rcu.synchronize env.W.Env.rcu;
      Format.printf "t=%a  grace period %d complete@." Sim.Clock.pp
        (Sim.Engine.now env.W.Env.eng)
        (Rcu.completed env.W.Env.rcu);

      (* The deferred objects are now merged back on demand: the very next
         allocations reuse their memory with no callback processing. *)
      let reused =
        List.init 10 (fun _ ->
            match backend.Slab.Backend.alloc cache cpu with
            | Some o -> o
            | None -> failwith "out of memory")
      in
      let reused_ids = List.map (fun (o : Slab.Frame.objekt) -> o.Slab.Frame.oid) reused in
      let original_ids = List.map (fun (o : Slab.Frame.objekt) -> o.Slab.Frame.oid) objs in
      let recycled =
        List.length (List.filter (fun id -> List.mem id original_ids) reused_ids)
      in
      Format.printf "t=%a  allocated 10 more: %d of them recycle the deferred objects@."
        Sim.Clock.pp
        (Sim.Engine.now env.W.Env.eng)
        recycled;

      let snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
      Format.printf "@.cache stats: %a@." Slab.Slab_stats.pp snap);

  Sim.Engine.run_until_quiet env.W.Env.eng;
  Format.printf "@.simulation finished at t=%a after %d events@." Sim.Clock.pp
    (Sim.Engine.now env.W.Env.eng)
    (Sim.Engine.executed env.W.Env.eng)
