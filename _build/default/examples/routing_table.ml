(* An RCU-protected routing table (hash table of prefix -> next hop),
   the classic procrastination-based-synchronization workload: wait-free
   readers look up routes on every simulated packet while a control-plane
   writer keeps updating and withdrawing routes; every update defer-frees
   the old version through Prudence.

   The Readers tracker verifies the core safety property live: no object
   is ever recycled while some reader still holds it.

   Run with: dune exec examples/routing_table.exe *)

module W = Workloads

let routes = 512
let duration = Sim.Clock.ms 200

let () =
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind = W.Env.Prudence_alloc;
        cpus = 4;
        seed = 11;
        track_readers = true;
      }
  in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"route" ~obj_size:128 in
  let table =
    Rcudata.Rcuhash.create ~backend ~readers:env.W.Env.readers ~cache
      ~buckets:128 ~name:"fib"
  in
  let lookups = ref 0 and hits = ref 0 and updates = ref 0 in

  (* Control plane on CPU 0: route churn. *)
  Sim.Process.spawn env.W.Env.eng (fun () ->
      let cpu = W.Env.cpu env 0 in
      let rng = Sim.Rng.split env.W.Env.rng in
      for prefix = 0 to routes - 1 do
        ignore (Rcudata.Rcuhash.insert table cpu ~key:prefix ~value:prefix)
      done;
      while Sim.Engine.now env.W.Env.eng < duration do
        let prefix = Sim.Rng.int rng routes in
        (match
           Rcudata.Rcuhash.update table cpu ~key:prefix
             ~value:(Sim.Rng.int rng 1_000)
         with
        | `Updated -> incr updates
        | `Absent ->
            ignore (Rcudata.Rcuhash.insert table cpu ~key:prefix ~value:0)
        | `Oom -> failwith "out of memory");
        Sim.Process.sleep env.W.Env.eng
          (5_000 + Sim.Machine.drain cpu)
      done);

  (* Data plane on CPUs 1..3: wait-free lookups. *)
  for i = 1 to 3 do
    Sim.Process.spawn env.W.Env.eng (fun () ->
        let cpu = W.Env.cpu env i in
        let rng = Sim.Rng.split env.W.Env.rng in
        while Sim.Engine.now env.W.Env.eng < duration do
          let prefix = Sim.Rng.int rng routes in
          (match Rcudata.Rcuhash.lookup table cpu ~key:prefix with
          | Some _ -> incr hits
          | None -> ());
          incr lookups;
          Sim.Process.sleep env.W.Env.eng (1_000 + Sim.Machine.drain cpu)
        done)
  done;

  Sim.Engine.run_until_quiet env.W.Env.eng;

  Format.printf "routing table example:@.";
  Format.printf "  routes:          %d@." (Rcudata.Rcuhash.size table);
  Format.printf "  route updates:   %d (old versions defer-freed)@." !updates;
  Format.printf "  lookups:         %d (%.1f%% hit)@." !lookups
    (100. *. float_of_int !hits /. float_of_int (max 1 !lookups));
  Format.printf "  grace periods:   %d@." (Rcu.completed env.W.Env.rcu);
  let snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
  Format.printf "  allocator:       %a@." Slab.Slab_stats.pp snap;
  match W.Env.safety_violations env with
  | [] -> Format.printf "  safety:          no reader ever saw recycled memory@."
  | vs ->
      Format.printf "  SAFETY VIOLATIONS:@.";
      List.iter (fun v -> Format.printf "    %s@." v) vs;
      exit 1
