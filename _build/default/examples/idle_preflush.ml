(* Demonstrates the idle-time latent-cache pre-flush (§4.2, "idleness is
   not sloth"): a workload that defers many objects and then idles. With
   pre-flush enabled, Prudence migrates latent objects to their slabs and
   pre-merges ripe ones during the idle window, off the critical path;
   with it disabled, the same work happens during later allocations.

   Run with: dune exec examples/idle_preflush.exe *)

module W = Workloads

let run ~preflush =
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind = W.Env.Prudence_alloc;
        cpus = 1;
        seed = 5;
        prudence_config =
          { Prudence.default_config with Prudence.preflush_enabled = preflush };
      }
  in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"bursty" ~obj_size:512 in
  let cpu = W.Env.cpu env 0 in
  Sim.Process.spawn env.W.Env.eng (fun () ->
      for _burst = 1 to 20 do
        (* A busy burst: allocate a batch, return part of it immediately
           (object cache fills up) and defer the rest (latent cache fills
           up). Cache + latent now exceed the object-cache capacity: an
           overflow flush is foreseeable (§4.2)... *)
        let objs =
          List.init 40 (fun _ ->
              match backend.Slab.Backend.alloc cache cpu with
              | Some o -> o
              | None -> failwith "oom")
        in
        List.iteri
          (fun i o ->
            if i < 15 then backend.Slab.Backend.free cache cpu o
            else backend.Slab.Backend.free_deferred cache cpu o)
          objs;
        Sim.Process.sleep env.W.Env.eng (Sim.Machine.drain cpu);
        (* ...then a short idle window (waiting for the next request) —
           shorter than a grace period, so without pre-flush the unripe
           latent objects pile up across bursts. *)
        Sim.Machine.idle_sleep env.W.Env.machine cpu (Sim.Clock.us 800)
      done);
  Sim.Engine.run_until_quiet env.W.Env.eng;
  let snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
  (snap, Sim.Machine.drain cpu)

let () =
  let on, _ = run ~preflush:true in
  let off, _ = run ~preflush:false in
  let open Slab.Slab_stats in
  Format.printf "idle pre-flush demonstration (20 defer bursts + idle gaps):@.@.";
  Format.printf "  %-34s %12s %12s@." "" "pre-flush on" "pre-flush off";
  Format.printf "  %-34s %12d %12d@." "pre-flush passes (idle work)"
    on.preflush_passes off.preflush_passes;
  Format.printf "  %-34s %12d %12d@." "objects migrated while idle"
    on.preflushed_objs off.preflushed_objs;
  Format.printf "  %-34s %12d %12d@." "slow-path deferred frees"
    on.latent_overflows off.latent_overflows;
  Format.printf "  %-34s %12d %12d@." "merge operations" on.merges off.merges;
  Format.printf "  %-34s %12d %12d@." "object-cache hits" on.hits off.hits;
  Format.printf
    "@.with pre-flush, the latent cache is emptied during idle windows, so@.";
  Format.printf
    "deferred frees stay on their fast path instead of flushing, merging@.";
  Format.printf "and demoting objects inside the critical section.@."
