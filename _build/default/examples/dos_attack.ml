(* The denial-of-service scenario of §3.4: a malicious user performs
   open/close-style operations in a tight loop, generating deferred frees
   faster than RCU's throttled callback processing can reclaim them. On
   the baseline allocator the backlog's memory grows until the system hits
   OOM; Prudence reuses each deferred object right after its grace period
   and sails through.

   Run with: dune exec examples/dos_attack.exe *)

module W = Workloads

let attack_duration = Sim.Clock.s 4

let run kind =
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind;
        cpus = 4;
        seed = 3;
        total_pages = 32_768 (* 128 MiB *);
        (* The throttled callback processing of §3.5. *)
        rcu_config =
          {
            Rcu.default_config with
            Rcu.blimit = 10;
            expedited_blimit = 30;
            softirq_period_ns = 1_000_000;
            qhimark = max_int;
          };
      }
  in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"filp" ~obj_size:256 in
  let opens = ref 0 in
  for i = 0 to Sim.Machine.nr_cpus env.W.Env.machine - 1 do
    Sim.Process.spawn env.W.Env.eng (fun () ->
        let cpu = W.Env.cpu env i in
        try
          while
            Sim.Engine.now env.W.Env.eng < attack_duration
            && not (Sim.Engine.stopped env.W.Env.eng)
          do
            (* open(): allocate the file object; close(): defer-free it
               (fput goes through RCU). *)
            (match backend.Slab.Backend.alloc cache cpu with
            | Some obj ->
                incr opens;
                backend.Slab.Backend.free_deferred cache cpu obj
            | None ->
                Mem.Pressure.declare_oom env.W.Env.pressure
                  ~now:(Sim.Engine.now env.W.Env.eng);
                Sim.Engine.stop env.W.Env.eng;
                raise Exit);
            Sim.Process.sleep env.W.Env.eng (2_000 + Sim.Machine.drain cpu)
          done
        with Exit -> ())
  done;
  Sim.Engine.run ~until:attack_duration env.W.Env.eng;
  (env, !opens)

let describe label (env, opens) =
  let used = float_of_int (W.Env.used_bytes env) /. (1024. *. 1024.) in
  Format.printf "  %-9s %8d open/close ops, %7.1f MiB used, backlog %7d, %s@."
    label opens used
    (Rcu.pending_callbacks env.W.Env.rcu)
    (match Mem.Pressure.oom_time env.W.Env.pressure with
    | Some t -> Format.asprintf "OOM at %a -- attack succeeded" Sim.Clock.pp t
    | None -> "survived the attack")

let () =
  Format.printf "DoS via deferred frees (%a of open/close flooding, 128 MiB RAM):@.@."
    Sim.Clock.pp attack_duration;
  describe "slub:" (run W.Env.Baseline);
  describe "prudence:" (run W.Env.Prudence_alloc)
