open Test_util
module Frame = Slab.Frame

type setup = {
  env : Test_util.env;
  backend : Slab.Backend.t;
  readers : Rcu.Readers.t;
  cache : Frame.cache;
}

let make_setup ?(prudence = true) () =
  let env = make_env ~cpus:2 ~total_pages:16384 () in
  let readers = Rcu.Readers.create env.rcu in
  env.fenv.Frame.reuse_check <-
    Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"alloc");
  let backend =
    if prudence then Prudence.backend (Prudence.create env.fenv env.rcu)
    else Slab.Slub.backend (Slab.Slub.create env.fenv env.rcu)
  in
  let cache = backend.Slab.Backend.create_cache ~name:"entries" ~obj_size:128 in
  { env; backend; readers; cache }

let make_list ?prudence () =
  let s = make_setup ?prudence () in
  let l =
    Rcudata.Rculist.create ~backend:s.backend ~readers:s.readers ~cache:s.cache
      ~name:"l"
  in
  (s, l)

let test_insert_lookup () =
  let s, l = make_list () in
  let c = cpu0 s.env in
  Alcotest.(check bool) "insert" true (Rcudata.Rculist.insert l c ~key:1 ~value:10);
  Alcotest.(check bool) "insert" true (Rcudata.Rculist.insert l c ~key:2 ~value:20);
  Alcotest.(check (option int)) "lookup 1" (Some 10)
    (Rcudata.Rculist.lookup l c ~key:1);
  Alcotest.(check (option int)) "lookup 2" (Some 20)
    (Rcudata.Rculist.lookup l c ~key:2);
  Alcotest.(check (option int)) "lookup missing" None
    (Rcudata.Rculist.lookup l c ~key:3);
  Alcotest.(check int) "length" 2 (Rcudata.Rculist.length l)

let test_update_copy_semantics () =
  let s, l = make_list () in
  let c = cpu0 s.env in
  ignore (Rcudata.Rculist.insert l c ~key:1 ~value:10);
  Alcotest.(check bool) "update ok" true
    (Rcudata.Rculist.update l c ~key:1 ~value:11 = `Updated);
  Alcotest.(check (option int)) "new value visible" (Some 11)
    (Rcudata.Rculist.lookup l c ~key:1);
  (* The old version's backing object was deferred, not freed: it is still
     outstanding in the allocator. *)
  Alcotest.(check int) "one deferred" 1
    (Slab.Slab_stats.snapshot s.cache.Frame.stats).Slab.Slab_stats.deferred_frees;
  Alcotest.(check bool) "absent update" true
    (Rcudata.Rculist.update l c ~key:9 ~value:0 = `Absent)

let test_delete () =
  let s, l = make_list () in
  let c = cpu0 s.env in
  ignore (Rcudata.Rculist.insert l c ~key:1 ~value:10);
  Alcotest.(check bool) "delete" true (Rcudata.Rculist.delete l c ~key:1);
  Alcotest.(check (option int)) "gone" None (Rcudata.Rculist.lookup l c ~key:1);
  Alcotest.(check bool) "delete missing" false (Rcudata.Rculist.delete l c ~key:1)

let test_reader_never_sees_reused_object () =
  (* The full stack together: concurrent readers + updaters over Prudence;
     the checker must stay silent. *)
  let s, l = make_list () in
  let c0 = cpu0 s.env and c1 = cpu s.env 1 in
  for k = 1 to 20 do
    ignore (Rcudata.Rculist.insert l c0 ~key:k ~value:k)
  done;
  let stop_at = Sim.(Clock.ms 50) in
  (* Updater on cpu0. *)
  Sim.Process.spawn s.env.eng (fun () ->
      let rng = Sim.Rng.create ~seed:5 in
      while Sim.Engine.now s.env.eng < stop_at do
        let k = 1 + Sim.Rng.int rng 20 in
        ignore (Rcudata.Rculist.update l c0 ~key:k ~value:(Sim.Rng.int rng 100));
        Sim.Process.sleep s.env.eng 10_000
      done);
  (* Reader on cpu1, holding references across some virtual time. *)
  Sim.Process.spawn s.env.eng (fun () ->
      let rng = Sim.Rng.create ~seed:6 in
      while Sim.Engine.now s.env.eng < stop_at do
        let k = 1 + Sim.Rng.int rng 20 in
        ignore (Rcudata.Rculist.lookup l c1 ~key:k);
        Sim.Process.sleep s.env.eng 3_000
      done);
  Sim.Engine.run ~until:(stop_at + Sim.(Clock.ms 20)) s.env.eng;
  Alcotest.(check (list string)) "no safety violations" []
    (Rcu.Readers.violations s.readers);
  Frame.check_invariants s.cache

let test_read_iter () =
  let s, l = make_list () in
  let c = cpu0 s.env in
  for k = 1 to 5 do
    ignore (Rcudata.Rculist.insert l c ~key:k ~value:(k * 2))
  done;
  let sum = ref 0 in
  Rcudata.Rculist.read_iter l c (fun ~key:_ ~value -> sum := !sum + value);
  Alcotest.(check int) "iterated all" 30 !sum;
  Alcotest.(check (list string)) "no violations" []
    (Rcu.Readers.violations s.readers)

let test_destroy_defers_everything () =
  let s, l = make_list () in
  let c = cpu0 s.env in
  for k = 1 to 10 do
    ignore (Rcudata.Rculist.insert l c ~key:k ~value:k)
  done;
  Rcudata.Rculist.destroy l c;
  Alcotest.(check int) "empty" 0 (Rcudata.Rculist.length l);
  Alcotest.(check int) "10 deferred" 10
    (Slab.Slab_stats.snapshot s.cache.Frame.stats).Slab.Slab_stats.deferred_frees

let test_hash_basics () =
  let s = make_setup () in
  let h =
    Rcudata.Rcuhash.create ~backend:s.backend ~readers:s.readers ~cache:s.cache
      ~buckets:16 ~name:"h"
  in
  let c = cpu0 s.env in
  for k = 1 to 100 do
    ignore (Rcudata.Rcuhash.insert h c ~key:k ~value:(k * k))
  done;
  Alcotest.(check int) "size" 100 (Rcudata.Rcuhash.size h);
  Alcotest.(check (option int)) "lookup" (Some 49)
    (Rcudata.Rcuhash.lookup h c ~key:7);
  Alcotest.(check bool) "update" true
    (Rcudata.Rcuhash.update h c ~key:7 ~value:0 = `Updated);
  Alcotest.(check (option int)) "updated" (Some 0)
    (Rcudata.Rcuhash.lookup h c ~key:7);
  Alcotest.(check bool) "delete" true (Rcudata.Rcuhash.delete h c ~key:7);
  Alcotest.(check (option int)) "deleted" None (Rcudata.Rcuhash.lookup h c ~key:7);
  Alcotest.(check int) "size after delete" 99 (Rcudata.Rcuhash.size h)

let test_hash_over_slub_backend () =
  let s = make_setup ~prudence:false () in
  let h =
    Rcudata.Rcuhash.create ~backend:s.backend ~readers:s.readers ~cache:s.cache
      ~buckets:8 ~name:"h"
  in
  let c = cpu0 s.env in
  for k = 1 to 50 do
    ignore (Rcudata.Rcuhash.insert h c ~key:k ~value:k)
  done;
  for k = 1 to 50 do
    ignore (Rcudata.Rcuhash.update h c ~key:k ~value:(-k))
  done;
  Alcotest.(check (option int)) "works over slub" (Some (-25))
    (Rcudata.Rcuhash.lookup h c ~key:25);
  (* The deferred old versions drain through RCU. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 50) s.env.eng;
  Alcotest.(check int) "drained" 0 (Rcu.pending_callbacks s.env.rcu);
  Alcotest.(check (list string)) "no violations" []
    (Rcu.Readers.violations s.readers)

let test_hash_invalid_buckets () =
  let s = make_setup () in
  try
    ignore
      (Rcudata.Rcuhash.create ~backend:s.backend ~readers:s.readers
         ~cache:s.cache ~buckets:0 ~name:"h");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "list insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "list copy-update semantics" `Quick
      test_update_copy_semantics;
    Alcotest.test_case "list delete" `Quick test_delete;
    Alcotest.test_case "reader/updater race is safe" `Quick
      test_reader_never_sees_reused_object;
    Alcotest.test_case "list read_iter" `Quick test_read_iter;
    Alcotest.test_case "list destroy defers" `Quick
      test_destroy_defers_everything;
    Alcotest.test_case "hash basics" `Quick test_hash_basics;
    Alcotest.test_case "hash over slub backend" `Quick
      test_hash_over_slub_backend;
    Alcotest.test_case "hash invalid buckets" `Quick test_hash_invalid_buckets;
  ]
