(* Shared helpers for building small simulated environments in tests. *)

let make_sim ?(cpus = 4) ?(nodes = 1) ?(seed = 1) ?(tick_ns = 1_000_000) () =
  let eng = Sim.Engine.create ~seed () in
  let machine = Sim.Machine.create eng ~cpus ~nodes ~tick_ns () in
  Sim.Machine.start machine;
  (eng, machine)

type env = {
  eng : Sim.Engine.t;
  machine : Sim.Machine.t;
  buddy : Mem.Buddy.t;
  pressure : Mem.Pressure.t;
  rcu : Rcu.t;
  fenv : Slab.Frame.env;
}

let make_env ?(cpus = 4) ?(nodes = 1) ?(seed = 1) ?(tick_ns = 1_000_000)
    ?(total_pages = 65536) ?rcu_config () =
  let eng, machine = make_sim ~cpus ~nodes ~seed ~tick_ns () in
  let buddy = Mem.Buddy.create ~total_pages () in
  let pressure = Mem.Pressure.create buddy () in
  let rcu = Rcu.create ?config:rcu_config machine in
  Rcu.attach_pressure rcu pressure;
  let fenv = Slab.Frame.make_env ~pressure machine buddy in
  { eng; machine; buddy; pressure; rcu; fenv }

let cpu0 env = Sim.Machine.cpu env.machine 0
let cpu env i = Sim.Machine.cpu env.machine i

(* Run [body] as a process and drive the engine until it finishes or
   [horizon] virtual ns elapse. Returns whether the body completed. *)
let run_process ?(horizon = 10_000_000_000) env body =
  let finished = ref false in
  Sim.Process.spawn env.eng (fun () ->
      body ();
      finished := true);
  Sim.Engine.run ~until:horizon env.eng;
  !finished

let check_completed what finished =
  if not finished then Alcotest.failf "%s: process did not finish" what
