(* Smoke tests for the experiment registry: every experiment is findable,
   runs at tiny scale, and produces the right report shape. *)

let tiny =
  { Core.Experiments.default_params with Core.Experiments.scale = 0.03; cpus = 2 }

let test_registry_complete () =
  List.iter
    (fun id ->
      match Core.Experiments.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "fig3"; "costs"; "fig6"; "apps"; "ablations" ]

let test_fig_aliases () =
  List.iter
    (fun id ->
      match Core.Experiments.find id with
      | Some e ->
          Alcotest.(check string) (id ^ " aliases apps") "apps"
            e.Core.Experiments.id
      | None -> Alcotest.failf "alias %s missing" id)
    [ "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13" ];
  Alcotest.(check bool) "unknown id" true (Core.Experiments.find "fig99" = None)

let test_costs_report () =
  match Core.Experiments.run_costs tiny with
  | [ r ] ->
      Alcotest.(check string) "id" "costs" r.Metrics.Report.id;
      (* The calibrated ratios should be close to the paper's 4x / 14x. *)
      Alcotest.(check bool)
        ("verdict mentions ratios: " ^ r.Metrics.Report.verdict)
        true
        (String.length r.Metrics.Report.verdict > 0)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_microbench_pair_shape () =
  let slub, prud = Core.Experiments.microbench_pair tiny ~obj_size:512 in
  Alcotest.(check string) "baseline label" "slub" slub.Workloads.Microbench.label;
  Alcotest.(check string) "prudence label" "prudence"
    prud.Workloads.Microbench.label;
  Alcotest.(check int) "same pairs" slub.Workloads.Microbench.pairs
    prud.Workloads.Microbench.pairs;
  Alcotest.(check bool) "prudence at least as fast at 512B" true
    (prud.Workloads.Microbench.pairs_per_sec
    >= 0.9 *. slub.Workloads.Microbench.pairs_per_sec)

let test_endurance_pair_shape () =
  let p = { tiny with Core.Experiments.scale = 0.05 } in
  let slub, prud = Core.Experiments.endurance_pair p in
  Alcotest.(check bool) "baseline peak dwarfs prudence" true
    (slub.Workloads.Endurance.peak_used_mib
    > 3. *. prud.Workloads.Endurance.peak_used_mib);
  Alcotest.(check bool) "prudence never ooms" true
    (prud.Workloads.Endurance.oom_at_ns = None);
  Alcotest.(check int) "no violations" 0
    prud.Workloads.Endurance.safety_violations

let test_run_apps_report_ids () =
  let reports = Core.Experiments.run_apps tiny in
  let ids = List.map (fun r -> r.Metrics.Report.id) reports in
  Alcotest.(check (list string)) "figs 7-13 in order"
    [ "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13" ]
    ids

let test_app_results_benchmarks () =
  let apps = Core.Experiments.app_results tiny in
  let names = List.map (fun (n, _, _) -> n) apps in
  Alcotest.(check (list string)) "four benchmarks"
    [ "postmark"; "netperf"; "apache"; "postgresql" ]
    names;
  List.iter
    (fun (name, slub, prud) ->
      Alcotest.(check bool) (name ^ ": txns ran") true
        (slub.Workloads.Appmodel.txns > 0 && prud.Workloads.Appmodel.txns > 0);
      Alcotest.(check bool) (name ^ ": no oom") true
        ((not slub.Workloads.Appmodel.oom) && not prud.Workloads.Appmodel.oom))
    apps

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "fig aliases" `Quick test_fig_aliases;
    Alcotest.test_case "costs report" `Quick test_costs_report;
    Alcotest.test_case "microbench pair shape" `Slow test_microbench_pair_shape;
    Alcotest.test_case "endurance pair shape" `Slow test_endurance_pair_shape;
    Alcotest.test_case "run_apps report ids" `Slow test_run_apps_report_ids;
    Alcotest.test_case "app_results benchmarks" `Slow test_app_results_benchmarks;
  ]
