let test_deterministic () =
  let a = Sim.Rng.create ~seed:7 in
  let b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 in
  let b = Sim.Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let test_split_independent () =
  let a = Sim.Rng.create ~seed:3 in
  let b = Sim.Rng.split a in
  let xs = List.init 20 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Sim.Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let g = Sim.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int g 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of range: %d" v
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int g 0))

let test_int_in_inclusive () =
  let g = Sim.Rng.create ~seed:12 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 20_000 do
    let v = Sim.Rng.int_in g 3 5 in
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true;
    if v < 3 || v > 5 then Alcotest.failf "int_in out of range: %d" v
  done;
  Alcotest.(check bool) "lo reachable" true !seen_lo;
  Alcotest.(check bool) "hi reachable" true !seen_hi

let test_float_range () =
  let g = Sim.Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.float g 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_int_roughly_uniform () =
  let g = Sim.Rng.create ~seed:14 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Sim.Rng.int g 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expect = n / 8 in
      if abs (c - expect) > expect / 5 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expect)
    counts

let test_chance_extremes () =
  let g = Sim.Rng.create ~seed:15 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Sim.Rng.chance g 0.0);
    Alcotest.(check bool) "p=1 always" true (Sim.Rng.chance g 1.0)
  done

let test_exponential_mean () =
  let g = Sim.Rng.create ~seed:16 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential g ~mean:100.0 in
    if v < 0.0 then Alcotest.fail "exponential negative";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  if mean < 90.0 || mean > 110.0 then
    Alcotest.failf "exponential mean off: %f" mean

let test_geometric () =
  let g = Sim.Rng.create ~seed:17 in
  Alcotest.(check int) "p=1 is always 0" 0 (Sim.Rng.geometric g ~p:1.0);
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Sim.Rng.geometric g ~p:0.5
  done;
  (* mean of geometric(0.5) failures-before-success is 1 *)
  let mean = float_of_int !sum /. float_of_int n in
  if mean < 0.9 || mean > 1.1 then Alcotest.failf "geometric mean off: %f" mean

let test_pick_and_shuffle () =
  let g = Sim.Rng.create ~seed:18 in
  let a = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    let v = Sim.Rng.pick g a in
    if v < 1 || v > 5 then Alcotest.failf "pick out of range: %d" v
  done;
  let b = Array.copy a in
  Sim.Rng.shuffle g b;
  Alcotest.(check (list int))
    "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list b))

let suite =
  [
    Alcotest.test_case "deterministic for a seed" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in inclusive" `Quick test_int_in_inclusive;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int roughly uniform" `Quick test_int_roughly_uniform;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric distribution" `Quick test_geometric;
    Alcotest.test_case "pick and shuffle" `Quick test_pick_and_shuffle;
  ]
