let test_sleep_advances_time () =
  let eng = Sim.Engine.create () in
  let t1 = ref 0 and t2 = ref 0 in
  Sim.Process.spawn eng (fun () ->
      Sim.Process.sleep eng 100;
      t1 := Sim.Engine.now eng;
      Sim.Process.sleep eng 250;
      t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "first sleep" 100 !t1;
  Alcotest.(check int) "second sleep" 350 !t2

let test_interleaving () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  let proc tag delay =
    Sim.Process.spawn eng (fun () ->
        for i = 1 to 3 do
          Sim.Process.sleep eng delay;
          log := Printf.sprintf "%s%d" tag i :: !log
        done)
  in
  proc "a" 100;
  proc "b" 150;
  Sim.Engine.run eng;
  (* a fires at 100/200/300, b at 150/300/450; at t=300 b2 was scheduled
     (at t=150) before a3 (at t=200), so FIFO puts b2 first. *)
  Alcotest.(check (list string))
    "deterministic interleave"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_yield_runs_peer () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Process.spawn eng (fun () ->
      log := "p1-start" :: !log;
      Sim.Process.yield eng;
      log := "p1-end" :: !log);
  Sim.Process.spawn eng (fun () -> log := "p2" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string))
    "yield lets same-time peer run" [ "p1-start"; "p2"; "p1-end" ]
    (List.rev !log)

let test_cond_broadcast () =
  let eng = Sim.Engine.create () in
  let cond = Sim.Process.Cond.create eng in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Sim.Process.spawn eng (fun () ->
        Sim.Process.Cond.wait cond;
        incr woken)
  done;
  ignore
    (Sim.Engine.schedule eng ~after:500 (fun () ->
         Sim.Process.Cond.broadcast cond));
  Sim.Engine.run ~until:400 eng;
  Alcotest.(check int) "no early wake" 0 !woken;
  Alcotest.(check int) "waiters queued" 3 (Sim.Process.Cond.waiters cond);
  Sim.Engine.run eng;
  Alcotest.(check int) "all woken" 3 !woken

let test_wait_until () =
  let eng = Sim.Engine.create () in
  let cond = Sim.Process.Cond.create eng in
  let flag = ref false in
  let finished_at = ref (-1) in
  Sim.Process.spawn eng (fun () ->
      Sim.Process.wait_until eng cond (fun () -> !flag);
      finished_at := Sim.Engine.now eng);
  (* Spurious broadcast with predicate still false. *)
  ignore (Sim.Engine.schedule eng ~after:100 (fun () -> Sim.Process.Cond.broadcast cond));
  ignore
    (Sim.Engine.schedule eng ~after:200 (fun () ->
         flag := true;
         Sim.Process.Cond.broadcast cond));
  Sim.Engine.run eng;
  Alcotest.(check int) "woken only when predicate holds" 200 !finished_at

let test_wait_until_immediate () =
  let eng = Sim.Engine.create () in
  let cond = Sim.Process.Cond.create eng in
  let ran = ref false in
  Sim.Process.spawn eng (fun () ->
      Sim.Process.wait_until eng cond (fun () -> true);
      ran := true);
  Sim.Engine.run eng;
  Alcotest.(check bool) "no block when predicate already true" true !ran

let test_many_processes () =
  let eng = Sim.Engine.create () in
  let done_count = ref 0 in
  for i = 1 to 500 do
    Sim.Process.spawn eng (fun () ->
        Sim.Process.sleep eng (i mod 17);
        Sim.Process.sleep eng (i mod 5);
        incr done_count)
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "all processes completed" 500 !done_count

let suite =
  [
    Alcotest.test_case "sleep advances virtual time" `Quick
      test_sleep_advances_time;
    Alcotest.test_case "two processes interleave" `Quick test_interleaving;
    Alcotest.test_case "yield runs same-time peer" `Quick test_yield_runs_peer;
    Alcotest.test_case "condition broadcast" `Quick test_cond_broadcast;
    Alcotest.test_case "wait_until re-checks predicate" `Quick test_wait_until;
    Alcotest.test_case "wait_until immediate" `Quick test_wait_until_immediate;
    Alcotest.test_case "500 processes" `Quick test_many_processes;
  ]
