module Sc = Slab.Size_class

let test_kmalloc_class_rounds_up () =
  Alcotest.(check int) "1 -> 8" 8 (Sc.kmalloc_class 1);
  Alcotest.(check int) "8 -> 8" 8 (Sc.kmalloc_class 8);
  Alcotest.(check int) "9 -> 16" 16 (Sc.kmalloc_class 9);
  Alcotest.(check int) "65 -> 96" 96 (Sc.kmalloc_class 65);
  Alcotest.(check int) "100 -> 128" 128 (Sc.kmalloc_class 100);
  Alcotest.(check int) "4096 -> 4096" 4096 (Sc.kmalloc_class 4096);
  Alcotest.(check int) "8192 -> 8192" 8192 (Sc.kmalloc_class 8192)

let test_kmalloc_class_rejects () =
  (try
     ignore (Sc.kmalloc_class 0);
     Alcotest.fail "expected reject for 0"
   with Invalid_argument _ -> ());
  try
    ignore (Sc.kmalloc_class 8193);
    Alcotest.fail "expected reject for oversize"
  with Invalid_argument _ -> ()

let test_cache_name () =
  Alcotest.(check string) "name" "kmalloc-64" (Sc.kmalloc_cache_name 60)

let test_slab_order_monotone () =
  let prev = ref (-1) in
  Array.iter
    (fun size ->
      let o = Sc.slab_order ~obj_size:size ~page_size:4096 in
      Alcotest.(check bool) "order in range" true (o >= 0 && o <= 3);
      Alcotest.(check bool) "order monotone" true (o >= !prev);
      prev := o)
    Sc.kmalloc_sizes

let test_slab_order_small_objects_order0 () =
  Alcotest.(check int) "64B order 0" 0 (Sc.slab_order ~obj_size:64 ~page_size:4096);
  Alcotest.(check int) "4096B capped at 3" 3
    (Sc.slab_order ~obj_size:4096 ~page_size:4096)

let test_objs_per_slab () =
  Alcotest.(check int) "64B order0" 64
    (Sc.objs_per_slab ~obj_size:64 ~page_size:4096 ~order:0);
  Alcotest.(check int) "4096B order3" 8
    (Sc.objs_per_slab ~obj_size:4096 ~page_size:4096 ~order:3);
  Alcotest.(check int) "at least one" 1
    (Sc.objs_per_slab ~obj_size:9000 ~page_size:4096 ~order:0)

let test_object_cache_capacity_decreasing () =
  let prev = ref max_int in
  Array.iter
    (fun size ->
      let c = Sc.object_cache_capacity ~obj_size:size in
      Alcotest.(check bool) "positive" true (c > 0);
      Alcotest.(check bool)
        (Printf.sprintf "capacity non-increasing at %d" size)
        true (c <= !prev);
      prev := c)
    Sc.kmalloc_sizes;
  (* the Fig. 6 driver: large objects have few cached objects *)
  Alcotest.(check bool) "4096 much smaller than 64" true
    (Sc.object_cache_capacity ~obj_size:4096 * 4
    < Sc.object_cache_capacity ~obj_size:64)

let test_batch_count () =
  Alcotest.(check int) "half" 60 (Sc.batch_count ~capacity:120);
  Alcotest.(check int) "at least one" 1 (Sc.batch_count ~capacity:1)

let test_costs_ratios () =
  (* Full-path arithmetic for a 512-byte cache (order-1 slabs, batch 15),
     matching what the `costs` experiment measures. *)
  let c = Slab.Costs.default in
  let open Slab.Costs in
  let refill_path = c.hit + c.node_lock_hold + c.refill + (15 * c.refill_per_obj) in
  let ratio = float_of_int refill_path /. float_of_int c.hit in
  Alcotest.(check bool)
    (Printf.sprintf "refill ~4x hit (%.1f)" ratio)
    true
    (ratio >= 3.0 && ratio <= 6.0);
  let cold = c.cold_touch + (512 / 256 * c.cold_touch_per_256b) in
  let page = c.page_lock_hold + (2 * c.page_zero_per_page) in
  let grow_path = refill_path + c.node_lock_hold + c.grow + page + cold in
  let gratio = float_of_int grow_path /. float_of_int c.hit in
  Alcotest.(check bool)
    (Printf.sprintf "grow ~14x hit (%.1f)" gratio)
    true
    (gratio >= 10.0 && gratio <= 20.0)

let test_costs_scaled () =
  let s = Slab.Costs.scaled 2.0 in
  Alcotest.(check int) "hit doubled" (2 * Slab.Costs.default.Slab.Costs.hit)
    s.Slab.Costs.hit

let suite =
  [
    Alcotest.test_case "kmalloc class rounds up" `Quick
      test_kmalloc_class_rounds_up;
    Alcotest.test_case "kmalloc class rejects" `Quick test_kmalloc_class_rejects;
    Alcotest.test_case "cache name" `Quick test_cache_name;
    Alcotest.test_case "slab order monotone" `Quick test_slab_order_monotone;
    Alcotest.test_case "slab order extremes" `Quick
      test_slab_order_small_objects_order0;
    Alcotest.test_case "objs per slab" `Quick test_objs_per_slab;
    Alcotest.test_case "object cache capacity decreasing" `Quick
      test_object_cache_capacity_decreasing;
    Alcotest.test_case "batch count" `Quick test_batch_count;
    Alcotest.test_case "cost model ratios (4x / 14x)" `Quick test_costs_ratios;
    Alcotest.test_case "cost scaling" `Quick test_costs_scaled;
  ]
