open Test_util

let test_hold_release () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  Rcu.Readers.enter readers c;
  Rcu.Readers.hold readers c ~oid:42;
  Alcotest.(check int) "refcount" 1 (Rcu.Readers.refcount readers ~oid:42);
  Rcu.Readers.release readers c ~oid:42;
  Alcotest.(check int) "released" 0 (Rcu.Readers.refcount readers ~oid:42);
  Rcu.Readers.exit readers c;
  Alcotest.(check (list string)) "no violations" []
    (Rcu.Readers.violations readers)

let test_exit_drops_refs () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  Rcu.Readers.enter readers c;
  Rcu.Readers.hold readers c ~oid:1;
  Rcu.Readers.hold readers c ~oid:1;
  Rcu.Readers.hold readers c ~oid:2;
  Rcu.Readers.exit readers c;
  Alcotest.(check int) "oid 1 dropped" 0 (Rcu.Readers.refcount readers ~oid:1);
  Alcotest.(check int) "oid 2 dropped" 0 (Rcu.Readers.refcount readers ~oid:2)

let test_hold_outside_section_flagged () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  Rcu.Readers.hold readers (cpu0 env) ~oid:7;
  Alcotest.(check int) "violation recorded" 1
    (List.length (Rcu.Readers.violations readers))

let test_release_unheld_flagged () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  Rcu.Readers.enter readers c;
  Rcu.Readers.release readers c ~oid:9;
  Rcu.Readers.exit readers c;
  Alcotest.(check int) "violation recorded" 1
    (List.length (Rcu.Readers.violations readers))

let test_check_reusable () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  Rcu.Readers.check_reusable readers ~oid:5 ~where:"alloc";
  Alcotest.(check (list string)) "clean when unreferenced" []
    (Rcu.Readers.violations readers);
  Rcu.Readers.enter readers c;
  Rcu.Readers.hold readers c ~oid:5;
  Rcu.Readers.check_reusable readers ~oid:5 ~where:"alloc";
  Alcotest.(check int) "premature reuse flagged" 1
    (List.length (Rcu.Readers.violations readers));
  Rcu.Readers.exit readers c

let test_sections_block_gp () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  Rcu.Readers.enter readers c;
  Rcu.request_gp env.rcu;
  Sim.Engine.run ~until:Sim.(Clock.ms 10) env.eng;
  Alcotest.(check int) "section blocks gp" 0 (Rcu.completed env.rcu);
  Rcu.Readers.exit readers c;
  Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
  Alcotest.(check bool) "gp proceeds" true (Rcu.completed env.rcu >= 1)

let test_with_section_exception_safe () =
  let env = make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.rcu in
  let c = cpu0 env in
  (try
     Rcu.Readers.with_section readers c (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "nesting restored" 0 c.Sim.Machine.rcu_nesting

let suite =
  [
    Alcotest.test_case "hold/release" `Quick test_hold_release;
    Alcotest.test_case "exit drops refs" `Quick test_exit_drops_refs;
    Alcotest.test_case "hold outside section flagged" `Quick
      test_hold_outside_section_flagged;
    Alcotest.test_case "release unheld flagged" `Quick
      test_release_unheld_flagged;
    Alcotest.test_case "check_reusable" `Quick test_check_reusable;
    Alcotest.test_case "sections block gp" `Quick test_sections_block_gp;
    Alcotest.test_case "with_section exception safe" `Quick
      test_with_section_exception_safe;
  ]
