let test_push_iterate () =
  let l = Sim.Dlist.create () in
  ignore (Sim.Dlist.push_back l 1);
  ignore (Sim.Dlist.push_back l 2);
  ignore (Sim.Dlist.push_front l 0);
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Sim.Dlist.to_list l);
  Alcotest.(check int) "length" 3 (Sim.Dlist.length l)

let test_remove_middle () =
  let l = Sim.Dlist.create () in
  let _a = Sim.Dlist.push_back l "a" in
  let b = Sim.Dlist.push_back l "b" in
  let _c = Sim.Dlist.push_back l "c" in
  Sim.Dlist.remove l b;
  Alcotest.(check (list string)) "middle removed" [ "a"; "c" ]
    (Sim.Dlist.to_list l)

let test_remove_ends () =
  let l = Sim.Dlist.create () in
  let a = Sim.Dlist.push_back l 1 in
  let _b = Sim.Dlist.push_back l 2 in
  let c = Sim.Dlist.push_back l 3 in
  Sim.Dlist.remove l a;
  Sim.Dlist.remove l c;
  Alcotest.(check (list int)) "ends removed" [ 2 ] (Sim.Dlist.to_list l)

let test_remove_only_element () =
  let l = Sim.Dlist.create () in
  let a = Sim.Dlist.push_back l 9 in
  Sim.Dlist.remove l a;
  Alcotest.(check bool) "empty" true (Sim.Dlist.is_empty l);
  ignore (Sim.Dlist.push_back l 10);
  Alcotest.(check (list int)) "usable after emptying" [ 10 ]
    (Sim.Dlist.to_list l)

let test_double_remove_rejected () =
  let l = Sim.Dlist.create () in
  let a = Sim.Dlist.push_back l 1 in
  Sim.Dlist.remove l a;
  (try
     Sim.Dlist.remove l a;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_remove_foreign_rejected () =
  let l1 = Sim.Dlist.create () in
  let l2 = Sim.Dlist.create () in
  let a = Sim.Dlist.push_back l1 1 in
  (try
     Sim.Dlist.remove l2 a;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_pop_front () =
  let l = Sim.Dlist.create () in
  ignore (Sim.Dlist.push_back l 1);
  ignore (Sim.Dlist.push_back l 2);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Dlist.peek_front l);
  Alcotest.(check (option int)) "pop" (Some 1) (Sim.Dlist.pop_front l);
  Alcotest.(check (option int)) "pop" (Some 2) (Sim.Dlist.pop_front l);
  Alcotest.(check (option int)) "empty pop" None (Sim.Dlist.pop_front l)

let test_first_n () =
  let l = Sim.Dlist.create () in
  List.iter (fun x -> ignore (Sim.Dlist.push_back l x)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "first 3" [ 1; 2; 3 ] (Sim.Dlist.first_n l 3);
  Alcotest.(check (list int)) "first 10 clamps" [ 1; 2; 3; 4; 5 ]
    (Sim.Dlist.first_n l 10);
  Alcotest.(check (list int)) "first 0" [] (Sim.Dlist.first_n l 0)

let test_fold_exists () =
  let l = Sim.Dlist.create () in
  List.iter (fun x -> ignore (Sim.Dlist.push_back l x)) [ 1; 2; 3 ];
  Alcotest.(check int) "fold sum" 6 (Sim.Dlist.fold ( + ) 0 l);
  Alcotest.(check bool) "exists" true (Sim.Dlist.exists (fun x -> x = 2) l);
  Alcotest.(check bool) "not exists" false (Sim.Dlist.exists (fun x -> x = 9) l)

let prop_model_check =
  QCheck.Test.make ~name:"dlist behaves like a list under random ops"
    ~count:300
    QCheck.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let l = Sim.Dlist.create () in
      let handles = ref [] in
      let model = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              handles := !handles @ [ Sim.Dlist.push_back l v ];
              model := !model @ [ v ]
          | 1 ->
              handles := Sim.Dlist.push_front l v :: !handles;
              model := v :: !model
          | _ -> (
              match !handles with
              | [] -> ()
              | h :: rest ->
                  let v = Sim.Dlist.value h in
                  Sim.Dlist.remove l h;
                  handles := rest;
                  let rec remove_one = function
                    | [] -> []
                    | x :: r when x = v -> r
                    | x :: r -> x :: remove_one r
                  in
                  model := remove_one !model))
        ops;
      (* The model is order-correct only for multiset equality here because
         handle-removal order is arbitrary; compare sorted. *)
      List.sort compare (Sim.Dlist.to_list l) = List.sort compare !model
      && Sim.Dlist.length l = List.length !model)

let suite =
  [
    Alcotest.test_case "push and iterate" `Quick test_push_iterate;
    Alcotest.test_case "remove middle" `Quick test_remove_middle;
    Alcotest.test_case "remove ends" `Quick test_remove_ends;
    Alcotest.test_case "remove only element" `Quick test_remove_only_element;
    Alcotest.test_case "double remove rejected" `Quick
      test_double_remove_rejected;
    Alcotest.test_case "foreign remove rejected" `Quick
      test_remove_foreign_rejected;
    Alcotest.test_case "pop_front" `Quick test_pop_front;
    Alcotest.test_case "first_n" `Quick test_first_n;
    Alcotest.test_case "fold/exists" `Quick test_fold_exists;
    QCheck_alcotest.to_alcotest prop_model_check;
  ]
