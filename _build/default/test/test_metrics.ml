let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_basic () =
  let out =
    Metrics.Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "contains alpha" true (contains out "alpha")

let test_table_alignment () =
  let out =
    Metrics.Table.render
      ~align:[ Metrics.Table.L; Metrics.Table.R ]
      ~header:[ "k"; "v" ]
      [ [ "x"; "1" ] ]
  in
  Alcotest.(check bool) "right aligned value" true (contains out " 1")

let test_table_pads_short_rows () =
  let out = Metrics.Table.render ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_fmt_i () =
  Alcotest.(check string) "thousands" "1,234,567" (Metrics.Table.fmt_i 1234567);
  Alcotest.(check string) "small" "42" (Metrics.Table.fmt_i 42);
  Alcotest.(check string) "negative" "-1,000" (Metrics.Table.fmt_i (-1000));
  Alcotest.(check string) "zero" "0" (Metrics.Table.fmt_i 0)

let test_fmt_f_pct () =
  Alcotest.(check string) "float" "3.14" (Metrics.Table.fmt_f 3.14159);
  Alcotest.(check string) "nan" "-" (Metrics.Table.fmt_f nan);
  Alcotest.(check string) "pos pct" "+12.3%" (Metrics.Table.fmt_pct 12.34);
  Alcotest.(check string) "neg pct" "-4.0%" (Metrics.Table.fmt_pct (-4.0));
  Alcotest.(check string) "nan pct" "-" (Metrics.Table.fmt_pct nan)

let test_chart_renders_series () =
  let series =
    [
      ("up", Array.init 20 (fun i -> (i * 1000, float_of_int i)));
      ("flat", Array.init 20 (fun i -> (i * 1000, 1.0)));
    ]
  in
  let out = Metrics.Ascii_chart.line ~width:40 ~height:8 ~series () in
  Alcotest.(check bool) "has legend up" true (contains out "* = up");
  Alcotest.(check bool) "has legend flat" true (contains out "o = flat");
  Alcotest.(check bool) "has axis" true (contains out "+----")

let test_chart_empty () =
  Alcotest.(check string) "empty data" "(no data)"
    (Metrics.Ascii_chart.line ~series:[ ("x", [||]) ] ())

let test_report_print () =
  let r =
    Metrics.Report.make ~id:"fig0" ~title:"Test figure"
      ~paper_claim:"the paper says X" ~verdict:"we measured Y" "BODY"
  in
  let out = Format.asprintf "%a" Metrics.Report.print r in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" frag) true
        (contains out frag))
    [ "FIG0"; "Test figure"; "the paper says X"; "we measured Y"; "BODY" ]

let suite =
  [
    Alcotest.test_case "table basic" `Quick test_table_basic;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "fmt_i thousands" `Quick test_fmt_i;
    Alcotest.test_case "fmt_f / fmt_pct" `Quick test_fmt_f_pct;
    Alcotest.test_case "chart renders series" `Quick test_chart_renders_series;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
    Alcotest.test_case "report print" `Quick test_report_print;
  ]
