module W = Workloads

let small_cfg kind =
  {
    W.Env.default_config with
    W.Env.kind;
    cpus = 2;
    seed = 5;
    total_pages = 16_384;
    tick_ns = 250_000;
  }

let test_env_build () =
  let env = W.Env.build (small_cfg W.Env.Baseline) in
  Alcotest.(check string) "label" "slub"
    env.W.Env.backend.Slab.Backend.label;
  Alcotest.(check int) "cpus" 2 (Sim.Machine.nr_cpus env.W.Env.machine);
  Alcotest.(check int) "no memory used yet" 0 (W.Env.used_bytes env);
  let env2 = W.Env.build (small_cfg W.Env.Prudence_alloc) in
  Alcotest.(check string) "label" "prudence"
    env2.W.Env.backend.Slab.Backend.label

let test_kind_parsing () =
  Alcotest.(check bool) "slub" true (W.Env.kind_of_string "slub" = Some W.Env.Baseline);
  Alcotest.(check bool) "prudence" true
    (W.Env.kind_of_string "prudence" = Some W.Env.Prudence_alloc);
  Alcotest.(check bool) "junk" true (W.Env.kind_of_string "junk" = None)

let micro_cfg =
  {
    W.Microbench.default_config with
    W.Microbench.pairs_per_cpu = 3_000;
    obj_size = 512;
  }

let test_microbench_completes_both () =
  List.iter
    (fun kind ->
      let env = W.Env.build (small_cfg kind) in
      let r = W.Microbench.run env micro_cfg in
      Alcotest.(check int)
        (W.Env.kind_label kind ^ " all pairs")
        6_000 r.W.Microbench.pairs;
      Alcotest.(check bool) "no oom" false r.W.Microbench.oom;
      Alcotest.(check bool) "positive rate" true
        (r.W.Microbench.pairs_per_sec > 0.);
      (* settle ran: nothing outstanding *)
      Alcotest.(check int) "rcu drained" 0
        (Rcu.pending_callbacks env.W.Env.rcu))
    [ W.Env.Baseline; W.Env.Prudence_alloc ]

let test_microbench_deterministic () =
  let run () =
    let env = W.Env.build (small_cfg W.Env.Prudence_alloc) in
    let r = W.Microbench.run env micro_cfg in
    (r.W.Microbench.duration_ns, r.W.Microbench.snap.Slab.Slab_stats.grows)
  in
  Alcotest.(check (pair int int)) "same seed, same result" (run ()) (run ())

let test_microbench_stats_consistent () =
  let env = W.Env.build (small_cfg W.Env.Baseline) in
  let r = W.Microbench.run env micro_cfg in
  let s = r.W.Microbench.snap in
  Alcotest.(check int) "allocs = pairs" 6_000 s.Slab.Slab_stats.allocs;
  Alcotest.(check int) "deferred = pairs" 6_000
    s.Slab.Slab_stats.deferred_frees;
  Alcotest.(check int) "hits + misses = allocs" 6_000
    (s.Slab.Slab_stats.hits + s.Slab.Slab_stats.misses)

let test_endurance_prudence_flat () =
  let env = W.Env.build (small_cfg W.Env.Prudence_alloc) in
  let r =
    W.Endurance.run env
      {
        W.Endurance.default_config with
        W.Endurance.duration_ns = Sim.Clock.ms 200;
        update_interval_ns = 20_000;
        list_len = 16;
      }
  in
  Alcotest.(check bool) "samples recorded" true (Array.length r.W.Endurance.series > 10);
  Alcotest.(check bool) "no oom" true (r.W.Endurance.oom_at_ns = None);
  Alcotest.(check bool) "updates happened" true (r.W.Endurance.updates > 1000);
  (* flat: the last sample is within 3x of the 25%-mark sample *)
  let series = r.W.Endurance.series in
  let q = Array.length series / 4 in
  let _, early = series.(q) and _, last = series.(Array.length series - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "equilibrium (%.2f vs %.2f MiB)" early last)
    true
    (last < 3. *. Float.max early 0.5)

let test_endurance_baseline_grows () =
  let cfg =
    {
      (small_cfg W.Env.Baseline) with
      W.Env.tick_ns = 1_000_000;
      rcu_config =
        {
          Rcu.default_config with
          Rcu.blimit = 5;
          expedited_blimit = 10;
          softirq_period_ns = 1_000_000;
          qhimark = max_int;
        };
    }
  in
  let env = W.Env.build cfg in
  let r =
    W.Endurance.run env
      {
        W.Endurance.default_config with
        W.Endurance.duration_ns = Sim.Clock.ms 500;
        update_interval_ns = 10_000;
        list_len = 16;
      }
  in
  let series = r.W.Endurance.series in
  let q = Array.length series / 4 in
  let _, early = series.(q) and _, last = series.(Array.length series - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "memory climbs (%.2f -> %.2f MiB)" early last)
    true
    (last > 1.5 *. early);
  Alcotest.(check bool) "backlog built up" true (r.W.Endurance.max_backlog > 1_000)

let app_test_cfg =
  W.Appmodel.
    {
      bench_name = "mini";
      caches =
        [
          { cache_name = "filp"; obj_size = 256 };
          { cache_name = "kmalloc-64"; obj_size = 64 };
        ];
      standing = [ ("filp", 4) ];
      gen_txn =
        (fun _rng ->
          [
            Acquire "filp";
            Acquire "kmalloc-64";
            Work 500;
            Release_newest "kmalloc-64";
            Release_deferred "filp";
          ]);
      txns_per_cpu = 1_000;
      think_ns_mean = 2_000.;
    }

let test_appmodel_runs () =
  let env = W.Env.build (small_cfg W.Env.Prudence_alloc) in
  let r = W.Appmodel.run env app_test_cfg in
  Alcotest.(check int) "all txns" 2_000 r.W.Appmodel.txns;
  Alcotest.(check bool) "no oom" false r.W.Appmodel.oom;
  Alcotest.(check int) "both caches reported" 2
    (List.length r.W.Appmodel.caches);
  (* one deferred (filp) and one regular (kmalloc) free per txn -> 50% *)
  Alcotest.(check bool)
    (Printf.sprintf "deferred pct ~50 (%.1f)" r.W.Appmodel.deferred_pct)
    true
    (r.W.Appmodel.deferred_pct > 45. && r.W.Appmodel.deferred_pct < 55.)

let test_appmodel_standing_objects_live () =
  let env = W.Env.build (small_cfg W.Env.Prudence_alloc) in
  let r = W.Appmodel.run env app_test_cfg in
  let filp =
    List.find
      (fun (c : W.Appmodel.cache_result) -> c.W.Appmodel.cache_name = "filp")
      r.W.Appmodel.caches
  in
  (* 4 standing objects per cpu x 2 cpus stay live: fragmentation is
     well-defined. *)
  Alcotest.(check bool) "fragmentation defined" false
    (Float.is_nan filp.W.Appmodel.fragmentation);
  Alcotest.(check bool) "fragmentation >= 1" true
    (filp.W.Appmodel.fragmentation >= 1.0)

let test_appmodel_unknown_cache_rejected () =
  let env = W.Env.build (small_cfg W.Env.Baseline) in
  let bad =
    { app_test_cfg with W.Appmodel.gen_txn = (fun _ -> [ W.Appmodel.Acquire "nope" ]) }
  in
  (try
     ignore (W.Appmodel.run env bad);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let paper_ratio name lo hi cfg =
  let env = W.Env.build { (small_cfg W.Env.Baseline) with W.Env.cpus = 2 } in
  let r = W.Appmodel.run env cfg in
  Alcotest.(check bool)
    (Printf.sprintf "%s deferred share %.1f%% in [%g, %g]" name
       r.W.Appmodel.deferred_pct lo hi)
    true
    (r.W.Appmodel.deferred_pct >= lo && r.W.Appmodel.deferred_pct <= hi)

let test_fig12_ratios () =
  (* Paper Fig. 12: Postmark 24.4%, Netperf 14%, Apache 18%, PostgreSQL
     4.4%. Allow a couple of points of modelling slack. *)
  paper_ratio "postmark" 19. 29. (W.Postmark.config ~txns_per_cpu:2_000 ());
  paper_ratio "netperf" 11. 17. (W.Netperf.config ~txns_per_cpu:2_000 ());
  paper_ratio "apache" 15. 22. (W.Apache.config ~txns_per_cpu:2_000 ());
  paper_ratio "postgresql" 2.5 7. (W.Postgresql.config ~txns_per_cpu:2_000 ())

let suite =
  [
    Alcotest.test_case "env build" `Quick test_env_build;
    Alcotest.test_case "kind parsing" `Quick test_kind_parsing;
    Alcotest.test_case "microbench completes (both)" `Quick
      test_microbench_completes_both;
    Alcotest.test_case "microbench deterministic" `Quick
      test_microbench_deterministic;
    Alcotest.test_case "microbench stats consistent" `Quick
      test_microbench_stats_consistent;
    Alcotest.test_case "endurance: prudence flat" `Slow
      test_endurance_prudence_flat;
    Alcotest.test_case "endurance: baseline grows" `Slow
      test_endurance_baseline_grows;
    Alcotest.test_case "appmodel runs" `Quick test_appmodel_runs;
    Alcotest.test_case "appmodel standing objects" `Quick
      test_appmodel_standing_objects_live;
    Alcotest.test_case "appmodel unknown cache" `Quick
      test_appmodel_unknown_cache_rejected;
    Alcotest.test_case "fig12 deferred shares" `Slow test_fig12_ratios;
  ]
