open Test_util
module Frame = Slab.Frame

let make () =
  let env = make_env ~cpus:2 () in
  let slub = Slab.Slub.create env.fenv env.rcu in
  (env, Slab.Kmalloc.create (Slab.Slub.backend slub))

let test_routes_to_class_cache () =
  let env, km = make () in
  let c = cpu0 env in
  let obj = Option.get (Slab.Kmalloc.alloc km c ~size:50) in
  Alcotest.(check string) "rounded to kmalloc-64" "kmalloc-64"
    obj.Frame.parent.Frame.cache.Frame.name;
  Alcotest.(check int) "class object size" 64
    obj.Frame.parent.Frame.cache.Frame.obj_size;
  Slab.Kmalloc.free km c obj

let test_caches_shared_per_class () =
  let _env, km = make () in
  let c1 = Slab.Kmalloc.cache_for km ~size:100 in
  let c2 = Slab.Kmalloc.cache_for km ~size:128 in
  Alcotest.(check bool) "same class cache" true (c1 == c2);
  let c3 = Slab.Kmalloc.cache_for km ~size:129 in
  Alcotest.(check bool) "next class differs" true (c1 != c3)

let test_free_finds_owner_cache () =
  let env, km = make () in
  let c = cpu0 env in
  let small = Option.get (Slab.Kmalloc.alloc km c ~size:8) in
  let big = Option.get (Slab.Kmalloc.alloc km c ~size:4096) in
  (* kfree with no cache argument routes by the object's parent. *)
  Slab.Kmalloc.free km c big;
  Slab.Kmalloc.free km c small;
  Slab.Kmalloc.iter_caches km (fun cache ->
      Frame.check_invariants cache;
      Alcotest.(check int)
        (cache.Frame.name ^ " live")
        0
        (Frame.live_objects cache))

let test_deferred_via_kmalloc () =
  let env, km = make () in
  let c = cpu0 env in
  let obj = Option.get (Slab.Kmalloc.alloc km c ~size:512) in
  Slab.Kmalloc.free_deferred km c obj;
  Alcotest.(check int) "one rcu callback" 1 (Rcu.pending_callbacks env.rcu);
  Sim.Engine.run ~until:(Sim.Clock.ms 30) env.eng;
  Alcotest.(check int) "reclaimed" 0 (Rcu.pending_callbacks env.rcu)

let test_oversize_rejected () =
  let env, km = make () in
  let c = cpu0 env in
  try
    ignore (Slab.Kmalloc.alloc km c ~size:10_000);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_over_prudence_backend () =
  let env = make_env ~cpus:2 () in
  let pr = Prudence.create env.fenv env.rcu in
  let km = Slab.Kmalloc.create (Prudence.backend pr) in
  let c = cpu0 env in
  let obj = Option.get (Slab.Kmalloc.alloc km c ~size:256) in
  Slab.Kmalloc.free_deferred km c obj;
  Alcotest.(check bool) "went latent, not to rcu" true
    (obj.Frame.ostate = Frame.In_latent_cache
    && Rcu.pending_callbacks env.rcu = 0)

let suite =
  [
    Alcotest.test_case "routes to class cache" `Quick test_routes_to_class_cache;
    Alcotest.test_case "class caches shared" `Quick test_caches_shared_per_class;
    Alcotest.test_case "free finds owner cache" `Quick
      test_free_finds_owner_cache;
    Alcotest.test_case "deferred via kmalloc" `Quick test_deferred_via_kmalloc;
    Alcotest.test_case "oversize rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "over prudence backend" `Quick test_over_prudence_backend;
  ]
