let test_fifo () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_back d 1;
  Sim.Deque.push_back d 2;
  Sim.Deque.push_back d 3;
  Alcotest.(check (option int)) "front" (Some 1) (Sim.Deque.pop_front d);
  Alcotest.(check (option int)) "front" (Some 2) (Sim.Deque.pop_front d);
  Alcotest.(check (option int)) "front" (Some 3) (Sim.Deque.pop_front d);
  Alcotest.(check (option int)) "empty" None (Sim.Deque.pop_front d)

let test_both_ends () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_back d 2;
  Sim.Deque.push_front d 1;
  Sim.Deque.push_back d 3;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Sim.Deque.to_list d);
  Alcotest.(check (option int)) "pop_back" (Some 3) (Sim.Deque.pop_back d);
  Alcotest.(check (option int)) "pop_front" (Some 1) (Sim.Deque.pop_front d);
  Alcotest.(check int) "length" 1 (Sim.Deque.length d)

let test_peek () =
  let d = Sim.Deque.create () in
  Alcotest.(check (option int)) "peek empty" None (Sim.Deque.peek_front d);
  Sim.Deque.push_back d 5;
  Sim.Deque.push_back d 6;
  Alcotest.(check (option int)) "peek front" (Some 5) (Sim.Deque.peek_front d);
  Alcotest.(check (option int)) "peek back" (Some 6) (Sim.Deque.peek_back d);
  Alcotest.(check int) "peek does not remove" 2 (Sim.Deque.length d)

let test_pop_back_after_front_pushes () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_front d 3;
  Sim.Deque.push_front d 2;
  Sim.Deque.push_front d 1;
  Alcotest.(check (option int)) "back is 3" (Some 3) (Sim.Deque.pop_back d)

let test_clear () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_back d 1;
  Sim.Deque.clear d;
  Alcotest.(check bool) "cleared" true (Sim.Deque.is_empty d)

let prop_deque_model =
  QCheck.Test.make ~name:"deque matches a list model" ~count:300
    QCheck.(list (pair (int_bound 3) small_int))
    (fun ops ->
      let d = Sim.Deque.create () in
      let model = ref [] in
      List.for_all
        (fun (op, v) ->
          match op with
          | 0 ->
              Sim.Deque.push_back d v;
              model := !model @ [ v ];
              true
          | 1 ->
              Sim.Deque.push_front d v;
              model := v :: !model;
              true
          | 2 -> (
              let expect =
                match !model with [] -> None | x :: rest -> model := rest; Some x
              in
              Sim.Deque.pop_front d = expect)
          | _ -> (
              let expect =
                match List.rev !model with
                | [] -> None
                | x :: rest ->
                    model := List.rev rest;
                    Some x
              in
              Sim.Deque.pop_back d = expect))
        ops
      && Sim.Deque.to_list d = !model)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "both ends" `Quick test_both_ends;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "pop_back after front pushes" `Quick
      test_pop_back_after_front_pushes;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_deque_model;
  ]
