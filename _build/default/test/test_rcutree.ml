open Test_util
module Frame = Slab.Frame

let make_tree ?(total_pages = 16_384) ?config () =
  let env = make_env ~cpus:2 ~total_pages () in
  let readers = Rcu.Readers.create env.rcu in
  env.fenv.Frame.reuse_check <-
    Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"tree");
  let backend = Prudence.backend (Prudence.create ?config env.fenv env.rcu) in
  let cache = backend.Slab.Backend.create_cache ~name:"tnode" ~obj_size:64 in
  let tree =
    Rcudata.Rcutree.create ~backend ~readers ~cache ~name:"t"
  in
  (env, readers, cache, tree)

let test_insert_lookup () =
  let env, _, _, t = make_tree () in
  let c = cpu0 env in
  List.iter
    (fun k ->
      Alcotest.(check bool) "insert ok" true
        (Rcudata.Rcutree.insert t c ~key:k ~value:(k * 10)))
    [ 5; 3; 8; 1; 4; 7; 9 ];
  Alcotest.(check int) "size" 7 (Rcudata.Rcutree.size t);
  Alcotest.(check (option int)) "lookup 4" (Some 40)
    (Rcudata.Rcutree.lookup t c ~key:4);
  Alcotest.(check (option int)) "lookup missing" None
    (Rcudata.Rcutree.lookup t c ~key:6);
  Rcudata.Rcutree.check_bst_invariant t

let test_sorted_order () =
  let env, _, _, t = make_tree () in
  let c = cpu0 env in
  List.iter
    (fun k -> ignore (Rcudata.Rcutree.insert t c ~key:k ~value:k))
    [ 5; 3; 8; 1; 4 ];
  Alcotest.(check (list (pair int int)))
    "in-order"
    [ (1, 1); (3, 3); (4, 4); (5, 5); (8, 8) ]
    (Rcudata.Rcutree.to_sorted_list t)

let test_update_defers_path () =
  (* Re-inserting a deep key path-copies the whole root-to-node path:
     multiple deferred objects per update (§3.1). *)
  let env, _, cache, t = make_tree () in
  let c = cpu0 env in
  (* A right-leaning path 1..6. *)
  for k = 1 to 6 do
    ignore (Rcudata.Rcutree.insert t c ~key:k ~value:k)
  done;
  let before =
    (Slab.Slab_stats.snapshot cache.Frame.stats).Slab.Slab_stats.deferred_frees
  in
  ignore (Rcudata.Rcutree.insert t c ~key:6 ~value:60);
  let after =
    (Slab.Slab_stats.snapshot cache.Frame.stats).Slab.Slab_stats.deferred_frees
  in
  Alcotest.(check int) "whole path deferred" 6 (after - before);
  Alcotest.(check (option int)) "new value" (Some 60)
    (Rcudata.Rcutree.lookup t c ~key:6)

let test_delete () =
  let env, _, _, t = make_tree () in
  let c = cpu0 env in
  List.iter
    (fun k -> ignore (Rcudata.Rcutree.insert t c ~key:k ~value:k))
    [ 5; 3; 8; 1; 4; 7; 9; 6 ];
  Alcotest.(check bool) "delete leaf" true (Rcudata.Rcutree.delete t c ~key:1);
  Alcotest.(check bool) "delete two-child root" true
    (Rcudata.Rcutree.delete t c ~key:5);
  Alcotest.(check bool) "delete absent" false
    (Rcudata.Rcutree.delete t c ~key:42);
  Alcotest.(check int) "size" 6 (Rcudata.Rcutree.size t);
  Alcotest.(check (option int)) "gone" None (Rcudata.Rcutree.lookup t c ~key:5);
  Alcotest.(check (option int)) "others intact" (Some 6)
    (Rcudata.Rcutree.lookup t c ~key:6);
  Rcudata.Rcutree.check_bst_invariant t

let test_live_accounting_settles () =
  let env, _, cache, t = make_tree () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        for k = 1 to 50 do
          ignore (Rcudata.Rcutree.insert t c ~key:(k * 7 mod 101) ~value:k)
        done;
        for k = 1 to 25 do
          ignore (Rcudata.Rcutree.delete t c ~key:(k * 7 mod 101))
        done;
        Rcu.synchronize env.rcu;
        Rcu.synchronize env.rcu)
  in
  check_completed "tree ops" finished;
  Rcudata.Rcutree.check_bst_invariant t;
  (* Every deferred path node eventually reclaims: live = tree size. *)
  Alcotest.(check int) "live = size" (Rcudata.Rcutree.size t)
    (Frame.live_objects cache);
  Frame.check_invariants cache

let test_oom_rollback () =
  (* wait_on_oom off: exhaustion must fail cleanly outside process
     context. *)
  let config = { Prudence.default_config with Prudence.wait_on_oom = false } in
  let env, _, cache, t = make_tree ~total_pages:8 ~config () in
  let c = cpu0 env in
  (* Fill memory through tree inserts until one fails... *)
  let k = ref 0 in
  while Rcudata.Rcutree.insert t c ~key:!k ~value:!k do
    incr k
  done;
  Rcudata.Rcutree.check_bst_invariant t;
  (* ...the failed insert must not leak: live objects = tree nodes. *)
  Alcotest.(check int) "no leak on failed path copy"
    (Rcudata.Rcutree.size t) (Frame.live_objects cache);
  Alcotest.(check (option int)) "existing keys intact" (Some 0)
    (Rcudata.Rcutree.lookup t c ~key:0)

let test_concurrent_readers_safe () =
  let env, readers, cache, t = make_tree () in
  let c0 = cpu0 env and c1 = cpu env 1 in
  for k = 1 to 64 do
    ignore (Rcudata.Rcutree.insert t c0 ~key:k ~value:k)
  done;
  let horizon = Sim.Clock.ms 40 in
  Sim.Process.spawn env.eng (fun () ->
      let rng = Sim.Rng.create ~seed:3 in
      while Sim.Engine.now env.eng < horizon do
        let k = 1 + Sim.Rng.int rng 64 in
        if Sim.Rng.bool rng then
          ignore (Rcudata.Rcutree.insert t c0 ~key:k ~value:(Sim.Rng.int rng 100))
        else ignore (Rcudata.Rcutree.delete t c0 ~key:k);
        Sim.Process.sleep env.eng 5_000
      done);
  Sim.Process.spawn env.eng (fun () ->
      let rng = Sim.Rng.create ~seed:4 in
      while Sim.Engine.now env.eng < horizon do
        ignore (Rcudata.Rcutree.lookup t c1 ~key:(1 + Sim.Rng.int rng 64));
        Sim.Process.sleep env.eng 2_000
      done);
  Sim.Engine.run ~until:(horizon + Sim.Clock.ms 10) env.eng;
  Alcotest.(check (list string)) "no violations" []
    (Rcu.Readers.violations readers);
  Rcudata.Rcutree.check_bst_invariant t;
  Frame.check_invariants cache

let prop_tree_matches_model =
  QCheck.Test.make ~name:"rcutree behaves like a map" ~count:60
    QCheck.(list (pair (int_bound 40) bool))
    (fun ops ->
      let env, _, _, t = make_tree () in
      let c = cpu0 env in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            ignore (Rcudata.Rcutree.insert t c ~key:k ~value:(k * 2));
            Hashtbl.replace model k (k * 2)
          end
          else begin
            ignore (Rcudata.Rcutree.delete t c ~key:k);
            Hashtbl.remove model k
          end)
        ops;
      Rcudata.Rcutree.check_bst_invariant t;
      let expect =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Rcudata.Rcutree.to_sorted_list t = expect
      && Rcudata.Rcutree.size t = List.length expect)

let suite =
  [
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "sorted order" `Quick test_sorted_order;
    Alcotest.test_case "update defers whole path (§3.1)" `Quick
      test_update_defers_path;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "live accounting settles" `Quick
      test_live_accounting_settles;
    Alcotest.test_case "oom rollback does not leak" `Quick test_oom_rollback;
    Alcotest.test_case "concurrent readers safe" `Quick
      test_concurrent_readers_safe;
    QCheck_alcotest.to_alcotest prop_tree_matches_model;
  ]
