test/test_simlock.ml: Alcotest List QCheck QCheck_alcotest Sim
