test/test_experiments.ml: Alcotest Core List Metrics String Workloads
