test/test_workloads.ml: Alcotest Array Float List Printf Rcu Sim Slab Workloads
