test/test_metrics.ml: Alcotest Array Format List Metrics Printf String
