test/test_slub.ml: Alcotest Clock List Mem Option QCheck QCheck_alcotest Rcu Sim Slab Test_util
