test/test_engine.ml: Alcotest List Sim
