test/test_rcu.ml: Alcotest Clock List Printf Rcu Sim Test_util
