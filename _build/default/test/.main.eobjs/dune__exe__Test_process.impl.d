test/test_process.ml: Alcotest List Printf Sim
