test/test_rcudata.ml: Alcotest Clock Prudence Rcu Rcudata Sim Slab Test_util
