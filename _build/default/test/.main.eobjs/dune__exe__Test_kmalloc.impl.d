test/test_kmalloc.ml: Alcotest Option Prudence Rcu Sim Slab Test_util
