test/test_series_stat.ml: Alcotest Array Sim
