test/test_integration.ml: Alcotest Rcu Rcudata Sim Slab Workloads
