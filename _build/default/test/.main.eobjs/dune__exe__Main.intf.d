test/main.mli:
