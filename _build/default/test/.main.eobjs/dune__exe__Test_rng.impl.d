test/test_rng.ml: Alcotest Array List Sim
