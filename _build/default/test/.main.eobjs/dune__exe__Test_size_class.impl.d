test/test_size_class.ml: Alcotest Array Printf Slab
