test/test_prudence.ml: Alcotest Clock List Option Printf Prudence QCheck QCheck_alcotest Rcu Sim Slab Test_util
