test/test_properties.ml: Alcotest Array Gen List Option Printf Prudence QCheck QCheck_alcotest Rcu Rcudata Sim Slab Test_util Workloads
