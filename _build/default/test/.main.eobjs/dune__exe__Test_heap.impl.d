test/test_heap.ml: Alcotest List QCheck QCheck_alcotest Sim
