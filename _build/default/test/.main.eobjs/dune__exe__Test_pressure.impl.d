test/test_pressure.ml: Alcotest List Mem
