test/test_readers.ml: Alcotest Clock List Rcu Sim Test_util
