test/test_buddy.ml: Alcotest Hashtbl List Mem Option QCheck QCheck_alcotest
