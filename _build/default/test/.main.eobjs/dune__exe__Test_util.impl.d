test/test_util.ml: Alcotest Mem Rcu Sim Slab
