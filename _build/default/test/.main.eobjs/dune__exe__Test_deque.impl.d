test/test_deque.ml: Alcotest List QCheck QCheck_alcotest Sim
