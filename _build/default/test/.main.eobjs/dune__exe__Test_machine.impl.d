test/test_machine.ml: Alcotest Hashtbl Sim Test_util
