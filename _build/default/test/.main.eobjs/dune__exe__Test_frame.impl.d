test/test_frame.ml: Alcotest Float List Mem Option Sim Slab Test_util
