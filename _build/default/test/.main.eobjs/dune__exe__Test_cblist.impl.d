test/test_cblist.ml: Alcotest List Rcu
