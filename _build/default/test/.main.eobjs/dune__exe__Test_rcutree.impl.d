test/test_rcutree.ml: Alcotest Hashtbl List Prudence QCheck QCheck_alcotest Rcu Rcudata Sim Slab Test_util
