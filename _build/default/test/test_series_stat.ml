let test_series_push_order () =
  let s = Sim.Series.create ~name:"x" in
  Sim.Series.push s ~time:10 1.0;
  Sim.Series.push s ~time:20 2.0;
  Sim.Series.push s ~time:20 3.0;
  Alcotest.(check int) "length" 3 (Sim.Series.length s);
  let a = Sim.Series.to_array s in
  Alcotest.(check (pair int (float 0.001))) "first" (10, 1.0) a.(0);
  Alcotest.(check (pair int (float 0.001))) "last" (20, 3.0) a.(2);
  Alcotest.(check (float 0.001)) "max" 3.0 (Sim.Series.max_value s)

let test_series_sampler () =
  let eng = Sim.Engine.create () in
  let s = Sim.Series.create ~name:"mem" in
  let v = ref 0.0 in
  Sim.Series.sample_every eng s ~period:1_000 (fun () ->
      v := !v +. 1.0;
      !v);
  (* Keep the engine busy to the horizon so the sampler keeps firing. *)
  ignore (Sim.Engine.schedule eng ~after:10_500 ignore);
  Sim.Engine.run ~until:10_500 eng;
  Alcotest.(check int) "10 samples" 10 (Sim.Series.length s);
  match Sim.Series.last s with
  | Some (t, value) ->
      Alcotest.(check int) "last time" 10_000 t;
      Alcotest.(check (float 0.001)) "last value" 10.0 value
  | None -> Alcotest.fail "no samples"

let test_downsample () =
  let s = Sim.Series.create ~name:"d" in
  for i = 0 to 99 do
    Sim.Series.push s ~time:i (float_of_int i)
  done;
  let thin = Sim.Series.downsample s ~max_points:5 in
  Alcotest.(check int) "5 points" 5 (Array.length thin);
  Alcotest.(check int) "keeps first" 0 (fst thin.(0));
  Alcotest.(check int) "keeps last" 99 (fst thin.(4));
  let full = Sim.Series.downsample s ~max_points:200 in
  Alcotest.(check int) "no-op when under budget" 100 (Array.length full)

let test_summarize () =
  let s = Sim.Stat.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "n" 8 s.Sim.Stat.n;
  Alcotest.(check (float 0.001)) "mean" 5.0 s.Sim.Stat.mean;
  Alcotest.(check (float 0.01)) "stdev (sample)" 2.138 s.Sim.Stat.stdev;
  Alcotest.(check (float 0.001)) "min" 2.0 s.Sim.Stat.min;
  Alcotest.(check (float 0.001)) "max" 9.0 s.Sim.Stat.max

let test_summarize_singleton () =
  let s = Sim.Stat.summarize [ 3.5 ] in
  Alcotest.(check (float 0.001)) "mean" 3.5 s.Sim.Stat.mean;
  Alcotest.(check (float 0.001)) "stdev 0 for n=1" 0.0 s.Sim.Stat.stdev

let test_summarize_empty_rejected () =
  try
    ignore (Sim.Stat.summarize []);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_percent_change_and_speedup () =
  Alcotest.(check (float 0.001)) "+50%" 50.0
    (Sim.Stat.percent_change ~baseline:100.0 150.0);
  Alcotest.(check (float 0.001)) "-25%" (-25.0)
    (Sim.Stat.percent_change ~baseline:100.0 75.0);
  Alcotest.(check (float 0.001)) "2x" 2.0 (Sim.Stat.speedup ~baseline:50.0 100.0)

let suite =
  [
    Alcotest.test_case "series push/order" `Quick test_series_push_order;
    Alcotest.test_case "series sampler" `Quick test_series_sampler;
    Alcotest.test_case "downsample" `Quick test_downsample;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize singleton" `Quick test_summarize_singleton;
    Alcotest.test_case "summarize empty rejected" `Quick
      test_summarize_empty_rejected;
    Alcotest.test_case "percent change / speedup" `Quick
      test_percent_change_and_speedup;
  ]
