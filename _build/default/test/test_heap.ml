let int_heap () = Sim.Heap.create ~cmp:compare ()

let test_empty () =
  let h = int_heap () in
  Alcotest.(check int) "empty length" 0 (Sim.Heap.length h);
  Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Sim.Heap.pop h)

let test_push_pop_ordering () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  Alcotest.(check int) "length" 7 (Sim.Heap.length h);
  Alcotest.(check (list int))
    "sorted drain" [ 0; 1; 1; 3; 4; 5; 9 ]
    (Sim.Heap.to_sorted_list h);
  Alcotest.(check int) "drained" 0 (Sim.Heap.length h)

let test_peek_does_not_remove () =
  let h = int_heap () in
  Sim.Heap.push h 2;
  Sim.Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check int) "length unchanged" 2 (Sim.Heap.length h)

let test_pop_exn () =
  let h = int_heap () in
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Sim.Heap.pop_exn h));
  Sim.Heap.push h 7;
  Alcotest.(check int) "pop_exn" 7 (Sim.Heap.pop_exn h)

let test_clear () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 3; 2; 1 ];
  Sim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Sim.Heap.length h);
  Sim.Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Sim.Heap.pop h)

let test_iter_counts () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 4; 8; 15; 16; 23; 42 ];
  let sum = ref 0 in
  Sim.Heap.iter (fun x -> sum := !sum + x) h;
  Alcotest.(check int) "iter sums all" 108 !sum

let test_custom_order () =
  let h = Sim.Heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Sim.Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (list int)) "max-heap drain" [ 3; 2; 1 ]
    (Sim.Heap.to_sorted_list h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Sim.Heap.push h) xs;
      Sim.Heap.to_sorted_list h = List.sort compare xs)

let prop_interleaved_push_pop =
  QCheck.Test.make ~name:"interleaved push/pop returns global minimum"
    ~count:200
    QCheck.(list (pair int bool))
    (fun ops ->
      let h = int_heap () in
      let model = ref [] in
      let remove_one v l =
        let rec go = function
          | [] -> []
          | y :: rest when y = v -> rest
          | y :: rest -> y :: go rest
        in
        go l
      in
      List.for_all
        (fun (x, pop) ->
          if pop then begin
            let expect =
              match List.sort compare !model with [] -> None | m :: _ -> Some m
            in
            match (expect, Sim.Heap.pop h) with
            | None, None -> true
            | Some e, Some g when e = g ->
                model := remove_one g !model;
                true
            | _ -> false
          end
          else begin
            Sim.Heap.push h x;
            model := x :: !model;
            true
          end)
        ops)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "push/pop ordering" `Quick test_push_pop_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "pop_exn" `Quick test_pop_exn;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter visits all" `Quick test_iter_counts;
    Alcotest.test_case "custom comparison" `Quick test_custom_order;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_interleaved_push_pop;
  ]
