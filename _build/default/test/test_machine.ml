let test_topology () =
  let _eng, m = Test_util.make_sim ~cpus:8 ~nodes:2 () in
  Alcotest.(check int) "cpus" 8 (Sim.Machine.nr_cpus m);
  Alcotest.(check int) "nodes" 2 (Sim.Machine.nr_nodes m);
  Alcotest.(check int) "cpu0 on node 0" 0 (Sim.Machine.node_of_cpu m 0);
  Alcotest.(check int) "cpu3 on node 0" 0 (Sim.Machine.node_of_cpu m 3);
  Alcotest.(check int) "cpu4 on node 1" 1 (Sim.Machine.node_of_cpu m 4);
  Alcotest.(check int) "cpu7 on node 1" 1 (Sim.Machine.node_of_cpu m 7)

let test_ticks_deliver_context_switches () =
  let eng, m = Test_util.make_sim ~cpus:2 ~tick_ns:1_000_000 () in
  let switches = ref 0 in
  Sim.Machine.on_context_switch m (fun _cpu -> incr switches);
  Sim.Engine.run ~until:10_500_000 eng;
  (* ~10 ticks per cpu over 10.5ms *)
  if !switches < 18 || !switches > 22 then
    Alcotest.failf "unexpected context switch count: %d" !switches

let test_ticks_staggered () =
  let eng, m = Test_util.make_sim ~cpus:4 ~tick_ns:1_000_000 () in
  let times = Hashtbl.create 16 in
  Sim.Machine.on_context_switch m (fun cpu ->
      if cpu.Sim.Machine.id >= 0 && not (Hashtbl.mem times cpu.Sim.Machine.id)
      then Hashtbl.add times cpu.Sim.Machine.id (Sim.Engine.now eng));
  Sim.Engine.run ~until:3_000_000 eng;
  let t0 = Hashtbl.find times 0 and t1 = Hashtbl.find times 1 in
  Alcotest.(check bool) "cpus tick at different instants" true (t0 <> t1)

let test_rcu_nesting_suppresses_switch () =
  let eng, m = Test_util.make_sim ~cpus:1 ~tick_ns:1_000_000 () in
  let switches = ref 0 in
  Sim.Machine.on_context_switch m (fun _ -> incr switches);
  let c = Sim.Machine.cpu m 0 in
  c.Sim.Machine.rcu_nesting <- 1;
  Sim.Engine.run ~until:5_500_000 eng;
  Alcotest.(check int) "no switches inside critical section" 0 !switches;
  c.Sim.Machine.rcu_nesting <- 0;
  Sim.Engine.run ~until:8_500_000 eng;
  Alcotest.(check bool) "switches resume" true (!switches > 0)

let test_consume_drain () =
  let _eng, m = Test_util.make_sim ~cpus:1 () in
  let c = Sim.Machine.cpu m 0 in
  Sim.Machine.consume c 100;
  Sim.Machine.consume c 250;
  Alcotest.(check int) "drain totals" 350 (Sim.Machine.drain c);
  Alcotest.(check int) "drain clears" 0 (Sim.Machine.drain c)

let test_idle_work_runs_on_idle () =
  let eng, m = Test_util.make_sim ~cpus:1 () in
  let c = Sim.Machine.cpu m 0 in
  let ran_at = ref (-1) in
  Sim.Machine.submit_idle m c (fun () -> ran_at := Sim.Engine.now eng);
  Sim.Process.spawn eng (fun () ->
      Sim.Process.sleep eng 1_000;
      (* busy until here; now go idle *)
      Sim.Machine.idle_sleep m c 2_000);
  Sim.Engine.run ~until:10_000 eng;
  Alcotest.(check int) "idle work ran at idle entry" 1_000 !ran_at

let test_idle_work_immediate_when_idle () =
  let eng, m = Test_util.make_sim ~cpus:1 () in
  let c = Sim.Machine.cpu m 0 in
  let ran = ref false in
  Sim.Process.spawn eng (fun () ->
      Sim.Machine.idle_sleep m c 5_000);
  Sim.Engine.run ~until:1_000 eng;
  (* CPU is inside its idle window now *)
  Alcotest.(check bool) "cpu idle" true (Sim.Machine.is_idle c);
  Sim.Machine.submit_idle m c (fun () -> ran := true);
  Alcotest.(check bool) "ran immediately" true !ran;
  Sim.Engine.run ~until:6_000 eng;
  Alcotest.(check bool) "busy after window" false (Sim.Machine.is_idle c)

let test_invalid_configs () =
  let eng = Sim.Engine.create () in
  (try
     ignore (Sim.Machine.create eng ~cpus:0 ());
     Alcotest.fail "expected failure for 0 cpus"
   with Invalid_argument _ -> ());
  try
    ignore (Sim.Machine.create eng ~cpus:2 ~nodes:3 ());
    Alcotest.fail "expected failure for nodes > cpus"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "topology" `Quick test_topology;
    Alcotest.test_case "ticks deliver context switches" `Quick
      test_ticks_deliver_context_switches;
    Alcotest.test_case "ticks staggered" `Quick test_ticks_staggered;
    Alcotest.test_case "read-side nesting suppresses switches" `Quick
      test_rcu_nesting_suppresses_switch;
    Alcotest.test_case "consume/drain" `Quick test_consume_drain;
    Alcotest.test_case "idle work runs on idle" `Quick
      test_idle_work_runs_on_idle;
    Alcotest.test_case "idle work immediate when idle" `Quick
      test_idle_work_immediate_when_idle;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs;
  ]
