(* Full-stack torture tests: concurrent readers and updaters over the RCU
   data structures, with the premature-reuse checker armed, on both
   allocators. *)

module W = Workloads

let torture kind =
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind;
        cpus = 4;
        seed = 23;
        total_pages = 32_768;
        tick_ns = 500_000;
        track_readers = true;
      }
  in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"torture" ~obj_size:192 in
  let table =
    Rcudata.Rcuhash.create ~backend ~readers:env.W.Env.readers ~cache
      ~buckets:32 ~name:"torture"
  in
  let horizon = Sim.Clock.ms 80 in
  let lookups = ref 0 and mutations = ref 0 in
  (* CPU 0 and 1: updaters (insert/update/delete mix). *)
  for i = 0 to 1 do
    Sim.Process.spawn env.W.Env.eng (fun () ->
        let cpu = W.Env.cpu env i in
        let rng = Sim.Rng.split env.W.Env.rng in
        while Sim.Engine.now env.W.Env.eng < horizon do
          let key = Sim.Rng.int rng 200 in
          (match Sim.Rng.int rng 3 with
          | 0 -> ignore (Rcudata.Rcuhash.insert table cpu ~key ~value:key)
          | 1 -> ignore (Rcudata.Rcuhash.update table cpu ~key ~value:(-key))
          | _ -> ignore (Rcudata.Rcuhash.delete table cpu ~key));
          incr mutations;
          Sim.Process.sleep env.W.Env.eng (2_000 + Sim.Machine.drain cpu)
        done)
  done;
  (* CPU 2 and 3: readers, sometimes dwelling inside the critical section
     (delaying grace periods). *)
  for i = 2 to 3 do
    Sim.Process.spawn env.W.Env.eng (fun () ->
        let cpu = W.Env.cpu env i in
        let rng = Sim.Rng.split env.W.Env.rng in
        while Sim.Engine.now env.W.Env.eng < horizon do
          ignore (Rcudata.Rcuhash.lookup table cpu ~key:(Sim.Rng.int rng 200));
          incr lookups;
          Sim.Process.sleep env.W.Env.eng (1_500 + Sim.Machine.drain cpu)
        done)
  done;
  Sim.Engine.run_until_quiet ~horizon:(2 * horizon) env.W.Env.eng;
  (* settle everything deferred, then check the world *)
  Sim.Process.spawn env.W.Env.eng (fun () -> backend.Slab.Backend.settle ());
  Sim.Engine.run_until_quiet ~horizon:(4 * horizon) env.W.Env.eng;
  Alcotest.(check bool) "mutations happened" true (!mutations > 1_000);
  Alcotest.(check bool) "lookups happened" true (!lookups > 1_000);
  Alcotest.(check (list string)) "no safety violations" []
    (W.Env.safety_violations env);
  Slab.Frame.check_invariants cache;
  Alcotest.(check int) "no leftover rcu callbacks" 0
    (Rcu.pending_callbacks env.W.Env.rcu);
  (* Everything still in the table is live; everything else reclaimed. *)
  Alcotest.(check int) "live = table size" (Rcudata.Rcuhash.size table)
    (Slab.Frame.live_objects cache)

let test_torture_slub () = torture W.Env.Baseline
let test_torture_prudence () = torture W.Env.Prudence_alloc

(* The readers in a long critical section must stall reclamation on both
   backends; memory is only reusable after they exit. *)
let gp_stall kind =
  let env =
    W.Env.build
      {
        W.Env.default_config with
        W.Env.kind;
        cpus = 2;
        seed = 9;
        track_readers = true;
      }
  in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"stall" ~obj_size:256 in
  let c0 = W.Env.cpu env 0 and c1 = W.Env.cpu env 1 in
  let obj =
    match backend.Slab.Backend.alloc cache c0 with
    | Some o -> o
    | None -> Alcotest.fail "oom"
  in
  let oid = obj.Slab.Frame.oid in
  (* Reader enters and holds the object. *)
  Rcu.Readers.enter env.W.Env.readers c1;
  Rcu.Readers.hold env.W.Env.readers c1 ~oid;
  backend.Slab.Backend.free_deferred cache c0 obj;
  (* 20 ms pass; the reader never quiesces, so no grace period completes
     and the object stays unreclaimed. *)
  Sim.Engine.run ~until:(Sim.Clock.ms 20) env.W.Env.eng;
  Alcotest.(check int) "no gp while reader active" 0
    (Rcu.completed env.W.Env.rcu);
  Alcotest.(check bool) "object not reclaimed" true
    (obj.Slab.Frame.ostate = Slab.Frame.Allocated
    || obj.Slab.Frame.ostate = Slab.Frame.In_latent_cache
    || obj.Slab.Frame.ostate = Slab.Frame.In_latent_slab);
  Rcu.Readers.exit env.W.Env.readers c1;
  Sim.Engine.run ~until:(Sim.Clock.ms 45) env.W.Env.eng;
  Alcotest.(check bool) "gp completes after reader exits" true
    (Rcu.completed env.W.Env.rcu >= 1);
  Alcotest.(check (list string)) "no violations" []
    (W.Env.safety_violations env)

let test_gp_stall_slub () = gp_stall W.Env.Baseline
let test_gp_stall_prudence () = gp_stall W.Env.Prudence_alloc

(* Determinism across the whole stack: identical seeds -> identical
   simulations, different seeds -> different interleavings. *)
let test_cross_stack_determinism () =
  let run seed =
    let env =
      W.Env.build
        { W.Env.default_config with W.Env.cpus = 3; seed; total_pages = 8_192 }
    in
    (* postmark's transaction mix draws from the seeded RNG *)
    let r = W.Appmodel.run env (W.Postmark.config ~txns_per_cpu:300 ()) in
    (r.W.Appmodel.duration_ns, Sim.Engine.executed env.W.Env.eng)
  in
  Alcotest.(check (pair int int)) "seed 1 reproducible" (run 1) (run 1);
  Alcotest.(check bool) "seed changes interleaving" true (run 1 <> run 2)

let suite =
  [
    Alcotest.test_case "torture: slub stack" `Slow test_torture_slub;
    Alcotest.test_case "torture: prudence stack" `Slow test_torture_prudence;
    Alcotest.test_case "reader stalls reclamation (slub)" `Quick
      test_gp_stall_slub;
    Alcotest.test_case "reader stalls reclamation (prudence)" `Quick
      test_gp_stall_prudence;
    Alcotest.test_case "cross-stack determinism" `Slow
      test_cross_stack_determinism;
  ]
