let test_uncontended () =
  let l = Sim.Simlock.create ~name:"t" in
  let d = Sim.Simlock.acquire l ~now:1000 ~hold:50 in
  Alcotest.(check int) "uncontended delay = hold" 50 d;
  Alcotest.(check int) "acquisitions" 1 (Sim.Simlock.acquisitions l);
  Alcotest.(check int) "no contention" 0 (Sim.Simlock.contended l);
  Alcotest.(check int) "no wait" 0 (Sim.Simlock.total_wait_ns l)

let test_contended_serializes () =
  let l = Sim.Simlock.create ~name:"t" in
  (* Two CPUs hit the lock at the same virtual instant. *)
  let d1 = Sim.Simlock.acquire l ~now:0 ~hold:100 in
  let d2 = Sim.Simlock.acquire l ~now:0 ~hold:100 in
  let d3 = Sim.Simlock.acquire l ~now:0 ~hold:100 in
  Alcotest.(check int) "first goes through" 100 d1;
  Alcotest.(check int) "second queues" 200 d2;
  Alcotest.(check int) "third queues more" 300 d3;
  Alcotest.(check int) "contended count" 2 (Sim.Simlock.contended l);
  Alcotest.(check int) "total wait" 300 (Sim.Simlock.total_wait_ns l);
  Alcotest.(check int) "total hold" 300 (Sim.Simlock.total_hold_ns l)

let test_free_after_release () =
  let l = Sim.Simlock.create ~name:"t" in
  ignore (Sim.Simlock.acquire l ~now:0 ~hold:100);
  let d = Sim.Simlock.acquire l ~now:100 ~hold:10 in
  Alcotest.(check int) "arriving at release time: no wait" 10 d;
  let d2 = Sim.Simlock.acquire l ~now:1_000 ~hold:10 in
  Alcotest.(check int) "later arrival free" 10 d2

let test_reset_stats () =
  let l = Sim.Simlock.create ~name:"t" in
  ignore (Sim.Simlock.acquire l ~now:0 ~hold:10);
  ignore (Sim.Simlock.acquire l ~now:0 ~hold:10);
  Sim.Simlock.reset_stats l;
  Alcotest.(check int) "acquisitions reset" 0 (Sim.Simlock.acquisitions l);
  Alcotest.(check int) "wait reset" 0 (Sim.Simlock.total_wait_ns l)

let test_negative_hold_rejected () =
  let l = Sim.Simlock.create ~name:"t" in
  Alcotest.check_raises "negative hold"
    (Invalid_argument "Simlock.acquire: negative hold") (fun () ->
      ignore (Sim.Simlock.acquire l ~now:0 ~hold:(-5)))

let prop_waits_are_work_conserving =
  QCheck.Test.make ~name:"lock is work-conserving and FIFO by arrival"
    ~count:100
    QCheck.(list (pair (int_bound 1000) (int_bound 50)))
    (fun arrivals ->
      (* Arrivals sorted by time (simulation delivers them in order). *)
      let arrivals = List.sort compare arrivals in
      let l = Sim.Simlock.create ~name:"p" in
      let busy_until = ref 0 in
      List.for_all
        (fun (now, hold) ->
          let d = Sim.Simlock.acquire l ~now ~hold in
          let start = max now !busy_until in
          let expect = start + hold - now in
          busy_until := start + hold;
          d = expect)
        arrivals)

let suite =
  [
    Alcotest.test_case "uncontended" `Quick test_uncontended;
    Alcotest.test_case "contended serializes" `Quick test_contended_serializes;
    Alcotest.test_case "free after release" `Quick test_free_after_release;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
    Alcotest.test_case "negative hold rejected" `Quick
      test_negative_hold_rejected;
    QCheck_alcotest.to_alcotest prop_waits_are_work_conserving;
  ]
