open Test_util
module Frame = Slab.Frame

let make_cache ?(latent_aware = false) ?(obj_size = 512) ?(cpus = 2) () =
  let env = make_env ~cpus ~total_pages:4096 () in
  let cache =
    Frame.create_cache env.fenv ~name:"frame-test" ~obj_size ~latent_aware ()
  in
  (env, cache)

let test_cache_geometry () =
  let _env, cache = make_cache () in
  Alcotest.(check int) "obj size" 512 cache.Frame.obj_size;
  Alcotest.(check bool) "order sane" true (cache.Frame.order <= 3);
  Alcotest.(check bool) "objs per slab" true (cache.Frame.objs_per_slab >= 16);
  Alcotest.(check int) "latent cap defaults to ocache cap"
    cache.Frame.ocache_cap cache.Frame.latent_cap;
  Alcotest.(check int) "no slabs yet" 0 (Frame.total_slabs cache)

let test_grow_creates_free_slab () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  match Frame.grow cache c with
  | None -> Alcotest.fail "grow failed"
  | Some slab ->
      Alcotest.(check bool) "on free list" true
        (slab.Frame.on_list = Frame.L_free);
      Alcotest.(check int) "fully free" slab.Frame.capacity slab.Frame.free_n;
      Alcotest.(check int) "one slab" 1 (Frame.total_slabs cache);
      Alcotest.(check bool) "pages charged" true
        (Mem.Buddy.used_pages env.buddy > 0);
      Frame.check_invariants cache

let test_destroy_slab () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  let slab = Option.get (Frame.grow cache c) in
  let used = Mem.Buddy.used_pages env.buddy in
  Frame.destroy_slab cache slab;
  Alcotest.(check int) "slab gone" 0 (Frame.total_slabs cache);
  Alcotest.(check bool) "pages returned" true
    (Mem.Buddy.used_pages env.buddy < used)

let test_refill_and_relocate () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  let got =
    Frame.refill_from_node cache c ~want:5 ~select:Frame.select_slub
  in
  Alcotest.(check int) "got 5" 5 got;
  let pc = Frame.pcpu_for cache c in
  Alcotest.(check int) "in ocache" 5 pc.Frame.ocache_n;
  let node = Frame.node_for cache c in
  Alcotest.(check int) "slab now partial" 1 (Sim.Dlist.length node.Frame.partial);
  Alcotest.(check int) "free list empty" 0
    (Sim.Dlist.length node.Frame.free_slabs);
  Frame.check_invariants cache

let test_refill_exhausts_to_full () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  let want = cache.Frame.objs_per_slab in
  let got = Frame.refill_from_node cache c ~want ~select:Frame.select_slub in
  Alcotest.(check int) "whole slab taken" want got;
  let node = Frame.node_for cache c in
  Alcotest.(check int) "slab on full list" 1 (Sim.Dlist.length node.Frame.full);
  Frame.check_invariants cache

let test_flush_returns_objects () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  ignore (Frame.refill_from_node cache c ~want:8 ~select:Frame.select_slub);
  Frame.flush_to_node cache c ~count:8;
  let pc = Frame.pcpu_for cache c in
  Alcotest.(check int) "ocache empty" 0 pc.Frame.ocache_n;
  let node = Frame.node_for cache c in
  Alcotest.(check int) "slab free again" 1
    (Sim.Dlist.length node.Frame.free_slabs);
  Frame.check_invariants cache

let test_hand_to_user_runs_reuse_check () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  let checked = ref [] in
  env.fenv.Frame.reuse_check <- Some (fun oid -> checked := oid :: !checked);
  ignore (Frame.grow cache c);
  ignore (Frame.refill_from_node cache c ~want:1 ~select:Frame.select_slub);
  let pc = Frame.pcpu_for cache c in
  let obj = Option.get (Frame.pop_ocache pc) in
  Frame.hand_to_user cache c obj;
  Alcotest.(check (list int)) "hook saw the oid" [ obj.Frame.oid ] !checked

let take_one env cache =
  let c = cpu0 env in
  if Frame.total_slabs cache = 0 then ignore (Frame.grow cache c);
  ignore (Frame.refill_from_node cache c ~want:1 ~select:Frame.select_slub);
  let pc = Frame.pcpu_for cache c in
  let obj = Option.get (Frame.pop_ocache pc) in
  Frame.hand_to_user cache c obj;
  obj

let test_latent_cache_fifo_ripeness () =
  let env, cache = make_cache ~latent_aware:true () in
  let c = cpu0 env in
  let pc = Frame.pcpu_for cache c in
  let o1 = take_one env cache in
  let o2 = take_one env cache in
  Frame.stamp_deferred cache o1 ~cookie:1;
  Frame.obj_to_latent_cache cache pc o1;
  Frame.stamp_deferred cache o2 ~cookie:3;
  Frame.obj_to_latent_cache cache pc o2;
  Alcotest.(check bool) "nothing ripe at 0" true
    (Frame.latent_cache_pop_ripe cache pc ~completed:0 = None);
  (match Frame.latent_cache_pop_ripe cache pc ~completed:1 with
  | Some o -> Alcotest.(check int) "oldest first" o1.Frame.oid o.Frame.oid
  | None -> Alcotest.fail "expected ripe object");
  Alcotest.(check bool) "next not ripe at 1" true
    (Frame.latent_cache_pop_ripe cache pc ~completed:1 = None);
  (match Frame.latent_cache_pop_newest cache pc with
  | Some o -> Alcotest.(check int) "newest popped" o2.Frame.oid o.Frame.oid
  | None -> Alcotest.fail "expected object")

let test_latent_slab_harvest () =
  let env, cache = make_cache ~latent_aware:true () in
  let o1 = take_one env cache in
  let o2 = take_one env cache in
  let slab = o1.Frame.parent in
  Frame.stamp_deferred cache o1 ~cookie:1;
  Frame.obj_to_latent_slab cache o1;
  Frame.stamp_deferred cache o2 ~cookie:2;
  Frame.obj_to_latent_slab cache o2;
  Alcotest.(check int) "two latent" 2 slab.Frame.latent_n;
  Alcotest.(check int) "harvest at 1" 1 (Frame.slab_harvest_ripe slab ~completed:1);
  Alcotest.(check int) "one left" 1 slab.Frame.latent_n;
  Alcotest.(check int) "harvest rest" 1
    (Frame.slab_harvest_ripe slab ~completed:5);
  Alcotest.(check int) "none left" 0 slab.Frame.latent_n;
  ignore (Frame.relocate cache slab);
  Frame.check_invariants cache

let test_premove_full_to_partial () =
  (* Paper l.54: a full slab with a deferred object pre-moves to partial. *)
  let env, cache = make_cache ~latent_aware:true () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  let want = cache.Frame.objs_per_slab in
  ignore (Frame.refill_from_node cache c ~want ~select:Frame.select_slub);
  let pc = Frame.pcpu_for cache c in
  let objs =
    List.init want (fun _ ->
        let o = Option.get (Frame.pop_ocache pc) in
        Frame.hand_to_user cache c o;
        o)
  in
  let slab = (List.hd objs).Frame.parent in
  Alcotest.(check bool) "slab full" true (slab.Frame.on_list = Frame.L_full);
  let victim = List.hd objs in
  Frame.stamp_deferred cache victim ~cookie:1;
  Frame.obj_to_latent_slab cache victim;
  Alcotest.(check bool) "pre-moved" true (Frame.relocate cache slab);
  Alcotest.(check bool) "now partial" true
    (slab.Frame.on_list = Frame.L_partial);
  (* clean up the rest for invariant purposes *)
  List.iter
    (fun o ->
      if o != victim then begin
        Frame.stamp_deferred cache o ~cookie:1;
        Frame.obj_to_latent_slab cache o
      end)
    objs;
  ignore (Frame.relocate cache slab);
  Frame.check_invariants cache

let test_premove_all_deferred_to_free () =
  (* Paper l.56: allocated = deferred -> free list, but not reclaimable
     until the grace period. *)
  let env, cache = make_cache ~latent_aware:true ~obj_size:4096 () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  let want = cache.Frame.objs_per_slab in
  ignore (Frame.refill_from_node cache c ~want ~select:Frame.select_slub);
  let pc = Frame.pcpu_for cache c in
  let objs =
    List.init want (fun _ ->
        let o = Option.get (Frame.pop_ocache pc) in
        Frame.hand_to_user cache c o;
        o)
  in
  let slab = (List.hd objs).Frame.parent in
  List.iter
    (fun o ->
      Frame.stamp_deferred cache o ~cookie:1;
      Frame.obj_to_latent_slab cache o)
    objs;
  ignore (Frame.relocate cache slab);
  Alcotest.(check bool) "pre-moved to free list" true
    (slab.Frame.on_list = Frame.L_free);
  Alcotest.(check bool) "but not truly free" false (Frame.truly_free slab);
  (* Harvest at grace-period completion makes it reclaimable. *)
  ignore (Frame.slab_harvest_ripe slab ~completed:1);
  Alcotest.(check bool) "truly free after harvest" true (Frame.truly_free slab);
  Frame.check_invariants cache

let test_shrink_skips_pre_moved_slabs () =
  let env, cache = make_cache ~latent_aware:true ~obj_size:4096 () in
  let c = cpu0 env in
  (* Build Size_class.min_free_slabs + 2 slabs on the free list where one is
     pre-moved (latent) and the rest truly free. *)
  let n = Slab.Size_class.min_free_slabs + 2 in
  let slabs = List.init n (fun _ -> Option.get (Frame.grow cache c)) in
  (* Make the first slab all-latent: take its objects and defer them. *)
  let first = List.hd slabs in
  let rec take_all () =
    match Frame.take_free_obj first with
    | Some o ->
        (* hand + stamp to latent *)
        Frame.hand_to_user cache c o;
        Frame.stamp_deferred cache o ~cookie:99;
        Frame.obj_to_latent_slab cache o;
        take_all ()
    | None -> ()
  in
  take_all ();
  ignore (Frame.relocate cache first);
  Alcotest.(check bool) "pre-moved slab on free list" true
    (first.Frame.on_list = Frame.L_free);
  let node = Frame.node_for cache c in
  let destroyed = Frame.shrink_node cache c node in
  Alcotest.(check bool) "destroyed some" true (destroyed > 0);
  Alcotest.(check bool) "pre-moved slab survived" true
    (first.Frame.on_list = Frame.L_free);
  Frame.check_invariants cache

let test_select_slub_prefers_partial () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  ignore (Frame.grow cache c);
  ignore (Frame.grow cache c);
  (* Make the first slab partial. *)
  ignore (Frame.refill_from_node cache c ~want:3 ~select:Frame.select_slub);
  let node = Frame.node_for cache c in
  match Frame.select_slub node with
  | Some s ->
      Alcotest.(check bool) "picked the partial slab" true
        (s.Frame.on_list = Frame.L_partial)
  | None -> Alcotest.fail "selector found nothing"

let test_select_prudence_avoids_mostly_deferred () =
  let env, cache = make_cache ~latent_aware:true ~obj_size:4096 () in
  let c = cpu0 env in
  let node = Frame.node_for cache c in
  (* Slab A: 2 allocated, rest free. Slab B: like A, then its 2 allocated
     objects deferred (mostly-deferred). *)
  let setup deferred =
    let slab = Option.get (Frame.grow cache c) in
    let o1 = Option.get (Frame.take_free_obj slab) in
    let o2 = Option.get (Frame.take_free_obj slab) in
    Frame.hand_to_user cache c o1;
    Frame.hand_to_user cache c o2;
    ignore (Frame.relocate cache slab);
    if deferred then begin
      Frame.stamp_deferred cache o1 ~cookie:50;
      Frame.obj_to_latent_slab cache o1;
      Frame.stamp_deferred cache o2 ~cookie:50;
      Frame.obj_to_latent_slab cache o2;
      ignore (Frame.relocate cache slab)
    end;
    slab
  in
  let slab_a = setup false in
  let slab_b = setup true in
  Alcotest.(check bool) "both on partial/free" true
    (slab_a.Frame.on_list = Frame.L_partial
    && (slab_b.Frame.on_list = Frame.L_partial
       || slab_b.Frame.on_list = Frame.L_free));
  (match Frame.select_prudence ~scan_depth:10 node with
  | Some s ->
      Alcotest.(check int) "Fig. 5: picks slab A (no deferred)"
        slab_a.Frame.sid s.Frame.sid
  | None -> Alcotest.fail "selector found nothing");
  Frame.check_invariants cache

let test_fragmentation_formula () =
  let env, cache = make_cache ~obj_size:512 () in
  let c = cpu0 env in
  Alcotest.(check bool) "nan when no live objects" true
    (Float.is_nan (Frame.fragmentation cache));
  let _o = take_one env cache in
  let expect =
    float_of_int (Frame.total_slabs cache * Frame.slab_bytes cache)
    /. float_of_int (1 * 512)
  in
  Alcotest.(check (float 0.001)) "f_t" expect (Frame.fragmentation cache);
  ignore c

let test_color_cycles () =
  let env, cache = make_cache () in
  let c = cpu0 env in
  let s1 = Option.get (Frame.grow cache c) in
  let s2 = Option.get (Frame.grow cache c) in
  Alcotest.(check bool) "colors differ across consecutive slabs" true
    (s1.Frame.color <> s2.Frame.color)

let suite =
  [
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
    Alcotest.test_case "grow creates free slab" `Quick
      test_grow_creates_free_slab;
    Alcotest.test_case "destroy slab" `Quick test_destroy_slab;
    Alcotest.test_case "refill relocates" `Quick test_refill_and_relocate;
    Alcotest.test_case "refill to full" `Quick test_refill_exhausts_to_full;
    Alcotest.test_case "flush returns objects" `Quick test_flush_returns_objects;
    Alcotest.test_case "reuse check hook" `Quick
      test_hand_to_user_runs_reuse_check;
    Alcotest.test_case "latent cache fifo/ripeness" `Quick
      test_latent_cache_fifo_ripeness;
    Alcotest.test_case "latent slab harvest" `Quick test_latent_slab_harvest;
    Alcotest.test_case "pre-move full -> partial" `Quick
      test_premove_full_to_partial;
    Alcotest.test_case "pre-move all-deferred -> free" `Quick
      test_premove_all_deferred_to_free;
    Alcotest.test_case "shrink skips pre-moved slabs" `Quick
      test_shrink_skips_pre_moved_slabs;
    Alcotest.test_case "select_slub prefers partial" `Quick
      test_select_slub_prefers_partial;
    Alcotest.test_case "select_prudence avoids deferred (Fig. 5)" `Quick
      test_select_prudence_avoids_mostly_deferred;
    Alcotest.test_case "fragmentation formula" `Quick test_fragmentation_formula;
    Alcotest.test_case "slab colouring cycles" `Quick test_color_cycles;
  ]
