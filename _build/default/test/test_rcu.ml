open Test_util

let test_gp_requires_all_cpus () =
  let env = make_env ~cpus:4 () in
  (* Pin one CPU in a read-side critical section: the grace period must not
     complete until it exits. *)
  let c3 = cpu env 3 in
  Rcu.read_lock env.rcu c3;
  Rcu.request_gp env.rcu;
  Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
  Alcotest.(check int) "gp stalled by reader" 0 (Rcu.completed env.rcu);
  Rcu.read_unlock env.rcu c3;
  Sim.Engine.run ~until:Sim.(Clock.ms 40) env.eng;
  Alcotest.(check bool) "gp completes after reader exits" true
    (Rcu.completed env.rcu >= 1)

let test_call_rcu_invoked_after_gp () =
  let env = make_env ~cpus:2 () in
  let invoked_at = ref (-1) in
  Rcu.call_rcu env.rcu (cpu0 env) (fun () ->
      invoked_at := Sim.Engine.now env.eng);
  Sim.Engine.run ~until:Sim.(Clock.ms 50) env.eng;
  Alcotest.(check bool) "callback ran" true (!invoked_at > 0);
  (* It must have run strictly after at least one full tick round. *)
  Alcotest.(check bool) "not before a grace period" true
    (!invoked_at >= Sim.Machine.tick_ns env.machine)

let test_callback_not_invoked_during_reader () =
  let env = make_env ~cpus:2 () in
  let invoked = ref false in
  let c1 = cpu env 1 in
  Rcu.read_lock env.rcu c1;
  Rcu.call_rcu env.rcu (cpu0 env) (fun () -> invoked := true);
  Sim.Engine.run ~until:Sim.(Clock.ms 30) env.eng;
  Alcotest.(check bool) "held back by reader" false !invoked;
  Rcu.read_unlock env.rcu c1;
  Sim.Engine.run ~until:Sim.(Clock.ms 60) env.eng;
  Alcotest.(check bool) "released after reader" true !invoked

let test_synchronize_blocks_a_full_gp () =
  let env = make_env ~cpus:4 () in
  let before = ref (-1) and after = ref (-1) in
  let finished =
    run_process env (fun () ->
        before := Rcu.completed env.rcu;
        Rcu.synchronize env.rcu;
        after := Rcu.completed env.rcu)
  in
  check_completed "synchronize" finished;
  Alcotest.(check bool) "at least one gp elapsed" true (!after > !before)

let test_throttling_limits_batch () =
  let config = { Rcu.default_config with blimit = 10; qhimark = 1_000_000; softirq_period_ns = 200_000 } in
  let env = make_env ~cpus:1 ~rcu_config:config () in
  let invoked = ref 0 in
  for _ = 1 to 100 do
    Rcu.call_rcu env.rcu (cpu0 env) (fun () -> incr invoked)
  done;
  (* After the GP completes, callbacks drip out blimit per softirq pass
     (200us apart), so draining 100 takes ~10 passes. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 3) env.eng;
  Alcotest.(check bool)
    (Printf.sprintf "partial drain (%d)" !invoked)
    true
    (!invoked > 0 && !invoked < 100);
  Sim.Engine.run ~until:Sim.(Clock.ms 50) env.eng;
  Alcotest.(check int) "eventually all invoked" 100 !invoked

let test_expedited_drains_faster () =
  let run expedite =
    let config =
      { Rcu.default_config with blimit = 10; expedited_blimit = 100;
        softirq_period_ns = 200_000 }
    in
    let env = make_env ~cpus:1 ~rcu_config:config () in
    Rcu.set_expedited env.rcu expedite;
    let invoked = ref 0 in
    for _ = 1 to 400 do
      Rcu.call_rcu env.rcu (cpu0 env) (fun () -> incr invoked)
    done;
    Sim.Engine.run ~until:Sim.(Clock.ms 4) env.eng;
    !invoked
  in
  let normal = run false and fast = run true in
  Alcotest.(check bool)
    (Printf.sprintf "expedited (%d) > normal (%d)" fast normal)
    true (fast > normal)

let test_qhimark_auto_expedites () =
  let config =
    { Rcu.default_config with blimit = 1; expedited_blimit = 1_000; qhimark = 50;
      softirq_period_ns = 200_000 }
  in
  let env = make_env ~cpus:1 ~rcu_config:config () in
  let invoked = ref 0 in
  for _ = 1 to 500 do
    Rcu.call_rcu env.rcu (cpu0 env) (fun () -> incr invoked)
  done;
  (* At blimit=1 this would need 500 passes x 200us = 100ms; the qhimark
     backlog trigger must finish far sooner. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 10) env.eng;
  Alcotest.(check int) "backlog expedited" 500 !invoked

let test_snapshot_poll_semantics () =
  let env = make_env ~cpus:2 () in
  let cookie = Rcu.snapshot env.rcu in
  Alcotest.(check bool) "not completed yet" false (Rcu.poll env.rcu cookie);
  Rcu.request_gp env.rcu;
  Sim.Engine.run ~until:Sim.(Clock.ms 30) env.eng;
  Alcotest.(check bool) "completed after gp" true (Rcu.poll env.rcu cookie)

let test_snapshot_during_gp_is_conservative () =
  let env = make_env ~cpus:2 () in
  (* Start a GP, then snapshot mid-GP: the cookie must require a GP that
     starts after the snapshot. *)
  Rcu.request_gp env.rcu;
  let mid_cookie = Rcu.snapshot env.rcu in
  Alcotest.(check int) "needs the gp after the current one" 2 mid_cookie;
  Sim.Engine.run ~until:Sim.(Clock.ms 1) env.eng;
  ignore env

let test_gp_hook_and_stats () =
  let env = make_env ~cpus:2 () in
  let hook_calls = ref [] in
  Rcu.on_gp_complete env.rcu (fun c -> hook_calls := c :: !hook_calls);
  Rcu.call_rcu env.rcu (cpu0 env) ignore;
  Sim.Engine.run ~until:Sim.(Clock.ms 30) env.eng;
  Alcotest.(check bool) "hook fired" true (List.length !hook_calls >= 1);
  let s = Rcu.stats env.rcu in
  Alcotest.(check bool) "gps counted" true (s.Rcu.gps_completed >= 1);
  Alcotest.(check int) "queued" 1 s.Rcu.cbs_queued;
  Alcotest.(check int) "invoked" 1 s.Rcu.cbs_invoked;
  Alcotest.(check int) "pending zero" 0 (Rcu.pending_callbacks env.rcu)

let test_barrier_drain () =
  let config = { Rcu.default_config with softirq_period_ns = 200_000 } in
  let env = make_env ~cpus:2 ~rcu_config:config () in
  let invoked = ref 0 in
  for _ = 1 to 300 do
    Rcu.call_rcu env.rcu (cpu0 env) (fun () -> incr invoked)
  done;
  (* The first callback rides GP 1; the rest (enqueued while GP 1 was in
     flight) conservatively wait for GP 2. Run until both completed but
     before the 200us-throttled softirq passes could invoke all 30, then
     drain. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 3) env.eng;
  Alcotest.(check bool) "both gps done" true (Rcu.completed env.rcu >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "throttle still holding some back (%d)" !invoked)
    true
    (!invoked < 300);
  Rcu.barrier_drain env.rcu;
  Alcotest.(check int) "drained everything ripe" 300 !invoked

let test_callbacks_fifo_per_cpu () =
  let env = make_env ~cpus:1 () in
  let log = ref [] in
  for i = 1 to 5 do
    Rcu.call_rcu env.rcu (cpu0 env) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_grace_periods_keep_running_while_demand () =
  let env = make_env ~cpus:2 () in
  (* Callbacks enqueued from inside callbacks: each needs a later GP. *)
  let depth = ref 0 in
  let rec requeue () =
    incr depth;
    if !depth < 5 then Rcu.call_rcu env.rcu (cpu0 env) requeue
  in
  Rcu.call_rcu env.rcu (cpu0 env) requeue;
  Sim.Engine.run ~until:Sim.(Clock.ms 100) env.eng;
  Alcotest.(check int) "chain of grace periods" 5 !depth;
  Alcotest.(check bool) "several gps" true (Rcu.completed env.rcu >= 5)

let suite =
  [
    Alcotest.test_case "gp waits for every cpu" `Quick test_gp_requires_all_cpus;
    Alcotest.test_case "call_rcu after gp" `Quick test_call_rcu_invoked_after_gp;
    Alcotest.test_case "reader blocks callback" `Quick
      test_callback_not_invoked_during_reader;
    Alcotest.test_case "synchronize blocks a full gp" `Quick
      test_synchronize_blocks_a_full_gp;
    Alcotest.test_case "throttling limits batch" `Quick
      test_throttling_limits_batch;
    Alcotest.test_case "expedited drains faster" `Quick
      test_expedited_drains_faster;
    Alcotest.test_case "qhimark auto-expedites" `Quick
      test_qhimark_auto_expedites;
    Alcotest.test_case "snapshot/poll" `Quick test_snapshot_poll_semantics;
    Alcotest.test_case "snapshot mid-gp conservative" `Quick
      test_snapshot_during_gp_is_conservative;
    Alcotest.test_case "gp hooks and stats" `Quick test_gp_hook_and_stats;
    Alcotest.test_case "barrier drain" `Quick test_barrier_drain;
    Alcotest.test_case "callbacks fifo per cpu" `Quick
      test_callbacks_fifo_per_cpu;
    Alcotest.test_case "gp chain under demand" `Quick
      test_grace_periods_keep_running_while_demand;
  ]
