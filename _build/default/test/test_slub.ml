open Test_util
module Frame = Slab.Frame
module Stats = Slab.Slab_stats

let make ?(cpus = 2) ?(total_pages = 4096) ?(obj_size = 512) () =
  let env = make_env ~cpus ~total_pages () in
  let slub = Slab.Slub.create env.fenv env.rcu in
  let cache = Slab.Slub.create_cache slub ~name:"test" ~obj_size in
  (env, slub, cache)

let alloc_exn slub cache cpu =
  match Slab.Slub.alloc slub cache cpu with
  | Some o -> o
  | None -> Alcotest.fail "unexpected OOM"

let test_alloc_free_roundtrip () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn slub cache c in
  Alcotest.(check bool) "allocated state" true
    (obj.Frame.ostate = Frame.Allocated);
  Alcotest.(check int) "live" 1 (Frame.live_objects cache);
  Slab.Slub.free slub cache c obj;
  Alcotest.(check int) "live zero" 0 (Frame.live_objects cache);
  Frame.check_invariants cache

let test_first_alloc_misses_then_hits () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let o1 = alloc_exn slub cache c in
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check int) "first is a miss" 0 s.Stats.hits;
  Alcotest.(check int) "one refill" 1 s.Stats.refills;
  Alcotest.(check int) "one grow" 1 s.Stats.grows;
  let o2 = alloc_exn slub cache c in
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check int) "second is a hit" 1 s.Stats.hits;
  Slab.Slub.free slub cache c o1;
  Slab.Slub.free slub cache c o2;
  Frame.check_invariants cache

let test_batch_refill_amount () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let _o = alloc_exn slub cache c in
  let pc = Frame.pcpu_for cache c in
  (* After one alloc the object cache holds batch - 1 objects. *)
  Alcotest.(check int) "refilled a batch" (cache.Frame.batch - 1)
    pc.Frame.ocache_n

let test_overflow_flushes_half () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let cap = cache.Frame.ocache_cap in
  (* Allocate enough objects to exceed the cache, then free them all. *)
  let objs = List.init (cap + 1) (fun _ -> alloc_exn slub cache c) in
  List.iter (Slab.Slub.free slub cache c) objs;
  let pc = Frame.pcpu_for cache c in
  Alcotest.(check int) "object cache trimmed to half" (cap / 2)
    pc.Frame.ocache_n;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "flush happened" true (s.Stats.flushes >= 1);
  Frame.check_invariants cache

let test_allocs_spread_slabs () =
  let env, slub, cache = make ~obj_size:4096 () in
  let c = cpu0 env in
  let n = 50 in
  let objs = List.init n (fun _ -> alloc_exn slub cache c) in
  Alcotest.(check bool) "several slabs" true (Frame.total_slabs cache > 1);
  Alcotest.(check int) "live" n (Frame.live_objects cache);
  List.iter (Slab.Slub.free slub cache c) objs;
  Frame.check_invariants cache

let test_shrink_returns_pages () =
  let env, slub, cache = make ~obj_size:4096 () in
  let c = cpu0 env in
  let used0 = Mem.Buddy.used_pages env.buddy in
  let objs = List.init 200 (fun _ -> alloc_exn slub cache c) in
  let used_mid = Mem.Buddy.used_pages env.buddy in
  Alcotest.(check bool) "pages consumed" true (used_mid > used0);
  List.iter (Slab.Slub.free slub cache c) objs;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "shrink ran" true (s.Stats.shrinks > 0);
  Alcotest.(check bool) "pages returned" true
    (Mem.Buddy.used_pages env.buddy < used_mid);
  (* Free slabs above the threshold were destroyed. *)
  Alcotest.(check bool) "bounded free slabs" true
    (Frame.total_slabs cache
    <= Slab.Size_class.min_free_slabs + 2 (* per node margins *));
  Frame.check_invariants cache

let test_free_deferred_goes_through_rcu () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn slub cache c in
  Slab.Slub.free_deferred slub cache c obj;
  Alcotest.(check int) "still pending in rcu" 1
    (Rcu.pending_callbacks env.rcu);
  Alcotest.(check bool) "object still marked allocated" true
    (obj.Frame.ostate = Frame.Allocated);
  (* Not reusable yet: allocate and check we get a different object. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
  Alcotest.(check int) "reclaimed after gp + softirq" 0
    (Rcu.pending_callbacks env.rcu);
  Alcotest.(check bool) "object back in a cache or slab" true
    (obj.Frame.ostate = Frame.In_object_cache
    || obj.Frame.ostate = Frame.Free_in_slab);
  Frame.check_invariants cache

let test_deferred_free_extended_lifetime () =
  (* Objects deferred during a burst stay unavailable until callbacks run:
     the extended-object-lifetime pathology of §3.2. *)
  let env, slub, cache = make () in
  let c = cpu0 env in
  let objs = List.init 100 (fun _ -> alloc_exn slub cache c) in
  let slabs_before = Frame.total_slabs cache in
  List.iter (Slab.Slub.free_deferred slub cache c) objs;
  (* Immediately re-allocate 100: the deferred ones are invisible, so the
     cache must grow again. *)
  let objs2 = List.init 100 (fun _ -> alloc_exn slub cache c) in
  Alcotest.(check bool) "slab cache grew despite 100 deferred objects" true
    (Frame.total_slabs cache > slabs_before);
  List.iter (Slab.Slub.free slub cache c) objs2;
  Sim.Engine.run ~until:Sim.(Clock.ms 50) env.eng;
  Alcotest.(check int) "drained" 0 (Rcu.pending_callbacks env.rcu);
  Frame.check_invariants cache

let test_settle () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        let objs = List.init 40 (fun _ -> alloc_exn slub cache c) in
        List.iter (Slab.Slub.free_deferred slub cache c) objs;
        Slab.Slub.settle slub)
  in
  check_completed "settle" finished;
  Alcotest.(check int) "no pending callbacks" 0 (Rcu.pending_callbacks env.rcu);
  Alcotest.(check int) "no live objects" 0 (Frame.live_objects cache)

let test_oom_when_exhausted () =
  let env, slub, cache = make ~total_pages:8 ~obj_size:4096 () in
  let c = cpu0 env in
  let rec drain acc =
    match Slab.Slub.alloc slub cache c with
    | Some o -> drain (o :: acc)
    | None -> acc
  in
  let got = drain [] in
  Alcotest.(check bool) "some allocations succeeded" true (List.length got > 0);
  Alcotest.(check (option reject)) "eventually None" None
    (Option.map (fun _ -> ()) (Slab.Slub.alloc slub cache c))

let test_oom_recovers_via_pressure_handler () =
  (* When the page allocator is exhausted, the pressure OOM chain drains
     ripe RCU callbacks, freeing slabs, and the allocation succeeds. *)
  let env, slub, cache = make ~total_pages:64 ~obj_size:4096 () in
  let c = cpu0 env in
  (* 8 objs/slab x 8 slabs = 64 objects exhaust the 64 pages. *)
  let objs = List.init 56 (fun _ -> alloc_exn slub cache c) in
  List.iter (Slab.Slub.free_deferred slub cache c) objs;
  (* Give the grace period time to complete but stop before the throttled
     softirq drains everything. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 3) env.eng;
  let obj = Slab.Slub.alloc slub cache c in
  Alcotest.(check bool) "alloc succeeded after oom-driven drain" true
    (obj <> None);
  Frame.check_invariants cache

let test_multi_cpu_caches_independent () =
  let env, slub, cache = make ~cpus:2 () in
  let c0 = cpu0 env and c1 = cpu env 1 in
  let o0 = alloc_exn slub cache c0 in
  let _o1 = alloc_exn slub cache c1 in
  let _o1' = alloc_exn slub cache c1 in
  let pc0 = Frame.pcpu_for cache c0 and pc1 = Frame.pcpu_for cache c1 in
  (* c0's refill left a batch in its cache; c1 scavenged the leftover from
     the shared node and then had to grow its own slab. *)
  Alcotest.(check bool) "c0 cache retains its batch" true
    (pc0.Frame.ocache_n > 0);
  Alcotest.(check bool) "c1 refilled separately" true (pc1.Frame.ocache_n > 0);
  (* Free on the other CPU: object goes to c1's cache. *)
  let n1 = pc1.Frame.ocache_n in
  Slab.Slub.free slub cache c1 o0;
  Alcotest.(check int) "freed into c1's cache" (n1 + 1) pc1.Frame.ocache_n;
  Frame.check_invariants cache

let test_double_free_detected () =
  let env, slub, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn slub cache c in
  Slab.Slub.free slub cache c obj;
  (try
     Slab.Slub.free slub cache c obj;
     Alcotest.fail "double free not detected"
   with Assert_failure _ -> ());
  ignore cache

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random slub op sequences keep accounting invariants"
    ~count:40
    QCheck.(list (int_bound 2))
    (fun ops ->
      let env, slub, cache = make ~obj_size:1024 () in
      let c = cpu0 env in
      let held = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              match Slab.Slub.alloc slub cache c with
              | Some o -> held := o :: !held
              | None -> ())
          | 1 -> (
              match !held with
              | o :: rest ->
                  Slab.Slub.free slub cache c o;
                  held := rest
              | [] -> ())
          | _ -> (
              match !held with
              | o :: rest ->
                  Slab.Slub.free_deferred slub cache c o;
                  held := rest
              | [] -> ()))
        ops;
      Frame.check_invariants cache;
      Sim.Engine.run ~until:Sim.(Clock.ms 100) env.eng;
      Frame.check_invariants cache;
      Rcu.pending_callbacks env.rcu = 0)

let suite =
  [
    Alcotest.test_case "alloc/free roundtrip" `Quick test_alloc_free_roundtrip;
    Alcotest.test_case "miss then hit" `Quick test_first_alloc_misses_then_hits;
    Alcotest.test_case "batch refill amount" `Quick test_batch_refill_amount;
    Alcotest.test_case "overflow flushes half" `Quick test_overflow_flushes_half;
    Alcotest.test_case "allocations spread slabs" `Quick
      test_allocs_spread_slabs;
    Alcotest.test_case "shrink returns pages" `Quick test_shrink_returns_pages;
    Alcotest.test_case "free_deferred via rcu" `Quick
      test_free_deferred_goes_through_rcu;
    Alcotest.test_case "extended lifetimes force growth" `Quick
      test_deferred_free_extended_lifetime;
    Alcotest.test_case "settle drains" `Quick test_settle;
    Alcotest.test_case "oom when exhausted" `Quick test_oom_when_exhausted;
    Alcotest.test_case "oom recovers via pressure drain" `Quick
      test_oom_recovers_via_pressure_handler;
    Alcotest.test_case "multi-cpu caches independent" `Quick
      test_multi_cpu_caches_independent;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    QCheck_alcotest.to_alcotest prop_random_ops_keep_invariants;
  ]
