(* prudence-repro: command-line driver for the paper reproduction. *)

let list_experiments () =
  Format.printf "experiments:@.";
  List.iter
    (fun (e : Core.Experiments.experiment) ->
      Format.printf "  %-12s %-14s %s@." e.Core.Experiments.id
        e.Core.Experiments.paper_ref e.Core.Experiments.title)
    Core.Experiments.all;
  Format.printf
    "  %-12s %-14s aliases: run the apps experiment@." "fig7..fig13"
    "Figs. 7-13";
  0

let params scale seed cpus runs =
  { Core.Experiments.scale; seed; cpus; runs }

let run_experiment ids p =
  let ids = if ids = [] then [ "all" ] else ids in
  let experiments =
    if ids = [ "all" ] then Core.Experiments.all
    else
      List.map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> e
          | None ->
              Format.eprintf "unknown experiment %S (try `list`)@." id;
              exit 2)
        ids
  in
  (* Dedupe (fig7..fig13 all alias apps). *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e : Core.Experiments.experiment) ->
      if not (Hashtbl.mem seen e.Core.Experiments.id) then begin
        Hashtbl.add seen e.Core.Experiments.id ();
        Format.printf "running %s (%s)...@.@." e.Core.Experiments.id
          e.Core.Experiments.paper_ref;
        let reports = e.Core.Experiments.run p in
        Core.Metrics.Report.print_all Format.std_formatter reports
      end)
    experiments;
  0

open Cmdliner

let scale_arg =
  let doc = "Workload scale factor (1.0 = EXPERIMENTS.md defaults)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let cpus_arg =
  let doc = "Simulated CPUs (the paper's machine had 64 logical CPUs)." in
  Arg.(value & opt int 8 & info [ "cpus" ] ~docv:"N" ~doc)

let runs_arg =
  let doc = "Repetitions for mean +/- stdev (paper: 3)." in
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc)

let params_term = Term.(const params $ scale_arg $ seed_arg $ cpus_arg $ runs_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids (fig3, costs, fig6, apps, ablations, \
                fig7..fig13) or 'all'.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their reports")
    Term.(const run_experiment $ ids $ params_term)

let main_cmd =
  let doc =
    "Reproduction of 'Prudent Memory Reclamation in Procrastination-Based \
     Synchronization' (ASPLOS 2016)"
  in
  Cmd.group
    (Cmd.info "prudence-repro" ~version:Core.version ~doc)
    [ list_cmd; run_cmd ]

let () = exit (Cmd.eval' main_cmd)
