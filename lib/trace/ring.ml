type 'a t = {
  buf : 'a option array;
  capacity : int;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; capacity; head = 0; len = 0; dropped = 0 }

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped

let push t x =
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest element. *)
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let iter t f =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod t.capacity) with
    | Some x -> f x
    | None -> assert false
  done

let iter_rev t f =
  for i = t.len - 1 downto 0 do
    match t.buf.((t.head + i) mod t.capacity) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let recent t n =
  let n = min (max n 0) t.len in
  let acc = ref [] in
  for i = t.len - 1 downto t.len - n do
    match t.buf.((t.head + i) mod t.capacity) with
    | Some x -> acc := x :: !acc
    | None -> assert false
  done;
  !acc

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
