(** Bounded ring buffer that drops the {e oldest} element on overflow, so a
    long run always retains the most recent window of trace events. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity]
    elements. Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten because the ring was full. *)

val push : 'a t -> 'a -> unit
(** Append an element; if the ring is full, the oldest one is dropped. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Iterate oldest to newest. *)

val iter_rev : 'a t -> ('a -> unit) -> unit
(** Iterate newest to oldest. *)

val to_list : 'a t -> 'a list
(** Contents, oldest first. *)

val recent : 'a t -> int -> 'a list
(** [recent t n]: the newest [min n (length t)] elements, oldest first —
    the tail of {!to_list} without materializing the whole ring, so
    newest-window dumps of a large ring stay O(n). Negative [n] is
    treated as 0. *)

val clear : 'a t -> unit
