(** Bounded ring buffer that drops the {e oldest} element on overflow, so a
    long run always retains the most recent window of trace events. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity]
    elements. Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten because the ring was full. *)

val push : 'a t -> 'a -> unit
(** Append an element; if the ring is full, the oldest one is dropped. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Iterate oldest to newest. *)

val to_list : 'a t -> 'a list
(** Contents, oldest first. *)

val clear : 'a t -> unit
