type kind =
  | Alloc_hit
  | Alloc_miss
  | Refill
  | Flush
  | Grow
  | Shrink
  | Defer_free
  | Latent_merge
  | Premove
  | Preflush
  | Gp_start
  | Gp_end
  | Cb_enqueue
  | Cb_invoke
  | Lock_acquire
  | Lock_contended
  | Idle_start
  | Idle_end
  | Ctx_switch
  | Oom
  | Rcu_stall
  | Fault_inject
  | Grow_retry
  | Emergency_flush

type t = {
  time : int;  (** virtual ns *)
  cpu : int;  (** -1 when not CPU-bound (e.g. grace-period bookkeeping) *)
  kind : kind;
  label : string;  (** cache or lock name; "" when none *)
  arg : int;
      (** kind-dependent payload: object count (refill/flush/merge/
          preflush/cb_invoke/emergency_flush), grace-period sequence number
          (gp/cb events, defer_free, rcu_stall), wait ns (lock_contended),
          retry ordinal (grow_retry); 0 otherwise *)
}

let kind_count = 24

let kind_index = function
  | Alloc_hit -> 0
  | Alloc_miss -> 1
  | Refill -> 2
  | Flush -> 3
  | Grow -> 4
  | Shrink -> 5
  | Defer_free -> 6
  | Latent_merge -> 7
  | Premove -> 8
  | Preflush -> 9
  | Gp_start -> 10
  | Gp_end -> 11
  | Cb_enqueue -> 12
  | Cb_invoke -> 13
  | Lock_acquire -> 14
  | Lock_contended -> 15
  | Idle_start -> 16
  | Idle_end -> 17
  | Ctx_switch -> 18
  | Oom -> 19
  | Rcu_stall -> 20
  | Fault_inject -> 21
  | Grow_retry -> 22
  | Emergency_flush -> 23

let kind_name = function
  | Alloc_hit -> "alloc-hit"
  | Alloc_miss -> "alloc-miss"
  | Refill -> "refill"
  | Flush -> "flush"
  | Grow -> "grow"
  | Shrink -> "shrink"
  | Defer_free -> "defer-free"
  | Latent_merge -> "latent-merge"
  | Premove -> "premove"
  | Preflush -> "preflush"
  | Gp_start -> "gp-start"
  | Gp_end -> "gp-end"
  | Cb_enqueue -> "cb-enqueue"
  | Cb_invoke -> "cb-invoke"
  | Lock_acquire -> "lock-acquire"
  | Lock_contended -> "lock-contended"
  | Idle_start -> "idle-start"
  | Idle_end -> "idle-end"
  | Ctx_switch -> "ctx-switch"
  | Oom -> "oom"
  | Rcu_stall -> "rcu-stall"
  | Fault_inject -> "fault-inject"
  | Grow_retry -> "grow-retry"
  | Emergency_flush -> "emergency-flush"

let pp fmt e =
  Format.fprintf fmt "%d cpu%d %s%s arg=%d" e.time e.cpu (kind_name e.kind)
    (if e.label = "" then "" else " [" ^ e.label ^ "]")
    e.arg
