type t = {
  enabled : bool;
  ncpus : int;
  rings : Event.t Ring.t array;
      (* one ring per CPU plus a final ring for machine-global events
         (cpu = -1): grace-period bookkeeping has no owning CPU. *)
  lifetime : Hist.t;
  gp_latency : Hist.t;
  lock_wait : Hist.t;
  alloc_cost : Hist.t;
  mutable sink : (cpu:int -> kind:Event.kind -> unit) option;
      (* live tap on the event stream, independent of ring retention *)
}

let default_ring_capacity = 65_536

let create ?(ring_capacity = default_ring_capacity) ~ncpus () =
  if ncpus <= 0 then invalid_arg "Tracer.create: ncpus must be positive";
  {
    enabled = true;
    ncpus;
    rings = Array.init (ncpus + 1) (fun _ -> Ring.create ~capacity:ring_capacity);
    lifetime = Hist.create ();
    gp_latency = Hist.create ();
    lock_wait = Hist.create ();
    alloc_cost = Hist.create ();
    sink = None;
  }

let null =
  {
    enabled = false;
    ncpus = 0;
    rings = [||];
    lifetime = Hist.create ();
    gp_latency = Hist.create ();
    lock_wait = Hist.create ();
    alloc_cost = Hist.create ();
    sink = None;
  }

let enabled t = t.enabled
let ncpus t = t.ncpus

let set_sink t sink =
  if not t.enabled then
    invalid_arg "Tracer.set_sink: cannot attach a sink to the null tracer";
  t.sink <- sink

let emit t ~time ~cpu ?(label = "") ?(arg = 0) kind =
  if t.enabled then begin
    (match t.sink with None -> () | Some f -> f ~cpu ~kind);
    let ring =
      if cpu >= 0 && cpu < t.ncpus then t.rings.(cpu) else t.rings.(t.ncpus)
    in
    Ring.push ring { Event.time; cpu; kind; label; arg }
  end

let record_lifetime t ns = if t.enabled then Hist.record t.lifetime ns
let record_gp_latency t ns = if t.enabled then Hist.record t.gp_latency ns
let record_lock_wait t ns = if t.enabled then Hist.record t.lock_wait ns
let record_alloc_cost t ns = if t.enabled then Hist.record t.alloc_cost ns

let lifetime t = t.lifetime
let gp_latency t = t.gp_latency
let lock_wait t = t.lock_wait
let alloc_cost t = t.alloc_cost

let events t =
  let all =
    Array.fold_left (fun acc ring -> List.rev_append (Ring.to_list ring) acc) []
      t.rings
  in
  (* Stable by construction within a ring; merge across rings by time. *)
  List.stable_sort
    (fun (a : Event.t) (b : Event.t) -> compare a.Event.time b.Event.time)
    (List.rev all)

let recent_events t ~cpu n =
  if not t.enabled then []
  else
    let idx = if cpu >= 0 && cpu < t.ncpus then cpu else t.ncpus in
    Ring.recent t.rings.(idx) n

let total_events t = Array.fold_left (fun acc r -> acc + Ring.length r) 0 t.rings
let total_dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
