(** Log-bucketed (HDR-style) latency histogram.

    Records non-negative integers (virtual nanoseconds) into buckets of
    relative width <= 1/16 (values below 32 are exact), so percentiles are
    accurate to ~6% whatever the magnitude, with O(1) recording and a fixed
    small footprint. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t v] adds one sample. Negative values are clamped to 0. *)

val count : t -> int

val sum : t -> int
(** Exact sum of all recorded values (not bucket-quantized), so callers
    can derive totals and rates without a second accumulator. *)

val mean : t -> float
val min_value : t -> int
val max_value : t -> int

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: a lower bound of the bucket
    containing the [p]-th percentile sample; within 1/16 relative error of
    the true value. 0 if the histogram is empty. *)

val percentile_opt : t -> float -> int option
(** Like {!percentile} but [None] on an empty histogram, so callers can
    distinguish "no samples" from a genuine 0 ns percentile instead of
    dividing into a default. *)

val mean_opt : t -> float option
(** [None] on an empty histogram; {!mean} returns [0.] there. *)

val fold :
  t -> ('a -> low:int -> high:int -> count:int -> 'a) -> 'a -> 'a
(** Fold over non-empty buckets in increasing value order; each bucket
    covers [low, high). *)

val clear : t -> unit
