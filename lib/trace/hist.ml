(* Log-bucketed (HDR-style) histogram of non-negative integers: 16
   sub-buckets per power-of-two octave, so any recorded value lands in a
   bucket whose width is at most 1/16 of its lower bound (values < 32 are
   exact). Memory is a fixed small array; record is O(1). *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits (* 16 *)

(* msb positions 4..62 each contribute [sub_count] buckets on top of the 32
   exact buckets for values < 32. *)
let nbuckets = sub_count * 60

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let msb v =
  (* Position of the most significant set bit; v > 0. *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < 2 * sub_count then v
  else
    let g = msb v in
    let sub = v lsr (g - sub_bits) in
    min (nbuckets - 1) ((sub_count * (g - sub_bits + 1)) + sub - sub_count)

(* Lower bound of bucket [i]; the bucket covers [low, high). *)
let bounds_of_index i =
  if i < 2 * sub_count then (i, i + 1)
  else
    let g = (i / sub_count) + sub_bits - 1 in
    let sub = (i mod sub_count) + sub_count in
    let low = sub lsl (g - sub_bits) in
    (low, low + (1 lsl (g - sub_bits)))

let record t v =
  let v = max 0 v in
  t.buckets.(index_of v) <- t.buckets.(index_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let max_value t = t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count)))
    in
    let seen = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.buckets.(i);
         if !seen >= rank then begin
           result := fst (bounds_of_index i);
           raise Exit
         end
       done
     with Exit -> ());
    (* The percentile cannot undershoot the recorded minimum or overshoot
       the maximum, whatever the bucket bound says. *)
    min t.max_v (max t.min_v !result)
  end

let percentile_opt t p = if t.count = 0 then None else Some (percentile t p)
let mean_opt t = if t.count = 0 then None else Some (mean t)

let fold t f acc =
  let acc = ref acc in
  for i = 0 to nbuckets - 1 do
    if t.buckets.(i) > 0 then begin
      let low, high = bounds_of_index i in
      acc := f !acc ~low ~high ~count:t.buckets.(i)
    end
  done;
  !acc

let clear t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0
