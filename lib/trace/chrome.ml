(* Chrome trace-event JSON exporter (the format Perfetto and
   chrome://tracing load). Each traced run becomes one "process": its CPUs
   are threads, grace periods are duration slices on a synthetic "rcu-gp"
   thread, idle windows are slices on their CPU's thread, and every other
   event is an instant. Timestamps are microseconds (the format's unit);
   virtual nanoseconds keep their sub-us precision as decimals. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ts_of_ns ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)

type writer = { buf : Buffer.t; mutable first : bool }

let obj w fields =
  if w.first then w.first <- false else Buffer.add_char w.buf ',';
  Buffer.add_char w.buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char w.buf ',';
      Buffer.add_string w.buf (Printf.sprintf "\"%s\":%s" k v))
    fields;
  Buffer.add_string w.buf "}\n"

let str s = "\"" ^ escape s ^ "\""

let args_of (e : Event.t) =
  let fields =
    (if e.Event.label = "" then [] else [ ("label", str e.Event.label) ])
    @ if e.Event.arg = 0 then [] else [ ("arg", string_of_int e.Event.arg) ]
  in
  match fields with
  | [] -> []
  | fields ->
      [
        ( "args",
          "{"
          ^ String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields)
          ^ "}" );
      ]

let metadata w ~pid ~tid ~meta ~name =
  obj w
    ([ ("name", str meta); ("ph", str "M"); ("pid", string_of_int pid) ]
    @ (match tid with None -> [] | Some t -> [ ("tid", string_of_int t) ])
    @ [ ("args", "{\"name\":" ^ str name ^ "}") ])

let add_run w ~pid ~name tracer =
  let ncpus = Tracer.ncpus tracer in
  let gp_tid = ncpus and global_tid = ncpus + 1 in
  let tid_of cpu = if cpu >= 0 && cpu < ncpus then cpu else global_tid in
  metadata w ~pid ~tid:None ~meta:"process_name" ~name;
  for c = 0 to ncpus - 1 do
    metadata w ~pid ~tid:(Some c) ~meta:"thread_name"
      ~name:(Printf.sprintf "cpu%d" c)
  done;
  metadata w ~pid ~tid:(Some gp_tid) ~meta:"thread_name" ~name:"rcu-gp";
  metadata w ~pid ~tid:(Some global_tid) ~meta:"thread_name" ~name:"global";
  let common ~tid (e : Event.t) =
    [
      ("ts", ts_of_ns e.Event.time);
      ("pid", string_of_int pid);
      ("tid", string_of_int tid);
    ]
  in
  let instant ?tid (e : Event.t) =
    let tid = match tid with Some t -> t | None -> tid_of e.Event.cpu in
    obj w
      ([ ("name", str (Event.kind_name e.Event.kind)); ("ph", str "i") ]
      @ common ~tid e
      @ [ ("s", str "t") ]
      @ args_of e)
  in
  let slice ~tid ~name (start : Event.t) (stop : Event.t) =
    obj w
      ([
         ("name", str name);
         ("ph", str "X");
         ("dur", ts_of_ns (stop.Event.time - start.Event.time));
       ]
      @ common ~tid start @ args_of start)
  in
  (* Pair gp-start/gp-end by grace-period sequence number and
     idle-start/idle-end by CPU into duration slices; the ring may have
     dropped one half of a pair, in which case the survivor is emitted as
     an instant so nothing is silently lost. *)
  let open_gps = Hashtbl.create 8 in
  let open_idle = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Gp_start -> Hashtbl.replace open_gps e.Event.arg e
      | Event.Gp_end -> (
          match Hashtbl.find_opt open_gps e.Event.arg with
          | Some start ->
              Hashtbl.remove open_gps e.Event.arg;
              slice ~tid:gp_tid ~name:"grace-period" start e
          | None -> instant ~tid:gp_tid e)
      | Event.Idle_start -> Hashtbl.replace open_idle e.Event.cpu e
      | Event.Idle_end -> (
          match Hashtbl.find_opt open_idle e.Event.cpu with
          | Some start ->
              Hashtbl.remove open_idle e.Event.cpu;
              slice ~tid:(tid_of e.Event.cpu) ~name:"idle" start e
          | None -> instant e)
      | _ -> instant e)
    (Tracer.events tracer);
  Hashtbl.iter (fun _ e -> instant ~tid:gp_tid e) open_gps;
  Hashtbl.iter (fun _ e -> instant e) open_idle

let to_string runs =
  let w = { buf = Buffer.create 65536; first = true } in
  Buffer.add_string w.buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  List.iteri (fun i (name, tracer) -> add_run w ~pid:(i + 1) ~name tracer) runs;
  Buffer.add_string w.buf "]}\n";
  Buffer.contents w.buf

let write_file path runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string runs))
