(** Chrome trace-event JSON export (loadable in Perfetto /
    [chrome://tracing]).

    Each [(name, tracer)] run becomes a separate process: its CPUs are
    threads, grace periods appear as duration slices on a synthetic
    "rcu-gp" thread, idle windows as slices on their CPU's thread, and all
    other events as thread-scoped instants. *)

val to_string : (string * Tracer.t) list -> string
(** Render the runs as one Chrome trace-event JSON document. *)

val write_file : string -> (string * Tracer.t) list -> unit
(** [write_file path runs] writes {!to_string}[ runs] to [path]. *)
