(** Event tracing and latency histograms for the simulated stack.

    [Trace] is the tracer itself (see {!Tracer}); submodules hold the
    building blocks: typed {!Event}s, bounded per-CPU {!Ring} buffers,
    log-bucketed {!Hist} latency histograms and the {!Chrome} trace-event
    exporter. *)

module Event = Event
module Ring = Ring
module Hist = Hist
module Chrome = Chrome
include Tracer
