(** The tracer: per-CPU bounded event rings plus the four latency
    histograms of the paper's timing phenomena (deferred-object lifetime,
    grace-period latency, lock wait, allocation-path cost).

    A tracer is either live ({!create}) or the shared no-op {!null} sink:
    every emission entry point checks {!enabled} first, so an untraced run
    pays one branch and allocates nothing. Emission never charges virtual
    time — tracing is pure observation and cannot perturb experiment
    results. *)

type t

val create : ?ring_capacity:int -> ncpus:int -> unit -> t
(** [create ~ncpus ()] builds a live tracer with one ring per CPU (plus one
    for machine-global events) of [ring_capacity] events each (default
    65536). On overflow the oldest events are dropped. *)

val null : t
(** The disabled sink: {!enabled} is [false], all operations are no-ops. *)

val enabled : t -> bool
val ncpus : t -> int

val emit :
  t -> time:int -> cpu:int -> ?label:string -> ?arg:int -> Event.kind -> unit
(** Append an event stamped with virtual [time] on [cpu] ([-1] for
    machine-global events). No-op when disabled. *)

val set_sink : t -> (cpu:int -> kind:Event.kind -> unit) option -> unit
(** Install (or clear) a live tap called on every emitted event before it
    is pushed to a ring — independent of ring retention, so the coverage
    signal sees the full stream even with a tiny ring. The sink must be
    pure observation. Raises [Invalid_argument] on the {!null} tracer
    (it is a shared global and never emits anyway). *)

(** {1 Histograms} *)

val record_lifetime : t -> int -> unit
(** Deferred-object lifetime: defer to reuse, virtual ns. *)

val record_gp_latency : t -> int -> unit
val record_lock_wait : t -> int -> unit
val record_alloc_cost : t -> int -> unit

val lifetime : t -> Hist.t
val gp_latency : t -> Hist.t
val lock_wait : t -> Hist.t
val alloc_cost : t -> Hist.t

(** {1 Inspection} *)

val events : t -> Event.t list
(** All retained events, merged across rings, in virtual-time order. *)

val recent_events : t -> cpu:int -> int -> Event.t list
(** [recent_events t ~cpu n]: the newest [n] retained events of one CPU's
    ring ([-1] for the machine-global ring), oldest first — the bounded
    flight-recorder window; allocation is O(n) regardless of ring size.
    Empty on the {!null} tracer. *)

val total_events : t -> int
val total_dropped : t -> int
