(** Facade: benchmark environment and the paper's workload models. *)

module Env = Env
module Microbench = Microbench
module Endurance = Endurance
module Chaos = Chaos
module Appmodel = Appmodel
module Postmark = Postmark
module Netperf = Netperf
module Apache = Apache
module Postgresql = Postgresql
