(** Builds the full simulated stack for one benchmark run: engine, machine,
    buddy allocator, pressure, RCU, reader tracking, and the allocator
    under test — the SLUB baseline or Prudence — behind one
    {!Slab.Backend.t}. *)

type kind = Baseline | Prudence_alloc | Ebr_debra | Hyaline_alloc

val all_kinds : kind list
(** Every registered allocator/SMR stack, registry order:
    slub, prudence, ebr-debra, hyaline. *)

val kind_label : kind -> string
(** "slub" / "prudence" / "ebr-debra" / "hyaline". *)

val kind_of_string : string -> kind option

type config = {
  kind : kind;
  cpus : int;
  nodes : int;
  seed : int;
  tiebreak : Sim.Engine.tiebreak;
      (** Same-instant event ordering: [Fifo] (default, byte-identical
          schedules) or [Shuffle seed] for the checker's schedule
          exploration. *)
  tick_ns : int;
  total_pages : int;  (** Physical memory: pages of 4 KiB. *)
  rcu_config : Rcu.config;
  prudence_config : Prudence.config;
  ebr_config : Slab.Ebr.config;
      (** Epoch advancement tuning for the [Ebr_debra] kind. *)
  hyaline_config : Slab.Hyaline.config;
      (** Batch tuning for the [Hyaline_alloc] kind. *)
  costs : Slab.Costs.t;
  track_readers : bool;
      (** Arm the premature-reuse safety checker (small overhead). *)
  trace : int option;
      (** [Some ring_capacity]: install a live {!Trace} tracer on the
          machine (per-CPU event rings of that capacity + latency
          histograms). [None] (default): tracing disabled, zero overhead. *)
  prof : Prof.t;
      (** Profiler installed on the engine, machine, and buddy allocator;
          {!Prof.null} (default): profiling disabled, zero overhead. *)
  debug_checks : bool;
      (** Arm {!Slab.Frame.check_invariants}' O(objects) sweeps (default
          [true]; the wall-clock benchmark harness turns it off). *)
  obs : bool;
      (** Arm the {!Obs.Anatomy} grace-period anatomy tracer / flight
          recorder (default [false]: the shared {!Obs.Anatomy.null}
          instance, one load-and-branch per hook site). Pure
          observation — deterministic counters are byte-identical with
          it on or off. *)
}

val default_config : config
(** 8 CPUs, 1 node, 64k pages (256 MiB), default RCU/Prudence configs. *)

type t = {
  cfg : config;
  eng : Sim.Engine.t;
  machine : Sim.Machine.t;
  buddy : Mem.Buddy.t;
  pressure : Mem.Pressure.t;
  rcu : Rcu.t;
  fenv : Slab.Frame.env;
  readers : Rcu.Readers.t;
  backend : Slab.Backend.t;
  smr : Slab.Smr.t;
      (** The truthful reclamation view (ground truth for oracles):
          matches the allocator's view except under unsafe mutation
          configs, where the allocator consumes a corrupted frontier
          and this one stays honest. *)
  rng : Sim.Rng.t;
  tracer : Trace.t;  (** The machine's tracer; {!Trace.null} when off. *)
  prof : Prof.t;  (** The installed profiler; {!Prof.null} when off. *)
  obs : Obs.Anatomy.t;
      (** The anatomy recorder; {!Obs.Anatomy.null} when off. Observes
          the frame's [obs_probe], the backend's detection taps, and the
          truthful frontier ([smr]). *)
}

val build : config -> t
(** Construct and start the stack (machine ticks running, RCU attached to
    pressure, reuse check wired when [track_readers]). *)

val cpu : t -> int -> Sim.Machine.cpu

val used_bytes : t -> int
(** Total used physical memory right now (the Fig. 3 y-axis). *)

val node_lock_stats : t -> Slab.Frame.cache -> int * int
(** (contended acquisitions, total wait ns) summed over the cache's nodes. *)

val safety_violations : t -> string list
