(** Chaos scenarios: the endurance workload under injected faults.

    Each scenario runs the Fig. 3-style endurance workload (continuous
    RCU-protected list updates on every CPU, throttled callback
    processing, bounded memory) with one fault plan installed and the
    robustness mitigations armed — RCU stall detector, grow-path
    retry-with-backoff, and Prudence's emergency flush — then reports how
    the allocator degraded or survived. Runs are deterministic: the same
    seed and scenario produce the same outcome, field for field. *)

type scenario =
  | Clean  (** No faults: the control row of the matrix. *)
  | Stalled_reader  (** One reader pins grace periods for half the run. *)
  | Cb_flood  (** §3.4 DoS: no-op [call_rcu] flood on one CPU. *)
  | Pressure_spike  (** A reserve-grabber seizes half of memory. *)
  | Alloc_fault  (** Transient page-alloc refusals (p=0.3) mid-run. *)

val all_scenarios : scenario list
val scenario_name : scenario -> string
val scenario_of_string : string -> scenario option

type config = {
  scenario : scenario;
  seed : int;
  cpus : int;
  duration_ns : int;
  total_pages : int;
  stall_timeout_ns : int;  (** RCU stall-detector budget. *)
  ring : int;  (** Trace ring capacity (tracing is always armed). *)
  prof : Prof.t;  (** Profiler for the run; {!Prof.null} (default) = off. *)
  debug_checks : bool;
      (** Arm the frame's O(objects) invariant sweeps (default [true];
          the wall-clock benchmark harness turns it off). *)
  obs : bool;
      (** Arm the {!Obs.Anatomy} recorder on the built environment
          (default [false]). Pure observation — outcomes are identical
          either way. *)
}

val default_config : scenario:scenario -> config
(** 8 CPUs, 3 s virtual, 192 MiB, 200 ms stall budget, seed 42. *)

val plan_for : config -> Faults.Plan.t
(** The fault plan the scenario installs (fractions of the duration). *)

type outcome = {
  label : string;  (** "slub" / "prudence". *)
  env : Env.t;  (** The simulated environment, for post-run inspection. *)
  scenario : scenario;
  survived : bool;  (** No fatal OOM before the run ended. *)
  oom_at_ns : int option;
  updates : int;
  stall_warnings : int;
  holdout_cpus : int list;  (** Distinct CPUs named by stall warnings. *)
  gp_p99_ns : int;  (** 99th-percentile grace-period latency. *)
  grow_retries : int;  (** Backoff retries in the slab grow path. *)
  emergency_flushes : int;
  emergency_flushed_objs : int;
  ooms_delayed : int;  (** Prudence OOM-delay activations. *)
  max_backlog : int;  (** Peak RCU callback backlog. *)
  injected_failures : int;  (** Buddy allocations refused by injection. *)
  flood_cbs : int;  (** No-op callbacks enqueued by the flood. *)
  safety_violations : int;  (** Premature-reuse violations (must be 0). *)
  peak_used_mib : float;
  final_used_mib : float;
}

val run_one : config -> Env.kind -> outcome
val run_pair : config -> outcome * outcome
(** Baseline then Prudence, same scenario and seed. *)
