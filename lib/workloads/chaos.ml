type scenario =
  | Clean
  | Stalled_reader
  | Cb_flood
  | Pressure_spike
  | Alloc_fault

let all_scenarios =
  [ Clean; Stalled_reader; Cb_flood; Pressure_spike; Alloc_fault ]

let scenario_name = function
  | Clean -> "clean"
  | Stalled_reader -> "stalled-reader"
  | Cb_flood -> "cb-flood"
  | Pressure_spike -> "pressure-spike"
  | Alloc_fault -> "alloc-fault"

let scenario_of_string = function
  | "clean" -> Some Clean
  | "stalled-reader" -> Some Stalled_reader
  | "cb-flood" -> Some Cb_flood
  | "pressure-spike" -> Some Pressure_spike
  | "alloc-fault" -> Some Alloc_fault
  | _ -> None

type config = {
  scenario : scenario;
  seed : int;
  cpus : int;
  duration_ns : int;
  total_pages : int;
  stall_timeout_ns : int;
  ring : int;
  prof : Prof.t;
  debug_checks : bool;
  obs : bool;
}

let default_config ~scenario =
  {
    scenario;
    seed = 42;
    cpus = 8;
    duration_ns = Sim.Clock.s 3;
    (* Bounded memory (192 MiB): under the throttled RCU config the
       cb-flood scenario exhausts it on the baseline within the run. *)
    total_pages = 49_152;
    stall_timeout_ns = Sim.Clock.ms 200;
    ring = 16_384;
    prof = Prof.null;
    debug_checks = true;
    obs = false;
  }

(* The scenario matrix, pinned to fractions of the run so any duration
   gets the same shape: faults start after a warm-up and end before the
   run does, leaving room to observe recovery. *)
let plan_for cfg =
  let d = cfg.duration_ns in
  let specs =
    match cfg.scenario with
    | Clean -> []
    | Stalled_reader ->
        [
          Faults.Plan.Stalled_reader
            {
              cpu = min 2 (cfg.cpus - 1);
              at_ns = d / 6;
              hold_ns = Some (d / 2);
            };
        ]
    | Cb_flood ->
        (* §3.4 DoS: the attacker floods from every CPU, so real deferred
           frees queue behind no-op callbacks on every callback list. *)
        List.init cfg.cpus (fun cpu ->
            Faults.Plan.Cb_flood
              {
                cpu;
                at_ns = d / 10;
                duration_ns = 4 * d / 5;
                per_ms = 500;
              })
    | Pressure_spike ->
        (* Seize enough that free memory drops below the Critical
           watermark (10% of total) even before the workload's own use. *)
        [
          Faults.Plan.Pressure_spike
            {
              at_ns = d / 3;
              duration_ns = d / 3;
              pages = cfg.total_pages * 15 / 16;
            };
        ]
    | Alloc_fault ->
        (* The stalled CPU pins grace periods, so deferred objects pile up
           and the caches must grow — buddy traffic that lands inside the
           fault window and exercises the grow retry-with-backoff path. *)
        [
          Faults.Plan.Alloc_fault
            { at_ns = d / 6; duration_ns = 2 * d / 3; fail_prob = 0.3 };
          Faults.Plan.Cpu_stall
            { cpu = 1; at_ns = d / 4; duration_ns = d / 4 };
        ]
  in
  Faults.Plan.make ~seed:cfg.seed specs

type outcome = {
  label : string;
  env : Env.t;
  scenario : scenario;
  survived : bool;
  oom_at_ns : int option;
  updates : int;
  stall_warnings : int;
  holdout_cpus : int list;
  gp_p99_ns : int;
  grow_retries : int;
  emergency_flushes : int;
  emergency_flushed_objs : int;
  ooms_delayed : int;
  max_backlog : int;
  injected_failures : int;
  flood_cbs : int;
  safety_violations : int;
  peak_used_mib : float;
  final_used_mib : float;
}

(* Throttled callback processing in the Fig. 3 style (§3.5), but with a
   budget the clean run can sustain: the baseline keeps up with the
   workload's own frees, so whatever kills it in the other rows is the
   injected fault, not the background leak. The stall detector is armed. *)
let rcu_config_for cfg =
  {
    Rcu.default_config with
    Rcu.blimit = 100;
    expedited_blimit = 300;
    softirq_period_ns = 1_000_000;
    qhimark = max_int;
    stall_timeout_ns = Some cfg.stall_timeout_ns;
  }

let run_one cfg kind =
  let env_cfg =
    {
      Env.default_config with
      Env.kind;
      cpus = cfg.cpus;
      seed = cfg.seed;
      total_pages = cfg.total_pages;
      rcu_config = rcu_config_for cfg;
      prudence_config =
        { Prudence.default_config with Prudence.emergency_flush = true };
      track_readers = true;
      (* Tracing on: the report's GP-latency p99 comes from the tracer's
         histogram. *)
      trace = Some cfg.ring;
      prof = cfg.prof;
      debug_checks = cfg.debug_checks;
      obs = cfg.obs;
    }
  in
  let env = Env.build env_cfg in
  (* Robustness mitigations under test: retry transient page-alloc
     failures with backoff instead of treating them as fatal. *)
  env.Env.fenv.Slab.Frame.grow_retry <-
    Some { Slab.Frame.max_retries = 6; base_backoff_ns = 10_000 };
  let injector =
    Faults.Injector.install ~pressure:env.Env.pressure (plan_for cfg)
      ~machine:env.Env.machine ~buddy:env.Env.buddy ~rcu:env.Env.rcu
  in
  let r =
    Endurance.run env
      { Endurance.default_config with
        Endurance.duration_ns = cfg.duration_ns }
  in
  let rcu_stats = Rcu.stats env.Env.rcu in
  let holdouts =
    List.sort_uniq compare
      (List.concat_map
         (fun (w : Rcu.stall_warning) -> w.Rcu.holdouts)
         (Rcu.stall_warnings env.Env.rcu))
  in
  let sum f =
    let acc = ref 0 in
    env.Env.backend.Slab.Backend.iter_caches (fun c ->
        acc := !acc + f (Slab.Slab_stats.snapshot c.Slab.Frame.stats));
    !acc
  in
  let fstats = Faults.Injector.stats injector in
  {
    label = r.Endurance.label;
    env;
    scenario = cfg.scenario;
    survived = r.Endurance.oom_at_ns = None;
    oom_at_ns = r.Endurance.oom_at_ns;
    updates = r.Endurance.updates;
    stall_warnings = rcu_stats.Rcu.stall_warnings;
    holdout_cpus = holdouts;
    gp_p99_ns = Trace.Hist.percentile (Trace.gp_latency env.Env.tracer) 99.;
    grow_retries = sum (fun s -> s.Slab.Slab_stats.grow_retries);
    emergency_flushes = sum (fun s -> s.Slab.Slab_stats.emergency_flushes);
    emergency_flushed_objs =
      sum (fun s -> s.Slab.Slab_stats.emergency_flushed_objs);
    ooms_delayed = sum (fun s -> s.Slab.Slab_stats.ooms_delayed);
    max_backlog = rcu_stats.Rcu.max_backlog;
    injected_failures = Mem.Buddy.injected_failures env.Env.buddy;
    flood_cbs = fstats.Faults.Injector.flood_cbs;
    safety_violations = r.Endurance.safety_violations;
    peak_used_mib = r.Endurance.peak_used_mib;
    final_used_mib = r.Endurance.final_used_mib;
  }

let run_pair cfg = (run_one cfg Env.Baseline, run_one cfg Env.Prudence_alloc)
