type kind = Baseline | Prudence_alloc | Ebr_debra | Hyaline_alloc

let all_kinds = [ Baseline; Prudence_alloc; Ebr_debra; Hyaline_alloc ]

let kind_label = function
  | Baseline -> "slub"
  | Prudence_alloc -> "prudence"
  | Ebr_debra -> "ebr-debra"
  | Hyaline_alloc -> "hyaline"

let kind_of_string = function
  | "slub" | "baseline" -> Some Baseline
  | "prudence" -> Some Prudence_alloc
  | "ebr-debra" | "ebr" | "debra" -> Some Ebr_debra
  | "hyaline" -> Some Hyaline_alloc
  | _ -> None

type config = {
  kind : kind;
  cpus : int;
  nodes : int;
  seed : int;
  tiebreak : Sim.Engine.tiebreak;
  tick_ns : int;
  total_pages : int;
  rcu_config : Rcu.config;
  prudence_config : Prudence.config;
  ebr_config : Slab.Ebr.config;
  hyaline_config : Slab.Hyaline.config;
  costs : Slab.Costs.t;
  track_readers : bool;
  trace : int option;
  prof : Prof.t;
  debug_checks : bool;
  obs : bool;
}

let default_config =
  {
    kind = Baseline;
    cpus = 8;
    nodes = 1;
    seed = 42;
    tiebreak = Sim.Engine.Fifo;
    tick_ns = 1_000_000;
    total_pages = 65_536;
    rcu_config = Rcu.default_config;
    prudence_config = Prudence.default_config;
    ebr_config = Slab.Ebr.default_config;
    hyaline_config = Slab.Hyaline.default_config;
    costs = Slab.Costs.default;
    track_readers = false;
    trace = None;
    prof = Prof.null;
    debug_checks = true;
    obs = false;
  }

type t = {
  cfg : config;
  eng : Sim.Engine.t;
  machine : Sim.Machine.t;
  buddy : Mem.Buddy.t;
  pressure : Mem.Pressure.t;
  rcu : Rcu.t;
  fenv : Slab.Frame.env;
  readers : Rcu.Readers.t;
  backend : Slab.Backend.t;
  smr : Slab.Smr.t;
  rng : Sim.Rng.t;
  tracer : Trace.t;
  prof : Prof.t;
  obs : Obs.Anatomy.t;
}

let build cfg =
  let eng = Sim.Engine.create ~seed:cfg.seed ~tiebreak:cfg.tiebreak () in
  let machine =
    Sim.Machine.create eng ~cpus:cfg.cpus ~nodes:cfg.nodes ~tick_ns:cfg.tick_ns
      ()
  in
  let tracer =
    match cfg.trace with
    | None -> Trace.null
    | Some ring_capacity -> Trace.create ~ring_capacity ~ncpus:cfg.cpus ()
  in
  Sim.Machine.set_tracer machine tracer;
  Sim.Machine.set_prof machine cfg.prof;
  Sim.Machine.start machine;
  let buddy = Mem.Buddy.create ~total_pages:cfg.total_pages () in
  Mem.Buddy.set_prof buddy cfg.prof;
  let pressure = Mem.Pressure.create buddy () in
  let rcu = Rcu.create ~config:cfg.rcu_config machine in
  Rcu.attach_pressure rcu pressure;
  let fenv =
    Slab.Frame.make_env ~pressure ~costs:cfg.costs
      ~debug_checks:cfg.debug_checks machine buddy
  in
  let readers = Rcu.Readers.create rcu in
  if cfg.track_readers then
    fenv.Slab.Frame.reuse_check <-
      Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"alloc");
  (* The anatomy recorder observes the frame (lineages), the backend's
     detection hooks (phase edges) and the truthful frontier. Pure
     observation: deterministic counters are identical with it on or
     off. *)
  let obs =
    if cfg.obs then
      Obs.Anatomy.create ~scheme:(kind_label cfg.kind)
        ~now:(fun () -> Sim.Engine.now eng)
        ()
    else Obs.Anatomy.null
  in
  if Obs.Anatomy.enabled obs then
    fenv.Slab.Frame.obs_probe <- Some (Obs.Anatomy.probe obs);
  (* [smr] is the truthful reclamation view: identical to the
     allocator's view except under an unsafe (mutation) config, where
     the allocator consumes the corrupted frontier while oracles keep
     asking the honest one — the same split [unsafe_skip_gp] has always
     had between Prudence's horizon and the shadow heap's [Rcu.poll]. *)
  let wire_epoch_prudence ~label ~backend_smr ~oracle_smr =
    (match (oracle_smr.Slab.Smr.reader_enter, oracle_smr.Slab.Smr.reader_exit)
    with
    | Some enter, Some exit -> Rcu.set_section_hooks rcu (Some (enter, exit))
    | _ -> ());
    let backend_smr = Obs.Anatomy.instrument_smr obs backend_smr in
    let p =
      Prudence.create_smr ~config:cfg.prudence_config ~label fenv backend_smr
    in
    Prudence.attach_pressure p pressure;
    (Prudence.backend p, oracle_smr)
  in
  let backend, smr =
    match cfg.kind with
    | Baseline ->
        Obs.Anatomy.install_rcu obs rcu;
        (Slab.Slub.backend (Slab.Slub.create fenv rcu), Slab.Smr.of_rcu rcu)
    | Prudence_alloc ->
        Obs.Anatomy.install_rcu obs rcu;
        let p = Prudence.create ~config:cfg.prudence_config fenv rcu in
        (* No-op unless the config enables emergency_flush. *)
        Prudence.attach_pressure p pressure;
        (Prudence.backend p, Slab.Smr.of_rcu rcu)
    | Ebr_debra ->
        let e = Slab.Ebr.create ~config:cfg.ebr_config ~cpus:cfg.cpus eng in
        Obs.Anatomy.install_ebr obs e;
        wire_epoch_prudence ~label:"ebr-debra" ~backend_smr:(Slab.Ebr.smr e)
          ~oracle_smr:(Slab.Ebr.oracle_smr e)
    | Hyaline_alloc ->
        let h =
          Slab.Hyaline.create ~config:cfg.hyaline_config ~cpus:cfg.cpus eng
        in
        Obs.Anatomy.install_hyaline obs h;
        wire_epoch_prudence ~label:"hyaline" ~backend_smr:(Slab.Hyaline.smr h)
          ~oracle_smr:(Slab.Hyaline.oracle_smr h)
  in
  (* Grace-period completion observed on the truthful view, so the
     anatomy stays honest under frontier-corrupting mutations. *)
  Obs.Anatomy.observe_frontier obs smr;
  {
    cfg;
    eng;
    machine;
    buddy;
    pressure;
    rcu;
    fenv;
    readers;
    backend;
    smr;
    rng = Sim.Rng.split (Sim.Engine.rng eng);
    tracer;
    prof = cfg.prof;
    obs;
  }

let cpu t i = Sim.Machine.cpu t.machine i

let used_bytes t = Mem.Buddy.used_bytes t.buddy

let node_lock_stats _t (cache : Slab.Frame.cache) =
  Array.fold_left
    (fun (c, w) (node : Slab.Frame.node) ->
      ( c + Sim.Simlock.contended node.Slab.Frame.lock,
        w + Sim.Simlock.total_wait_ns node.Slab.Frame.lock ))
    (0, 0) cache.Slab.Frame.nodes

let safety_violations t = Rcu.Readers.violations t.readers
