type grow_retry_policy = { max_retries : int; base_backoff_ns : int }

type probe = {
  on_alloc : oid:int -> unit;
  on_free : oid:int -> unit;
  on_defer : oid:int -> cookie:int -> unit;
  on_pool : oid:int -> cookie:int -> unit;
  on_page_release : oids:(int * int) list -> unit;
}

type env = {
  machine : Sim.Machine.t;
  buddy : Mem.Buddy.t;
  pressure : Mem.Pressure.t option;
  costs : Costs.t;
  page_lock : Sim.Simlock.t;
      (* The page allocator's zone lock: every slab grow/shrink serializes
         here (with a hold that grows with the slab order, modelling page
         zeroing and higher-order assembly). This is the contention that
         makes the baseline collapse at large object sizes (Fig. 6). *)
  mutable reuse_check : (int -> unit) option;
  mutable probe : probe option;
  mutable obs_probe : probe option;
  mutable grow_retry : grow_retry_policy option;
  mutable debug_checks : bool;
  mutable unsafe_destroy_latent : bool;
  mutable next_oid : int;
  mutable next_sid : int;
}

let make_env ?pressure ?(costs = Costs.default) ?(debug_checks = true) machine
    buddy =
  {
    machine;
    buddy;
    pressure;
    costs;
    page_lock = Sim.Simlock.create ~name:"page-allocator";
    reuse_check = None;
    probe = None;
    obs_probe = None;
    grow_retry = None;
    debug_checks;
    unsafe_destroy_latent = false;
    next_oid = 0;
    next_sid = 0;
  }

type ostate =
  | Free_in_slab
  | In_object_cache
  | Allocated
  | In_latent_cache
  | In_latent_slab

let pp_ostate fmt s =
  Format.pp_print_string fmt
    (match s with
    | Free_in_slab -> "free-in-slab"
    | In_object_cache -> "in-object-cache"
    | Allocated -> "allocated"
    | In_latent_cache -> "in-latent-cache"
    | In_latent_slab -> "in-latent-slab")

type list_id = L_full | L_partial | L_free | L_unlinked

let pp_list_id fmt l =
  Format.pp_print_string fmt
    (match l with
    | L_full -> "full"
    | L_partial -> "partial"
    | L_free -> "free"
    | L_unlinked -> "unlinked")

type objekt = {
  oid : int;
  parent : slab;
  mutable ostate : ostate;
  mutable gp_cookie : int;
  mutable touched : bool;
  mutable deferred_at : int;
      (* Virtual time of the deferred free that last retired this object,
         -1 when not deferred (or tracing is off): drives the defer->reuse
         lifetime histogram. *)
}

and slab = {
  sid : int;
  color : int;
  node_id : int;
  cache : cache;
  block : Mem.Buddy.block;
  capacity : int;
  mutable free_objs : objekt list;
  mutable free_n : int;
  latent_objs : objekt Latq.t;
  mutable latent_n : int;
  mutable in_flight : int;
  mutable on_list : list_id;
  mutable link : slab Sim.Dlist.node option;
  mutable latent_link : slab Sim.Dlist.node option;
}

and node = {
  nid : int;
  lock : Sim.Simlock.t;
  full : slab Sim.Dlist.t;
  partial : slab Sim.Dlist.t;
  free_slabs : slab Sim.Dlist.t;
  latent_slabs : slab Sim.Dlist.t;
      (* Slabs currently holding latent objects, oldest first: Prudence
         harvests ripe objects from the front after grace periods. *)
}

and pcpu = {
  cpu : Sim.Machine.cpu;
  mutable ocache : objekt list;
  mutable ocache_n : int;
  latent : objekt Latq.Fifo.t;
  mutable preflush_scheduled : bool;
  mutable recent_allocs : int;
  mutable recent_releases : int;
}

and cache = {
  name : string;
  obj_size : int;
  order : int;
  objs_per_slab : int;
  ocache_cap : int;
  batch : int;
  latent_aware : bool;
  latent_cap : int;
  env : env;
  nodes : node array;
  pcpus : pcpu array;
  stats : Slab_stats.t;
  mutable color_next : int;
  mutable total_slabs : int;
  mutable live_objs : int;
  mutable latent_count : int;
  mutable free_target : (unit -> int) option;
}

exception Slab_oom of string

let create_cache env ~name ~obj_size ?(latent_aware = false) ?latent_cap () =
  if obj_size <= 0 then invalid_arg "Frame.create_cache: obj_size";
  let page_size = Mem.Buddy.page_size env.buddy in
  let order = Size_class.slab_order ~obj_size ~page_size in
  let capacity = Size_class.object_cache_capacity ~obj_size in
  let nodes =
    Array.init (Sim.Machine.nr_nodes env.machine) (fun nid ->
        {
          nid;
          lock = Sim.Simlock.create ~name:(Printf.sprintf "%s/node%d" name nid);
          full = Sim.Dlist.create ();
          partial = Sim.Dlist.create ();
          free_slabs = Sim.Dlist.create ();
          latent_slabs = Sim.Dlist.create ();
        })
  in
  let pcpus =
    Array.map
      (fun cpu ->
        {
          cpu;
          ocache = [];
          ocache_n = 0;
          latent = Latq.Fifo.create ();
          preflush_scheduled = false;
          recent_allocs = 0;
          recent_releases = 0;
        })
      (Sim.Machine.cpus env.machine)
  in
  {
    name;
    obj_size;
    order;
    objs_per_slab = Size_class.objs_per_slab ~obj_size ~page_size ~order;
    ocache_cap = capacity;
    batch = Size_class.batch_count ~capacity;
    latent_aware;
    latent_cap = (match latent_cap with Some c -> c | None -> capacity);
    env;
    nodes;
    pcpus;
    stats = Slab_stats.create ();
    color_next = 0;
    total_slabs = 0;
    live_objs = 0;
    latent_count = 0;
    free_target = None;
  }

let slab_bytes cache = Mem.Buddy.page_size cache.env.buddy lsl cache.order
let node_for cache (cpu : Sim.Machine.cpu) = cache.nodes.(cpu.node)
let pcpu_for cache (cpu : Sim.Machine.cpu) = cache.pcpus.(cpu.id)

let live_objects cache = cache.live_objs
let total_slabs cache = cache.total_slabs

let latent_total cache = cache.latent_count

let set_free_target cache fn = cache.free_target <- Some fn

(* How many free slabs a node keeps before shrinking: the policy's demand
   estimate (Prudence) or the static threshold (baseline). *)
let keep_free_target cache =
  match cache.free_target with
  | None -> Size_class.min_free_slabs
  | Some f -> max Size_class.min_free_slabs (f ())

let latent_total_slow cache =
  let in_caches =
    Array.fold_left
      (fun acc pc -> acc + Latq.Fifo.length pc.latent)
      0 cache.pcpus
  in
  let in_slabs = ref 0 in
  Array.iter
    (fun node ->
      let count s = in_slabs := !in_slabs + s.latent_n in
      Sim.Dlist.iter count node.full;
      Sim.Dlist.iter count node.partial;
      Sim.Dlist.iter count node.free_slabs)
    cache.nodes;
  in_caches + !in_slabs

let fragmentation cache =
  if cache.live_objs = 0 then nan
  else
    float_of_int (cache.total_slabs * slab_bytes cache)
    /. float_of_int (cache.live_objs * cache.obj_size)

let truly_free slab = slab.free_n = slab.capacity

let now cache = Sim.Engine.now (Sim.Machine.engine cache.env.machine)
let tracer cache = Sim.Machine.tracer cache.env.machine
let prof cache = Sim.Machine.prof cache.env.machine

let trace_event cache (cpu : Sim.Machine.cpu) ?arg kind =
  let tr = tracer cache in
  if Trace.enabled tr then
    Trace.emit tr ~time:(now cache) ~cpu:cpu.id ~label:cache.name ?arg kind

(* Like [trace_event ~arg], but the option is only built once the tracer
   is known to be live — the deferred-free path calls this per object, and
   the [Some] box was measurable when tracing was off. *)
let trace_event_arg cache (cpu : Sim.Machine.cpu) ~arg kind =
  let tr = tracer cache in
  if Trace.enabled tr then
    Trace.emit tr ~time:(now cache) ~cpu:cpu.id ~label:cache.name ~arg kind

let lock_node cache (cpu : Sim.Machine.cpu) node =
  let delay =
    Sim.Simlock.acquire ~tracer:(tracer cache) ~cpu:cpu.id node.lock
      ~now:(now cache) ~hold:cache.env.costs.node_lock_hold
  in
  Sim.Machine.consume cpu delay

let lock_pages cache (cpu : Sim.Machine.cpu) =
  let costs = cache.env.costs in
  (* Higher-order page allocations cost superlinearly more: zeroing is
     linear in pages, but assembling/splitting large contiguous blocks
     under load (buddy traversal, compaction, reclaim) grows with the
     order as well — the reason order-3 slab churn is so punishing in the
     paper's Fig. 6. *)
  let pages = 1 lsl cache.order in
  let hold =
    costs.page_lock_hold + (costs.page_zero_per_page * pages * max 1 (pages / 2))
  in
  let delay =
    Sim.Simlock.acquire ~tracer:(tracer cache) ~cpu:cpu.id cache.env.page_lock
      ~now:(now cache) ~hold
  in
  Sim.Machine.consume cpu delay

let list_of cache ~node_id = cache.nodes.(node_id)

let dlist_for node = function
  | L_full -> Some node.full
  | L_partial -> Some node.partial
  | L_free -> Some node.free_slabs
  | L_unlinked -> None

let unlink cache slab =
  match slab.link with
  | None -> ()
  | Some link -> (
      let node = list_of cache ~node_id:slab.node_id in
      match dlist_for node slab.on_list with
      | Some dl ->
          Sim.Dlist.remove dl link;
          slab.link <- None;
          slab.on_list <- L_unlinked
      | None -> assert false)

let link cache slab target =
  assert (slab.link = None);
  let node = list_of cache ~node_id:slab.node_id in
  (match dlist_for node target with
  | Some dl ->
      (* Selectors scan from the front: slabs with allocatable objects go
         to the front, while pre-moved all-latent slabs (free only after
         their grace period) queue at the back. *)
      let ln =
        if slab.free_n > 0 then Sim.Dlist.push_front dl slab
        else Sim.Dlist.push_back dl slab
      in
      slab.link <- Some ln
  | None -> assert false);
  slab.on_list <- target

let desired_list slab =
  let c = slab.cache in
  if slab.free_n = slab.capacity then L_free
  else if c.latent_aware && slab.in_flight = 0 then
    (* Every object is free or deferred: the slab is certain to become
       fully free after the grace period (pre-movement, Algorithm 1 l.56). *)
    L_free
  else if slab.free_n = 0 && c.latent_aware && slab.latent_n > 0 then
    (* Full slab with deferred objects: it will soon have free objects
       (pre-movement, Algorithm 1 l.54). *)
    L_partial
  else if slab.free_n = 0 then L_full
  else L_partial

let relocate cache slab =
  let target = desired_list slab in
  if target = slab.on_list then false
  else begin
    unlink cache slab;
    link cache slab target;
    true
  end

let take_free_obj slab =
  match slab.free_objs with
  | [] -> None
  | obj :: rest ->
      slab.free_objs <- rest;
      slab.free_n <- slab.free_n - 1;
      slab.in_flight <- slab.in_flight + 1;
      Some obj

(* The two entry points to the free pool: anything the shadow-heap oracle
   must vet (a deferred object becoming reusable) passes through one of
   these, whichever allocator policy drives it. *)
let probe_pool env obj =
  (match env.probe with
  | Some p -> p.on_pool ~oid:obj.oid ~cookie:obj.gp_cookie
  | None -> ());
  match env.obs_probe with
  | Some p -> p.on_pool ~oid:obj.oid ~cookie:obj.gp_cookie
  | None -> ()

let put_free_obj slab obj =
  assert (obj.parent == slab);
  probe_pool slab.cache.env obj;
  obj.ostate <- Free_in_slab;
  slab.free_objs <- obj :: slab.free_objs;
  slab.free_n <- slab.free_n + 1;
  slab.in_flight <- slab.in_flight - 1

let push_ocache cache pc obj =
  probe_pool cache.env obj;
  obj.ostate <- In_object_cache;
  pc.ocache <- obj :: pc.ocache;
  pc.ocache_n <- pc.ocache_n + 1

let pop_ocache pc =
  match pc.ocache with
  | [] -> None
  | obj :: rest ->
      pc.ocache <- rest;
      pc.ocache_n <- pc.ocache_n - 1;
      Some obj

(* Allocation-free fast path: callers check [pc.ocache_n > 0] first. *)
let pop_ocache_exn pc =
  match pc.ocache with
  | [] -> invalid_arg "Frame.pop_ocache_exn: empty object cache"
  | obj :: rest ->
      pc.ocache <- rest;
      pc.ocache_n <- pc.ocache_n - 1;
      obj

(* ceil(log2(used/llc)), capped: how many times the resident footprint has
   doubled past the last-level cache. *)
let footprint_doublings cache =
  let costs = cache.env.costs in
  let used = Mem.Buddy.used_bytes cache.env.buddy in
  if used <= costs.Costs.llc_bytes then 0
  else begin
    let d = ref 0 in
    let x = ref (used / costs.Costs.llc_bytes) in
    while !x > 1 && !d < 4 do
      x := !x lsr 1;
      incr d
    done;
    !d
  end

let hand_to_user cache (cpu : Sim.Machine.cpu) obj =
  (match cache.env.reuse_check with
  | Some check -> check obj.oid
  | None -> ());
  (match cache.env.probe with
  | Some p -> p.on_alloc ~oid:obj.oid
  | None -> ());
  (match cache.env.obs_probe with
  | Some p -> p.on_alloc ~oid:obj.oid
  | None -> ());
  (* Working sets beyond the LLC make every object touch a cache/TLB miss;
     an allocator that leaks its reclamation backlog pays this on every
     allocation. *)
  let doublings = footprint_doublings cache in
  if doublings > 0 then
    Sim.Machine.consume cpu (doublings * cache.env.costs.Costs.llc_pressure);
  (* First use of this object's memory: the mutator takes cache/TLB misses
     writing it. Recycled objects are hot. *)
  if not obj.touched then begin
    obj.touched <- true;
    let costs = cache.env.costs in
    Sim.Machine.consume cpu
      (costs.Costs.cold_touch
      + (cache.obj_size / 256 * costs.Costs.cold_touch_per_256b))
  end;
  (* deferred_at is only ever set while tracing: close the defer->reuse
     lifetime sample now that the object is being handed out again. *)
  if obj.deferred_at >= 0 then begin
    Trace.record_lifetime (tracer cache) (now cache - obj.deferred_at);
    obj.deferred_at <- -1
  end;
  obj.ostate <- Allocated;
  cache.live_objs <- cache.live_objs + 1

(* Probes fire before the state asserts so a deliberately broken caller
   (mutation self-tests: double free, double defer) reaches the oracle
   before the simulation aborts. *)
let release_from_user cache obj =
  (match cache.env.probe with
  | Some p -> p.on_free ~oid:obj.oid
  | None -> ());
  (match cache.env.obs_probe with
  | Some p -> p.on_free ~oid:obj.oid
  | None -> ());
  assert (obj.ostate = Allocated);
  cache.live_objs <- cache.live_objs - 1;
  ignore obj

let stamp_deferred cache obj ~cookie =
  (match cache.env.probe with
  | Some p -> p.on_defer ~oid:obj.oid ~cookie
  | None -> ());
  (match cache.env.obs_probe with
  | Some p -> p.on_defer ~oid:obj.oid ~cookie
  | None -> ());
  assert (obj.ostate = Allocated);
  obj.gp_cookie <- cookie;
  if Trace.enabled (tracer cache) then obj.deferred_at <- now cache;
  cache.live_objs <- cache.live_objs - 1

let obj_to_latent_cache cache pc obj =
  Prof.enter (prof cache) ~cpu:pc.cpu.Sim.Machine.id Prof.Span.Latq_push;
  obj.ostate <- In_latent_cache;
  cache.latent_count <- cache.latent_count + 1;
  Latq.Fifo.push_back pc.latent ~cookie:obj.gp_cookie obj;
  Prof.exit (prof cache) Prof.Span.Latq_push

let obj_to_latent_slab cache obj =
  Prof.enter (prof cache) ~cpu:(-1) Prof.Span.Latq_push;
  let slab = obj.parent in
  obj.ostate <- In_latent_slab;
  cache.latent_count <- cache.latent_count + 1;
  Latq.push slab.latent_objs ~cookie:obj.gp_cookie obj;
  slab.latent_n <- slab.latent_n + 1;
  slab.in_flight <- slab.in_flight - 1;
  (if slab.latent_link = None then
     let node = cache.nodes.(slab.node_id) in
     slab.latent_link <- Some (Sim.Dlist.push_back node.latent_slabs slab));
  Prof.exit (prof cache) Prof.Span.Latq_push

let latent_cache_pop_ripe cache pc ~completed =
  match Latq.Fifo.pop_front_ripe pc.latent ~completed with
  | Some obj ->
      cache.latent_count <- cache.latent_count - 1;
      Some obj
  | None -> None

let latent_cache_merge_ripe cache pc ~completed ~limit ~f =
  Prof.enter (prof cache) ~cpu:pc.cpu.Sim.Machine.id Prof.Span.Latq_harvest;
  let n = Latq.Fifo.merge_ripe pc.latent ~completed ~limit ~f in
  cache.latent_count <- cache.latent_count - n;
  Prof.exit (prof cache) Prof.Span.Latq_harvest;
  n

let latent_cache_pop_newest cache pc =
  match Latq.Fifo.pop_back pc.latent with
  | Some obj ->
      cache.latent_count <- cache.latent_count - 1;
      Some obj
  | None -> None

let slab_harvest_ripe slab ~completed =
  Prof.enter (prof slab.cache) ~cpu:(-1) Prof.Span.Latq_harvest;
  let n =
    Latq.harvest slab.latent_objs ~completed ~f:(fun o ->
        (* latent -> free stays inside the slab: in_flight is unchanged,
           but put_free_obj decrements it, so pre-compensate. *)
        slab.in_flight <- slab.in_flight + 1;
        put_free_obj slab o)
  in
  (if n > 0 then begin
     slab.latent_n <- slab.latent_n - n;
     slab.cache.latent_count <- slab.cache.latent_count - n;
     if slab.latent_n = 0 then
       match slab.latent_link with
       | Some link ->
           let node = slab.cache.nodes.(slab.node_id) in
           Sim.Dlist.remove node.latent_slabs link;
           slab.latent_link <- None
       | None -> ()
   end);
  Prof.exit (prof slab.cache) Prof.Span.Latq_harvest;
  n

let alloc_pages cache =
  let buddy = cache.env.buddy in
  match Mem.Buddy.alloc buddy ~order:cache.order with
  | Some b -> Some b
  | None -> (
      match cache.env.pressure with
      | Some p when Mem.Pressure.handle_alloc_failure p ->
          Mem.Buddy.alloc buddy ~order:cache.order
      | _ -> None)

let poll_pressure cache =
  match cache.env.pressure with None -> () | Some p -> Mem.Pressure.poll p

(* Retry a transiently failed page allocation with exponential virtual-time
   backoff. Only failures that [Buddy.would_satisfy] proves non-genuine
   (an injected refusal: a free block of sufficient order exists) are
   retried; real exhaustion falls through to the fatal-OOM path at once.
   Needs process context for the sleep, so it only runs when the policy is
   installed (off by default). *)
let rec grow_attempt cache (cpu : Sim.Machine.cpu) ~tries ~backoff =
  match alloc_pages cache with
  | Some block -> Some block
  | None -> (
      match cache.env.grow_retry with
      | Some p
        when tries < p.max_retries
             && Mem.Buddy.would_satisfy cache.env.buddy ~order:cache.order ->
          Slab_stats.grow_retry cache.stats;
          trace_event cache cpu ~arg:(tries + 1) Trace.Event.Grow_retry;
          Sim.Process.sleep (Sim.Machine.engine cache.env.machine) backoff;
          grow_attempt cache cpu ~tries:(tries + 1) ~backoff:(2 * backoff)
      | _ -> None)

let grow_inner cache (cpu : Sim.Machine.cpu) =
  let backoff =
    match cache.env.grow_retry with
    | Some p -> p.base_backoff_ns
    | None -> 0
  in
  match grow_attempt cache cpu ~tries:0 ~backoff with
  | None ->
      trace_event cache cpu Trace.Event.Oom;
      None
  | Some block ->
      let env = cache.env in
      let color = cache.color_next in
      cache.color_next <- (cache.color_next + 1) mod Size_class.max_color;
      let sid = env.next_sid in
      env.next_sid <- env.next_sid + 1;
      let slab =
        {
          sid;
          color;
          node_id = cpu.node;
          cache;
          block;
          capacity = cache.objs_per_slab;
          free_objs = [];
          free_n = cache.objs_per_slab;
          latent_objs = Latq.create ();
          latent_n = 0;
          in_flight = 0;
          on_list = L_unlinked;
          link = None;
          latent_link = None;
        }
      in
      let mk _ =
        let oid = env.next_oid in
        env.next_oid <- env.next_oid + 1;
        {
          oid;
          parent = slab;
          ostate = Free_in_slab;
          gp_cookie = 0;
          touched = false;
          deferred_at = -1;
        }
      in
      slab.free_objs <- List.init cache.objs_per_slab mk;
      link cache slab L_free;
      cache.total_slabs <- cache.total_slabs + 1;
      Slab_stats.set_current_slabs cache.stats cache.total_slabs;
      Slab_stats.grow cache.stats;
      trace_event cache cpu ~arg:cache.total_slabs Trace.Event.Grow;
      Sim.Machine.consume cpu env.costs.grow;
      lock_pages cache cpu;
      poll_pressure cache;
      Some slab

(* May suspend mid-span when the grow-retry policy sleeps; Prof.exit's
   unwind semantics keep the span stack consistent across that. *)
let grow cache (cpu : Sim.Machine.cpu) =
  Prof.enter (prof cache) ~cpu:cpu.id Prof.Span.Slab_grow;
  let r = grow_inner cache cpu in
  Prof.exit (prof cache) Prof.Span.Slab_grow;
  r

let destroy_slab cache slab =
  assert (truly_free slab
         || (cache.env.unsafe_destroy_latent && slab.in_flight = 0));
  (* The page-reuse boundary: report objects still deferred on this page
     before it goes back to the buddy. Empty on every non-mutated run
     (truly-free slabs have no latent objects). *)
  (if slab.latent_n > 0 then
     let fire p =
       let oids = ref [] in
       Latq.iter
         (fun o -> oids := (o.oid, o.gp_cookie) :: !oids)
         slab.latent_objs;
       p.on_page_release ~oids:!oids
     in
     (match cache.env.probe with Some p -> fire p | None -> ());
     match cache.env.obs_probe with Some p -> fire p | None -> ());
  (* Scrub the latent bookkeeping the mutated path orphans, so the cache
     counters stay conserved and only the page-level oracle can tell. *)
  if slab.latent_n > 0 then begin
    cache.latent_count <- cache.latent_count - slab.latent_n;
    slab.latent_n <- 0;
    (match slab.latent_link with
    | Some link ->
        Sim.Dlist.remove cache.nodes.(slab.node_id).latent_slabs link;
        slab.latent_link <- None
    | None -> ())
  end;
  unlink cache slab;
  Mem.Buddy.free cache.env.buddy slab.block;
  cache.total_slabs <- cache.total_slabs - 1;
  Slab_stats.set_current_slabs cache.stats cache.total_slabs;
  Slab_stats.shrink cache.stats;
  poll_pressure cache

(* Incremental shrinking, like kernel shrinkers: at most a few slabs per
   invocation, so reclaim is spread over time rather than bursty. *)
let max_shrink_per_call = 4

let shrink_node ?keep cache (cpu : Sim.Machine.cpu) node =
  let destroyed = ref 0 in
  let keep = match keep with Some k -> k | None -> keep_free_target cache in
  let excess () =
    min (Sim.Dlist.length node.free_slabs - keep) (max_shrink_per_call - !destroyed)
  in
  if excess () > 0 then begin
    (* Collect candidates first: pre-moved (not yet reclaimable) slabs on
       the free list are skipped. *)
    let candidates = ref [] in
    Sim.Dlist.iter
      (fun s ->
        if
          truly_free s
          || (cache.env.unsafe_destroy_latent && s.in_flight = 0
             && s.latent_n > 0)
        then candidates := s :: !candidates)
      node.free_slabs;
    let rec destroy = function
      | [] -> ()
      | s :: rest when excess () > 0 ->
          destroy_slab cache s;
          Sim.Machine.consume cpu cache.env.costs.shrink;
          lock_pages cache cpu;
          incr destroyed;
          destroy rest
      | _ -> ()
    in
    (* Oldest (closest to the back) first. *)
    destroy !candidates
  end;
  if !destroyed > 0 then
    trace_event cache cpu ~arg:!destroyed Trace.Event.Shrink;
  !destroyed

let refill_from_node cache (cpu : Sim.Machine.cpu) ~want ~select =
  if want <= 0 then 0
  else begin
    let pc = pcpu_for cache cpu in
    let node = node_for cache cpu in
    lock_node cache cpu node;
    let moved = ref 0 in
    let continue = ref true in
    while !continue && !moved < want do
      match select node with
      | None -> continue := false
      | Some slab ->
          let before = !moved in
          let rec take () =
            if !moved < want then
              match take_free_obj slab with
              | Some obj ->
                  push_ocache cache pc obj;
                  incr moved;
                  take ()
              | None -> ()
          in
          take ();
          ignore (relocate cache slab);
          (* A selector returning a slab with no free objects would loop. *)
          if !moved = before then continue := false
    done;
    if !moved > 0 then begin
      Slab_stats.refill cache.stats;
      trace_event cache cpu ~arg:!moved Trace.Event.Refill;
      Sim.Machine.consume cpu
        (cache.env.costs.refill + (!moved * cache.env.costs.refill_per_obj))
    end;
    !moved
  end

let flush_to_node cache (cpu : Sim.Machine.cpu) ~count =
  if count > 0 then begin
    let pc = pcpu_for cache cpu in
    let touched_nodes = ref [] in
    let rec pop n acc got =
      if n = 0 then (acc, got)
      else
        match pop_ocache pc with
        | None -> (acc, got)
        | Some o -> pop (n - 1) (o :: acc) (got + 1)
    in
    let objs, moved = pop count [] 0 in
    match objs with
    | [] -> ()
    | _ ->
        (* Group the lock acquisitions: one per touched node. *)
        List.iter
          (fun obj ->
            let node = list_of cache ~node_id:obj.parent.node_id in
            if not (List.memq node !touched_nodes) then begin
              touched_nodes := node :: !touched_nodes;
              lock_node cache cpu node
            end;
            put_free_obj obj.parent obj;
            ignore (relocate cache obj.parent))
          objs;
        Slab_stats.flush cache.stats;
        trace_event cache cpu ~arg:moved Trace.Event.Flush;
        Sim.Machine.consume cpu
          (cache.env.costs.flush + (moved * cache.env.costs.flush_per_obj));
        List.iter (fun node -> ignore (shrink_node cache cpu node)) !touched_nodes
  end

let first_with_free ?(depth = 16) dl =
  Sim.Dlist.find_first ~depth (fun s -> s.free_n > 0) dl

let select_slub node =
  (* SLUB picks the first partial slab; with latent awareness, pre-moved
     slabs may have no free objects yet, so scan a few entries. *)
  match first_with_free node.partial with
  | Some s -> Some s
  | None -> first_with_free node.free_slabs

let mostly_deferred slab =
  let allocated = slab.capacity - slab.free_n in
  allocated > 0 && 2 * slab.latent_n > allocated

let select_prudence ~scan_depth node =
  let better a b =
    (* Fewer latent objects first (do not steal from slabs that are on
       their way to being entirely free), then denser refills. *)
    if a.latent_n <> b.latent_n then a.latent_n < b.latent_n
    else a.free_n > b.free_n
  in
  let best =
    Sim.Dlist.fold_first_n node.partial scan_depth
      (fun acc s ->
        if s.free_n > 0 && not (mostly_deferred s) then
          match acc with
          | None -> Some s
          | Some cur -> if better s cur then Some s else acc
        else acc)
      None
  in
  match best with
  | Some s -> Some s
  | None -> first_with_free ~depth:scan_depth node.free_slabs

(* The O(objects) sweep below only runs with [env.debug_checks] set: the
   default for tests and check sweeps, off for the wall-clock benchmark
   harness so the measured paths are the production ones. *)
let check_invariants cache =
  if cache.env.debug_checks then begin
    let seen_slabs = ref 0 in
    Array.iter
      (fun node ->
        let check_list list_id dl =
          Sim.Dlist.iter
            (fun slab ->
              incr seen_slabs;
              assert (slab.on_list = list_id);
              assert (slab.free_n = List.length slab.free_objs);
              assert (slab.latent_n = Latq.length slab.latent_objs);
              assert (
                slab.free_n + slab.latent_n + slab.in_flight = slab.capacity);
              assert (
                slab.free_n >= 0 && slab.latent_n >= 0 && slab.in_flight >= 0);
              List.iter (fun o -> assert (o.ostate = Free_in_slab)) slab.free_objs;
              Latq.iter
                (fun o -> assert (o.ostate = In_latent_slab))
                slab.latent_objs;
              assert (desired_list slab = slab.on_list))
            dl
        in
        check_list L_full node.full;
        check_list L_partial node.partial;
        check_list L_free node.free_slabs;
        Sim.Dlist.iter
          (fun slab ->
            assert (slab.latent_n > 0);
            assert (slab.latent_link <> None))
          node.latent_slabs)
      cache.nodes;
    assert (!seen_slabs = cache.total_slabs);
    assert (cache.latent_count = latent_total_slow cache);
    Array.iter
      (fun pc ->
        assert (pc.ocache_n = List.length pc.ocache);
        List.iter (fun o -> assert (o.ostate = In_object_cache)) pc.ocache;
        Latq.Fifo.iter
          (fun o -> assert (o.ostate = In_latent_cache))
          pc.latent)
      cache.pcpus
  end

let pp_cache fmt cache =
  Format.fprintf fmt "cache %s: obj=%dB order=%d objs/slab=%d ocache=%d slabs=%d live=%d latent=%d"
    cache.name cache.obj_size cache.order cache.objs_per_slab cache.ocache_cap
    cache.total_slabs cache.live_objs (latent_total cache)

let set_preflush_scheduled pc v = pc.preflush_scheduled <- v
let note_alloc pc = pc.recent_allocs <- pc.recent_allocs + 1
let note_release pc = pc.recent_releases <- pc.recent_releases + 1

let decay_rates pc =
  (* 7/8 retention per grace period: the estimate spans the "recent few
     grace period intervals" of §4.2 and rides out transient stalls. *)
  pc.recent_allocs <- pc.recent_allocs - (pc.recent_allocs / 8);
  pc.recent_releases <- pc.recent_releases - (pc.recent_releases / 8)
