(** Hyaline-style snapshot-free, reference-batched retirement.

    Tokens are batch ids: retired objects join the open batch; a batch
    seals with one reference per reader active at that instant, each
    credited reader decrements at its outermost exit, and the frontier
    advances over consecutive zero-reference sealed batches. A slow
    reader only pins the batches sealed during its own lifetime. *)

type config = {
  batch_size : int;
  poll_period_ns : int;
  unsafe_drop_refs : bool;
      (** mutant ([drop-retire-batch]): the backend view reclaims
          sealed batches without draining their reader references; the
          oracle view keeps the truthful frontier *)
}

val default_config : config

type t

val create : ?config:config -> cpus:int -> Sim.Engine.t -> t
val frontier : t -> int
val backend_frontier : t -> int
val last_issued : t -> int
val seal : t -> unit

type obs = {
  obs_seal : batch:int -> refs:int -> unit;
      (** Batch [batch] sealed, credited with [refs] active readers —
          the start of its settling cycle. *)
  obs_unref : batch:int -> cpu:int -> refs:int -> unit;
      (** Reader on [cpu] released its credit on [batch]; [refs] remain
          ([0] = this decrement lets the frontier pass the batch — the
          holdout report). *)
}
(** Anatomy taps for the observability layer ([Obs.Anatomy]). Pure
    observation behind one load-and-branch; never consumes virtual
    time. *)

val set_obs : t -> obs option -> unit
(** Install (or clear) the anatomy taps. At most one observer. *)

val smr : t -> Smr.t
(** The allocator's view: honest unless [unsafe_drop_refs]. *)

val oracle_smr : t -> Smr.t
(** The truthful view, immune to the mutation — ground truth for the
    shadow heap and auditors. *)
