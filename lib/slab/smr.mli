(** Safe-memory-reclamation backend interface.

    Abstracts the defer -> grace-detection -> harvest cycle over the
    detection scheme. Tokens are monotone ints compatible with the
    {!Latq} cookie contract: [defer] issues the token an object must
    wait out, [ripe_upto] is the monotone frontier below which tokens
    are safe to recycle. *)

type t = {
  scheme : string;
  snapshot : unit -> int;
  defer : cpu:int -> int;
  ripe_upto : unit -> int;
  advance : unit -> unit;
  request : unit -> unit;
  wait : unit -> unit;
  on_ripen : (int -> unit) -> unit;
  reader_enter : (Sim.Machine.cpu -> unit) option;
  reader_exit : (Sim.Machine.cpu -> unit) option;
}

val ripe : t -> int -> bool
(** [ripe t token] — has the frontier passed [token]? *)

val of_rcu : Rcu.t -> t
(** The identity mapping onto RCU grace periods: defer = snapshot,
    ripe_upto = completed, request = request_gp, wait = synchronize,
    on_ripen = on_gp_complete. Reader tracking stays inside RCU
    (both hooks are [None]). *)
