(** Epoch-based reclamation with DEBRA-style amortized advancement.

    Tokens are global-epoch values: an object deferred at epoch [e]
    ripens once the global epoch reaches [e + 2] (classic three-limbo-
    bag rotation). Advancement is amortized: attempted every
    [advance_every] defers per CPU, on every outermost reader exit, and
    from a virtual-time poller armed while tokens are outstanding. *)

type config = {
  advance_every : int;
  poll_period_ns : int;
  unsafe_no_scan : bool;
      (** mutant ([skip-epoch-advance]): the backend view's frontier
          advances without scanning reader announcements; the oracle
          view keeps the truthful frontier *)
}

val default_config : config

type t

val create : ?config:config -> cpus:int -> Sim.Engine.t -> t
val epoch : t -> int
val frontier : t -> int
val backend_frontier : t -> int
val last_issued : t -> int
val try_advance : t -> unit

type obs = {
  obs_attempt : unit -> unit;
      (** An advancement attempt ran while tokens were outstanding — the
          start of an epoch-scan detection cycle. *)
  obs_blocked : cpu:int -> unit;
      (** [cpu] was pinned with a stale announcement in a failed scan —
          the epoch-world holdout report. *)
}
(** Anatomy taps for the observability layer ([Obs.Anatomy]). Pure
    observation behind one load-and-branch; never consumes virtual
    time. *)

val set_obs : t -> obs option -> unit
(** Install (or clear) the anatomy taps. At most one observer. *)

val smr : t -> Smr.t
(** The allocator's view: honest unless [unsafe_no_scan]. *)

val oracle_smr : t -> Smr.t
(** The truthful view, immune to the mutation — ground truth for the
    shadow heap and auditors. *)
