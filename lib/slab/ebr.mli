(** Epoch-based reclamation with DEBRA-style amortized advancement.

    Tokens are global-epoch values: an object deferred at epoch [e]
    ripens once the global epoch reaches [e + 2] (classic three-limbo-
    bag rotation). Advancement is amortized: attempted every
    [advance_every] defers per CPU, on every outermost reader exit, and
    from a virtual-time poller armed while tokens are outstanding. *)

type config = {
  advance_every : int;
  poll_period_ns : int;
  unsafe_no_scan : bool;
      (** mutant ([skip-epoch-advance]): the backend view's frontier
          advances without scanning reader announcements; the oracle
          view keeps the truthful frontier *)
}

val default_config : config

type t

val create : ?config:config -> cpus:int -> Sim.Engine.t -> t
val epoch : t -> int
val frontier : t -> int
val backend_frontier : t -> int
val last_issued : t -> int
val try_advance : t -> unit

val smr : t -> Smr.t
(** The allocator's view: honest unless [unsafe_no_scan]. *)

val oracle_smr : t -> Smr.t
(** The truthful view, immune to the mutation — ground truth for the
    shadow heap and auditors. *)
