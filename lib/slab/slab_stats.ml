type t = {
  mutable allocs : int;
  mutable frees : int;
  mutable deferred_frees : int;
  mutable hits : int;
  mutable misses : int;
  mutable refills : int;
  mutable flushes : int;
  mutable grows : int;
  mutable shrinks : int;
  mutable premoves : int;
  mutable merges : int;
  mutable merged_objs : int;
  mutable latent_overflows : int;
  mutable preflush_passes : int;
  mutable preflushed_objs : int;
  mutable ooms_delayed : int;
  mutable grow_retries : int;
  mutable emergency_flushes : int;
  mutable emergency_flushed_objs : int;
  mutable current_slabs : int;
  mutable peak_slabs : int;
}

let create () =
  {
    allocs = 0;
    frees = 0;
    deferred_frees = 0;
    hits = 0;
    misses = 0;
    refills = 0;
    flushes = 0;
    grows = 0;
    shrinks = 0;
    premoves = 0;
    merges = 0;
    merged_objs = 0;
    latent_overflows = 0;
    preflush_passes = 0;
    preflushed_objs = 0;
    ooms_delayed = 0;
    grow_retries = 0;
    emergency_flushes = 0;
    emergency_flushed_objs = 0;
    current_slabs = 0;
    peak_slabs = 0;
  }

let hit t = t.hits <- t.hits + 1
let miss t = t.misses <- t.misses + 1
let alloc t = t.allocs <- t.allocs + 1
let free t = t.frees <- t.frees + 1
let deferred_free t = t.deferred_frees <- t.deferred_frees + 1
let refill t = t.refills <- t.refills + 1
let flush t = t.flushes <- t.flushes + 1
let grow t = t.grows <- t.grows + 1
let shrink t = t.shrinks <- t.shrinks + 1
let premove t = t.premoves <- t.premoves + 1

let merge t ~n =
  t.merges <- t.merges + 1;
  t.merged_objs <- t.merged_objs + n

let latent_overflow t = t.latent_overflows <- t.latent_overflows + 1

let preflush_pass t ~n =
  t.preflush_passes <- t.preflush_passes + 1;
  t.preflushed_objs <- t.preflushed_objs + n

let oom_delayed t = t.ooms_delayed <- t.ooms_delayed + 1
let grow_retry t = t.grow_retries <- t.grow_retries + 1

let emergency_flush t ~n =
  t.emergency_flushes <- t.emergency_flushes + 1;
  t.emergency_flushed_objs <- t.emergency_flushed_objs + n

let set_current_slabs t n =
  t.current_slabs <- n;
  if n > t.peak_slabs then t.peak_slabs <- n

type snapshot = {
  allocs : int;
  frees : int;
  deferred_frees : int;
  hits : int;
  misses : int;
  refills : int;
  flushes : int;
  grows : int;
  shrinks : int;
  premoves : int;
  merges : int;
  merged_objs : int;
  latent_overflows : int;
  preflush_passes : int;
  preflushed_objs : int;
  ooms_delayed : int;
  grow_retries : int;
  emergency_flushes : int;
  emergency_flushed_objs : int;
  current_slabs : int;
  peak_slabs : int;
}

let snapshot (t : t) : snapshot =
  {
    allocs = t.allocs;
    frees = t.frees;
    deferred_frees = t.deferred_frees;
    hits = t.hits;
    misses = t.misses;
    refills = t.refills;
    flushes = t.flushes;
    grows = t.grows;
    shrinks = t.shrinks;
    premoves = t.premoves;
    merges = t.merges;
    merged_objs = t.merged_objs;
    latent_overflows = t.latent_overflows;
    preflush_passes = t.preflush_passes;
    preflushed_objs = t.preflushed_objs;
    ooms_delayed = t.ooms_delayed;
    grow_retries = t.grow_retries;
    emergency_flushes = t.emergency_flushes;
    emergency_flushed_objs = t.emergency_flushed_objs;
    current_slabs = t.current_slabs;
    peak_slabs = t.peak_slabs;
  }

let hit_rate (s : snapshot) =
  if s.allocs = 0 then 0. else 100. *. float_of_int s.hits /. float_of_int s.allocs

let ocache_churns (s : snapshot) = min s.refills s.flushes
let slab_churns (s : snapshot) = min s.grows s.shrinks

let deferred_ratio (s : snapshot) =
  let total = s.frees + s.deferred_frees in
  if total = 0 then 0.
  else 100. *. float_of_int s.deferred_frees /. float_of_int total

let pp fmt (s : snapshot) =
  Format.fprintf fmt
    "allocs=%d hits=%d (%.1f%%) refills=%d flushes=%d grows=%d shrinks=%d \
     slabs=%d (peak %d)"
    s.allocs s.hits (hit_rate s) s.refills s.flushes s.grows s.shrinks
    s.current_slabs s.peak_slabs
