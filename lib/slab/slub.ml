type t = {
  env : Frame.env;
  rcu : Rcu.t;
  by_name : (string, Frame.cache) Hashtbl.t;
  mutable caches : Frame.cache list;  (* newest first (insertion order) *)
}

let create env rcu = { env; rcu; by_name = Hashtbl.create 8; caches = [] }

let env t = t.env
let rcu t = t.rcu

let create_cache t ~name ~obj_size =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None ->
      let c = Frame.create_cache t.env ~name ~obj_size () in
      Hashtbl.replace t.by_name name c;
      t.caches <- c :: t.caches;
      c

let charge (cpu : Sim.Machine.cpu) ns = Sim.Machine.consume cpu ns

let alloc_inner t (cache : Frame.cache) cpu =
  let costs = t.env.Frame.costs in
  let pc = Frame.pcpu_for cache cpu in
  Slab_stats.alloc cache.Frame.stats;
  charge cpu costs.Costs.hit;
  if pc.Frame.ocache_n > 0 then begin
    let obj = Frame.pop_ocache_exn pc in
    Slab_stats.hit cache.Frame.stats;
    Frame.trace_event cache cpu Trace.Event.Alloc_hit;
    Frame.hand_to_user cache cpu obj;
    Some obj
  end
  else begin
      Slab_stats.miss cache.Frame.stats;
      Frame.trace_event cache cpu Trace.Event.Alloc_miss;
      let got =
        Frame.refill_from_node cache cpu ~want:cache.Frame.batch
          ~select:Frame.select_slub
      in
      let got =
        if got > 0 then got
        else
          match Frame.grow cache cpu with
          | Some _slab ->
              Frame.refill_from_node cache cpu ~want:cache.Frame.batch
                ~select:Frame.select_slub
          | None -> 0
      in
      if got = 0 then None
      else
        match Frame.pop_ocache pc with
        | Some obj ->
            Frame.hand_to_user cache cpu obj;
            Some obj
        | None -> None
  end

let alloc t (cache : Frame.cache) (cpu : Sim.Machine.cpu) =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id Prof.Span.Slab_alloc;
  let tr = Frame.tracer cache in
  let result =
    if not (Trace.enabled tr) then alloc_inner t cache cpu
    else begin
      let pend0 = cpu.Sim.Machine.pending_ns in
      let result = alloc_inner t cache cpu in
      Trace.record_alloc_cost tr (cpu.Sim.Machine.pending_ns - pend0);
      result
    end
  in
  Prof.exit (Frame.prof cache) Prof.Span.Slab_alloc;
  result

(* The reclamation path shared by immediate frees and RCU callbacks. *)
let release t (cache : Frame.cache) cpu obj =
  let costs = t.env.Frame.costs in
  let pc = Frame.pcpu_for cache cpu in
  charge cpu costs.Costs.free_to_cache;
  Frame.push_ocache cache pc obj;
  if pc.Frame.ocache_n > cache.Frame.ocache_cap then
    (* Overflow: flush half the object cache (§3.3). *)
    Frame.flush_to_node cache cpu
      ~count:(pc.Frame.ocache_n - (cache.Frame.ocache_cap / 2))

let free t cache cpu obj =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id Prof.Span.Slab_free;
  Slab_stats.free cache.Frame.stats;
  Frame.release_from_user cache obj;
  release t cache cpu obj;
  Prof.exit (Frame.prof cache) Prof.Span.Slab_free

let free_deferred t (cache : Frame.cache) cpu obj =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id Prof.Span.Slab_defer;
  let costs = t.env.Frame.costs in
  Slab_stats.deferred_free cache.Frame.stats;
  let cookie = Rcu.snapshot t.rcu in
  Frame.trace_event_arg cache cpu ~arg:cookie Trace.Event.Defer_free;
  Frame.stamp_deferred cache obj ~cookie;
  charge cpu costs.Costs.defer_enqueue;
  (* Listing 1: the allocator never sees the object until RCU invokes the
     callback, possibly long after the grace period. *)
  Rcu.call_rcu t.rcu cpu (fun () -> release t cache cpu obj);
  Prof.exit (Frame.prof cache) Prof.Span.Slab_defer

let settle t =
  let rec loop budget =
    if budget = 0 then
      failwith "Slub.settle: deferred callbacks failed to drain"
    else if Rcu.pending_callbacks t.rcu > 0 then begin
      Rcu.synchronize t.rcu;
      Rcu.barrier_drain t.rcu;
      loop (budget - 1)
    end
  in
  loop 1_000

let backend t =
  {
    Backend.label = "slub";
    create_cache = (fun ~name ~obj_size -> create_cache t ~name ~obj_size);
    alloc = (fun cache cpu -> alloc t cache cpu);
    free = (fun cache cpu obj -> free t cache cpu obj);
    free_deferred = (fun cache cpu obj -> free_deferred t cache cpu obj);
    settle = (fun () -> settle t);
    iter_caches = (fun f -> List.iter f t.caches);
  }
