(** Per-slab-cache statistics.

    Counts exactly the attributes the paper's evaluation reports:
    object-cache hits (Fig. 7), object-cache churns = refill/flush pairs
    (Fig. 8), slab churns = grow/shrink pairs (Fig. 9), peak slab usage
    (Fig. 10) and total fragmentation (Fig. 11). *)

type t

val create : unit -> t

(** {1 Incrementors} (called by the allocator policies) *)

val hit : t -> unit
val miss : t -> unit
val alloc : t -> unit
val free : t -> unit
val deferred_free : t -> unit
val refill : t -> unit
val flush : t -> unit
val grow : t -> unit
val shrink : t -> unit
val premove : t -> unit
val merge : t -> n:int -> unit
val latent_overflow : t -> unit
val preflush_pass : t -> n:int -> unit
val oom_delayed : t -> unit

val grow_retry : t -> unit
(** A grow-path page allocation failed transiently and was retried after
    backoff (robustness path; see {!Frame.grow}). *)

val emergency_flush : t -> n:int -> unit
(** One emergency reclaim pass under [Critical] pressure freed [n] ripe
    latent objects (graceful-degradation path). *)

val set_current_slabs : t -> int -> unit
(** Updates current slab count and the peak watermark. *)

(** {1 Snapshot} *)

type snapshot = {
  allocs : int;  (** Allocation requests served. *)
  frees : int;  (** Immediate frees. *)
  deferred_frees : int;  (** Deferred frees requested. *)
  hits : int;  (** Allocations served directly from the object cache. *)
  misses : int;
  refills : int;
  flushes : int;
  grows : int;
  shrinks : int;
  premoves : int;
  merges : int;  (** Merge operations (latent -> object cache). *)
  merged_objs : int;
  latent_overflows : int;  (** Deferred objects routed to latent slabs. *)
  preflush_passes : int;
  preflushed_objs : int;
  ooms_delayed : int;
  grow_retries : int;  (** Transient grow failures retried with backoff. *)
  emergency_flushes : int;  (** Emergency reclaim passes under pressure. *)
  emergency_flushed_objs : int;
  current_slabs : int;
  peak_slabs : int;
}

val snapshot : t -> snapshot

val hit_rate : snapshot -> float
(** Fraction of allocation requests served from the object cache, in
    percent (Fig. 7's metric). *)

val ocache_churns : snapshot -> int
(** Refill/flush pairs: [min refills flushes] (Fig. 8's metric). *)

val slab_churns : snapshot -> int
(** Grow/shrink pairs: [min grows shrinks] (Fig. 9's metric). *)

val deferred_ratio : snapshot -> float
(** Deferred frees as a percentage of all frees (Fig. 12's metric). *)

val pp : Format.formatter -> snapshot -> unit
