(* First-class safe-memory-reclamation backend: the defer ->
   grace-detection -> harvest cycle behind the slab frame, abstracted
   over the detection scheme (RCU grace periods, EBR/DEBRA epochs,
   Hyaline retirement batches).

   Tokens are plain ints, monotone per scheme: [defer] stamps the
   object with the token a reclamation right now would have to wait
   for, and the object is safe to recycle once [ripe_upto] has reached
   that token. This is exactly the cookie contract Latq already
   assumes, so every scheme reuses the latent-queue machinery
   unchanged. *)

type t = {
  scheme : string;  (** registry label, e.g. ["rcu"], ["ebr-debra"] *)
  snapshot : unit -> int;
      (** the token a defer issued right now would receive (pure; an
          upper bound on every token issued so far) *)
  defer : cpu:int -> int;
      (** issue a token for one deferred object on [cpu]; also runs the
          scheme's per-defer accounting (DEBRA amortized epoch
          advancement, Hyaline batch fill) *)
  ripe_upto : unit -> int;
      (** monotone reclamation frontier: a token is ripe iff [<=] this *)
  advance : unit -> unit;
      (** poke grace detection now (epoch scan, batch seal); free to be
          a no-op for schemes with their own engine (RCU) *)
  request : unit -> unit;
      (** ask for asynchronous detection progress (start a GP, arm the
          epoch poller); never blocks *)
  wait : unit -> unit;
      (** block (process context) until every token issued before the
          call is ripe — the [synchronize] analogue *)
  on_ripen : (int -> unit) -> unit;
      (** register a hook called with the new frontier whenever it
          advances *)
  reader_enter : (Sim.Machine.cpu -> unit) option;
  reader_exit : (Sim.Machine.cpu -> unit) option;
      (** quiescence hooks, fired at the outermost read-side
          section entry/exit; [None] for schemes that track readers
          themselves (RCU's nesting counters) *)
}

let ripe t token = token <= t.ripe_upto ()

(* The RCU mapping is 1:1 with the calls Prudence used to make
   directly, so slub/prudence behaviour is unchanged to the byte:
   defer = snapshot, ripe_upto = completed, request = request_gp,
   wait = synchronize. *)
let of_rcu rcu =
  {
    scheme = "rcu";
    snapshot = (fun () -> Rcu.snapshot rcu);
    defer = (fun ~cpu:_ -> Rcu.snapshot rcu);
    ripe_upto = (fun () -> Rcu.completed rcu);
    advance = (fun () -> ());
    request = (fun () -> Rcu.request_gp rcu);
    wait = (fun () -> Rcu.synchronize rcu);
    on_ripen = (fun f -> Rcu.on_gp_complete rcu f);
    reader_enter = None;
    reader_exit = None;
  }
