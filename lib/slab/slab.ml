(** Facade: the slab allocation layer.

    - {!Size_class}: kmalloc classes and sizing heuristics
    - {!Costs}: the virtual-time cost model (hit / 4x refill / 14x grow)
    - {!Slab_stats}: per-cache statistics behind Figs. 7-11
    - {!Latq}: grace-period-cookie-bucketed latent-object queues
    - {!Frame}: shared cache/slab/node machinery
    - {!Smr}: pluggable safe-memory-reclamation backend interface
    - {!Ebr}: epoch-based reclamation (DEBRA-amortized advancement)
    - {!Hyaline}: snapshot-free reference-batched retirement
    - {!Slub}: the baseline allocator (deferred frees via [call_rcu])
    - {!Backend}: allocator-agnostic interface used by the workloads
    - {!Kmalloc}: size-class facade *)

module Size_class = Size_class
module Costs = Costs
module Slab_stats = Slab_stats
module Latq = Latq
module Frame = Frame
module Smr = Smr
module Ebr = Ebr
module Hyaline = Hyaline
module Backend = Backend
module Slub = Slub
module Kmalloc = Kmalloc
