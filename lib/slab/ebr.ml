(* Epoch-based reclamation with DEBRA-style amortized advancement
   (Brown, PODC'15).

   One global epoch; each CPU entering an outermost read-side section
   pins itself and announces the epoch it observed. The epoch may
   advance only when every pinned CPU has announced the current epoch,
   so by the time the epoch reaches [e + 2] no reader that could have
   observed an object retired at epoch [e] can still be running:
   objects deferred at epoch [e] ripen at frontier [e], i.e. once the
   global epoch is [e + 2] ("limbo-bag rotation" — three bags in
   flight: current, previous, reclaimable).

   DEBRA's contribution is *when* advancement is attempted: not on
   every retire (a full announcement scan each time), but amortized —
   here every [advance_every] defers per CPU, plus a virtual-time
   poller armed while tokens are outstanding, plus an attempt on every
   outermost reader exit (the exit is exactly what unblocks a stuck
   scan).

   Mutation support: [unsafe_no_scan] maintains a second, corrupt
   epoch counter that advances without the announcement scan. The
   backend view ([smr]) reclaims against the corrupt frontier while
   the oracle view ([oracle_smr]) keeps the truthful one — the same
   two-view discipline as Prudence's [unsafe_skip_gp], so the shadow
   heap can convict the mutant instead of inheriting its bug. *)

type config = {
  advance_every : int;
      (* defers per CPU between amortized advancement attempts *)
  poll_period_ns : int;  (* background advancement poller period *)
  unsafe_no_scan : bool;
      (* mutant: reclaim frontier advances without scanning reader
         announcements *)
}

let default_config =
  { advance_every = 64; poll_period_ns = 100_000; unsafe_no_scan = false }

type obs = {
  obs_attempt : unit -> unit;
  obs_blocked : cpu:int -> unit;
}
(* Anatomy taps (Obs.Anatomy): an advancement attempt while tokens are
   outstanding, and the pinned CPUs whose stale announcements blocked a
   failed scan. Pure observation, one load-and-branch when uninstalled. *)

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  mutable epoch : int;  (* truthful global epoch *)
  mutable unsafe_epoch : int;  (* scan-free counter for the mutated view *)
  pinned : bool array;  (* CPU inside an outermost read-side section *)
  announced : int array;  (* epoch each pinned CPU observed at entry *)
  defers : int array;  (* per-CPU defers since the last attempt *)
  mutable last_issued : int;  (* highest token handed out *)
  mutable hooks : (int -> unit) list;  (* truthful frontier hooks *)
  mutable backend_hooks : (int -> unit) list;
  mutable poller_armed : bool;
  cond : Sim.Process.Cond.t;
  mutable obs : obs option;
}

let create ?(config = default_config) ~cpus engine =
  {
    engine;
    cfg = config;
    epoch = 2;
    unsafe_epoch = 2;
    pinned = Array.make cpus false;
    announced = Array.make cpus 0;
    defers = Array.make cpus 0;
    last_issued = 0;
    hooks = [];
    backend_hooks = [];
    poller_armed = false;
    cond = Sim.Process.Cond.create engine;
    obs = None;
  }

let set_obs t obs = t.obs <- obs

let frontier t = t.epoch - 2

let backend_frontier t =
  if t.cfg.unsafe_no_scan then t.unsafe_epoch - 2 else frontier t

let epoch t = t.epoch
let last_issued t = t.last_issued

(* Hooks fire in registration order. *)
let fire hooks v = List.iter (fun f -> f v) (List.rev hooks)

let scan_clear t =
  let ok = ref true in
  Array.iteri
    (fun i pinned -> if pinned && t.announced.(i) <> t.epoch then ok := false)
    t.pinned;
  !ok

(* Advance while tokens are outstanding (never spin the epoch when the
   system is quiet — tokens would otherwise ripen trivially). *)
let try_advance t =
  let unsafe_adv =
    t.cfg.unsafe_no_scan && t.unsafe_epoch - 2 < t.last_issued
  in
  if unsafe_adv then t.unsafe_epoch <- t.unsafe_epoch + 1;
  let want = frontier t < t.last_issued in
  (match t.obs with Some o when want -> o.obs_attempt () | _ -> ());
  let adv = want && scan_clear t in
  (match t.obs with
  | Some o when want && not adv ->
      Array.iteri
        (fun i pinned ->
          if pinned && t.announced.(i) <> t.epoch then o.obs_blocked ~cpu:i)
        t.pinned
  | _ -> ());
  if adv then begin
    t.epoch <- t.epoch + 1;
    if not t.cfg.unsafe_no_scan then t.unsafe_epoch <- t.epoch
  end;
  (* Backend (allocator) hooks before oracle hooks, mirroring the
     prudence-then-shadow registration order under RCU. *)
  if unsafe_adv then fire t.backend_hooks (t.unsafe_epoch - 2);
  if adv then begin
    if not t.cfg.unsafe_no_scan then fire t.backend_hooks (frontier t);
    fire t.hooks (frontier t)
  end;
  if adv || unsafe_adv then Sim.Process.Cond.broadcast t.cond

let outstanding t =
  frontier t < t.last_issued || backend_frontier t < t.last_issued

let rec arm_poller t =
  if not t.poller_armed then begin
    t.poller_armed <- true;
    ignore
      (Sim.Engine.schedule t.engine ~after:t.cfg.poll_period_ns (fun () ->
           t.poller_armed <- false;
           try_advance t;
           if outstanding t then arm_poller t))
  end

let defer t ~cpu =
  let tok = t.epoch in
  if tok > t.last_issued then t.last_issued <- tok;
  t.defers.(cpu) <- t.defers.(cpu) + 1;
  if t.defers.(cpu) >= t.cfg.advance_every then begin
    t.defers.(cpu) <- 0;
    try_advance t
  end;
  tok

let reader_enter t (cpu : Sim.Machine.cpu) =
  let i = cpu.Sim.Machine.id in
  t.pinned.(i) <- true;
  t.announced.(i) <- t.epoch

let reader_exit t (cpu : Sim.Machine.cpu) =
  t.pinned.(cpu.Sim.Machine.id) <- false;
  (* The exit is what unblocks a stuck scan: attempt immediately. *)
  if outstanding t then try_advance t

(* Block until every token issued before the call is ripe under the
   caller's view of the frontier. Progress comes from the poller (armed
   here) and from reader exits, both of which broadcast. *)
let wait_view t readf () =
  let target = t.last_issued in
  try_advance t;
  if readf () < target then begin
    arm_poller t;
    Sim.Process.wait_until t.engine t.cond (fun () -> readf () >= target)
  end

let view t ~frontierf ~register =
  {
    Smr.scheme = "ebr-debra";
    snapshot = (fun () -> t.epoch);
    defer = (fun ~cpu -> defer t ~cpu);
    ripe_upto = (fun () -> frontierf ());
    advance = (fun () -> try_advance t);
    request = (fun () -> if outstanding t then arm_poller t);
    wait = wait_view t frontierf;
    on_ripen = register;
    reader_enter = Some (reader_enter t);
    reader_exit = Some (reader_exit t);
  }

let smr t =
  view t
    ~frontierf:(fun () -> backend_frontier t)
    ~register:(fun f -> t.backend_hooks <- f :: t.backend_hooks)

let oracle_smr t =
  view t
    ~frontierf:(fun () -> frontier t)
    ~register:(fun f -> t.hooks <- f :: t.hooks)
