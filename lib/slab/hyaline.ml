(* Hyaline-style snapshot-free, reference-batched retirement
   (Nikolaev & Ravindran, PODC'19 / USENIX ATC'21 family).

   Retired objects accumulate in the current open batch (token = the
   batch id). When a batch seals — it filled up, the poller ticked, or
   a waiter needs progress — it is credited with one reference per
   reader active at that instant: those are exactly the readers that
   could still hold an object retired into it. Each credited reader
   decrements the batch at its outermost section exit. The reclamation
   frontier advances over consecutive sealed batches that reached zero
   references (conservative in-order harvesting, which is what keeps
   tokens compatible with Latq's monotone-cookie contract).

   Unlike EBR there is no global epoch to stall: a slow reader only
   pins the batches sealed during its own lifetime.

   Mutation support: [unsafe_drop_refs] makes the backend view's
   frontier track the last *sealed* batch, ignoring reader references
   entirely — retirement lists are handed to reclamation with their
   reference counts dropped. The oracle view ([oracle_smr]) keeps the
   truthful zero-reference frontier, so the shadow heap convicts the
   mutant. *)

type config = {
  batch_size : int;  (* defers per batch before it seals on its own *)
  poll_period_ns : int;  (* background seal/advance poller period *)
  unsafe_drop_refs : bool;
      (* mutant: reclaim sealed batches without waiting for their
         reader references to drain *)
}

let default_config =
  { batch_size = 64; poll_period_ns = 100_000; unsafe_drop_refs = false }

type batch = { id : int; mutable refs : int }

type obs = {
  obs_seal : batch:int -> refs:int -> unit;
  obs_unref : batch:int -> cpu:int -> refs:int -> unit;
}
(* Anatomy taps (Obs.Anatomy): a batch sealing with its initial reader
   credit, and each reader decrement — the last decrement to zero is the
   batch's holdout. Pure observation, one load-and-branch when
   uninstalled. *)

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  mutable open_id : int;  (* current open batch id = next token *)
  mutable open_fill : int;
  mutable last_issued : int;
  mutable sealed_upto : int;  (* highest sealed batch id *)
  mutable frontier : int;  (* truthful zero-reference frontier *)
  sealed_q : batch Queue.t;  (* sealed, refs not yet drained; id order *)
  active : bool array;  (* CPU inside an outermost read-side section *)
  credited : batch list array;  (* batches each active reader is credited in *)
  mutable hooks : (int -> unit) list;
  mutable backend_hooks : (int -> unit) list;
  mutable poller_armed : bool;
  cond : Sim.Process.Cond.t;
  mutable obs : obs option;
}

let create ?(config = default_config) ~cpus engine =
  {
    engine;
    cfg = config;
    open_id = 1;
    open_fill = 0;
    last_issued = 0;
    sealed_upto = 0;
    frontier = 0;
    sealed_q = Queue.create ();
    active = Array.make cpus false;
    credited = Array.make cpus [];
    hooks = [];
    backend_hooks = [];
    poller_armed = false;
    cond = Sim.Process.Cond.create engine;
    obs = None;
  }

let set_obs t obs = t.obs <- obs

let frontier t = t.frontier

let backend_frontier t =
  if t.cfg.unsafe_drop_refs then t.sealed_upto else t.frontier

let last_issued t = t.last_issued

let fire hooks v = List.iter (fun f -> f v) (List.rev hooks)

let advance_frontier t =
  let advanced = ref false in
  let blocked = ref false in
  while (not !blocked) && not (Queue.is_empty t.sealed_q) do
    let b = Queue.peek t.sealed_q in
    if b.refs = 0 then begin
      ignore (Queue.pop t.sealed_q);
      t.frontier <- b.id;
      advanced := true
    end
    else blocked := true
  done;
  if !advanced then begin
    if not t.cfg.unsafe_drop_refs then fire t.backend_hooks t.frontier;
    fire t.hooks t.frontier;
    Sim.Process.Cond.broadcast t.cond
  end

let seal t =
  if t.open_fill > 0 then begin
    let b = { id = t.open_id; refs = 0 } in
    Array.iteri
      (fun i active ->
        if active then begin
          b.refs <- b.refs + 1;
          t.credited.(i) <- b :: t.credited.(i)
        end)
      t.active;
    (match t.obs with
    | Some o -> o.obs_seal ~batch:b.id ~refs:b.refs
    | None -> ());
    Queue.push b t.sealed_q;
    t.sealed_upto <- b.id;
    t.open_id <- t.open_id + 1;
    t.open_fill <- 0;
    if t.cfg.unsafe_drop_refs then begin
      (* The mutated frontier jumps at seal, references be damned. *)
      fire t.backend_hooks t.sealed_upto;
      Sim.Process.Cond.broadcast t.cond
    end;
    advance_frontier t
  end

let outstanding t =
  t.frontier < t.last_issued || backend_frontier t < t.last_issued

(* Seal and drain on a timer while retirements are in flight: bounds
   the open batch's age, so quiet periods still retire their last
   objects. *)
let rec arm_poller t =
  if not t.poller_armed then begin
    t.poller_armed <- true;
    ignore
      (Sim.Engine.schedule t.engine ~after:t.cfg.poll_period_ns (fun () ->
           t.poller_armed <- false;
           seal t;
           advance_frontier t;
           if outstanding t then arm_poller t))
  end

let defer t ~cpu:_ =
  let tok = t.open_id in
  if tok > t.last_issued then t.last_issued <- tok;
  t.open_fill <- t.open_fill + 1;
  if t.open_fill >= t.cfg.batch_size then seal t;
  tok

let reader_enter t (cpu : Sim.Machine.cpu) =
  t.active.(cpu.Sim.Machine.id) <- true

let reader_exit t (cpu : Sim.Machine.cpu) =
  let i = cpu.Sim.Machine.id in
  t.active.(i) <- false;
  (match t.credited.(i) with
  | [] -> ()
  | batches ->
      List.iter
        (fun b ->
          b.refs <- b.refs - 1;
          match t.obs with
          | Some o -> o.obs_unref ~batch:b.id ~cpu:i ~refs:b.refs
          | None -> ())
        batches;
      t.credited.(i) <- [];
      advance_frontier t)

let wait_view t readf () =
  let target = t.last_issued in
  seal t;
  advance_frontier t;
  if readf () < target then begin
    arm_poller t;
    Sim.Process.wait_until t.engine t.cond (fun () -> readf () >= target)
  end

let view t ~frontierf ~register =
  {
    Smr.scheme = "hyaline";
    snapshot = (fun () -> t.open_id);
    defer = (fun ~cpu -> defer t ~cpu);
    ripe_upto = (fun () -> frontierf ());
    advance =
      (fun () ->
        seal t;
        advance_frontier t);
    request = (fun () -> if outstanding t then arm_poller t);
    wait = wait_view t frontierf;
    on_ripen = register;
    reader_enter = Some (reader_enter t);
    reader_exit = Some (reader_exit t);
  }

let smr t =
  view t
    ~frontierf:(fun () -> backend_frontier t)
    ~register:(fun f -> t.backend_hooks <- f :: t.backend_hooks)

let oracle_smr t =
  view t
    ~frontierf:(fun () -> frontier t)
    ~register:(fun f -> t.hooks <- f :: t.hooks)
