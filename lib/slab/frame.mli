(** Shared slab-cache machinery.

    Implements the structure of Fig. 2/Fig. 4 of the paper: a slab cache is
    a set of per-CPU object caches plus per-NUMA-node lists of slabs
    (full / partial / free); each slab is [2^order] contiguous pages carved
    into equal-sized objects. Prudence extends every object cache with a
    latent cache and every slab with a latent list (Fig. 4); the frame
    carries both so the SLUB baseline ({!Slub}) and Prudence share
    accounting, and policies differ only in how they use it.

    All operations charge virtual time to the CPU performing them through
    the {!Costs} model and the node's {!Sim.Simlock}. *)

(** {1 Types} *)

type grow_retry_policy = {
  max_retries : int;  (** Backoff attempts before declaring fatal OOM. *)
  base_backoff_ns : int;  (** First retry delay; doubles per attempt. *)
}
(** Retry-with-backoff policy for transient page-allocation failures in the
    grow path (see {!grow}). Requires process context (the backoff sleeps);
    disabled by default. *)

type probe = {
  on_alloc : oid:int -> unit;
      (** An object was handed to a mutator ({!hand_to_user}). *)
  on_free : oid:int -> unit;
      (** Immediate (non-deferred) release ({!release_from_user}); fires
          before the state assert so broken callers reach the oracle. *)
  on_defer : oid:int -> cookie:int -> unit;
      (** Deferred free stamped with its grace-period cookie
          ({!stamp_deferred}); fires before the state assert. *)
  on_pool : oid:int -> cookie:int -> unit;
      (** The object entered a free pool (object cache or slab freelist) —
          the reuse boundary a deferred object must not cross before its
          grace period completes. [cookie] is the object's current
          grace-period stamp. *)
  on_page_release : oids:(int * int) list -> unit;
      (** The slab's page is about to return to the buddy allocator;
          [oids] lists [(oid, gp_cookie)] for every object on the page
          still in a latent (deferred) state. Empty on every legal
          destroy — a non-empty list is the premature page-reuse bug
          class the page-level oracle checks. *)
}
(** Verification probes for the shadow-heap safety oracle ([Check.Oracle]).
    All off ([None]) by default: the probe record is consulted per event
    but never allocated per event, so disabled probes cost one branch. *)

type env = {
  machine : Sim.Machine.t;
  buddy : Mem.Buddy.t;
  pressure : Mem.Pressure.t option;
  costs : Costs.t;
  page_lock : Sim.Simlock.t;
      (** The page allocator's zone lock: slab grow/shrink serializes here
          with a hold that scales with slab order (page zeroing), the
          driver of the baseline's large-object collapse in Fig. 6. *)
  mutable reuse_check : (int -> unit) option;
      (** Safety hook: called with the object id whenever an object is
          handed to a mutator; wired to {!Rcu.Readers.check_reusable}. *)
  mutable probe : probe option;
      (** Shadow-heap verification probes; see {!probe}. *)
  mutable obs_probe : probe option;
      (** Second, independent probe slot for the observability layer's
          flight recorder ([Obs.Anatomy]) — fires at the same five
          sites, after {!probe}, so the safety oracle and the lineage
          recorder can coexist on one environment. *)
  mutable grow_retry : grow_retry_policy option;
      (** When set, {!grow} retries transient page-alloc failures (those
          {!Mem.Buddy.would_satisfy} proves injected, not genuine
          exhaustion) with bounded exponential virtual-time backoff. *)
  mutable debug_checks : bool;
      (** Whether {!check_invariants}' O(objects) sweep runs (default
          [true]; benchmarks turn it off so the measured hot paths are
          the production ones). *)
  mutable unsafe_destroy_latent : bool;
      (** Checker mutation knob (default [false]): lets {!shrink_node}
          destroy pre-moved slabs whose objects are all latent — returning
          a page to the buddy while objects on it may still be inside
          their grace period. The destroy path scrubs the latent counters,
          so only the {!probe}'s [on_page_release] hook can tell. Never
          set outside [--mutate=free-latent-page] self-tests. *)
  mutable next_oid : int;
  mutable next_sid : int;
}

val make_env :
  ?pressure:Mem.Pressure.t ->
  ?costs:Costs.t ->
  ?debug_checks:bool ->
  Sim.Machine.t ->
  Mem.Buddy.t ->
  env

type ostate =
  | Free_in_slab  (** On its slab's freelist. *)
  | In_object_cache  (** In some CPU's object cache, ready to allocate. *)
  | Allocated  (** Held by a mutator (or deferred and not yet released). *)
  | In_latent_cache  (** Deferred; in a CPU's latent cache (Prudence). *)
  | In_latent_slab  (** Deferred; parked on its slab's latent list. *)

val pp_ostate : Format.formatter -> ostate -> unit

type list_id = L_full | L_partial | L_free | L_unlinked

val pp_list_id : Format.formatter -> list_id -> unit

type objekt = private {
  oid : int;  (** Unique object id (for the safety checker). *)
  parent : slab;
  mutable ostate : ostate;
  mutable gp_cookie : int;
      (** Grace period this deferred object waits for (Prudence). *)
  mutable touched : bool;
      (** Whether a mutator has ever used this object's memory (first
          touch is charged cold-miss cost). *)
  mutable deferred_at : int;
      (** Virtual time of the deferred free that retired this object; [-1]
          when not deferred or tracing is off. {!hand_to_user} closes the
          defer->reuse lifetime histogram sample from it. *)
}

and slab = private {
  sid : int;
  color : int;  (** Cache-colouring offset index (cycled per §4.3). *)
  node_id : int;
  cache : cache;
  block : Mem.Buddy.block;
  capacity : int;
  mutable free_objs : objekt list;
  mutable free_n : int;
  latent_objs : objekt Latq.t;
      (** Deferred objects parked on this slab, bucketed by grace-period
          cookie so harvests cost O(ripe). *)
  mutable latent_n : int;
  mutable in_flight : int;
      (** Objects in object caches, latent caches, or held by mutators. *)
  mutable on_list : list_id;
  mutable link : slab Sim.Dlist.node option;
  mutable latent_link : slab Sim.Dlist.node option;
      (** Membership handle on the node's latent-slab list. *)
}

and node = private {
  nid : int;
  lock : Sim.Simlock.t;
  full : slab Sim.Dlist.t;
  partial : slab Sim.Dlist.t;
  free_slabs : slab Sim.Dlist.t;
  latent_slabs : slab Sim.Dlist.t;
      (** Slabs holding latent objects, oldest first; Prudence harvests
          ripe objects from the front after each grace period. *)
}

and pcpu = private {
  cpu : Sim.Machine.cpu;
  mutable ocache : objekt list;
  mutable ocache_n : int;
  latent : objekt Latq.Fifo.t;
      (** Prudence's latent cache: one deque plus a run-length cookie
          index for O(distinct-cookies) ripeness queries. *)
  mutable preflush_scheduled : bool;
  mutable recent_allocs : int;  (** Since the last grace period (rates). *)
  mutable recent_releases : int;
}

and cache = private {
  name : string;
  obj_size : int;
  order : int;
  objs_per_slab : int;
  ocache_cap : int;
  batch : int;
  latent_aware : bool;
      (** Whether slab placement considers latent objects (Prudence). *)
  latent_cap : int;  (** Latent-cache bound (= [ocache_cap] per §4.1). *)
  env : env;
  nodes : node array;
  pcpus : pcpu array;
  stats : Slab_stats.t;
  mutable color_next : int;
  mutable total_slabs : int;
  mutable live_objs : int;  (** Objects currently requested by mutators. *)
  mutable latent_count : int;
      (** Deferred objects currently in latent caches + latent slabs. *)
  mutable free_target : (unit -> int) option;
      (** Policy estimate of how many free slabs a node should keep before
          shrinking (Prudence derives it from latent objects + recent
          allocation rate — a "hint about the future"). *)
}

exception Slab_oom of string
(** Raised when a cache cannot grow and the policy cannot wait. *)

(** {1 Cache construction} *)

val create_cache :
  env ->
  name:string ->
  obj_size:int ->
  ?latent_aware:bool ->
  ?latent_cap:int ->
  unit ->
  cache
(** Builds a cache sized by {!Size_class} heuristics over the machine's
    CPUs and NUMA nodes. [latent_aware] (default false) enables Prudence's
    latent bookkeeping in slab placement; [latent_cap] defaults to the
    object-cache capacity. *)

val slab_bytes : cache -> int
val node_for : cache -> Sim.Machine.cpu -> node
val pcpu_for : cache -> Sim.Machine.cpu -> pcpu

(** {1 Accounting queries} *)

val live_objects : cache -> int
val total_slabs : cache -> int

val latent_total : cache -> int
(** Deferred objects currently parked in latent caches and latent slabs
    (O(1) counter). *)

val set_free_target : cache -> (unit -> int) -> unit
(** Install a policy estimate of the free slabs each node keeps before
    shrinking (floored at {!Size_class.min_free_slabs}); Prudence sets it
    from latent objects + recent allocation rate ("hints about the
    future"). *)

val fragmentation : cache -> float
(** Total fragmentation [f_t = allocated bytes / requested bytes] (paper
    §4.2). Returns [nan] when no objects are live. *)

val tracer : cache -> Trace.t
(** The machine's tracer ({!Trace.null} when tracing is off). *)

val prof : cache -> Prof.t
(** The machine's profiler ({!Prof.null} when profiling is off). The
    frame opens [slab.grow] / [slab.latq_push] / [slab.latq_harvest]
    spans; backends open the alloc/free/defer spans. *)

val trace_event :
  cache -> Sim.Machine.cpu -> ?arg:int -> Trace.Event.kind -> unit
(** Emit an event labelled with the cache name at the current virtual time
    on [cpu]; no-op when tracing is off. The frame itself emits refill,
    flush, grow, shrink, lock and OOM events; allocator policies emit
    their own (hit/miss, merge, pre-flush, defer). *)

val trace_event_arg :
  cache -> Sim.Machine.cpu -> arg:int -> Trace.Event.kind -> unit
(** [trace_event ~arg] for per-object hot paths: defers boxing the
    argument until the tracer is known to be live. *)

val truly_free : slab -> bool
(** All objects back on the freelist: the slab's pages may be returned. *)

(** {1 Locked node-list operations}

    Each of these charges the caller CPU the configured lock hold plus any
    queueing delay, modelling node-lock contention. *)

val lock_node : cache -> Sim.Machine.cpu -> node -> unit
(** Charge one lock acquisition (wait + hold) to [cpu]. *)

val relocate : cache -> slab -> bool
(** Place [slab] on the node list its counters dictate. With
    [latent_aware]: a slab whose remaining objects are all free-or-latent
    pre-moves to the free list, and a full slab with latent objects
    pre-moves to the partial list (paper, "slab pre-movement"). Returns
    [true] if the slab changed lists. Does not itself charge lock time
    (callers batch it under one acquisition). *)

(** {1 Object movement} *)

val take_free_obj : slab -> objekt option
(** Pop one object from the slab freelist; caller must set its state and
    relocate the slab. *)

val push_ocache : cache -> pcpu -> objekt -> unit
val pop_ocache : pcpu -> objekt option

val pop_ocache_exn : pcpu -> objekt
(** Allocation-free {!pop_ocache}; raises [Invalid_argument] when the
    object cache is empty — check [ocache_n] first on hot paths. *)

val hand_to_user : cache -> Sim.Machine.cpu -> objekt -> unit
(** Mark [objekt] allocated, bump live counters, charge the first-touch
    cost if its memory was never used, run the reuse-safety hook. *)

val release_from_user : cache -> objekt -> unit
(** Mark a mutator release (immediate free path): decrements live count. *)

val stamp_deferred : cache -> objekt -> cookie:int -> unit
(** Record the grace-period cookie and decrement the live count (the
    mutator no longer holds the object). *)

val obj_to_latent_cache : cache -> pcpu -> objekt -> unit
val obj_to_latent_slab : cache -> objekt -> unit
(** Move a deferred object onto its slab's latent list. Caller relocates. *)

val latent_cache_pop_ripe : cache -> pcpu -> completed:int -> objekt option
(** Pop the oldest latent-cache object if its grace period completed. *)

val latent_cache_merge_ripe :
  cache -> pcpu -> completed:int -> limit:int -> f:(objekt -> unit) -> int
(** Batch form of {!latent_cache_pop_ripe}: pop up to [limit] ripe
    objects oldest-first, apply [f] to each, return the count.
    Allocation-free (the merge hot path). *)

val latent_cache_pop_newest : cache -> pcpu -> objekt option
(** Pop the newest latent-cache object (pre-flush eviction order). *)

val slab_harvest_ripe : slab -> completed:int -> int
(** Move every ripe latent object of [slab] back to its freelist; returns
    the count. O(ripe): whole cookie buckets pop off the latent queue
    without touching objects waiting on later grace periods. Caller
    relocates. *)

val put_free_obj : slab -> objekt -> unit
(** Return an object (from an object cache) to its slab freelist. *)

(** {1 Slab lifecycle} *)

val grow : cache -> Sim.Machine.cpu -> slab option
(** Allocate pages for a new slab on [cpu]'s node, link it on the free
    list, charge grow cost. On buddy failure runs the pressure OOM chain
    once and retries; with [env.grow_retry] set, transient (injected)
    failures additionally retry with bounded exponential backoff, each
    attempt counted and traced as [Grow_retry]. [None] if memory is truly
    exhausted (or retries ran out). *)

val destroy_slab : cache -> slab -> unit
(** Unlink a {!truly_free} slab and return its pages. *)

val shrink_node : ?keep:int -> cache -> Sim.Machine.cpu -> node -> int
(** Destroy truly-free slabs while the node holds more than the policy's
    free target ([keep] overrides it; pass [~keep:0] for the emergency
    eager shrink under Critical pressure); returns how many were
    destroyed. At most a few slabs per call, like kernel shrinkers. *)

(** {1 Bulk cache <-> node transfers} *)

val refill_from_node :
  cache ->
  Sim.Machine.cpu ->
  want:int ->
  select:(node -> slab option) ->
  int
(** Move up to [want] free objects from node slabs into [cpu]'s object
    cache under one lock acquisition, using [select] to choose each source
    slab (this is where SLUB and Prudence differ). Returns objects moved
    and counts one refill operation if any moved. *)

val flush_to_node : cache -> Sim.Machine.cpu -> count:int -> unit
(** Move [count] objects from [cpu]'s object cache back to their slabs
    under one lock acquisition, then run the shrink check. Counts one
    flush operation if any moved. *)

(** {1 Selection policies} *)

val select_slub : node -> slab option
(** SLUB's choice: first partial slab, else first free slab. *)

val select_prudence : scan_depth:int -> node -> slab option
(** Prudence's choice (§4.2 "reduces total fragmentation"): among the
    first [scan_depth] partial slabs, prefer the one minimizing future
    fragmentation — fewest latent objects, then most free objects; skips
    slabs whose allocated objects are mostly deferred; falls back to free
    slabs, then to any scanned partial slab. *)

(** {1 Consistency} *)

val check_invariants : cache -> unit
(** Assert the full accounting story: per-slab
    [free + latent + in_flight = capacity], list membership matches
    [on_list], object states match their container, global counts add up.
    For tests. The O(objects) sweep is gated on [env.debug_checks]
    (default on; benchmarks disable it). *)

val pp_cache : Format.formatter -> cache -> unit

(** {1 Per-CPU policy state helpers}

    The pcpu record is private; Prudence mutates its policy fields through
    these. *)

val set_preflush_scheduled : pcpu -> bool -> unit
val note_alloc : pcpu -> unit
(** Bump the per-CPU allocation-rate counter (pre-flush policy input). *)

val note_release : pcpu -> unit
(** Bump the per-CPU free/deferred-free rate counter. *)

val decay_rates : pcpu -> unit
(** Halve both rate counters; called once per grace period so the rates
    reflect "recent few grace period intervals" (§4.2). *)
