(* Latent-object bookkeeping bucketed by grace-period cookie.

   Before this structure existed, a slab's latent objects lived on one
   list and every grace-period completion ran [List.partition] over all
   of them — O(latent) per harvest even when nothing was ripe. Bucketing
   by cookie (the epoch-bag layout of DEBRA-style reclaimers) makes a
   harvest pop whole ripe buckets off the front: O(ripe objects +
   buckets visited), never touching unripe cookies.

   Two variants:

   - {!t}: arbitrary cookie arrival order (slab latent lists receive
     objects demoted from per-CPU latent caches, whose cookies
     interleave). Buckets are kept sorted ascending by cookie; each
     element carries an insertion sequence number so a harvest can
     reproduce, exactly, the newest-first order the old single list
     produced — object identity decides cold-touch costs downstream, so
     reclaim order must not drift.

   - {!Fifo}: cookie-monotone arrival (per-CPU latent caches, filled in
     snapshot order). The payload deque is untouched; a run-length
     index of (cookie, count) pairs rides along so ripeness queries
     — "how many of these are past the horizon?" — cost O(distinct
     cookies), not O(objects). *)

(* A bucket's payload lives in a pair of parallel arrays in insertion
   (ascending-sequence) order: no per-element box, and the newest-first
   harvest is a backwards scan / array-indexed merge. *)
type 'a bucket = {
  cookie : int;
  mutable vals : 'a array;  (* insertion order; capacity doubles *)
  mutable seqs : int array;  (* parallel: global insertion sequence *)
  mutable bn : int;
  mutable next : 'a bucket option;  (* towards newer cookies *)
}

(* Buckets form a mutable chain ascending by cookie, with both ends at
   hand: pushes land on [newest] (cookies are issued monotonically, so
   the common case is append), harvests pop from [oldest]. *)
type 'a t = {
  mutable oldest : 'a bucket option;
  mutable newest : 'a bucket option;
  mutable next_seq : int;
  mutable len : int;
  mutable work : int;
}

let create () =
  { oldest = None; newest = None; next_seq = 0; len = 0; work = 0 }

let length t = t.len
let work t = t.work

let new_bucket ~cookie ~seq ~next v =
  let vals = Array.make 4 v in
  let seqs = Array.make 4 0 in
  seqs.(0) <- seq;
  { cookie; vals; seqs; bn = 1; next }

let bucket_add b ~seq v =
  let cap = Array.length b.vals in
  if b.bn = cap then begin
    let nv = Array.make (2 * cap) v and ns = Array.make (2 * cap) 0 in
    Array.blit b.vals 0 nv 0 cap;
    Array.blit b.seqs 0 ns 0 cap;
    b.vals <- nv;
    b.seqs <- ns
  end;
  b.vals.(b.bn) <- v;
  b.seqs.(b.bn) <- seq;
  b.bn <- b.bn + 1

let push t ~cookie v =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  match t.newest with
  | Some nb when nb.cookie = cookie -> bucket_add nb ~seq v
  | Some nb when cookie > nb.cookie ->
      let b = new_bucket ~cookie ~seq ~next:None v in
      nb.next <- Some b;
      t.newest <- Some b
  | None ->
      let b = new_bucket ~cookie ~seq ~next:None v in
      t.oldest <- Some b;
      t.newest <- Some b
  | Some _ ->
      (* Cookie older than the newest bucket (demotions from different
         CPUs interleave): walk from the old end. The insertion point is
         strictly before [newest], so the walk cannot fall off the
         chain. *)
      let rec go prev cur =
        match cur with
        | Some b when b.cookie = cookie -> bucket_add b ~seq v
        | Some b when b.cookie > cookie ->
            let nb = new_bucket ~cookie ~seq ~next:cur v in
            (match prev with
            | None -> t.oldest <- Some nb
            | Some p -> p.next <- Some nb)
        | Some b -> go (Some b) b.next
        | None -> assert false
      in
      go None t.oldest

let harvest t ~completed ~f =
  let rec pop_buckets acc n =
    match t.oldest with
    | Some b when b.cookie <= completed ->
        t.oldest <- b.next;
        (match b.next with None -> t.newest <- None | Some _ -> ());
        t.work <- t.work + 1;
        pop_buckets (b :: acc) (n + b.bn)
    | _ -> (acc, n)
  in
  let popped, n = pop_buckets [] 0 in
  t.len <- t.len - n;
  t.work <- t.work + n;
  (match popped with
  | [] -> ()
  | [ b ] ->
      for i = b.bn - 1 downto 0 do
        f b.vals.(i)
      done
  | popped ->
      (* Emit in global newest-first (descending sequence) order —
         exactly what partitioning the old single list returned. Each
         bucket is ascending by construction, so walk the tails: a
         k-way merge with tiny k, streamed straight into [f]. *)
      let bs = Array.of_list popped in
      let k = Array.length bs in
      let idx = Array.map (fun b -> b.bn - 1) bs in
      let remaining = ref n in
      let best = ref (-1) and best_seq = ref min_int in
      while !remaining > 0 do
        best := -1;
        best_seq := min_int;
        for i = 0 to k - 1 do
          let j = idx.(i) in
          if j >= 0 && (Array.unsafe_get bs.(i).seqs j) > !best_seq then begin
            best := i;
            best_seq := bs.(i).seqs.(j)
          end
        done;
        let b = bs.(!best) in
        f b.vals.(idx.(!best));
        idx.(!best) <- idx.(!best) - 1;
        decr remaining
      done);
  n

let iter f t =
  let rec go = function
    | None -> ()
    | Some b ->
        for i = b.bn - 1 downto 0 do
          f b.vals.(i)
        done;
        go b.next
  in
  go t.oldest

module Fifo = struct
  (* Ring buffers throughout: the payload ring plus a parallel pair of
     int rings forming the run-length cookie index. Pushes and pops are
     allocation-free (the free/alloc cycle of every deferred object goes
     through here, so each box would be paid hundreds of thousands of
     times per run). Popped payload slots are left holding their old
     element; slab objects live for the whole simulation, so the stale
     reference pins nothing the GC could otherwise reclaim. *)
  type 'a t = {
    mutable arr : 'a array;  (* capacity a power of two; [||] until used *)
    mutable head : int;  (* index of the oldest element *)
    mutable n : int;
    mutable rc : int array;  (* run cookies, ring ascending front-to-back *)
    mutable rn : int array;  (* run lengths, parallel to [rc] *)
    mutable rhead : int;
    mutable rcount : int;
  }

  let create () =
    {
      arr = [||];
      head = 0;
      n = 0;
      rc = Array.make 8 0;
      rn = Array.make 8 0;
      rhead = 0;
      rcount = 0;
    }

  let length t = t.n

  let grow_items t x =
    let cap = Array.length t.arr in
    if cap = 0 then begin
      t.arr <- Array.make 16 x;
      t.head <- 0
    end
    else if t.n = cap then begin
      let b = Array.make (2 * cap) x in
      for i = 0 to t.n - 1 do
        b.(i) <- t.arr.((t.head + i) land (cap - 1))
      done;
      t.arr <- b;
      t.head <- 0
    end

  let grow_runs t =
    let cap = Array.length t.rc in
    if t.rcount = cap then begin
      let rc = Array.make (2 * cap) 0 and rn = Array.make (2 * cap) 0 in
      for i = 0 to t.rcount - 1 do
        let j = (t.rhead + i) land (cap - 1) in
        rc.(i) <- t.rc.(j);
        rn.(i) <- t.rn.(j)
      done;
      t.rc <- rc;
      t.rn <- rn;
      t.rhead <- 0
    end

  let push_back t ~cookie v =
    grow_items t v;
    t.arr.((t.head + t.n) land (Array.length t.arr - 1)) <- v;
    t.n <- t.n + 1;
    let rmask = Array.length t.rc - 1 in
    if t.rcount > 0 then begin
      let last = (t.rhead + t.rcount - 1) land rmask in
      if t.rc.(last) = cookie then t.rn.(last) <- t.rn.(last) + 1
      else begin
        assert (cookie > t.rc.(last));
        grow_runs t;
        let rmask = Array.length t.rc - 1 in
        let slot = (t.rhead + t.rcount) land rmask in
        t.rc.(slot) <- cookie;
        t.rn.(slot) <- 1;
        t.rcount <- t.rcount + 1
      end
    end
    else begin
      t.rc.(t.rhead) <- cookie;
      t.rn.(t.rhead) <- 1;
      t.rcount <- 1
    end

  let pop_front_ripe t ~completed =
    if t.rcount = 0 || t.rc.(t.rhead) > completed then None
    else begin
      t.rn.(t.rhead) <- t.rn.(t.rhead) - 1;
      if t.rn.(t.rhead) = 0 then begin
        t.rhead <- (t.rhead + 1) land (Array.length t.rc - 1);
        t.rcount <- t.rcount - 1
      end;
      let v = t.arr.(t.head) in
      t.head <- (t.head + 1) land (Array.length t.arr - 1);
      t.n <- t.n - 1;
      Some v
    end

  let pop_back t =
    if t.n = 0 then None
    else begin
      let v = t.arr.((t.head + t.n - 1) land (Array.length t.arr - 1)) in
      t.n <- t.n - 1;
      let last = (t.rhead + t.rcount - 1) land (Array.length t.rc - 1) in
      t.rn.(last) <- t.rn.(last) - 1;
      if t.rn.(last) = 0 then t.rcount <- t.rcount - 1;
      Some v
    end

  (* Move up to [limit] ripe elements out, oldest first, a whole run at a
     time: the merge loop's per-object [Some] and run peeks disappear. *)
  let merge_ripe t ~completed ~limit ~f =
    let moved = ref 0 in
    let continue = ref true in
    while
      !continue && !moved < limit && t.rcount > 0
      && t.rc.(t.rhead) <= completed
    do
      let k = min t.rn.(t.rhead) (limit - !moved) in
      let mask = Array.length t.arr - 1 in
      for _ = 1 to k do
        f t.arr.(t.head);
        t.head <- (t.head + 1) land mask
      done;
      t.n <- t.n - k;
      t.rn.(t.rhead) <- t.rn.(t.rhead) - k;
      if t.rn.(t.rhead) = 0 then begin
        t.rhead <- (t.rhead + 1) land (Array.length t.rc - 1);
        t.rcount <- t.rcount - 1
      end
      else continue := false;
      moved := !moved + k
    done;
    !moved

  let ripe_count t ~completed =
    (* Cookies are monotone front to back, so the matching runs are a
       prefix; counting them all is still O(distinct cookies). *)
    let rmask = Array.length t.rc - 1 in
    let n = ref 0 in
    for i = 0 to t.rcount - 1 do
      let j = (t.rhead + i) land rmask in
      if t.rc.(j) <= completed then n := !n + t.rn.(j)
    done;
    !n

  let iter f t =
    let mask = Array.length t.arr - 1 in
    for i = 0 to t.n - 1 do
      f t.arr.((t.head + i) land mask)
    done
end
