(** Latent-object queues bucketed by grace-period cookie.

    The epoch-bag layout: deferred objects waiting on the same grace
    period share a bucket, so a completed grace period is harvested by
    popping whole ripe buckets — O(ripe) work, never a walk over
    objects still waiting on later cookies. See the implementation
    header for the ordering contract. *)

type 'a t
(** Bucketed multiset accepting cookies in any order (slab latent
    lists). *)

val create : unit -> 'a t
val length : 'a t -> int

val push : 'a t -> cookie:int -> 'a -> unit
(** Add an element waiting on grace period [cookie]. O(1) when [cookie]
    is the newest (the monotone common case); otherwise O(buckets with a
    smaller cookie). *)

val harvest : 'a t -> completed:int -> f:('a -> unit) -> int
(** Remove every element whose cookie is [<= completed], apply [f] to
    each newest-first (the order a [List.partition] over the old
    intrusive list produced), and return their count, already
    maintained — no [List.length], no intermediate list. Costs O(ripe
    elements + ripe buckets); unripe buckets are not visited. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Every element, bucket by bucket (ascending cookie, newest first
    within a bucket). For audits and invariant checks. *)

val work : 'a t -> int
(** Instrumentation: total elements + bucket headers touched by
    [harvest] so far. Lets tests prove harvesting one cookie does not
    traverse the others. *)

(** Cookie-monotone variant for per-CPU latent caches: payloads stay in
    one deque (push newest at the back, merge ripe from the front,
    pre-flush evicts from the back), and a run-length cookie index
    answers ripeness queries in O(distinct cookies). *)
module Fifo : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int

  val push_back : 'a t -> cookie:int -> 'a -> unit
  (** [cookie] must be >= every previously pushed cookie (asserted);
      grace-period snapshots are monotone per CPU. *)

  val pop_front_ripe : 'a t -> completed:int -> 'a option
  (** The oldest element, if its grace period has completed. *)

  val merge_ripe :
    'a t -> completed:int -> limit:int -> f:('a -> unit) -> int
  (** Pop up to [limit] ripe elements, oldest first, applying [f] to
      each; returns how many moved. Equivalent to a [pop_front_ripe]
      loop but allocation-free (no per-element option, runs consumed in
      batch). *)

  val pop_back : 'a t -> 'a option
  (** The newest element (pre-flush eviction order). *)

  val ripe_count : 'a t -> completed:int -> int
  (** How many elements are past the horizon — O(distinct cookies),
      replacing the former O(length) deque walk on the refill path. *)

  val iter : ('a -> unit) -> 'a t -> unit
  (** Front (oldest) to back. *)
end
