type t =
  | Defer_to_request
  | Request_to_start
  | Qs_collection
  | Complete_to_harvest
  | Harvest_to_reuse

let all =
  [
    Defer_to_request;
    Request_to_start;
    Qs_collection;
    Complete_to_harvest;
    Harvest_to_reuse;
  ]

let count = 5

let index = function
  | Defer_to_request -> 0
  | Request_to_start -> 1
  | Qs_collection -> 2
  | Complete_to_harvest -> 3
  | Harvest_to_reuse -> 4

let name = function
  | Defer_to_request -> "defer-request"
  | Request_to_start -> "request-start"
  | Qs_collection -> "qs-collection"
  | Complete_to_harvest -> "complete-harvest"
  | Harvest_to_reuse -> "harvest-reuse"

let of_name = function
  | "defer-request" -> Some Defer_to_request
  | "request-start" -> Some Request_to_start
  | "qs-collection" -> Some Qs_collection
  | "complete-harvest" -> Some Complete_to_harvest
  | "harvest-reuse" -> Some Harvest_to_reuse
  | _ -> None

let describe = function
  | Defer_to_request ->
      "object deferred until grace-period detection is requested"
  | Request_to_start ->
      "detection requested until the detection cycle begins (GP start / \
       epoch-advance attempt / batch seal)"
  | Qs_collection ->
      "detection cycle start until the last holdout CPU reports (QS sweep / \
       epoch scan / batch-ref settling)"
  | Complete_to_harvest ->
      "grace period complete until the object is harvested into a free pool"
  | Harvest_to_reuse -> "free pool until the memory is handed to a new owner"
