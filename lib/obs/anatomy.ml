(* The grace-period anatomy tracer + object-lineage flight recorder.

   One instance observes a whole environment through taps that are pure
   observation — they read the virtual clock and mutate only their own
   state, never consume virtual time, and never schedule events — so a
   run with the recorder armed is byte-identical (in every deterministic
   counter) to one without. The off switch is the Trace.null /
   Prof.null pattern: {!null} has [enabled = false] and every entry
   point is one load-and-branch.

   Phase attribution: each reclamation token (GP number / epoch / batch
   id) gets a record stamped at defer, detection request, detection
   start, and completion; each deferred object gets a lineage stamped at
   defer, harvest (free-pool entry) and reuse. At reuse the two are
   joined into the five-phase decomposition of {!Phase}, with each edge
   clamped to be monotone so per-object phase samples always sum exactly
   to the object's total defer->reuse latency. *)

type gp_record = {
  cookie : int;
  mutable defer_ns : int;  (* first defer issuing this token; -1 none *)
  mutable request_ns : int;  (* first detection request at/after issue *)
  mutable start_ns : int;  (* detection cycle actually began *)
  mutable complete_ns : int;  (* truthful frontier passed the token *)
  mutable first_qs_cpu : int;
  mutable first_qs_ns : int;
  mutable holdout_cpu : int;  (* last CPU to report before completion *)
  mutable holdout_ns : int;
  mutable objects : int;  (* objects deferred under this token *)
}

type lineage = {
  oid : int;
  l_cookie : int;
  l_deferred_ns : int;
  mutable l_pooled_ns : int;  (* harvested into a free pool; -1 pending *)
  mutable l_reused_ns : int;  (* handed to a new owner; -1 pending *)
}

type t = {
  enabled : bool;
  scheme : string;
  now : unit -> int;
  hists : Trace.Hist.t array;  (* one per Phase.t *)
  total : Trace.Hist.t;  (* defer->reuse, the sum identity's right side *)
  tokens : (int, gp_record) Hashtbl.t;
  mutable open_toks : gp_record list;  (* complete_ns < 0, newest first *)
  mutable awaiting_request : gp_record list;  (* request_ns < 0 *)
  completed_log : gp_record Trace.Ring.t;  (* completed, bounded *)
  lineages : (int, lineage) Hashtbl.t;  (* outstanding deferred objects *)
  recent_lineage : lineage Trace.Ring.t;  (* closed lineages, bounded *)
  mutable frontier : int;  (* truthful frontier last observed *)
  mutable defers : int;
  mutable reuses : int;
  mutable dropped : int;  (* reuses whose token record was missing *)
}

let completed_log_capacity = 1_024
let recent_lineage_capacity = 4_096

let make ~enabled ~scheme ~now =
  {
    enabled;
    scheme;
    now;
    hists = Array.init Phase.count (fun _ -> Trace.Hist.create ());
    total = Trace.Hist.create ();
    tokens = Hashtbl.create (if enabled then 256 else 1);
    open_toks = [];
    awaiting_request = [];
    completed_log = Trace.Ring.create ~capacity:completed_log_capacity;
    lineages = Hashtbl.create (if enabled then 256 else 1);
    recent_lineage = Trace.Ring.create ~capacity:recent_lineage_capacity;
    frontier = 0;
    defers = 0;
    reuses = 0;
    dropped = 0;
  }

let create ~scheme ~now () = make ~enabled:true ~scheme ~now
let null = make ~enabled:false ~scheme:"null" ~now:(fun () -> 0)
let enabled t = t.enabled
let scheme t = t.scheme

(* {1 Observation entry points} *)

let note_defer t ~oid ~cookie =
  if t.enabled then begin
    let now = t.now () in
    t.defers <- t.defers + 1;
    (match Hashtbl.find_opt t.tokens cookie with
    | Some r -> r.objects <- r.objects + 1
    | None ->
        let r =
          {
            cookie;
            defer_ns = now;
            request_ns = -1;
            start_ns = -1;
            complete_ns = -1;
            first_qs_cpu = -1;
            first_qs_ns = -1;
            holdout_cpu = -1;
            holdout_ns = -1;
            objects = 1;
          }
        in
        Hashtbl.replace t.tokens cookie r;
        if cookie <= t.frontier then begin
          (* Token already ripe at defer (frontier-corrupting mutants or
             an instant scheme): complete immediately, no open window. *)
          r.complete_ns <- now;
          Trace.Ring.push t.completed_log r
        end
        else begin
          t.open_toks <- r :: t.open_toks;
          t.awaiting_request <- r :: t.awaiting_request
        end);
    Hashtbl.replace t.lineages oid
      { oid; l_cookie = cookie; l_deferred_ns = now; l_pooled_ns = -1;
        l_reused_ns = -1 }
  end

let note_request t =
  if t.enabled && t.awaiting_request <> [] then begin
    let now = t.now () in
    List.iter
      (fun r -> if r.request_ns < 0 then r.request_ns <- now)
      t.awaiting_request;
    t.awaiting_request <- []
  end

(* A detection cycle began for one specific token (RCU GP number,
   Hyaline batch seal). *)
let note_start t ~token =
  if t.enabled then
    match Hashtbl.find_opt t.tokens token with
    | Some r when r.start_ns < 0 && r.complete_ns < 0 ->
        r.start_ns <- t.now ()
    | Some _ | None -> ()

(* A detection cycle began for every open token at once (EBR: an
   advancement attempt scans on behalf of all outstanding epochs). *)
let note_start_open t =
  if t.enabled then begin
    let now = t.now () in
    List.iter
      (fun r -> if r.start_ns < 0 then r.start_ns <- now)
      t.open_toks
  end

(* [cpu] reported progress for every started open token: a QS report, a
   blocking stale announcement, or a batch-ref decrement. The last
   report standing when the token completes is its holdout. *)
let note_qs t ~cpu =
  if t.enabled then begin
    let now = t.now () in
    List.iter
      (fun r ->
        if r.start_ns >= 0 then begin
          if r.first_qs_ns < 0 then begin
            r.first_qs_cpu <- cpu;
            r.first_qs_ns <- now
          end;
          r.holdout_cpu <- cpu;
          r.holdout_ns <- now
        end)
      t.open_toks
  end

let note_complete t ~frontier =
  if t.enabled && frontier > t.frontier then begin
    t.frontier <- frontier;
    let now = t.now () in
    t.open_toks <-
      List.filter
        (fun r ->
          if r.cookie <= frontier then begin
            r.complete_ns <- now;
            Trace.Ring.push t.completed_log r;
            false
          end
          else true)
        t.open_toks;
    t.awaiting_request <-
      List.filter (fun r -> r.complete_ns < 0) t.awaiting_request
  end

(* Clamped five-edge decomposition: a missing stamp inherits the previous
   edge (zero-width phase), so the five samples sum exactly to total. *)
let record_phases t (ln : lineage) ~reused_ns =
  match Hashtbl.find_opt t.tokens ln.l_cookie with
  | None -> t.dropped <- t.dropped + 1
  | Some r ->
      let lift prev v = if v < 0 then prev else max prev v in
      let e0 = ln.l_deferred_ns in
      let e1 = lift e0 r.request_ns in
      let e2 = lift e1 r.start_ns in
      let e3 = lift e2 r.complete_ns in
      let e4 = lift e3 ln.l_pooled_ns in
      let e5 = lift e4 reused_ns in
      Trace.Hist.record t.hists.(Phase.(index Defer_to_request)) (e1 - e0);
      Trace.Hist.record t.hists.(Phase.(index Request_to_start)) (e2 - e1);
      Trace.Hist.record t.hists.(Phase.(index Qs_collection)) (e3 - e2);
      Trace.Hist.record t.hists.(Phase.(index Complete_to_harvest)) (e4 - e3);
      Trace.Hist.record t.hists.(Phase.(index Harvest_to_reuse)) (e5 - e4);
      Trace.Hist.record t.total (e5 - e0)

let note_pool t ~oid =
  if t.enabled then
    match Hashtbl.find_opt t.lineages oid with
    | Some ln when ln.l_pooled_ns < 0 -> ln.l_pooled_ns <- t.now ()
    | Some _ | None -> ()

let note_alloc t ~oid =
  if t.enabled then
    match Hashtbl.find_opt t.lineages oid with
    | None -> ()
    | Some ln ->
        let now = t.now () in
        ln.l_reused_ns <- now;
        t.reuses <- t.reuses + 1;
        record_phases t ln ~reused_ns:now;
        Hashtbl.remove t.lineages oid;
        Trace.Ring.push t.recent_lineage ln

(* The object died with its page (never reused): close the lineage
   without a reuse edge so the bundle can still show it. *)
let note_page_release t ~oid =
  if t.enabled then
    match Hashtbl.find_opt t.lineages oid with
    | None -> ()
    | Some ln ->
        Hashtbl.remove t.lineages oid;
        Trace.Ring.push t.recent_lineage ln

(* {1 Wiring} *)

let probe t =
  {
    Slab.Frame.on_alloc = (fun ~oid -> note_alloc t ~oid);
    on_free = (fun ~oid:_ -> ());
    on_defer = (fun ~oid ~cookie -> note_defer t ~oid ~cookie);
    on_pool = (fun ~oid ~cookie:_ -> note_pool t ~oid);
    on_page_release =
      (fun ~oids ->
        List.iter (fun (oid, _) -> note_page_release t ~oid) oids);
  }

let instrument_smr t (smr : Slab.Smr.t) =
  if not t.enabled then smr
  else
    {
      smr with
      Slab.Smr.request =
        (fun () ->
          note_request t;
          smr.Slab.Smr.request ());
    }

let observe_frontier t (smr : Slab.Smr.t) =
  if t.enabled then
    smr.Slab.Smr.on_ripen (fun f -> note_complete t ~frontier:f)

let install_rcu t rcu =
  if t.enabled then
    Rcu.set_obs rcu
      (Some
         {
           Rcu.obs_request = (fun () -> note_request t);
           obs_start = (fun ~seq -> note_start t ~token:seq);
           obs_qs = (fun ~cpu ~remaining:_ -> note_qs t ~cpu);
         })

let install_ebr t e =
  if t.enabled then
    Slab.Ebr.set_obs e
      (Some
         {
           Slab.Ebr.obs_attempt = (fun () -> note_start_open t);
           obs_blocked = (fun ~cpu -> note_qs t ~cpu);
         })

let install_hyaline t h =
  if t.enabled then
    Slab.Hyaline.set_obs h
      (Some
         {
           Slab.Hyaline.obs_seal =
             (fun ~batch ~refs:_ -> note_start t ~token:batch);
           obs_unref = (fun ~batch:_ ~cpu ~refs:_ -> note_qs t ~cpu);
         })

(* {1 Results} *)

let phase_hist t p = t.hists.(Phase.index p)
let total_hist t = t.total
let defers t = t.defers
let reuses t = t.reuses
let dropped t = t.dropped
let frontier t = t.frontier

let find_gp t cookie = Hashtbl.find_opt t.tokens cookie

let completed_gps t n = Trace.Ring.recent t.completed_log n

(* Worst completed grace period by detection-cycle span (start ->
   complete): the one whose holdout CPU cost the most. *)
let worst_gp t =
  let best = ref None in
  Trace.Ring.iter t.completed_log (fun r ->
      if r.start_ns >= 0 && r.complete_ns >= 0 then
        let span = r.complete_ns - r.start_ns in
        match !best with
        | Some (_, s) when s >= span -> ()
        | _ -> best := Some (r, span));
  Option.map fst !best

let lineage_of t ~oid =
  match Hashtbl.find_opt t.lineages oid with
  | Some ln -> Some ln
  | None ->
      let found = ref None in
      (* Newest first: the most recent incarnation of a reused oid. *)
      Trace.Ring.iter_rev t.recent_lineage (fun ln ->
          if !found = None && ln.oid = oid then found := Some ln);
      !found

let recent_lineages t n = Trace.Ring.recent t.recent_lineage n
