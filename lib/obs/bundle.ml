(* Forensic bundles: self-contained NDJSON post-mortems emitted when an
   oracle fires or a chaos mitigation triggers.

   One bundle is a sequence of JSON lines, version-tagged
   ["prudence-bundle/1"]: a header (reason, scheme, capture time, exact
   replay command), the violations, the flight-recorder window (newest
   events per CPU), the offending object lineages plus a window of
   recent ones, the anatomy of the implicated grace periods, and a full
   metric snapshot. Every timestamp is virtual, and the JSON printer is
   deterministic, so the same seed and the same violation produce a
   byte-identical bundle — a bundle is a reproducible artifact, not a
   log. *)

module J = Metrics.Json

let version = "prudence-bundle/1"
let default_window = 128

let intn v = if v < 0 then J.Null else J.Int v

let event_line (e : Trace.Event.t) =
  J.Obj
    [
      ("type", J.Str "event");
      ("cpu", J.Int e.Trace.Event.cpu);
      ("time_ns", J.Int e.time);
      ("kind", J.Str (Trace.Event.kind_name e.kind));
      ("label", if e.label = "" then J.Null else J.Str e.label);
      ("arg", J.Int e.arg);
    ]

let lineage_line ~offender ~detail (ln : Anatomy.lineage) =
  J.Obj
    [
      ("type", J.Str "lineage");
      ("oid", J.Int ln.Anatomy.oid);
      ("cookie", J.Int ln.l_cookie);
      ("offender", J.Bool offender);
      ("detail", (match detail with None -> J.Null | Some d -> J.Str d));
      ("deferred_ns", J.Int ln.l_deferred_ns);
      ("pooled_ns", intn ln.l_pooled_ns);
      ("reused_ns", intn ln.l_reused_ns);
    ]

let gp_line ~tag (r : Anatomy.gp_record) =
  J.Obj
    [
      ("type", J.Str "gp");
      ("cookie", J.Int r.Anatomy.cookie);
      ("tag", J.Str tag);
      ("defer_ns", intn r.defer_ns);
      ("request_ns", intn r.request_ns);
      ("start_ns", intn r.start_ns);
      ("complete_ns", intn r.complete_ns);
      ("first_qs_cpu", intn r.first_qs_cpu);
      ("first_qs_ns", intn r.first_qs_ns);
      ("holdout_cpu", intn r.holdout_cpu);
      ("holdout_ns", intn r.holdout_ns);
      ("objects", J.Int r.objects);
    ]

(* The bundle as a list of JSON lines. [offenders] carries the objects
   the oracle convicted, with the human-readable verdicts; implicated
   grace periods are derived from the offenders' cookies. *)
let lines ?(window = default_window) ~reason ~replay ~scheme ~at_ns ~tracer
    ~anatomy ~offenders ~violations ~metrics () =
  let header =
    J.Obj
      [
        ("type", J.Str "bundle");
        ("version", J.Str version);
        ("reason", J.Str reason);
        ("scheme", J.Str scheme);
        ("at_ns", J.Int at_ns);
        ("replay", J.Str replay);
        ("cpus", J.Int (Trace.ncpus tracer));
        ("window", J.Int window);
        ("defers", J.Int (Anatomy.defers anatomy));
        ("reuses", J.Int (Anatomy.reuses anatomy));
        ("events_retained", J.Int (Trace.total_events tracer));
        ("events_dropped", J.Int (Trace.total_dropped tracer));
      ]
  in
  let violation_lines =
    List.map
      (fun d -> J.Obj [ ("type", J.Str "violation"); ("detail", J.Str d) ])
      violations
  in
  let event_lines =
    let cpus = Trace.ncpus tracer in
    let per cpu =
      List.map event_line (Trace.recent_events tracer ~cpu window)
    in
    List.concat_map per (List.init cpus (fun i -> i) @ [ -1 ])
  in
  let offender_lines =
    List.filter_map
      (fun (oid, detail) ->
        match Anatomy.lineage_of anatomy ~oid with
        | Some ln -> Some (lineage_line ~offender:true ~detail:(Some detail) ln)
        | None ->
            (* Conviction without a lineage (recorder window overrun or an
               object the recorder never saw deferred): keep the verdict. *)
            Some
              (J.Obj
                 [
                   ("type", J.Str "lineage");
                   ("oid", J.Int oid);
                   ("cookie", J.Null);
                   ("offender", J.Bool true);
                   ("detail", J.Str detail);
                 ]))
      offenders
  in
  let offender_oids = List.map fst offenders in
  let recent_lines =
    List.filter_map
      (fun ln ->
        if List.mem ln.Anatomy.oid offender_oids then None
        else Some (lineage_line ~offender:false ~detail:None ln))
      (Anatomy.recent_lineages anatomy 32)
  in
  let implicated =
    List.sort_uniq compare
      (List.filter_map
         (fun (oid, _) ->
           Option.map
             (fun ln -> ln.Anatomy.l_cookie)
             (Anatomy.lineage_of anatomy ~oid))
         offenders)
  in
  let gp_lines =
    let impl =
      List.filter_map
        (fun cookie ->
          Option.map (gp_line ~tag:"implicated")
            (Anatomy.find_gp anatomy cookie))
        implicated
    in
    match Anatomy.worst_gp anatomy with
    | Some r when not (List.mem r.Anatomy.cookie implicated) ->
        impl @ [ gp_line ~tag:"worst" r ]
    | Some _ | None -> impl
  in
  let metric_lines =
    List.map
      (fun (name, v) ->
        J.Obj
          [ ("type", J.Str "metric"); ("name", J.Str name); ("value", J.Float v) ])
      metrics
  in
  let trailer =
    J.Obj
      [
        ("type", J.Str "end");
        ("violations", J.Int (List.length violation_lines));
        ("events", J.Int (List.length event_lines));
        ("lineages", J.Int (List.length offender_lines + List.length recent_lines));
        ("gps", J.Int (List.length gp_lines));
        ("metrics", J.Int (List.length metric_lines));
      ]
  in
  (header :: violation_lines)
  @ event_lines @ offender_lines @ recent_lines @ gp_lines @ metric_lines
  @ [ trailer ]

let to_string lns =
  String.concat "" (List.map (fun l -> J.to_string l ^ "\n") lns)

let write ?window ~path ~reason ~replay ~scheme ~at_ns ~tracer ~anatomy
    ~offenders ~violations ~metrics () =
  let body =
    to_string
      (lines ?window ~reason ~replay ~scheme ~at_ns ~tracer ~anatomy
         ~offenders ~violations ~metrics ())
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc

(* {1 Parsing and the postmortem timeline view} *)

let parse content =
  let lns =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' content)
  in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match J.of_string l with
        | Ok j -> go (j :: acc) (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" (n + 1) e))
  in
  match go [] 0 lns with
  | Error _ as e -> e
  | Ok [] -> Error "empty bundle"
  | Ok (header :: _ as all) -> (
      match
        (J.member "type" header, J.member "version" header)
      with
      | Some (J.Str "bundle"), Some (J.Str v) when v = version -> Ok all
      | Some (J.Str "bundle"), Some (J.Str v) ->
          Error (Printf.sprintf "unsupported bundle version %S" v)
      | _ -> Error "not a prudence forensic bundle (missing header line)")

let str_field key j = Option.bind (J.member key j) J.to_string_opt
let int_field key j = Option.bind (J.member key j) J.to_int_opt
let typ j = Option.value ~default:"" (str_field "type" j)

let pp_opt_ns = function None -> "(pending)" | Some v -> Printf.sprintf "%d ns" v

let render_parsed lns =
  let b = Buffer.create 4_096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let header = List.hd lns in
  let field ?(default = "?") k = Option.value ~default (str_field k header) in
  let ifield k = Option.value ~default:0 (int_field k header) in
  pf "== forensic bundle %s ==\n" (field "version");
  pf "reason:   %s\n" (field "reason");
  pf "scheme:   %s\n" (field "scheme");
  pf "captured: %d ns (events retained %d, dropped %d; %d defers, %d reuses)\n"
    (ifield "at_ns") (ifield "events_retained") (ifield "events_dropped")
    (ifield "defers") (ifield "reuses");
  pf "replay:   %s\n" (field "replay");
  let of_type t = List.filter (fun j -> typ j = t) lns in
  (* violations *)
  let violations = of_type "violation" in
  pf "\nviolations (%d):\n" (List.length violations);
  List.iter
    (fun j -> pf "  - %s\n" (Option.value ~default:"?" (str_field "detail" j)))
    violations;
  (* per-CPU timeline *)
  let events = of_type "event" in
  pf "\ntimeline (newest %d events per cpu):\n" (ifield "window");
  let cpus = ifield "cpus" in
  List.iter
    (fun cpu ->
      let mine =
        List.filter (fun j -> int_field "cpu" j = Some cpu) events
      in
      if mine <> [] then begin
        if cpu < 0 then pf "  global:\n" else pf "  cpu %d:\n" cpu;
        List.iter
          (fun j ->
            pf "    [%12d ns] %-16s%s arg=%d\n"
              (Option.value ~default:0 (int_field "time_ns" j))
              (Option.value ~default:"?" (str_field "kind" j))
              (match str_field "label" j with
              | Some l -> " [" ^ l ^ "]"
              | None -> "")
              (Option.value ~default:0 (int_field "arg" j)))
          mine
      end)
    (List.init cpus (fun i -> i) @ [ -1 ]);
  (* lineages *)
  let lineages = of_type "lineage" in
  pf "\nobject lineages (%d, offenders first):\n" (List.length lineages);
  List.iter
    (fun j ->
      let offender =
        match J.member "offender" j with Some (J.Bool b) -> b | _ -> false
      in
      pf "  %s oid %d (cookie %s)%s\n"
        (if offender then "*" else "-")
        (Option.value ~default:(-1) (int_field "oid" j))
        (match int_field "cookie" j with
        | Some c -> string_of_int c
        | None -> "?")
        (match str_field "detail" j with
        | Some d -> ": " ^ d
        | None -> "");
      match int_field "deferred_ns" j with
      | None -> ()
      | Some d ->
          pf "      deferred @ %d ns -> pooled @ %s -> reused @ %s\n" d
            (pp_opt_ns (int_field "pooled_ns" j))
            (pp_opt_ns (int_field "reused_ns" j)))
    lineages;
  (* grace periods *)
  let gps = of_type "gp" in
  pf "\ngrace-period anatomy (%d):\n" (List.length gps);
  List.iter
    (fun j ->
      pf "  cookie %d [%s]: defer @ %s, request @ %s, start @ %s, complete @ %s\n"
        (Option.value ~default:(-1) (int_field "cookie" j))
        (Option.value ~default:"?" (str_field "tag" j))
        (pp_opt_ns (int_field "defer_ns" j))
        (pp_opt_ns (int_field "request_ns" j))
        (pp_opt_ns (int_field "start_ns" j))
        (pp_opt_ns (int_field "complete_ns" j));
      pf "      first qs: %s, holdout: %s, %d objects\n"
        (match (int_field "first_qs_cpu" j, int_field "first_qs_ns" j) with
        | Some c, Some n -> Printf.sprintf "cpu %d @ %d ns" c n
        | _ -> "(none)")
        (match (int_field "holdout_cpu" j, int_field "holdout_ns" j) with
        | Some c, Some n -> Printf.sprintf "cpu %d @ %d ns" c n
        | _ -> "(none)")
        (Option.value ~default:0 (int_field "objects" j)))
    gps;
  (* metrics *)
  let metrics = of_type "metric" in
  pf "\nmetric snapshot (%d entries):\n" (List.length metrics);
  List.iter
    (fun j ->
      pf "  %-40s %s\n"
        (Option.value ~default:"?" (str_field "name" j))
        (match Option.bind (J.member "value" j) J.to_float_opt with
        | Some v ->
            if Float.is_integer v && Float.abs v < 1e15 then
              Printf.sprintf "%d" (int_of_float v)
            else Printf.sprintf "%.12g" v
        | None -> "?"))
    metrics;
  Buffer.contents b

let render content = Result.map render_parsed (parse content)
