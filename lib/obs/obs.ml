(** Observability layer: grace-period anatomy and post-mortem forensics.

    {!Phase} names the five-phase latency decomposition of a deferred
    object's life (the paper's Fig. 6 axis); {!Anatomy} is the tracer /
    flight recorder that attributes every grace period and object
    lineage to those phases across all SMR backends; {!Bundle} is the
    dump-on-violation forensic bundle writer and its [postmortem]
    renderer. *)

module Phase = Phase
module Anatomy = Anatomy
module Bundle = Bundle
