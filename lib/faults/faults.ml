(** Facade: deterministic fault plans and their injector.

    The robustness counterpart of the observability layer: {!Plan} names
    the adversarial inputs (stalled readers, wedged CPUs, transient
    allocation failures, pressure spikes, callback floods) and {!Injector}
    schedules them into a simulation as ordinary — reproducible — events. *)

module Plan = Plan
module Injector = Injector
