type t = {
  machine : Sim.Machine.t;
  engine : Sim.Engine.t;
  buddy : Mem.Buddy.t;
  rcu : Rcu.t;
  pressure : Mem.Pressure.t option;
  rng : Sim.Rng.t;
  plan : Plan.t;
  mutable readers_stalled : int;
  mutable stall_windows : int;
  mutable flood_cbs : int;
  mutable pages_seized : int;
  mutable peak_pages_seized : int;
  mutable faults_fired : int;
}

type stats = {
  faults_fired : int;
  readers_stalled : int;
  stall_windows : int;
  flood_cbs : int;
  peak_pages_seized : int;
  alloc_refusals : int;
}

let stats (t : t) : stats =
  {
    faults_fired = t.faults_fired;
    readers_stalled = t.readers_stalled;
    stall_windows = t.stall_windows;
    flood_cbs = t.flood_cbs;
    peak_pages_seized = t.peak_pages_seized;
    alloc_refusals = Mem.Buddy.injected_failures t.buddy;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "faults=%d stalled readers=%d stall windows=%d flood cbs=%d seized \
     pages (peak)=%d alloc refusals=%d"
    s.faults_fired s.readers_stalled s.stall_windows s.flood_cbs
    s.peak_pages_seized s.alloc_refusals

let fire (t : t) spec ~cpu =
  t.faults_fired <- t.faults_fired + 1;
  let tr = Sim.Machine.tracer t.machine in
  if Trace.enabled tr then
    Trace.emit tr ~time:(Sim.Engine.now t.engine) ~cpu
      ~label:(Plan.spec_name spec) ~arg:t.faults_fired
      Trace.Event.Fault_inject

let at t time fn =
  ignore (Sim.Engine.schedule_at ~daemon:true t.engine ~time fn)

let poll_pressure t =
  match t.pressure with None -> () | Some p -> Mem.Pressure.poll p

let install_spec t spec =
  match spec with
  | Plan.Stalled_reader { cpu; at_ns; hold_ns } ->
      at t at_ns (fun () ->
          let c = Sim.Machine.cpu t.machine cpu in
          Rcu.read_lock t.rcu c;
          t.readers_stalled <- t.readers_stalled + 1;
          fire t spec ~cpu;
          match hold_ns with
          | None -> () (* held forever: the CPU never reports a QS again *)
          | Some hold ->
              at t (at_ns + hold) (fun () -> Rcu.read_unlock t.rcu c))
  | Plan.Cpu_stall { cpu; at_ns; duration_ns } ->
      at t at_ns (fun () ->
          let c = Sim.Machine.cpu t.machine cpu in
          c.Sim.Machine.stalled <- true;
          t.stall_windows <- t.stall_windows + 1;
          fire t spec ~cpu;
          at t (at_ns + duration_ns) (fun () ->
              c.Sim.Machine.stalled <- false))
  | Plan.Alloc_fault { at_ns; duration_ns; fail_prob } ->
      at t at_ns (fun () ->
          fire t spec ~cpu:(-1);
          Mem.Buddy.set_fail_hook t.buddy
            (Some (fun ~order:_ -> Sim.Rng.chance t.rng fail_prob));
          at t (at_ns + duration_ns) (fun () ->
              Mem.Buddy.set_fail_hook t.buddy None))
  | Plan.Pressure_spike { at_ns; duration_ns; pages } ->
      at t at_ns (fun () ->
          fire t spec ~cpu:(-1);
          (* Greedily seize the largest blocks that fit the remaining
             request, so a big reserve costs few buddy operations. *)
          let blocks = ref [] in
          let got = ref 0 in
          let continue = ref true in
          while !continue && !got < pages do
            let lfo = Mem.Buddy.largest_free_order t.buddy in
            if lfo < 0 then continue := false
            else begin
              let rec fit o =
                if o > 0 && 1 lsl o > pages - !got then fit (o - 1) else o
              in
              let order = fit lfo in
              match Mem.Buddy.alloc t.buddy ~order with
              | Some b ->
                  blocks := b :: !blocks;
                  got := !got + (1 lsl order)
              | None ->
                  (* Refused (e.g. an overlapping alloc-fault window):
                     don't spin. *)
                  continue := false
            end
          done;
          t.pages_seized <- t.pages_seized + !got;
          if t.pages_seized > t.peak_pages_seized then
            t.peak_pages_seized <- t.pages_seized;
          poll_pressure t;
          at t (at_ns + duration_ns) (fun () ->
              List.iter (Mem.Buddy.free t.buddy) !blocks;
              t.pages_seized <- t.pages_seized - !got;
              poll_pressure t))
  | Plan.Cb_flood { cpu; at_ns; duration_ns; per_ms } ->
      let until = at_ns + duration_ns in
      let rec tick () =
        if Sim.Engine.now t.engine <= until then begin
          let c = Sim.Machine.cpu t.machine cpu in
          for _ = 1 to per_ms do
            Rcu.call_rcu t.rcu c (fun () -> ())
          done;
          t.flood_cbs <- t.flood_cbs + per_ms;
          ignore
            (Sim.Engine.schedule ~daemon:true t.engine ~after:1_000_000 tick)
        end
      in
      at t at_ns (fun () ->
          fire t spec ~cpu;
          tick ())

let install ?pressure plan ~machine ~buddy ~rcu =
  let t =
    {
      machine;
      engine = Sim.Machine.engine machine;
      buddy;
      rcu;
      pressure;
      rng = Sim.Rng.create ~seed:plan.Plan.seed;
      plan;
      readers_stalled = 0;
      stall_windows = 0;
      flood_cbs = 0;
      pages_seized = 0;
      peak_pages_seized = 0;
      faults_fired = 0;
    }
  in
  List.iter (install_spec t) plan.Plan.specs;
  t

let plan t = t.plan
