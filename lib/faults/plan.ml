type spec =
  | Stalled_reader of { cpu : int; at_ns : int; hold_ns : int option }
  | Cpu_stall of { cpu : int; at_ns : int; duration_ns : int }
  | Alloc_fault of { at_ns : int; duration_ns : int; fail_prob : float }
  | Pressure_spike of { at_ns : int; duration_ns : int; pages : int }
  | Cb_flood of { cpu : int; at_ns : int; duration_ns : int; per_ms : int }

type t = { seed : int; specs : spec list }

let make ~seed specs = { seed; specs }
let empty = { seed = 0; specs = [] }

let spec_name = function
  | Stalled_reader _ -> "stalled-reader"
  | Cpu_stall _ -> "cpu-stall"
  | Alloc_fault _ -> "alloc-fault"
  | Pressure_spike _ -> "pressure-spike"
  | Cb_flood _ -> "cb-flood"

let pp_spec fmt = function
  | Stalled_reader { cpu; at_ns; hold_ns } ->
      Format.fprintf fmt "stalled-reader cpu%d at=%dns hold=%s" cpu at_ns
        (match hold_ns with
        | Some h -> Printf.sprintf "%dns" h
        | None -> "forever")
  | Cpu_stall { cpu; at_ns; duration_ns } ->
      Format.fprintf fmt "cpu-stall cpu%d at=%dns for=%dns" cpu at_ns
        duration_ns
  | Alloc_fault { at_ns; duration_ns; fail_prob } ->
      Format.fprintf fmt "alloc-fault at=%dns for=%dns p=%.2f" at_ns
        duration_ns fail_prob
  | Pressure_spike { at_ns; duration_ns; pages } ->
      Format.fprintf fmt "pressure-spike at=%dns for=%dns pages=%d" at_ns
        duration_ns pages
  | Cb_flood { cpu; at_ns; duration_ns; per_ms } ->
      Format.fprintf fmt "cb-flood cpu%d at=%dns for=%dns rate=%d/ms" cpu
        at_ns duration_ns per_ms

let pp fmt t =
  Format.fprintf fmt "fault plan (seed=%d):" t.seed;
  List.iter (fun s -> Format.fprintf fmt "@.  %a" pp_spec s) t.specs

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let validate_spec ~cpus ~duration_ns:_ = function
  | Stalled_reader { cpu; at_ns; hold_ns } ->
      if cpu < 0 || cpu >= cpus then Error "stalled-reader: cpu out of range"
      else if at_ns < 0 then Error "stalled-reader: negative at_ns"
      else if (match hold_ns with Some h -> h <= 0 | None -> false) then
        Error "stalled-reader: non-positive hold_ns"
      else Ok ()
  | Cpu_stall { cpu; at_ns; duration_ns = d } ->
      if cpu < 0 || cpu >= cpus then Error "cpu-stall: cpu out of range"
      else if at_ns < 0 then Error "cpu-stall: negative at_ns"
      else if d <= 0 then Error "cpu-stall: non-positive duration"
      else Ok ()
  | Alloc_fault { at_ns; duration_ns = d; fail_prob } ->
      if at_ns < 0 then Error "alloc-fault: negative at_ns"
      else if d <= 0 then Error "alloc-fault: non-positive duration"
      else if not (fail_prob >= 0. && fail_prob <= 1.) then
        Error "alloc-fault: fail_prob outside [0,1]"
      else Ok ()
  | Pressure_spike { at_ns; duration_ns = d; pages } ->
      if at_ns < 0 then Error "pressure-spike: negative at_ns"
      else if d <= 0 then Error "pressure-spike: non-positive duration"
      else if pages <= 0 then Error "pressure-spike: non-positive pages"
      else Ok ()
  | Cb_flood { cpu; at_ns; duration_ns = d; per_ms } ->
      if cpu < 0 || cpu >= cpus then Error "cb-flood: cpu out of range"
      else if at_ns < 0 then Error "cb-flood: negative at_ns"
      else if d <= 0 then Error "cb-flood: non-positive duration"
      else if per_ms <= 0 then Error "cb-flood: non-positive rate"
      else Ok ()

let validate ~cpus ~duration_ns t =
  if cpus <= 0 then Error "non-positive cpu count"
  else if duration_ns <= 0 then Error "non-positive duration"
  else
    List.fold_left
      (fun acc s ->
        match acc with
        | Error _ -> acc
        | Ok () -> validate_spec ~cpus ~duration_ns s)
      (Ok ()) t.specs

(* ------------------------------------------------------------------ *)
(* Compact (CLI-safe) serialization                                    *)

let float_to_string f =
  (* Shortest representation that round-trips. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let spec_to_compact = function
  | Stalled_reader { cpu; at_ns; hold_ns } ->
      Printf.sprintf "sr,%d,%d,%s" cpu at_ns
        (match hold_ns with Some h -> string_of_int h | None -> "-")
  | Cpu_stall { cpu; at_ns; duration_ns } ->
      Printf.sprintf "cs,%d,%d,%d" cpu at_ns duration_ns
  | Alloc_fault { at_ns; duration_ns; fail_prob } ->
      Printf.sprintf "af,%d,%d,%s" at_ns duration_ns (float_to_string fail_prob)
  | Pressure_spike { at_ns; duration_ns; pages } ->
      Printf.sprintf "ps,%d,%d,%d" at_ns duration_ns pages
  | Cb_flood { cpu; at_ns; duration_ns; per_ms } ->
      Printf.sprintf "cf,%d,%d,%d,%d" cpu at_ns duration_ns per_ms

let to_compact t =
  string_of_int t.seed
  ^ ":"
  ^ String.concat ";" (List.map spec_to_compact t.specs)

let spec_of_compact s =
  let fail () = Error (Printf.sprintf "bad fault spec %S" s) in
  let int_of x = int_of_string_opt x in
  match String.split_on_char ',' s with
  | [ "sr"; cpu; at; hold ] -> (
      let hold_ns =
        if hold = "-" then Some None
        else match int_of hold with Some h -> Some (Some h) | None -> None
      in
      match (int_of cpu, int_of at, hold_ns) with
      | Some cpu, Some at_ns, Some hold_ns ->
          Ok (Stalled_reader { cpu; at_ns; hold_ns })
      | _ -> fail ())
  | [ "cs"; cpu; at; d ] -> (
      match (int_of cpu, int_of at, int_of d) with
      | Some cpu, Some at_ns, Some duration_ns ->
          Ok (Cpu_stall { cpu; at_ns; duration_ns })
      | _ -> fail ())
  | [ "af"; at; d; p ] -> (
      match (int_of at, int_of d, float_of_string_opt p) with
      | Some at_ns, Some duration_ns, Some fail_prob ->
          Ok (Alloc_fault { at_ns; duration_ns; fail_prob })
      | _ -> fail ())
  | [ "ps"; at; d; pages ] -> (
      match (int_of at, int_of d, int_of pages) with
      | Some at_ns, Some duration_ns, Some pages ->
          Ok (Pressure_spike { at_ns; duration_ns; pages })
      | _ -> fail ())
  | [ "cf"; cpu; at; d; rate ] -> (
      match (int_of cpu, int_of at, int_of d, int_of rate) with
      | Some cpu, Some at_ns, Some duration_ns, Some per_ms ->
          Ok (Cb_flood { cpu; at_ns; duration_ns; per_ms })
      | _ -> fail ())
  | _ -> fail ()

let of_compact s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad plan %S: missing ':'" s)
  | Some i -> (
      let seed_s = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt seed_s with
      | None -> Error (Printf.sprintf "bad plan seed %S" seed_s)
      | Some seed ->
          let parts =
            if rest = "" then []
            else String.split_on_char ';' rest
          in
          let rec build acc = function
            | [] -> Ok { seed; specs = List.rev acc }
            | p :: tl -> (
                match spec_of_compact p with
                | Ok spec -> build (spec :: acc) tl
                | Error _ as e -> e)
          in
          build [] parts)

(* ------------------------------------------------------------------ *)
(* Deterministic mutation                                              *)

let clamp lo hi x = max lo (min hi x)

(* Jitter a time by up to ±12.5% of the run, staying in bounds. *)
let jitter_time rng ~duration_ns at_ns =
  let span = max 1 (duration_ns / 8) in
  clamp 0 (duration_ns - 1) (at_ns + Sim.Rng.int_in rng (-span) span)

let mutate_spec rng ~cpus ~duration_ns spec =
  let pick_cpu () = Sim.Rng.int rng cpus in
  match spec with
  | Stalled_reader { cpu; at_ns; hold_ns } -> (
      match Sim.Rng.int rng 3 with
      | 0 -> Stalled_reader { cpu; at_ns = jitter_time rng ~duration_ns at_ns; hold_ns }
      | 1 -> Stalled_reader { cpu = pick_cpu (); at_ns; hold_ns }
      | _ ->
          let hold_ns =
            match hold_ns with
            | None -> Some (max 1 (duration_ns / 2))
            | Some h ->
                if Sim.Rng.bool rng then None
                else Some (clamp 1 duration_ns (h + Sim.Rng.int_in rng (-h / 2) (h / 2)))
          in
          Stalled_reader { cpu; at_ns; hold_ns })
  | Cpu_stall { cpu; at_ns; duration_ns = d } -> (
      match Sim.Rng.int rng 3 with
      | 0 -> Cpu_stall { cpu; at_ns = jitter_time rng ~duration_ns at_ns; duration_ns = d }
      | 1 -> Cpu_stall { cpu = pick_cpu (); at_ns; duration_ns = d }
      | _ ->
          Cpu_stall
            { cpu; at_ns; duration_ns = clamp 1 duration_ns (d + Sim.Rng.int_in rng (-d / 2) d) })
  | Alloc_fault { at_ns; duration_ns = d; fail_prob } -> (
      match Sim.Rng.int rng 3 with
      | 0 -> Alloc_fault { at_ns = jitter_time rng ~duration_ns at_ns; duration_ns = d; fail_prob }
      | 1 ->
          Alloc_fault
            { at_ns; duration_ns = clamp 1 duration_ns (d + Sim.Rng.int_in rng (-d / 2) d); fail_prob }
      | _ ->
          let p = fail_prob +. (Sim.Rng.float rng 0.5 -. 0.25) in
          Alloc_fault { at_ns; duration_ns = d; fail_prob = max 0. (min 1. p) })
  | Pressure_spike { at_ns; duration_ns = d; pages } -> (
      match Sim.Rng.int rng 3 with
      | 0 -> Pressure_spike { at_ns = jitter_time rng ~duration_ns at_ns; duration_ns = d; pages }
      | 1 ->
          Pressure_spike
            { at_ns; duration_ns = clamp 1 duration_ns (d + Sim.Rng.int_in rng (-d / 2) d); pages }
      | _ ->
          Pressure_spike
            { at_ns; duration_ns = d; pages = clamp 1 max_int (pages + Sim.Rng.int_in rng (-pages / 2) pages) })
  | Cb_flood { cpu; at_ns; duration_ns = d; per_ms } -> (
      match Sim.Rng.int rng 3 with
      | 0 -> Cb_flood { cpu; at_ns = jitter_time rng ~duration_ns at_ns; duration_ns = d; per_ms }
      | 1 -> Cb_flood { cpu = pick_cpu (); at_ns; duration_ns = d; per_ms }
      | _ ->
          Cb_flood
            { cpu; at_ns; duration_ns = d; per_ms = clamp 1 100_000 (per_ms + Sim.Rng.int_in rng (-per_ms / 2) per_ms) })

let fresh_spec rng ~cpus ~duration_ns =
  let cpu = Sim.Rng.int rng cpus in
  let at_ns = Sim.Rng.int rng duration_ns in
  let window = max 1 (duration_ns / 4) in
  match Sim.Rng.int rng 5 with
  | 0 ->
      Stalled_reader
        { cpu; at_ns; hold_ns = (if Sim.Rng.bool rng then None else Some window) }
  | 1 -> Cpu_stall { cpu; at_ns; duration_ns = window }
  | 2 -> Alloc_fault { at_ns; duration_ns = window; fail_prob = Sim.Rng.float rng 1.0 }
  | 3 -> Pressure_spike { at_ns; duration_ns = window; pages = 1 + Sim.Rng.int rng 4096 }
  | _ -> Cb_flood { cpu; at_ns; duration_ns = window; per_ms = 1 + Sim.Rng.int rng 400 }

let mutate ~salt ~cpus ~duration_ns t =
  if cpus <= 0 || duration_ns <= 0 then
    invalid_arg "Faults.Plan.mutate: non-positive cpus/duration";
  (* Derive the mutation stream from (plan seed, salt) only, so the same
     (plan, salt) always yields the same mutant. *)
  let rng = Sim.Rng.create ~seed:((t.seed * 0x9e3779b9) lxor salt) in
  let n = List.length t.specs in
  let specs =
    match Sim.Rng.int rng 4 with
    | 0 when n > 0 ->
        (* Drop one spec. *)
        let victim = Sim.Rng.int rng n in
        List.filteri (fun i _ -> i <> victim) t.specs
    | 1 when n > 0 ->
        (* Duplicate one spec and mutate the copy. *)
        let idx = Sim.Rng.int rng n in
        let copy = mutate_spec rng ~cpus ~duration_ns (List.nth t.specs idx) in
        t.specs @ [ copy ]
    | 2 ->
        (* Add a fresh spec. *)
        t.specs @ [ fresh_spec rng ~cpus ~duration_ns ]
    | _ when n > 0 ->
        (* Mutate one spec in place. *)
        let idx = Sim.Rng.int rng n in
        List.mapi
          (fun i s -> if i = idx then mutate_spec rng ~cpus ~duration_ns s else s)
          t.specs
    | _ -> t.specs @ [ fresh_spec rng ~cpus ~duration_ns ]
  in
  let mutant = { seed = t.seed; specs } in
  match validate ~cpus ~duration_ns mutant with
  | Ok () -> mutant
  | Error msg ->
      (* Mutations are constructed in-bounds; a validation failure here is
         a bug in the mutator itself. *)
      invalid_arg ("Faults.Plan.mutate produced invalid plan: " ^ msg)
