type spec =
  | Stalled_reader of { cpu : int; at_ns : int; hold_ns : int option }
  | Cpu_stall of { cpu : int; at_ns : int; duration_ns : int }
  | Alloc_fault of { at_ns : int; duration_ns : int; fail_prob : float }
  | Pressure_spike of { at_ns : int; duration_ns : int; pages : int }
  | Cb_flood of { cpu : int; at_ns : int; duration_ns : int; per_ms : int }

type t = { seed : int; specs : spec list }

let make ~seed specs = { seed; specs }
let empty = { seed = 0; specs = [] }

let spec_name = function
  | Stalled_reader _ -> "stalled-reader"
  | Cpu_stall _ -> "cpu-stall"
  | Alloc_fault _ -> "alloc-fault"
  | Pressure_spike _ -> "pressure-spike"
  | Cb_flood _ -> "cb-flood"

let pp_spec fmt = function
  | Stalled_reader { cpu; at_ns; hold_ns } ->
      Format.fprintf fmt "stalled-reader cpu%d at=%dns hold=%s" cpu at_ns
        (match hold_ns with
        | Some h -> Printf.sprintf "%dns" h
        | None -> "forever")
  | Cpu_stall { cpu; at_ns; duration_ns } ->
      Format.fprintf fmt "cpu-stall cpu%d at=%dns for=%dns" cpu at_ns
        duration_ns
  | Alloc_fault { at_ns; duration_ns; fail_prob } ->
      Format.fprintf fmt "alloc-fault at=%dns for=%dns p=%.2f" at_ns
        duration_ns fail_prob
  | Pressure_spike { at_ns; duration_ns; pages } ->
      Format.fprintf fmt "pressure-spike at=%dns for=%dns pages=%d" at_ns
        duration_ns pages
  | Cb_flood { cpu; at_ns; duration_ns; per_ms } ->
      Format.fprintf fmt "cb-flood cpu%d at=%dns for=%dns rate=%d/ms" cpu
        at_ns duration_ns per_ms

let pp fmt t =
  Format.fprintf fmt "fault plan (seed=%d):" t.seed;
  List.iter (fun s -> Format.fprintf fmt "@.  %a" pp_spec s) t.specs
