(** Turns a {!Plan.t} into scheduled fault events against a built stack.

    All events are daemon events at the plan's pinned virtual times, so an
    installed plan never keeps [run_until_quiet] alive; injection is fully
    deterministic (the only randomness — alloc-fault refusal draws — comes
    from the plan's own seed). Each fault emits a [Fault_inject] trace
    event, labelled with the spec name, when tracing is armed. *)

type t

val install :
  ?pressure:Mem.Pressure.t ->
  Plan.t ->
  machine:Sim.Machine.t ->
  buddy:Mem.Buddy.t ->
  rcu:Rcu.t ->
  t
(** Schedule every spec of the plan. Call once, right after the stack is
    built (time 0), before running the workload. [pressure] is polled when
    a pressure spike seizes or releases pages so watermark notifiers fire
    at the spike edges. *)

val plan : t -> Plan.t

type stats = {
  faults_fired : int;  (** Fault activations (window starts). *)
  readers_stalled : int;  (** Stalled-reader sections entered. *)
  stall_windows : int;  (** CPU tick-suppression windows opened. *)
  flood_cbs : int;  (** No-op callbacks enqueued by floods. *)
  peak_pages_seized : int;  (** High-water mark of spike-held pages. *)
  alloc_refusals : int;  (** = {!Mem.Buddy.injected_failures}. *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
