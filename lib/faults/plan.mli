(** Deterministic fault plans.

    A plan is a seed plus a list of fault specs pinned to virtual times;
    {!Injector.install} turns it into scheduled events against a built
    simulation stack. The same plan against the same stack produces the
    same run, event for event — faults are part of the schedule, not
    noise. *)

type spec =
  | Stalled_reader of { cpu : int; at_ns : int; hold_ns : int option }
      (** Enter a read-side critical section on [cpu] at [at_ns] and hold
          it for [hold_ns] ([None] = forever). The CPU reports no
          quiescent states meanwhile, pinning every grace period — the
          adversarial input for any procrastination-based scheme. *)
  | Cpu_stall of { cpu : int; at_ns : int; duration_ns : int }
      (** Suppress scheduler ticks on [cpu] for the window: no context
          switches, so no quiescent states either (models a wedged CPU
          rather than a long reader). *)
  | Alloc_fault of { at_ns : int; duration_ns : int; fail_prob : float }
      (** During the window, every buddy allocation is refused with
          probability [fail_prob] (deterministically, from the plan's
          seed). Refusals count as {!Mem.Buddy.injected_failures}, not
          genuine exhaustion. *)
  | Pressure_spike of { at_ns : int; duration_ns : int; pages : int }
      (** A reserve-grabber seizes up to [pages] pages at [at_ns] and
          releases them all at the end of the window, slamming the system
          into (and out of) memory pressure. *)
  | Cb_flood of { cpu : int; at_ns : int; duration_ns : int; per_ms : int }
      (** The §3.4 DoS: enqueue [per_ms] no-op [call_rcu] callbacks per
          virtual millisecond on [cpu] for the window, competing with real
          reclamation for the throttled invocation budget. *)

type t = { seed : int; specs : spec list }

val make : seed:int -> spec list -> t
val empty : t

val spec_name : spec -> string
val pp_spec : Format.formatter -> spec -> unit
val pp : Format.formatter -> t -> unit

val validate : cpus:int -> duration_ns:int -> t -> (unit, string) result
(** Well-formedness against a target stack: every [cpu] in range, times
    non-negative, windows/rates/probabilities in bounds. A spec whose
    [at_ns] is at or past [duration_ns] is well-formed but inert (the run
    ends before it fires) — the minimizer relies on this. *)

val to_compact : t -> string
(** CLI-safe one-token encoding: ["<seed>:<spec>;<spec>;..."] where each
    spec is e.g. [sr,cpu,at,hold|-], [cs,cpu,at,dur], [af,at,dur,prob],
    [ps,at,dur,pages], [cf,cpu,at,dur,per_ms]. Round-trips through
    {!of_compact} exactly (floats use a shortest round-trip form). *)

val of_compact : string -> (t, string) result

val mutate : salt:int -> cpus:int -> duration_ns:int -> t -> t
(** One deterministic mutation step: jitter a spec's time/window/rate,
    retarget its CPU, drop, duplicate-and-perturb, or add a fresh spec.
    The mutation stream is derived from [(t.seed, salt)] only, so the same
    plan and salt always produce the same mutant; the result always
    satisfies {!validate}. *)
