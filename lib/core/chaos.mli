(** Chaos scenario matrix: runs {!Workloads.Chaos} scenarios over both
    allocators and renders one survival/degradation report. Not part of
    the {!Experiments} registry — chaos runs are driven explicitly via
    the [chaos] CLI subcommand (or tests) so the paper-experiment outputs
    stay untouched. *)

type params = {
  seed : int;
  cpus : int;
  scale : float;  (** Multiplies the scenario's virtual duration. *)
  ring : int;  (** Trace ring capacity. *)
}

val default_params : params
(** seed 42, 8 CPUs, scale 1.0 (3 s virtual), ring 16384. *)

val config_for : params -> Workloads.Chaos.scenario -> Workloads.Chaos.config

val run_scenario :
  params ->
  Workloads.Chaos.scenario ->
  Workloads.Chaos.outcome * Workloads.Chaos.outcome
(** (baseline, prudence) outcomes for one scenario. *)

val report : params -> Workloads.Chaos.scenario list -> Metrics.Report.t
(** One report with two rows (slub, prudence) per scenario. Deterministic:
    same params and scenario list render byte-identical output. *)
