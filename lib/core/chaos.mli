(** Chaos scenario matrix: runs {!Workloads.Chaos} scenarios over both
    allocators and renders one survival/degradation report. Not part of
    the {!Experiments} registry — chaos runs are driven explicitly via
    the [chaos] CLI subcommand (or tests) so the paper-experiment outputs
    stay untouched. *)

type params = {
  seed : int;
  cpus : int;
  scale : float;  (** Multiplies the scenario's virtual duration. *)
  ring : int;  (** Trace ring capacity. *)
}

val default_params : params
(** seed 42, 8 CPUs, scale 1.0 (3 s virtual), ring 16384. *)

val config_for : params -> Workloads.Chaos.scenario -> Workloads.Chaos.config

val run_scenario :
  params ->
  Workloads.Chaos.scenario ->
  Workloads.Chaos.outcome * Workloads.Chaos.outcome
(** (baseline, prudence) outcomes for one scenario. *)

val mitigation_reason : Workloads.Chaos.outcome -> string option
(** The (most severe) reason this outcome merits a forensic bundle:
    safety violation, OOM, emergency flush, OOM delay or stall warning;
    [None] when no mitigation fired. *)

val report :
  ?kinds:Workloads.Env.kind list ->
  ?bundle_dir:string ->
  params -> Workloads.Chaos.scenario list -> Metrics.Report.t
(** One report with one row per (scenario, kind); [kinds] defaults to
    [[Baseline; Prudence_alloc]], reproducing the classic two-row
    slub/prudence matrix byte-identically. Deterministic: same params,
    scenarios and kinds render byte-identical output.

    With [bundle_dir], each run is armed with the {!Obs.Anatomy}
    recorder (pure observation; rows unchanged) and every outcome whose
    {!mitigation_reason} is set dumps an {!Obs.Bundle} forensic bundle
    — [bundle-chaos-<scenario>-<alloc>.ndjson] — listed at the foot of
    the report body. *)
