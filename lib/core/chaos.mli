(** Chaos scenario matrix: runs {!Workloads.Chaos} scenarios over both
    allocators and renders one survival/degradation report. Not part of
    the {!Experiments} registry — chaos runs are driven explicitly via
    the [chaos] CLI subcommand (or tests) so the paper-experiment outputs
    stay untouched. *)

type params = {
  seed : int;
  cpus : int;
  scale : float;  (** Multiplies the scenario's virtual duration. *)
  ring : int;  (** Trace ring capacity. *)
}

val default_params : params
(** seed 42, 8 CPUs, scale 1.0 (3 s virtual), ring 16384. *)

val config_for : params -> Workloads.Chaos.scenario -> Workloads.Chaos.config

val run_scenario :
  params ->
  Workloads.Chaos.scenario ->
  Workloads.Chaos.outcome * Workloads.Chaos.outcome
(** (baseline, prudence) outcomes for one scenario. *)

val report :
  ?kinds:Workloads.Env.kind list ->
  params -> Workloads.Chaos.scenario list -> Metrics.Report.t
(** One report with one row per (scenario, kind); [kinds] defaults to
    [[Baseline; Prudence_alloc]], reproducing the classic two-row
    slub/prudence matrix byte-identically. Deterministic: same params,
    scenarios and kinds render byte-identical output. *)
