type cell = {
  outcome : Workloads.Chaos.outcome;
  kind : Workloads.Env.kind;
  limbo : int;
  reuse_p50_ns : int option;
  reuse_p99_ns : int option;
  gp_p99_ns : int option;
  obs : Obs.Anatomy.t;
      (* Armed anatomy recorder: the phase columns come from here. *)
}

(* "Limbo" unifies the two places a deferred object can wait: the latent
   caches/slabs of the Prudence frame (any SMR backend) and the baseline's
   RCU callback lists. Exactly one is non-zero per scheme, so the sum is
   the scheme's end-of-run deferred occupancy. *)
let limbo_of env =
  let latent = ref 0 in
  env.Workloads.Env.backend.Slab.Backend.iter_caches (fun c ->
      latent := !latent + Slab.Frame.latent_total c);
  !latent + Rcu.pending_callbacks env.Workloads.Env.rcu

let cell_of kind (o : Workloads.Chaos.outcome) =
  let env = o.Workloads.Chaos.env in
  let tracer = env.Workloads.Env.tracer in
  {
    outcome = o;
    kind;
    limbo = limbo_of env;
    reuse_p50_ns = Trace.Hist.percentile_opt (Trace.lifetime tracer) 50.;
    reuse_p99_ns = Trace.Hist.percentile_opt (Trace.lifetime tracer) 99.;
    gp_p99_ns = Trace.Hist.percentile_opt (Trace.gp_latency tracer) 99.;
    obs = env.Workloads.Env.obs;
  }

let phase_p99 c p =
  Trace.Hist.percentile_opt (Obs.Anatomy.phase_hist c.obs p) 99.

let run ?(kinds = Workloads.Env.all_kinds) p scenarios =
  List.concat_map
    (fun s ->
      let cfg = { (Chaos.config_for p s) with Workloads.Chaos.obs = true } in
      List.map (fun k -> cell_of k (Workloads.Chaos.run_one cfg k)) kinds)
    scenarios

let fmt_ms_opt = function
  | None -> "-"
  | Some ns -> Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)

let fmt_us_opt = function
  | None -> "-"
  | Some ns -> Printf.sprintf "%.0fus" (float_of_int ns /. 1e3)

let header =
  [
    "scenario"; "scheme"; "outcome"; "updates"; "limbo@end"; "reuse p50";
    "reuse p99"; "gp p99"; "qs p99"; "harv p99"; "flush/objs"; "oom-delay";
    "viol"; "peak MiB";
  ]

let row c =
  let o = c.outcome in
  let open Workloads.Chaos in
  [
    scenario_name o.scenario;
    o.label;
    (match o.oom_at_ns with
    | None -> "survived"
    | Some t -> Printf.sprintf "OOM@%.2fs" (Sim.Clock.to_s t));
    Metrics.Table.fmt_i o.updates;
    Metrics.Table.fmt_i c.limbo;
    fmt_us_opt c.reuse_p50_ns;
    fmt_ms_opt c.reuse_p99_ns;
    fmt_ms_opt c.gp_p99_ns;
    fmt_ms_opt (phase_p99 c Obs.Phase.Qs_collection);
    fmt_ms_opt (phase_p99 c Obs.Phase.Complete_to_harvest);
    Printf.sprintf "%s/%s"
      (Metrics.Table.fmt_i o.emergency_flushes)
      (Metrics.Table.fmt_i o.emergency_flushed_objs);
    Metrics.Table.fmt_i o.ooms_delayed;
    Metrics.Table.fmt_i o.safety_violations;
    Metrics.Table.fmt_f ~dec:1 o.peak_used_mib;
  ]

let verdict kinds cells =
  let survived label =
    let mine =
      List.filter (fun c -> c.outcome.Workloads.Chaos.label = label) cells
    in
    let n =
      List.length
        (List.filter (fun c -> c.outcome.Workloads.Chaos.survived) mine)
    in
    Printf.sprintf "%s %d/%d" label n (List.length mine)
  in
  let violations =
    List.fold_left
      (fun acc c -> acc + c.outcome.Workloads.Chaos.safety_violations)
      0 cells
  in
  Printf.sprintf "survival: %s; safety violations: %d"
    (String.concat ", "
       (List.map (fun k -> survived (Workloads.Env.kind_label k)) kinds))
    violations

let report_cells kinds cells =
  Metrics.Report.make ~id:"tournament"
    ~title:"SMR tournament: every reclamation scheme over the chaos matrix"
    ~paper_claim:
      "Cross-scheme comparison (Fig. 3 axes, generalized): the allocator \
       integration, not the grace-period mechanism, determines limbo \
       occupancy and defer-to-reuse latency -- RCU+Prudence, EBR/DEBRA and \
       Hyaline all reuse memory promptly where baseline SLUB's callback \
       batching lets deferred objects pile up, and every scheme stays \
       safety-clean under fault injection."
    ~verdict:(verdict kinds cells)
    (Metrics.Table.render ~header (List.map row cells))

let report ?(kinds = Workloads.Env.all_kinds) p scenarios =
  report_cells kinds (run ~kinds p scenarios)

let cell_json c =
  let module J = Metrics.Json in
  let o = c.outcome in
  let opt = function None -> J.Null | Some v -> J.Int v in
  J.Obj
    [
      ("type", J.Str "scheme");
      ("scenario", J.Str (Workloads.Chaos.scenario_name o.Workloads.Chaos.scenario));
      ("scheme", J.Str o.Workloads.Chaos.label);
      ("survived", J.Bool o.Workloads.Chaos.survived);
      ( "oom_at_ns",
        match o.Workloads.Chaos.oom_at_ns with
        | None -> J.Null
        | Some t -> J.Int t );
      ("updates", J.Int o.Workloads.Chaos.updates);
      ("limbo_end", J.Int c.limbo);
      ("reuse_p50_ns", opt c.reuse_p50_ns);
      ("reuse_p99_ns", opt c.reuse_p99_ns);
      ("gp_p99_ns", opt c.gp_p99_ns);
      ( "phase_p99_ns",
        J.Obj
          (List.map
             (fun p -> (Obs.Phase.name p, opt (phase_p99 c p)))
             Obs.Phase.all) );
      ("stall_warnings", J.Int o.Workloads.Chaos.stall_warnings);
      ("grow_retries", J.Int o.Workloads.Chaos.grow_retries);
      ("emergency_flushes", J.Int o.Workloads.Chaos.emergency_flushes);
      ("emergency_flushed_objs", J.Int o.Workloads.Chaos.emergency_flushed_objs);
      ("ooms_delayed", J.Int o.Workloads.Chaos.ooms_delayed);
      ("injected_failures", J.Int o.Workloads.Chaos.injected_failures);
      ("safety_violations", J.Int o.Workloads.Chaos.safety_violations);
      ("peak_used_mib", J.Float o.Workloads.Chaos.peak_used_mib);
      ("final_used_mib", J.Float o.Workloads.Chaos.final_used_mib);
    ]

let to_ndjson kinds cells =
  let module J = Metrics.Json in
  let lines = List.map (fun c -> J.to_string (cell_json c)) cells in
  let violations =
    List.fold_left
      (fun acc c -> acc + c.outcome.Workloads.Chaos.safety_violations)
      0 cells
  in
  let summary =
    J.Obj
      [
        ("type", J.Str "summary");
        ( "schemes",
          J.List
            (List.map (fun k -> J.Str (Workloads.Env.kind_label k)) kinds) );
        ("cells", J.Int (List.length cells));
        ( "survived",
          J.Int
            (List.length
               (List.filter (fun c -> c.outcome.Workloads.Chaos.survived) cells))
        );
        ("safety_violations", J.Int violations);
        ("ok", J.Bool (violations = 0));
      ]
  in
  String.concat "\n" (lines @ [ J.to_string summary ]) ^ "\n"
