(** Grace-period anatomy reports: one chaos scenario per SMR backend with
    the {!Obs.Anatomy} recorder armed, rendered as per-backend phase
    tables (count / p50 / p99 / mean / sum per {!Obs.Phase}), a worst-GP
    drill-down naming the holdout CPU, and an NDJSON stream for CI.

    Every backend reports the same five-phase schema; the clamped-edge
    decomposition makes the per-phase sums add up {e exactly} to the
    total defer->reuse latency, which both the table footer and the
    NDJSON [summary.sum_identity] flag assert. *)

type result = {
  kind : Workloads.Env.kind;
  outcome : Workloads.Chaos.outcome;
  obs : Obs.Anatomy.t;
}

val run :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params ->
  Workloads.Chaos.scenario ->
  result list
(** Run the scenario once per kind (default: all four backends) with
    [obs = true] and return the armed recorders. *)

val phase_sum : Obs.Anatomy.t -> int
(** Sum of all five phase histograms' sums — equals
    [Trace.Hist.sum (total_hist _)] by construction. *)

val sum_identity_ok : result list -> bool
(** The exact sum identity holds on every backend. *)

val report_results :
  Workloads.Chaos.scenario -> result list -> Metrics.Report.t
(** Render already-computed results (lets a caller reuse one {!run} for
    the table, the NDJSON and the exit code). *)

val json_of_results : Workloads.Chaos.scenario -> result list -> string list

val report :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params ->
  Workloads.Chaos.scenario ->
  Metrics.Report.t

val json_lines :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params ->
  Workloads.Chaos.scenario ->
  string list
(** NDJSON lines: [phase] (scheme, phase, count, p50_ns, p99_ns, mean_ns,
    sum_ns), [total], [worst_gp] (cookie, edge stamps, holdout CPU), and
    a final [summary] with [sum_identity]. *)

val to_ndjson :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params ->
  Workloads.Chaos.scenario ->
  string
