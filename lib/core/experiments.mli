(** Experiment registry: one entry per table/figure of the paper's
    evaluation (plus ablations). Each experiment builds fresh simulated
    stacks, runs the workload over the SLUB baseline and Prudence, and
    renders a {!Metrics.Report.t} comparing the measured shape against the
    paper's claim. *)

type params = {
  scale : float;
      (** Multiplies workload sizes (transactions, pairs); 1.0 = the
          defaults used in EXPERIMENTS.md. *)
  seed : int;
  cpus : int;
  runs : int;  (** Repetitions for mean +/- stdev (paper: 3). *)
  trace : int option;
      (** [Some ring_capacity] arms the {!Trace} tracer on every
          environment the experiment builds; [None] (default) runs
          untraced. *)
}

val default_params : params

type experiment = {
  id : string;
  title : string;
  paper_ref : string;  (** "Fig. 6", "§3.3", ... *)
  run : params -> Metrics.Report.t list;
}

val all : experiment list
(** In paper order: fig3, costs, fig6, fig7..fig13, ablations. *)

val find : string -> experiment option

(** {1 Individual experiment entry points} (used by tests) *)

val run_fig3 : params -> Metrics.Report.t list
val run_costs : params -> Metrics.Report.t list
val run_fig6 : params -> Metrics.Report.t list

val run_apps : params -> Metrics.Report.t list
(** Runs the four application benchmarks once per allocator and emits the
    Fig. 7-13 reports from the same pair of runs. *)

val run_tree : params -> Metrics.Report.t list
(** Extension (§3.1): path-copying BST updates defer several objects per
    operation; compares both allocators under that burstier pattern. *)

val run_ablations : params -> Metrics.Report.t list

(** {1 Raw data access} (used by the CLI and tests) *)

val microbench_pair :
  params -> obj_size:int ->
  Workloads.Microbench.result * Workloads.Microbench.result
(** (baseline, prudence) single-run results for one object size. *)

val endurance_pair :
  params -> Workloads.Endurance.result * Workloads.Endurance.result

val app_results :
  params ->
  (string * Workloads.Appmodel.result * Workloads.Appmodel.result) list
(** [(bench, baseline, prudence)] for the four §5.3 benchmarks. *)

(** {1 Traced runs} (the [trace] subcommand and bench harness) *)

val traceable : string list
(** Experiment ids {!run_traced} accepts. *)

val run_traced : params -> string -> (string * Trace.t) list option
(** [run_traced params id] reruns experiment [id]'s workload over both
    allocators with tracing forced on (ring capacity from [params.trace],
    default 65536) and returns [(allocator label, tracer)] per run — the
    tracer holds the event rings and latency histograms. [None] if [id]
    is not in {!traceable}. *)
