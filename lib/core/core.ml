(** Public facade of the Prudence reproduction.

    Re-exports every layer plus the {!Experiments} registry that
    regenerates each table/figure of the paper. Open nothing; use
    qualified paths ([Core.Experiments.run_fig6], [Core.Prudence.alloc],
    ...). *)

module Trace = Trace
module Prof = Prof
module Sim = Sim
module Mem = Mem
module Rcu = Rcu
module Slab = Slab
module Prudence = Prudence
module Faults = Faults
module Rcudata = Rcudata
module Workloads = Workloads
module Obs = Obs
module Check = Check
module Metrics = Metrics
module Stats = Stats
module Experiments = Experiments
module Chaos = Chaos
module Tournament = Tournament
module Anatomy = Anatomy

let version = "1.0.0"
