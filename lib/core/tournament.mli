(** SMR tournament: the chaos scenario matrix run under {e every}
    reclamation scheme — baseline SLUB (RCU callbacks), RCU+Prudence,
    EBR/DEBRA and Hyaline — rendered as one cross-scheme table plus
    NDJSON for automation.

    Each cell is one {!Workloads.Chaos.run_one} outcome extended with the
    scheme-comparable columns the chaos report does not need: end-of-run
    limbo occupancy (latent objects + pending RCU callbacks) and the
    defer-to-reuse latency percentiles from the object-lifetime
    histogram. Deterministic: same params, scenarios and kinds render
    byte-identical output. *)

type cell = {
  outcome : Workloads.Chaos.outcome;
  kind : Workloads.Env.kind;
  limbo : int;
      (** Deferred objects still in limbo when the run ended: latent
          cache/slab occupancy plus pending RCU callbacks. *)
  reuse_p50_ns : int option;
      (** Defer-to-reuse latency median; [None] when nothing was reused. *)
  reuse_p99_ns : int option;
  gp_p99_ns : int option;
      (** RCU grace-period p99; [None] for schemes that never ran one. *)
  obs : Obs.Anatomy.t;
      (** The cell's armed anatomy recorder: source of the per-phase
          latency columns ({!phase_p99}) and the NDJSON [phase_p99_ns]
          object. *)
}

val run :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params -> Workloads.Chaos.scenario list -> cell list
(** Every scenario x kind cell, scenarios outermost. [kinds] defaults to
    {!Workloads.Env.all_kinds}. Arms the {!Obs.Anatomy} recorder on each
    run (pure observation: outcomes are unchanged). *)

val phase_p99 : cell -> Obs.Phase.t -> int option
(** 99th-percentile latency of one anatomy phase for this cell. *)

val report :
  ?kinds:Workloads.Env.kind list ->
  Chaos.params -> Workloads.Chaos.scenario list -> Metrics.Report.t

val report_cells :
  Workloads.Env.kind list -> cell list -> Metrics.Report.t
(** Render already-computed cells (lets a caller reuse one {!run} for
    both the table and {!to_ndjson}). *)

val to_ndjson : Workloads.Env.kind list -> cell list -> string
(** One ["scheme"] object per cell plus a trailing ["summary"] line
    ([ok] = zero safety violations across the table). *)
