(* Grace-period anatomy: run one chaos scenario per SMR backend with the
   Obs recorder armed and decompose every defer->reuse latency into the
   five-phase schema of {!Obs.Phase}. The phase histograms obey an exact
   sum identity (clamped edges): for every reused object the five phase
   samples add up to its total latency, so the per-phase [sum] column
   adds up to the [total] row — the CI smoke asserts exactly that. *)

type result = {
  kind : Workloads.Env.kind;
  outcome : Workloads.Chaos.outcome;
  obs : Obs.Anatomy.t;
}

let run ?(kinds = Workloads.Env.all_kinds) p scenario =
  let cfg = { (Chaos.config_for p scenario) with Workloads.Chaos.obs = true } in
  List.map
    (fun kind ->
      let outcome = Workloads.Chaos.run_one cfg kind in
      { kind; outcome; obs = outcome.Workloads.Chaos.env.Workloads.Env.obs })
    kinds

(* {1 Rendering} *)

let fmt_ns_opt = function
  | None -> "-"
  | Some ns when ns >= 1_000_000 ->
      Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  | Some ns when ns >= 1_000 ->
      Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  | Some ns -> Printf.sprintf "%dns" ns

let fmt_ns ns = fmt_ns_opt (Some ns)

let hist_row label h =
  [
    label;
    Metrics.Table.fmt_i (Trace.Hist.count h);
    fmt_ns_opt (Trace.Hist.percentile_opt h 50.);
    fmt_ns_opt (Trace.Hist.percentile_opt h 99.);
    (match Trace.Hist.mean_opt h with
    | None -> "-"
    | Some m -> fmt_ns (int_of_float m));
    fmt_ns (Trace.Hist.sum h);
  ]

let header = [ "phase"; "count"; "p50"; "p99"; "mean"; "sum" ]

let phase_sum obs =
  List.fold_left
    (fun acc p -> acc + Trace.Hist.sum (Obs.Anatomy.phase_hist obs p))
    0 Obs.Phase.all

let worst_gp_line obs =
  match Obs.Anatomy.worst_gp obs with
  | None -> "worst gp: none completed inside the recorder window"
  | Some r ->
      let open Obs.Anatomy in
      let span = r.complete_ns - max 0 r.start_ns in
      Printf.sprintf
        "worst gp: cookie %d span %s (start %s -> complete %s), %d objects%s%s"
        r.cookie (fmt_ns span) (fmt_ns r.start_ns) (fmt_ns r.complete_ns)
        r.objects
        (if r.holdout_cpu >= 0 then
           Printf.sprintf ", holdout cpu %d @ %s" r.holdout_cpu
             (fmt_ns r.holdout_ns)
         else ", no holdout observed")
        (if r.first_qs_cpu >= 0 then
           Printf.sprintf ", first qs cpu %d @ %s" r.first_qs_cpu
             (fmt_ns r.first_qs_ns)
         else "")

let render_result r =
  let obs = r.obs in
  let rows =
    List.map
      (fun p -> hist_row (Obs.Phase.name p) (Obs.Anatomy.phase_hist obs p))
      Obs.Phase.all
    @ [ hist_row "total" (Obs.Anatomy.total_hist obs) ]
  in
  let identity =
    let ps = phase_sum obs and ts = Trace.Hist.sum (Obs.Anatomy.total_hist obs) in
    if ps = ts then Printf.sprintf "phase sums == total (%s): exact" (fmt_ns ts)
    else Printf.sprintf "SUM MISMATCH: phases %s vs total %s" (fmt_ns ps)
        (fmt_ns ts)
  in
  Printf.sprintf "-- %s (%s: %d defers, %d reuses, %d dropped) --\n%s\n%s\n%s\n"
    (Workloads.Env.kind_label r.kind)
    (Obs.Anatomy.scheme obs) (Obs.Anatomy.defers obs) (Obs.Anatomy.reuses obs)
    (Obs.Anatomy.dropped obs)
    (Metrics.Table.render ~header rows)
    (worst_gp_line obs) identity

let sum_identity_ok results =
  List.for_all
    (fun r -> phase_sum r.obs = Trace.Hist.sum (Obs.Anatomy.total_hist r.obs))
    results

let report_results scenario results =
  let body = String.concat "\n" (List.map render_result results) in
  let ok = sum_identity_ok results in
  let verdict =
    Printf.sprintf
      "scenario %s: %d backends, identical 5-phase schema, sum identity %s"
      (Workloads.Chaos.scenario_name scenario)
      (List.length results)
      (if ok then "exact on every backend" else "VIOLATED")
  in
  Metrics.Report.make ~id:"anatomy"
    ~title:"Grace-period anatomy: phase-attributed reclamation latency"
    ~paper_claim:
      "Latency decomposition (Fig. 6 axes): where a deferred object's \
       defer-to-reuse latency goes — waiting for a detection request, for \
       the detection cycle to start, for the slowest CPU to pass a \
       quiescent state, for the harvester, and for the allocator to hand \
       the slot out again — reported on one schema across all four SMR \
       backends."
    ~verdict body

let report ?kinds p scenario =
  report_results scenario (run ?kinds p scenario)

(* {1 NDJSON} *)

let json_of_results scenario results =
  let module J = Metrics.Json in
  let opt = function None -> J.Null | Some v -> J.Int v in
  let hist_json h =
    [
      ("count", J.Int (Trace.Hist.count h));
      ("p50_ns", opt (Trace.Hist.percentile_opt h 50.));
      ("p99_ns", opt (Trace.Hist.percentile_opt h 99.));
      ( "mean_ns",
        match Trace.Hist.mean_opt h with
        | None -> J.Null
        | Some m -> J.Float m );
      ("sum_ns", J.Int (Trace.Hist.sum h));
    ]
  in
  let per_result r =
    let scheme = Workloads.Env.kind_label r.kind in
    let phase_lines =
      List.map
        (fun p ->
          J.Obj
            (("type", J.Str "phase")
            :: ("scheme", J.Str scheme)
            :: ("phase", J.Str (Obs.Phase.name p))
            :: hist_json (Obs.Anatomy.phase_hist r.obs p)))
        Obs.Phase.all
    in
    let total_line =
      J.Obj
        (("type", J.Str "total")
        :: ("scheme", J.Str scheme)
        :: hist_json (Obs.Anatomy.total_hist r.obs))
    in
    let worst =
      match Obs.Anatomy.worst_gp r.obs with
      | None -> []
      | Some g ->
          let open Obs.Anatomy in
          let i v = if v < 0 then J.Null else J.Int v in
          [
            J.Obj
              [
                ("type", J.Str "worst_gp");
                ("scheme", J.Str (Workloads.Env.kind_label r.kind));
                ("cookie", J.Int g.cookie);
                ("defer_ns", i g.defer_ns);
                ("request_ns", i g.request_ns);
                ("start_ns", i g.start_ns);
                ("complete_ns", i g.complete_ns);
                ("span_ns", J.Int (g.complete_ns - max 0 g.start_ns));
                ("first_qs_cpu", i g.first_qs_cpu);
                ("first_qs_ns", i g.first_qs_ns);
                ("holdout_cpu", i g.holdout_cpu);
                ("holdout_ns", i g.holdout_ns);
                ("objects", J.Int g.objects);
              ];
          ]
    in
    phase_lines @ (total_line :: worst)
  in
  let summary =
    let ok = sum_identity_ok results in
    J.Obj
      [
        ("type", J.Str "summary");
        ("scenario", J.Str (Workloads.Chaos.scenario_name scenario));
        ( "schemes",
          J.List
            (List.map
               (fun r -> J.Str (Workloads.Env.kind_label r.kind))
               results) );
        ( "phase_sum_ns",
          J.Int (List.fold_left (fun a r -> a + phase_sum r.obs) 0 results) );
        ( "total_sum_ns",
          J.Int
            (List.fold_left
               (fun a r -> a + Trace.Hist.sum (Obs.Anatomy.total_hist r.obs))
               0 results) );
        ("sum_identity", J.Bool ok);
        ("ok", J.Bool ok);
      ]
  in
  List.map J.to_string (List.concat_map per_result results)
  @ [ J.to_string summary ]

let json_lines ?kinds p scenario =
  json_of_results scenario (run ?kinds p scenario)

let to_ndjson ?kinds p scenario =
  String.concat "\n" (json_lines ?kinds p scenario) ^ "\n"
