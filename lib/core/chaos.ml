type params = { seed : int; cpus : int; scale : float; ring : int }

let default_params = { seed = 42; cpus = 8; scale = 1.0; ring = 16_384 }

let config_for p scenario =
  let base = Workloads.Chaos.default_config ~scenario in
  {
    base with
    Workloads.Chaos.seed = p.seed;
    cpus = p.cpus;
    ring = p.ring;
    duration_ns =
      int_of_float (float_of_int base.Workloads.Chaos.duration_ns *. p.scale);
  }

let run_scenario p scenario = Workloads.Chaos.run_pair (config_for p scenario)

let fmt_ms ns = Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)

let outcome_cell (o : Workloads.Chaos.outcome) =
  match o.Workloads.Chaos.oom_at_ns with
  | None -> "survived"
  | Some t -> Printf.sprintf "OOM@%.2fs" (Sim.Clock.to_s t)

let holdouts_cell = function
  | [] -> "-"
  | cpus -> String.concat "," (List.map string_of_int cpus)

let row (o : Workloads.Chaos.outcome) =
  let open Workloads.Chaos in
  [
    scenario_name o.scenario;
    o.label;
    outcome_cell o;
    Metrics.Table.fmt_i o.updates;
    Metrics.Table.fmt_i o.stall_warnings;
    holdouts_cell o.holdout_cpus;
    fmt_ms o.gp_p99_ns;
    Metrics.Table.fmt_i o.grow_retries;
    Printf.sprintf "%s/%s"
      (Metrics.Table.fmt_i o.emergency_flushes)
      (Metrics.Table.fmt_i o.emergency_flushed_objs);
    Metrics.Table.fmt_i o.ooms_delayed;
    Metrics.Table.fmt_i o.injected_failures;
    Metrics.Table.fmt_i o.safety_violations;
  ]

let header =
  [
    "scenario"; "alloc"; "outcome"; "updates"; "stalls"; "holdouts";
    "gp p99"; "retries"; "flush/objs"; "oom-delay"; "inj-fail"; "viol";
  ]

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

(* A chaos run has no oracle verdict; what merits a forensic bundle is a
   mitigation firing (or an outright loss). Ordered by severity: the
   first matching reason names the bundle. *)
let mitigation_reason (o : Workloads.Chaos.outcome) =
  let open Workloads.Chaos in
  if o.safety_violations > 0 then Some "chaos-safety-violation"
  else if o.oom_at_ns <> None then Some "chaos-oom"
  else if o.emergency_flushes > 0 then Some "chaos-emergency-flush"
  else if o.ooms_delayed > 0 then Some "chaos-oom-delay"
  else if o.stall_warnings > 0 then Some "chaos-stall-warning"
  else None

let chaos_replay p scenario label =
  Printf.sprintf
    "prudence-repro chaos %s --alloc=%s --seed=%d --cpus=%d --scale=%g \
     --ring=%d"
    (Workloads.Chaos.scenario_name scenario)
    label p.seed p.cpus p.scale p.ring

let write_bundle dir p reason (o : Workloads.Chaos.outcome) =
  mkdir_p dir;
  let env = o.Workloads.Chaos.env in
  let violations =
    List.map
      (fun (w : Rcu.stall_warning) ->
        Printf.sprintf "stall warning at %d ns: holdouts %s" w.Rcu.at_ns
          (holdouts_cell w.Rcu.holdouts))
      (Rcu.stall_warnings env.Workloads.Env.rcu)
  in
  let metrics =
    let reg = Stats.Registry.create () in
    Stats.Providers.register_env reg env;
    List.map
      (fun ((m : Stats.Registry.metric), value) ->
        (m.Stats.Registry.name, value))
      (Stats.Registry.read_all reg)
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "bundle-chaos-%s-%s.ndjson"
         (Workloads.Chaos.scenario_name o.Workloads.Chaos.scenario)
         o.Workloads.Chaos.label)
  in
  Obs.Bundle.write ~path ~reason
    ~replay:(chaos_replay p o.Workloads.Chaos.scenario o.Workloads.Chaos.label)
    ~scheme:o.Workloads.Chaos.label
    ~at_ns:(Sim.Engine.now env.Workloads.Env.eng)
    ~tracer:env.Workloads.Env.tracer ~anatomy:env.Workloads.Env.obs
    ~offenders:[] ~violations ~metrics ();
  path

let report ?(kinds = [ Workloads.Env.Baseline; Workloads.Env.Prudence_alloc ])
    ?bundle_dir p scenarios =
  let outcomes =
    List.concat_map
      (fun s ->
        let cfg = config_for p s in
        let cfg =
          if bundle_dir = None then cfg
          else { cfg with Workloads.Chaos.obs = true }
        in
        List.map (fun k -> Workloads.Chaos.run_one cfg k) kinds)
      scenarios
  in
  let bundles =
    match bundle_dir with
    | None -> []
    | Some dir ->
        List.filter_map
          (fun o ->
            Option.map
              (fun reason -> write_bundle dir p reason o)
              (mitigation_reason o))
          outcomes
  in
  let rows = List.map row outcomes in
  let survived label =
    let mine =
      List.filter (fun o -> o.Workloads.Chaos.label = label) outcomes
    in
    let n =
      List.length (List.filter (fun o -> o.Workloads.Chaos.survived) mine)
    in
    Printf.sprintf "%s %d/%d" label n (List.length mine)
  in
  let violations =
    List.fold_left
      (fun acc o -> acc + o.Workloads.Chaos.safety_violations)
      0 outcomes
  in
  let verdict =
    Printf.sprintf "survival: %s; safety violations: %d"
      (String.concat ", "
         (List.map (fun k -> survived (Workloads.Env.kind_label k)) kinds))
      violations
  in
  Metrics.Report.make ~id:"chaos"
    ~title:"Chaos matrix: fault injection over both allocators"
    ~paper_claim:
      "Robustness (S3.4/S3.5): Prudence degrades gracefully where SLUB hits \
       fatal OOM -- emergency flush + OOM delay ride out callback floods and \
       pressure spikes; stalled readers are detected and named, never cause \
       premature reuse."
    ~verdict
    (Metrics.Table.render ~header rows
    ^
    match bundles with
    | [] -> ""
    | paths ->
        "\nforensic bundles (mitigation triggered):\n"
        ^ String.concat "\n" (List.map (fun p -> "  " ^ p) paths))
