module W = Workloads
module T = Metrics.Table
module Report = Metrics.Report

type params = {
  scale : float;
  seed : int;
  cpus : int;
  runs : int;
  trace : int option;
}

let default_params =
  { scale = 1.0; seed = 42; cpus = 8; runs = 1; trace = None }

type experiment = {
  id : string;
  title : string;
  paper_ref : string;
  run : params -> Report.t list;
}

let scaled params n = max 1 (int_of_float (float_of_int n *. params.scale))

let base_env_config params kind =
  {
    W.Env.default_config with
    W.Env.kind;
    cpus = params.cpus;
    seed = params.seed;
    trace = params.trace;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 3: endurance / DoS — used memory over time, OOM on the baseline *)
(* ------------------------------------------------------------------ *)

(* Callback invocation is throttled per softirq pass as in §3.5's kernel:
   expediting under memory pressure raises the batch but still cannot match
   the offered deferred-free rate, so the baseline leaks towards OOM. The
   knee comes from the pressure notifier, not the backlog threshold. *)
let fig3_rcu_config =
  {
    Rcu.default_config with
    Rcu.blimit = 10;
    expedited_blimit = 30;
    softirq_period_ns = 1_000_000;
    qhimark = max_int;
  }

let endurance_env params kind =
  {
    (base_env_config params kind) with
    W.Env.total_pages = 262_144 (* 1 GiB *);
    rcu_config = fig3_rcu_config;
  }

let endurance_config params =
  {
    W.Endurance.default_config with
    W.Endurance.duration_ns = Sim.Clock.s (scaled params 12);
  }

let endurance_pair params =
  let run kind =
    let env = W.Env.build (endurance_env params kind) in
    W.Endurance.run env (endurance_config params)
  in
  (run W.Env.Baseline, run W.Env.Prudence_alloc)

let fmt_time_opt = function
  | None -> "never"
  | Some t -> Printf.sprintf "%.2fs" (float_of_int t /. 1e9)

let run_fig3 params =
  let slub, prud = endurance_pair params in
  let thin (r : W.Endurance.result) =
    let s = Sim.Series.create ~name:r.W.Endurance.label in
    Array.iter (fun (t, v) -> Sim.Series.push s ~time:t v) r.W.Endurance.series;
    Sim.Series.downsample s ~max_points:68
  in
  let chart =
    Metrics.Ascii_chart.line
      ~series:
        [ ("slub (baseline)", thin slub); ("prudence", thin prud) ]
      ()
  in
  let row (r : W.Endurance.result) =
    [
      r.W.Endurance.label;
      T.fmt_i r.W.Endurance.updates;
      T.fmt_f r.W.Endurance.peak_used_mib;
      T.fmt_f r.W.Endurance.final_used_mib;
      fmt_time_opt r.W.Endurance.oom_at_ns;
      T.fmt_i r.W.Endurance.max_backlog;
      string_of_int r.W.Endurance.expedited_transitions;
      T.fmt_i r.W.Endurance.slab_churns;
    ]
  in
  let table =
    T.render
      ~header:
        [
          "allocator"; "updates"; "peak MiB"; "final MiB"; "OOM at";
          "max cb backlog"; "expedites"; "slab churns";
        ]
      [ row slub; row prud ]
  in
  let verdict =
    Printf.sprintf
      "slub: OOM at %s (peak %.0f MiB, backlog %s cbs); prudence: no OOM, \
       flat at ~%.0f MiB after the initial grace periods"
      (fmt_time_opt slub.W.Endurance.oom_at_ns)
      slub.W.Endurance.peak_used_mib
      (T.fmt_i slub.W.Endurance.max_backlog)
      prud.W.Endurance.final_used_mib
  in
  let metrics =
    let m = Report.metric in
    [
      m "fig3.slub.peak_used_mib" slub.W.Endurance.peak_used_mib;
      m "fig3.slub.max_backlog" (float_of_int slub.W.Endurance.max_backlog);
      m ~direction:Report.Higher_better "fig3.slub.updates"
        (float_of_int slub.W.Endurance.updates);
      m ~direction:Report.Lower_better "fig3.prudence.peak_used_mib"
        prud.W.Endurance.peak_used_mib;
      m ~direction:Report.Lower_better "fig3.prudence.final_used_mib"
        prud.W.Endurance.final_used_mib;
      m ~direction:Report.Higher_better "fig3.prudence.updates"
        (float_of_int prud.W.Endurance.updates);
      (* 1.0 = Prudence survived the whole run; any OOM is a regression. *)
      m ~direction:Report.Higher_better ~tolerance_pct:0.
        "fig3.prudence.survived"
        (match prud.W.Endurance.oom_at_ns with None -> 1. | Some _ -> 0.);
    ]
  in
  [
    Report.make ~metrics ~id:"fig3"
      ~title:
        "Impact of RCU on the allocator: total used memory under continuous \
         list updates (512 B objects, all CPUs)"
      ~paper_claim:
        "SLUB's used memory climbs (extended lifetimes), RCU expedites under \
         pressure (~70s) but cannot keep up, OOM at 196s; Prudence rises \
         briefly, then stays flat (equilibrium; also defeats the §3.4 DoS)"
      ~verdict
      (chart ^ "\n" ^ table);
  ]

(* ------------------------------------------------------------------ *)
(* §3.3: relative cost of hit / refill / grow paths                     *)
(* ------------------------------------------------------------------ *)

let run_costs params =
  let env = W.Env.build (base_env_config params W.Env.Baseline) in
  let backend = env.W.Env.backend in
  let cache =
    backend.Slab.Backend.create_cache ~name:"costs-probe" ~obj_size:512
  in
  let cpu = W.Env.cpu env 0 in
  let hit_cost = ref 0 and refill_cost = ref 0 and grow_cost = ref 0 in
  Sim.Process.spawn env.W.Env.eng (fun () ->
      (* Advance virtual time by each operation's cost, like a real
         workload, so lock hold times do not pile up at one instant. *)
      let measure () =
        ignore (Sim.Machine.drain cpu);
        match backend.Slab.Backend.alloc cache cpu with
        | Some obj ->
            let cost = Sim.Machine.drain cpu in
            Sim.Process.sleep env.W.Env.eng cost;
            (obj, cost)
        | None -> failwith "costs probe: unexpected OOM"
      in
      let pc = Slab.Frame.pcpu_for cache cpu in
      let stats () = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
      (* Warm up: allocate a few slabs' worth (touching every object) and
         free them all, so later measurements see warm memory — as a
         kernel in steady state does. *)
      let warm = List.init (3 * cache.Slab.Frame.ocache_cap) (fun _ -> fst (measure ())) in
      List.iter
        (fun o ->
          backend.Slab.Backend.free cache cpu o;
          ignore (Sim.Machine.drain cpu))
        warm;
      (* Hit: served straight from the object cache. *)
      let _o, h = measure () in
      hit_cost := h;
      (* Drain the object cache; the next allocation refills from partial
         slabs without growing. *)
      while pc.Slab.Frame.ocache_n > 0 do
        ignore (measure ())
      done;
      let grows_before = (stats ()).Slab.Slab_stats.grows in
      let _o, r = measure () in
      if (stats ()).Slab.Slab_stats.grows > grows_before then
        failwith "costs probe: refill measurement grew the cache";
      refill_cost := r;
      (* Exhaust the node so the next allocation must grow. *)
      let continue = ref true in
      while !continue do
        let before = (stats ()).Slab.Slab_stats.grows in
        let _o, c = measure () in
        if (stats ()).Slab.Slab_stats.grows > before then begin
          grow_cost := c;
          continue := false
        end
      done);
  Sim.Engine.run_until_quiet env.W.Env.eng;
  let hit_cost = !hit_cost
  and refill_cost = !refill_cost
  and grow_cost = !grow_cost in
  let ratio c = float_of_int c /. float_of_int hit_cost in
  let table =
    T.render
      ~header:[ "allocation path"; "virtual ns"; "x hit" ]
      [
        [ "object-cache hit"; string_of_int hit_cost; T.fmt_f 1.0 ];
        [ "object-cache refill"; string_of_int refill_cost; T.fmt_f (ratio refill_cost) ];
        [ "slab-cache grow"; string_of_int grow_cost; T.fmt_f (ratio grow_cost) ];
      ]
  in
  let verdict =
    Printf.sprintf "refill = %.1fx hit, grow = %.1fx hit (paper: 4x and 14x)"
      (ratio refill_cost) (ratio grow_cost)
  in
  let metrics =
    [
      Report.metric "costs.refill_x_hit" (ratio refill_cost);
      Report.metric "costs.grow_x_hit" (ratio grow_cost);
    ]
  in
  [
    Report.make ~metrics ~id:"costs"
      ~title:"Relative cost of allocation paths (drives the cost model)"
      ~paper_claim:
        "allocation is 4x a cache hit when it refills the object cache and \
         14x when it grows the slab cache (measured in §3.3)"
      ~verdict table;
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 6: microbenchmark across object sizes                           *)
(* ------------------------------------------------------------------ *)

let microbench_sizes = [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let microbench_env params kind seed =
  {
    (base_env_config params kind) with
    W.Env.seed;
    total_pages = 1_048_576 (* 4 GiB: the baseline run leaks its whole backlog *);
    (* A faster tick (shorter grace periods) scales the experiment's time
       axis down so the loop spans many grace periods, as the paper's
       5M-pair runs did, at an affordable event count. *)
    tick_ns = 250_000;
    (* The tight loop floods RCU far beyond callback-processing capacity,
       even expedited — the regime of §3.5 (the paper's microbench consumed
       hundreds of GB of headroom). *)
    rcu_config =
      {
        Rcu.default_config with
        Rcu.softirq_period_ns = 250_000;
        blimit = 10;
        expedited_blimit = 30;
        qhimark = max_int;
      };
  }

let microbench_config params ~obj_size =
  {
    W.Microbench.default_config with
    W.Microbench.obj_size;
    pairs_per_cpu = scaled params 60_000;
  }

let microbench_pair params ~obj_size =
  let run kind =
    let env = W.Env.build (microbench_env params kind params.seed) in
    W.Microbench.run env (microbench_config params ~obj_size)
  in
  (run W.Env.Baseline, run W.Env.Prudence_alloc)

let run_fig6 params =
  let rows, speedups =
    List.fold_left
      (fun (rows, speedups) obj_size ->
        let per_run kind seed =
          let env = W.Env.build (microbench_env params kind seed) in
          (W.Microbench.run env (microbench_config params ~obj_size))
            .W.Microbench.pairs_per_sec
        in
        let seeds = List.init (max 1 params.runs) (fun i -> params.seed + i) in
        let slub = Sim.Stat.summarize (List.map (per_run W.Env.Baseline) seeds) in
        let prud =
          Sim.Stat.summarize (List.map (per_run W.Env.Prudence_alloc) seeds)
        in
        let speedup = prud.Sim.Stat.mean /. slub.Sim.Stat.mean in
        let mops v = v /. 1e6 in
        ( rows
          @ [
              [
                string_of_int obj_size;
                Printf.sprintf "%.3f +/- %.3f" (mops slub.Sim.Stat.mean)
                  (mops slub.Sim.Stat.stdev);
                Printf.sprintf "%.3f +/- %.3f" (mops prud.Sim.Stat.mean)
                  (mops prud.Sim.Stat.stdev);
                Printf.sprintf "%.1fx" speedup;
              ];
            ],
          speedups @ [ (obj_size, speedup) ] ))
      ([], []) microbench_sizes
  in
  let table =
    T.render
      ~header:
        [ "object size"; "slub Mpairs/s"; "prudence Mpairs/s"; "speedup" ]
      rows
  in
  let min_s = List.fold_left (fun a (_, s) -> Float.min a s) infinity speedups in
  let max_size, max_s =
    List.fold_left
      (fun (bs, b) (sz, s) -> if s > b then (sz, s) else (bs, b))
      (0, 0.) speedups
  in
  let verdict =
    Printf.sprintf
      "prudence is %.1fx to %.1fx faster; the largest win is at %d bytes \
       (paper: 3.9x to 28.6x, peaking at 4096 bytes)"
      min_s max_s max_size
  in
  let metrics =
    (* Per-seed virtual-time runs are deterministic, but speedups compare
       two stacks whose schedules diverge, so allow generous drift. *)
    List.map
      (fun (sz, s) ->
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:25.
          (Printf.sprintf "fig6.speedup.%db" sz)
          s)
      speedups
    @ [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:25.
          "fig6.speedup.min" min_s;
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:25.
          "fig6.speedup.max" max_s;
      ]
  in
  [
    Report.make ~metrics ~id:"fig6"
      ~title:
        "kmalloc/kfree_deferred pairs per second, tight loop on all CPUs, \
         by object size"
      ~paper_claim:
        "Prudence executes 3.9x to 28.6x more pairs per second than SLUB; \
         the gap grows with object size (fewer cached objects and smaller \
         slabs mean more churn to avoid)"
      ~verdict table;
  ]

(* ------------------------------------------------------------------ *)
(* §5.3/5.4: application benchmarks -> Figs. 7-13                        *)
(* ------------------------------------------------------------------ *)

let app_env params kind =
  {
    (base_env_config params kind) with
    (* Shorter grace periods scale the time axis down so the fixed
       transaction budget spans many grace periods, as the paper's
       5-10 minute runs did. *)
    W.Env.tick_ns = 250_000;
    (* Under a CPU-saturated benchmark, ksoftirqd gets the CPU about once
       per tick and then works through a large batch: callback processing
       keeps up on average but arrives in bursts, well after the grace
       period — §3.1 bursty freeing + §3.2 extended object lifetimes. *)
    rcu_config =
      {
        Rcu.default_config with
        Rcu.softirq_period_ns = 250_000;
        blimit = 100;
        expedited_blimit = 400;
      };
  }

let app_configs params =
  [
    ("postmark", W.Postmark.config ~txns_per_cpu:(scaled params 8_000) ());
    ("netperf", W.Netperf.config ~txns_per_cpu:(scaled params 8_000) ());
    ("apache", W.Apache.config ~txns_per_cpu:(scaled params 8_000) ());
    ("postgresql", W.Postgresql.config ~txns_per_cpu:(scaled params 6_000) ());
  ]

let app_results params =
  List.map
    (fun (name, cfg) ->
      let run kind =
        let env = W.Env.build (app_env params kind) in
        W.Appmodel.run env cfg
      in
      (name, run W.Env.Baseline, run W.Env.Prudence_alloc))
    (app_configs params)

(* Pair up per-cache results of the two allocators, keeping only caches
   with meaningful traffic (the paper reports caches with > 1M operations
   per run; we scale that threshold with the workload). *)
let paired_caches params (slub : W.Appmodel.result) (prud : W.Appmodel.result) =
  let threshold = scaled params 3_000 * 2 in
  List.filter_map
    (fun (sc : W.Appmodel.cache_result) ->
      let traffic =
        sc.W.Appmodel.snap.Slab.Slab_stats.allocs
        + sc.W.Appmodel.snap.Slab.Slab_stats.deferred_frees
      in
      if traffic < threshold then None
      else
        List.find_opt
          (fun (pc : W.Appmodel.cache_result) ->
            pc.W.Appmodel.cache_name = sc.W.Appmodel.cache_name)
          prud.W.Appmodel.caches
        |> Option.map (fun pc -> (sc, pc)))
    slub.W.Appmodel.caches

let per_cache_table params apps ~columns =
  let rows =
    List.concat_map
      (fun (bench, slub, prud) ->
        List.map
          (fun (sc, pc) ->
            Printf.sprintf "%s %s" bench sc.W.Appmodel.cache_name
            :: columns sc pc)
          (paired_caches params slub prud))
      apps
  in
  rows

let report_fig7 params apps =
  let module S = Slab.Slab_stats in
  let rows =
    per_cache_table params apps ~columns:(fun sc pc ->
        let hs = S.hit_rate sc.W.Appmodel.snap in
        let hp = S.hit_rate pc.W.Appmodel.snap in
        [
          Printf.sprintf "%.1f%%" hs;
          Printf.sprintf "%.1f%%" hp;
          Printf.sprintf "%+.1f pp" (hp -. hs);
        ])
  in
  let table =
    T.render
      ~header:[ "benchmark cache"; "slub hits"; "prudence hits"; "change" ]
      rows
  in
  let ups =
    List.length
      (List.filter
         (fun r -> String.length (List.nth r 3) > 0 && (List.nth r 3).[0] = '+')
         rows)
  in
  Report.make
    ~metrics:
      [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:0.
          "fig7.pairs_improved" (float_of_int ups);
        Report.metric "fig7.pairs_total" (float_of_int (List.length rows));
      ]
    ~id:"fig7"
    ~title:"Allocation requests served from the object cache (hit rate)"
    ~paper_claim:
      "Prudence improves cache hits for every reported slab cache: deferred \
       objects merge into the object cache right after the grace period \
       instead of waiting for RCU's callback processing"
    ~verdict:
      (Printf.sprintf "hit rate improved for %d of %d cache/benchmark pairs"
         ups (List.length rows))
    table

let pct_change_rows params apps ~metric =
  per_cache_table params apps ~columns:(fun sc pc ->
      let vs = metric sc and vp = metric pc in
      let change =
        if vs = 0 then nan
        else 100. *. (float_of_int vp -. float_of_int vs) /. float_of_int vs
      in
      [ T.fmt_i vs; T.fmt_i vp; T.fmt_pct change ])

let count_improved rows =
  List.length
    (List.filter
       (fun r ->
         let c = List.nth r 3 in
         String.length c > 0 && c.[0] = '-')
       rows)

let report_fig8 params apps =
  let module S = Slab.Slab_stats in
  let rows =
    pct_change_rows params apps ~metric:(fun (c : W.Appmodel.cache_result) ->
        S.ocache_churns c.W.Appmodel.snap)
  in
  let table =
    T.render
      ~header:[ "benchmark cache"; "slub churns"; "prudence churns"; "change" ]
      rows
  in
  Report.make
    ~metrics:
      [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:0.
          "fig8.pairs_improved"
          (float_of_int (count_improved rows));
        Report.metric "fig8.pairs_total" (float_of_int (List.length rows));
      ]
    ~id:"fig8"
    ~title:"Object cache churns (refill/flush pairs)"
    ~paper_claim:
      "Prudence cuts object-cache churns by 26-96%, except PostgreSQL \
       kmalloc-64 (+6%): its heavy non-deferred frees interfere with \
       Prudence's latent-cache decisions"
    ~verdict:
      (Printf.sprintf "churns reduced for %d of %d cache/benchmark pairs"
         (count_improved rows) (List.length rows))
    table

let report_fig9 params apps =
  let module S = Slab.Slab_stats in
  let rows =
    pct_change_rows params apps ~metric:(fun (c : W.Appmodel.cache_result) ->
        S.slab_churns c.W.Appmodel.snap)
  in
  let table =
    T.render
      ~header:[ "benchmark cache"; "slub churns"; "prudence churns"; "change" ]
      rows
  in
  Report.make
    ~metrics:
      [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:0.
          "fig9.pairs_improved"
          (float_of_int (count_improved rows));
      ]
    ~id:"fig9" ~title:"Slab churns (grow/shrink pairs)"
    ~paper_claim:
      "Prudence cuts slab churns by 21-98% (Netperf filp collapses from \
       364K to 6K); Postmark dentry improves least (-3.1%)"
    ~verdict:
      (Printf.sprintf "slab churns reduced for %d of %d cache/benchmark pairs"
         (count_improved rows) (List.length rows))
    table

let report_fig10 params apps =
  let rows =
    pct_change_rows params apps ~metric:(fun (c : W.Appmodel.cache_result) ->
        c.W.Appmodel.snap.Slab.Slab_stats.peak_slabs)
  in
  let table =
    T.render
      ~header:[ "benchmark cache"; "slub peak"; "prudence peak"; "change" ]
      rows
  in
  Report.make
    ~metrics:
      [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:0.
          "fig10.pairs_improved"
          (float_of_int (count_improved rows));
      ]
    ~id:"fig10" ~title:"Peak slab usage (maximum memory footprint)"
    ~paper_claim:
      "Prudence reduces peak slab usage 2.5-30.6% for most caches (deferred \
       objects are reusable right after the grace period, avoiding slab \
       growth), +/-2% elsewhere, Apache kmalloc-64 +5%"
    ~verdict:
      (Printf.sprintf "peak slabs reduced for %d of %d cache/benchmark pairs"
         (count_improved rows) (List.length rows))
    table

let report_fig11 params apps =
  let rows =
    per_cache_table params apps ~columns:(fun sc pc ->
        let fs = sc.W.Appmodel.fragmentation
        and fp = pc.W.Appmodel.fragmentation in
        let change = 100. *. (fp -. fs) /. fs in
        [ T.fmt_f fs; T.fmt_f fp; T.fmt_pct change ])
  in
  let table =
    T.render
      ~header:[ "benchmark cache"; "slub f_t"; "prudence f_t"; "change" ]
      rows
  in
  let improved_or_equal =
    List.length
      (List.filter
         (fun r ->
           let c = List.nth r 3 in
           c = "-" || (String.length c > 0 && c.[0] = '-') || c = "+0.0%")
         rows)
  in
  Report.make
    ~metrics:
      [
        Report.metric ~direction:Report.Higher_better ~tolerance_pct:0.
          "fig11.pairs_improved_or_equal"
          (float_of_int improved_or_equal);
      ]
    ~id:"fig11"
    ~title:"Total fragmentation after each run (allocated/requested bytes)"
    ~paper_claim:
      "Prudence reduces fragmentation 7-33% for many caches (slab selection \
       considers deferred objects, Fig. 5), +/-2% elsewhere; Netperf filp \
       regresses 8.7% (only 10 partial slabs are scanned: latency trade-off)"
    ~verdict:
      (Printf.sprintf
         "fragmentation reduced or equal for %d of %d cache/benchmark pairs"
         improved_or_equal (List.length rows))
    table

let report_fig12 apps =
  let rows =
    List.map
      (fun (bench, slub, prud) ->
        [
          bench;
          Printf.sprintf "%.1f%%" slub.W.Appmodel.deferred_pct;
          Printf.sprintf "%.1f%%" prud.W.Appmodel.deferred_pct;
        ])
      apps
  in
  let table =
    T.render ~header:[ "benchmark"; "slub"; "prudence" ] rows
  in
  Report.make
    ~metrics:
      (List.map
         (fun (b, _, p) ->
           Report.metric
             (Printf.sprintf "fig12.%s.deferred_pct" b)
             p.W.Appmodel.deferred_pct)
         apps)
    ~id:"fig12"
    ~title:"Deferred frees as a share of all free operations"
    ~paper_claim:
      "Postmark 24.4%, Apache 18%, Netperf 14%, PostgreSQL 4.4% — the \
       optimization opportunity per benchmark"
    ~verdict:
      (String.concat ", "
         (List.map
            (fun (b, _, p) ->
              Printf.sprintf "%s %.1f%%" b p.W.Appmodel.deferred_pct)
            apps))
    table

let report_fig13 apps =
  let rows =
    List.map
      (fun (bench, slub, prud) ->
        let imp =
          Sim.Stat.percent_change ~baseline:slub.W.Appmodel.throughput
            prud.W.Appmodel.throughput
        in
        [
          bench;
          T.fmt_f slub.W.Appmodel.throughput;
          T.fmt_f prud.W.Appmodel.throughput;
          T.fmt_pct imp;
        ])
      apps
  in
  let table =
    T.render
      ~header:[ "benchmark"; "slub txn/s"; "prudence txn/s"; "improvement" ]
      rows
  in
  Report.make
    ~metrics:
      (List.map
         (fun (b, s, p) ->
           (* Throughput deltas compare two divergent schedules; allow
              generous drift and fail only on a substantial collapse. *)
           Report.metric ~direction:Report.Higher_better ~tolerance_pct:30.
             (Printf.sprintf "fig13.%s.improvement_pct" b)
             (Sim.Stat.percent_change ~baseline:s.W.Appmodel.throughput
                p.W.Appmodel.throughput))
         apps)
    ~id:"fig13" ~title:"Overall benchmark throughput"
    ~paper_claim:
      "Prudence improves end-to-end throughput: Postmark +18% (highest \
       deferred share), Apache +5.6%, PostgreSQL +4.6%, Netperf +4.2%"
    ~verdict:
      (String.concat ", "
         (List.map
            (fun (b, s, p) ->
              Printf.sprintf "%s %s" b
                (T.fmt_pct
                   (Sim.Stat.percent_change
                      ~baseline:s.W.Appmodel.throughput
                      p.W.Appmodel.throughput)))
            apps))
    table

let run_apps params =
  let apps = app_results params in
  [
    report_fig7 params apps;
    report_fig8 params apps;
    report_fig9 params apps;
    report_fig10 params apps;
    report_fig11 params apps;
    report_fig12 apps;
    report_fig13 apps;
  ]

(* ------------------------------------------------------------------ *)
(* Extension: RCU tree updates (multi-object deferral, section 3.1)     *)
(* ------------------------------------------------------------------ *)

(* "Tree re-balancing results in multiple deferred objects" (3.1): every
   path-copying update defers O(depth) objects at once, multiplying the
   deferred-free pressure per operation. Each CPU churns its own
   RCU-protected BST; the per-update deferral burst is what distinguishes
   this from the Fig. 6 single-object microbenchmark. *)
let run_tree params =
  let run kind =
    let env = W.Env.build (app_env params kind) in
    let backend = env.W.Env.backend in
    let cache =
      backend.Slab.Backend.create_cache ~name:"tree_node" ~obj_size:64
    in
    let ncpus = Sim.Machine.nr_cpus env.W.Env.machine in
    let keyspace = 255 in
    let updates = ref 0 in
    let finish = ref 0 in
    for i = 0 to ncpus - 1 do
      Sim.Process.spawn env.W.Env.eng (fun () ->
          let cpu = W.Env.cpu env i in
          let rng = Sim.Rng.split env.W.Env.rng in
          let tree =
            Rcudata.Rcutree.create ~backend ~readers:env.W.Env.readers ~cache
              ~name:(Printf.sprintf "t%d" i)
          in
          for k = 1 to keyspace do
            ignore (Rcudata.Rcutree.insert tree cpu ~key:(k * 37 mod 256) ~value:k)
          done;
          for _ = 1 to scaled params 20_000 do
            let key = Sim.Rng.int rng 256 in
            (if Sim.Rng.bool rng then
               ignore (Rcudata.Rcutree.insert tree cpu ~key ~value:key)
             else ignore (Rcudata.Rcutree.delete tree cpu ~key));
            incr updates;
            Sim.Process.sleep env.W.Env.eng (500 + Sim.Machine.drain cpu)
          done;
          finish := max !finish (Sim.Engine.now env.W.Env.eng))
    done;
    Sim.Engine.run_until_quiet env.W.Env.eng;
    Sim.Process.spawn env.W.Env.eng (fun () -> backend.Slab.Backend.settle ());
    Sim.Engine.run_until_quiet env.W.Env.eng;
    let snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
    let rate = float_of_int !updates /. (float_of_int (max 1 !finish) /. 1e9) in
    (snap, rate, !updates)
  in
  let s_snap, s_rate, s_updates = run W.Env.Baseline in
  let p_snap, p_rate, p_updates = run W.Env.Prudence_alloc in
  let row label (snap : Slab.Slab_stats.snapshot) rate updates =
    [
      label;
      Printf.sprintf "%.2f" (rate /. 1e6);
      T.fmt_f
        (float_of_int snap.Slab.Slab_stats.deferred_frees
        /. float_of_int (max 1 updates));
      T.fmt_i (Slab.Slab_stats.ocache_churns snap);
      T.fmt_i snap.Slab.Slab_stats.peak_slabs;
    ]
  in
  let table =
    T.render
      ~header:
        [ "allocator"; "Mupdates/s"; "defers/update"; "ocache churns";
          "peak slabs" ]
      [ row "slub" s_snap s_rate s_updates; row "prudence" p_snap p_rate p_updates ]
  in
  [
    Report.make
      ~metrics:
        [
          Report.metric ~direction:Report.Higher_better ~tolerance_pct:25.
            "tree.speedup" (p_rate /. s_rate);
          Report.metric "tree.defers_per_update"
            (float_of_int p_snap.Slab.Slab_stats.deferred_frees
            /. float_of_int (max 1 p_updates));
        ]
      ~id:"tree"
      ~title:
        "Extension: RCU tree updates (path copying defers several objects \
         per operation)"
      ~paper_claim:
        "section 3.1: real update operations defer multiple objects at once \
         (tree re-balancing), amplifying bursty freeing; the paper's \
         microbenchmark defers one object per operation"
      ~verdict:
        (Printf.sprintf
           "prudence %.2fx faster at %.1f deferred objects per update"
           (p_rate /. s_rate)
           (float_of_int p_snap.Slab.Slab_stats.deferred_frees
           /. float_of_int (max 1 p_updates)))
      table;
  ]

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md              *)
(* ------------------------------------------------------------------ *)

let ablation_latent_cap params =
  let run latent_cap label =
    let cfg = { Prudence.default_config with Prudence.latent_cap } in
    let env =
      W.Env.build { (app_env params W.Env.Prudence_alloc) with
                    W.Env.prudence_config = cfg }
    in
    let r =
      W.Appmodel.run env (W.Apache.config ~txns_per_cpu:(scaled params 4_000) ())
    in
    let sum f = List.fold_left (fun a c -> a + f c) 0 r.W.Appmodel.caches in
    let hits =
      let h = sum (fun c -> c.W.Appmodel.snap.Slab.Slab_stats.hits) in
      let a = sum (fun c -> c.W.Appmodel.snap.Slab.Slab_stats.allocs) in
      100. *. float_of_int h /. float_of_int (max 1 a)
    in
    [
      label;
      Printf.sprintf "%.2f%%" hits;
      T.fmt_i (sum (fun c -> c.W.Appmodel.snap.Slab.Slab_stats.latent_overflows));
      T.fmt_i (sum (fun c -> c.W.Appmodel.snap.Slab.Slab_stats.premoves));
      T.fmt_f r.W.Appmodel.throughput;
    ]
  in
  let table =
    T.render
      ~header:
        [ "latent cache bound"; "hit rate"; "to latent slab"; "pre-moves";
          "txn/s" ]
      [
        run (Some 0) "0 (disabled)";
        run None "= object cache (paper)";
        run (Some 240) "4x object cache";
      ]
  in
  Report.make ~id:"ablation-latent-cap"
    ~title:"Ablation: latent cache bound (§4.1)"
    ~paper_claim:
      "the bound equals the object-cache size as a proactive measure \
       against overflow when safe objects merge"
    ~verdict:"see table: disabling the latent cache forces every deferred \
              object through the node lists"
    table

let ablation_scan_depth params =
  let run depth =
    let cfg = { Prudence.default_config with Prudence.scan_depth = depth } in
    let env =
      W.Env.build { (microbench_env params W.Env.Prudence_alloc params.seed) with
                    W.Env.prudence_config = cfg }
    in
    let r =
      W.Microbench.run env
        {
          W.Microbench.default_config with
          W.Microbench.obj_size = 512;
          pairs_per_cpu = scaled params 30_000;
        }
    in
    [
      string_of_int depth;
      Printf.sprintf "%.2f" (r.W.Microbench.pairs_per_sec /. 1e6);
      T.fmt_i r.W.Microbench.snap.Slab.Slab_stats.peak_slabs;
      T.fmt_i r.W.Microbench.snap.Slab.Slab_stats.grows;
    ]
  in
  let table =
    T.render
      ~header:
        [ "latent slabs scanned"; "Mpairs/s"; "peak slabs"; "grows" ]
      [ run 1; run 10; run 100 ]
  in
  Report.make ~id:"ablation-scan-depth"
    ~title:"Ablation: slab-selection scan depth (§5.4 trade-off)"
    ~paper_claim:
      "Prudence scans only the first 10 partial slabs: deeper scans could \
       reduce fragmentation further but increase refill latency"
    ~verdict:"see table" table

let ablation_preflush params =
  let run preflush_enabled =
    let cfg = { Prudence.default_config with Prudence.preflush_enabled } in
    let env =
      W.Env.build { (app_env params W.Env.Prudence_alloc) with
                    W.Env.prudence_config = cfg }
    in
    let r =
      W.Appmodel.run env (W.Apache.config ~txns_per_cpu:(scaled params 4_000) ())
    in
    let total_flushes =
      List.fold_left
        (fun acc (c : W.Appmodel.cache_result) ->
          acc + c.W.Appmodel.snap.Slab.Slab_stats.flushes)
        0 r.W.Appmodel.caches
    in
    let total_preflush =
      List.fold_left
        (fun acc (c : W.Appmodel.cache_result) ->
          acc + c.W.Appmodel.snap.Slab.Slab_stats.preflushed_objs)
        0 r.W.Appmodel.caches
    in
    let contended =
      List.fold_left
        (fun acc (c : W.Appmodel.cache_result) -> acc + c.W.Appmodel.lock_contended)
        0 r.W.Appmodel.caches
    in
    [
      (if preflush_enabled then "enabled (paper)" else "disabled");
      T.fmt_i total_preflush;
      T.fmt_i total_flushes;
      T.fmt_i contended;
      T.fmt_f r.W.Appmodel.throughput;
    ]
  in
  let table =
    T.render
      ~header:
        [ "idle pre-flush"; "pre-flushed objs"; "workload flushes";
          "contended lock acq"; "txn/s" ]
      [ run true; run false ]
  in
  Report.make ~id:"ablation-preflush"
    ~title:"Ablation: idle-time latent-cache pre-flush (§4.2)"
    ~paper_claim:
      "pre-flushing during CPU idle time spreads node-lock traffic over \
       time instead of bursting it at grace-period completion"
    ~verdict:"see table" table

let ablation_blimit params =
  let run blimit expedited =
    let rcu_config =
      {
        fig3_rcu_config with
        Rcu.blimit;
        expedited_blimit = expedited;
      }
    in
    let env_cfg =
      { (endurance_env params W.Env.Baseline) with W.Env.rcu_config } in
    let env = W.Env.build env_cfg in
    let r =
      W.Endurance.run env
        {
          (endurance_config params) with
          W.Endurance.duration_ns = Sim.Clock.s (scaled params 8);
        }
    in
    [
      Printf.sprintf "%d/%d" blimit expedited;
      fmt_time_opt r.W.Endurance.oom_at_ns;
      T.fmt_f r.W.Endurance.peak_used_mib;
      T.fmt_i r.W.Endurance.max_backlog;
    ]
  in
  let table =
    T.render
      ~header:
        [ "blimit normal/expedited"; "OOM at"; "peak MiB"; "max backlog" ]
      [ run 10 30; run 30 90; run 100 1000 ]
  in
  Report.make ~id:"ablation-blimit"
    ~title:"Ablation: RCU callback throttling vs baseline survival (§3)"
    ~paper_claim:
      "throttling protects latency but delays reclamation; the lower the \
       invocation budget, the sooner the baseline exhausts memory"
    ~verdict:"see table" table

let run_ablations params =
  [
    ablation_latent_cap params;
    ablation_scan_depth params;
    ablation_preflush params;
    ablation_blimit params;
  ]

(* ------------------------------------------------------------------ *)
(* Traced runs: the same workloads with the Trace tracer armed          *)
(* ------------------------------------------------------------------ *)

let traceable = [ "fig3"; "fig6" ]

let run_traced params id =
  (* Force tracing on (the whole point of the call), keeping any
     caller-chosen ring capacity. *)
  let params =
    { params with trace = Some (Option.value params.trace ~default:65_536) }
  in
  let pair build run_workload =
    List.map
      (fun kind ->
        let env = W.Env.build (build kind) in
        run_workload env;
        (W.Env.kind_label kind, env.W.Env.tracer))
      [ W.Env.Baseline; W.Env.Prudence_alloc ]
  in
  match id with
  | "fig3" ->
      Some
        (pair (endurance_env params) (fun env ->
             ignore (W.Endurance.run env (endurance_config params))))
  | "fig6" ->
      Some
        (pair
           (fun kind -> microbench_env params kind params.seed)
           (fun env ->
             ignore
               (W.Microbench.run env (microbench_config params ~obj_size:512))))
  | _ -> None

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      id = "fig3";
      title = "Endurance: used memory over time, baseline OOM vs equilibrium";
      paper_ref = "Fig. 3, §3.5, §5.5";
      run = run_fig3;
    };
    {
      id = "costs";
      title = "Relative allocation-path costs";
      paper_ref = "§3.3";
      run = run_costs;
    };
    {
      id = "fig6";
      title = "Microbenchmark: alloc/defer-free pairs per second by size";
      paper_ref = "Fig. 6, §5.2";
      run = run_fig6;
    };
    {
      id = "apps";
      title = "Application benchmarks (emits Figs. 7-13)";
      paper_ref = "Figs. 7-13, §5.3-5.4";
      run = run_apps;
    };
    {
      id = "tree";
      title = "RCU tree updates: multi-object deferral";
      paper_ref = "section 3.1 (extension)";
      run = run_tree;
    };
    {
      id = "ablations";
      title = "Design-choice ablations";
      paper_ref = "DESIGN.md";
      run = run_ablations;
    };
  ]

let find id =
  List.find_opt (fun e -> e.id = id) all
  |> function
  | Some e -> Some e
  | None -> (
      (* figN aliases resolve to the apps experiment *)
      match id with
      | "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13" ->
          List.find_opt (fun e -> e.id = "apps") all
      | _ -> None)
