(** Span profiler with GC-delta allocation accounting.

    Mirrors [lib/trace]'s null-sink discipline: a profiler is either
    live or {!null}, and every entry point starts with a single
    [enabled] branch, so instrumented hot paths cost one load + branch
    and zero allocation when profiling is off.

    A live profiler keeps per-(CPU row, span) unboxed accumulators —
    call counts, self/inclusive wall time, self minor/major GC words —
    plus an interned call-path tree for folded-stack (flamegraph)
    output. Row 0 aggregates un-pinned (global) work; row [c+1] is
    CPU [c].

    {b Clock.} Wall time comes from [clock_gettime(CLOCK_MONOTONIC)]
    via an allocation-free stub (ns resolution, immune to wall-clock
    steps). Per-call figures on tiny spans still carry timer-read
    jitter; treat per-call ns as estimates, per-run totals as real.

    {b Probe-overhead compensation.} The stock [Gc.minor_words] /
    [Gc.counters] primitives box their results on the minor heap, so a
    profiler built on them measures its own probes. The probes here are
    [@@noalloc] externals returning unboxed floats (the runtime's
    [caml_gc_minor_words_unboxed] plus two stubs in prof_stubs.c), so
    reading a counter does not move it. [create] additionally
    calibrates any residual per-pair footprint (e.g. bytecode's boxed
    fallbacks, codegen boxing) and every exit subtracts it, so a span
    wrapping code that allocates nothing reports ~0 words even under
    deep nesting.

    {b Suspension resilience.} Simulated processes ([Sim.Process]) can
    suspend mid-span via effects, abandoning open frames. [exit]
    therefore matches by span: it unwinds (and attributes) any frames
    opened above the matching one, and is a no-op if no frame matches —
    counters stay consistent across suspend/resume at the cost of
    attributing an abandoned frame's tail to the suspension point. *)

type t

val null : t
(** The disabled sink: every operation is a no-op. *)

val create : ?ncpus:int -> unit -> t
(** A live profiler with [ncpus] CPU rows (default 8) plus the global
    row. Runs a short calibration loop to measure probe overhead. *)

val enabled : t -> bool

(** {1 Instrumentation} *)

val enter : t -> cpu:int -> Span.t -> unit
(** Open a span frame. [cpu] is the executing CPU id, or [-1] for work
    not attributable to one CPU (attributed to the global row; out-of-
    range ids also fall back to the global row). Calls are counted at
    enter so truncated/abandoned frames still show up in call counts. *)

val exit : t -> Span.t -> unit
(** Close the topmost frame for this span, unwinding any frames
    abandoned above it (see suspension resilience above). No-op if no
    open frame matches. *)

(** {1 Snapshot} *)

type cell = {
  span : Span.t;
  cpu : int;  (** [-1] for the global row. *)
  calls : int;
  self_ns : float;
  incl_ns : float;
  self_minor_words : float;
  self_major_words : float;
}

val cells : t -> cell list
(** Non-empty cells, (row, span) order. Empty on {!null}. *)

val totals : t -> cell list
(** Per-span cells summed over all rows ([cpu = -1]), span order; only
    spans with calls > 0. *)

val subsystem_totals : t -> (string * float * float) list
(** [(subsystem, self_ns, self_minor_words)] summed over its spans, in
    {!Span.subsystems} order, including zero rows. *)

val total_self_ns : t -> float
val total_minor_words : t -> float
val total_major_words : t -> float

val elapsed_ns : t -> float
(** Wall ns since [create] (0 on {!null}). *)

val truncated : t -> int
(** Frames dropped to stack-depth overflow (calls still counted). *)

val dropped_exits : t -> int
(** [exit] calls that matched no open frame (suspension artifacts). *)

val folded :
  ?weight:[ `Calls | `Self_ns | `Self_minor_words ] -> t -> (string * int) list
(** Folded call paths for flamegraph tooling: [("a.b;c.d", n)], root
    first, ';'-separated, sorted by path. Weight defaults to [`Calls];
    ns/words weights are rounded to the nearest integer. Zero-weight
    paths are dropped. *)

val reset : t -> unit
(** Zero all accumulators and the path tree; keeps calibration. *)
