type t =
  | Engine_dispatch
  | Engine_schedule
  | Engine_heap_pop
  | Buddy_alloc
  | Buddy_free
  | Slab_alloc
  | Slab_free
  | Slab_defer
  | Slab_grow
  | Latq_push
  | Latq_harvest
  | Rcu_qs
  | Rcu_gp
  | Rcu_cb_drain
  | Prudence_defer
  | Prudence_scan
  | Prudence_flush
  | Check_probe
  | Engine_wheel_advance
  | Engine_bucket_drain

let count = 20

let index = function
  | Engine_dispatch -> 0
  | Engine_schedule -> 1
  | Engine_heap_pop -> 2
  | Buddy_alloc -> 3
  | Buddy_free -> 4
  | Slab_alloc -> 5
  | Slab_free -> 6
  | Slab_defer -> 7
  | Slab_grow -> 8
  | Latq_push -> 9
  | Latq_harvest -> 10
  | Rcu_qs -> 11
  | Rcu_gp -> 12
  | Rcu_cb_drain -> 13
  | Prudence_defer -> 14
  | Prudence_scan -> 15
  | Prudence_flush -> 16
  | Check_probe -> 17
  | Engine_wheel_advance -> 18
  | Engine_bucket_drain -> 19

let of_index = function
  | 0 -> Engine_dispatch
  | 1 -> Engine_schedule
  | 2 -> Engine_heap_pop
  | 3 -> Buddy_alloc
  | 4 -> Buddy_free
  | 5 -> Slab_alloc
  | 6 -> Slab_free
  | 7 -> Slab_defer
  | 8 -> Slab_grow
  | 9 -> Latq_push
  | 10 -> Latq_harvest
  | 11 -> Rcu_qs
  | 12 -> Rcu_gp
  | 13 -> Rcu_cb_drain
  | 14 -> Prudence_defer
  | 15 -> Prudence_scan
  | 16 -> Prudence_flush
  | 17 -> Check_probe
  | 18 -> Engine_wheel_advance
  | 19 -> Engine_bucket_drain
  | i -> invalid_arg (Printf.sprintf "Prof.Span.of_index %d" i)

let all = List.init count of_index

let name = function
  | Engine_dispatch -> "engine.dispatch"
  | Engine_schedule -> "engine.schedule"
  | Engine_heap_pop -> "engine.heap_pop"
  | Buddy_alloc -> "buddy.alloc"
  | Buddy_free -> "buddy.free"
  | Slab_alloc -> "slab.alloc"
  | Slab_free -> "slab.free"
  | Slab_defer -> "slab.defer"
  | Slab_grow -> "slab.grow"
  | Latq_push -> "slab.latq_push"
  | Latq_harvest -> "slab.latq_harvest"
  | Rcu_qs -> "rcu.qs"
  | Rcu_gp -> "rcu.gp"
  | Rcu_cb_drain -> "rcu.cb_drain"
  | Prudence_defer -> "prudence.defer"
  | Prudence_scan -> "prudence.scan"
  | Prudence_flush -> "prudence.flush"
  | Check_probe -> "check.probe"
  | Engine_wheel_advance -> "engine.wheel_advance"
  | Engine_bucket_drain -> "engine.bucket_drain"

let subsystem s =
  let n = name s in
  String.sub n 0 (String.index n '.')

let subsystems =
  List.fold_left
    (fun acc s ->
      let sub = subsystem s in
      if List.mem sub acc then acc else acc @ [ sub ])
    [] all
