let nspans = Span.count
let max_depth = 256

type t = {
  enabled : bool;
  ncpus : int;
  rows : int;  (* ncpus + 1; row 0 is the global (-1) row *)
  (* Accumulators, indexed [row * nspans + span]. *)
  acc_calls : int array;
  acc_self_ns : float array;
  acc_incl_ns : float array;
  acc_self_minor : float array;
  acc_self_major : float array;
  (* Open-frame stack as parallel arrays: no allocation per enter. *)
  mutable depth : int;
  f_span : int array;
  f_row : int array;
  f_node : int array;  (* path-tree node *)
  f_t0 : float array;
  f_m0 : float array;  (* minor_words at enter *)
  f_j0 : float array;  (* major_words at enter *)
  f_child_ns : float array;  (* sum of children's inclusive ns *)
  f_child_minor : float array;
  f_child_major : float array;
  f_pairs : int array;  (* completed descendant enter/exit pairs *)
  mutable truncated : int;
  mutable dropped_exits : int;
  (* Interned call-path tree (growable parallel arrays). [node_child]
     is a dense [capacity * nspans] table of child node ids (-1 none). *)
  mutable nnodes : int;
  mutable node_cap : int;
  mutable node_span : int array;
  mutable node_parent : int array;
  mutable node_calls : int array;
  mutable node_self_ns : float array;
  mutable node_self_minor : float array;
  mutable node_child : int array;
  (* Calibrated probe overhead (see mli). *)
  mutable own_ns : float;  (* probe cost inside a leaf span's own window *)
  mutable own_minor : float;
  mutable pair_ns : float;  (* full enter+exit pair cost seen by parent *)
  mutable pair_minor : float;
  mutable created_at : float;
}

(* Allocation-free probes (see prof_stubs.c). The native externals
   return unboxed floats in registers, so reading a GC counter does not
   move it; bytecode falls back to the boxed primitives, where the
   calibration below absorbs the probe footprint. *)
external minor_words : unit -> (float [@unboxed])
  = "caml_gc_minor_words" "caml_gc_minor_words_unboxed"
[@@noalloc]

external major_words : unit -> (float [@unboxed])
  = "prof_major_words" "prof_major_words_unboxed"
[@@noalloc]

external now_ns : unit -> (float [@unboxed])
  = "prof_monotonic_ns" "prof_monotonic_ns_unboxed"
[@@noalloc]

let make ~enabled ~ncpus ~node_cap =
  let rows = ncpus + 1 in
  let cells = rows * nspans in
  {
    enabled;
    ncpus;
    rows;
    acc_calls = Array.make (max cells 1) 0;
    acc_self_ns = Array.make (max cells 1) 0.;
    acc_incl_ns = Array.make (max cells 1) 0.;
    acc_self_minor = Array.make (max cells 1) 0.;
    acc_self_major = Array.make (max cells 1) 0.;
    depth = 0;
    f_span = Array.make max_depth 0;
    f_row = Array.make max_depth 0;
    f_node = Array.make max_depth (-1);
    f_t0 = Array.make max_depth 0.;
    f_m0 = Array.make max_depth 0.;
    f_j0 = Array.make max_depth 0.;
    f_child_ns = Array.make max_depth 0.;
    f_child_minor = Array.make max_depth 0.;
    f_child_major = Array.make max_depth 0.;
    f_pairs = Array.make max_depth 0;
    truncated = 0;
    dropped_exits = 0;
    nnodes = 0;
    node_cap;
    node_span = Array.make (max node_cap 1) 0;
    node_parent = Array.make (max node_cap 1) (-1);
    node_calls = Array.make (max node_cap 1) 0;
    node_self_ns = Array.make (max node_cap 1) 0.;
    node_self_minor = Array.make (max node_cap 1) 0.;
    node_child = Array.make (max (node_cap * nspans) 1) (-1);
    own_ns = 0.;
    own_minor = 0.;
    pair_ns = 0.;
    pair_minor = 0.;
    created_at = 0.;
  }

let null = make ~enabled:false ~ncpus:0 ~node_cap:0
let enabled t = t.enabled

(* -- path tree -- *)

let grow_nodes t =
  let cap = max 16 (t.node_cap * 2) in
  let copy_int a = Array.append a (Array.make (cap - t.node_cap) 0) in
  let copy_f a = Array.append a (Array.make (cap - t.node_cap) 0.) in
  t.node_span <- copy_int t.node_span;
  t.node_parent <-
    Array.append t.node_parent (Array.make (cap - t.node_cap) (-1));
  t.node_calls <- copy_int t.node_calls;
  t.node_self_ns <- copy_f t.node_self_ns;
  t.node_self_minor <- copy_f t.node_self_minor;
  t.node_child <-
    Array.append t.node_child
      (Array.make ((cap - t.node_cap) * nspans) (-1));
  t.node_cap <- cap

(* Child of [parent] (-1 = root) for span [si], interning on miss. The
   root's children live at virtual parent slot via a linear scan over
   depth-0 nodes — kept simple: root children are also interned through
   the dense table by reserving node 0 as a synthetic root. *)
let intern t ~parent ~si =
  (* Node 0 is the synthetic root, created lazily. *)
  if t.nnodes = 0 then begin
    if t.node_cap = 0 then grow_nodes t;
    t.node_span.(0) <- -1;
    t.node_parent.(0) <- -1;
    t.nnodes <- 1
  end;
  let p = if parent < 0 then 0 else parent in
  let slot = (p * nspans) + si in
  let existing = t.node_child.(slot) in
  if existing >= 0 then existing
  else begin
    if t.nnodes >= t.node_cap then grow_nodes t;
    let id = t.nnodes in
    t.nnodes <- id + 1;
    t.node_span.(id) <- si;
    t.node_parent.(id) <- p;
    t.node_calls.(id) <- 0;
    t.node_self_ns.(id) <- 0.;
    t.node_self_minor.(id) <- 0.;
    (* [grow_nodes] may have reallocated [node_child]; recompute slot
       base off the stable [p]. *)
    t.node_child.((p * nspans) + si) <- id;
    id
  end

(* -- instrumentation -- *)

let enter t ~cpu span =
  if t.enabled then begin
    let si = Span.index span in
    let row = if cpu >= 0 && cpu < t.ncpus then cpu + 1 else 0 in
    t.acc_calls.((row * nspans) + si) <- t.acc_calls.((row * nspans) + si) + 1;
    if t.depth >= max_depth then t.truncated <- t.truncated + 1
    else begin
      let d = t.depth in
      let parent = if d = 0 then -1 else t.f_node.(d - 1) in
      let node = intern t ~parent ~si in
      t.node_calls.(node) <- t.node_calls.(node) + 1;
      t.f_span.(d) <- si;
      t.f_row.(d) <- row;
      t.f_node.(d) <- node;
      t.f_child_ns.(d) <- 0.;
      t.f_child_minor.(d) <- 0.;
      t.f_child_major.(d) <- 0.;
      t.f_pairs.(d) <- 0;
      t.f_t0.(d) <- now_ns ();
      t.f_j0.(d) <- major_words ();
      t.f_m0.(d) <- minor_words ();
      t.depth <- d + 1
    end
  end

let comp raw own pairs_below pair =
  let v = raw -. own -. (float_of_int pairs_below *. pair) in
  if v > 0. then v else 0.

let minus_child incl child = if incl > child then incl -. child else 0.

(* Close the top frame unconditionally, attributing its window. *)
let pop_top t =
  let m1 = minor_words () in
  let j1 = major_words () in
  let t1 = now_ns () in
  let d = t.depth - 1 in
  let si = t.f_span.(d) in
  let row = t.f_row.(d) in
  let node = t.f_node.(d) in
  let pairs_below = t.f_pairs.(d) in
  let raw_ns = t1 -. t.f_t0.(d) in
  let raw_minor = m1 -. t.f_m0.(d) in
  let raw_major = j1 -. t.f_j0.(d) in
  let incl_ns = comp raw_ns t.own_ns pairs_below t.pair_ns in
  let incl_minor = comp raw_minor t.own_minor pairs_below t.pair_minor in
  let incl_major = if raw_major > 0. then raw_major else 0. in
  let self_ns = minus_child incl_ns t.f_child_ns.(d) in
  let self_minor = minus_child incl_minor t.f_child_minor.(d) in
  let self_major = minus_child incl_major t.f_child_major.(d) in
  let idx = (row * nspans) + si in
  t.acc_self_ns.(idx) <- t.acc_self_ns.(idx) +. self_ns;
  t.acc_incl_ns.(idx) <- t.acc_incl_ns.(idx) +. incl_ns;
  t.acc_self_minor.(idx) <- t.acc_self_minor.(idx) +. self_minor;
  t.acc_self_major.(idx) <- t.acc_self_major.(idx) +. self_major;
  if node >= 0 then begin
    t.node_self_ns.(node) <- t.node_self_ns.(node) +. self_ns;
    t.node_self_minor.(node) <- t.node_self_minor.(node) +. self_minor
  end;
  t.depth <- d;
  if d > 0 then begin
    let p = d - 1 in
    t.f_child_ns.(p) <- t.f_child_ns.(p) +. incl_ns;
    t.f_child_minor.(p) <- t.f_child_minor.(p) +. incl_minor;
    t.f_child_major.(p) <- t.f_child_major.(p) +. incl_major;
    t.f_pairs.(p) <- t.f_pairs.(p) + pairs_below + 1
  end

(* Top-level so [exit] allocates no closure on the hot path. *)
let rec find_frame t si d =
  if d < 0 then -1 else if t.f_span.(d) = si then d else find_frame t si (d - 1)

let exit t span =
  if t.enabled then begin
    let si = Span.index span in
    let d = find_frame t si (t.depth - 1) in
    if d < 0 then t.dropped_exits <- t.dropped_exits + 1
    else begin
      (* Unwind frames abandoned above the match (effect suspensions). *)
      while t.depth - 1 > d do
        pop_top t
      done;
      pop_top t
    end
  end

(* -- snapshot -- *)

type cell = {
  span : Span.t;
  cpu : int;
  calls : int;
  self_ns : float;
  incl_ns : float;
  self_minor_words : float;
  self_major_words : float;
}

let cell_at t row si =
  let idx = (row * nspans) + si in
  {
    span = Span.of_index si;
    cpu = row - 1;
    calls = t.acc_calls.(idx);
    self_ns = t.acc_self_ns.(idx);
    incl_ns = t.acc_incl_ns.(idx);
    self_minor_words = t.acc_self_minor.(idx);
    self_major_words = t.acc_self_major.(idx);
  }

let cells t =
  if not t.enabled then []
  else
    let out = ref [] in
    for row = t.rows - 1 downto 0 do
      for si = nspans - 1 downto 0 do
        let c = cell_at t row si in
        if c.calls > 0 then out := c :: !out
      done
    done;
    !out

let totals t =
  if not t.enabled then []
  else
    let out = ref [] in
    for si = nspans - 1 downto 0 do
      let acc =
        ref
          {
            span = Span.of_index si;
            cpu = -1;
            calls = 0;
            self_ns = 0.;
            incl_ns = 0.;
            self_minor_words = 0.;
            self_major_words = 0.;
          }
      in
      for row = 0 to t.rows - 1 do
        let c = cell_at t row si in
        acc :=
          {
            !acc with
            calls = !acc.calls + c.calls;
            self_ns = !acc.self_ns +. c.self_ns;
            incl_ns = !acc.incl_ns +. c.incl_ns;
            self_minor_words = !acc.self_minor_words +. c.self_minor_words;
            self_major_words = !acc.self_major_words +. c.self_major_words;
          }
      done;
      if !acc.calls > 0 then out := !acc :: !out
    done;
    !out

let subsystem_totals t =
  List.map
    (fun sub ->
      let ns = ref 0. and words = ref 0. in
      List.iter
        (fun c ->
          if String.equal (Span.subsystem c.span) sub then begin
            ns := !ns +. c.self_ns;
            words := !words +. c.self_minor_words
          end)
        (totals t);
      (sub, !ns, !words))
    Span.subsystems

let total_self_ns t = List.fold_left (fun a c -> a +. c.self_ns) 0. (totals t)

let total_minor_words t =
  List.fold_left (fun a c -> a +. c.self_minor_words) 0. (totals t)

let total_major_words t =
  List.fold_left (fun a c -> a +. c.self_major_words) 0. (totals t)

let elapsed_ns t = if t.enabled then now_ns () -. t.created_at else 0.
let truncated t = t.truncated
let dropped_exits t = t.dropped_exits

let node_path t id =
  let rec go id acc =
    if id <= 0 then acc
    else go t.node_parent.(id) (Span.name (Span.of_index t.node_span.(id)) :: acc)
  in
  String.concat ";" (go id [])

let folded ?(weight = `Calls) t =
  if not t.enabled then []
  else begin
    let out = ref [] in
    for id = 1 to t.nnodes - 1 do
      let w =
        match weight with
        | `Calls -> t.node_calls.(id)
        | `Self_ns -> int_of_float (Float.round t.node_self_ns.(id))
        | `Self_minor_words -> int_of_float (Float.round t.node_self_minor.(id))
      in
      if w > 0 then out := (node_path t id, w) :: !out
    done;
    List.sort (fun (a, _) (b, _) -> String.compare a b) !out
  end

let reset t =
  if t.enabled then begin
    Array.fill t.acc_calls 0 (Array.length t.acc_calls) 0;
    Array.fill t.acc_self_ns 0 (Array.length t.acc_self_ns) 0.;
    Array.fill t.acc_incl_ns 0 (Array.length t.acc_incl_ns) 0.;
    Array.fill t.acc_self_minor 0 (Array.length t.acc_self_minor) 0.;
    Array.fill t.acc_self_major 0 (Array.length t.acc_self_major) 0.;
    t.depth <- 0;
    t.truncated <- 0;
    t.dropped_exits <- 0;
    Array.fill t.node_child 0 (t.nnodes * nspans) (-1);
    t.nnodes <- 0;
    t.created_at <- now_ns ()
  end

(* -- calibration -- *)

(* Measure the probes' own footprint so exits can subtract it. Two
   figures: OWN = words/ns the probes contribute *inside* a leaf span's
   window; PAIR = the full cost of one enter+exit pair as seen from an
   enclosing window. Run against a scratch span, then reset. *)
let calibrate t =
  let n = 4096 in
  let span = Span.Engine_dispatch in
  let si = Span.index span in
  for _ = 1 to n do
    enter t ~cpu:(-1) span;
    exit t span
  done;
  t.own_ns <- t.acc_self_ns.(si) /. float_of_int n;
  t.own_minor <- t.acc_self_minor.(si) /. float_of_int n;
  (* PAIR: wrap n pairs in one outer window of the same probes. *)
  reset t;
  enter t ~cpu:(-1) span;
  for _ = 1 to n do
    enter t ~cpu:(-1) Span.Buddy_alloc;
    exit t Span.Buddy_alloc
  done;
  exit t span;
  (* With pair compensation still zero, the outer frame's self figures
     are n full pair footprints (the inner frames' compensated inclusive
     figures are ~0), so per-pair cost is outer self over n. *)
  let outer_self_minor = t.acc_self_minor.(si) in
  let outer_self_ns = t.acc_self_ns.(si) in
  t.pair_minor <- outer_self_minor /. float_of_int n;
  t.pair_ns <- outer_self_ns /. float_of_int n;
  reset t

let create ?(ncpus = 8) () =
  if ncpus < 0 then invalid_arg "Prof.create: ncpus < 0";
  let t = make ~enabled:true ~ncpus ~node_cap:64 in
  calibrate t;
  t.created_at <- now_ns ();
  t
