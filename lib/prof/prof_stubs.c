/* Allocation-free probes for the profiler.
 *
 * The whole point of lib/prof's GC-delta accounting is that reading a
 * counter must not move the counter: the stock Gc.minor_words /
 * Gc.counters primitives box their results on the minor heap, so a
 * profiler built on them measures its own probes. These stubs are
 * [@@noalloc] + [@unboxed]: the values cross into OCaml in registers.
 *
 * Formulas mirror runtime/gc_ctrl.c (OCaml 5.1).
 */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/domain_state.h>

double prof_major_words_unboxed(value unit)
{
  (void)unit;
  return (double)Caml_state->stat_major_words +
         (double)Caml_state->allocated_words;
}

CAMLprim value prof_major_words(value unit)
{
  return caml_copy_double(prof_major_words_unboxed(unit));
}

double prof_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec * 1e9 + (double)ts.tv_nsec;
}

CAMLprim value prof_monotonic_ns(value unit)
{
  return caml_copy_double(prof_monotonic_ns_unboxed(unit));
}
