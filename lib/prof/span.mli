(** The fixed span vocabulary of the profiler.

    A span names one instrumented hot-path section. The set is a closed
    enum rather than free-form strings so the accumulator tables are
    dense arrays indexed by [index] — no hashing, no allocation on the
    instrumentation path. *)

type t =
  | Engine_dispatch  (** Event execution: the body of every event. *)
  | Engine_schedule  (** Event creation + heap push. *)
  | Engine_heap_pop  (** Heap pop in the run loops. *)
  | Buddy_alloc
  | Buddy_free
  | Slab_alloc  (** Backend alloc entry (slub and prudence). *)
  | Slab_free
  | Slab_defer  (** Baseline deferred free (call_rcu enqueue path). *)
  | Slab_grow  (** Slab construction: page alloc + object carving. *)
  | Latq_push  (** Latent enqueue (per-CPU cache or slab latent list). *)
  | Latq_harvest  (** Ripe harvest/merge out of a latent queue. *)
  | Rcu_qs  (** Quiescent-state reporting on context switch. *)
  | Rcu_gp  (** Grace-period machinery: start and completion. *)
  | Rcu_cb_drain  (** Callback invocation (softirq and barrier). *)
  | Prudence_defer  (** Prudence deferred free (latent-cache path). *)
  | Prudence_scan  (** Ripeness scan of node latent-slab heads. *)
  | Prudence_flush  (** Emergency reclaim under Critical pressure. *)
  | Check_probe  (** Shadow-heap oracle probe handlers (checker overhead). *)
  | Engine_wheel_advance
      (** Timer-wheel cursor advance: bitmap scan, cascades, overflow
          refill (wheel scheduler only). *)
  | Engine_bucket_drain
      (** Same-instant bucket extraction into the dispatch batch,
          including the Shuffle tie-break sort (wheel scheduler only). *)

val count : int
(** Number of spans; [index] is a bijection onto [0..count-1]. *)

val index : t -> int
val of_index : int -> t
val all : t list
(** In [index] order. *)

val name : t -> string
(** Dotted path, e.g. ["slab.alloc"]. *)

val subsystem : t -> string
(** The prefix before the dot: "engine", "buddy", "slab", "rcu",
    "prudence". *)

val subsystems : string list
(** Distinct subsystems, span order. *)
