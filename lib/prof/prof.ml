(** Facade: [Prof.enter]/[Prof.exit] with [Prof.Span.*] names. *)

module Span = Span
include Profiler
