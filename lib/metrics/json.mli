(** Minimal JSON values: enough to emit and re-read the machine-readable
    artifacts this repo produces ([BENCH_seed.json], [check --json]
    NDJSON) without an external dependency.

    The printer is deterministic (object fields keep their given order,
    numbers render via a fixed format), so two identical runs serialize
    byte-identically — the property the bench regression gate and the
    determinism tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. Strings are escaped per RFC 8259.
    [Float] values render with up to 12 significant digits ([%.12g]);
    non-finite floats render as [null]. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (for the committed baseline file, so
    diffs stay reviewable). *)

val of_string : string -> (t, string) result
(** Parse one JSON document. Numbers with a '.', 'e' or 'E' become
    [Float]; others become [Int]. Errors carry a character offset. *)

(** {1 Accessors} (for consuming parsed documents) *)

val member : string -> t -> t option
(** [member key (Obj ...)] finds a field; [None] on absence or non-objects. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; anything else is [None]. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
