type direction = Lower_better | Higher_better | Info | Exact

let direction_name = function
  | Lower_better -> "lower_better"
  | Higher_better -> "higher_better"
  | Info -> "info"
  | Exact -> "exact"

let direction_of_string = function
  | "lower_better" -> Some Lower_better
  | "higher_better" -> Some Higher_better
  | "info" -> Some Info
  | "exact" -> Some Exact
  | _ -> None

type metric = {
  name : string;
  value : float;
  direction : direction;
  tolerance_pct : float option;
}

let metric ?(direction = Info) ?tolerance_pct name value =
  { name; value; direction; tolerance_pct }

type t = {
  id : string;
  title : string;
  paper_claim : string;
  body : string;
  verdict : string;
  metrics : metric list;
}

let make ?(metrics = []) ~id ~title ~paper_claim ~verdict body =
  { id; title; paper_claim; body; verdict; metrics }

let all_metrics reports =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun r ->
      List.map
        (fun m ->
          if Hashtbl.mem seen m.name then
            invalid_arg
              (Printf.sprintf "Report.all_metrics: duplicate metric %S" m.name);
          Hashtbl.add seen m.name ();
          m)
        r.metrics)
    reports

let print fmt r =
  let bar = String.make 78 '=' in
  Format.fprintf fmt "%s@.[%s] %s@.%s@." bar (String.uppercase_ascii r.id)
    r.title bar;
  Format.fprintf fmt "paper:    %s@." r.paper_claim;
  Format.fprintf fmt "@.%s@." r.body;
  Format.fprintf fmt "@.measured: %s@.@." r.verdict

let print_all fmt rs = List.iter (print fmt) rs
