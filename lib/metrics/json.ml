type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let rec emit_pretty buf indent = function
  | List ((_ :: _) as xs) ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (String.make (indent + 2) ' ');
          emit_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj ((_ :: _) as fields) ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (String.make (indent + 2) ' ');
          escape buf k;
          Buffer.add_string buf ": ";
          emit_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'
  | v -> emit buf v

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Only BMP code points below 0x80 round-trip exactly; the
                 artifacts we parse are ASCII, so encode the rest as '?'. *)
              Buffer.add_char buf
                (if code < 0x80 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos)
    else Ok v
  with Parse_error (p, msg) -> Error (Printf.sprintf "%s at %d" msg p)

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
