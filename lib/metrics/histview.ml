(* Horizontal-bar rendering of a Trace.Hist.t latency histogram. *)

let fmt_ns v =
  if v >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int v /. 1e9)
  else if v >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int v /. 1e6)
  else if v >= 1_000 then Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
  else Printf.sprintf "%dns" v

(* Collapse runs of adjacent buckets so the chart never exceeds
   [max_rows] rows; each printed band spans [low, high) of its first and
   last source bucket. *)
let band buckets ~max_rows =
  let n = List.length buckets in
  let per = (n + max_rows - 1) / max_rows in
  let rec chunk acc cur k = function
    | [] -> List.rev (match cur with None -> acc | Some b -> b :: acc)
    | (low, high, count) :: rest -> (
        match cur with
        | None -> chunk acc (Some (low, high, count)) 1 rest
        | Some (blow, bhigh, bcount) ->
            if k < per then
              chunk acc (Some (blow, high, bcount + count)) (k + 1) rest
            else
              chunk
                ((blow, bhigh, bcount) :: acc)
                None 0
                ((low, high, count) :: rest))
  in
  chunk [] None 0 buckets

(* Summary JSON for the histogram: counts and sum are exact; the
   percentiles carry the bucketing's <= 1/16 relative error. *)
let to_json (h : Trace.Hist.t) =
  let module J = Json in
  J.Obj
    [
      ("count", J.Int (Trace.Hist.count h));
      ("sum", J.Int (Trace.Hist.sum h));
      ("mean", J.Float (Trace.Hist.mean h));
      ("min", J.Int (Trace.Hist.min_value h));
      ("max", J.Int (Trace.Hist.max_value h));
      ("p50", J.Int (Trace.Hist.percentile h 50.));
      ("p90", J.Int (Trace.Hist.percentile h 90.));
      ("p99", J.Int (Trace.Hist.percentile h 99.));
    ]

let render ?(width = 40) ?(max_rows = 20) ~title (h : Trace.Hist.t) =
  let buf = Buffer.create 1024 in
  let count = Trace.Hist.count h in
  (* Empty histograms short-circuit on the option accessors: no percentile
     or mean arithmetic runs on zero samples. *)
  match (Trace.Hist.mean_opt h, Trace.Hist.percentile_opt h 50.) with
  | None, _ | _, None -> Printf.sprintf "%s: (no samples)\n" title
  | Some mean, Some p50 ->
    Buffer.add_string buf
      (Printf.sprintf
         "%s: %d samples  sum %s  mean %s  p50 %s  p90 %s  p99 %s  max %s\n"
         title count
         (fmt_ns (Trace.Hist.sum h))
         (fmt_ns (int_of_float mean))
         (fmt_ns p50)
         (fmt_ns (Trace.Hist.percentile h 90.))
         (fmt_ns (Trace.Hist.percentile h 99.))
         (fmt_ns (Trace.Hist.max_value h)));
    let buckets =
      List.rev
        (Trace.Hist.fold h
           (fun acc ~low ~high ~count -> (low, high, count) :: acc)
           [])
    in
    let bands = band buckets ~max_rows in
    let maxc = List.fold_left (fun a (_, _, c) -> max a c) 1 bands in
    List.iter
      (fun (low, high, c) ->
        let bar = max 1 (c * width / maxc) in
        Buffer.add_string buf
          (Printf.sprintf "  %10s .. %-10s |%-*s %d\n" (fmt_ns low)
             (fmt_ns high) width
             (String.make bar '#')
             c))
      bands;
    Buffer.contents buf
