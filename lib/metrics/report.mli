(** Experiment reports: what the paper said, what we measured.

    Besides the rendered body, a report can carry {e machine-readable
    metrics} — the named scalar results of the experiment, each tagged
    with the direction the paper predicts. The bench harness collects
    them into [BENCH_seed.json] and the CI regression gate diffs them
    against a committed baseline. *)

type direction =
  | Lower_better  (** Regression = value drifted up past tolerance. *)
  | Higher_better  (** Regression = value drifted down past tolerance. *)
  | Info  (** Tracked and reported, never a regression by itself. *)
  | Exact
      (** Regression = any drift past tolerance in either direction. With
          tolerance 0 this demands byte-identical values — the gate for
          deterministic counters (event counts, allocation counts) that
          must not move at all. *)

val direction_name : direction -> string
(** "lower_better" / "higher_better" / "info" / "exact". *)

val direction_of_string : string -> direction option

type metric = {
  name : string;  (** Dotted path, e.g. "fig6.speedup.512". *)
  value : float;
  direction : direction;
  tolerance_pct : float option;
      (** Per-metric drift tolerance override; [None] = comparator
          default. *)
}

val metric :
  ?direction:direction -> ?tolerance_pct:float -> string -> float -> metric
(** Shorthand; [direction] defaults to [Info]. *)

type t = {
  id : string;  (** "fig3", "fig6", ... *)
  title : string;
  paper_claim : string;
      (** The result as stated in the paper (the shape to match). *)
  body : string;  (** Rendered table / chart / prose for this run. *)
  verdict : string;  (** One-line measured summary for EXPERIMENTS.md. *)
  metrics : metric list;
      (** Machine-readable results, possibly empty (e.g. ablations). *)
}

val make :
  ?metrics:metric list ->
  id:string -> title:string -> paper_claim:string -> verdict:string ->
  string -> t

val all_metrics : t list -> metric list
(** Concatenated metrics of every report, in report order. Raises
    [Invalid_argument] on a duplicate metric name (two experiments must
    not claim the same series in [BENCH_seed.json]). *)

val print : Format.formatter -> t -> unit
(** Banner + claim + body + verdict. *)

val print_all : Format.formatter -> t list -> unit
