(** Facade: result tables, ASCII charts and experiment reports. *)

module Table = Table
module Json = Json
module Ascii_chart = Ascii_chart
module Histview = Histview
module Report = Report
