(** ASCII rendering of {!Trace.Hist} latency histograms: a summary line
    (count / sum / mean / p50 / p90 / p99 / max) followed by one
    [low .. high |###| count] bar per bucket band. *)

val fmt_ns : int -> string
(** Compact virtual-nanosecond formatting: "850ns", "3.2us", "1.20ms",
    "2.50s". *)

val to_json : Trace.Hist.t -> Json.t
(** Summary object: exact [count]/[sum]/[min]/[max], [mean], and
    [p50]/[p90]/[p99] (bucket-quantized, <= 1/16 relative error). *)

val render : ?width:int -> ?max_rows:int -> title:string -> Trace.Hist.t -> string
(** Render the histogram, collapsing adjacent buckets so at most
    [max_rows] (default 20) bars print, the widest [width] (default 40)
    characters. Empty histograms render as "(no samples)". *)
