(* Intrusive singly-linked segments: one cell allocated per callback at
   enqueue time, then only pointer surgery — [advance] relinks cells from
   the waiting segment to the done segment, and [drain] pops and invokes
   without ever materialising an intermediate list. Both segment lengths
   are maintained counters, so the invoker learns its batch size without
   a [List.length] walk. *)

type cell = { cookie : int; fn : unit -> unit; mutable next : cell }

(* Self-referential terminator: [c.next == nil] marks the tail. *)
let rec nil = { cookie = min_int; fn = (fun () -> ()); next = nil }

type t = {
  mutable wait_head : cell;
  mutable wait_tail : cell;
  mutable wait_n : int;
  mutable done_head : cell;
  mutable done_tail : cell;
  mutable done_n : int;
  mutable last_cookie : int;
}

let create () =
  {
    wait_head = nil;
    wait_tail = nil;
    wait_n = 0;
    done_head = nil;
    done_tail = nil;
    done_n = 0;
    last_cookie = min_int;
  }

let enqueue t ~cookie fn =
  assert (cookie >= t.last_cookie);
  t.last_cookie <- cookie;
  let c = { cookie; fn; next = nil } in
  if t.wait_n = 0 then t.wait_head <- c else t.wait_tail.next <- c;
  t.wait_tail <- c;
  t.wait_n <- t.wait_n + 1

let advance t ~completed =
  let moved = ref 0 in
  while t.wait_n > 0 && t.wait_head.cookie <= completed do
    let c = t.wait_head in
    t.wait_head <- c.next;
    t.wait_n <- t.wait_n - 1;
    if t.wait_n = 0 then t.wait_tail <- nil;
    c.next <- nil;
    if t.done_n = 0 then t.done_head <- c else t.done_tail.next <- c;
    t.done_tail <- c;
    t.done_n <- t.done_n + 1;
    incr moved
  done;
  !moved

let drain t ~max ~f =
  (* Fix the batch upfront: callbacks that become ready while the batch
     runs wait for the next pass, exactly as when batches were removed
     wholesale before invocation. *)
  let n = if max < t.done_n then max else t.done_n in
  for _ = 1 to n do
    let c = t.done_head in
    t.done_head <- c.next;
    t.done_n <- t.done_n - 1;
    if t.done_n = 0 then t.done_tail <- nil;
    f c.fn
  done;
  n

let waiting t = t.wait_n
let ready t = t.done_n
let total t = t.wait_n + t.done_n

let next_cookie t = if t.wait_n = 0 then None else Some t.wait_head.cookie
