(** Read-Copy-Update over the simulated machine.

    Implements the classic kernel scheme the paper describes (§2):

    - readers mark read-side critical sections ({!read_lock} /
      {!read_unlock}); they never block inside a section;
    - a context switch on a CPU (delivered by {!Sim.Machine}'s scheduler
      tick, suppressed while a reader is active) is a quiescent state;
    - a grace period completes once every CPU has passed through a
      quiescent state after the grace period started;
    - deferred work registered with {!call_rcu} waits for a grace period
      and is then invoked in throttled, batched softirq passes
      ([blimit] callbacks per pass, expedited above [qhimark] backlog or
      under memory pressure) — the source of the {e extended object
      lifetimes} and {e bursty freeing} the paper analyses.

    For Prudence, the module also exposes the polled grace-period interface
    (§4: "the synchronization mechanism is still responsible for computing
    the grace period"): {!snapshot} stamps a deferred object with the grace
    period it must wait for, {!poll} answers whether that grace period has
    completed, and {!on_gp_complete} notifies the allocator. *)

type config = {
  blimit : int;
      (** Callbacks invoked per CPU per softirq pass in normal mode
          (Linux default: 10). *)
  expedited_blimit : int;
      (** Batch size once the backlog exceeds [qhimark] or under memory
          pressure. *)
  qhimark : int;  (** Backlog threshold that triggers expediting. *)
  softirq_period_ns : int;
      (** Delay between consecutive softirq passes on a CPU with ready
          callbacks. *)
  enqueue_cost_ns : int;  (** CPU cost charged by {!call_rcu}. *)
  invoke_cost_ns : int;  (** CPU cost charged per invoked callback. *)
  stall_timeout_ns : int option;
      (** Grace-period budget for the stall detector (the kernel's
          [CONFIG_RCU_CPU_STALL_TIMEOUT], typically 21 s). When a grace
          period is still active this long after starting, a warning is
          recorded naming the holdout CPUs, and the check re-arms.
          [None] (default) disables detection entirely. *)
  unsafe_lose_cb_every : int option;
      (** Checker mutation knob: when [Some n], every n-th {!call_rcu}
          callback is silently dropped from its per-CPU list while all the
          accounting (cost, pending, queued stats, trace) still runs —
          modelling a lost-cell race in a lockless callback list. The
          dropped object is never released, so only a conservation check
          (queued = invoked + in-list) can tell. [None] (default) for every
          real run; set only by [--mutate=lose-cb] self-tests. *)
}

val default_config : config

type t

val create : ?config:config -> Sim.Machine.t -> t
(** [create machine] hooks RCU into [machine]'s context-switch stream.
    The machine's ticks must be started for grace periods to advance. *)

val machine : t -> Sim.Machine.t
val config : t -> config

(** {1 Read side} *)

val read_lock : t -> Sim.Machine.cpu -> unit
(** Enter a read-side critical section on [cpu]. Nestable. While at least
    one section is active on a CPU, its scheduler ticks are not quiescent
    states. *)

val read_unlock : t -> Sim.Machine.cpu -> unit

val set_section_hooks :
  t -> ((Sim.Machine.cpu -> unit) * (Sim.Machine.cpu -> unit)) option -> unit
(** [set_section_hooks t (Some (enter, exit))] fires [enter] when a CPU's
    outermost read-side section opens (before the nesting count rises)
    and [exit] when it closes (after the count returns to zero). Lets
    epoch-based SMR schemes observe reader quiescence — including
    sections opened directly via {!read_lock}, e.g. by the fault
    injector's stalled readers. [None] (the default) leaves the
    read-side fast path untouched. *)

type obs = {
  obs_request : unit -> unit;
      (** Grace-period detection was requested ({!call_rcu} or
          {!request_gp}); fires before the token is issued. *)
  obs_start : seq:int -> unit;
      (** Grace period [seq] (1-based start ordinal) began its QS sweep.
          [seq] completes as frontier value [seq]. *)
  obs_qs : cpu:int -> remaining:int -> unit;
      (** [cpu] reported a quiescent state for the active grace period;
          [remaining] CPUs are still holdouts ([0] = this report completes
          the sweep). *)
}
(** Grace-period anatomy taps for the observability layer ([Obs.Anatomy]).
    Must be pure observation: fired synchronously behind one
    load-and-branch, never consuming virtual time, so an instrumented run
    stays byte-identical to an uninstrumented one. *)

val set_obs : t -> obs option -> unit
(** Install (or clear) the anatomy taps. At most one observer. *)

(** {1 Update side} *)

val call_rcu : t -> Sim.Machine.cpu -> (unit -> unit) -> unit
(** [call_rcu t cpu fn] defers [fn] until after a grace period; [fn] runs on
    [cpu] during a later softirq pass (batched and throttled). This is the
    baseline (SLUB) reclamation path from Listing 1 of the paper. *)

val synchronize : t -> unit
(** Block the calling process until a full grace period elapses. *)

val barrier_drain : t -> unit
(** Testing helper: invoke every already-ripe callback immediately,
    bypassing throttling (does not wait for grace periods). *)

(** {1 Polled grace-period interface (used by Prudence)} *)

val snapshot : t -> int
(** A cookie identifying the earliest grace period whose completion
    guarantees that readers current at this instant are done. *)

val poll : t -> int -> bool
(** [poll t cookie] is [true] once that grace period has completed. *)

val completed : t -> int
(** Number of grace periods completed so far. *)

val request_gp : t -> unit
(** Ensure a grace period is (or will be) in progress; used by Prudence,
    which has latent objects but enqueues no callbacks. *)

val on_gp_complete : t -> (int -> unit) -> unit
(** [on_gp_complete t fn] calls [fn completed] after each grace period. *)

(** {1 Pressure and diagnostics} *)

val attach_pressure : t -> Mem.Pressure.t -> unit
(** Expedite callback processing while memory pressure is [Low]/[Critical]
    and register an OOM handler that drains ripe callbacks (§3.5: "RCU
    attempts to process more deferred objects as the memory pressure
    increases"). *)

val set_expedited : t -> bool -> unit
val expedited : t -> bool

val pending_callbacks : t -> int
(** Callbacks queued and not yet invoked, across all CPUs. *)

val gp_active : t -> bool
(** Whether a grace period is in progress right now. *)

val gp_age_ns : t -> int
(** Virtual nanoseconds since the in-progress grace period started;
    0 when no grace period is active. The live-introspection analogue of
    the kernel's [rcu_state.gp_start] debugfs field. *)

val cpu_backlogs : t -> (int * int * int) array
(** Per-CPU callback-queue occupancy as [(cpu, waiting, ready)]:
    [waiting] callbacks still need their grace period, [ready] ones are
    invocable but not yet drained by softirq. Sums to
    {!pending_callbacks}. *)

type stats = {
  gps_started : int;
  gps_completed : int;
  cbs_queued : int;
  cbs_invoked : int;
  softirq_passes : int;
  max_backlog : int;  (** High-water mark of {!pending_callbacks}. *)
  expedited_transitions : int;
  stall_warnings : int;  (** Stall-detector firings (see {!stall_warnings}). *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

type stall_warning = {
  at_ns : int;  (** Virtual time the warning fired. *)
  gp_seq : int;  (** Sequence number of the stalled grace period. *)
  holdouts : int list;
      (** CPUs that had not yet reported a quiescent state, ascending. *)
}

val stall_warnings : t -> stall_warning list
(** All stall warnings recorded so far, oldest first. Empty unless
    [config.stall_timeout_ns] is set. Each warning also emits one
    [Rcu_stall] trace event per holdout CPU when tracing is armed. *)

val last_stall : t -> stall_warning option
(** Newest stall warning, O(1); the missed-QS oracle polls this. *)

val holdout_cpus : t -> int list
(** CPUs the in-progress grace period is still waiting on (ascending);
    [[]] when no grace period is active. *)

val gp_seq : t -> int
(** Sequence number of the most recently started grace period
    (= started count); identifies the current grace period while
    {!gp_active}. *)

val lost_callbacks : t -> int
(** Callbacks dropped by [unsafe_lose_cb_every]; 0 on any real run. *)
