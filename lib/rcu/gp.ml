type config = {
  blimit : int;
  expedited_blimit : int;
  qhimark : int;
  softirq_period_ns : int;
  enqueue_cost_ns : int;
  invoke_cost_ns : int;
  stall_timeout_ns : int option;
  unsafe_lose_cb_every : int option;
}

let default_config =
  {
    blimit = 10;
    expedited_blimit = 100;
    qhimark = 10_000;
    (* ksoftirqd re-raises almost immediately while callbacks remain;
       blimit bounds the batch per pass, not the steady drain rate. The
       Fig. 3 endurance experiment overrides this with a 1 ms period to
       model the throttled processing of §3.5. *)
    softirq_period_ns = 10_000;
    enqueue_cost_ns = 25;
    (* Invoking a callback touches a cache-cold object and the segcblist
       bookkeeping; substantially more expensive than the enqueue. *)
    invoke_cost_ns = 150;
    (* Stall detection is opt-in (like CONFIG_RCU_CPU_STALL_TIMEOUT): the
       detector adds daemon events, so keeping it off preserves existing
       schedules byte-for-byte. *)
    stall_timeout_ns = None;
    (* Mutation knob for the checker's callback-conservation oracle: when
       [Some n], every n-th call_rcu callback is silently dropped from its
       Cblist (the accounting still runs). Never set outside self-tests. *)
    unsafe_lose_cb_every = None;
  }

type stats = {
  gps_started : int;
  gps_completed : int;
  cbs_queued : int;
  cbs_invoked : int;
  softirq_passes : int;
  max_backlog : int;
  expedited_transitions : int;
  stall_warnings : int;
}

type stall_warning = { at_ns : int; gp_seq : int; holdouts : int list }

type pcpu = {
  cpu : Sim.Machine.cpu;
  cbs : Cblist.t;
  mutable softirq_scheduled : bool;
}

type obs = {
  obs_request : unit -> unit;
  obs_start : seq:int -> unit;
  obs_qs : cpu:int -> remaining:int -> unit;
}
(* Grace-period anatomy taps (Obs.Anatomy). Pure observation: fired behind
   one load-and-branch, never consume virtual time. *)

type t = {
  machine : Sim.Machine.t;
  engine : Sim.Engine.t;
  cfg : config;
  percpu : pcpu array;
  qs_needed : bool array;
  mutable qs_remaining : int;
  mutable gp_active : bool;
  mutable gp_requested : bool;
  mutable completed_gps : int;
  mutable expedited_flag : bool;
  mutable pending : int;
  mutable gp_started_at : int;
  gp_cond : Sim.Process.Cond.t;
  mutable gp_hooks : (int -> unit) list;
  mutable section_hooks :
    ((Sim.Machine.cpu -> unit) * (Sim.Machine.cpu -> unit)) option;
      (* fired at outermost read-side entry/exit; lets epoch-based SMR
         schemes observe reader quiescence without touching the
         read-side fast path when unset *)
  mutable obs : obs option;
  (* stats *)
  mutable s_gps_started : int;
  mutable s_gps_completed : int;
  mutable s_cbs_queued : int;
  mutable s_cbs_invoked : int;
  mutable s_softirq_passes : int;
  mutable s_max_backlog : int;
  mutable s_expedited_transitions : int;
  mutable s_stall_warnings : int;
  mutable stall_log : stall_warning list; (* newest first *)
  mutable s_cbs_lost : int;
  mutable lose_tick : int;
}

let machine t = t.machine
let config t = t.cfg
let tracer t = Sim.Machine.tracer t.machine
let prof t = Sim.Machine.prof t.machine
let now t = Sim.Engine.now t.engine
let completed t = t.completed_gps
let pending_callbacks t = t.pending
let expedited t = t.expedited_flag
let gp_active t = t.gp_active
let gp_age_ns t = if t.gp_active then now t - t.gp_started_at else 0

let cpu_backlogs t =
  Array.map
    (fun (pc : pcpu) -> (pc.cpu.Sim.Machine.id, Cblist.waiting pc.cbs, Cblist.ready pc.cbs))
    t.percpu

let set_expedited t flag =
  if flag && not t.expedited_flag then
    t.s_expedited_transitions <- t.s_expedited_transitions + 1;
  t.expedited_flag <- flag

(* A cookie names the earliest grace period whose completion guarantees all
   readers current at snapshot time are done. If a grace period is in
   progress it may have started before now, so the caller must wait for the
   one after it. *)
let snapshot t =
  if t.gp_active then t.completed_gps + 2 else t.completed_gps + 1

let poll t cookie = t.completed_gps >= cookie

let on_gp_complete t fn = t.gp_hooks <- t.gp_hooks @ [ fn ]

let set_section_hooks t hooks = t.section_hooks <- hooks
let set_obs t obs = t.obs <- obs

let read_lock t (cpu : Sim.Machine.cpu) =
  (match t.section_hooks with
  | Some (enter, _) when cpu.rcu_nesting = 0 -> enter cpu
  | _ -> ());
  cpu.rcu_nesting <- cpu.rcu_nesting + 1

let read_unlock t (cpu : Sim.Machine.cpu) =
  assert (cpu.rcu_nesting > 0);
  cpu.rcu_nesting <- cpu.rcu_nesting - 1;
  match t.section_hooks with
  | Some (_, exit) when cpu.rcu_nesting = 0 -> exit cpu
  | _ -> ()

let batch_size t (pc : pcpu) =
  if t.expedited_flag || Cblist.total pc.cbs > t.cfg.qhimark then
    t.cfg.expedited_blimit
  else t.cfg.blimit

let rec raise_softirq t (pc : pcpu) =
  if not pc.softirq_scheduled then begin
    pc.softirq_scheduled <- true;
    ignore
      (Sim.Engine.schedule t.engine ~after:t.cfg.softirq_period_ns (fun () ->
           softirq_pass t pc))
  end

and softirq_pass t (pc : pcpu) =
  Prof.enter (prof t) ~cpu:pc.cpu.Sim.Machine.id Prof.Span.Rcu_cb_drain;
  pc.softirq_scheduled <- false;
  t.s_softirq_passes <- t.s_softirq_passes + 1;
  let n = min (batch_size t pc) (Cblist.ready pc.cbs) in
  if n > 0 then begin
    Sim.Machine.consume pc.cpu (n * t.cfg.invoke_cost_ns);
    t.pending <- t.pending - n;
    t.s_cbs_invoked <- t.s_cbs_invoked + n;
    let tr = tracer t in
    if Trace.enabled tr then
      Trace.emit tr ~time:(now t) ~cpu:pc.cpu.Sim.Machine.id ~arg:n
        Trace.Event.Cb_invoke;
    let drained = Cblist.drain pc.cbs ~max:n ~f:(fun fn -> fn ()) in
    assert (drained = n)
  end;
  if Cblist.ready pc.cbs > 0 then raise_softirq t pc;
  Prof.exit (prof t) Prof.Span.Rcu_cb_drain

let rec start_gp t =
  Prof.enter (prof t) ~cpu:(-1) Prof.Span.Rcu_gp;
  assert (not t.gp_active);
  t.gp_active <- true;
  t.gp_requested <- false;
  t.s_gps_started <- t.s_gps_started + 1;
  t.gp_started_at <- now t;
  (match t.obs with Some o -> o.obs_start ~seq:t.s_gps_started | None -> ());
  (let tr = tracer t in
   if Trace.enabled tr then
     Trace.emit tr ~time:t.gp_started_at ~cpu:(-1) ~arg:t.s_gps_started
       Trace.Event.Gp_start);
  Array.fill t.qs_needed 0 (Array.length t.qs_needed) true;
  t.qs_remaining <- Array.length t.qs_needed;
  arm_stall_check t t.s_gps_started;
  Prof.exit (prof t) Prof.Span.Rcu_gp

(* Modelled on the kernel's CONFIG_RCU_CPU_STALL_TIMEOUT: a daemon event
   fires [stall_timeout_ns] after each grace period starts; if that same
   grace period is still active, the CPUs yet to report a quiescent state
   are the holdouts. Re-arms so a forever-stalled reader warns repeatedly,
   like the kernel's follow-up stall splats. *)
and arm_stall_check t seq =
  match t.cfg.stall_timeout_ns with
  | None -> ()
  | Some timeout ->
      ignore
        (Sim.Engine.schedule ~daemon:true t.engine ~after:timeout (fun () ->
             if t.gp_active && t.s_gps_started = seq then begin
               let holdouts = ref [] in
               for i = Array.length t.qs_needed - 1 downto 0 do
                 if t.qs_needed.(i) then holdouts := i :: !holdouts
               done;
               t.s_stall_warnings <- t.s_stall_warnings + 1;
               t.stall_log <-
                 { at_ns = now t; gp_seq = seq; holdouts = !holdouts }
                 :: t.stall_log;
               (let tr = tracer t in
                if Trace.enabled tr then
                  List.iter
                    (fun cpu ->
                      Trace.emit tr ~time:(now t) ~cpu ~arg:seq
                        Trace.Event.Rcu_stall)
                    !holdouts);
               arm_stall_check t seq
             end))

and complete_gp t =
  Prof.enter (prof t) ~cpu:(-1) Prof.Span.Rcu_gp;
  assert (t.gp_active);
  t.gp_active <- false;
  t.completed_gps <- t.completed_gps + 1;
  t.s_gps_completed <- t.s_gps_completed + 1;
  (let tr = tracer t in
   if Trace.enabled tr then begin
     Trace.emit tr ~time:(now t) ~cpu:(-1) ~arg:t.s_gps_completed
       Trace.Event.Gp_end;
     Trace.record_gp_latency tr (now t - t.gp_started_at)
   end);
  let waiting_remain = ref false in
  Array.iter
    (fun pc ->
      ignore (Cblist.advance pc.cbs ~completed:t.completed_gps);
      if Cblist.ready pc.cbs > 0 then raise_softirq t pc;
      if Cblist.waiting pc.cbs > 0 then waiting_remain := true)
    t.percpu;
  List.iter (fun fn -> fn t.completed_gps) t.gp_hooks;
  Sim.Process.Cond.broadcast t.gp_cond;
  (* A gp hook may already have started the next grace period (e.g. the
     allocator requesting one for outstanding latent objects). *)
  if (t.gp_requested || !waiting_remain) && not t.gp_active then start_gp t;
  Prof.exit (prof t) Prof.Span.Rcu_gp

let quiescent_state t (cpu : Sim.Machine.cpu) =
  Prof.enter (prof t) ~cpu:cpu.id Prof.Span.Rcu_qs;
  if t.gp_active && t.qs_needed.(cpu.id) then begin
    t.qs_needed.(cpu.id) <- false;
    t.qs_remaining <- t.qs_remaining - 1;
    (match t.obs with
    | Some o -> o.obs_qs ~cpu:cpu.id ~remaining:t.qs_remaining
    | None -> ());
    if t.qs_remaining = 0 then complete_gp t
  end;
  Prof.exit (prof t) Prof.Span.Rcu_qs

let request_gp t =
  (match t.obs with Some o -> o.obs_request () | None -> ());
  if t.gp_active then t.gp_requested <- true else start_gp t

let call_rcu t (cpu : Sim.Machine.cpu) fn =
  (match t.obs with Some o -> o.obs_request () | None -> ());
  let cookie = snapshot t in
  let pc = t.percpu.(cpu.id) in
  let lost =
    match t.cfg.unsafe_lose_cb_every with
    | None -> false
    | Some n ->
        t.lose_tick <- t.lose_tick + 1;
        t.lose_tick mod n = 0
  in
  (* The injected bug: the callback vanishes between the accounting and the
     segmented list, exactly like a lost-cell race in a lockless cblist.
     Everything else (cost, pending, queued stats, trace) proceeds, so only
     a conservation check across the lists can tell. *)
  if lost then t.s_cbs_lost <- t.s_cbs_lost + 1
  else Cblist.enqueue pc.cbs ~cookie fn;
  (let tr = tracer t in
   if Trace.enabled tr then
     Trace.emit tr ~time:(now t) ~cpu:cpu.id ~arg:cookie
       Trace.Event.Cb_enqueue);
  Sim.Machine.consume cpu t.cfg.enqueue_cost_ns;
  t.pending <- t.pending + 1;
  t.s_cbs_queued <- t.s_cbs_queued + 1;
  if t.pending > t.s_max_backlog then t.s_max_backlog <- t.pending;
  if not t.gp_active then start_gp t

let synchronize t =
  let cookie = snapshot t in
  request_gp t;
  Sim.Process.wait_until t.engine t.gp_cond (fun () -> poll t cookie)

let barrier_drain t =
  Prof.enter (prof t) ~cpu:(-1) Prof.Span.Rcu_cb_drain;
  Array.iter
    (fun pc ->
      ignore (Cblist.advance pc.cbs ~completed:t.completed_gps);
      let n = Cblist.ready pc.cbs in
      t.pending <- t.pending - n;
      t.s_cbs_invoked <- t.s_cbs_invoked + n;
      ignore (Cblist.drain pc.cbs ~max:n ~f:(fun fn -> fn ())))
    t.percpu;
  Prof.exit (prof t) Prof.Span.Rcu_cb_drain

let attach_pressure t pressure =
  Mem.Pressure.on_level_change pressure (fun level ->
      match level with
      | Mem.Pressure.Normal -> set_expedited t false
      | Mem.Pressure.Low | Mem.Pressure.Critical ->
          set_expedited t true;
          Array.iter (fun pc -> if Cblist.ready pc.cbs > 0 then raise_softirq t pc) t.percpu);
  Mem.Pressure.on_oom pressure (fun () ->
      (* Direct reclaim does bounded work: drain a few expedited batches of
         ripe callbacks per failed allocation. The frees land on scattered
         slabs, so they rarely coalesce whole slabs back to the page
         allocator — which is why expediting cannot save the baseline from
         the Fig. 3 OOM. *)
      set_expedited t true;
      let invoked_before = t.s_cbs_invoked in
      Array.iter
        (fun pc ->
          ignore (Cblist.advance pc.cbs ~completed:t.completed_gps);
          let n = min (4 * t.cfg.expedited_blimit) (Cblist.ready pc.cbs) in
          t.pending <- t.pending - n;
          t.s_cbs_invoked <- t.s_cbs_invoked + n;
          ignore (Cblist.drain pc.cbs ~max:n ~f:(fun fn -> fn ())))
        t.percpu;
      t.s_cbs_invoked > invoked_before)

let stats t =
  {
    gps_started = t.s_gps_started;
    gps_completed = t.s_gps_completed;
    cbs_queued = t.s_cbs_queued;
    cbs_invoked = t.s_cbs_invoked;
    softirq_passes = t.s_softirq_passes;
    max_backlog = t.s_max_backlog;
    expedited_transitions = t.s_expedited_transitions;
    stall_warnings = t.s_stall_warnings;
  }

let stall_warnings t = List.rev t.stall_log
let last_stall t = match t.stall_log with [] -> None | s :: _ -> Some s

let holdout_cpus t =
  if not t.gp_active then []
  else begin
    let holdouts = ref [] in
    for i = Array.length t.qs_needed - 1 downto 0 do
      if t.qs_needed.(i) then holdouts := i :: !holdouts
    done;
    !holdouts
  end
let gp_seq t = t.s_gps_started
let lost_callbacks t = t.s_cbs_lost

let pp_stats fmt s =
  Format.fprintf fmt
    "gps=%d/%d cbs=%d queued / %d invoked, softirq passes=%d, max backlog=%d, \
     expedited transitions=%d%s"
    s.gps_completed s.gps_started s.cbs_queued s.cbs_invoked s.softirq_passes
    s.max_backlog s.expedited_transitions
    (if s.stall_warnings = 0 then ""
     else Printf.sprintf ", STALL WARNINGS=%d" s.stall_warnings)

let create ?(config = default_config) machine =
  let ncpus = Sim.Machine.nr_cpus machine in
  let t =
    {
      machine;
      engine = Sim.Machine.engine machine;
      cfg = config;
      percpu =
        Array.init ncpus (fun i ->
            {
              cpu = Sim.Machine.cpu machine i;
              cbs = Cblist.create ();
              softirq_scheduled = false;
            });
      qs_needed = Array.make ncpus false;
      qs_remaining = 0;
      gp_active = false;
      gp_requested = false;
      completed_gps = 0;
      expedited_flag = false;
      pending = 0;
      gp_started_at = 0;
      gp_cond = Sim.Process.Cond.create (Sim.Machine.engine machine);
      gp_hooks = [];
      section_hooks = None;
      obs = None;
      s_gps_started = 0;
      s_gps_completed = 0;
      s_cbs_queued = 0;
      s_cbs_invoked = 0;
      s_softirq_passes = 0;
      s_max_backlog = 0;
      s_expedited_transitions = 0;
      s_stall_warnings = 0;
      stall_log = [];
      s_cbs_lost = 0;
      lose_tick = 0;
    }
  in
  Sim.Machine.on_context_switch machine (fun cpu -> quiescent_state t cpu);
  t
