type t = {
  rcu : Gp.t;
  refs : (int, int) Hashtbl.t; (* oid -> total refcount *)
  per_cpu_held : int list array; (* oids held by the open section on a CPU *)
  mutable violation_log : string list; (* reversed; first K kept *)
  mutable logged : int;
  mutable dropped : int;
  mutable access_hook : (cpu:int -> oid:int -> unit) option;
}

(* Bound the log so a badly mutated run inside a long fuzz session cannot
   grow memory without bound; the count of what was cut is kept. *)
let max_logged_violations = 64

let create rcu =
  {
    rcu;
    refs = Hashtbl.create 512;
    per_cpu_held = Array.make (Sim.Machine.nr_cpus (Gp.machine rcu)) [];
    violation_log = [];
    logged = 0;
    dropped = 0;
    access_hook = None;
  }

let set_access_hook t hook = t.access_hook <- hook

let rcu t = t.rcu

let record_violation t msg =
  if t.logged < max_logged_violations then begin
    t.violation_log <- msg :: t.violation_log;
    t.logged <- t.logged + 1
  end
  else t.dropped <- t.dropped + 1

let violations t = List.rev t.violation_log
let dropped_violations t = t.dropped

let refcount t ~oid =
  match Hashtbl.find_opt t.refs oid with None -> 0 | Some n -> n

let incr_ref t oid =
  Hashtbl.replace t.refs oid (refcount t ~oid + 1)

let decr_ref t oid =
  let n = refcount t ~oid in
  if n <= 1 then Hashtbl.remove t.refs oid
  else Hashtbl.replace t.refs oid (n - 1)

let enter t cpu = Gp.read_lock t.rcu cpu

let exit t (cpu : Sim.Machine.cpu) =
  (* A section cannot carry references out: drop everything it holds. *)
  List.iter (fun oid -> decr_ref t oid) t.per_cpu_held.(cpu.id);
  t.per_cpu_held.(cpu.id) <- [];
  Gp.read_unlock t.rcu cpu

let hold t (cpu : Sim.Machine.cpu) ~oid =
  (match t.access_hook with
  | Some hook -> hook ~cpu:cpu.id ~oid
  | None -> ());
  if cpu.rcu_nesting = 0 then
    record_violation t
      (Printf.sprintf "cpu%d held a reference to object %d outside a \
                       read-side critical section" cpu.id oid)
  else begin
    incr_ref t oid;
    t.per_cpu_held.(cpu.id) <- oid :: t.per_cpu_held.(cpu.id)
  end

let release t (cpu : Sim.Machine.cpu) ~oid =
  let rec remove = function
    | [] -> None
    | x :: rest when x = oid -> Some rest
    | x :: rest -> (
        match remove rest with None -> None | Some r -> Some (x :: r))
  in
  match remove t.per_cpu_held.(cpu.id) with
  | Some rest ->
      t.per_cpu_held.(cpu.id) <- rest;
      decr_ref t oid
  | None ->
      record_violation t
        (Printf.sprintf "cpu%d released object %d it did not hold" cpu.id oid)

let with_section t cpu f =
  enter t cpu;
  match f () with
  | v ->
      exit t cpu;
      v
  | exception e ->
      exit t cpu;
      raise e

let check_reusable t ~oid ~where =
  let n = refcount t ~oid in
  if n > 0 then
    record_violation t
      (Printf.sprintf
         "%s: object %d reused while %d reader(s) still reference it" where
         oid n)
