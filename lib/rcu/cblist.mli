(** Segmented RCU callback list (one per CPU).

    Callbacks are enqueued with the grace-period cookie they must wait for
    (cookies are non-decreasing in enqueue order, as in Linux's
    [rcu_segcblist]), sit in the waiting segment until that grace period
    completes, and are then advanced to the done segment from which the
    softirq-style invoker drains them in throttled batches. *)

type t

val create : unit -> t

val enqueue : t -> cookie:int -> (unit -> unit) -> unit
(** [enqueue cbl ~cookie fn] appends a callback that becomes invocable once
    the grace period identified by [cookie] has completed. [cookie] must be
    >= every previously enqueued cookie (asserted). *)

val advance : t -> completed:int -> int
(** [advance cbl ~completed] moves every waiting callback whose cookie is
    [<= completed] to the done segment; returns how many moved. *)

val drain : t -> max:int -> f:((unit -> unit) -> unit) -> int
(** [drain cbl ~max ~f] removes up to [max] invocable callbacks, oldest
    first, applying [f] to each; returns how many were drained (the count
    the list already maintains — no [List.length] walk, no intermediate
    list). The batch size is fixed before the first invocation:
    callbacks advanced to the done segment by [f]'s side effects are not
    drained until the next pass. *)

val waiting : t -> int
(** Callbacks still waiting for their grace period. *)

val ready : t -> int
(** Callbacks whose grace period completed but that have not been invoked. *)

val total : t -> int
(** [waiting + ready]. *)

val next_cookie : t -> int option
(** Cookie of the oldest waiting callback, if any: the grace period that
    must complete next for progress. *)
