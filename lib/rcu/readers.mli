(** Simulated RCU readers and a reclamation-safety checker.

    Readers traverse RCU-protected structures inside read-side critical
    sections and may hold references to objects only within a section (the
    kernel rule from §2.1). This module tracks those references by object
    id, so the allocators can assert the fundamental safety property of
    procrastination-based reclamation: {e an object is never reused or
    reclaimed while some reader still references it}.

    Violations are recorded rather than raised so that fault-injection
    tests (a deliberately broken allocator that skips the grace-period
    wait) can observe them. *)

type t

val create : Gp.t -> t

val rcu : t -> Gp.t

(** {1 Read-side sections} *)

val enter : t -> Sim.Machine.cpu -> unit
(** Begin a critical section on [cpu] (wraps {!Gp.read_lock}). *)

val exit : t -> Sim.Machine.cpu -> unit
(** End the section; every reference the section still holds is dropped
    (readers cannot carry references out of a section). *)

val hold : t -> Sim.Machine.cpu -> oid:int -> unit
(** Record that the current section on [cpu] references object [oid].
    Recording outside a section is itself a violation. *)

val release : t -> Sim.Machine.cpu -> oid:int -> unit
(** Drop one reference to [oid] from [cpu]'s current section. *)

val with_section : t -> Sim.Machine.cpu -> (unit -> 'a) -> 'a
(** [with_section t cpu f] runs [f] inside a critical section. *)

(** {1 Safety checking} *)

val refcount : t -> oid:int -> int
(** Readers currently referencing [oid] (across all CPUs). *)

val check_reusable : t -> oid:int -> where:string -> unit
(** Assert [refcount oid = 0]; otherwise record a violation tagged
    [where]. Allocators call this when recycling an object's memory. *)

val record_violation : t -> string -> unit
val violations : t -> string list
(** Recorded violations, oldest first. Bounded: only the first
    {!max_logged_violations} are kept; see {!dropped_violations}. *)

val dropped_violations : t -> int
(** Violations recorded past the log bound and discarded. *)

val max_logged_violations : int
(** Log bound (first-K retention). *)

val set_access_hook : t -> (cpu:int -> oid:int -> unit) option -> unit
(** Install a probe fired on every {!hold} (a reader dereferencing object
    [oid] on [cpu]) before any bookkeeping. The shadow-heap oracle uses it
    to flag readers touching objects that have already been reclaimed.
    [None] (default) disables it. *)
