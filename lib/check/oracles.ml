type config = {
  missed_qs : bool;
  cb_conservation : bool;
  stall_bound_ns : int;
}

let default_config ~duration_ns =
  { missed_qs = true; cb_conservation = true; stall_bound_ns = duration_ns / 4 }

type stall_violation = {
  at_ns : int;
  gp_seq : int;
  age_ns : int;
  holdouts : int list;
}

type cb_violation = { at_ns : int; queued : int; invoked : int; in_list : int }

let describe_stall (v : stall_violation) =
  Printf.sprintf
    "[%d ns] grace period %d active for %d ns past the %s bound with no \
     stall warning; holdout cpu(s): %s (missed-QS stall went undetected)"
    v.at_ns v.gp_seq v.age_ns "oracle"
    (String.concat "," (List.map string_of_int v.holdouts))

let describe_cb (v : cb_violation) =
  Printf.sprintf
    "[%d ns] callback conservation broken: %d queued - %d invoked = %d \
     expected in flight, but the per-CPU lists hold %d (%d callback(s) \
     lost)"
    v.at_ns v.queued v.invoked (v.queued - v.invoked) v.in_list
    (v.queued - v.invoked - v.in_list)

let max_logged = 16

type t = {
  rcu : Rcu.t;
  engine : Sim.Engine.t;
  cfg : config;
  mutable stall_flagged_seq : int; (* last GP seq already flagged *)
  mutable stall_log : stall_violation list; (* reversed, first K *)
  mutable stall_logged : int;
  mutable cb_log : cb_violation list; (* reversed, first K *)
  mutable cb_logged : int;
  mutable dropped : int;
}

(* Missed-QS stall: a grace period has been waiting on holdout CPUs past
   the bound and the stall detector has said nothing about it. With the
   detector armed (its timeout is below the bound), a warning always
   exists by the time the bound passes, so the oracle stays silent on
   every unmutated run; a detector that was disabled, broken, or pointed
   at the wrong grace period is the bug class ([--mutate=drop-stall]). *)
let poll_stall t =
  if t.cfg.missed_qs && Rcu.gp_active t.rcu then begin
    let age = Rcu.gp_age_ns t.rcu in
    if age > t.cfg.stall_bound_ns then begin
      let seq = Rcu.gp_seq t.rcu in
      if t.stall_flagged_seq <> seq then begin
        let warned =
          match Rcu.last_stall t.rcu with
          | Some w -> w.Rcu.gp_seq = seq
          | None -> false
        in
        if not warned then begin
          t.stall_flagged_seq <- seq;
          let holdouts = Rcu.holdout_cpus t.rcu in
          if t.stall_logged < max_logged then begin
            t.stall_log <-
              {
                at_ns = Sim.Engine.now t.engine;
                gp_seq = seq;
                age_ns = age;
                holdouts;
              }
              :: t.stall_log;
            t.stall_logged <- t.stall_logged + 1
          end
          else t.dropped <- t.dropped + 1
        end
      end
    end
  end

(* Callback conservation: queued = invoked + (waiting + ready across the
   per-CPU lists) holds at every instant — enqueue raises both sides,
   invocation lowers both. A callback that vanishes between the
   accounting and its list ([--mutate=lose-cb]) breaks the equation
   forever after. Checked at each grace-period completion and once at
   finalize. *)
let check_conservation t =
  if t.cfg.cb_conservation then begin
    let stats = Rcu.stats t.rcu in
    let in_list =
      Array.fold_left
        (fun acc (_, waiting, ready) -> acc + waiting + ready)
        0 (Rcu.cpu_backlogs t.rcu)
    in
    let expected = stats.Rcu.cbs_queued - stats.Rcu.cbs_invoked in
    if expected <> in_list then
      if t.cb_logged < max_logged then begin
        t.cb_log <-
          {
            at_ns = Sim.Engine.now t.engine;
            queued = stats.Rcu.cbs_queued;
            invoked = stats.Rcu.cbs_invoked;
            in_list;
          }
          :: t.cb_log;
        t.cb_logged <- t.cb_logged + 1
      end
      else t.dropped <- t.dropped + 1
  end

let install cfg (env : Workloads.Env.t) =
  let t =
    {
      rcu = env.Workloads.Env.rcu;
      engine = Sim.Machine.engine env.Workloads.Env.machine;
      cfg;
      stall_flagged_seq = 0;
      stall_log = [];
      stall_logged = 0;
      cb_log = [];
      cb_logged = 0;
      dropped = 0;
    }
  in
  if cfg.cb_conservation then
    Rcu.on_gp_complete t.rcu (fun _completed -> check_conservation t);
  t

let finalize t =
  poll_stall t;
  check_conservation t

let stall_violations t = List.rev_map describe_stall t.stall_log
let cb_violations t = List.rev_map describe_cb t.cb_log
let dropped_violations t = t.dropped
