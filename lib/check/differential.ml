module W = Workloads

type op = Alloc of int | Free of int | Defer of int

type trace = {
  n_slots : int;
  obj_size : int;
  gap_ns : int;
  ops : op array;
}

(* Ops are generated against an occupancy model so the script is always
   valid: allocations target empty slots, frees target occupied ones. A
   slot that is occupied defer-frees twice as often as it frees — the
   interesting paths are the deferred ones. *)
let gen ?(n_slots = 64) ?(n_ops = 2000) ?(obj_size = 512) ?(gap_ns = 20_000)
    ~seed () =
  let rng = Sim.Rng.create ~seed in
  let occupied = Array.make n_slots false in
  let n_occupied = ref 0 in
  let ops =
    Array.init n_ops (fun _ ->
        (* Bias towards filling when empty, draining when full. *)
        let want_alloc =
          !n_occupied = 0
          || (!n_occupied < n_slots && Sim.Rng.int rng n_slots >= !n_occupied)
        in
        if want_alloc then begin
          let slot = ref (Sim.Rng.int rng n_slots) in
          while occupied.(!slot) do
            slot := (!slot + 1) mod n_slots
          done;
          occupied.(!slot) <- true;
          incr n_occupied;
          Alloc !slot
        end
        else begin
          let slot = ref (Sim.Rng.int rng n_slots) in
          while not occupied.(!slot) do
            slot := (!slot + 1) mod n_slots
          done;
          occupied.(!slot) <- false;
          decr n_occupied;
          if Sim.Rng.int rng 3 = 0 then Free !slot else Defer !slot
        end)
  in
  { n_slots; obj_size; gap_ns; ops }

type outcome = Alloc_ok | Alloc_failed | Freed | Deferred_ok | Skipped

let outcome_name = function
  | Alloc_ok -> "alloc-ok"
  | Alloc_failed -> "alloc-failed"
  | Freed -> "freed"
  | Deferred_ok -> "deferred"
  | Skipped -> "skipped"

type replay = {
  label : string;
  outcomes : outcome array;
  oracle_violations : Shadow.violation list;
  reader_violations : string list;
  audit_failures : string list;
  finished : bool;
}

let replay ?(seed = 42) ?(total_pages = 16_384) trace kind =
  let env_cfg =
    {
      W.Env.default_config with
      W.Env.kind;
      cpus = 4;
      seed;
      total_pages;
      track_readers = true;
    }
  in
  let env = W.Env.build env_cfg in
  let oracle = Shadow.install env in
  let backend = env.W.Env.backend in
  let cache =
    backend.Slab.Backend.create_cache ~name:"diff" ~obj_size:trace.obj_size
  in
  let slots = Array.make trace.n_slots None in
  let outcomes = Array.make (Array.length trace.ops) Skipped in
  let finished = ref false in
  let eng = env.W.Env.eng in
  Sim.Process.spawn eng (fun () ->
      Array.iteri
        (fun i op ->
          let cpu = W.Env.cpu env (i mod env_cfg.W.Env.cpus) in
          (match op with
          | Alloc slot -> (
              match backend.Slab.Backend.alloc cache cpu with
              | Some obj ->
                  slots.(slot) <- Some obj;
                  outcomes.(i) <- Alloc_ok
              | None -> outcomes.(i) <- Alloc_failed)
          | Free slot -> (
              match slots.(slot) with
              | Some obj ->
                  slots.(slot) <- None;
                  backend.Slab.Backend.free cache cpu obj;
                  outcomes.(i) <- Freed
              | None -> outcomes.(i) <- Skipped)
          | Defer slot -> (
              match slots.(slot) with
              | Some obj ->
                  slots.(slot) <- None;
                  backend.Slab.Backend.free_deferred cache cpu obj;
                  outcomes.(i) <- Deferred_ok
              | None -> outcomes.(i) <- Skipped));
          Sim.Process.sleep eng trace.gap_ns)
        trace.ops;
      (* Quiesce: recycle every outstanding deferred object so the final
         audits see a settled allocator. *)
      backend.Slab.Backend.settle ();
      finished := true);
  let horizon =
    (Array.length trace.ops * trace.gap_ns) + Sim.Clock.ms 500
  in
  Sim.Engine.run ~until:horizon eng;
  {
    label = W.Env.kind_label kind;
    outcomes;
    oracle_violations = Shadow.violations oracle;
    reader_violations = W.Env.safety_violations env;
    audit_failures = Audit.env env;
    finished = !finished;
  }

type result = {
  ok : bool;
  mismatches : string list;
  replays : replay list;  (* one per kind, in request order *)
}

let verdict_mismatches r =
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  if not r.finished then note "%s: replay did not finish" r.label;
  List.iter
    (fun v -> note "%s: oracle: %s" r.label (Shadow.describe v))
    r.oracle_violations;
  List.iter
    (fun s -> note "%s: reader-checker: %s" r.label s)
    r.reader_violations;
  List.iter (fun s -> note "%s: audit: %s" r.label s) r.audit_failures;
  List.rev !problems

let run ?seed ?total_pages
    ?(kinds = [ W.Env.Baseline; W.Env.Prudence_alloc ]) trace =
  let replays = List.map (replay ?seed ?total_pages trace) kinds in
  let reference = List.hd replays in
  let mismatches = ref [] in
  List.iter
    (fun r ->
      if r != reference then
        Array.iteri
          (fun i a ->
            let b = r.outcomes.(i) in
            if a <> b then
              mismatches :=
                Printf.sprintf "op %d: %s on %s, %s under %s" i
                  (outcome_name a) reference.label (outcome_name b) r.label
                :: !mismatches)
          reference.outcomes)
    replays;
  let mismatches =
    List.rev !mismatches @ List.concat_map verdict_mismatches replays
  in
  { ok = mismatches = []; mismatches; replays }

let pp_result ppf r =
  if r.ok then
    Format.fprintf ppf
      "differential: OK — %d ops, identical outcomes on %d stack(s) (%s), \
       all verdicts clean"
      (Array.length (List.hd r.replays).outcomes)
      (List.length r.replays)
      (String.concat ", " (List.map (fun x -> x.label) r.replays))
  else begin
    let n = List.length r.mismatches in
    Format.fprintf ppf "@[<v 2>differential: %d problem(s):" n;
    List.iteri
      (fun i s -> if i < 20 then Format.fprintf ppf "@,%s" s)
      r.mismatches;
    if n > 20 then Format.fprintf ppf "@,... and %d more" (n - 20);
    Format.fprintf ppf "@]"
  end
