type step = {
  action : string;
  candidate : string;
  kept : bool;  (** [true] when the shrunk candidate still fails. *)
}

type result = {
  cfg : Sweep.config;
  case : Sweep.case;
  verdict : Sweep.verdict;
  replay : string;
  runs : int;
  steps : step list;
}

exception Not_a_witness

let ms ns = ns / 1_000_000

(* Shrinking re-runs the oracle, not a distance metric: a candidate is
   kept iff the full verification stack still fails on it. Coverage is
   never attached here — the minimizer wants the cheapest possible
   runs. *)
let run ?(progress = fun (_ : step) -> ()) cfg case =
  let runs = ref 0 in
  let steps = ref [] in
  let fails cfg =
    incr runs;
    not (Sweep.ok (Sweep.run_case cfg case))
  in
  let try_shrink ~action ~candidate cfg' ~keep ~drop =
    let kept = fails cfg' in
    let step = { action; candidate; kept } in
    steps := step :: !steps;
    progress step;
    if kept then keep cfg' else drop ()
  in
  (* Pin the fault plan: the scenario default becomes an explicit
     override so spec dropping has something concrete to chew on and the
     final replay carries the exact plan. *)
  let cfg = { cfg with Sweep.plan = Some (Sweep.plan_for cfg case) } in
  if not (fails cfg) then raise Not_a_witness;
  (* 1. Greedily drop fault-plan specs, one at a time, restarting after
     each successful drop (a later spec may only matter in combination
     with an earlier one). *)
  let rec drop_specs cfg =
    let plan =
      match cfg.Sweep.plan with Some p -> p | None -> assert false
    in
    let specs = Array.of_list plan.Faults.Plan.specs in
    let rec try_at i =
      if i >= Array.length specs then cfg
      else
        let remaining =
          List.filteri (fun j _ -> j <> i) plan.Faults.Plan.specs
        in
        let cfg' =
          {
            cfg with
            Sweep.plan = Some { plan with Faults.Plan.specs = remaining };
          }
        in
        try_shrink ~action:"drop-spec"
          ~candidate:(Faults.Plan.spec_name specs.(i))
          cfg' ~keep:drop_specs
          ~drop:(fun () -> try_at (i + 1))
    in
    try_at 0
  in
  let cfg = drop_specs cfg in
  (* 2. Binary-search the duration down to millisecond granularity. A
     spec scheduled past the shrunk duration is inert but still
     well-formed, so the plan needs no retouching. *)
  let cfg =
    let rec search cfg lo hi =
      (* Invariant: duration [hi] fails, [lo - 1] ms is untested-or-passes. *)
      if lo >= hi then cfg
      else
        let mid = (lo + hi) / 2 in
        let cfg' = { cfg with Sweep.duration_ns = Sim.Clock.ms mid } in
        try_shrink ~action:"shrink-duration"
          ~candidate:(Printf.sprintf "%d ms" mid)
          cfg'
          ~keep:(fun cfg' -> search cfg' lo mid)
          ~drop:(fun () -> search cfg (mid + 1) hi)
    in
    search cfg 1 (ms cfg.Sweep.duration_ns)
  in
  (* 3. Reduce the CPU count, smallest first. Candidates that would
     orphan a plan spec's CPU target are skipped outright (the plan is
     part of the witness; retargeting it would change the bug). *)
  let cfg =
    let plan =
      match cfg.Sweep.plan with Some p -> p | None -> assert false
    in
    let plan_fits cpus =
      Faults.Plan.validate ~cpus ~duration_ns:cfg.Sweep.duration_ns plan
      = Ok ()
    in
    let rec try_cpus c =
      if c >= cfg.Sweep.cpus then cfg
      else if not (plan_fits c) then try_cpus (c + 1)
      else
        try_shrink ~action:"reduce-cpus"
          ~candidate:(string_of_int c)
          { cfg with Sweep.cpus = c }
          ~keep:(fun cfg' -> cfg')
          ~drop:(fun () -> try_cpus (c + 1))
    in
    try_cpus 2
  in
  (* Final confirmation run: the verdict we report is from the exact
     configuration we print. *)
  incr runs;
  let verdict = Sweep.run_case cfg case in
  if Sweep.ok verdict then raise Not_a_witness;
  {
    cfg;
    case;
    verdict;
    replay = Sweep.replay_command cfg case;
    runs = !runs;
    steps = List.rev !steps;
  }
