(** Coverage-guided schedule fuzzing.

    The brute-force sweep walks a fixed (scenario × allocator × shuffle)
    matrix; the fuzzer instead treats the whole run description —
    shuffle seed, fault plan, duration, CPU count — as the input and
    mutates it, keeping inputs that light up new {!Coverage} features as
    the corpus for further mutation. Everything is derived from one
    integer seed: the same (config, seed, budget) replays the exact same
    campaign, record for record. *)

type input = {
  scenario : Workloads.Chaos.scenario;
  kind : Workloads.Env.kind;
  shuffle_seed : int;
  duration_ns : int;
  cpus : int;
  plan : Faults.Plan.t option;
      (** [None] = the scenario's default plan (materialized on first
          plan mutation). *)
}

type config = {
  base : Sweep.config;
      (** Seeds, scenario/kind lists, oracle switches, and the mutation
          under test all come from here; [sweeps] is unused. *)
  budget : int;  (** Maximum cases to execute. *)
  seed : int;  (** Fuzzer RNG seed (mutation choices only). *)
  stop_on_failure : bool;  (** Stop at the first failing verdict. *)
}

val default_config : config
(** [Sweep.default_config] base, budget 100, seed 1, stop on failure. *)

type origin = Seed | Mutated of { parent : int; op : string }

val origin_name : origin -> string
(** ["seed"], or the mutation op: ["shuffle"], ["plan"], ["duration"],
    ["cpus"]. *)

type record = {
  exec : int;  (** 1-based execution index. *)
  origin : origin;
  input : input;
  verdict : Sweep.verdict;
  new_features : int;  (** Coverage features this case saw first. *)
  total_features : int;  (** Global feature count after this case. *)
  corpus_size : int;
}

type result = {
  records : record list;  (** In execution order. *)
  executed : int;
  corpus : input list;  (** Inputs that contributed new coverage. *)
  failure : (Sweep.config * Sweep.case * Sweep.verdict) option;
      (** First failing case, concretized — feed it to {!Minimize.run}. *)
  total_features : int;
}

val concretize : config -> input -> Sweep.config * Sweep.case
(** The exact single-case sweep an input denotes (also what its replay
    command describes). *)

val seed_inputs : config -> input list
(** The initial corpus: one input per (scenario, kind), base settings. *)

val run : ?progress:(record -> unit) -> config -> result
(** Run the campaign: execute the seed corpus, then mutate
    coverage-contributing inputs (biased toward recent additions) until
    the budget is spent or — with [stop_on_failure] — an oracle fires.
    [progress] observes each record as it lands. *)

(** {1 Differential mode} *)

type diff_record = {
  d_exec : int;  (** 1-based execution index. *)
  trace_seed : int;
  n_ops : int;
  n_slots : int;
  gap_ns : int;
  result : Differential.result;
}

type diff_result = {
  diff_records : diff_record list;  (** In execution order. *)
  diff_executed : int;
  diff_failure : diff_record option;  (** First diverging case. *)
}

val run_differential :
  ?progress:(diff_record -> unit) -> ?kinds:Workloads.Env.kind list ->
  config -> diff_result
(** Generate op traces with shapes drawn from the fuzz RNG (seed, ops,
    slots, gap) and replay each under every kind (default: all
    registered backends), flagging any divergence in the
    backend-independent outcome sequence — or any oracle/audit hit — as
    a finding even when no safety oracle fires on its own. The budget
    counts traces; each trace costs one full replay per kind.
    Deterministic in (config, kinds, seed, budget). *)

(** {1 Cross-scheduler mode} *)

type xsched_record = {
  x_exec : int;  (** 1-based execution index; one input = two runs. *)
  x_origin : origin;
  x_input : input;
  x_agree : bool;
      (** Whether the two schedulers produced identical verdict
          signatures (deterministic counters + oracle outcomes). *)
  x_heap : Sweep.verdict;
  x_wheel : Sweep.verdict;
}

type xsched_result = {
  xsched_records : xsched_record list;  (** In execution order. *)
  xsched_executed : int;
  xsched_failure : xsched_record option;  (** First diverging input. *)
}

val run_cross_sched :
  ?progress:(xsched_record -> unit) -> config -> xsched_result
(** Replay each input under [Sim.Engine.Heap] and [Sim.Engine.Wheel]
    and compare verdict signatures: all violation lists, audit
    failures, dropped counts, oracle events, engine events, updates and
    survival must match exactly (replay command, coverage features and
    bundle paths are excluded — they are run metadata, not outcomes).
    Seeds first, then plan/shuffle/duration/cpus mutations of them.
    The budget counts inputs; each costs one run per scheduler.
    Deterministic in (config, seed, budget). *)
