module W = Workloads

type mutation =
  | No_mutation
  | Skip_gp
  | Drop_stall
  | Lose_cb
  | Free_latent_page
  | Skip_epoch_advance
  | Drop_retire_batch

let mutation_name = function
  | No_mutation -> "none"
  | Skip_gp -> "skip-gp"
  | Drop_stall -> "drop-stall"
  | Lose_cb -> "lose-cb"
  | Free_latent_page -> "free-latent-page"
  | Skip_epoch_advance -> "skip-epoch-advance"
  | Drop_retire_batch -> "drop-retire-batch"

let mutation_of_string = function
  | "none" -> Some No_mutation
  | "skip-gp" | "skip_gp" -> Some Skip_gp
  | "drop-stall" | "drop_stall" -> Some Drop_stall
  | "lose-cb" | "lose_cb" -> Some Lose_cb
  | "free-latent-page" | "free_latent_page" -> Some Free_latent_page
  | "skip-epoch-advance" | "skip_epoch_advance" -> Some Skip_epoch_advance
  | "drop-retire-batch" | "drop_retire_batch" -> Some Drop_retire_batch
  | _ -> None

let all_mutations =
  [ Skip_gp; Drop_stall; Lose_cb; Free_latent_page; Skip_epoch_advance;
    Drop_retire_batch ]

type oracles = {
  page_reuse : bool;
  early_reuse : bool;
  missed_qs : bool;
  cb_conservation : bool;
}

let all_oracles =
  { page_reuse = true; early_reuse = true; missed_qs = true;
    cb_conservation = true }

type config = {
  scenarios : W.Chaos.scenario list;
  kinds : W.Env.kind list;
  sweeps : int;
  base_shuffle_seed : int;
  seed : int;
  cpus : int;
  duration_ns : int;
  total_pages : int;
  mutation : mutation;
  oracles : oracles;
  plan : Faults.Plan.t option;
  bundle_dir : string option;
}

let default_config =
  {
    scenarios = W.Chaos.all_scenarios;
    kinds = [ W.Env.Baseline; W.Env.Prudence_alloc ];
    sweeps = 20;
    base_shuffle_seed = 1;
    seed = 42;
    cpus = 4;
    duration_ns = Sim.Clock.ms 50;
    total_pages = 8_192;
    mutation = No_mutation;
    oracles = all_oracles;
    plan = None;
    bundle_dir = None;
  }

(* The armed stall-detector timeout scales with the run so it can actually
   fire inside short sweeps (the chaos CLI default of 200 ms never would);
   the missed-QS oracle bound sits at twice the timeout, so on unmutated
   runs a warning always exists before the oracle looks. *)
let stall_timeout_ns cfg = max 1 (cfg.duration_ns / 8)
let stall_bound_ns cfg = 2 * stall_timeout_ns cfg

type case = {
  scenario : W.Chaos.scenario;
  kind : W.Env.kind;
  shuffle_seed : int;
}

type verdict = {
  case : case;
  oracle_violations : Shadow.violation list;
  reader_violations : string list;
  stall_violations : string list;
  cb_violations : string list;
  audit_failures : string list;
  dropped_violations : int;
  oracle_events : int;
  events : int;
  updates : int;
  survived : bool;
  replay : string;
  features : int list;
  bundle : string option;
}

let ok v =
  v.oracle_violations = [] && v.reader_violations = []
  && v.stall_violations = [] && v.cb_violations = []
  && v.audit_failures = [] && v.dropped_violations = 0

let replay_command cfg case =
  Printf.sprintf
    "prudence-repro check %s --alloc=%s --seed=%d --shuffle-seed=%d \
     --sweeps=1 --cpus=%d --duration-ms=%d --pages=%d%s%s"
    (W.Chaos.scenario_name case.scenario)
    (W.Env.kind_label case.kind)
    cfg.seed case.shuffle_seed cfg.cpus
    (cfg.duration_ns / 1_000_000)
    cfg.total_pages
    (match cfg.mutation with
    | No_mutation -> ""
    | m -> " --mutate=" ^ mutation_name m)
    (match cfg.plan with
    | None -> ""
    | Some p -> Printf.sprintf " --plan='%s'" (Faults.Plan.to_compact p))

let chaos_config cfg scenario =
  {
    (W.Chaos.default_config ~scenario) with
    W.Chaos.seed = cfg.seed;
    cpus = cfg.cpus;
    duration_ns = cfg.duration_ns;
    total_pages = cfg.total_pages;
  }

let plan_for cfg case =
  match cfg.plan with
  | Some p -> p
  | None -> W.Chaos.plan_for (chaos_config cfg case.scenario)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

(* Everything in a bundle derives from virtual time and deterministic
   counters, so the same seed and the same violation reproduce it
   byte-for-byte (the bundle-determinism test's contract). The file name
   is the case coordinates, so a sweep directory maps one failing
   schedule to one bundle. *)
let dump_bundle dir cfg env v =
  mkdir_p dir;
  let reason =
    if v.oracle_violations <> [] then "oracle-violation"
    else if v.reader_violations <> [] then "reader-violation"
    else if v.stall_violations <> [] then "stall-violation"
    else if v.cb_violations <> [] then "cb-violation"
    else if v.audit_failures <> [] then "audit-failure"
    else "dropped-violations"
  in
  let violations =
    List.map Shadow.describe v.oracle_violations
    @ v.reader_violations @ v.stall_violations @ v.cb_violations
    @ v.audit_failures
  in
  let offenders =
    List.rev
      (List.fold_left
         (fun acc (viol : Shadow.violation) ->
           if List.mem_assoc viol.Shadow.oid acc then acc
           else (viol.Shadow.oid, Shadow.describe viol) :: acc)
         [] v.oracle_violations)
  in
  let metrics =
    let reg = Stats.Registry.create () in
    Stats.Providers.register_env reg env;
    List.map
      (fun ((m : Stats.Registry.metric), value) -> (m.Stats.Registry.name, value))
      (Stats.Registry.read_all reg)
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "bundle-%s-%s-s%d%s.ndjson"
         (W.Chaos.scenario_name v.case.scenario)
         (W.Env.kind_label v.case.kind)
         v.case.shuffle_seed
         (match cfg.mutation with
         | No_mutation -> ""
         | m -> "-" ^ mutation_name m))
  in
  Obs.Bundle.write ~path ~reason ~replay:v.replay
    ~scheme:(W.Env.kind_label v.case.kind)
    ~at_ns:(Sim.Engine.now env.W.Env.eng)
    ~tracer:env.W.Env.tracer ~anatomy:env.W.Env.obs ~offenders ~violations
    ~metrics ();
  path

(* Mirrors [Workloads.Chaos.run_one] — same fault plan, same mitigations —
   but with the shuffled tie-break installed and the full verification
   stack (shadow oracle + pattern oracles + auditors) armed. *)
let run_case ?coverage cfg case =
  let env_cfg =
    {
      W.Env.default_config with
      W.Env.kind = case.kind;
      cpus = cfg.cpus;
      seed = cfg.seed;
      tiebreak = Sim.Engine.Shuffle case.shuffle_seed;
      total_pages = cfg.total_pages;
      (* Coverage's trace-adjacency feed needs a live tracer; the sink
         sees every event regardless of ring retention, so the ring can
         stay small. Bundling needs the flight-recorder window, so it
         arms the tracer (and the anatomy recorder) too — both are pure
         observation, so the verdict is identical either way. *)
      trace =
        (match (coverage, cfg.bundle_dir) with
        | None, None -> None
        | _ -> Some 1_024);
      obs = cfg.bundle_dir <> None;
      rcu_config =
        {
          Rcu.default_config with
          Rcu.blimit = 100;
          expedited_blimit = 300;
          softirq_period_ns = 1_000_000;
          qhimark = max_int;
          stall_timeout_ns =
            (match cfg.mutation with
            | Drop_stall -> None
            | _ -> Some (stall_timeout_ns cfg));
          unsafe_lose_cb_every =
            (match cfg.mutation with Lose_cb -> Some 64 | _ -> None);
        };
      prudence_config =
        {
          Prudence.default_config with
          Prudence.emergency_flush = true;
          unsafe_skip_gp = (cfg.mutation = Skip_gp);
        };
      ebr_config =
        {
          Slab.Ebr.default_config with
          Slab.Ebr.unsafe_no_scan = (cfg.mutation = Skip_epoch_advance);
        };
      hyaline_config =
        {
          Slab.Hyaline.default_config with
          Slab.Hyaline.unsafe_drop_refs = (cfg.mutation = Drop_retire_batch);
        };
      track_readers = true;
      (* The sweep is a verification pass: force the frame's invariant
         sweeps on regardless of the ambient default. *)
      debug_checks = true;
    }
  in
  let env = W.Env.build env_cfg in
  let oracle =
    Shadow.install ~page_reuse:cfg.oracles.page_reuse
      ~early_reuse:cfg.oracles.early_reuse ?coverage env
  in
  let orc =
    Oracles.install
      {
        Oracles.missed_qs = cfg.oracles.missed_qs;
        cb_conservation = cfg.oracles.cb_conservation;
        stall_bound_ns = stall_bound_ns cfg;
      }
      env
  in
  env.W.Env.fenv.Slab.Frame.grow_retry <-
    Some { Slab.Frame.max_retries = 6; base_backoff_ns = 10_000 };
  env.W.Env.fenv.Slab.Frame.unsafe_destroy_latent <-
    cfg.mutation = Free_latent_page;
  let engine = Sim.Machine.engine env.W.Env.machine in
  (match coverage with
  | Some cov ->
      Trace.set_sink env.W.Env.tracer
        (Some
           (fun ~cpu ~kind ->
             Coverage.note_trace cov ~cpu
               ~kind_index:(Trace.Event.kind_index kind)));
      Sim.Engine.set_observer engine
        (Some
           (fun ~time ->
             Coverage.note_event cov ~time;
             Oracles.poll_stall orc))
  | None ->
      if cfg.oracles.missed_qs then
        Sim.Engine.set_observer engine
          (Some (fun ~time:_ -> Oracles.poll_stall orc)));
  ignore
    (Faults.Injector.install ~pressure:env.W.Env.pressure (plan_for cfg case)
       ~machine:env.W.Env.machine ~buddy:env.W.Env.buddy ~rcu:env.W.Env.rcu);
  let r =
    W.Endurance.run env
      { W.Endurance.default_config with
        W.Endurance.duration_ns = cfg.duration_ns }
  in
  Oracles.finalize orc;
  (match coverage with Some cov -> Coverage.finish cov | None -> ());
  let v =
    {
      case;
      oracle_violations = Shadow.violations oracle;
      reader_violations = W.Env.safety_violations env;
      stall_violations = Oracles.stall_violations orc;
      cb_violations = Oracles.cb_violations orc;
      audit_failures = Audit.env env;
      dropped_violations =
        Shadow.dropped_violations oracle
        + Rcu.Readers.dropped_violations env.W.Env.readers
        + Oracles.dropped_violations orc;
      oracle_events = Shadow.events oracle;
      events = Sim.Engine.executed env.W.Env.eng;
      updates = r.W.Endurance.updates;
      survived = r.W.Endurance.oom_at_ns = None;
      replay = replay_command cfg case;
      features =
        (match coverage with Some cov -> Coverage.features cov | None -> []);
      bundle = None;
    }
  in
  match cfg.bundle_dir with
  | Some dir when not (ok v) -> { v with bundle = Some (dump_bundle dir cfg env v) }
  | Some _ | None -> v

let cases cfg =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun kind ->
          List.init cfg.sweeps (fun i ->
              { scenario; kind; shuffle_seed = cfg.base_shuffle_seed + i }))
        cfg.kinds)
    cfg.scenarios

let run ?(progress = fun _ -> ()) cfg =
  List.map
    (fun case ->
      progress case;
      run_case cfg case)
    (cases cfg)

let pp_case ppf case =
  Format.fprintf ppf "%s/%s shuffle=%d"
    (W.Chaos.scenario_name case.scenario)
    (W.Env.kind_label case.kind)
    case.shuffle_seed

let pp_verdict ppf v =
  if ok v then
    Format.fprintf ppf "PASS %a (%d updates, %d probe events%s)" pp_case
      v.case v.updates v.oracle_events
      (if v.survived then "" else ", oom")
  else begin
    Format.fprintf ppf "@[<v 2>FAIL %a:" pp_case v.case;
    let capped label describe items =
      List.iteri
        (fun i x ->
          if i < 5 then Format.fprintf ppf "@,%s: %s" label (describe x))
        items;
      let n = List.length items in
      if n > 5 then Format.fprintf ppf "@,... and %d more %s(s)" (n - 5) label
    in
    capped "oracle" Shadow.describe v.oracle_violations;
    capped "reader-checker" Fun.id v.reader_violations;
    capped "stall-oracle" Fun.id v.stall_violations;
    capped "cb-oracle" Fun.id v.cb_violations;
    capped "audit" Fun.id v.audit_failures;
    if v.dropped_violations > 0 then
      Format.fprintf ppf "@,(plus %d violation(s) past the log bound)"
        v.dropped_violations;
    (match v.bundle with
    | Some p -> Format.fprintf ppf "@,bundle: %s" p
    | None -> ());
    Format.fprintf ppf "@,replay: %s@]" v.replay
  end

let summary ppf verdicts =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = (v.case.scenario, v.case.kind) in
      let passed, failed =
        Option.value (Hashtbl.find_opt groups key) ~default:(0, 0)
      in
      Hashtbl.replace groups key
        (if ok v then (passed + 1, failed) else (passed, failed + 1)))
    verdicts;
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun scenario ->
      List.iter
        (fun kind ->
          match Hashtbl.find_opt groups (scenario, kind) with
          | None -> ()
          | Some (passed, failed) ->
              Format.fprintf ppf "%-16s %-9s %3d/%d schedules clean%s@,"
                (W.Chaos.scenario_name scenario)
                (W.Env.kind_label kind) passed (passed + failed)
                (if failed > 0 then "  <-- FAIL" else ""))
        W.Env.all_kinds)
    W.Chaos.all_scenarios;
  let failures = List.filter (fun v -> not (ok v)) verdicts in
  if failures <> [] then begin
    Format.fprintf ppf "@,%d failing schedule(s):@," (List.length failures);
    List.iter (fun v -> Format.fprintf ppf "%a@," pp_verdict v) failures
  end;
  Format.fprintf ppf "@]"
