module W = Workloads

type input = {
  scenario : W.Chaos.scenario;
  kind : W.Env.kind;
  shuffle_seed : int;
  duration_ns : int;
  cpus : int;
  plan : Faults.Plan.t option;
}

type config = {
  base : Sweep.config;
  budget : int;
  seed : int;
  stop_on_failure : bool;
}

let default_config =
  {
    base = Sweep.default_config;
    budget = 100;
    seed = 1;
    stop_on_failure = true;
  }

type origin = Seed | Mutated of { parent : int; op : string }

let origin_name = function
  | Seed -> "seed"
  | Mutated { op; _ } -> op

type record = {
  exec : int;
  origin : origin;
  input : input;
  verdict : Sweep.verdict;
  new_features : int;
  total_features : int;
  corpus_size : int;
}

type result = {
  records : record list;
  executed : int;
  corpus : input list;
  failure : (Sweep.config * Sweep.case * Sweep.verdict) option;
  total_features : int;
}

(* The concrete (config, case) pair an input runs as — also what the
   minimizer starts from and what the replay command reflects. *)
let concretize cfg input =
  ( {
      cfg.base with
      Sweep.duration_ns = input.duration_ns;
      cpus = input.cpus;
      plan = input.plan;
    },
    {
      Sweep.scenario = input.scenario;
      kind = input.kind;
      shuffle_seed = input.shuffle_seed;
    } )

let seed_inputs cfg =
  List.concat_map
    (fun scenario ->
      List.map
        (fun kind ->
          {
            scenario;
            kind;
            shuffle_seed = cfg.base.Sweep.base_shuffle_seed;
            duration_ns = cfg.base.Sweep.duration_ns;
            cpus = cfg.base.Sweep.cpus;
            plan = cfg.base.Sweep.plan;
          })
        cfg.base.Sweep.kinds)
    cfg.base.Sweep.scenarios

(* One mutation of a corpus entry. Ops are drawn from the fuzz RNG only,
   so the whole campaign is a pure function of (config, seed, budget). *)
let mutate_input cfg rng input =
  match Sim.Rng.int rng 4 with
  | 0 ->
      (* New same-instant serialization of the same run. *)
      ( "shuffle",
        { input with shuffle_seed = Sim.Rng.int rng 1_000_000 } )
  | 1 ->
      (* Perturb the fault plan (materializing the scenario default the
         first time this lineage is touched). *)
      let scfg, case = concretize cfg input in
      let plan = Sweep.plan_for scfg case in
      let salt = Sim.Rng.int rng max_int in
      let plan =
        Faults.Plan.mutate ~salt ~cpus:input.cpus
          ~duration_ns:input.duration_ns plan
      in
      ("plan", { input with plan = Some plan })
  | 2 ->
      (* Stretch or squeeze the run: x0.5 .. x2, >= 2 ms. *)
      let factor = 0.5 +. Sim.Rng.float rng 1.5 in
      let d =
        max (Sim.Clock.ms 2)
          (int_of_float (float_of_int input.duration_ns *. factor))
      in
      ("duration", { input with duration_ns = d })
  | _ ->
      let cpus = 2 + Sim.Rng.int rng 7 in
      if cpus = input.cpus then
        ("shuffle", { input with shuffle_seed = Sim.Rng.int rng 1_000_000 })
      else begin
        (* A narrower machine may invalidate plan CPU targets; retarget
           by revalidating and dropping what no longer fits. *)
        let plan =
          match input.plan with
          | None -> None
          | Some p ->
              let specs =
                List.filter
                  (fun s ->
                    Faults.Plan.validate ~cpus ~duration_ns:input.duration_ns
                      { p with Faults.Plan.specs = [ s ] }
                    = Ok ())
                  p.Faults.Plan.specs
              in
              Some { p with Faults.Plan.specs = specs }
        in
        ("cpus", { input with cpus; plan })
      end

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: op-trace inputs, all backends, divergence in
   the backend-independent outcome sequence is a finding even when no
   safety oracle fires.                                                *)
(* ------------------------------------------------------------------ *)

type diff_record = {
  d_exec : int;  (* 1-based execution index *)
  trace_seed : int;
  n_ops : int;
  n_slots : int;
  gap_ns : int;
  result : Differential.result;
}

type diff_result = {
  diff_records : diff_record list;  (* in execution order *)
  diff_executed : int;
  diff_failure : diff_record option;  (* first diverging case *)
}

(* Each execution replays one generated trace under every kind — the
   budget counts traces, not replays. Trace shapes are drawn from the
   fuzz RNG only, so the campaign is a pure function of
   (config, kinds, seed, budget). *)
let run_differential ?(progress = fun (_ : diff_record) -> ())
    ?(kinds = W.Env.all_kinds) cfg =
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let records = ref [] in
  let executed = ref 0 in
  let failure = ref None in
  while
    !executed < cfg.budget
    && not (cfg.stop_on_failure && !failure <> None)
  do
    let trace_seed = Sim.Rng.int rng 1_000_000 in
    let n_ops = 400 + Sim.Rng.int rng 1_600 in
    let n_slots = 16 + Sim.Rng.int rng 112 in
    let gap_ns = 5_000 + Sim.Rng.int rng 45_000 in
    let trace = Differential.gen ~n_slots ~n_ops ~gap_ns ~seed:trace_seed () in
    let result =
      Differential.run ~seed:cfg.base.Sweep.seed
        ~total_pages:cfg.base.Sweep.total_pages ~kinds trace
    in
    incr executed;
    let record =
      { d_exec = !executed; trace_seed; n_ops; n_slots; gap_ns; result }
    in
    records := record :: !records;
    progress record;
    if (not result.Differential.ok) && !failure = None then
      failure := Some record
  done;
  {
    diff_records = List.rev !records;
    diff_executed = !executed;
    diff_failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Cross-scheduler fuzzing: the same input replayed under the heap and
   the wheel engine scheduler must produce identical deterministic
   counters and oracle verdicts — dispatch order is part of the
   simulation's contract, not an implementation detail.               *)
(* ------------------------------------------------------------------ *)

type xsched_record = {
  x_exec : int;  (* 1-based execution index; one input = two runs *)
  x_origin : origin;
  x_input : input;
  x_agree : bool;
  x_heap : Sweep.verdict;
  x_wheel : Sweep.verdict;
}

type xsched_result = {
  xsched_records : xsched_record list;  (* in execution order *)
  xsched_executed : int;
  xsched_failure : xsched_record option;  (* first diverging input *)
}

(* Everything a verdict observes about the run except fields that are
   scheduler-run metadata by construction (replay command, coverage
   features, bundle path). [events] is the engine's executed count: the
   broadest deterministic counter, sensitive to any dispatch-order
   change that perturbs nested scheduling. *)
let verdict_signature (v : Sweep.verdict) =
  ( v.Sweep.oracle_violations,
    v.Sweep.reader_violations,
    v.Sweep.stall_violations,
    v.Sweep.cb_violations,
    v.Sweep.audit_failures,
    v.Sweep.dropped_violations,
    v.Sweep.oracle_events,
    v.Sweep.events,
    v.Sweep.updates,
    v.Sweep.survived )

let run_with_sched sched scfg case =
  let saved = !Sim.Engine.default_sched in
  Sim.Engine.default_sched := sched;
  Fun.protect
    ~finally:(fun () -> Sim.Engine.default_sched := saved)
    (fun () -> Sweep.run_case scfg case)

(* Budget counts inputs; each input runs twice (heap, then wheel).
   Mutations draw from the fuzz RNG only, so the campaign is a pure
   function of (config, seed, budget) — like [run], but comparing
   schedulers instead of hunting oracle violations. *)
let run_cross_sched ?(progress = fun (_ : xsched_record) -> ()) cfg =
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let records = ref [] in
  let executed = ref 0 in
  let failure = ref None in
  let execute origin input =
    let scfg, case = concretize cfg input in
    (* Any failing-case forensics belong to the ordinary fuzz loop; a
       cross-scheduler run only compares, so never write bundles. *)
    let scfg = { scfg with Sweep.bundle_dir = None } in
    let x_heap = run_with_sched Sim.Engine.Heap scfg case in
    let x_wheel = run_with_sched Sim.Engine.Wheel scfg case in
    incr executed;
    let x_agree = verdict_signature x_heap = verdict_signature x_wheel in
    let record =
      { x_exec = !executed; x_origin = origin; x_input = input; x_agree;
        x_heap; x_wheel }
    in
    records := record :: !records;
    progress record;
    if (not x_agree) && !failure = None then failure := Some record
  in
  let stop () =
    !executed >= cfg.budget || (cfg.stop_on_failure && !failure <> None)
  in
  let seeds = seed_inputs cfg in
  List.iter (fun input -> if not (stop ()) then execute Seed input) seeds;
  let corpus = Array.of_list seeds in
  while not (stop ()) && Array.length corpus > 0 do
    let parent = Sim.Rng.int rng (Array.length corpus) in
    let op, input = mutate_input cfg rng corpus.(parent) in
    execute (Mutated { parent; op }) input
  done;
  {
    xsched_records = List.rev !records;
    xsched_executed = !executed;
    xsched_failure = !failure;
  }

let run ?(progress = fun (_ : record) -> ()) cfg =
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let global = Coverage.create () in
  let corpus = ref [||] in
  let records = ref [] in
  let executed = ref 0 in
  let failure = ref None in
  let admit input = corpus := Array.append !corpus [| input |] in
  let execute origin input =
    let scfg, case = concretize cfg input in
    let cov = Coverage.create () in
    let verdict = Sweep.run_case ~coverage:cov scfg case in
    incr executed;
    let fresh = Coverage.absorb ~into:global cov in
    if fresh > 0 then admit input;
    let record =
      {
        exec = !executed;
        origin;
        input;
        verdict;
        new_features = fresh;
        total_features = Coverage.size global;
        corpus_size = Array.length !corpus;
      }
    in
    records := record :: !records;
    progress record;
    if (not (Sweep.ok verdict)) && !failure = None then
      failure := Some (scfg, case, verdict);
    verdict
  in
  let stop () =
    !executed >= cfg.budget
    || (cfg.stop_on_failure && !failure <> None)
  in
  (* Phase 1: the deterministic seed corpus — one case per
     (scenario, kind). Under an injected bug this alone beats the
     brute-force matrix, which burns [sweeps] schedules per pair before
     moving on. *)
  List.iteri
    (fun i input -> if not (stop ()) && i < cfg.budget then ignore (execute Seed input))
    (seed_inputs cfg);
  (* Phase 2: coverage-guided mutation, biased toward recent corpus
     entries (the ones that most recently surfaced new behaviour). *)
  while not (stop ()) && Array.length !corpus > 0 do
    let n = Array.length !corpus in
    let parent =
      (* Geometric bias from the back: newest entries mutate most. *)
      let back = min (Sim.Rng.geometric rng ~p:0.35) (n - 1) in
      n - 1 - back
    in
    let op, input = mutate_input cfg rng !corpus.(parent) in
    ignore (execute (Mutated { parent; op }) input)
  done;
  {
    records = List.rev !records;
    executed = !executed;
    corpus = Array.to_list !corpus;
    failure = !failure;
    total_features = Coverage.size global;
  }
