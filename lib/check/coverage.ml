(* Feature encoding: a feature is one int with a domain tag in the high
   bits, so the three signal families share one hash-set:

   - domain 0: shadow-heap state transitions, (from_tag * 8 + to_tag);
   - domain 1: per-CPU trace-event adjacency,
     ((cpu * kinds + prev) * kinds + cur);
   - domain 2: engine same-instant run lengths, log2-bucketed.

   Cheap by construction — each observation is an int mix plus one
   hash-set membership test — and entirely observational: none of the
   feeds schedule events or consume RNG draws. *)

let domain_shift = 24
let domain_transition = 0
let domain_adjacency = 1
let domain_runlen = 2

type t = {
  features : (int, unit) Hashtbl.t;
  mutable last_kind : int array; (* per-CPU previous trace kind, -1 = none *)
  mutable last_time : int;
  mutable run_len : int;
}

let create () =
  {
    features = Hashtbl.create 256;
    last_kind = [||];
    last_time = min_int;
    run_len = 0;
  }

let add t f = if not (Hashtbl.mem t.features f) then Hashtbl.add t.features f ()

let note_transition t ~from_tag ~to_tag =
  add t ((domain_transition lsl domain_shift) lor ((from_tag * 8) + to_tag))

let kinds = Trace.Event.kind_count

let note_trace t ~cpu ~kind_index =
  let cpu = cpu + 1 (* -1 = machine-global *) in
  if cpu >= Array.length t.last_kind then begin
    let grown = Array.make (cpu + 8) (-1) in
    Array.blit t.last_kind 0 grown 0 (Array.length t.last_kind);
    t.last_kind <- grown
  end;
  let prev = t.last_kind.(cpu) in
  t.last_kind.(cpu) <- kind_index;
  if prev >= 0 then
    add t
      ((domain_adjacency lsl domain_shift)
      lor ((((cpu * kinds) + prev) * kinds) + kind_index))

let bucket n =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 n

let flush_run t =
  if t.run_len > 0 then
    add t ((domain_runlen lsl domain_shift) lor bucket t.run_len)

let note_event t ~time =
  if time = t.last_time then t.run_len <- t.run_len + 1
  else begin
    flush_run t;
    t.last_time <- time;
    t.run_len <- 1
  end

let finish t = flush_run t

let size t = Hashtbl.length t.features

let features t =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t.features [])

let absorb ~into src =
  Hashtbl.fold
    (fun f () fresh ->
      if Hashtbl.mem into.features f then fresh
      else begin
        Hashtbl.add into.features f ();
        fresh + 1
      end)
    src.features 0
