(** Differential checking: one recorded workload trace, two allocator
    stacks, identical observable outcomes required.

    A trace is a slot-based alloc/free/defer script generated against an
    occupancy model (operations are always valid: allocate into an empty
    slot, free or defer-free an occupied one). Replaying it against every
    requested allocator/SMR stack must produce the same per-operation
    outcome sequence and the same (empty) safety verdicts — the stacks
    may differ in {e when} memory is reclaimed, never in {e whether} the
    mutator's requests succeed or safety holds. *)

type op =
  | Alloc of int  (** Allocate into slot [i]. *)
  | Free of int  (** Immediately free slot [i]. *)
  | Defer of int  (** Defer-free slot [i] (the RCU-retire path). *)

type trace = {
  n_slots : int;
  obj_size : int;
  gap_ns : int;  (** Virtual-time gap between operations. *)
  ops : op array;
}

val gen :
  ?n_slots:int -> ?n_ops:int -> ?obj_size:int -> ?gap_ns:int ->
  seed:int -> unit -> trace
(** Deterministic in [seed]. Defaults: 64 slots, 2000 ops, 512-byte
    objects, 20 µs between ops (so grace periods elapse mid-trace and
    deferred objects actually cycle back). *)

type outcome =
  | Alloc_ok
  | Alloc_failed
  | Freed
  | Deferred_ok
  | Skipped
      (** The slot was empty at replay time (its alloc failed), so the
          free/defer was not performed. Any divergence here shows up as an
          outcome mismatch against the other stack. *)

val outcome_name : outcome -> string

type replay = {
  label : string;
  outcomes : outcome array;  (** One per op, in trace order. *)
  oracle_violations : Shadow.violation list;
  reader_violations : string list;
  audit_failures : string list;
  finished : bool;  (** The replay process ran the whole trace. *)
}

val replay : ?seed:int -> ?total_pages:int -> trace -> Workloads.Env.kind -> replay
(** Build the stack for [kind], install the shadow oracle and the reader
    checker, run the trace from a driver process (round-robining CPUs),
    settle the allocator, then audit. *)

type result = {
  ok : bool;
  mismatches : string list;
  replays : replay list;  (** One per kind, in request order. *)
}

val run :
  ?seed:int -> ?total_pages:int -> ?kinds:Workloads.Env.kind list ->
  trace -> result
(** Replay against each stack in [kinds] (default: baseline + Prudence)
    and compare everything to the first: same outcome at every index,
    every oracle clean, every audit clean. [mismatches] lists every
    difference found (capped in the report, never in the comparison). *)

val pp_result : Format.formatter -> result -> unit
