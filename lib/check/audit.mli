(** Invariant auditors.

    Each auditor walks one layer's live data structures and returns a list
    of human-readable invariant failures (empty = clean). Unlike the
    [check_invariants] asserts sprinkled through the allocators, auditors
    never raise and never mutate — they can run at any virtual time, from
    the middle of a schedule sweep to the end of a differential replay,
    and their findings are reported alongside the oracle's. *)

val buddy : Mem.Buddy.t -> string list
(** Free-list coverage, no block overlap, and split/merge conservation:
    the free and allocated block sets must tile [0, total_pages) exactly,
    every block must be naturally aligned for its order, and the page
    totals must match the allocator's own counters. *)

val slab : rcu:Rcu.t -> Slab.Frame.cache -> string list
(** Slab accounting: per-slab occupancy ([free + latent + in_flight =
    capacity]), list-membership tags, object-state tags vs. the structure
    each object actually sits in, cache-level counters ([total_slabs],
    [live_objs], [latent_count]) vs. a recount, and statistics identities
    ([allocs = hits + misses], [grows - shrinks = total_slabs]). The
    in-flight recount may exceed [live + cached] by objects defer-freed
    through [call_rcu] whose callbacks have not run yet (the baseline's
    extended-lifetime window); that surplus is bounded by the RCU
    backlog, hence [rcu]. *)

val latent : smr:Slab.Smr.t -> Slab.Frame.cache -> string list
(** Latent-cache accounting vs. reclamation-scheme state: every deferred
    object's token must lie in the valid window — positive and no newer
    than the next token the SMR state could issue. Pass the truthful
    view so a frontier-corrupting mutation cannot fool the bound. *)

val env : Workloads.Env.t -> string list
(** All of the above over the environment: the buddy allocator plus every
    cache the backend knows, each failure prefixed with its layer. *)
