(** Schedule exploration: sweep the chaos-scenario matrix under perturbed
    same-instant event orderings, asserting the safety oracles and the
    invariant auditors on every run.

    One {e case} is (scenario, allocator, shuffle seed): the scenario's
    fault plan and workload run with {!Sim.Engine.Shuffle}[ seed] as the
    engine tie-break, so logically concurrent events execute in a
    different (but deterministic and replayable) order each sweep. A
    failing case prints the exact [prudence-repro check] command that
    reproduces it, including the active mutation and fault-plan
    override. *)

type mutation =
  | No_mutation
  | Skip_gp
      (** Run Prudence with [unsafe_skip_gp]: every deferred object is
          treated as immediately ripe. The shadow oracle must flag early
          reuse — this is how the checker proves its own teeth. *)
  | Drop_stall
      (** Disarm the RCU stall detector while scenarios pin grace
          periods. The missed-QS oracle must flag the unreported stall. *)
  | Lose_cb
      (** Drop every 64th [call_rcu] callback between the accounting and
          its per-CPU list. The callback-conservation oracle must flag
          the broken queued = invoked + in-list equation. *)
  | Free_latent_page
      (** Let the shrinker destroy pre-moved slabs whose objects are all
          still latent: a page returns to the buddy inside its grace
          period. The page-reuse oracle must flag it. *)
  | Skip_epoch_advance
      (** Run the EBR/DEBRA backend with [unsafe_no_scan]: its
          reclamation frontier advances without scanning reader
          announcements, so objects retired while a reader pins the
          epoch are recycled under it. The shadow oracle (judging by the
          truthful frontier) must flag early reuse. Only bites
          [Ebr_debra] environments. *)
  | Drop_retire_batch
      (** Run the Hyaline backend with [unsafe_drop_refs]: sealed
          retirement batches are handed to reclamation with their reader
          reference counts dropped. The shadow oracle must flag early
          reuse. Only bites [Hyaline_alloc] environments. *)

val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

val all_mutations : mutation list
(** Every bug-injecting mutation (excludes {!No_mutation}), for
    self-test drivers. *)

type oracles = {
  page_reuse : bool;  (** {!Shadow}'s page-level reuse check. *)
  early_reuse : bool;  (** {!Shadow}'s object-pool early-reuse check. *)
  missed_qs : bool;  (** {!Oracles}' unreported-stall check. *)
  cb_conservation : bool;  (** {!Oracles}' callback conservation. *)
}

val all_oracles : oracles
(** Everything on — the default. Individual switches exist so each
    [--mutate] self-test can prove its oracle necessary (mutant passes
    with the oracle off). *)

type config = {
  scenarios : Workloads.Chaos.scenario list;
  kinds : Workloads.Env.kind list;
  sweeps : int;  (** Shuffle seeds per (scenario, kind): [base..base+n-1]. *)
  base_shuffle_seed : int;
  seed : int;  (** Workload seed (kept fixed across the sweep). *)
  cpus : int;
  duration_ns : int;
  total_pages : int;
  mutation : mutation;
  oracles : oracles;
  plan : Faults.Plan.t option;
      (** Fault-plan override; [None] = the scenario's default plan. Set
          by the fuzzer (mutated plans) and the minimizer (shrunk plans);
          included in replay commands as [--plan='...']. *)
  bundle_dir : string option;
      (** When set, every failing case dumps a forensic bundle
          ([Obs.Bundle], NDJSON) into this directory — named
          [bundle-<scenario>-<alloc>-s<shuffle>[-<mutation>].ndjson] —
          and the verdict carries its path. Arms the tracer and the
          anatomy recorder (pure observation: the verdict is identical
          either way). [None] (default): no bundles. *)
}

val default_config : config
(** All scenarios, both allocators, 20 sweeps, 4 CPUs, 50 ms virtual,
    32 MiB, no mutation, all oracles, no plan override. *)

val stall_timeout_ns : config -> int
(** The armed stall-detector timeout: duration/8, so it fires inside
    short sweeps. *)

val stall_bound_ns : config -> int
(** The missed-QS oracle bound: twice {!stall_timeout_ns}, so on
    unmutated runs the detector always warns first. *)

type case = {
  scenario : Workloads.Chaos.scenario;
  kind : Workloads.Env.kind;
  shuffle_seed : int;
}

type verdict = {
  case : case;
  oracle_violations : Shadow.violation list;
  reader_violations : string list;
  stall_violations : string list;
  cb_violations : string list;
  audit_failures : string list;
  dropped_violations : int;
      (** Violations past the bounded logs (shadow + readers + oracles). *)
  oracle_events : int;  (** Probe events seen: sanity that hooks fired. *)
  events : int;
      (** Engine events executed: the deterministic counter the
          cross-scheduler fuzz differential compares between [Heap] and
          [Wheel] runs of the same case. *)
  updates : int;
  survived : bool;  (** Informational; OOM under faults is not a failure. *)
  replay : string;  (** Command line reproducing this exact case. *)
  features : int list;
      (** Coverage features observed (sorted); [[]] unless a coverage set
          was passed to {!run_case}. *)
  bundle : string option;
      (** Path of the forensic bundle written for this failing case;
          [None] when the case passed or [bundle_dir] was unset. *)
}

val ok : verdict -> bool
(** No violations from any oracle, no audit failures, nothing dropped. *)

val run_case : ?coverage:Coverage.t -> config -> case -> verdict
(** Run one case. With [coverage], a live tracer (small ring) plus the
    engine observer feed the set and the verdict carries the features;
    virtual-time behaviour is identical either way. *)

val plan_for : config -> case -> Faults.Plan.t
(** The fault plan the case will run: the override if set, else the
    scenario default — what the fuzzer mutates and the minimizer
    shrinks. *)

val replay_command : config -> case -> string

val cases : config -> case list
(** The full (scenario × kind × shuffle-seed) matrix, in run order. *)

val run : ?progress:(case -> unit) -> config -> verdict list
(** Run every case; [progress] is called before each. *)

val pp_verdict : Format.formatter -> verdict -> unit
val summary : Format.formatter -> verdict list -> unit
(** Per-(scenario, kind) pass/fail table plus details — including the
    replay command — for every failing case. *)
