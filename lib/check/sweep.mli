(** Schedule exploration: sweep the chaos-scenario matrix under perturbed
    same-instant event orderings, asserting the safety oracle and the
    invariant auditors on every run.

    One {e case} is (scenario, allocator, shuffle seed): the scenario's
    fault plan and workload run with {!Sim.Engine.Shuffle}[ seed] as the
    engine tie-break, so logically concurrent events execute in a
    different (but deterministic and replayable) order each sweep. A
    failing case prints the exact [prudence-repro check] command that
    reproduces it. *)

type mutation =
  | No_mutation
  | Skip_gp
      (** Run Prudence with [unsafe_skip_gp]: every deferred object is
          treated as immediately ripe. The oracle must flag early reuse —
          this is how the checker proves its own teeth. *)

val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

type config = {
  scenarios : Workloads.Chaos.scenario list;
  kinds : Workloads.Env.kind list;
  sweeps : int;  (** Shuffle seeds per (scenario, kind): [base..base+n-1]. *)
  base_shuffle_seed : int;
  seed : int;  (** Workload seed (kept fixed across the sweep). *)
  cpus : int;
  duration_ns : int;
  total_pages : int;
  mutation : mutation;
}

val default_config : config
(** All scenarios, both allocators, 20 sweeps, 4 CPUs, 50 ms virtual,
    32 MiB, no mutation. *)

type case = {
  scenario : Workloads.Chaos.scenario;
  kind : Workloads.Env.kind;
  shuffle_seed : int;
}

type verdict = {
  case : case;
  oracle_violations : Shadow.violation list;
  reader_violations : string list;
  audit_failures : string list;
  oracle_events : int;  (** Probe events seen: sanity that hooks fired. *)
  updates : int;
  survived : bool;  (** Informational; OOM under faults is not a failure. *)
  replay : string;  (** Command line reproducing this exact case. *)
}

val ok : verdict -> bool
(** No oracle violations, no reader-checker violations, no audit
    failures. *)

val run_case : config -> case -> verdict

val cases : config -> case list
(** The full (scenario × kind × shuffle-seed) matrix, in run order. *)

val run : ?progress:(case -> unit) -> config -> verdict list
(** Run every case; [progress] is called before each. *)

val pp_verdict : Format.formatter -> verdict -> unit
val summary : Format.formatter -> verdict list -> unit
(** Per-(scenario, kind) pass/fail table plus details — including the
    replay command — for every failing case. *)
