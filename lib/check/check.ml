(** Safety oracles and schedule exploration for the simulated allocators.

    Three layers of verification, all pure observation (installing them
    never changes allocator behaviour):

    - {!Shadow}: a shadow heap tracking every deferred object through
      [live -> deferred -> ripe -> reclaimed], flagging early reuse and
      use-after-reclaim;
    - {!Audit}: invariant auditors for the buddy allocator, slab
      accounting, and latent-cache/grace-period consistency, callable at
      any virtual time;
    - {!Sweep}: the chaos-scenario matrix under shuffled same-instant
      event orderings ({!Sim.Engine.Shuffle}), every run checked by the
      oracle and the auditors, failures reported with a replay command;
    - {!Differential}: one recorded trace replayed against both allocator
      stacks, requiring identical outcomes and verdicts. *)

module Shadow = Shadow
module Audit = Audit
module Sweep = Sweep
module Differential = Differential
