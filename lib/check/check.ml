(** Safety oracles and schedule exploration for the simulated allocators.

    Several layers of verification, all pure observation (installing
    them never changes allocator behaviour):

    - {!Shadow}: a shadow heap tracking every deferred object through
      [live -> deferred -> ripe -> reclaimed], flagging early reuse,
      use-after-reclaim, and premature page reuse;
    - {!Oracles}: kernel-bug pattern oracles beyond the shadow heap —
      missed-QS stalls and callback-list conservation;
    - {!Audit}: invariant auditors for the buddy allocator, slab
      accounting, and latent-cache/grace-period consistency, callable at
      any virtual time;
    - {!Coverage}: the cheap behavioural-coverage signal (oracle-state
      transitions, trace adjacencies, same-instant run lengths) the
      fuzzer steers by;
    - {!Sweep}: the chaos-scenario matrix under shuffled same-instant
      event orderings ({!Sim.Engine.Shuffle}), every run checked by the
      oracles and the auditors, failures reported with a replay command;
    - {!Fuzz}: coverage-guided mutation over (shuffle seed, fault plan,
      duration, CPUs), seeded and replayable;
    - {!Minimize}: witness shrinking — drop fault specs, binary-search
      duration, reduce CPUs — re-running the oracles each step;
    - {!Differential}: one recorded trace replayed against both allocator
      stacks, requiring identical outcomes and verdicts. *)

module Shadow = Shadow
module Oracles = Oracles
module Audit = Audit
module Coverage = Coverage
module Sweep = Sweep
module Fuzz = Fuzz
module Minimize = Minimize
module Differential = Differential
