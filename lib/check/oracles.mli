(** Kernel-bug pattern oracles beyond the shadow heap.

    Two invariants from the RCU bug-class catalogue, both pure
    observation (no events scheduled, no RNG draws — an observed run is
    event-for-event identical to an unobserved one):

    - {e missed-QS stall}: a grace period has been waiting on holdout
      CPUs for longer than a bound and no stall warning names it. With
      the detector armed below the bound this cannot happen, so any
      firing means quiescent-state bookkeeping or the detector itself is
      broken ([--mutate=drop-stall] injects this by disarming the
      detector under a scenario that pins grace periods).
    - {e callback conservation}: [queued = invoked + in-list] across the
      per-CPU callback lists, checked at each grace-period completion
      and at {!finalize}. A callback lost between the accounting and its
      list ([--mutate=lose-cb]) breaks the equation forever after.

    Violation logs keep the first few entries and count the rest. *)

type config = {
  missed_qs : bool;
  cb_conservation : bool;
  stall_bound_ns : int;
      (** Grace-period age past which an unreported stall is a violation.
          Must exceed the armed detector timeout (the sweep uses
          duration/4 vs. a duration/8 detector). *)
}

val default_config : duration_ns:int -> config
(** Both oracles on, stall bound = duration/4. *)

type stall_violation = {
  at_ns : int;
  gp_seq : int;
  age_ns : int;
  holdouts : int list;
}

type cb_violation = { at_ns : int; queued : int; invoked : int; in_list : int }

val describe_stall : stall_violation -> string
val describe_cb : cb_violation -> string

type t

val install : config -> Workloads.Env.t -> t
(** Hook the conservation check onto grace-period completion. The caller
    drives {!poll_stall} (typically from the engine observer, composed
    with the coverage feed) and {!finalize} at end of run. *)

val poll_stall : t -> unit
(** Cheap per-event poll: a few int compares unless a violation fires. *)

val finalize : t -> unit
(** End-of-run sweep: final stall poll + conservation check. *)

val stall_violations : t -> string list
val cb_violations : t -> string list
val dropped_violations : t -> int
