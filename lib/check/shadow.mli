(** Shadow-heap safety oracle.

    Tracks every slab object the allocator under test touches through the
    lifecycle

    {v live -> deferred(cookie) -> ripe -> reclaimed -> live -> ... v}

    by listening to the {!Slab.Frame.probe} hooks plus the reader access
    hook, and flags the failures procrastination-based reclamation must
    never exhibit:

    - {e early reuse}: a deferred object enters a free pool (object cache
      or slab freelist) before its grace period has completed — the memory
      is about to be handed to a new owner while readers may still hold
      the old incarnation;
    - {e use after reclaim}: a reader dereferences an object whose memory
      has already been returned to a free pool;
    - {e premature page reuse}: a slab page returns to the buddy allocator
      while an object on it is still inside its grace period — distinct
      from object-level early reuse because the object never re-enters a
      free pool; the whole page escapes.

    The oracle is pure observation: it never changes allocator behaviour,
    so a run with the oracle installed is byte-identical to one without.
    Violations are recorded (with virtual timestamps), never raised; the
    log keeps the first {!max_logged_violations} and counts the rest, so
    a badly mutated run cannot grow memory without bound during long fuzz
    sessions. *)

type state =
  | Live  (** Held by a mutator. *)
  | Deferred of int  (** Defer-freed, waiting for grace period [cookie]. *)
  | Ripe  (** Grace period complete; safe to reclaim, not yet pooled. *)
  | Reclaimed  (** In a free pool; memory may be reused any time. *)

val pp_state : Format.formatter -> state -> unit

type kind =
  | Early_reuse of { cookie : int; completed : int }
      (** Entered a free pool while waiting for grace period [cookie],
          but only [completed] grace periods had finished. *)
  | Use_after_reclaim of { cpu : int }
      (** A reader on [cpu] dereferenced the object after reclaim. *)
  | Page_reuse of { cookie : int; completed : int }
      (** Its page went back to the buddy allocator while the object
          still waited for grace period [cookie]. *)
  | Bad_transition of { from : state option; event : string }
      (** Lifecycle violation, e.g. double free or defer of a non-live
          object. [from] is [None] for an object never seen before. *)

type violation = { at_ns : int; oid : int; kind : kind }

val describe : violation -> string
val pp_violation : Format.formatter -> violation -> unit

type t

val install :
  ?page_reuse:bool -> ?early_reuse:bool -> ?coverage:Coverage.t ->
  Workloads.Env.t -> t
(** Wire the oracle into a built environment: sets the frame's probe
    record (under the [check.probe] prof span), registers a frontier-
    advance hook (under RCU: grace-period completion) that promotes
    deferred objects to ripe, and installs the reader access hook.
    Ripeness is judged against the environment's {i truthful} SMR view
    ([env.smr]) — an opaque token compare, so the oracle works for any
    backend and stays honest under frontier-corrupting mutations.
    [page_reuse] (default [true]) controls the page-level check and
    [early_reuse] (default [true]) the object-pool check — the off
    switches exist so each [--mutate] self-test can prove its oracle
    necessary. When [coverage] is given, every shadow-state transition
    feeds it. Install at most one oracle per environment (the hooks are
    overwritten, not chained). *)

val violations : t -> violation list
(** Oldest first; at most {!max_logged_violations} entries. *)

val violation_count : t -> int
(** Logged violations (bounded by {!max_logged_violations}). *)

val dropped_violations : t -> int
(** Violations recorded past the log bound and discarded. *)

val max_logged_violations : int

val state : t -> oid:int -> state option
(** Current shadow state of object [oid]; [None] if never observed. *)

val tracked : t -> int
(** Objects currently tracked. *)

val counts : t -> int * int * int * int
(** (live, deferred, ripe, reclaimed) tracked-object totals — cheap
    cross-check material for the auditors. *)

val events : t -> int
(** Probe events observed (sanity: > 0 after any workload). *)
