(** Shadow-heap safety oracle.

    Tracks every slab object the allocator under test touches through the
    lifecycle

    {v live -> deferred(cookie) -> ripe -> reclaimed -> live -> ... v}

    by listening to the {!Slab.Frame.probe} hooks plus the reader access
    hook, and flags the two failures procrastination-based reclamation
    must never exhibit:

    - {e early reuse}: a deferred object enters a free pool (object cache
      or slab freelist) before its grace period has completed — the memory
      is about to be handed to a new owner while readers may still hold
      the old incarnation;
    - {e use after reclaim}: a reader dereferences an object whose memory
      has already been returned to a free pool.

    The oracle is pure observation: it never changes allocator behaviour,
    so a run with the oracle installed is byte-identical to one without.
    Violations are recorded (with virtual timestamps), never raised. *)

type state =
  | Live  (** Held by a mutator. *)
  | Deferred of int  (** Defer-freed, waiting for grace period [cookie]. *)
  | Ripe  (** Grace period complete; safe to reclaim, not yet pooled. *)
  | Reclaimed  (** In a free pool; memory may be reused any time. *)

val pp_state : Format.formatter -> state -> unit

type kind =
  | Early_reuse of { cookie : int; completed : int }
      (** Entered a free pool while waiting for grace period [cookie],
          but only [completed] grace periods had finished. *)
  | Use_after_reclaim of { cpu : int }
      (** A reader on [cpu] dereferenced the object after reclaim. *)
  | Bad_transition of { from : state option; event : string }
      (** Lifecycle violation, e.g. double free or defer of a non-live
          object. [from] is [None] for an object never seen before. *)

type violation = { at_ns : int; oid : int; kind : kind }

val describe : violation -> string
val pp_violation : Format.formatter -> violation -> unit

type t

val install : Workloads.Env.t -> t
(** Wire the oracle into a built environment: sets the frame's probe
    record, registers a grace-period completion hook that promotes
    deferred objects to ripe, and installs the reader access hook.
    Install at most one oracle per environment (the hooks are
    overwritten, not chained). *)

val violations : t -> violation list
(** Oldest first. *)

val violation_count : t -> int

val state : t -> oid:int -> state option
(** Current shadow state of object [oid]; [None] if never observed. *)

val tracked : t -> int
(** Objects currently tracked. *)

val counts : t -> int * int * int * int
(** (live, deferred, ripe, reclaimed) tracked-object totals — cheap
    cross-check material for the auditors. *)

val events : t -> int
(** Probe events observed (sanity: > 0 after any workload). *)
