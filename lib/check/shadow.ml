type state = Live | Deferred of int | Ripe | Reclaimed

let pp_state ppf = function
  | Live -> Format.fprintf ppf "live"
  | Deferred c -> Format.fprintf ppf "deferred(gp %d)" c
  | Ripe -> Format.fprintf ppf "ripe"
  | Reclaimed -> Format.fprintf ppf "reclaimed"

type kind =
  | Early_reuse of { cookie : int; completed : int }
  | Use_after_reclaim of { cpu : int }
  | Bad_transition of { from : state option; event : string }

type violation = { at_ns : int; oid : int; kind : kind }

let describe v =
  let base = Printf.sprintf "[%d ns] object %d: " v.at_ns v.oid in
  base
  ^
  match v.kind with
  | Early_reuse { cookie; completed } ->
      Printf.sprintf
        "entered a free pool waiting for grace period %d, but only %d had \
         completed (early reuse)"
        cookie completed
  | Use_after_reclaim { cpu } ->
      Printf.sprintf "reader on cpu%d dereferenced it after reclaim" cpu
  | Bad_transition { from; event } ->
      let from_s =
        match from with
        | None -> "never-seen"
        | Some s -> Format.asprintf "%a" pp_state s
      in
      Printf.sprintf "%s while %s (bad lifecycle transition)" event from_s

let pp_violation ppf v = Format.pp_print_string ppf (describe v)

type t = {
  machine : Sim.Machine.t;
  rcu : Rcu.t;
  states : (int, state) Hashtbl.t;
  mutable violation_log : violation list; (* reversed *)
  mutable events : int;
}

let now t = Sim.Engine.now (Sim.Machine.engine t.machine)

let flag t ~oid kind =
  t.violation_log <- { at_ns = now t; oid; kind } :: t.violation_log

let set t oid st = Hashtbl.replace t.states oid st

let state t ~oid = Hashtbl.find_opt t.states oid

(* A mutator received the object. Legal from: fresh (grow carves objects
   straight onto the slab freelist, no pool probe), a free pool, or ripe
   (merge pools it first, but be tolerant of direct handoff). *)
let on_alloc t ~oid =
  t.events <- t.events + 1;
  (match state t ~oid with
  | Some (Live | Deferred _) as from ->
      flag t ~oid (Bad_transition { from; event = "allocated" })
  | Some (Ripe | Reclaimed) | None -> ());
  set t oid Live

let on_free t ~oid =
  t.events <- t.events + 1;
  match state t ~oid with
  | Some Live -> () (* pool entry (on_pool) performs the state change *)
  | (Some (Deferred _ | Ripe | Reclaimed) | None) as from ->
      flag t ~oid (Bad_transition { from; event = "freed" })

let on_defer t ~oid ~cookie =
  t.events <- t.events + 1;
  (match state t ~oid with
  | Some Live -> ()
  | (Some (Deferred _ | Ripe | Reclaimed) | None) as from ->
      flag t ~oid (Bad_transition { from; event = "defer-freed" }));
  set t oid (Deferred cookie)

(* The reuse boundary: the object is entering an object cache or slab
   freelist. If it is still waiting for a grace period, consult the live
   RCU state (not the promotion hook, whose registration order vs. other
   GP hooks must not matter): pooling before completion is THE bug class
   this oracle exists for. *)
let on_pool t ~oid ~cookie:_ =
  t.events <- t.events + 1;
  (* Pool-to-pool moves (refill: slab freelist -> object cache; flush:
     the reverse) re-enter here from [Reclaimed]; that is legal. *)
  (match state t ~oid with
  | Some (Deferred c) when not (Rcu.poll t.rcu c) ->
      flag t ~oid (Early_reuse { cookie = c; completed = Rcu.completed t.rcu })
  | Some (Live | Deferred _ | Ripe | Reclaimed) | None -> ());
  set t oid Reclaimed

let on_reader_access t ~cpu ~oid =
  t.events <- t.events + 1;
  match state t ~oid with
  | Some Reclaimed -> flag t ~oid (Use_after_reclaim { cpu })
  | Some (Live | Deferred _ | Ripe) | None -> ()

let on_gp_complete t completed =
  (* Promote every deferred object whose grace period just finished.
     Collect first: replacing bindings mid-iteration is unspecified. *)
  let ripe = ref [] in
  Hashtbl.iter
    (fun oid st ->
      match st with
      | Deferred c when c <= completed -> ripe := oid :: !ripe
      | _ -> ())
    t.states;
  List.iter (fun oid -> set t oid Ripe) !ripe

let install (env : Workloads.Env.t) =
  let t =
    {
      machine = env.Workloads.Env.machine;
      rcu = env.Workloads.Env.rcu;
      states = Hashtbl.create 4096;
      violation_log = [];
      events = 0;
    }
  in
  env.Workloads.Env.fenv.Slab.Frame.probe <-
    Some
      {
        Slab.Frame.on_alloc = (fun ~oid -> on_alloc t ~oid);
        on_free = (fun ~oid -> on_free t ~oid);
        on_defer = (fun ~oid ~cookie -> on_defer t ~oid ~cookie);
        on_pool = (fun ~oid ~cookie -> on_pool t ~oid ~cookie);
      };
  Rcu.on_gp_complete t.rcu (fun completed -> on_gp_complete t completed);
  Rcu.Readers.set_access_hook env.Workloads.Env.readers
    (Some (fun ~cpu ~oid -> on_reader_access t ~cpu ~oid));
  t

let violations t = List.rev t.violation_log
let violation_count t = List.length t.violation_log
let tracked t = Hashtbl.length t.states
let events t = t.events

let counts t =
  let live = ref 0 and def = ref 0 and ripe = ref 0 and rec_ = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      match st with
      | Live -> incr live
      | Deferred _ -> incr def
      | Ripe -> incr ripe
      | Reclaimed -> incr rec_)
    t.states;
  (!live, !def, !ripe, !rec_)
