type state = Live | Deferred of int | Ripe | Reclaimed

let pp_state ppf = function
  | Live -> Format.fprintf ppf "live"
  | Deferred c -> Format.fprintf ppf "deferred(gp %d)" c
  | Ripe -> Format.fprintf ppf "ripe"
  | Reclaimed -> Format.fprintf ppf "reclaimed"

(* Coverage tags; 5 = page released while tracked. *)
let tag = function
  | None -> 0
  | Some Live -> 1
  | Some (Deferred _) -> 2
  | Some Ripe -> 3
  | Some Reclaimed -> 4

let tag_gone = 5

type kind =
  | Early_reuse of { cookie : int; completed : int }
  | Use_after_reclaim of { cpu : int }
  | Page_reuse of { cookie : int; completed : int }
  | Bad_transition of { from : state option; event : string }

type violation = { at_ns : int; oid : int; kind : kind }

let describe v =
  let base = Printf.sprintf "[%d ns] object %d: " v.at_ns v.oid in
  base
  ^
  match v.kind with
  | Early_reuse { cookie; completed } ->
      Printf.sprintf
        "entered a free pool waiting for grace period %d, but only %d had \
         completed (early reuse)"
        cookie completed
  | Use_after_reclaim { cpu } ->
      Printf.sprintf "reader on cpu%d dereferenced it after reclaim" cpu
  | Page_reuse { cookie; completed } ->
      Printf.sprintf
        "its page returned to the buddy allocator while it still waited \
         for grace period %d (only %d completed): premature page reuse"
        cookie completed
  | Bad_transition { from; event } ->
      let from_s =
        match from with
        | None -> "never-seen"
        | Some s -> Format.asprintf "%a" pp_state s
      in
      Printf.sprintf "%s while %s (bad lifecycle transition)" event from_s

let pp_violation ppf v = Format.pp_print_string ppf (describe v)

(* Bound the log so a badly mutated run inside a long fuzz session cannot
   grow memory without bound: first K violations kept, the rest counted. *)
let max_logged_violations = 64

type t = {
  machine : Sim.Machine.t;
  smr : Slab.Smr.t;  (* the truthful reclamation view, never the mutated one *)
  prof : Prof.t;
  page_reuse : bool;
  early_reuse : bool;
  coverage : Coverage.t option;
  states : (int, state) Hashtbl.t;
  mutable violation_log : violation list; (* reversed; first K kept *)
  mutable logged : int;
  mutable dropped : int;
  mutable events : int;
}

let now t = Sim.Engine.now (Sim.Machine.engine t.machine)

let flag t ~oid kind =
  if t.logged < max_logged_violations then begin
    t.violation_log <- { at_ns = now t; oid; kind } :: t.violation_log;
    t.logged <- t.logged + 1
  end
  else t.dropped <- t.dropped + 1

let state t ~oid = Hashtbl.find_opt t.states oid

let set t oid st =
  (match t.coverage with
  | Some cov ->
      Coverage.note_transition cov
        ~from_tag:(tag (state t ~oid))
        ~to_tag:(tag (Some st))
  | None -> ());
  Hashtbl.replace t.states oid st

(* A mutator received the object. Legal from: fresh (grow carves objects
   straight onto the slab freelist, no pool probe), a free pool, or ripe
   (merge pools it first, but be tolerant of direct handoff). *)
let on_alloc t ~oid =
  t.events <- t.events + 1;
  (match state t ~oid with
  | Some (Live | Deferred _) as from ->
      flag t ~oid (Bad_transition { from; event = "allocated" })
  | Some (Ripe | Reclaimed) | None -> ());
  set t oid Live

let on_free t ~oid =
  t.events <- t.events + 1;
  match state t ~oid with
  | Some Live -> () (* pool entry (on_pool) performs the state change *)
  | (Some (Deferred _ | Ripe | Reclaimed) | None) as from ->
      flag t ~oid (Bad_transition { from; event = "freed" })

let on_defer t ~oid ~cookie =
  t.events <- t.events + 1;
  (match state t ~oid with
  | Some Live -> ()
  | (Some (Deferred _ | Ripe | Reclaimed) | None) as from ->
      flag t ~oid (Bad_transition { from; event = "defer-freed" }));
  set t oid (Deferred cookie)

(* The reuse boundary: the object is entering an object cache or slab
   freelist. If it is still waiting for a grace period, consult the live
   RCU state (not the promotion hook, whose registration order vs. other
   GP hooks must not matter): pooling before completion is THE bug class
   this oracle exists for. *)
let on_pool t ~oid ~cookie:_ =
  t.events <- t.events + 1;
  (* Pool-to-pool moves (refill: slab freelist -> object cache; flush:
     the reverse) re-enter here from [Reclaimed]; that is legal. *)
  (match state t ~oid with
  | Some (Deferred c) when t.early_reuse && not (Slab.Smr.ripe t.smr c) ->
      flag t ~oid
        (Early_reuse { cookie = c; completed = t.smr.Slab.Smr.ripe_upto () })
  | Some (Live | Deferred _ | Ripe | Reclaimed) | None -> ());
  set t oid Reclaimed

(* The page-level reuse boundary: the slab's page is going back to the
   buddy allocator. Any object on it still inside its grace period means
   the page can be re-carved and handed out while readers may still hold
   pointers into it — distinct from (and invisible to) the object-level
   early-reuse check, because the object never re-enters a free pool. *)
let on_page_release t ~oids =
  List.iter
    (fun (oid, cookie) ->
      t.events <- t.events + 1;
      (if t.page_reuse then
         match state t ~oid with
         | Some (Deferred c) when not (Slab.Smr.ripe t.smr c) ->
             flag t ~oid
               (Page_reuse
                  { cookie = c; completed = t.smr.Slab.Smr.ripe_upto () })
         | Some (Live | Deferred _ | Ripe | Reclaimed) | None ->
             (* Deferred-and-ripe (grace period done, harvest pending) is
                safe; cross-check the frame's stamp for never-seen oids. *)
             if (not (Slab.Smr.ripe t.smr cookie)) && state t ~oid = None then
               flag t ~oid
                 (Page_reuse
                    { cookie; completed = t.smr.Slab.Smr.ripe_upto () }));
      (match t.coverage with
      | Some cov ->
          Coverage.note_transition cov
            ~from_tag:(tag (state t ~oid))
            ~to_tag:tag_gone
      | None -> ());
      (* The page is gone; the oid will never be seen again. *)
      Hashtbl.remove t.states oid)
    oids

let on_reader_access t ~cpu ~oid =
  t.events <- t.events + 1;
  match state t ~oid with
  | Some Reclaimed -> flag t ~oid (Use_after_reclaim { cpu })
  | Some (Live | Deferred _ | Ripe) | None -> ()

let on_gp_complete t completed =
  (* Promote every deferred object whose reclamation token just ripened.
     Collect first: replacing bindings mid-iteration is unspecified. *)
  let ripe = ref [] in
  Hashtbl.iter
    (fun oid st ->
      match st with
      | Deferred c when c <= completed -> ripe := oid :: !ripe
      | _ -> ())
    t.states;
  List.iter (fun oid -> set t oid Ripe) !ripe

let install ?(page_reuse = true) ?(early_reuse = true) ?coverage
    (env : Workloads.Env.t) =
  let t =
    {
      machine = env.Workloads.Env.machine;
      smr = env.Workloads.Env.smr;
      prof = env.Workloads.Env.prof;
      page_reuse;
      early_reuse;
      coverage;
      states = Hashtbl.create 4096;
      violation_log = [];
      logged = 0;
      dropped = 0;
      events = 0;
    }
  in
  (* Probe handlers run under the [check.probe] span so oracle overhead
     shows up in the prof tables next to the paths it rides on; on
     [Prof.null] each enter/exit is one load and branch. *)
  let prof = t.prof in
  env.Workloads.Env.fenv.Slab.Frame.probe <-
    Some
      {
        Slab.Frame.on_alloc =
          (fun ~oid ->
            Prof.enter prof ~cpu:(-1) Prof.Span.Check_probe;
            on_alloc t ~oid;
            Prof.exit prof Prof.Span.Check_probe);
        on_free =
          (fun ~oid ->
            Prof.enter prof ~cpu:(-1) Prof.Span.Check_probe;
            on_free t ~oid;
            Prof.exit prof Prof.Span.Check_probe);
        on_defer =
          (fun ~oid ~cookie ->
            Prof.enter prof ~cpu:(-1) Prof.Span.Check_probe;
            on_defer t ~oid ~cookie;
            Prof.exit prof Prof.Span.Check_probe);
        on_pool =
          (fun ~oid ~cookie ->
            Prof.enter prof ~cpu:(-1) Prof.Span.Check_probe;
            on_pool t ~oid ~cookie;
            Prof.exit prof Prof.Span.Check_probe);
        on_page_release =
          (fun ~oids ->
            Prof.enter prof ~cpu:(-1) Prof.Span.Check_probe;
            on_page_release t ~oids;
            Prof.exit prof Prof.Span.Check_probe);
      };
  t.smr.Slab.Smr.on_ripen (fun frontier -> on_gp_complete t frontier);
  Rcu.Readers.set_access_hook env.Workloads.Env.readers
    (Some (fun ~cpu ~oid -> on_reader_access t ~cpu ~oid));
  t

let violations t = List.rev t.violation_log
let violation_count t = t.logged
let dropped_violations t = t.dropped
let tracked t = Hashtbl.length t.states
let events t = t.events

let counts t =
  let live = ref 0 and def = ref 0 and ripe = ref 0 and rec_ = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      match st with
      | Live -> incr live
      | Deferred _ -> incr def
      | Ripe -> incr ripe
      | Reclaimed -> incr rec_)
    t.states;
  (!live, !def, !ripe, !rec_)
