(** Witness minimization.

    A failing case from the sweep or the fuzzer is rarely minimal: the
    fault plan carries specs that don't matter, the run is longer than
    the bug needs, and the machine is wider. The minimizer shrinks all
    three — greedy spec dropping, binary search on duration, CPU-count
    reduction — re-running the full oracle stack after every candidate
    and keeping a shrink only if the case {e still fails}. The result is
    the smallest witness found plus the one-line
    [prudence-repro check --plan='...'] command that reproduces it. *)

type step = {
  action : string;  (** ["drop-spec"], ["shrink-duration"], ["reduce-cpus"]. *)
  candidate : string;  (** What was tried (spec name, duration, cpus). *)
  kept : bool;  (** [true] when the shrunk candidate still fails. *)
}

type result = {
  cfg : Sweep.config;  (** Minimal failing configuration (plan pinned). *)
  case : Sweep.case;
  verdict : Sweep.verdict;  (** From the final confirmation run. *)
  replay : string;  (** One-liner reproducing the minimal witness. *)
  runs : int;  (** Oracle runs spent, confirmations included. *)
  steps : step list;  (** Every shrink attempt, in order. *)
}

exception Not_a_witness
(** The starting case (or the final confirmation) did not fail. *)

val run :
  ?progress:(step -> unit) -> Sweep.config -> Sweep.case -> result
(** Minimize. The scenario's default plan is first materialized into
    [cfg.plan] so the replay is self-contained; duration shrinks to
    millisecond granularity; CPU reduction skips counts that would
    orphan a plan spec's target. Raises {!Not_a_witness} if the input
    doesn't fail. *)
