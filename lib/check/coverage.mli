(** Coverage signal for guided schedule search.

    A coverage set is a hash-set of int-encoded {e features} from three
    observation families:

    - {e shadow transitions}: (from, to) pairs of shadow-heap object
      states, fed by {!Shadow} as objects move through
      [live -> deferred -> ripe -> reclaimed];
    - {e trace adjacency}: per-CPU consecutive trace-event-kind pairs,
      fed from the tracer's live sink — which fault/GP/allocator events
      ran back-to-back on a CPU;
    - {e schedule shape}: log2-bucketed lengths of same-instant event
      runs from the engine observer — how the shuffled tie-break
      serialized logically concurrent events.

    A schedule that produces a feature no earlier run produced is
    interesting: the fuzzer keeps its input in the corpus. All feeds are
    pure observation (no events scheduled, no RNG draws), so arming
    coverage never changes a run. *)

type t

val create : unit -> t

val note_transition : t -> from_tag:int -> to_tag:int -> unit
(** Record a shadow-state transition; tags are small ints (< 8). *)

val note_trace : t -> cpu:int -> kind_index:int -> unit
(** Record a trace event (from {!Trace.set_sink}); [cpu] may be [-1]. *)

val note_event : t -> time:int -> unit
(** Record an executed engine event (from {!Sim.Engine.set_observer}). *)

val finish : t -> unit
(** Flush the trailing same-instant run; call once at end of run. *)

val size : t -> int
val features : t -> int list
(** All observed features, sorted ascending (stable output for NDJSON). *)

val absorb : into:t -> t -> int
(** [absorb ~into run] merges [run]'s features into the global set and
    returns how many were new — the fuzzer's interestingness score. *)
