(* [err] takes the accumulator explicitly so each call site instantiates
   the format type fresh (a closure would be monomorphized by its first
   use). *)
let err errs fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt

(* Free and allocated blocks must tile [0, total_pages) with naturally
   aligned blocks, and the recounted page totals must match the counters
   the allocator maintains incrementally (split/merge conservation). *)
let buddy b =
  let errs = ref [] in
  let total = Mem.Buddy.total_pages b in
  let tag_free (p, o) = (p, o, true) and tag_used (p, o) = (p, o, false) in
  let blocks =
    List.sort compare
      (List.map tag_free (Mem.Buddy.free_blocks b)
      @ List.map tag_used (Mem.Buddy.allocated_blocks b))
  in
  let expected = ref 0 in
  let free_sum = ref 0 and used_sum = ref 0 in
  List.iter
    (fun (page, order, is_free) ->
      let size = 1 lsl order in
      let where =
        Printf.sprintf "%s block page %d order %d"
          (if is_free then "free" else "allocated")
          page order
      in
      if page land (size - 1) <> 0 then
        err errs "buddy: %s is not naturally aligned" where;
      if page < !expected then
        err errs "buddy: %s overlaps the previous block (expected page %d)" where
          !expected
      else if page > !expected then
        err errs "buddy: pages %d..%d covered by no block (next is %s)" !expected
          (page - 1) where;
      expected := max !expected (page + size);
      if is_free then free_sum := !free_sum + size
      else used_sum := !used_sum + size)
    blocks;
  if !expected <> total then
    err errs "buddy: coverage ends at page %d, but the arena has %d pages"
      !expected total;
  if !free_sum <> Mem.Buddy.free_pages b then
    err errs "buddy: free lists hold %d pages but the counter says %d" !free_sum
      (Mem.Buddy.free_pages b);
  if !used_sum <> Mem.Buddy.used_pages b then
    err errs "buddy: allocated blocks hold %d pages but the counter says %d"
      !used_sum (Mem.Buddy.used_pages b);
  List.rev !errs

let slab ~rcu (cache : Slab.Frame.cache) =
  let errs = ref [] in
  let open Slab.Frame in
  let name = cache.name in
  (* Walk every slab through the node lists it must live on. *)
  let n_slabs = ref 0 and in_flight_sum = ref 0 and slab_latent_sum = ref 0 in
  Array.iter
    (fun (node : node) ->
      let walk tag lst =
        Sim.Dlist.iter
          (fun (s : slab) ->
            incr n_slabs;
            in_flight_sum := !in_flight_sum + s.in_flight;
            slab_latent_sum := !slab_latent_sum + s.latent_n;
            let free_rc = List.length s.free_objs
            and latent_rc = Slab.Latq.length s.latent_objs in
            if free_rc <> s.free_n then
              err errs "%s: slab %d freelist holds %d objects but free_n = %d"
                name s.sid free_rc s.free_n;
            if latent_rc <> s.latent_n then
              err errs "%s: slab %d latent list holds %d objects but latent_n = %d"
                name s.sid latent_rc s.latent_n;
            if s.free_n + s.latent_n + s.in_flight <> s.capacity then
              err errs
                "%s: slab %d accounting leak: free %d + latent %d + \
                 in-flight %d <> capacity %d"
                name s.sid s.free_n s.latent_n s.in_flight s.capacity;
            if s.on_list <> tag then
              err errs "%s: slab %d tagged %a but found on the %a list" name s.sid
                pp_list_id s.on_list pp_list_id tag;
            List.iter
              (fun (o : objekt) ->
                if o.parent != s then
                  err errs "%s: object %d on slab %d's freelist has a different \
                       parent" name o.oid s.sid;
                if o.ostate <> Free_in_slab then
                  err errs "%s: object %d on slab %d's freelist is in state %a"
                    name o.oid s.sid pp_ostate o.ostate)
              s.free_objs;
            Slab.Latq.iter
              (fun (o : objekt) ->
                if o.ostate <> In_latent_slab then
                  err errs "%s: object %d on slab %d's latent list is in state %a"
                    name o.oid s.sid pp_ostate o.ostate)
              s.latent_objs)
          lst
      in
      walk L_full node.full;
      walk L_partial node.partial;
      walk L_free node.free_slabs)
    cache.nodes;
  if !n_slabs <> cache.total_slabs then
    err errs "%s: node lists hold %d slabs but total_slabs = %d" name !n_slabs
      cache.total_slabs;
  (* Per-CPU caches. *)
  let ocache_sum = ref 0 and latent_cache_sum = ref 0 in
  Array.iter
    (fun (pc : pcpu) ->
      let rc = List.length pc.ocache in
      if rc <> pc.ocache_n then
        err errs "%s: cpu%d object cache holds %d objects but ocache_n = %d" name
          pc.cpu.Sim.Machine.id rc pc.ocache_n;
      ocache_sum := !ocache_sum + pc.ocache_n;
      latent_cache_sum := !latent_cache_sum + Slab.Latq.Fifo.length pc.latent;
      List.iter
        (fun (o : objekt) ->
          if o.ostate <> In_object_cache then
            err errs "%s: object %d in cpu%d's object cache is in state %a" name
              o.oid pc.cpu.Sim.Machine.id pp_ostate o.ostate)
        pc.ocache;
      Slab.Latq.Fifo.iter
        (fun (o : objekt) ->
          if o.ostate <> In_latent_cache then
            err errs "%s: object %d in cpu%d's latent cache is in state %a" name
              o.oid pc.cpu.Sim.Machine.id pp_ostate o.ostate)
        pc.latent)
    cache.pcpus;
  (* In-flight objects are: held by mutators, in object caches, in latent
     caches — plus (baseline only) defer-freed objects whose [call_rcu]
     callback has not released them yet. That surplus is the extended-
     lifetime window and every such object has a pending callback, so the
     RCU backlog bounds it. *)
  let expected_in_flight =
    cache.live_objs + !ocache_sum + !latent_cache_sum
  in
  let surplus = !in_flight_sum - expected_in_flight in
  if surplus < 0 then
    err errs
      "%s: slabs report %d in-flight objects, fewer than live %d + ocache \
       %d + latent-cache %d = %d"
      name !in_flight_sum cache.live_objs !ocache_sum !latent_cache_sum
      expected_in_flight;
  if surplus > Rcu.pending_callbacks rcu then
    err errs
      "%s: %d in-flight objects are neither live nor cached, but only %d \
       RCU callbacks are pending — objects leaked out of accounting"
      name surplus
      (Rcu.pending_callbacks rcu);
  if cache.latent_count <> !slab_latent_sum + !latent_cache_sum then
    err errs
      "%s: latent_count = %d but latent slabs hold %d + latent caches %d"
      name cache.latent_count !slab_latent_sum !latent_cache_sum;
  (* Statistics identities. *)
  let s = Slab.Slab_stats.snapshot cache.stats in
  if s.Slab.Slab_stats.hits + s.Slab.Slab_stats.misses
     <> s.Slab.Slab_stats.allocs
  then
    err errs "%s: stats: hits %d + misses %d <> allocs %d" name
      s.Slab.Slab_stats.hits s.Slab.Slab_stats.misses
      s.Slab.Slab_stats.allocs;
  if s.Slab.Slab_stats.grows - s.Slab.Slab_stats.shrinks
     <> cache.total_slabs
  then
    err errs "%s: stats: grows %d - shrinks %d <> total_slabs %d" name
      s.Slab.Slab_stats.grows s.Slab.Slab_stats.shrinks cache.total_slabs;
  List.rev !errs

(* Every deferred object's cookie must be a reclamation token the SMR
   state could actually have issued: positive, and no newer than the
   token a defer right now would receive (tokens are issued by
   [smr.defer] and that sequence is monotone). *)
let latent ~smr (cache : Slab.Frame.cache) =
  let errs = ref [] in
  let open Slab.Frame in
  let horizon = smr.Slab.Smr.snapshot () in
  let check_cookie where (o : objekt) =
    if o.gp_cookie <= 0 then
      err errs "%s: deferred object %d in %s has cookie %d (never stamped?)"
        cache.name o.oid where o.gp_cookie
    else if o.gp_cookie > horizon then
      err errs
        "%s: deferred object %d in %s waits for token %d, newer than any \
         the %s state could have issued (snapshot %d)"
        cache.name o.oid where o.gp_cookie smr.Slab.Smr.scheme horizon
  in
  Array.iter
    (fun (pc : pcpu) ->
      Slab.Latq.Fifo.iter (check_cookie "a latent cache") pc.latent)
    cache.pcpus;
  Array.iter
    (fun (node : node) ->
      let walk lst =
        Sim.Dlist.iter
          (fun (s : slab) ->
            Slab.Latq.iter (check_cookie "a latent slab") s.latent_objs)
          lst
      in
      walk node.full;
      walk node.partial;
      walk node.free_slabs)
    cache.nodes;
  List.rev !errs

let env (e : Workloads.Env.t) =
  let acc = ref (buddy e.Workloads.Env.buddy) in
  e.Workloads.Env.backend.Slab.Backend.iter_caches (fun c ->
      acc :=
        !acc
        @ slab ~rcu:e.Workloads.Env.rcu c
        @ latent ~smr:e.Workloads.Env.smr c);
  !acc
