type block = { page : int; order : int }

exception Out_of_memory

(* Resizable LIFO of candidate start-pages, one per order. Entries are
   pushed on every insertion into the free table and never removed except
   by [pop]; pages the coalescer has since consumed are left behind as
   stale entries and skipped lazily at pop time (each removal creates at
   most one stale entry, so the debt is bounded by the removal count). *)
module Pstack = struct
  type s = { mutable a : int array; mutable n : int }

  let make () = { a = Array.make 16 0; n = 0 }

  let push s x =
    if s.n = Array.length s.a then begin
      let b = Array.make (2 * s.n) 0 in
      Array.blit s.a 0 b 0 s.n;
      s.a <- b
    end;
    s.a.(s.n) <- x;
    s.n <- s.n + 1

  (* -1 when empty (start-pages are non-negative). *)
  let pop s =
    if s.n = 0 then -1
    else begin
      s.n <- s.n - 1;
      s.a.(s.n)
    end
end

type t = {
  page_size : int;
  total_pages : int;
  max_order : int;
  (* free.(o) maps start-page -> unit for each free block of order o *)
  free : (int, unit) Hashtbl.t array;
  (* Per-order pick stacks over [free]: O(1) victim selection instead of
     iterating a hash table. May hold stale pages; [free] is
     authoritative. *)
  stacks : Pstack.s array;
  (* allocated start-page -> order, to validate frees *)
  allocated : (int, int) Hashtbl.t;
  mutable used : int;
  mutable peak_used : int;
  mutable allocs : int;
  mutable frees : int;
  mutable failures : int;
  (* Fault injection: when set, consulted before every alloc; returning
     true refuses the request. Counted separately from genuine failures. *)
  mutable fail_hook : (order:int -> bool) option;
  mutable injected_failures : int;
  mutable prof : Prof.t;
}

let create ?(page_size = 4096) ?(max_order = 10) ~total_pages () =
  if total_pages <= 0 then invalid_arg "Buddy.create: total_pages";
  if max_order < 0 || max_order > 30 then invalid_arg "Buddy.create: max_order";
  let t =
    {
      page_size;
      total_pages;
      max_order;
      free = Array.init (max_order + 1) (fun _ -> Hashtbl.create 64);
      stacks = Array.init (max_order + 1) (fun _ -> Pstack.make ());
      allocated = Hashtbl.create 256;
      used = 0;
      peak_used = 0;
      allocs = 0;
      frees = 0;
      failures = 0;
      fail_hook = None;
      injected_failures = 0;
      prof = Prof.null;
    }
  in
  (* Seed the free lists: greedily carve the page range into the largest
     aligned power-of-two blocks that fit. *)
  let page = ref 0 in
  while !page < total_pages do
    let order = ref max_order in
    while
      !order > 0
      && (!page land ((1 lsl !order) - 1) <> 0
         || !page + (1 lsl !order) > total_pages)
    do
      decr order
    done;
    Hashtbl.replace t.free.(!order) !page ();
    Pstack.push t.stacks.(!order) !page;
    page := !page + (1 lsl !order)
  done;
  t

(* Every insertion into [free] goes through here so the pick stack stays a
   superset of the table. *)
let insert_free t order page =
  Hashtbl.replace t.free.(order) page ();
  Pstack.push t.stacks.(order) page

let page_size t = t.page_size
let max_order t = t.max_order
let total_pages t = t.total_pages
let used_pages t = t.used
let free_pages t = t.total_pages - t.used
let used_bytes t = t.used * t.page_size
let peak_used_pages t = t.peak_used
let alloc_count t = t.allocs
let free_count t = t.frees
let failed_allocs t = t.failures
let injected_failures t = t.injected_failures
let set_fail_hook t hook = t.fail_hook <- hook
let set_prof t prof = t.prof <- prof

let free_blocks t =
  let acc = ref [] in
  Array.iteri
    (fun order tbl ->
      Hashtbl.iter (fun page () -> acc := (page, order) :: !acc) tbl)
    t.free;
  List.sort compare !acc

let allocated_blocks t =
  List.sort compare
    (Hashtbl.fold (fun page order acc -> (page, order) :: acc) t.allocated [])

let would_satisfy t ~order =
  if order < 0 || order > t.max_order then
    invalid_arg "Buddy.would_satisfy: order out of range";
  let rec scan o =
    o <= t.max_order && (Hashtbl.length t.free.(o) > 0 || scan (o + 1))
  in
  scan order

let largest_free_order t =
  let rec scan o = if o < 0 then -1 else if Hashtbl.length t.free.(o) > 0 then o else scan (o - 1) in
  scan t.max_order

let take_any t o =
  let tbl = t.free.(o) in
  let st = t.stacks.(o) in
  let rec go () =
    let page = Pstack.pop st in
    if page < 0 then None
    else if Hashtbl.mem tbl page then begin
      Hashtbl.remove tbl page;
      Some page
    end
    else go ()
  in
  go ()

let alloc_inner t ~order =
  match t.fail_hook with
  | Some hook when hook ~order ->
      t.injected_failures <- t.injected_failures + 1;
      None
  | _ ->
  (* Find the smallest order >= requested with a free block. *)
  let rec find o =
    if o > t.max_order then None
    else
      match take_any t o with
      | Some page -> Some (page, o)
      | None -> find (o + 1)
  in
  match find order with
  | None ->
      t.failures <- t.failures + 1;
      None
  | Some (page, found_order) ->
      (* Split down to the requested order, freeing the upper halves. *)
      let o = ref found_order in
      while !o > order do
        decr o;
        insert_free t !o (page + (1 lsl !o))
      done;
      Hashtbl.replace t.allocated page order;
      t.used <- t.used + (1 lsl order);
      if t.used > t.peak_used then t.peak_used <- t.used;
      t.allocs <- t.allocs + 1;
      Some { page; order }

let alloc t ~order =
  if order < 0 || order > t.max_order then
    invalid_arg "Buddy.alloc: order out of range";
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Buddy_alloc;
  let r = alloc_inner t ~order in
  Prof.exit t.prof Prof.Span.Buddy_alloc;
  r

let alloc_exn t ~order =
  match alloc t ~order with Some b -> b | None -> raise Out_of_memory

let free t { page; order } =
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Buddy_free;
  (match Hashtbl.find_opt t.allocated page with
  | Some o when o = order -> Hashtbl.remove t.allocated page
  | Some o ->
      invalid_arg
        (Printf.sprintf "Buddy.free: block at page %d has order %d, not %d"
           page o order)
  | None ->
      invalid_arg
        (Printf.sprintf "Buddy.free: page %d is not an allocated block" page));
  t.used <- t.used - (1 lsl order);
  t.frees <- t.frees + 1;
  (* Coalesce with the buddy while it is free. *)
  let rec coalesce page order =
    if order >= t.max_order then insert_free t order page
    else begin
      let buddy = page lxor (1 lsl order) in
      if buddy + (1 lsl order) <= t.total_pages && Hashtbl.mem t.free.(order) buddy
      then begin
        Hashtbl.remove t.free.(order) buddy;
        coalesce (min page buddy) (order + 1)
      end
      else insert_free t order page
    end
  in
  coalesce page order;
  Prof.exit t.prof Prof.Span.Buddy_free

let check_invariants t =
  let free_total = ref 0 in
  Array.iteri
    (fun order tbl ->
      Hashtbl.iter
        (fun page () ->
          assert (page land ((1 lsl order) - 1) = 0);
          assert (page + (1 lsl order) <= t.total_pages);
          free_total := !free_total + (1 lsl order))
        tbl)
    t.free;
  let alloc_total =
    Hashtbl.fold (fun _ order acc -> acc + (1 lsl order)) t.allocated 0
  in
  assert (alloc_total = t.used);
  assert (!free_total + t.used = t.total_pages)
