(** Binary buddy page allocator.

    Stands in for the Linux page allocator underneath the slab layer: slab
    caches grow by allocating [2^order] contiguous pages and shrink by
    returning them. The allocator tracks used/free pages so the simulation
    can sample "total used memory" (paper Fig. 3) and detect out-of-memory.

    Pages are identified by index; no real memory is allocated. Double frees
    and frees of never-allocated blocks are detected and raise. *)

type t

type block = private { page : int; order : int }
(** An allocated run of [2^order] contiguous pages starting at [page]. *)

exception Out_of_memory
(** Raised by {!alloc_exn} when the request cannot be satisfied. *)

val create : ?page_size:int -> ?max_order:int -> total_pages:int -> unit -> t
(** [create ~total_pages ()] builds an allocator over [total_pages] pages of
    [page_size] bytes (default 4096) with largest block order [max_order]
    (default 10, i.e. 4 MiB blocks). *)

val alloc : t -> order:int -> block option
(** [alloc t ~order] allocates [2^order] contiguous pages, splitting larger
    blocks as needed; [None] if no block of sufficient order is free. *)

val alloc_exn : t -> order:int -> block
(** Like {!alloc} but raises {!Out_of_memory} on failure. *)

val free : t -> block -> unit
(** Return a block; coalesces with its buddy recursively. Raises
    [Invalid_argument] on double free or foreign blocks. *)

val page_size : t -> int
val max_order : t -> int
val total_pages : t -> int
val used_pages : t -> int
val free_pages : t -> int
val used_bytes : t -> int
val peak_used_pages : t -> int

val alloc_count : t -> int
(** Successful allocations so far. *)

val free_count : t -> int

val failed_allocs : t -> int
(** Genuine failures: no free block of sufficient order existed. Does not
    include injected refusals (see {!injected_failures}). *)

val set_fail_hook : t -> (order:int -> bool) option -> unit
(** Fault injection: install a predicate consulted before every {!alloc};
    returning [true] refuses the request ([alloc] returns [None]) without
    touching the free lists. [None] (the default) disables injection. *)

val injected_failures : t -> int
(** Allocations refused by the fail hook; disjoint from {!failed_allocs}. *)

val set_prof : t -> Prof.t -> unit
(** Install a profiler: {!alloc}/{!free} open [buddy.alloc]/[buddy.free]
    spans (global row — the buddy has no notion of the requesting CPU).
    {!Prof.null} (the default) makes the probes no-ops. *)

val would_satisfy : t -> order:int -> bool
(** [would_satisfy t ~order] is [true] iff a free block of order >= [order]
    exists — i.e. an [alloc] failure at this instant was injected, not
    genuine exhaustion. Lets callers distinguish transient faults (worth
    retrying with backoff) from real OOM. *)

val largest_free_order : t -> int
(** Largest order with a free block, or -1 if memory is exhausted. *)

val free_blocks : t -> (int * int) list
(** Every free block as [(start_page, order)], sorted by start page. For
    external auditors (coverage / overlap / conservation checks). *)

val allocated_blocks : t -> (int * int) list
(** Every allocated block as [(start_page, order)], sorted by start page. *)

val check_invariants : t -> unit
(** Asserts internal consistency: used + free page counts add up, free lists
    contain properly aligned disjoint blocks. For tests. *)
