(* Array-backed storage, index 0 = newest (the historical list order).
   The entry records are mutable so the copy-update hot path — the inner
   loop of the endurance/Fig. 3 workloads — allocates nothing beyond the
   new backing object: the *simulated* RCU list still allocates a new
   version and defer-frees the old one through the backend (that is the
   workload), but the simulator no longer rebuilds a cons chain per
   update. Readers track object ids, not entry records, so reusing the
   record is invisible to the premature-reuse checker. *)

type entry = { key : int; mutable value : int; mutable obj : Slab.Frame.objekt }

type t = {
  backend : Slab.Backend.t;
  readers : Rcu.Readers.t;
  cache : Slab.Frame.cache;
  list_name : string;
  (* Parallel to [entries]: [keyarr.(i) = entries.(i).key]. The search
     loop — the single hottest loop in the endurance workloads — scans
     this flat int array instead of chasing a pointer per element. *)
  mutable keyarr : int array;
  mutable entries : entry array;
}

let create ~backend ~readers ~cache ~name =
  { backend; readers; cache; list_name = name; keyarr = [||]; entries = [||] }

let name t = t.list_name
let length t = Array.length t.entries

(* -1 when absent; the same front-to-back scan order the cons-chain list
   had, so "the newest shadows" still holds for duplicate keys. *)
let find_idx t key =
  let keys = t.keyarr in
  let n = Array.length keys in
  let rec go i =
    if i >= n then -1
    else if Array.unsafe_get keys i = key then i
    else go (i + 1)
  in
  go 0

let find t key =
  let i = find_idx t key in
  if i < 0 then None else Some t.entries.(i)

let insert t cpu ~key ~value =
  match t.backend.Slab.Backend.alloc t.cache cpu with
  | None -> false
  | Some obj ->
      let n = Array.length t.entries in
      let e = { key; value; obj } in
      let a = Array.make (n + 1) e in
      Array.blit t.entries 0 a 1 n;
      let ka = Array.make (n + 1) key in
      Array.blit t.keyarr 0 ka 1 n;
      t.entries <- a;
      t.keyarr <- ka;
      true

let update t cpu ~key ~value =
  let i = find_idx t key in
  if i < 0 then `Absent
  else
    let old = t.entries.(i) in
    match t.backend.Slab.Backend.alloc t.cache cpu with
    | None -> `Oom
    | Some obj ->
        (* Publish the new version, then defer the old one: pre-existing
           readers may still hold it (Fig. 1). *)
        let old_obj = old.obj in
        old.value <- value;
        old.obj <- obj;
        t.backend.Slab.Backend.free_deferred t.cache cpu old_obj;
        `Updated

let delete t cpu ~key =
  let n = Array.length t.entries in
  let i = find_idx t key in
  if i < 0 then false
  else begin
    let victim = t.entries.(i) in
    let a = Array.make (n - 1) victim in
    Array.blit t.entries 0 a 0 i;
    Array.blit t.entries (i + 1) a i (n - 1 - i);
    let ka = Array.make (max 0 (n - 1)) 0 in
    Array.blit t.keyarr 0 ka 0 i;
    Array.blit t.keyarr (i + 1) ka i (n - 1 - i);
    t.entries <- a;
    t.keyarr <- ka;
    t.backend.Slab.Backend.free_deferred t.cache cpu victim.obj;
    true
  end

let lookup t cpu ~key =
  Rcu.Readers.with_section t.readers cpu (fun () ->
      match find t key with
      | None -> None
      | Some e ->
          (* The reader dereferences the object: track it so reclaiming
             it now would be flagged. *)
          Rcu.Readers.hold t.readers cpu ~oid:e.obj.Slab.Frame.oid;
          Some e.value)

let read_iter t cpu f =
  Rcu.Readers.with_section t.readers cpu (fun () ->
      Array.iter
        (fun e ->
          Rcu.Readers.hold t.readers cpu ~oid:e.obj.Slab.Frame.oid;
          f ~key:e.key ~value:e.value;
          Rcu.Readers.release t.readers cpu ~oid:e.obj.Slab.Frame.oid)
        t.entries)

let keys t = Array.to_list (Array.map (fun e -> e.key) t.entries)

let destroy t cpu =
  Array.iter
    (fun e -> t.backend.Slab.Backend.free_deferred t.cache cpu e.obj)
    t.entries;
  t.entries <- [||];
  t.keyarr <- [||]
