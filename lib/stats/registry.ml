type kind = Counter | Gauge | Derived

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Derived -> "derived"

type metric = {
  name : string;
  kind : kind;
  unit_ : string;
  help : string;
  read : unit -> float;
}

type t = {
  mutable rev_metrics : metric list;
  index : (string, metric) Hashtbl.t;
}

let create () = { rev_metrics = []; index = Hashtbl.create 64 }

let register t ~kind ~name ?(unit_ = "") ?(help = "") read =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Registry.register: duplicate metric %S" name);
  let m = { name; kind; unit_; help; read } in
  Hashtbl.add t.index name m;
  t.rev_metrics <- m :: t.rev_metrics

let counter t ~name ?unit_ ?help read =
  register t ~kind:Counter ~name ?unit_ ?help read

let gauge t ~name ?unit_ ?help read = register t ~kind:Gauge ~name ?unit_ ?help read

let derived t ~name ?unit_ ?help read =
  register t ~kind:Derived ~name ?unit_ ?help read

let all t = List.rev t.rev_metrics
let find t name = Hashtbl.find_opt t.index name
let names t = List.map (fun m -> m.name) (all t)
let size t = List.length t.rev_metrics
let read_all t = List.map (fun m -> (m, m.read ())) (all t)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let table t =
  let rows =
    List.map
      (fun (m, v) -> [ m.name; kind_name m.kind; fmt_value v; m.unit_; m.help ])
      (read_all t)
  in
  Metrics.Table.render
    ~align:Metrics.Table.[ L; L; R; L; L ]
    ~header:[ "metric"; "kind"; "value"; "unit"; "description" ]
    rows

let attach t ?(filter = fun _ -> true) sampler =
  List.fold_left
    (fun n m ->
      if filter m then begin
        Sim.Sampler.add_source sampler ~name:m.name ~unit_:m.unit_ m.read;
        n + 1
      end
      else n)
    0 (all t)
