(** Machine-readable bench results and the regression gate.

    The bench harness collects every experiment's {!Metrics.Report.metric}
    values into one document ([BENCH_seed.json]): run configuration plus
    [name -> value] with the paper-expected direction and an optional
    per-metric tolerance. CI compares a fresh document against the
    committed baseline ({!compare}) and fails on any drift past tolerance
    in the "worse" direction — improvements are reported, never fatal. *)

type config = { seed : int; scale : float; cpus : int; runs : int }

type t = {
  schema : string;  (** Currently "prudence-bench/1". *)
  config : config;
  metrics : Metrics.Report.metric list;
}

val schema_version : string

val make : config:config -> metrics:Metrics.Report.metric list -> t

val to_json : t -> Metrics.Json.t
val of_json : Metrics.Json.t -> (t, string) result

val write_file : string -> t -> unit
(** Pretty-printed (the baseline is committed; diffs should review well). *)

val load_file : string -> (t, string) result

(** {1 Regression comparison} *)

type status =
  | Within  (** Change within tolerance. *)
  | Improved  (** Past tolerance in the paper-expected direction. *)
  | Regressed  (** Past tolerance in the wrong direction. *)
  | Missing  (** In the baseline, absent from the current run. *)
  | Added  (** New metric with no baseline yet (not a failure). *)

val status_name : status -> string

type drift = {
  name : string;
  baseline : float option;
  current : float option;
  change_pct : float option;  (** [None] when either side is missing. *)
  tolerance_pct : float;
  direction : Metrics.Report.direction;
  status : status;
}

val compare_runs :
  ?default_tolerance_pct:float -> baseline:t -> current:t -> unit -> drift list
(** One drift per metric in either document, baseline order first, then
    additions. A config mismatch (seed/scale/cpus/runs) makes every
    metric comparison meaningless, so it is reported by {!config_mismatch}
    instead — call it first. Default tolerance: 5%. *)

val config_mismatch : baseline:t -> current:t -> string option

val failures : drift list -> drift list
(** The [Regressed] and [Missing] entries (what should fail CI). *)

val pp_drifts : Format.formatter -> drift list -> unit
(** Human-readable comparison table plus a one-line summary. *)

val drift_to_json : drift -> Metrics.Json.t

val summary_to_json : ?error:string -> drift list -> Metrics.Json.t
(** The one-line summary object terminating `regress --json` output:
    status counts plus [ok]. Pass [error] (and an empty drift list) when
    the comparison never ran — a missing baseline or a config mismatch —
    so automation still gets its summary line, with [ok = false]. *)
