module T = Metrics.Table

(* ---------------- buddy ---------------- *)

type buddy_view = {
  total_pages : int;
  used_pages : int;
  free_pages : int;
  free_blocks_per_order : int array;
  largest_free_order : int;
  watermark : Mem.Pressure.level option;
  allocs : int;
  frees : int;
  failed_allocs : int;
}

let buddy_view ?pressure buddy =
  let per_order = Array.make (Mem.Buddy.max_order buddy + 1) 0 in
  List.iter
    (fun (_page, order) -> per_order.(order) <- per_order.(order) + 1)
    (Mem.Buddy.free_blocks buddy);
  {
    total_pages = Mem.Buddy.total_pages buddy;
    used_pages = Mem.Buddy.used_pages buddy;
    free_pages = Mem.Buddy.free_pages buddy;
    free_blocks_per_order = per_order;
    largest_free_order = Mem.Buddy.largest_free_order buddy;
    watermark = Option.map Mem.Pressure.level pressure;
    allocs = Mem.Buddy.alloc_count buddy;
    frees = Mem.Buddy.free_count buddy;
    failed_allocs = Mem.Buddy.failed_allocs buddy;
  }

let level_name = function
  | Mem.Pressure.Normal -> "normal"
  | Mem.Pressure.Low -> "low"
  | Mem.Pressure.Critical -> "critical"

let render_buddy v =
  let header =
    "zone"
    :: List.init (Array.length v.free_blocks_per_order) (fun o ->
           Printf.sprintf "o%d" o)
  in
  let row =
    "Node 0"
    :: Array.to_list (Array.map string_of_int v.free_blocks_per_order)
  in
  let mib pages = float_of_int pages *. 4096. /. (1024. *. 1024.) in
  Printf.sprintf
    "buddy: %d/%d pages used (%.1f/%.1f MiB), watermark %s, largest free \
     order %d, %s allocs / %s frees / %d failed\n%s"
    v.used_pages v.total_pages (mib v.used_pages) (mib v.total_pages)
    (match v.watermark with None -> "-" | Some l -> level_name l)
    v.largest_free_order (T.fmt_i v.allocs) (T.fmt_i v.frees) v.failed_allocs
    (T.render ~header [ row ])

(* ---------------- slab ---------------- *)

type slabwatch = (string, Slab.Slab_stats.snapshot) Hashtbl.t

let slabwatch () : slabwatch = Hashtbl.create 16

type slab_row = {
  cache_name : string;
  obj_size : int;
  active_objs : int;
  total_objs : int;
  total_slabs : int;
  objs_per_slab : int;
  latent_objs : int;
  snap : Slab.Slab_stats.snapshot;
  d_allocs : int;
  d_frees : int;
  d_grows : int;
  d_shrinks : int;
}

let slab_rows ?watch (backend : Slab.Backend.t) =
  let rows = ref [] in
  backend.Slab.Backend.iter_caches (fun (c : Slab.Frame.cache) ->
      let snap = Slab.Slab_stats.snapshot c.Slab.Frame.stats in
      let prev =
        match watch with
        | None -> None
        | Some w -> Hashtbl.find_opt w c.Slab.Frame.name
      in
      Option.iter
        (fun w -> Hashtbl.replace w c.Slab.Frame.name snap)
        watch;
      let d get =
        match prev with Some p -> get snap - get p | None -> get snap
      in
      let module S = Slab.Slab_stats in
      rows :=
        {
          cache_name = c.Slab.Frame.name;
          obj_size = c.Slab.Frame.obj_size;
          active_objs = c.Slab.Frame.live_objs;
          total_objs = c.Slab.Frame.total_slabs * c.Slab.Frame.objs_per_slab;
          total_slabs = c.Slab.Frame.total_slabs;
          objs_per_slab = c.Slab.Frame.objs_per_slab;
          latent_objs = c.Slab.Frame.latent_count;
          snap;
          d_allocs = d (fun s -> s.S.allocs);
          d_frees = d (fun s -> s.S.frees + s.S.deferred_frees);
          d_grows = d (fun s -> s.S.grows);
          d_shrinks = d (fun s -> s.S.shrinks);
        }
        :: !rows);
  List.rev !rows

let render_slabs rows =
  let header =
    [
      "cache"; "objsize"; "active"; "total"; "slabs"; "objs/slab"; "latent";
      "allocs+"; "frees+"; "grows+"; "shrinks+";
    ]
  in
  let table_rows =
    List.map
      (fun r ->
        [
          r.cache_name;
          string_of_int r.obj_size;
          T.fmt_i r.active_objs;
          T.fmt_i r.total_objs;
          string_of_int r.total_slabs;
          string_of_int r.objs_per_slab;
          T.fmt_i r.latent_objs;
          T.fmt_i r.d_allocs;
          T.fmt_i r.d_frees;
          T.fmt_i r.d_grows;
          T.fmt_i r.d_shrinks;
        ])
      rows
  in
  Printf.sprintf
    "slab: %d cache(s); '+' columns count since the previous snapshot\n%s"
    (List.length rows)
    (if table_rows = [] then "(no caches)\n"
     else T.render ~header table_rows)

(* ---------------- rcu ---------------- *)

type rcu_view = {
  gps_completed : int;
  gp_active : bool;
  gp_age_ns : int;
  expedited : bool;
  pending_cbs : int;
  cpu_backlogs : (int * int * int) array;
  max_backlog : int;
  stall_warnings : int;
}

let rcu_view rcu =
  let stats = Rcu.stats rcu in
  {
    gps_completed = Rcu.completed rcu;
    gp_active = Rcu.gp_active rcu;
    gp_age_ns = Rcu.gp_age_ns rcu;
    expedited = Rcu.expedited rcu;
    pending_cbs = Rcu.pending_callbacks rcu;
    cpu_backlogs = Rcu.cpu_backlogs rcu;
    max_backlog = stats.Rcu.max_backlog;
    stall_warnings = stats.Rcu.stall_warnings;
  }

let render_rcu v =
  let header = [ "cpu"; "waiting"; "ready" ] in
  let rows =
    Array.to_list
      (Array.map
         (fun (cpu, waiting, ready) ->
           [ string_of_int cpu; T.fmt_i waiting; T.fmt_i ready ])
         v.cpu_backlogs)
  in
  Printf.sprintf
    "rcu: %d GPs completed, current GP %s, %s; backlog %s cbs (peak %s), %d \
     stall warning(s)\n%s"
    v.gps_completed
    (if v.gp_active then
       Printf.sprintf "active for %.2f ms" (float_of_int v.gp_age_ns /. 1e6)
     else "idle")
    (if v.expedited then "expedited" else "normal")
    (T.fmt_i v.pending_cbs) (T.fmt_i v.max_backlog) v.stall_warnings
    (T.render ~header rows)

(* ---------------- prudence latent state ---------------- *)

type cookie_row = {
  cookie : int;
  ripe : bool;
  in_latent_caches : int;
  in_latent_slabs : int;
}

type latent_view = {
  l_cache_name : string;
  outstanding : int;
  by_cookie : cookie_row list;
  hit_rate_pct : float;
  merge_per_miss : float;
  preflush_per_flush : float;
  premoves : int;
  latent_overflows : int;
}

let latent_views ~smr (backend : Slab.Backend.t) =
  let module S = Slab.Slab_stats in
  let views = ref [] in
  backend.Slab.Backend.iter_caches (fun (c : Slab.Frame.cache) ->
      let snap = S.snapshot c.Slab.Frame.stats in
      (* Deferred frees alone do not imply latent machinery: the SLUB
         baseline routes them through plain RCU callbacks. A cache is
         latent-relevant once an object was actually parked. *)
      if
        c.Slab.Frame.latent_count > 0 || snap.S.merged_objs > 0
        || snap.S.latent_overflows > 0 || snap.S.preflushed_objs > 0
        || snap.S.emergency_flushed_objs > 0
      then begin
        (* cookie -> (in latent caches, in latent slabs) *)
        let by_cookie = Hashtbl.create 16 in
        let bump ~slab_side cookie =
          let cache_n, slab_n =
            Option.value (Hashtbl.find_opt by_cookie cookie) ~default:(0, 0)
          in
          Hashtbl.replace by_cookie cookie
            (if slab_side then (cache_n, slab_n + 1) else (cache_n + 1, slab_n))
        in
        Array.iter
          (fun (pc : Slab.Frame.pcpu) ->
            Slab.Latq.Fifo.iter
              (fun (o : Slab.Frame.objekt) ->
                bump ~slab_side:false o.Slab.Frame.gp_cookie)
              pc.Slab.Frame.latent)
          c.Slab.Frame.pcpus;
        Array.iter
          (fun (n : Slab.Frame.node) ->
            Sim.Dlist.iter
              (fun (s : Slab.Frame.slab) ->
                Slab.Latq.iter
                  (fun (o : Slab.Frame.objekt) ->
                    bump ~slab_side:true o.Slab.Frame.gp_cookie)
                  s.Slab.Frame.latent_objs)
              n.Slab.Frame.latent_slabs)
          c.Slab.Frame.nodes;
        let rows =
          Hashtbl.fold
            (fun cookie (cache_n, slab_n) acc ->
              {
                cookie;
                ripe = Slab.Smr.ripe smr cookie;
                in_latent_caches = cache_n;
                in_latent_slabs = slab_n;
              }
              :: acc)
            by_cookie []
          |> List.sort (fun a b -> compare a.cookie b.cookie)
        in
        let ratio num den =
          if den = 0 then 0. else float_of_int num /. float_of_int den
        in
        views :=
          {
            l_cache_name = c.Slab.Frame.name;
            outstanding = c.Slab.Frame.latent_count;
            by_cookie = rows;
            hit_rate_pct = S.hit_rate snap;
            merge_per_miss = ratio snap.S.merged_objs snap.S.misses;
            preflush_per_flush = ratio snap.S.preflushed_objs snap.S.flushes;
            premoves = snap.S.premoves;
            latent_overflows = snap.S.latent_overflows;
          }
          :: !views
      end);
  List.rev !views

let render_latent views =
  if views = [] then
    "prudence: no latent state (baseline allocator or no deferred frees)\n"
  else
    String.concat ""
      (List.map
         (fun v ->
           let header =
             [ "gp cookie"; "state"; "latent caches"; "latent slabs" ]
           in
           let rows =
             List.map
               (fun r ->
                 [
                   string_of_int r.cookie;
                   (if r.ripe then "ripe" else "pending");
                   T.fmt_i r.in_latent_caches;
                   T.fmt_i r.in_latent_slabs;
                 ])
               v.by_cookie
           in
           Printf.sprintf
             "prudence %s: %s latent object(s); hit rate %.1f%%, %.2f merged \
              objs/miss, %.2f preflushed objs/flush, %s premoves, %s latent \
              overflows\n%s"
             v.l_cache_name (T.fmt_i v.outstanding) v.hit_rate_pct
             v.merge_per_miss v.preflush_per_flush (T.fmt_i v.premoves)
             (T.fmt_i v.latent_overflows)
             (if rows = [] then "(all deferred objects already recycled)\n"
              else T.render ~header rows))
         views)

(* ---------------- composition ---------------- *)

let snapshot ?watch (env : Workloads.Env.t) =
  String.concat "\n"
    [
      render_buddy (buddy_view ~pressure:env.Workloads.Env.pressure
                      env.Workloads.Env.buddy);
      render_rcu (rcu_view env.Workloads.Env.rcu);
      render_slabs (slab_rows ?watch env.Workloads.Env.backend);
      render_latent
        (latent_views ~smr:env.Workloads.Env.smr env.Workloads.Env.backend);
    ]

let level_value = function
  | Mem.Pressure.Normal -> 0.
  | Mem.Pressure.Low -> 1.
  | Mem.Pressure.Critical -> 2.

let register_env reg ?(prefix = "") (env : Workloads.Env.t) =
  let buddy = env.Workloads.Env.buddy in
  let pressure = env.Workloads.Env.pressure in
  let rcu = env.Workloads.Env.rcu in
  let backend = env.Workloads.Env.backend in
  let n name = prefix ^ name in
  let fi f () = float_of_int (f ()) in
  let gauge name ?unit_ ?help read = Registry.gauge reg ~name:(n name) ?unit_ ?help read in
  let counter name ?unit_ ?help read =
    Registry.counter reg ~name:(n name) ?unit_ ?help read
  in
  let derived name ?unit_ ?help read =
    Registry.derived reg ~name:(n name) ?unit_ ?help read
  in
  (* Engine / scheduler *)
  let eng = env.Workloads.Env.eng in
  gauge "engine.pending" ~unit_:"events"
    ~help:"live (non-cancelled) events queued in the scheduler"
    (fi (fun () -> Sim.Engine.pending eng));
  counter "engine.executed" ~unit_:"events" ~help:"events dispatched so far"
    (fi (fun () -> Sim.Engine.executed eng));
  gauge "engine.wheel_occupancy" ~unit_:"events"
    ~help:"events held by the scheduler structure, incl. tombstones"
    (fi (fun () -> Sim.Engine.wheel_occupancy eng));
  counter "engine.cascades" ~unit_:"buckets"
    ~help:"timer-wheel buckets cascaded down a level"
    (fi (fun () -> Sim.Engine.cascades eng));
  counter "engine.spills" ~unit_:"events"
    ~help:"events spilled to the out-of-horizon overflow heap"
    (fi (fun () -> Sim.Engine.spills eng));
  counter "engine.compactions" ~unit_:"sweeps"
    ~help:"tombstone-compaction sweeps of the scheduler"
    (fi (fun () -> Sim.Engine.compactions eng));
  (* Buddy / pressure *)
  gauge "buddy.used_pages" ~unit_:"pages"
    ~help:"pages allocated from the buddy allocator"
    (fi (fun () -> Mem.Buddy.used_pages buddy));
  gauge "buddy.free_pages" ~unit_:"pages" ~help:"pages still free"
    (fi (fun () -> Mem.Buddy.free_pages buddy));
  derived "buddy.used_mib" ~unit_:"MiB" ~help:"used bytes (Fig. 3 y-axis)"
    (fun () -> float_of_int (Mem.Buddy.used_bytes buddy) /. (1024. *. 1024.));
  counter "buddy.allocs" ~help:"successful block allocations"
    (fi (fun () -> Mem.Buddy.alloc_count buddy));
  counter "buddy.frees" ~help:"block frees"
    (fi (fun () -> Mem.Buddy.free_count buddy));
  counter "buddy.failed_allocs" ~help:"genuine allocation failures"
    (fi (fun () -> Mem.Buddy.failed_allocs buddy));
  gauge "buddy.largest_free_order" ~unit_:"order"
    ~help:"largest order with a free block (-1 = exhausted)"
    (fi (fun () -> Mem.Buddy.largest_free_order buddy));
  for o = 0 to Mem.Buddy.max_order buddy do
    gauge
      (Printf.sprintf "buddy.free_order%d" o)
      ~unit_:"blocks"
      ~help:(Printf.sprintf "free blocks of order %d (buddyinfo column)" o)
      (fun () ->
        List.fold_left
          (fun acc (_p, ord) -> if ord = o then acc +. 1. else acc)
          0.
          (Mem.Buddy.free_blocks buddy))
  done;
  gauge "pressure.level" ~help:"0=normal 1=low 2=critical" (fun () ->
      level_value (Mem.Pressure.level pressure));
  (* RCU *)
  counter "rcu.gps_completed" ~unit_:"gps" ~help:"grace periods completed"
    (fi (fun () -> Rcu.completed rcu));
  gauge "rcu.gp_age_ns" ~unit_:"ns"
    ~help:"age of the in-progress grace period (0 = idle)"
    (fi (fun () -> Rcu.gp_age_ns rcu));
  gauge "rcu.pending_cbs" ~unit_:"cbs"
    ~help:"callbacks queued and not yet invoked (backlog)"
    (fi (fun () -> Rcu.pending_callbacks rcu));
  gauge "rcu.expedited" ~help:"1 while callback processing is expedited"
    (fun () -> if Rcu.expedited rcu then 1. else 0.);
  counter "rcu.stall_warnings" ~help:"stall-detector firings"
    (fi (fun () -> (Rcu.stats rcu).Rcu.stall_warnings));
  (* Slab / Prudence aggregates: summed over the backend's caches at read
     time, so caches created after registration are included. *)
  let sum_caches f () =
    let acc = ref 0 in
    backend.Slab.Backend.iter_caches (fun c -> acc := !acc + f c);
    float_of_int !acc
  in
  let sum_stats f =
    sum_caches (fun c ->
        f (Slab.Slab_stats.snapshot c.Slab.Frame.stats))
  in
  let module S = Slab.Slab_stats in
  gauge "slab.active_objs" ~unit_:"objs"
    ~help:"objects currently held by mutators"
    (sum_caches (fun c -> c.Slab.Frame.live_objs));
  gauge "slab.total_slabs" ~unit_:"slabs" ~help:"slabs across all caches"
    (sum_caches (fun c -> c.Slab.Frame.total_slabs));
  gauge "slab.total_objs" ~unit_:"objs" ~help:"object capacity of all slabs"
    (sum_caches (fun c ->
         c.Slab.Frame.total_slabs * c.Slab.Frame.objs_per_slab));
  counter "slab.allocs" ~help:"allocation requests served"
    (sum_stats (fun s -> s.S.allocs));
  counter "slab.frees" ~help:"immediate frees"
    (sum_stats (fun s -> s.S.frees));
  counter "slab.deferred_frees" ~help:"deferred (RCU-retire) frees"
    (sum_stats (fun s -> s.S.deferred_frees));
  counter "slab.refills" ~help:"object-cache refills"
    (sum_stats (fun s -> s.S.refills));
  counter "slab.flushes" ~help:"object-cache flushes"
    (sum_stats (fun s -> s.S.flushes));
  counter "slab.grows" ~help:"slab-cache grows"
    (sum_stats (fun s -> s.S.grows));
  counter "slab.shrinks" ~help:"slab-cache shrinks"
    (sum_stats (fun s -> s.S.shrinks));
  derived "slab.hit_rate_pct" ~unit_:"%"
    ~help:"allocations served from the object cache (Fig. 7)"
    (fun () ->
      let hits = ref 0 and allocs = ref 0 in
      backend.Slab.Backend.iter_caches (fun c ->
          let s = Slab.Slab_stats.snapshot c.Slab.Frame.stats in
          hits := !hits + s.S.hits;
          allocs := !allocs + s.S.allocs);
      if !allocs = 0 then 0.
      else 100. *. float_of_int !hits /. float_of_int !allocs);
  gauge "prudence.latent_outstanding" ~unit_:"objs"
    ~help:"deferred objects in latent caches + latent slabs"
    (sum_caches (fun c -> c.Slab.Frame.latent_count));
  counter "prudence.merged_objs"
    ~help:"ripe latent objects merged into object caches"
    (sum_stats (fun s -> s.S.merged_objs));
  counter "prudence.premoves" ~help:"slab pre-movements"
    (sum_stats (fun s -> s.S.premoves));
  counter "prudence.preflushed_objs" ~help:"objects migrated by idle pre-flush"
    (sum_stats (fun s -> s.S.preflushed_objs));
  counter "prudence.emergency_flushed_objs"
    ~help:"objects freed by emergency reclaim"
    (sum_stats (fun s -> s.S.emergency_flushed_objs));
  counter "prudence.ooms_delayed" ~help:"OOM-delay activations"
    (sum_stats (fun s -> s.S.ooms_delayed));
  (* Profiler-derived metrics. Registered only when a live profiler is
     installed, so registry output with profiling off is byte-identical
     to a build that never heard of lib/prof. *)
  let prof = env.Workloads.Env.prof in
  if Prof.enabled prof then begin
    let eng = env.Workloads.Env.eng in
    let events () = float_of_int (Sim.Engine.executed eng) in
    let per_event total () =
      let e = events () in
      if e = 0. then 0. else total () /. e
    in
    derived "prof.allocs_per_event" ~unit_:"words"
      ~help:"minor-heap words attributed to spans, per engine event"
      (per_event (fun () -> Prof.total_minor_words prof));
    derived "prof.ns_per_event" ~unit_:"ns"
      ~help:"profiled self wall-time per engine event"
      (per_event (fun () -> Prof.total_self_ns prof));
    List.iter
      (fun sub ->
        let pick () =
          List.find
            (fun (s, _, _) -> String.equal s sub)
            (Prof.subsystem_totals prof)
        in
        let share part total = if total <= 0. then 0. else 100. *. part /. total in
        derived
          (Printf.sprintf "prof.%s.time_share_pct" sub)
          ~unit_:"%"
          ~help:(Printf.sprintf "share of profiled self time in %s spans" sub)
          (fun () ->
            let _, ns, _ = pick () in
            share ns (Prof.total_self_ns prof));
        derived
          (Printf.sprintf "prof.%s.alloc_share_pct" sub)
          ~unit_:"%"
          ~help:
            (Printf.sprintf "share of profiled minor words in %s spans" sub)
          (fun () ->
            let _, _, words = pick () in
            share words (Prof.total_minor_words prof)))
      Prof.Span.subsystems;
    List.iter
      (fun span ->
        counter
          (Printf.sprintf "prof.%s.calls" (Prof.Span.name span))
          ~help:"span entries"
          (fun () ->
            List.fold_left
              (fun acc (c : Prof.cell) ->
                if c.span = span then acc +. float_of_int c.calls else acc)
              0. (Prof.totals prof)))
      Prof.Span.all
  end;
  (* Grace-period anatomy metrics. Registered only when the Obs recorder
     is armed, mirroring the profiler rule: recorder off means the
     registry output is byte-identical to a build without lib/obs. *)
  let obs = env.Workloads.Env.obs in
  if Obs.Anatomy.enabled obs then begin
    let hist_metrics label h =
      counter
        (Printf.sprintf "obs.%s.count" label)
        ~unit_:"objs" ~help:(Printf.sprintf "%s phase samples" label)
        (fi (fun () -> Trace.Hist.count h));
      derived
        (Printf.sprintf "obs.%s.p50_ns" label)
        ~unit_:"ns" ~help:(Printf.sprintf "%s latency median" label)
        (fun () ->
          match Trace.Hist.percentile_opt h 50. with
          | None -> 0.
          | Some v -> float_of_int v);
      derived
        (Printf.sprintf "obs.%s.p99_ns" label)
        ~unit_:"ns"
        ~help:(Printf.sprintf "%s latency 99th percentile" label)
        (fun () ->
          match Trace.Hist.percentile_opt h 99. with
          | None -> 0.
          | Some v -> float_of_int v)
    in
    List.iter
      (fun p -> hist_metrics (Obs.Phase.name p) (Obs.Anatomy.phase_hist obs p))
      Obs.Phase.all;
    hist_metrics "total" (Obs.Anatomy.total_hist obs);
    counter "obs.defers" ~unit_:"objs" ~help:"deferred frees observed"
      (fi (fun () -> Obs.Anatomy.defers obs));
    counter "obs.reuses" ~unit_:"objs" ~help:"deferred slots reused"
      (fi (fun () -> Obs.Anatomy.reuses obs));
    counter "obs.dropped" ~unit_:"objs"
      ~help:"reuses whose token record was missing"
      (fi (fun () -> Obs.Anatomy.dropped obs));
    gauge "obs.frontier" ~help:"truthful reclamation frontier last observed"
      (fi (fun () -> Obs.Anatomy.frontier obs))
  end
