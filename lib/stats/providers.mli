(** Per-subsystem snapshot providers.

    Each provider reads one layer of a live simulated stack into a typed
    view — the analogue of Linux's [/proc/buddyinfo], [/proc/slabinfo],
    the [rcu] debugfs tree, and (for Prudence) the latent-cache occupancy
    the paper's evaluation plots — plus a renderer for the [stat] CLI and
    a {!Registry} hookup so any field can be sampled over virtual time.

    Views are pure reads: taking a snapshot never mutates allocator
    state. The one deliberate exception is {!slabwatch}, which remembers
    the previous per-cache counters so successive snapshots report churn
    {e since the last look} (the way [slabtop] shows activity). *)

(** {1 Buddy ([/proc/buddyinfo])} *)

type buddy_view = {
  total_pages : int;
  used_pages : int;
  free_pages : int;
  free_blocks_per_order : int array;  (** Index = order, 0..max_order. *)
  largest_free_order : int;  (** -1 when memory is exhausted. *)
  watermark : Mem.Pressure.level option;
  allocs : int;
  frees : int;
  failed_allocs : int;
}

val buddy_view : ?pressure:Mem.Pressure.t -> Mem.Buddy.t -> buddy_view
val render_buddy : buddy_view -> string

(** {1 Slab ([/proc/slabinfo] / [slabtop])} *)

type slabwatch
(** Remembers the previous snapshot per cache for churn-since-last. *)

val slabwatch : unit -> slabwatch

type slab_row = {
  cache_name : string;
  obj_size : int;
  active_objs : int;  (** Objects currently held by mutators. *)
  total_objs : int;  (** Capacity: slabs x objects per slab. *)
  total_slabs : int;
  objs_per_slab : int;
  latent_objs : int;  (** Deferred objects parked in this cache (Prudence). *)
  snap : Slab.Slab_stats.snapshot;
  d_allocs : int;  (** Since the previous slabwatch snapshot (or ever). *)
  d_frees : int;
  d_grows : int;
  d_shrinks : int;
}

val slab_rows : ?watch:slabwatch -> Slab.Backend.t -> slab_row list
(** One row per cache, in cache-creation order. *)

val render_slabs : slab_row list -> string

(** {1 RCU (debugfs [rcu/])} *)

type rcu_view = {
  gps_completed : int;
  gp_active : bool;
  gp_age_ns : int;
  expedited : bool;
  pending_cbs : int;
  cpu_backlogs : (int * int * int) array;  (** (cpu, waiting, ready). *)
  max_backlog : int;
  stall_warnings : int;
}

val rcu_view : Rcu.t -> rcu_view
val render_rcu : rcu_view -> string

(** {1 Prudence latent state (the paper's §4 occupancy)} *)

type cookie_row = {
  cookie : int;  (** Grace-period cookie the objects wait for. *)
  ripe : bool;  (** That grace period has completed. *)
  in_latent_caches : int;  (** Objects in per-CPU latent caches. *)
  in_latent_slabs : int;  (** Objects parked on slab latent lists. *)
}

type latent_view = {
  l_cache_name : string;
  outstanding : int;  (** All deferred objects currently held. *)
  by_cookie : cookie_row list;  (** Ascending cookie order. *)
  hit_rate_pct : float;  (** Object-cache hit rate (Fig. 7 metric). *)
  merge_per_miss : float;
      (** Ripe objects merged per allocation miss — how often the
          merge-before-refill hint pays off. *)
  preflush_per_flush : float;
      (** Idle pre-flushed objects per workload flush — how much flush
          work the idle hint absorbed. *)
  premoves : int;  (** Slab pre-movements (the slab-state hint). *)
  latent_overflows : int;
}

val latent_views : smr:Slab.Smr.t -> Slab.Backend.t -> latent_view list
(** One view per cache that has seen deferred frees (others are
    omitted); empty for the SLUB baseline. *)

val render_latent : latent_view list -> string

(** {1 Composition} *)

val snapshot : ?watch:slabwatch -> Workloads.Env.t -> string
(** All four sections rendered for one environment. *)

val register_env : Registry.t -> ?prefix:string -> Workloads.Env.t -> unit
(** Register the samplable scalar metrics of every layer: buddy gauges
    and counters (including per-order free-block gauges), pressure
    level, RCU grace-period/backlog state, and slab/Prudence aggregates
    (summed over the backend's caches at read time, so caches created
    after registration are included). [prefix] is prepended to every
    metric name (default none).

    When the environment carries a live profiler ([cfg.prof] is not
    {!Prof.null}), also registers [prof.*] derived metrics:
    allocs-per-event, ns-per-event, per-subsystem time/alloc shares,
    and per-span call counters. With profiling off, no [prof.*] names
    appear, keeping registry output byte-identical. *)
