type config = {
  kind : Workloads.Env.kind;
  seed : int;
  cpus : int;
  scale : float;
  duration_ns : int;
  sample_every_ns : int;
  capacity : int;
  total_pages : int;
}

let default_config =
  {
    kind = Workloads.Env.Prudence_alloc;
    seed = 42;
    cpus = 8;
    scale = 1.0;
    duration_ns = Sim.Clock.s 2;
    sample_every_ns = Sim.Clock.ms 10;
    capacity = 4096;
    total_pages = 65_536;
  }

type result = {
  label : string;
  env : Workloads.Env.t;
  registry : Registry.t;
  sampler : Sim.Sampler.t;
  watch : Providers.slabwatch;
  updates : int;
  oom_at_ns : int option;
}

(* The throttled-callback RCU config of the Fig. 3 endurance runs: on the
   baseline it produces the climbing backlog and occupancy the stat views
   exist to show; Prudence stays flat under the same load. *)
let live_rcu_config =
  {
    Rcu.default_config with
    Rcu.blimit = 10;
    expedited_blimit = 30;
    softirq_period_ns = 1_000_000;
    qhimark = max_int;
  }

let run ?on_watch ?watch_every_ns cfg =
  let scaled_duration =
    max 1 (int_of_float (float_of_int cfg.duration_ns *. cfg.scale))
  in
  let env =
    Workloads.Env.build
      {
        Workloads.Env.default_config with
        Workloads.Env.kind = cfg.kind;
        cpus = cfg.cpus;
        seed = cfg.seed;
        total_pages = cfg.total_pages;
        rcu_config = live_rcu_config;
      }
  in
  let registry = Registry.create () in
  Providers.register_env registry env;
  let sampler =
    Sim.Sampler.create env.Workloads.Env.eng ~capacity:cfg.capacity
      ~period_ns:cfg.sample_every_ns ()
  in
  ignore (Registry.attach registry sampler);
  Sim.Sampler.start sampler;
  let watch = Providers.slabwatch () in
  Option.iter
    (fun hook ->
      let period =
        Option.value watch_every_ns ~default:(cfg.sample_every_ns * 10)
      in
      Sim.Engine.every env.Workloads.Env.eng ~period (fun () ->
          hook
            ~time_ns:(Sim.Engine.now env.Workloads.Env.eng)
            ~snapshot:(Providers.snapshot ~watch env);
          true))
    on_watch;
  let endurance =
    Workloads.Endurance.run env
      {
        Workloads.Endurance.default_config with
        Workloads.Endurance.duration_ns = scaled_duration;
      }
  in
  {
    label = Workloads.Env.kind_label cfg.kind;
    env;
    registry;
    sampler;
    watch;
    updates = endurance.Workloads.Endurance.updates;
    oom_at_ns = endurance.Workloads.Endurance.oom_at_ns;
  }
