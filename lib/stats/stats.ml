(** Facade: live allocator/RCU introspection and the bench regression
    pipeline.

    - {!Registry}: typed counter/gauge/derived metric registry
    - {!Providers}: buddyinfo/slabinfo/rcu/latent snapshot providers
    - {!Live}: workload-driving runs for the [stat] CLI subcommand
    - {!Bench_json}: [BENCH_seed.json] schema + baseline comparison *)

module Registry = Registry
module Providers = Providers
module Live = Live
module Bench_json = Bench_json
