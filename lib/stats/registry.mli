(** Typed metric registry.

    A metric is a named, unit-tagged scalar read on demand from the live
    simulated stack — a {e counter} (monotonic, e.g. grace periods
    completed), a {e gauge} (instantaneous occupancy, e.g. free pages) or
    a {e derived} value (computed ratio, e.g. object-cache hit rate).
    Subsystem providers ({!Providers}) register their metrics here; the
    [stat] CLI renders the registry as a table and the {!Sim.Sampler}
    records any subset over virtual time. *)

type kind = Counter | Gauge | Derived

val kind_name : kind -> string

type metric = {
  name : string;  (** Dotted path: "buddy.free_pages", "rcu.gp_age_ns". *)
  kind : kind;
  unit_ : string;  (** "pages", "ns", "%", "objs", "" for raw counts. *)
  help : string;
  read : unit -> float;
}

type t

val create : unit -> t

val register :
  t -> kind:kind -> name:string -> ?unit_:string -> ?help:string ->
  (unit -> float) -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val counter :
  t -> name:string -> ?unit_:string -> ?help:string -> (unit -> float) -> unit

val gauge :
  t -> name:string -> ?unit_:string -> ?help:string -> (unit -> float) -> unit

val derived :
  t -> name:string -> ?unit_:string -> ?help:string -> (unit -> float) -> unit

val find : t -> string -> metric option
val names : t -> string list
(** Registration order. *)

val size : t -> int

val read_all : t -> (metric * float) list
(** Read every metric once, registration order. *)

val table : t -> string
(** Rendered {!Metrics.Table}: name | kind | value | unit | help. *)

val attach :
  t -> ?filter:(metric -> bool) -> Sim.Sampler.t -> int
(** Add every metric passing [filter] (default: all) as a sampler
    source; returns how many were attached. Call before
    {!Sim.Sampler.start}. *)
