module J = Metrics.Json
module R = Metrics.Report

type config = { seed : int; scale : float; cpus : int; runs : int }

type t = { schema : string; config : config; metrics : R.metric list }

let schema_version = "prudence-bench/1"

let make ~config ~metrics = { schema = schema_version; config; metrics }

let metric_to_json (m : R.metric) =
  J.Obj
    ([
       ("name", J.Str m.R.name);
       ("value", J.Float m.R.value);
       ("direction", J.Str (R.direction_name m.R.direction));
     ]
    @
    match m.R.tolerance_pct with
    | None -> []
    | Some tol -> [ ("tolerance_pct", J.Float tol) ])

let to_json t =
  J.Obj
    [
      ("schema", J.Str t.schema);
      ( "config",
        J.Obj
          [
            ("seed", J.Int t.config.seed);
            ("scale", J.Float t.config.scale);
            ("cpus", J.Int t.config.cpus);
            ("runs", J.Int t.config.runs);
          ] );
      ("metrics", J.List (List.map metric_to_json t.metrics));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let metric_of_json j =
  let* name = field "name" J.to_string_opt j in
  let* value = field "value" J.to_float_opt j in
  let* dirname = field "direction" J.to_string_opt j in
  match R.direction_of_string dirname with
  | None -> Error (Printf.sprintf "metric %S: bad direction %S" name dirname)
  | Some direction ->
      Ok
        {
          R.name;
          value;
          direction;
          tolerance_pct =
            Option.bind (J.member "tolerance_pct" j) J.to_float_opt;
        }

let of_json j =
  let* schema = field "schema" J.to_string_opt j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (want %S)" schema schema_version)
  else
    let* cfg = field "config" Option.some j in
    let* seed = field "seed" J.to_int_opt cfg in
    let* scale = field "scale" J.to_float_opt cfg in
    let* cpus = field "cpus" J.to_int_opt cfg in
    let* runs = field "runs" J.to_int_opt cfg in
    let* metric_list = field "metrics" J.to_list_opt j in
    let rec metrics acc = function
      | [] -> Ok (List.rev acc)
      | m :: rest -> (
          match metric_of_json m with
          | Ok m -> metrics (m :: acc) rest
          | Error _ as e -> e)
    in
    let* metrics = metrics [] metric_list in
    Ok { schema; config = { seed; scale; cpus; runs }; metrics }

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string_pretty (to_json t)))

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match J.of_string contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> of_json j)

(* ---------------- comparison ---------------- *)

type status = Within | Improved | Regressed | Missing | Added

let status_name = function
  | Within -> "within"
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Missing -> "missing"
  | Added -> "added"

type drift = {
  name : string;
  baseline : float option;
  current : float option;
  change_pct : float option;
  tolerance_pct : float;
  direction : R.direction;
  status : status;
}

let change_pct ~baseline ~current =
  if baseline = 0. then (if current = 0. then 0. else 100.)
  else (current -. baseline) /. Float.abs baseline *. 100.

let classify ~direction ~change ~tolerance =
  match direction with
  | R.Info -> if Float.abs change <= tolerance then Within else Improved
  | R.Exact -> if Float.abs change <= tolerance then Within else Regressed
  | R.Lower_better ->
      if change > tolerance then Regressed
      else if change < -.tolerance then Improved
      else Within
  | R.Higher_better ->
      if change < -.tolerance then Regressed
      else if change > tolerance then Improved
      else Within

let compare_runs ?(default_tolerance_pct = 5.) ~baseline ~current () =
  let current_by_name =
    List.map (fun (m : R.metric) -> (m.R.name, m)) current.metrics
  in
  let baseline_names =
    List.map (fun (m : R.metric) -> m.R.name) baseline.metrics
  in
  let of_baseline (bm : R.metric) =
    let tolerance =
      Option.value bm.R.tolerance_pct ~default:default_tolerance_pct
    in
    match List.assoc_opt bm.R.name current_by_name with
    | None ->
        {
          name = bm.R.name;
          baseline = Some bm.R.value;
          current = None;
          change_pct = None;
          tolerance_pct = tolerance;
          direction = bm.R.direction;
          status = Missing;
        }
    | Some cm ->
        let change = change_pct ~baseline:bm.R.value ~current:cm.R.value in
        {
          name = bm.R.name;
          baseline = Some bm.R.value;
          current = Some cm.R.value;
          change_pct = Some change;
          tolerance_pct = tolerance;
          direction = bm.R.direction;
          status = classify ~direction:bm.R.direction ~change ~tolerance;
        }
  in
  let added =
    List.filter_map
      (fun (cm : R.metric) ->
        if List.mem cm.R.name baseline_names then None
        else
          Some
            {
              name = cm.R.name;
              baseline = None;
              current = Some cm.R.value;
              change_pct = None;
              tolerance_pct =
                Option.value cm.R.tolerance_pct
                  ~default:default_tolerance_pct;
              direction = cm.R.direction;
              status = Added;
            })
      current.metrics
  in
  List.map of_baseline baseline.metrics @ added

let config_mismatch ~baseline ~current =
  let b = baseline.config and c = current.config in
  if b = c then None
  else
    Some
      (Printf.sprintf
         "config mismatch: baseline seed=%d scale=%g cpus=%d runs=%d vs \
          current seed=%d scale=%g cpus=%d runs=%d"
         b.seed b.scale b.cpus b.runs c.seed c.scale c.cpus c.runs)

let failures drifts =
  List.filter (fun d -> d.status = Regressed || d.status = Missing) drifts

let fmt_opt = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v

let pp_drifts fmt drifts =
  let module T = Metrics.Table in
  let rows =
    List.map
      (fun d ->
        [
          d.name;
          fmt_opt d.baseline;
          fmt_opt d.current;
          (match d.change_pct with None -> "-" | Some c -> T.fmt_pct c);
          Printf.sprintf "%.1f%%" d.tolerance_pct;
          R.direction_name d.direction;
          status_name d.status;
        ])
      drifts
  in
  Format.fprintf fmt "%s@."
    (T.render
       ~header:
         [ "metric"; "baseline"; "current"; "change"; "tol"; "direction";
           "status" ]
       rows);
  let count s = List.length (List.filter (fun d -> d.status = s) drifts) in
  Format.fprintf fmt
    "%d metric(s): %d within tolerance, %d improved, %d regressed, %d \
     missing, %d new@."
    (List.length drifts) (count Within) (count Improved) (count Regressed)
    (count Missing) (count Added)

(* The trailing NDJSON line of `regress --json`. Emitted on every path —
   including load/config failures, where there are no drifts to print —
   so CI parsers always find exactly one summary object. *)
let summary_to_json ?error drifts =
  let count s = List.length (List.filter (fun d -> d.status = s) drifts) in
  J.Obj
    ([
       ("type", J.Str "summary");
       ("compared", J.Int (List.length drifts));
       ("within", J.Int (count Within));
       ("improved", J.Int (count Improved));
       ("regressed", J.Int (count Regressed));
       ("missing", J.Int (count Missing));
       ("added", J.Int (count Added));
       ("ok", J.Bool (error = None && failures drifts = []));
     ]
    @ match error with None -> [] | Some e -> [ ("error", J.Str e) ])

let drift_to_json d =
  J.Obj
    [
      ("name", J.Str d.name);
      ("baseline", match d.baseline with None -> J.Null | Some v -> J.Float v);
      ("current", match d.current with None -> J.Null | Some v -> J.Float v);
      ( "change_pct",
        match d.change_pct with None -> J.Null | Some v -> J.Float v );
      ("tolerance_pct", J.Float d.tolerance_pct);
      ("direction", J.Str (R.direction_name d.direction));
      ("status", J.Str (status_name d.status));
    ]
