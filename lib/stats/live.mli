(** Live introspection runs for the [stat] CLI subcommand.

    Builds one allocator stack, arms the metric {!Registry} and a
    {!Sim.Sampler} over it, drives the Fig. 3-style endurance workload
    (continuous RCU-protected list updates on every CPU under throttled
    callback processing — the load that makes allocator/RCU state worth
    watching), and returns everything needed to render one-shot
    snapshots, periodic watch output and exported time series.

    Deterministic: the same config yields byte-identical snapshots and
    series exports. *)

type config = {
  kind : Workloads.Env.kind;
  seed : int;
  cpus : int;
  scale : float;  (** Multiplies the virtual duration. *)
  duration_ns : int;  (** Base virtual run length (before [scale]). *)
  sample_every_ns : int;  (** Sampler period. *)
  capacity : int;  (** Sampler ring bound (rows). *)
  total_pages : int;
}

val default_config : config
(** Prudence, seed 42, 8 CPUs, 2 s virtual, 10 ms sampling, 4096 rows,
    64k pages (256 MiB). *)

type result = {
  label : string;  (** "slub" / "prudence". *)
  env : Workloads.Env.t;
  registry : Registry.t;
  sampler : Sim.Sampler.t;
  watch : Providers.slabwatch;
      (** The watch used for periodic snapshots; reuse it for the final
          one-shot so churn columns continue from the last interval. *)
  updates : int;  (** Workload list updates completed. *)
  oom_at_ns : int option;
}

val run :
  ?on_watch:(time_ns:int -> snapshot:string -> unit) ->
  ?watch_every_ns:int ->
  config -> result
(** Run to completion. When [on_watch] is given it is called every
    [watch_every_ns] (default: [sample_every_ns * 10]) of virtual time
    with a rendered {!Providers.snapshot}. *)
