type cpu = {
  id : int;
  node : int;
  mutable pending_ns : int;
  mutable rcu_nesting : int;
  mutable idle : bool;
  mutable stalled : bool;
  mutable ctx_switches : int;
  mutable suppressed_ticks : int;
  mutable idle_work : (unit -> unit) list;
}

type t = {
  engine : Engine.t;
  cpus : cpu array;
  nr_nodes : int;
  tick : int;
  mutable hooks : (cpu -> unit) list;
  mutable started : bool;
  mutable tracer : Trace.t;
  mutable prof : Prof.t;
}

let create engine ~cpus ?(nodes = 1) ?(tick_ns = 1_000_000) () =
  if cpus <= 0 then invalid_arg "Machine.create: need at least one CPU";
  if nodes <= 0 || nodes > cpus then
    invalid_arg "Machine.create: invalid node count";
  let per_node = (cpus + nodes - 1) / nodes in
  let mk id =
    {
      id;
      node = id / per_node;
      pending_ns = 0;
      rcu_nesting = 0;
      idle = false;
      stalled = false;
      ctx_switches = 0;
      suppressed_ticks = 0;
      idle_work = [];
    }
  in
  {
    engine;
    cpus = Array.init cpus mk;
    nr_nodes = nodes;
    tick = tick_ns;
    hooks = [];
    started = false;
    tracer = Trace.null;
    prof = Prof.null;
  }

let engine t = t.engine
let nr_cpus t = Array.length t.cpus
let nr_nodes t = t.nr_nodes
let cpu t i = t.cpus.(i)
let cpus t = t.cpus
let node_of_cpu t i = t.cpus.(i).node
let tick_ns t = t.tick

let on_context_switch t hook = t.hooks <- hook :: t.hooks

let tracer t = t.tracer
let set_tracer t tracer = t.tracer <- tracer
let prof t = t.prof

let set_prof t prof =
  t.prof <- prof;
  Engine.set_prof t.engine prof

let context_switch t c =
  c.ctx_switches <- c.ctx_switches + 1;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer ~time:(Engine.now t.engine) ~cpu:c.id
      Trace.Event.Ctx_switch;
  List.iter (fun hook -> hook c) t.hooks

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iter
      (fun c ->
        (* Stagger ticks across CPUs to avoid artificial synchrony. *)
        let phase = t.tick + (c.id * t.tick / Array.length t.cpus) in
        Engine.every t.engine ~period:t.tick ~phase (fun () ->
            if c.stalled then c.suppressed_ticks <- c.suppressed_ticks + 1
            else if c.rcu_nesting = 0 then context_switch t c;
            true))
      t.cpus
  end

let consume c ns =
  if ns < 0 then invalid_arg "Machine.consume: negative cost";
  c.pending_ns <- c.pending_ns + ns

let drain c =
  let p = c.pending_ns in
  c.pending_ns <- 0;
  p

let run_idle_work c =
  let work = List.rev c.idle_work in
  c.idle_work <- [];
  List.iter (fun fn -> fn ()) work

let submit_idle _t c fn =
  if c.idle then fn () else c.idle_work <- fn :: c.idle_work

let is_idle c = c.idle

let idle_sleep t c ns =
  c.idle <- true;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer ~time:(Engine.now t.engine) ~cpu:c.id
      Trace.Event.Idle_start;
  run_idle_work c;
  Process.sleep t.engine ns;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer ~time:(Engine.now t.engine) ~cpu:c.id
      Trace.Event.Idle_end;
  c.idle <- false
