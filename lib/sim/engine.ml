type tiebreak = Fifo | Shuffle of int

type event = {
  time : int;
  seq : int;
  tie : int;
  fn : unit -> unit;
  daemon : bool;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable now : int;
  mutable seq : int;
  mutable running : bool;
  mutable stop_requested : bool;
  mutable executed : int;
  mutable busy : int; (* queued non-daemon events *)
  mutable waiters : int; (* suspended processes (condition waits) *)
  tiebreak : tiebreak;
  queue : event Heap.t;
  rng : Rng.t;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.tie b.tie in
    if c <> 0 then c else compare a.seq b.seq

(* splitmix64 finalizer: good avalanche, so (seed, time, seq) triples map to
   effectively independent tie keys. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* With [Fifo] every event gets the same key, so comparison falls through to
   [seq]: exact scheduling order, the historical behaviour. With [Shuffle]
   same-instant events get pseudo-random relative order, deterministic in
   (shuffle seed, time, seq) — a perturbed but replayable serialization of
   logically concurrent events. *)
let tie_for policy ~time ~seq =
  match policy with
  | Fifo -> 0
  | Shuffle seed ->
      let h =
        let open Int64 in
        mix64
          (add
             (mul (of_int time) 0x9e3779b97f4a7c15L)
             (add (mul (of_int seq) 0xd1b54a32d192ed03L) (of_int seed)))
      in
      Int64.to_int h land max_int

let create ?(seed = 42) ?(tiebreak = Fifo) () =
  {
    now = 0;
    seq = 0;
    running = false;
    stop_requested = false;
    executed = 0;
    busy = 0;
    waiters = 0;
    tiebreak;
    queue = Heap.create ~cmp:compare_events ();
    rng = Rng.create ~seed;
  }

let now t = t.now
let rng t = t.rng
let tiebreak t = t.tiebreak

let schedule_at ?(daemon = false) t ~time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.now);
  let tie = tie_for t.tiebreak ~time ~seq:t.seq in
  let ev = { time; seq = t.seq; tie; fn; daemon; cancelled = false } in
  t.seq <- t.seq + 1;
  if not daemon then t.busy <- t.busy + 1;
  Heap.push t.queue ev;
  ev

let schedule ?daemon t ~after fn =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?daemon t ~time:(t.now + after) fn

let incr_waiters t = t.waiters <- t.waiters + 1
let decr_waiters t = t.waiters <- t.waiters - 1
let busy t = t.busy + t.waiters

let cancel ev = ev.cancelled <- true

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested

(* Cancelled events stay in the heap until their time comes (cancel is O(1),
   a heap delete is not), so count only the live ones. *)
let pending t =
  let n = ref 0 in
  Heap.iter (fun ev -> if not ev.cancelled then incr n) t.queue;
  !n

let executed t = t.executed

let exec t ev =
  t.now <- ev.time;
  if not ev.daemon then t.busy <- t.busy - 1;
  if not ev.cancelled then begin
    t.executed <- t.executed + 1;
    ev.fn ()
  end

let step t =
  if t.stop_requested then false
  else
    match Heap.pop t.queue with
    | None -> false
    | Some ev ->
        exec t ev;
        true

let run ?until t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stop_requested then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
          exec t (Heap.pop_exn t.queue);
          loop ()
  in
  loop ();
  t.running <- false;
  match until with
  | Some u when (not t.stop_requested) && u > t.now -> t.now <- u
  | _ -> ()

let every t ~period ?phase fn =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match phase with None -> period | Some p -> p in
  let rec tick () =
    if (not (stopped t)) && fn () then
      ignore (schedule ~daemon:true t ~after:period tick)
  in
  ignore (schedule ~daemon:true t ~after:first tick)

let run_until_quiet ?(horizon = max_int) t =
  let rec loop () =
    if t.stop_requested || t.busy + t.waiters = 0 then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
          exec t (Heap.pop_exn t.queue);
          loop ()
  in
  loop ()
