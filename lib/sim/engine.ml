type tiebreak = Fifo | Shuffle of int
type sched = Heap | Wheel

(* Events live in the flat structure-of-arrays pool owned by [Wheel];
   handles pack (generation, slot) into one immediate int. Scheduling,
   cancelling and dispatching shuffle integers between the pool, the
   scheduler structure and the batch array — zero words allocated in
   steady state (closures aside, which the caller allocates anyway). *)
type handle = int

type queue = Qheap of int Heap.t | Qwheel of Wheel.t

type t = {
  pool : Wheel.pool;
  mutable now : int;
  mutable next_seq : int;
  mutable running : bool;
  mutable stop_requested : bool;
  mutable executed : int;
  mutable busy : int; (* queued non-daemon live events *)
  mutable waiters : int; (* suspended processes (condition waits) *)
  mutable live : int; (* queued live events, incl. active-batch remainder *)
  mutable cancelled : int; (* tombstones still queued *)
  mutable compactions : int;
  tiebreak : tiebreak;
  queue : queue;
  rng : Rng.t;
  mutable prof : Prof.t;
  mutable observer : (time:int -> unit) option;
  (* Wheel dispatch batch: the same-instant event list currently being
     executed, as slot indices. [batch_pos < batch_len] means active;
     entries before [batch_pos] are already dispatched (stale). *)
  mutable batch : int array;
  mutable scratch : int array; (* merge-sort spare, grown with batch *)
  mutable batch_len : int;
  mutable batch_pos : int;
  mutable batch_time : int;
}

(* The scheduler used by [create] when [?sched] is omitted. A ref (not
   a parameter threaded through every call site) so the CLI's [--sched]
   flag reaches engines built deep inside workload constructors. *)
let default_sched = ref Wheel

let sched_of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

let sched_label = function Heap -> "heap" | Wheel -> "wheel"

(* Test hook: skip the Shuffle batch sort, re-introducing the ordering
   bug the QCheck equivalence suite and the cross-scheduler fuzz
   differential must both catch. Never set outside those tests. *)
let debug_no_batch_sort = ref false

(* splitmix64 finalizer: good avalanche, so (seed, time, seq) triples map to
   effectively independent tie keys. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* With [Fifo] every event gets the same key, so comparison falls through to
   [seq]: exact scheduling order, the historical behaviour. With [Shuffle]
   same-instant events get pseudo-random relative order, deterministic in
   (shuffle seed, time, seq) — a perturbed but replayable serialization of
   logically concurrent events. *)
let tie_for policy ~time ~seq =
  match policy with
  | Fifo -> 0
  | Shuffle seed ->
      let h =
        let open Int64 in
        mix64
          (add
             (mul (of_int time) 0x9e3779b97f4a7c15L)
             (add (mul (of_int seq) 0xd1b54a32d192ed03L) (of_int seed)))
      in
      Int64.to_int h land max_int

let create ?(seed = 42) ?(tiebreak = Fifo) ?sched () =
  let sched = match sched with Some s -> s | None -> !default_sched in
  let pool = Wheel.create_pool () in
  let queue =
    match sched with
    | Heap -> Qheap (Heap.create ~cmp:(Wheel.slot_cmp pool) ())
    | Wheel -> Qwheel (Wheel.create pool)
  in
  {
    pool;
    now = 0;
    next_seq = 0;
    running = false;
    stop_requested = false;
    executed = 0;
    busy = 0;
    waiters = 0;
    live = 0;
    cancelled = 0;
    compactions = 0;
    tiebreak;
    queue;
    rng = Rng.create ~seed;
    prof = Prof.null;
    observer = None;
    batch = [||];
    scratch = [||];
    batch_len = 0;
    batch_pos = 0;
    batch_time = 0;
  }

let now t = t.now
let rng t = t.rng
let tiebreak t = t.tiebreak
let sched t = match t.queue with Qheap _ -> Heap | Qwheel _ -> Wheel
let prof t = t.prof
let set_prof t prof = t.prof <- prof
let set_observer t obs = t.observer <- obs

let batch_active t = t.batch_pos < t.batch_len

let grow_batch t n =
  let cap = max n (max 64 (2 * Array.length t.batch)) in
  let b = Array.make cap 0 in
  Array.blit t.batch 0 b 0 t.batch_len;
  t.batch <- b

(* "a dispatches before b" among same-instant events: (tie, seq)
   ascending. Total because seqs are unique. *)
let slot_before p a b =
  let ka = p.Wheel.ties.(a) and kb = p.Wheel.ties.(b) in
  if ka <> kb then ka < kb else p.Wheel.seqs.(a) < p.Wheel.seqs.(b)

(* Bottom-up merge sort of batch.(0..n-1) by (tie, seq), allocation-free
   once [scratch] has grown to match the batch array. The extracted
   bucket list is already seq-sorted, so Fifo batches skip this. *)
let sort_batch t n =
  let p = t.pool in
  if Array.length t.scratch < n then t.scratch <- Array.make (Array.length t.batch) 0;
  let src = ref t.batch and dst = ref t.scratch in
  let width = ref 1 in
  while !width < n do
    let i = ref 0 in
    while !i < n do
      let lo = !i in
      let mid = min (lo + !width) n in
      let hi = min (lo + (2 * !width)) n in
      let a = ref lo and b = ref mid and k = ref lo in
      while !a < mid && !b < hi do
        if slot_before p !src.(!a) !src.(!b) then begin
          !dst.(!k) <- !src.(!a);
          incr a
        end
        else begin
          !dst.(!k) <- !src.(!b);
          incr b
        end;
        incr k
      done;
      while !a < mid do
        !dst.(!k) <- !src.(!a);
        incr a;
        incr k
      done;
      while !b < hi do
        !dst.(!k) <- !src.(!b);
        incr b;
        incr k
      done;
      i := hi
    done;
    let tmp = !src in
    src := !dst;
    dst := tmp;
    width := 2 * !width
  done;
  if !src != t.batch then Array.blit !src 0 t.batch 0 n

(* A schedule landing on the instant currently being dispatched must
   join the active batch exactly where the heap would have popped it:
   after every already-run event, ordered by (tie, seq) among the rest.
   Under Fifo the new event has the highest seq, so that is the end;
   under Shuffle its random tie key places it anywhere in the
   undispatched suffix — binary search + shift. *)
let batch_insert t s =
  if t.batch_len >= Array.length t.batch then grow_batch t (t.batch_len + 1);
  (match t.tiebreak with
  | Shuffle _ when not !debug_no_batch_sort ->
      let lo = ref t.batch_pos and hi = ref t.batch_len in
      while !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        if slot_before t.pool t.batch.(mid) s then lo := mid + 1 else hi := mid
      done;
      Array.blit t.batch !lo t.batch (!lo + 1) (t.batch_len - !lo);
      t.batch.(!lo) <- s
  | _ -> t.batch.(t.batch_len) <- s);
  t.batch_len <- t.batch_len + 1

let schedule_at ?(daemon = false) t ~time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.now);
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_schedule;
  let p = t.pool in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = Wheel.alloc_slot p in
  p.Wheel.times.(s) <- time;
  p.Wheel.ties.(s) <- tie_for t.tiebreak ~time ~seq;
  p.Wheel.seqs.(s) <- seq;
  p.Wheel.flags.(s) <-
    (if daemon then Wheel.flag_live lor Wheel.flag_daemon else Wheel.flag_live);
  p.Wheel.fns.(s) <- fn;
  if not daemon then t.busy <- t.busy + 1;
  t.live <- t.live + 1;
  let h = (p.Wheel.gens.(s) lsl Wheel.slot_bits) lor s in
  (match t.queue with
  | Qheap heap -> Heap.push heap s
  | Qwheel w ->
      if batch_active t && time = t.batch_time then batch_insert t s
      else Wheel.add w s);
  Prof.exit t.prof Prof.Span.Engine_schedule;
  h

let schedule ?daemon t ~after fn =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?daemon t ~time:(t.now + after) fn

let incr_waiters t = t.waiters <- t.waiters + 1
let decr_waiters t = t.waiters <- t.waiters - 1
let busy t = t.busy + t.waiters

(* A cancelled event stops counting as live work immediately; its slot
   stays queued as a tombstone (cancel is O(1), a targeted delete from
   either scheduler is not). When tombstones outnumber live events the
   queue is compacted in one O(n) pass, so cancel-heavy fault plans
   cannot grow it without bound. *)
let compact t =
  let p = t.pool in
  let keep s = p.Wheel.flags.(s) land Wheel.flag_live <> 0 in
  (match t.queue with
  | Qheap heap ->
      (* Collect before freeing: a freed slot could be re-allocated into
         this same heap while the sweep is still walking it. *)
      let dead = ref [] in
      Heap.iter (fun s -> if not (keep s) then dead := s :: !dead) heap;
      if !dead <> [] then begin
        Heap.filter_in_place keep heap;
        List.iter (Wheel.free_slot p) !dead
      end
  | Qwheel w ->
      Wheel.purge w ~keep ~drop:(Wheel.free_slot p);
      (* The undispatched suffix of the active batch holds tombstones
         the wheel no longer knows about. *)
      let j = ref t.batch_pos in
      for i = t.batch_pos to t.batch_len - 1 do
        let s = t.batch.(i) in
        if keep s then begin
          t.batch.(!j) <- s;
          incr j
        end
        else Wheel.free_slot p s
      done;
      t.batch_len <- !j);
  t.cancelled <- 0;
  t.compactions <- t.compactions + 1

let cancel t h =
  let s = h land Wheel.slot_mask in
  let gen = h lsr Wheel.slot_bits in
  let p = t.pool in
  if
    s < p.Wheel.cap
    && p.Wheel.gens.(s) = gen
    && p.Wheel.flags.(s) land Wheel.flag_live <> 0
  then begin
    if p.Wheel.flags.(s) land Wheel.flag_daemon = 0 then t.busy <- t.busy - 1;
    p.Wheel.flags.(s) <- p.Wheel.flags.(s) land lnot Wheel.flag_live;
    t.live <- t.live - 1;
    t.cancelled <- t.cancelled + 1;
    if t.cancelled >= 32 && 2 * t.cancelled > t.live + t.cancelled then
      compact t
  end

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested
let pending t = t.live
let executed t = t.executed
let compactions t = t.compactions

let wheel_occupancy t =
  match t.queue with
  | Qwheel w -> Wheel.occupancy w
  | Qheap heap -> Heap.length heap

let cascades t = match t.queue with Qwheel w -> Wheel.cascades w | Qheap _ -> 0
let spills t = match t.queue with Qwheel w -> Wheel.spills w | Qheap _ -> 0

let exec_slot t s =
  let p = t.pool in
  let time = p.Wheel.times.(s) in
  let daemon = p.Wheel.flags.(s) land Wheel.flag_daemon <> 0 in
  let fn = p.Wheel.fns.(s) in
  (* Free before running: the handler often re-schedules (ticks,
     reschedule loops) and can then recycle this very slot. The bumped
     generation makes a late [cancel] on our handle a stale no-op. *)
  Wheel.free_slot p s;
  t.now <- time;
  if not daemon then t.busy <- t.busy - 1;
  t.live <- t.live - 1;
  t.executed <- t.executed + 1;
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_dispatch;
  fn ();
  Prof.exit t.prof Prof.Span.Engine_dispatch;
  (* Observation only, after the event ran: the observer consumes no
     seq numbers and schedules nothing, so a run with one installed is
     event-for-event identical to a run without. *)
  match t.observer with None -> () | Some f -> f ~time

let free_tombstone t s =
  t.cancelled <- t.cancelled - 1;
  Wheel.free_slot t.pool s

(* Extract the next same-instant bucket into the batch array, dropping
   tombstones and applying the Shuffle tie-break sort. Returns false
   when nothing is pending at or before [horizon]. A false return
   leaves the queue untouched: the horizon peek happens before any
   extraction, so a bucket is never half-dispatched across [run]
   boundaries with different horizons. *)
let load_batch t w ~horizon =
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_wheel_advance;
  let tnext = Wheel.peek_time w in
  Prof.exit t.prof Prof.Span.Engine_wheel_advance;
  (* [tnext = max_int] is the empty queue; the explicit test matters
     when [horizon] is itself max_int. *)
  if tnext = max_int || tnext > horizon then false
  else begin
    Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_bucket_drain;
    let p = t.pool in
    t.batch_pos <- 0;
    t.batch_len <- 0;
    t.batch_time <- tnext;
    let cur = ref (Wheel.pop_bucket w) in
    while !cur >= 0 do
      let nx = p.Wheel.nexts.(!cur) in
      if p.Wheel.flags.(!cur) land Wheel.flag_live <> 0 then begin
        if t.batch_len >= Array.length t.batch then grow_batch t (t.batch_len + 1);
        t.batch.(t.batch_len) <- !cur;
        t.batch_len <- t.batch_len + 1
      end
      else free_tombstone t !cur;
      cur := nx
    done;
    (match t.tiebreak with
    | Shuffle _ when t.batch_len > 1 && not !debug_no_batch_sort ->
        sort_batch t t.batch_len
    | _ -> ());
    Prof.exit t.prof Prof.Span.Engine_bucket_drain;
    true
  end

(* Dispatch loop, wheel flavour. [quiet] is the run_until_quiet
   condition: stop once no non-daemon work remains. The batch left by a
   prior [step]/[stop] resumes first; its instant may postdate a
   shorter new horizon, in which case it stays queued untouched. *)
let wheel_run t w ~horizon ~quiet =
  let running = ref true in
  while !running do
    if t.stop_requested || (quiet && t.busy + t.waiters = 0) then
      running := false
    else if batch_active t then begin
      if t.batch_time > horizon then running := false
      else begin
        let s = t.batch.(t.batch_pos) in
        t.batch_pos <- t.batch_pos + 1;
        if t.pool.Wheel.flags.(s) land Wheel.flag_live <> 0 then exec_slot t s
        else free_tombstone t s
      end
    end
    else if not (load_batch t w ~horizon) then running := false
  done

let heap_pop_profiled t heap =
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_heap_pop;
  let s = Heap.pop_exn heap in
  Prof.exit t.prof Prof.Span.Engine_heap_pop;
  s

let heap_run t heap ~horizon ~quiet =
  let running = ref true in
  while !running do
    if
      t.stop_requested
      || (quiet && t.busy + t.waiters = 0)
      || Heap.is_empty heap
    then running := false
    else if t.pool.Wheel.times.(Heap.peek_exn heap) > horizon then
      running := false
    else begin
      let s = heap_pop_profiled t heap in
      if t.pool.Wheel.flags.(s) land Wheel.flag_live <> 0 then exec_slot t s
      else free_tombstone t s
    end
  done

let run ?until t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  (match t.queue with
  | Qheap heap -> heap_run t heap ~horizon ~quiet:false
  | Qwheel w -> wheel_run t w ~horizon ~quiet:false);
  t.running <- false;
  match until with
  | Some u when (not t.stop_requested) && u > t.now -> t.now <- u
  | _ -> ()

let run_until_quiet ?(horizon = max_int) t =
  match t.queue with
  | Qheap heap -> heap_run t heap ~horizon ~quiet:true
  | Qwheel w -> wheel_run t w ~horizon ~quiet:true

(* Execute the single next live event, silently reaping any tombstones
   queued ahead of it. *)
let step t =
  if t.stop_requested then false
  else
    match t.queue with
    | Qheap heap ->
        let rec go () =
          if Heap.is_empty heap then false
          else begin
            let s = heap_pop_profiled t heap in
            if t.pool.Wheel.flags.(s) land Wheel.flag_live <> 0 then begin
              exec_slot t s;
              true
            end
            else begin
              free_tombstone t s;
              go ()
            end
          end
        in
        go ()
    | Qwheel w ->
        let rec go () =
          if batch_active t then begin
            let s = t.batch.(t.batch_pos) in
            t.batch_pos <- t.batch_pos + 1;
            if t.pool.Wheel.flags.(s) land Wheel.flag_live <> 0 then begin
              exec_slot t s;
              true
            end
            else begin
              free_tombstone t s;
              go ()
            end
          end
          else if load_batch t w ~horizon:max_int then go ()
          else false
        in
        go ()

let every t ~period ?phase fn =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match phase with None -> period | Some p -> p in
  let rec tick () =
    if (not (stopped t)) && fn () then
      ignore (schedule ~daemon:true t ~after:period tick)
  in
  ignore (schedule ~daemon:true t ~after:first tick)
