type tiebreak = Fifo | Shuffle of int

type state = Queued | Cancelled | Done

type event = {
  time : int;
  seq : int;
  tie : int;
  fn : unit -> unit;
  daemon : bool;
  mutable state : state;
  owner : t;
}

and t = {
  mutable now : int;
  mutable next_seq : int;
  mutable running : bool;
  mutable stop_requested : bool;
  mutable executed : int;
  mutable busy : int; (* queued non-daemon events *)
  mutable waiters : int; (* suspended processes (condition waits) *)
  mutable cancelled_pending : int; (* tombstones still in the queue *)
  mutable compactions : int;
  tiebreak : tiebreak;
  queue : event Heap.t;
  rng : Rng.t;
  mutable prof : Prof.t;
  mutable observer : (time:int -> unit) option;
}

type handle = event

(* The hottest comparison in the simulator: every heap sift goes through
   here. Monomorphic int tests compile to straight-line machine code;
   the polymorphic [compare] they replace was a C call per field. *)
let compare_events a b =
  if a.time <> b.time then if a.time < b.time then -1 else 1
  else if a.tie <> b.tie then if a.tie < b.tie then -1 else 1
  else if a.seq < b.seq then -1
  else if a.seq > b.seq then 1
  else 0

(* splitmix64 finalizer: good avalanche, so (seed, time, seq) triples map to
   effectively independent tie keys. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* With [Fifo] every event gets the same key, so comparison falls through to
   [seq]: exact scheduling order, the historical behaviour. With [Shuffle]
   same-instant events get pseudo-random relative order, deterministic in
   (shuffle seed, time, seq) — a perturbed but replayable serialization of
   logically concurrent events. *)
let tie_for policy ~time ~seq =
  match policy with
  | Fifo -> 0
  | Shuffle seed ->
      let h =
        let open Int64 in
        mix64
          (add
             (mul (of_int time) 0x9e3779b97f4a7c15L)
             (add (mul (of_int seq) 0xd1b54a32d192ed03L) (of_int seed)))
      in
      Int64.to_int h land max_int

let create ?(seed = 42) ?(tiebreak = Fifo) () =
  {
    now = 0;
    next_seq = 0;
    running = false;
    stop_requested = false;
    executed = 0;
    busy = 0;
    waiters = 0;
    cancelled_pending = 0;
    compactions = 0;
    tiebreak;
    queue = Heap.create ~cmp:compare_events ();
    rng = Rng.create ~seed;
    prof = Prof.null;
    observer = None;
  }

let now t = t.now
let rng t = t.rng
let tiebreak t = t.tiebreak
let prof t = t.prof
let set_prof t prof = t.prof <- prof
let set_observer t obs = t.observer <- obs

let schedule_at ?(daemon = false) t ~time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.now);
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_schedule;
  let tie = tie_for t.tiebreak ~time ~seq:t.next_seq in
  let ev =
    { time; seq = t.next_seq; tie; fn; daemon; state = Queued; owner = t }
  in
  t.next_seq <- t.next_seq + 1;
  if not daemon then t.busy <- t.busy + 1;
  Heap.push t.queue ev;
  Prof.exit t.prof Prof.Span.Engine_schedule;
  ev

let schedule ?daemon t ~after fn =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?daemon t ~time:(t.now + after) fn

let incr_waiters t = t.waiters <- t.waiters + 1
let decr_waiters t = t.waiters <- t.waiters - 1
let busy t = t.busy + t.waiters

(* A cancelled event stops counting as live work immediately; its record
   stays in the heap as a tombstone (cancel is O(1), a heap delete is
   not). When tombstones outnumber live events the queue is compacted in
   one O(n) pass, so cancel-heavy fault plans cannot grow it without
   bound. *)
let compact t =
  Heap.filter_in_place (fun ev -> ev.state = Queued) t.queue;
  t.cancelled_pending <- 0;
  t.compactions <- t.compactions + 1

let cancel ev =
  if ev.state = Queued then begin
    let t = ev.owner in
    ev.state <- Cancelled;
    if not ev.daemon then t.busy <- t.busy - 1;
    t.cancelled_pending <- t.cancelled_pending + 1;
    if
      t.cancelled_pending >= 32
      && 2 * t.cancelled_pending > Heap.length t.queue
    then compact t
  end

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested

let pending t = Heap.length t.queue - t.cancelled_pending
let executed t = t.executed
let compactions t = t.compactions

let exec t ev =
  t.now <- ev.time;
  match ev.state with
  | Cancelled -> t.cancelled_pending <- t.cancelled_pending - 1
  | Done -> assert false
  | Queued ->
      ev.state <- Done;
      if not ev.daemon then t.busy <- t.busy - 1;
      t.executed <- t.executed + 1;
      Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_dispatch;
      ev.fn ();
      Prof.exit t.prof Prof.Span.Engine_dispatch;
      (* Observation only, after the event ran: the observer consumes no
         seq numbers and schedules nothing, so a run with one installed is
         event-for-event identical to a run without. *)
      (match t.observer with None -> () | Some f -> f ~time:ev.time)

let pop_profiled t =
  Prof.enter t.prof ~cpu:(-1) Prof.Span.Engine_heap_pop;
  let ev = Heap.pop_exn t.queue in
  Prof.exit t.prof Prof.Span.Engine_heap_pop;
  ev

let step t =
  if t.stop_requested || Heap.is_empty t.queue then false
  else begin
    exec t (pop_profiled t);
    true
  end

let run ?until t =
  t.running <- true;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stop_requested || Heap.is_empty t.queue then ()
    else if (Heap.peek_exn t.queue).time > horizon then ()
    else begin
      exec t (pop_profiled t);
      loop ()
    end
  in
  loop ();
  t.running <- false;
  match until with
  | Some u when (not t.stop_requested) && u > t.now -> t.now <- u
  | _ -> ()

let every t ~period ?phase fn =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match phase with None -> period | Some p -> p in
  let rec tick () =
    if (not (stopped t)) && fn () then
      ignore (schedule ~daemon:true t ~after:period tick)
  in
  ignore (schedule ~daemon:true t ~after:first tick)

let run_until_quiet ?(horizon = max_int) t =
  let rec loop () =
    if t.stop_requested || t.busy + t.waiters = 0 || Heap.is_empty t.queue
    then ()
    else if (Heap.peek_exn t.queue).time > horizon then ()
    else begin
      exec t (pop_profiled t);
      loop ()
    end
  in
  loop ()
