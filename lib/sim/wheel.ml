(* Hierarchical timer wheel (Varghese-Lauck) over flat event slots.

   The engine's hot-path event representation is a structure-of-arrays
   pool: every event is an integer slot indexing parallel int arrays
   (time, tie key, sequence number, intrusive next link, flags,
   generation) plus one closure array. Scheduling, cancelling and
   dispatching move integers between singly-linked bucket lists — zero
   words allocated in steady state.

   Geometry: three levels of 2^16 one-nanosecond-grained buckets.
   Level 0 spans 65 us of virtual time at single-instant resolution
   (one bucket = one nanosecond = one dispatch batch); level 1 buckets
   span 65 us each (4.3 s total); level 2 buckets span 4.3 s each
   (78 h total). Events beyond the 2^48 ns horizon spill into a small
   (time, tie, seq)-ordered heap that refills the wheel as the cursor
   approaches. An event placed at level l+1 cascades one level down
   when the cursor reaches its bucket's start — at most [levels - 1]
   extra touches per event, and none at all for the dominant
   sub-65 us scheduling distances of the simulated workloads.

   Placement uses the classic xor rule: an event at absolute time T
   goes to the level of the highest 16-bit chunk in which T differs
   from the cursor [wnow]. This guarantees that, at every level, any
   occupied bucket index is >= the cursor's index at that level (a
   smaller index would imply a carry into a higher chunk, which the
   rule would have sent one level up), so the per-level occupancy
   bitmaps only ever need scanning from the cursor towards the end.

   Ordering invariant: bucket lists are stored in prepend order.
   Direct schedules carry monotonically increasing sequence numbers,
   and a cascade re-places a bucket's events in ascending-seq order
   before any later (higher-seq) schedule can reach the same target
   window — so reversing a list at extraction always yields ascending
   seq, which is exactly FIFO dispatch order for same-instant events.
   The Shuffle tie-break re-sorts the extracted batch by (tie, seq)
   in the engine, so list order only has to be correct for Fifo.

   Events scheduled below the cursor ("front" events) exist only in
   one situation: [run ~until] peeked past the last dispatched batch
   (advancing [wnow] to the next event's instant), returned at the
   horizon, and the caller then scheduled into the gap. Those go to a
   small (time, tie, seq) heap consulted before the wheel; its
   entries are strictly earlier than every wheel event, so the two
   never interleave within an instant. *)

type pool = {
  mutable times : int array;
  mutable ties : int array;
  mutable seqs : int array;
  mutable nexts : int array;  (* free list and bucket chains share this *)
  mutable flags : int array;
  mutable gens : int array;
  mutable fns : (unit -> unit) array;
  mutable free : int;  (* free-list head; -1 = exhausted *)
  mutable cap : int;
}

let flag_daemon = 1
let flag_live = 2

(* Handles pack (generation, slot) into one int; 25 slot bits bound the
   pool at 33M concurrently scheduled events, far beyond any workload. *)
let slot_bits = 25
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl 36) - 1

let dummy_fn = ignore

let create_pool () =
  {
    times = [||];
    ties = [||];
    seqs = [||];
    nexts = [||];
    flags = [||];
    gens = [||];
    fns = [||];
    free = -1;
    cap = 0;
  }

let grow_pool p =
  let cap' = if p.cap = 0 then 1024 else p.cap * 2 in
  if cap' > slot_mask + 1 then
    failwith "Sim.Wheel: event pool exceeds 2^25 slots";
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 p.cap;
    a'
  in
  p.times <- extend p.times 0;
  p.ties <- extend p.ties 0;
  p.seqs <- extend p.seqs 0;
  p.nexts <- extend p.nexts (-1);
  p.flags <- extend p.flags 0;
  p.gens <- extend p.gens 0;
  p.fns <- extend p.fns dummy_fn;
  (* Chain the new slots so the free list pops ascending indices. *)
  for i = cap' - 1 downto p.cap do
    p.nexts.(i) <- p.free;
    p.free <- i
  done;
  p.cap <- cap'

let alloc_slot p =
  if p.free < 0 then grow_pool p;
  let s = p.free in
  p.free <- p.nexts.(s);
  s

(* Bump the generation so stale handles to this slot stop matching, and
   drop the closure so the GC can reclaim its environment. *)
let free_slot p s =
  p.fns.(s) <- dummy_fn;
  p.flags.(s) <- 0;
  p.gens.(s) <- (p.gens.(s) + 1) land gen_mask;
  p.nexts.(s) <- p.free;
  p.free <- s

(* ------------------------------------------------------------------ *)

let bits = 16
let size = 1 lsl bits
let mask = size - 1
let levels = 3
let horizon_bits = bits * levels (* beyond this xor distance: overflow *)

(* Occupancy bitmaps use 32-bit words (OCaml ints are 63-bit; 32 keeps
   the de Bruijn ctz trick exact) with a second summary level so a scan
   over an empty wheel touches ~2x64 words, not 2048. *)
let words = size lsr 5
let sum_words = words lsr 5

let debruijn32 = 0x077CB531

let ctz_table =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.(((debruijn32 lsl i) land 0xFFFFFFFF) lsr 27) <- i
  done;
  t

(* Index of the lowest set bit of a non-zero 32-bit value. *)
let ctz v = ctz_table.((((v land -v) * debruijn32) land 0xFFFFFFFF) lsr 27)

type t = {
  pool : pool;
  heads : int array array;  (* [levels][size] bucket list heads, -1 empty *)
  bitmaps : int array array;  (* [levels][words] 32-bit occupancy words *)
  summaries : int array array;  (* [levels][sum_words] word-occupancy *)
  mutable wnow : int;
      (* Cursor: <= every event in the wheel and overflow; > every event
         in the front heap. Advances to each extracted instant. *)
  overflow : int Heap.t;  (* out-of-horizon spills, (time,tie,seq) order *)
  front : int Heap.t;  (* below-cursor events, (time,tie,seq) order *)
  mutable occupancy : int;  (* events held (wheel + overflow + front) *)
  mutable cascades : int;  (* buckets cascaded down a level *)
  mutable spills : int;  (* events that ever hit the overflow heap *)
}

let slot_cmp pool a b =
  let ta = pool.times.(a) and tb = pool.times.(b) in
  if ta <> tb then if ta < tb then -1 else 1
  else
    let ka = pool.ties.(a) and kb = pool.ties.(b) in
    if ka <> kb then if ka < kb then -1 else 1
    else if pool.seqs.(a) < pool.seqs.(b) then -1
    else 1 (* seqs are unique: never equal *)

let create pool =
  {
    pool;
    heads = Array.init levels (fun _ -> Array.make size (-1));
    bitmaps = Array.init levels (fun _ -> Array.make words 0);
    summaries = Array.init levels (fun _ -> Array.make sum_words 0);
    wnow = 0;
    overflow = Heap.create ~cmp:(slot_cmp pool) ();
    front = Heap.create ~cmp:(slot_cmp pool) ();
    occupancy = 0;
    cascades = 0;
    spills = 0;
  }

let wnow w = w.wnow
let occupancy w = w.occupancy
let cascades w = w.cascades
let spills w = w.spills

let set_bit w l idx =
  let wi = idx lsr 5 in
  w.bitmaps.(l).(wi) <- w.bitmaps.(l).(wi) lor (1 lsl (idx land 31));
  let si = wi lsr 5 in
  w.summaries.(l).(si) <- w.summaries.(l).(si) lor (1 lsl (wi land 31))

let clear_bit w l idx =
  let bm = w.bitmaps.(l) in
  let wi = idx lsr 5 in
  let v = bm.(wi) land lnot (1 lsl (idx land 31)) in
  bm.(wi) <- v;
  if v = 0 then begin
    let sm = w.summaries.(l) in
    let si = wi lsr 5 in
    sm.(si) <- sm.(si) land lnot (1 lsl (wi land 31))
  end

(* Hot-path functions below are written with top-level recursion and no
   tuple/variant returns: the steady-state schedule/dispatch cycle must
   allocate zero words, and inner [let rec] closures or constructed
   results would each cost a minor-heap block per event. *)

(* Scan summary words of [bm]/[sm] from word index [si*32 + bit]; -1 or
   the smallest set bucket index. *)
let rec scan_summary bm sm si bit =
  if si >= sum_words then -1
  else
    let sv = sm.(si) land (-1 lsl bit) land 0xFFFFFFFF in
    if sv = 0 then scan_summary bm sm (si + 1) 0
    else
      let wj = (si lsl 5) lor ctz sv in
      (* summaries are exact: bm.(wj) <> 0 here *)
      (wj lsl 5) lor ctz bm.(wj)

(* Smallest occupied bucket index >= [from] at level [l], or -1. The
   placement rule guarantees nothing lives below the cursor's index, so
   a forward scan is complete. *)
let find_next w l from =
  if from >= size then -1
  else begin
    let bm = w.bitmaps.(l) and sm = w.summaries.(l) in
    let wi = from lsr 5 in
    let m = bm.(wi) land (-1 lsl (from land 31)) in
    if m <> 0 then (wi lsl 5) lor ctz (m land 0xFFFFFFFF)
    else scan_summary bm sm ((wi + 1) lsr 5) ((wi + 1) land 31)
  end

let insert w l idx slot =
  let h = w.heads.(l) in
  w.pool.nexts.(slot) <- h.(idx);
  h.(idx) <- slot;
  if w.pool.nexts.(slot) < 0 then set_bit w l idx

(* Place [slot] by its absolute time. Requires the engine invariant
   time >= engine now; times below the cursor go to the front heap. *)
let add w slot =
  let time = w.pool.times.(slot) in
  if time < w.wnow then Heap.push w.front slot
  else begin
    let d = time lxor w.wnow in
    if d < 1 lsl bits then insert w 0 (time land mask) slot
    else if d < 1 lsl (2 * bits) then
      insert w 1 ((time lsr bits) land mask) slot
    else if d < 1 lsl horizon_bits then
      insert w 2 ((time lsr (2 * bits)) land mask) slot
    else begin
      Heap.push w.overflow slot;
      w.spills <- w.spills + 1
    end
  end;
  w.occupancy <- w.occupancy + 1

let take_bucket w l idx =
  let h = w.heads.(l).(idx) in
  w.heads.(l).(idx) <- -1;
  clear_bit w l idx;
  h

(* In-place reversal: prepend-order list -> ascending-seq list. Counts
   the detached nodes out of [occupancy] as it goes (every caller is
   removing them from the wheel). *)
let reverse_list w head =
  let pool = w.pool in
  let prev = ref (-1) in
  let cur = ref head in
  while !cur >= 0 do
    let nx = pool.nexts.(!cur) in
    pool.nexts.(!cur) <- !prev;
    prev := !cur;
    cur := nx;
    w.occupancy <- w.occupancy - 1
  done;
  !prev

(* Pull overflow events that now fit under the wheel horizon. Uses the
   same xor criterion as [add] so a pulled event can never bounce back. *)
let rec drain_overflow w =
  if not (Heap.is_empty w.overflow) then begin
    let s = Heap.peek_exn w.overflow in
    if w.pool.times.(s) lxor w.wnow < 1 lsl horizon_bits then begin
      ignore (Heap.pop_exn w.overflow);
      w.occupancy <- w.occupancy - 1;
      add w s;
      drain_overflow w
    end
  end

(* Move bucket (l, idx) starting at absolute time [base] down one level.
   Advancing the cursor to [base] first is safe — the bucket was chosen
   as the earliest occupied position, so no event lives before [base] —
   and makes the xor re-placement land each event at the right lower
   level. Re-adding in ascending-seq order keeps every target bucket in
   prepend order. *)
let cascade w l idx base =
  w.wnow <- base;
  let head = reverse_list w (take_bucket w l idx) in
  let cur = ref head in
  while !cur >= 0 do
    let nx = w.pool.nexts.(!cur) in
    add w !cur;
    cur := nx
  done;
  w.cascades <- w.cascades + 1

(* Resolve the earliest pending instant, cascading upper-level buckets
   and refilling from overflow as needed. Int-coded result (the variant
   a clean API would return is a minor-heap block per dispatch):
   [front_code] = front heap non-empty (its events predate everything
   in the wheel), [max_int] = nothing pending, any other value = the
   instant, with the cursor advanced to it and its bucket at level 0. *)
let front_code = -1

let rec settle w =
  if not (Heap.is_empty w.front) then front_code
  else begin
    drain_overflow w;
    let i0 = find_next w 0 (w.wnow land mask) in
    if i0 >= 0 then begin
      let instant = w.wnow land lnot mask lor i0 in
      w.wnow <- instant;
      instant
    end
    else begin
      let i1 = find_next w 1 ((w.wnow lsr bits) land mask) in
      if i1 >= 0 then begin
        let base = w.wnow land lnot ((1 lsl (2 * bits)) - 1) lor (i1 lsl bits) in
        cascade w 1 i1 base;
        settle w
      end
      else begin
        let i2 = find_next w 2 ((w.wnow lsr (2 * bits)) land mask) in
        if i2 >= 0 then begin
          let base =
            w.wnow land lnot ((1 lsl horizon_bits) - 1) lor (i2 lsl (2 * bits))
          in
          cascade w 2 i2 base;
          settle w
        end
        else if not (Heap.is_empty w.overflow) then begin
          (* Wheel empty: jump the cursor to the overflow minimum (no
             event precedes it) and let the horizon check pull it in. *)
          w.wnow <- w.pool.times.(Heap.peek_exn w.overflow);
          drain_overflow w;
          settle w
        end
        else max_int
      end
    end
  end

let is_empty w = w.occupancy = 0

(* Earliest pending event time, or max_int. May cascade and advance the
   cursor (observably pure: placement and dispatch order are unchanged). *)
let peek_time w =
  let r = settle w in
  if r = front_code then w.pool.times.(Heap.peek_exn w.front) else r

(* Detach the earliest same-instant event list, ascending-seq-linked via
   [nexts]; -1 when nothing is pending. Advances the cursor to the
   extracted instant (wheel case). *)
let pop_bucket w =
  let r = settle w in
  if r = max_int then -1
  else if r <> front_code then reverse_list w (take_bucket w 0 (r land mask))
  else begin
      (* Pops come out in (time, tie, seq) order; collect the equal-time
         prefix. For Fifo (all ties 0) that is ascending seq; Shuffle
         batches are re-sorted by the engine anyway. *)
      let t0 = w.pool.times.(Heap.peek_exn w.front) in
      let head = Heap.pop_exn w.front in
      w.occupancy <- w.occupancy - 1;
      let tail = ref head in
      let continue = ref true in
      while !continue do
        if Heap.is_empty w.front then continue := false
        else begin
          let s = Heap.peek_exn w.front in
          if w.pool.times.(s) <> t0 then continue := false
          else begin
            ignore (Heap.pop_exn w.front);
            w.occupancy <- w.occupancy - 1;
            w.pool.nexts.(!tail) <- s;
            tail := s
          end
        end
      done;
      w.pool.nexts.(!tail) <- -1;
      head
  end

(* Tombstone compaction support: drop every slot [keep] rejects from the
   bucket lists and both heaps, handing each dropped slot to [drop]
   after it is unlinked. *)
let purge w ~keep ~drop =
  let pool = w.pool in
  let dropped = ref 0 in
  let filter_list head =
    (* Rebuild keeping prepend order. *)
    let kept_head = ref (-1) in
    let kept_tail = ref (-1) in
    let cur = ref head in
    while !cur >= 0 do
      let nx = pool.nexts.(!cur) in
      if keep !cur then begin
        if !kept_tail < 0 then kept_head := !cur
        else pool.nexts.(!kept_tail) <- !cur;
        kept_tail := !cur
      end
      else begin
        incr dropped;
        drop !cur
      end;
      cur := nx
    done;
    if !kept_tail >= 0 then pool.nexts.(!kept_tail) <- -1;
    !kept_head
  in
  for l = 0 to levels - 1 do
    let bm = w.bitmaps.(l) in
    for wi = 0 to words - 1 do
      let m = ref bm.(wi) in
      while !m <> 0 do
        let idx = (wi lsl 5) lor ctz !m in
        m := !m land (!m - 1);
        let head' = filter_list w.heads.(l).(idx) in
        w.heads.(l).(idx) <- head';
        if head' < 0 then clear_bit w l idx
      done
    done
  done;
  let filter_heap h =
    let dead = ref [] in
    Heap.iter (fun s -> if not (keep s) then dead := s :: !dead) h;
    if !dead <> [] then begin
      Heap.filter_in_place keep h;
      List.iter
        (fun s ->
          incr dropped;
          drop s)
        !dead
    end
  in
  filter_heap w.overflow;
  filter_heap w.front;
  w.occupancy <- w.occupancy - !dropped
