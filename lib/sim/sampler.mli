(** Virtual-time metric sampler.

    A sampler polls a set of named sources ([unit -> float]) at a fixed
    virtual period and records each sweep as one row in a bounded ring
    (oldest rows drop on overflow, like the trace event rings). Rows are
    aligned: every source is read at the same virtual instant, so the
    exported series can be compared column against column.

    Sampling events are daemon events: a running sampler never keeps
    {!Engine.run_until_quiet} alive. Export is deterministic — the same
    engine seed, sources and period produce byte-identical CSV/NDJSON. *)

type t

val create : Engine.t -> ?capacity:int -> period_ns:int -> unit -> t
(** [create eng ~period_ns ()] makes an idle sampler. [capacity] bounds
    the number of retained rows (default 4096; oldest drop first).
    Raises [Invalid_argument] if [period_ns] or [capacity] is not
    positive. *)

val add_source : t -> name:string -> ?unit_:string -> (unit -> float) -> unit
(** Register a source column. Must be called before {!start}; raises
    [Invalid_argument] on duplicate names or after starting. *)

val start : t -> unit
(** Begin sampling every [period_ns] (first sweep one period from now).
    Idempotent. *)

val stop : t -> unit
(** Stop future sweeps; retained rows stay readable. *)

val period_ns : t -> int
val source_names : t -> string list
(** In registration order (the CSV column order). *)

val source_units : t -> (string * string) list
(** [(name, unit)] per source, registration order. *)

val rows : t -> int
(** Rows currently retained. *)

val dropped : t -> int
(** Rows evicted by the capacity bound. *)

val to_array : t -> (int * float array) array
(** Retained rows, oldest first: [(time_ns, values)] with one value per
    source in registration order. *)

val series : t -> name:string -> (int * float) array option
(** One source's column as a time series; [None] for unknown names. *)

val to_csv : t -> string
(** Header ["time_ns,<name>,..."] then one row per sweep; floats via
    [%.6g]. *)

val to_ndjson : t -> string
(** One JSON object per line: [{"t":<ns>,"<name>":<value>,...}]. *)
