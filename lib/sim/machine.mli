(** Simulated multi-CPU machine.

    Models the two scheduler facts the paper's mechanisms depend on:

    - {b context switches}: a periodic per-CPU scheduler tick; RCU registers
      a hook and treats a tick outside a read-side critical section as a
      quiescent state (exactly the Linux rule described in the paper, §2.1);
    - {b idle windows}: workloads declare think time as idle; Prudence
      schedules latent-cache pre-flush work there ("idleness is not sloth").

    CPUs also carry a pending-cost accumulator: allocator and RCU code
    charge virtual nanoseconds to the CPU they run on, and the workload
    process periodically drains the accumulator into a {!Process.sleep}, so
    allocator efficiency translates into workload throughput. *)

type cpu = {
  id : int;  (** CPU index, [0 .. nr_cpus-1]. *)
  node : int;  (** NUMA node this CPU belongs to. *)
  mutable pending_ns : int;
      (** Virtual time charged to this CPU and not yet drained. *)
  mutable rcu_nesting : int;
      (** Read-side critical-section depth; ticks in a section are not
          quiescent states. Maintained by the [rcu] library. *)
  mutable idle : bool;  (** Whether the CPU is currently in an idle window. *)
  mutable stalled : bool;
      (** Fault injection: while set, scheduler ticks on this CPU are
          suppressed, so it reports no quiescent states and pins any grace
          period that needs one from it. Off by default. *)
  mutable ctx_switches : int;  (** Context switches observed so far. *)
  mutable suppressed_ticks : int;
      (** Ticks swallowed while [stalled] was set (fault accounting). *)
  mutable idle_work : (unit -> unit) list;
      (** Pending one-shot idle work, in reverse submission order. *)
}

type t
(** The machine: engine + CPUs + tick configuration. *)

val create :
  Engine.t -> cpus:int -> ?nodes:int -> ?tick_ns:int -> unit -> t
(** [create eng ~cpus ~nodes ~tick_ns ()] builds a machine with [cpus] CPUs
    spread round-robin-by-block over [nodes] NUMA nodes (default 1 node;
    default tick 1 ms, i.e. HZ=1000). Ticks start staggered so CPUs do not
    context-switch at the same instant. Call {!start} to begin ticking. *)

val start : t -> unit
(** Start the per-CPU scheduler ticks. Idempotent. *)

val engine : t -> Engine.t
val nr_cpus : t -> int
val nr_nodes : t -> int
val cpu : t -> int -> cpu
(** [cpu t i] is CPU [i]. *)

val cpus : t -> cpu array
val node_of_cpu : t -> int -> int
val tick_ns : t -> int

val on_context_switch : t -> (cpu -> unit) -> unit
(** Register a hook invoked at every context switch (tick outside a
    read-side critical section) with the switching CPU. *)

val tracer : t -> Trace.t
(** The machine's tracer; {!Trace.null} (disabled) unless {!set_tracer}
    was called. Subsystems running on the machine emit their events
    through it. *)

val set_tracer : t -> Trace.t -> unit
(** Install a tracer. The machine emits context-switch and idle-window
    events; RCU and the allocators emit through the same tracer. *)

val prof : t -> Prof.t
(** The machine's profiler; {!Prof.null} (disabled) unless {!set_prof}
    was called. Subsystems running on the machine (RCU, the allocators)
    open their spans through it. *)

val set_prof : t -> Prof.t -> unit
(** Install a profiler on the machine and its engine. *)

val consume : cpu -> int -> unit
(** [consume c ns] charges [ns] of virtual time to [c]. *)

val drain : cpu -> int
(** [drain c] returns and clears the accumulated pending time. *)

val submit_idle : t -> cpu -> (unit -> unit) -> unit
(** [submit_idle t c fn] runs [fn] the next time [c] enters an idle window
    (immediately, if it is idle now). One-shot: resubmit for repetition. *)

val is_idle : cpu -> bool

val idle_sleep : t -> cpu -> int -> unit
(** [idle_sleep t c ns] marks [c] idle, runs queued idle work, suspends the
    calling process for [ns] virtual ns, then marks [c] busy again. Must be
    called from process context. *)
