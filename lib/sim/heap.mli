(** Array-backed min-heap (4-ary) over arbitrary elements.

    Used as the event queue of the simulation {!Engine}; also reusable as a
    generic priority queue. Elements are ordered by the comparison function
    supplied at creation time; ties are broken by insertion order only if the
    caller encodes a sequence number in the element (the engine does). *)

type 'a t
(** A mutable min-heap holding elements of type ['a]. *)

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x] into [h]. Amortized O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the smallest element of [h], without removing it. *)

val peek_exn : 'a t -> 'a
(** Like {!peek} but raises [Invalid_argument] on an empty heap;
    allocation-free. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the smallest element of [h]. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap;
    allocation-free. *)

val clear : 'a t -> unit
(** [clear h] removes every element. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f h] applies [f] to every element in unspecified order. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place keep h] drops every element for which [keep] is
    [false] and re-establishes the heap property bottom-up. O(n),
    allocation-free. The engine uses it to compact cancelled-event
    tombstones out of the event queue. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains [h] and returns its elements smallest-first.
    The heap is empty afterwards. *)
