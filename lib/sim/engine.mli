(** Virtual-time discrete-event engine.

    The engine owns a monotonically increasing virtual clock (nanoseconds)
    and a pending-event scheduler. Events scheduled for the same instant run
    in scheduling order (FIFO), which makes every simulation deterministic
    for a given seed.

    Two scheduler implementations dispatch the exact same event order:

    - {!Wheel} (default): a hierarchical timer wheel (Varghese-Lauck)
      over flat structure-of-arrays event slots — O(1) schedule, batched
      same-instant dispatch, zero allocation in steady state.
    - {!Heap}: the original 4-ary binary-comparison heap, kept for
      differential testing ([--sched=heap]).

    The engine is single-threaded on purpose: the reproduction models a
    64-CPU machine with virtual time rather than real parallelism, which is
    both deterministic and unaffected by OCaml runtime characteristics. *)

type t
(** An engine: clock + event scheduler + root RNG. *)

type handle
(** Cancellation handle for a scheduled event. Generation-tagged: a
    handle to an event that already ran (or was cancelled and its slot
    reused) is stale, and cancelling it is a no-op. *)

type tiebreak =
  | Fifo  (** Same-instant events run in scheduling order (default). *)
  | Shuffle of int
      (** Same-instant events run in a pseudo-random order derived
          deterministically from this shuffle seed (and each event's time
          and sequence number). Events at distinct times are unaffected.
          Used by the [Check] subsystem to sweep perturbed but replayable
          schedules: two runs with the same shuffle seed are identical,
          different seeds explore different serializations of logically
          concurrent events. *)

type sched =
  | Heap  (** Original 4-ary heap scheduler. *)
  | Wheel  (** Hierarchical timer wheel (default). *)

val default_sched : sched ref
(** Scheduler used by {!create} when [?sched] is omitted. [Wheel]
    unless overridden (the CLI's [--sched] flag sets this before any
    engine is built). *)

val sched_of_string : string -> sched option
(** ["heap"] / ["wheel"]. *)

val sched_label : sched -> string

val create : ?seed:int -> ?tiebreak:tiebreak -> ?sched:sched -> unit -> t
(** [create ~seed ()] makes a fresh engine at time 0. Default seed 42,
    default tie-break {!Fifo} (the historical, byte-identical order),
    default scheduler [!default_sched]. *)

val tiebreak : t -> tiebreak
(** The engine's same-instant tie-break policy. *)

val sched : t -> sched
(** The scheduler this engine was built with. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root RNG; subsystems should [Rng.split] it. *)

val prof : t -> Prof.t
(** The engine's profiler; {!Prof.null} (disabled) unless {!set_prof}
    was called. *)

val set_prof : t -> Prof.t -> unit
(** Install a profiler. The engine opens [engine.dispatch] /
    [engine.schedule] spans around event execution and scheduling, plus
    [engine.wheel_advance] / [engine.bucket_drain] (wheel) or
    [engine.heap_pop] (heap) around event extraction. *)

val set_observer : t -> (time:int -> unit) option -> unit
(** Install (or clear) a per-executed-event observer, called with the
    event's virtual time after its handler returns. Pure observation for
    coverage signals: the observer runs outside the scheduling path,
    consumes no sequence numbers, and must not schedule events — so an
    observed run is event-for-event identical to an unobserved one. *)

val schedule : ?daemon:bool -> t -> after:int -> (unit -> unit) -> handle
(** [schedule t ~after fn] runs [fn] at time [now t + after].
    [after] must be non-negative. [daemon] (default false) marks
    housekeeping events (scheduler ticks, samplers) that should not keep
    {!run_until_quiet} alive. *)

val schedule_at : ?daemon:bool -> t -> time:int -> (unit -> unit) -> handle
(** [schedule_at t ~time fn] runs [fn] at absolute [time] (>= [now t]). *)

val cancel : t -> handle -> unit
(** [cancel t h] prevents the event from running if it has not run yet.
    The event immediately stops counting towards {!busy} and {!pending};
    its slot stays queued as a tombstone until its deadline reaps it or
    a compaction sweep drops it (the queue compacts in one O(n) pass
    whenever tombstones outnumber live events, so cancel-heavy fault
    plans cannot grow it without bound). Stale handles — the event
    already ran, or was already cancelled — are ignored. *)

val run : ?until:int -> t -> unit
(** [run ?until t] executes events in time order. Stops when the queue is
    empty, [stop] is called, or the next event is past [until] (absolute
    time). If [until] is given the clock is advanced to [until] on return
    (unless stopped earlier). *)

val step : t -> bool
(** [step t] executes the single next live event; [false] if no live
    event remained or the engine is stopped. *)

val stop : t -> unit
(** Halt the run loop after the current event; used e.g. on simulated OOM. *)

val stopped : t -> bool
(** Whether [stop] has been called. *)

val pending : t -> int
(** Number of queued live events (O(1) counter). Cancelled handles may
    stay queued until their scheduled time but are not counted. *)

val executed : t -> int
(** Total number of events executed so far (diagnostic). *)

val compactions : t -> int
(** Number of tombstone-compaction sweeps performed (diagnostic). *)

val wheel_occupancy : t -> int
(** Events currently held by the scheduler structure (wheel buckets +
    overflow + front heap, or heap length including tombstones).
    Diagnostic gauge; excludes the active dispatch batch. *)

val cascades : t -> int
(** Timer-wheel buckets cascaded down a level so far (0 under heap). *)

val spills : t -> int
(** Events that landed in the out-of-horizon overflow heap (0 under
    heap). *)

val run_until_quiet : ?horizon:int -> t -> unit
(** Run while there is live work: non-daemon events queued or processes
    suspended on conditions. Stops when only daemon events (ticks,
    samplers) remain, when [stop] is called, or at [horizon]. This is how
    workloads run "to completion" without replaying scheduler ticks out to
    an arbitrary horizon. *)

val incr_waiters : t -> unit
(** Register a suspended process (used by {!Process.Cond}). *)

val decr_waiters : t -> unit

val busy : t -> int
(** Queued non-daemon events plus suspended processes. *)

val every : t -> period:int -> ?phase:int -> (unit -> bool) -> unit
(** [every t ~period ?phase fn] first runs [fn] at [now + phase] (default
    [period]) and then every [period] ns for as long as [fn] returns [true]
    and the engine is not stopped. *)

val debug_no_batch_sort : bool ref
(** Test-only fault injection: when true, the wheel skips the Shuffle
    same-instant batch sort, deliberately breaking tie-break order. The
    QCheck equivalence suite and the cross-scheduler fuzz differential
    use this to prove they detect ordering bugs. Never set elsewhere. *)
