(** Virtual-time discrete-event engine.

    The engine owns a monotonically increasing virtual clock (nanoseconds)
    and a priority queue of events. Events scheduled for the same instant run
    in scheduling order (FIFO), which makes every simulation deterministic
    for a given seed.

    The engine is single-threaded on purpose: the reproduction models a
    64-CPU machine with virtual time rather than real parallelism, which is
    both deterministic and unaffected by OCaml runtime characteristics. *)

type t
(** An engine: clock + event queue + root RNG. *)

type handle
(** Cancellation handle for a scheduled event. *)

type tiebreak =
  | Fifo  (** Same-instant events run in scheduling order (default). *)
  | Shuffle of int
      (** Same-instant events run in a pseudo-random order derived
          deterministically from this shuffle seed (and each event's time
          and sequence number). Events at distinct times are unaffected.
          Used by the [Check] subsystem to sweep perturbed but replayable
          schedules: two runs with the same shuffle seed are identical,
          different seeds explore different serializations of logically
          concurrent events. *)

val create : ?seed:int -> ?tiebreak:tiebreak -> unit -> t
(** [create ~seed ()] makes a fresh engine at time 0. Default seed 42,
    default tie-break {!Fifo} (the historical, byte-identical order). *)

val tiebreak : t -> tiebreak
(** The engine's same-instant tie-break policy. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root RNG; subsystems should [Rng.split] it. *)

val prof : t -> Prof.t
(** The engine's profiler; {!Prof.null} (disabled) unless {!set_prof}
    was called. *)

val set_prof : t -> Prof.t -> unit
(** Install a profiler. The engine opens [engine.dispatch] /
    [engine.schedule] / [engine.heap_pop] spans around event execution,
    scheduling, and heap pops. *)

val set_observer : t -> (time:int -> unit) option -> unit
(** Install (or clear) a per-executed-event observer, called with the
    event's virtual time after its handler returns. Pure observation for
    coverage signals: the observer runs outside the scheduling path,
    consumes no sequence numbers, and must not schedule events — so an
    observed run is event-for-event identical to an unobserved one. *)

val schedule : ?daemon:bool -> t -> after:int -> (unit -> unit) -> handle
(** [schedule t ~after fn] runs [fn] at time [now t + after].
    [after] must be non-negative. [daemon] (default false) marks
    housekeeping events (scheduler ticks, samplers) that should not keep
    {!run_until_quiet} alive. *)

val schedule_at : ?daemon:bool -> t -> time:int -> (unit -> unit) -> handle
(** [schedule_at t ~time fn] runs [fn] at absolute [time] (>= [now t]). *)

val cancel : handle -> unit
(** [cancel h] prevents the event from running if it has not run yet. The
    event immediately stops counting towards {!busy} and {!pending}; its
    record stays in the queue as a tombstone until its deadline pops it
    or a compaction sweep drops it (the queue compacts in one O(n) pass
    whenever tombstones outnumber live events, so cancel-heavy fault
    plans cannot grow it without bound). *)

val run : ?until:int -> t -> unit
(** [run ?until t] executes events in time order. Stops when the queue is
    empty, [stop] is called, or the next event is past [until] (absolute
    time). If [until] is given the clock is advanced to [until] on return
    (unless stopped earlier). *)

val step : t -> bool
(** [step t] executes the single next event; [false] if the queue was empty
    or the engine is stopped. *)

val stop : t -> unit
(** Halt the run loop after the current event; used e.g. on simulated OOM. *)

val stopped : t -> bool
(** Whether [stop] has been called. *)

val pending : t -> int
(** Number of queued live events. Cancelled handles may stay in the queue
    until their scheduled time but are not counted. O(1). *)

val executed : t -> int
(** Total number of events executed so far (diagnostic). *)

val compactions : t -> int
(** Number of tombstone-compaction sweeps performed (diagnostic). *)

val run_until_quiet : ?horizon:int -> t -> unit
(** Run while there is live work: non-daemon events queued or processes
    suspended on conditions. Stops when only daemon events (ticks,
    samplers) remain, when [stop] is called, or at [horizon]. This is how
    workloads run "to completion" without replaying scheduler ticks out to
    an arbitrary horizon. *)

val incr_waiters : t -> unit
(** Register a suspended process (used by {!Process.Cond}). *)

val decr_waiters : t -> unit

val busy : t -> int
(** Queued non-daemon events plus suspended processes. *)

val every : t -> period:int -> ?phase:int -> (unit -> bool) -> unit
(** [every t ~period ?phase fn] first runs [fn] at [now + phase] (default
    [period]) and then every [period] ns for as long as [fn] returns [true]
    and the engine is not stopped. *)
