type source = { name : string; unit_ : string; read : unit -> float }

type t = {
  eng : Engine.t;
  sample_period_ns : int;
  capacity : int;
  mutable sources : source list;  (* reverse registration order *)
  mutable n_sources : int;
  ring : (int * float array) option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable running : bool;
  mutable stopped : bool;
}

let create eng ?(capacity = 4096) ~period_ns () =
  if period_ns <= 0 then invalid_arg "Sampler.create: period_ns must be positive";
  if capacity <= 0 then invalid_arg "Sampler.create: capacity must be positive";
  {
    eng;
    sample_period_ns = period_ns;
    capacity;
    sources = [];
    n_sources = 0;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    running = false;
    stopped = false;
  }

let add_source t ~name ?(unit_ = "") read =
  if t.running then invalid_arg "Sampler.add_source: sampler already started";
  if List.exists (fun s -> s.name = name) t.sources then
    invalid_arg (Printf.sprintf "Sampler.add_source: duplicate source %S" name);
  t.sources <- { name; unit_; read } :: t.sources;
  t.n_sources <- t.n_sources + 1

let ordered_sources t = List.rev t.sources

let sweep t =
  let values = Array.make t.n_sources 0. in
  List.iteri (fun i s -> values.(i) <- s.read ()) (ordered_sources t);
  if t.len = t.capacity then t.dropped <- t.dropped + 1
  else t.len <- t.len + 1;
  t.ring.(t.head) <- Some (Engine.now t.eng, values);
  t.head <- (t.head + 1) mod t.capacity

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.every t.eng ~period:t.sample_period_ns (fun () ->
        if t.stopped then false
        else begin
          sweep t;
          true
        end)
  end

let stop t = t.stopped <- true
let period_ns t = t.sample_period_ns
let source_names t = List.map (fun s -> s.name) (ordered_sources t)
let source_units t = List.map (fun s -> (s.name, s.unit_)) (ordered_sources t)
let rows t = t.len
let dropped t = t.dropped

let to_array t =
  Array.init t.len (fun i ->
      let idx = (t.head - t.len + i + (2 * t.capacity)) mod t.capacity in
      match t.ring.(idx) with
      | Some row -> row
      | None -> assert false)

let series t ~name =
  let rec index i = function
    | [] -> None
    | s :: rest -> if s.name = name then Some i else index (i + 1) rest
  in
  match index 0 (ordered_sources t) with
  | None -> None
  | Some i ->
      Some (Array.map (fun (time, values) -> (time, values.(i))) (to_array t))

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_ns";
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.name)
    (ordered_sources t);
  Buffer.add_char buf '\n';
  Array.iter
    (fun (time, values) ->
      Buffer.add_string buf (string_of_int time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (fmt_value v))
        values;
      Buffer.add_char buf '\n')
    (to_array t);
  Buffer.contents buf

let to_ndjson t =
  let names = source_names t in
  let buf = Buffer.create 1024 in
  Array.iter
    (fun (time, values) ->
      Buffer.add_string buf (Printf.sprintf "{\"t\":%d" time);
      List.iteri
        (fun i name ->
          Buffer.add_string buf
            (Printf.sprintf ",%S:%s" name (fmt_value values.(i))))
        names;
      Buffer.add_string buf "}\n")
    (to_array t);
  Buffer.contents buf
