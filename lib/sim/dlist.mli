(** Intrusive doubly-linked list with O(1) removal by node handle.

    The slab allocators keep each slab on exactly one node-level list
    (full / partial / free) and move slabs between lists constantly; the
    handle returned by [push_*] makes those moves O(1) even with thousands
    of slabs. *)

type 'a t
type 'a node

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val value : 'a node -> 'a

val push_front : 'a t -> 'a -> 'a node
val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit
(** [remove l n] unlinks [n]. Raises [Invalid_argument] if [n] is not
    currently on [l]. *)

val peek_front : 'a t -> 'a option
val pop_front : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val first_n : 'a t -> int -> 'a list
(** Up to [n] elements from the front, front first. *)

val find_first : ?depth:int -> ('a -> bool) -> 'a t -> 'a option
(** First element from the front satisfying the predicate, scanning at
    most [depth] elements (unbounded by default). Unlike
    [find_opt ... (first_n ...)], allocates nothing — this sits on the
    slab selectors' refill path. *)

val fold_first_n : 'a t -> int -> ('acc -> 'a -> 'acc) -> 'acc -> 'acc
(** Fold over up to [n] elements from the front without materialising an
    intermediate list. *)

val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
