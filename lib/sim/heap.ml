type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let cap' = if capacity = 0 then 16 else capacity * 2 in
    let data' = Array.make cap' x in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

(* 4-ary: half the levels of a binary heap, and the four children sit in
   adjacent slots, so a sift touches fewer cache lines. Pop order is
   unaffected — any d-ary heap pops elements in [cmp] order. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let first = (4 * i) + 1 in
  if first < h.size then begin
    let last = min (first + 3) (h.size - 1) in
    let smallest = ref i in
    for j = first to last do
      if h.cmp h.data.(j) h.data.(!smallest) < 0 then smallest := j
    done;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      sift_down h !smallest
    end
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let peek_exn h =
  if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap"
  else h.data.(0)

(* The engine pops one event per simulated step; keep this path free of
   the [Some] box (and build [pop] on top for option-style callers). *)
let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap"
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    (* Drop the stale slot so the GC can reclaim the element. *)
    h.data.(h.size) <- top;
    top
  end

let pop h = if h.size = 0 then None else Some (pop_exn h)

let clear h =
  h.data <- [||];
  h.size <- 0

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let filter_in_place keep h =
  (* Compact survivors to a prefix, then restore the heap property
     bottom-up (Floyd): O(n) total, no allocation beyond the swaps. *)
  let kept = ref 0 in
  for i = 0 to h.size - 1 do
    let x = h.data.(i) in
    if keep x then begin
      h.data.(!kept) <- x;
      incr kept
    end
  done;
  (* Clear the tail so the GC can reclaim dropped elements. *)
  if !kept > 0 then
    for i = !kept to h.size - 1 do
      h.data.(i) <- h.data.(!kept - 1)
    done
  else begin
    h.data <- [||]
  end;
  h.size <- !kept;
  for i = (h.size - 2) / 4 downto 0 do
    sift_down h i
  done

let to_sorted_list h =
  let rec drain acc =
    match pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
