type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable size : int;
}

let create () = { head = None; tail = None; size = 0 }

let length l = l.size
let is_empty l = l.size = 0
let value n = n.v

let push_front l v =
  let n = { v; prev = None; next = l.head; owner = Some l } in
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n;
  l.size <- l.size + 1;
  n

let push_back l v =
  let n = { v; prev = l.tail; next = None; owner = Some l } in
  (match l.tail with Some t -> t.next <- Some n | None -> l.head <- Some n);
  l.tail <- Some n;
  l.size <- l.size + 1;
  n

let remove l n =
  (match n.owner with
  | Some o when o == l -> ()
  | _ -> invalid_arg "Dlist.remove: node not on this list");
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- None;
  l.size <- l.size - 1

let peek_front l = match l.head with None -> None | Some n -> Some n.v

let pop_front l =
  match l.head with
  | None -> None
  | Some n ->
      remove l n;
      Some n.v

let iter f l =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.v;
        go next
  in
  go l.head

let fold f acc l =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) l;
  !acc

let first_n l n =
  let rec go acc k = function
    | Some node when k > 0 -> go (node.v :: acc) (k - 1) node.next
    | _ -> List.rev acc
  in
  go [] n l.head

let find_first ?depth p l =
  let rec go k = function
    | Some n when k > 0 -> if p n.v then Some n.v else go (k - 1) n.next
    | _ -> None
  in
  go (match depth with Some d -> d | None -> max_int) l.head

let fold_first_n l n f acc =
  let rec go acc k = function
    | Some node when k > 0 -> go (f acc node.v) (k - 1) node.next
    | _ -> acc
  in
  go acc n l.head

let exists p l =
  let rec go = function
    | None -> false
    | Some n -> p n.v || go n.next
  in
  go l.head

let to_list l = List.rev (fold (fun acc v -> v :: acc) [] l)
