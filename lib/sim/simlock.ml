type t = {
  lock_name : string;
  mutable free_at : int;
  mutable acquisitions : int;
  mutable contended : int;
  mutable total_wait : int;
  mutable total_hold : int;
}

let create ~name =
  {
    lock_name = name;
    free_at = 0;
    acquisitions = 0;
    contended = 0;
    total_wait = 0;
    total_hold = 0;
  }

let name l = l.lock_name

let acquire ?(tracer = Trace.null) ?(cpu = -1) l ~now ~hold =
  if hold < 0 then invalid_arg "Simlock.acquire: negative hold";
  let start = if now >= l.free_at then now else l.free_at in
  let wait = start - now in
  l.free_at <- start + hold;
  l.acquisitions <- l.acquisitions + 1;
  if wait > 0 then l.contended <- l.contended + 1;
  l.total_wait <- l.total_wait + wait;
  l.total_hold <- l.total_hold + hold;
  if Trace.enabled tracer then begin
    Trace.emit tracer ~time:now ~cpu ~label:l.lock_name
      Trace.Event.Lock_acquire;
    if wait > 0 then begin
      Trace.emit tracer ~time:now ~cpu ~label:l.lock_name ~arg:wait
        Trace.Event.Lock_contended;
      Trace.record_lock_wait tracer wait
    end
  end;
  wait + hold

let acquisitions l = l.acquisitions
let contended l = l.contended
let total_wait_ns l = l.total_wait
let total_hold_ns l = l.total_hold

let reset_stats l =
  l.acquisitions <- 0;
  l.contended <- 0;
  l.total_wait <- 0;
  l.total_hold <- 0
