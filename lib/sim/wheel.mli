(** Hierarchical timer wheel over a flat structure-of-arrays event pool.

    The wheel owns no policy: the engine allocates slots in the shared
    {!pool}, fills in time/tie/seq/flags, and hands the slot index to
    {!add}. Extraction returns whole same-instant batches as intrusive
    singly-linked slot lists (via the pool's [nexts] array) in
    ascending-sequence order — FIFO dispatch order; the engine layers
    the Shuffle tie-break sort on top.

    Geometry: [levels = 3] levels of [2^bits = 65536] one-ns-grained
    buckets (level 0 = single instants), a (time, tie, seq) heap for
    events beyond the [2^48] ns horizon, and a "front" heap for events
    scheduled below the cursor (possible only after [run ~until]
    peeked past the last dispatched instant). *)

(** {1 Flat event pool} *)

type pool = {
  mutable times : int array;
  mutable ties : int array;  (** tie-break key; 0 under Fifo *)
  mutable seqs : int array;
  mutable nexts : int array;
      (** intrusive link: free list and bucket chains; -1 terminates *)
  mutable flags : int array;
  mutable gens : int array;  (** bumped on free; stale-handle detection *)
  mutable fns : (unit -> unit) array;
  mutable free : int;
  mutable cap : int;
}

val flag_daemon : int
val flag_live : int

val slot_bits : int
(** Handles pack [(gen lsl slot_bits) lor slot]. *)

val slot_mask : int
val gen_mask : int
val dummy_fn : unit -> unit

val create_pool : unit -> pool
val alloc_slot : pool -> int
val free_slot : pool -> int -> unit
val slot_cmp : pool -> int -> int -> int
(** (time, tie, seq) ascending; total because seqs are unique. *)

(** {1 Wheel} *)

type t

val create : pool -> t
val add : t -> int -> unit
(** Place a slot by [pool.times.(slot)]. Below-cursor times go to the
    front heap; beyond-horizon times to the overflow heap. *)

val is_empty : t -> bool
val wnow : t -> int
(** Cursor; [<=] every wheel/overflow event time. *)

val peek_time : t -> int
(** Earliest pending event time, or [max_int] when empty. May cascade
    internally (dispatch order is unaffected). *)

val pop_bucket : t -> int
(** Detach the earliest same-instant slot list (linked via [nexts],
    ascending seq); -1 when empty. *)

val purge : t -> keep:(int -> bool) -> drop:(int -> unit) -> unit
(** Drop every slot [keep] rejects from buckets and both heaps,
    calling [drop] on each after unlinking. *)

(** {1 Gauges} *)

val occupancy : t -> int
(** Events currently held (wheel + overflow + front). *)

val cascades : t -> int
val spills : t -> int
