(** Virtual-time contended lock.

    Models a spinlock (e.g. the slab node-list lock) analytically: the lock
    records the virtual time at which it next becomes free; an acquirer that
    arrives earlier is charged the residual wait. This captures
    serialization and contention cost without blocking simulation processes,
    which is exactly what the paper's node-lock contention argument needs
    (bursty parallel flushes all hitting one lock).

    The caller is responsible for charging the returned delay to the
    acquiring CPU (see {!Machine.consume}). *)

type t

val create : name:string -> t
(** [create ~name] is a fresh, uncontended lock. [name] labels stats. *)

val name : t -> string

val acquire :
  ?tracer:Trace.t -> ?cpu:int -> t -> now:int -> hold:int -> int
(** [acquire l ~now ~hold] simulates acquiring [l] at time [now] and holding
    it for [hold] ns. Returns the total delay (queueing wait + hold) the
    caller experiences; 0 wait when uncontended.

    When a live [tracer] is passed, the acquisition emits a lock-acquire
    event on [cpu] (and a lock-contended event plus a lock-wait histogram
    sample if it had to wait), labelled with the lock's name. *)

val acquisitions : t -> int
(** Total number of acquisitions so far. *)

val contended : t -> int
(** Number of acquisitions that had to wait. *)

val total_wait_ns : t -> int
(** Sum of queueing waits over all acquisitions, in ns. *)

val total_hold_ns : t -> int
(** Sum of hold times, in ns. *)

val reset_stats : t -> unit
(** Zero the counters (not the lock availability time). *)
