(* xoshiro256++, with each 64-bit state word held as two immediate ints
   (the 32-bit halves). OCaml boxes every [Int64] intermediate, which made
   the generator the single hottest allocator in the simulator's main loop;
   split into halves, one step runs entirely on unboxed native ints and the
   output stream is bit-for-bit the Int64 version's. *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Halves of the last step's output, written in place so draws never
     allocate. *)
  mutable rh : int;
  mutable rl : int;
}

let m32 = 0xFFFF_FFFF

(* splitmix64: used only to expand the integer seed into generator state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFF_FFFFL)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro state must not be all-zero; splitmix64 guarantees it for any
     seed, but keep a belt-and-braces fixup. *)
  let s0, s1, s2, s3 =
    if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
      (1L, 2L, 3L, 4L)
    else (s0, s1, s2, s3)
  in
  {
    s0h = hi64 s0;
    s0l = lo64 s0;
    s1h = hi64 s1;
    s1l = lo64 s1;
    s2h = hi64 s2;
    s2l = lo64 s2;
    s3h = hi64 s3;
    s3l = lo64 s3;
    rh = 0;
    rl = 0;
  }

(* One xoshiro256++ step on 32-bit halves:
     result = rotl (s0 + s3) 23 + s0
     t = s1 << 17
     s2 ^= s0; s3 ^= s1; s1 ^= s2; s0 ^= s3; s2 ^= t; s3 = rotl s3 45
   Adds carry through [lsr 32]; rotl 45 is a half-swap followed by
   rotl 13. The result lands in [rh]/[rl]. *)
let step g =
  let al = g.s0l + g.s3l in
  let ah = (g.s0h + g.s3h + (al lsr 32)) land m32 in
  let al = al land m32 in
  let rh = ((ah lsl 23) lor (al lsr 9)) land m32 in
  let rl = ((al lsl 23) lor (ah lsr 9)) land m32 in
  let rl = rl + g.s0l in
  g.rh <- (rh + g.s0h + (rl lsr 32)) land m32;
  g.rl <- rl land m32;
  let th = ((g.s1h lsl 17) lor (g.s1l lsr 15)) land m32 in
  let tl = (g.s1l lsl 17) land m32 in
  g.s2h <- g.s2h lxor g.s0h;
  g.s2l <- g.s2l lxor g.s0l;
  g.s3h <- g.s3h lxor g.s1h;
  g.s3l <- g.s3l lxor g.s1l;
  g.s1h <- g.s1h lxor g.s2h;
  g.s1l <- g.s1l lxor g.s2l;
  g.s0h <- g.s0h lxor g.s3h;
  g.s0l <- g.s0l lxor g.s3l;
  g.s2h <- g.s2h lxor th;
  g.s2l <- g.s2l lxor tl;
  let h = g.s3h and l = g.s3l in
  g.s3h <- ((l lsl 13) lor (h lsr 19)) land m32;
  g.s3l <- ((h lsl 13) lor (l lsr 19)) land m32

let bits64 g =
  step g;
  Int64.logor (Int64.shift_left (Int64.of_int g.rh) 32) (Int64.of_int g.rl)

let split g =
  let seed = Int64.to_int (bits64 g) in
  create ~seed

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  step g;
  (* u = output lsr 1, a 63-bit value that does not fit a native int, so
     reduce its halves modularly: u = uh * 2^32 + ul. *)
  let uh = g.rh lsr 1 in
  let ul = ((g.rh land 1) lsl 31) lor (g.rl lsr 1) in
  if bound <= 0x4000_0000 then
    (((uh mod bound) * (0x1_0000_0000 mod bound)) + (ul mod bound))
    mod bound
  else
    (* Huge bounds (> 2^30, e.g. nanosecond ranges) would overflow the
       modular product; fall back to one boxed division. *)
    Int64.to_int
      (Int64.rem
         (Int64.logor
            (Int64.shift_left (Int64.of_int uh) 32)
            (Int64.of_int ul))
         (Int64.of_int bound))

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits -> [0, 1) *)
  step g;
  let bits = (g.rh lsl 21) lor (g.rl lsr 11) in
  let unit = float_of_int bits *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let bool g =
  step g;
  g.rl land 1 = 1

let chance g p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g 1.0 < p

let exponential g ~mean =
  let u = ref (float g 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let geometric g ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of range";
  if p = 1.0 then 0
  else begin
    let u = ref (float g 1.0) in
    if !u = 0.0 then u := 1e-12;
    int_of_float (Float.floor (log !u /. log (1.0 -. p)))
  end

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
