module Frame = Slab.Frame
module Latq = Slab.Latq
module Smr = Slab.Smr
module Costs = Slab.Costs
module Stats = Slab.Slab_stats

type config = {
  scan_depth : int;
  preflush_enabled : bool;
  preflush_chunk : int;
  preflush_interval_ns : int;
  latent_cap : int option;
  wait_on_oom : bool;
  emergency_flush : bool;
  unsafe_skip_gp : bool;
}

let default_config =
  {
    scan_depth = 10;
    preflush_enabled = true;
    preflush_chunk = 8;
    preflush_interval_ns = 5_000;
    latent_cap = None;
    wait_on_oom = true;
    emergency_flush = false;
    unsafe_skip_gp = false;
  }

type t = {
  env : Frame.env;
  smr : Smr.t;
  label : string;
  cfg : config;
  by_name : (string, Frame.cache) Hashtbl.t;
      (* O(1) name lookup on the cache-creation path. *)
  mutable caches : Frame.cache list;
      (* Newest first (insertion order), the iteration order the old
         assoc list gave. *)
}

let env t = t.env
let smr t = t.smr
let config t = t.cfg

(* The reclamation horizon used for ripeness tests. The fault-injection
   mode pretends everything is ripe immediately. *)
let completed t =
  if t.cfg.unsafe_skip_gp then max_int else t.smr.Smr.ripe_upto ()

let charge (cpu : Sim.Machine.cpu) ns = Sim.Machine.consume cpu ns

let latent_outstanding t =
  List.fold_left (fun acc c -> acc + Frame.latent_total c) 0 t.caches

(* Harvest ripe latent objects from the slabs the selector is about to
   examine, so their free counts reflect completed grace periods. *)
let refresh_node_heads t cache node =
  Prof.enter (Frame.prof cache) ~cpu:(-1) Prof.Span.Prudence_scan;
  let horizon = completed t in
  let refresh slab =
    if slab.Frame.latent_n > 0 then begin
      if Frame.slab_harvest_ripe slab ~completed:horizon > 0 then
        ignore (Frame.relocate cache slab)
    end
  in
  (* The node's latent-slab list is ordered oldest-first, so the slabs most
     likely to have ripe objects are at the front. *)
  List.iter refresh (Sim.Dlist.first_n node.Frame.latent_slabs t.cfg.scan_depth);
  Prof.exit (Frame.prof cache) Prof.Span.Prudence_scan

let select t cache node =
  refresh_node_heads t cache node;
  Frame.select_prudence ~scan_depth:t.cfg.scan_depth node

(* Algorithm 1 MERGE_CACHES (l.60-65): move grace-period-complete objects
   from the latent cache into the object cache, stopping at capacity. *)
let merge_caches t (cache : Frame.cache) (pc : Frame.pcpu) =
  let horizon = completed t in
  let limit = cache.Frame.ocache_cap - pc.Frame.ocache_n in
  let moved =
    if limit <= 0 then 0
    else
      Frame.latent_cache_merge_ripe cache pc ~completed:horizon ~limit
        ~f:(fun obj -> Frame.push_ocache cache pc obj)
  in
  if moved > 0 then begin
    Stats.merge cache.Frame.stats ~n:moved;
    Frame.trace_event cache pc.Frame.cpu ~arg:moved Trace.Event.Latent_merge;
    charge pc.Frame.cpu
      (t.env.Frame.costs.Costs.merge
      + (moved * t.env.Frame.costs.Costs.merge_per_obj))
  end;
  moved

(* Move one latent-cache object to its slab's latent list, pre-moving the
   slab if its future state changed (Algorithm 1 l.49-51). Returns the cost
   to charge (the caller decides whether it runs on workload or idle time). *)
let demote_to_latent_slab t (cache : Frame.cache) (pc : Frame.pcpu) obj =
  Frame.obj_to_latent_slab cache obj;
  let slab = obj.Frame.parent in
  let costs = t.env.Frame.costs in
  let cost = ref costs.Costs.latent_put in
  (* Pre-movement needs the node-list lock only when the list changes. *)
  if Frame.relocate cache slab then begin
    Stats.premove cache.Frame.stats;
    Frame.trace_event cache pc.Frame.cpu Trace.Event.Premove;
    let node = cache.Frame.nodes.(slab.Frame.node_id) in
    let delay =
      Sim.Simlock.acquire ~tracer:(Frame.tracer cache)
        ~cpu:pc.Frame.cpu.Sim.Machine.id node.Frame.lock
        ~now:(Sim.Engine.now (Sim.Machine.engine t.env.Frame.machine))
        ~hold:costs.Costs.node_lock_hold
    in
    cost := !cost + delay + costs.Costs.premove;
    (* Pre-moving onto the free list can push the node over its free-slab
       threshold (Algorithm 1 l.59). *)
    if
      slab.Frame.on_list = Frame.L_free
      && Sim.Dlist.length node.Frame.free_slabs > Slab.Size_class.min_free_slabs
    then ignore (Frame.shrink_node cache pc.Frame.cpu node)
  end;
  ignore pc;
  !cost

(* Graceful degradation under Critical pressure: give back everything that
   is already safe — drain ripe latent-cache objects down to their slabs,
   harvest every ripe latent-slab object, and eagerly shrink free slabs to
   the floor — before the allocator resorts to the OOM-delay path. Never
   waits (no process context required): only objects whose grace period has
   already completed move. Returns the number of latent objects freed. *)
let emergency_reclaim t =
  Prof.enter (Sim.Machine.prof t.env.Frame.machine) ~cpu:(-1)
    Prof.Span.Prudence_flush;
  let horizon = completed t in
  let total = ref 0 in
  List.iter
    (fun (cache : Frame.cache) ->
      Array.iter
        (fun (pc : Frame.pcpu) ->
          let rec drain () =
            match Frame.latent_cache_pop_ripe cache pc ~completed:horizon with
            | Some obj ->
                ignore (demote_to_latent_slab t cache pc obj);
                drain ()
            | None -> ()
          in
          drain ())
        cache.Frame.pcpus;
      let freed = ref 0 in
      Array.iter
        (fun (node : Frame.node) ->
          List.iter
            (fun slab ->
              let n = Frame.slab_harvest_ripe slab ~completed:horizon in
              if n > 0 then begin
                freed := !freed + n;
                ignore (Frame.relocate cache slab)
              end)
            (Sim.Dlist.to_list node.Frame.latent_slabs);
          let cpu = cache.Frame.pcpus.(0).Frame.cpu in
          while Frame.shrink_node ~keep:0 cache cpu node > 0 do
            ()
          done)
        cache.Frame.nodes;
      if !freed > 0 then begin
        Stats.emergency_flush cache.Frame.stats ~n:!freed;
        Frame.trace_event cache cache.Frame.pcpus.(0).Frame.cpu ~arg:!freed
          Trace.Event.Emergency_flush
      end;
      total := !total + !freed)
    t.caches;
  Prof.exit (Sim.Machine.prof t.env.Frame.machine) Prof.Span.Prudence_flush;
  !total

let attach_pressure t pressure =
  if t.cfg.emergency_flush then begin
    Mem.Pressure.on_level_change pressure (fun level ->
        match level with
        | Mem.Pressure.Critical -> ignore (emergency_reclaim t)
        | Mem.Pressure.Normal | Mem.Pressure.Low -> ());
    Mem.Pressure.on_oom pressure (fun () -> emergency_reclaim t > 0)
  end

(* Idle-time pre-flush (§4.2 "latent cache pre-flush"). Runs as idle work:
   costs are not charged to the workload, but lock holds still occupy the
   node lock. *)
let rec preflush_pass t (cache : Frame.cache) (pc : Frame.pcpu) =
  Frame.set_preflush_scheduled pc false;
  let excess () =
    pc.Frame.ocache_n + Latq.Fifo.length pc.Frame.latent
    - cache.Frame.ocache_cap
  in
  (* Merge ripe latent objects proactively while idle — §4.2: doing it here
     "avoids the merging of deferred objects ... during an allocation
     request" (the next allocations become plain hits). *)
  ignore (merge_caches t cache pc);
  if excess () > 0 then begin
    let aggressive = pc.Frame.recent_allocs < pc.Frame.recent_releases in
    let budget = if aggressive then max_int else t.cfg.preflush_chunk in
    let moved = ref 0 in
    while excess () > 0 && !moved < budget do
      match Frame.latent_cache_pop_newest cache pc with
      | Some obj ->
          ignore (demote_to_latent_slab t cache pc obj);
          incr moved
      | None ->
          (* Only object-cache overflow remains; leave it to the flush
             path. *)
          ignore (Frame.flush_to_node cache pc.Frame.cpu
                    ~count:(max 0 (excess ())));
          ()
    done;
    if !moved > 0 then begin
      Stats.preflush_pass cache.Frame.stats ~n:!moved;
      Frame.trace_event cache pc.Frame.cpu ~arg:!moved Trace.Event.Preflush
    end;
    (* If work remains and the CPU is still idle, continue in a later
       chunk; otherwise re-arm for the next idle window. *)
    if excess () > 0 then schedule_preflush_delayed t cache pc
  end

and schedule_preflush_delayed t cache pc =
  if not pc.Frame.preflush_scheduled then begin
    Frame.set_preflush_scheduled pc true;
    ignore
      (Sim.Engine.schedule
         (Sim.Machine.engine t.env.Frame.machine)
         ~after:t.cfg.preflush_interval_ns
         (fun () ->
           if Sim.Machine.is_idle pc.Frame.cpu then preflush_pass t cache pc
           else begin
             (* The idle window closed: wait for the next one. *)
             Frame.set_preflush_scheduled pc false;
             schedule_preflush t cache pc
           end))
  end

and schedule_preflush t cache (pc : Frame.pcpu) =
  if t.cfg.preflush_enabled && not pc.Frame.preflush_scheduled then begin
    Frame.set_preflush_scheduled pc true;
    Sim.Machine.submit_idle t.env.Frame.machine pc.Frame.cpu (fun () ->
        preflush_pass t cache pc)
  end

(* Algorithm 1 MALLOC (l.1-12) + REFILL_OBJECT_CACHE (l.13-33). *)
let rec alloc_inner t ~may_wait (cache : Frame.cache) cpu =
  let costs = t.env.Frame.costs in
  let pc = Frame.pcpu_for cache cpu in
  Stats.alloc cache.Frame.stats;
  Frame.note_alloc pc;
  charge cpu costs.Costs.hit;
  if pc.Frame.ocache_n > 0 then begin
    let obj = Frame.pop_ocache_exn pc in
    Stats.hit cache.Frame.stats;
    Frame.trace_event cache cpu Trace.Event.Alloc_hit;
    Frame.hand_to_user cache cpu obj;
    Some obj
  end
  else alloc_slow t ~may_wait cache cpu pc

and alloc_slow t ~may_wait (cache : Frame.cache) cpu (pc : Frame.pcpu) =
  (* l.8-11: merge ripe latent objects and retry. A request satisfied
     after the merge is still served from the object cache (no node-list
     traffic), so it counts as a hit, as in Fig. 7. *)
  ignore (merge_caches t cache pc);
  match Frame.pop_ocache pc with
  | Some obj ->
      Stats.hit cache.Frame.stats;
      Frame.trace_event cache cpu Trace.Event.Alloc_hit;
      Frame.hand_to_user cache cpu obj;
      Some obj
  | None -> (
      Stats.miss cache.Frame.stats;
      Frame.trace_event cache cpu Trace.Event.Alloc_miss;
      (* l.13-25: partial refill, leaving room for the latent objects that
         will merge after the grace period. The paper subtracts the whole
         latent count; we subtract only the ripe prefix (the merge is
         capacity-capped, and unripe objects cannot merge before the next
         grace period, by which time the cache has drained again), which
         keeps refills batched under a full latent cache. *)
      let horizon = completed t in
      let ripe = Latq.Fifo.ripe_count pc.Frame.latent ~completed:horizon in
      let want =
        max 1 (min cache.Frame.batch (cache.Frame.ocache_cap - ripe))
      in
      let got =
        Frame.refill_from_node cache cpu ~want ~select:(select t cache)
      in
      let got =
        if got > 0 then got
        else
          (* l.29: add more slabs. *)
          match Frame.grow cache cpu with
          | Some _slab ->
              Frame.refill_from_node cache cpu ~want ~select:(select t cache)
          | None ->
              (* Cannot grow: relax the slab-selection filter (a mostly
                 deferred slab is better than failing). *)
              Frame.refill_from_node cache cpu ~want ~select:Frame.select_slub
      in
      match (got, Frame.pop_ocache pc) with
      | _, Some obj ->
          Frame.hand_to_user cache cpu obj;
          Some obj
      | _, None -> (
          (* Degradation ladder: before suspending for a grace period,
             emergency-flush whatever is already ripe and eagerly shrink,
             then retry the refill — reclaim that needs no waiting. *)
          let emergency =
            if t.cfg.emergency_flush && emergency_reclaim t > 0 then begin
              let got =
                Frame.refill_from_node cache cpu ~want:1
                  ~select:Frame.select_slub
              in
              let got =
                if got > 0 then got
                else
                  match Frame.grow cache cpu with
                  | Some _ ->
                      Frame.refill_from_node cache cpu ~want:1
                        ~select:Frame.select_slub
                  | None -> 0
              in
              if got > 0 then Frame.pop_ocache pc else None
            end
            else None
          in
          match emergency with
          | Some obj ->
              Frame.hand_to_user cache cpu obj;
              Some obj
          | None ->
              (* l.31-33: delay OOM if deferred objects will become free. *)
              if may_wait && t.cfg.wait_on_oom && latent_outstanding t > 0
              then begin
                Stats.oom_delayed cache.Frame.stats;
                t.smr.Smr.request ();
                t.smr.Smr.wait ();
                alloc_inner t ~may_wait:false cache cpu
              end
              else None))

(* May suspend mid-span on the wait-on-OOM path (Rcu.synchronize);
   Prof.exit's unwind semantics keep the span stack consistent. *)
let alloc t ?(may_wait = true) (cache : Frame.cache) (cpu : Sim.Machine.cpu) =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id Prof.Span.Slab_alloc;
  let tr = Frame.tracer cache in
  let result =
    if not (Trace.enabled tr) then alloc_inner t ~may_wait cache cpu
    else begin
      let pend0 = cpu.Sim.Machine.pending_ns in
      let result = alloc_inner t ~may_wait cache cpu in
      Trace.record_alloc_cost tr (cpu.Sim.Machine.pending_ns - pend0);
      result
    end
  in
  Prof.exit (Frame.prof cache) Prof.Span.Slab_alloc;
  result

(* Algorithm 1 FREE_DEFERRED (l.34-51). *)
let free_deferred t (cache : Frame.cache) cpu obj =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id
    Prof.Span.Prudence_defer;
  let costs = t.env.Frame.costs in
  let pc = Frame.pcpu_for cache cpu in
  Stats.deferred_free cache.Frame.stats;
  Frame.note_release pc;
  (* l.35: capture the reclamation-scheme state (under RCU: the
     grace-period cookie from [Rcu.snapshot]). *)
  let cookie = t.smr.Smr.defer ~cpu:cpu.Sim.Machine.id in
  Frame.trace_event_arg cache cpu ~arg:cookie Trace.Event.Defer_free;
  Frame.stamp_deferred cache obj ~cookie;
  t.smr.Smr.request ();
  charge cpu costs.Costs.defer_enqueue;
  let latent_n = Latq.Fifo.length pc.Frame.latent in
  if latent_n < cache.Frame.latent_cap then begin
    (* l.39-44: fast path. The idle pass is armed whenever latent objects
       exist: it pre-flushes if an overflow is foreseen and pre-merges
       ripe objects either way. *)
    Frame.obj_to_latent_cache cache pc obj;
    charge cpu costs.Costs.latent_put;
    schedule_preflush t cache pc
  end
  else begin
    (* l.45-51: flush the object cache, merge, retry; overflow goes to the
       latent slab with slab pre-movement. *)
    if pc.Frame.ocache_n > 0 then
      Frame.flush_to_node cache cpu
        ~count:(pc.Frame.ocache_n - (cache.Frame.ocache_cap / 2));
    ignore (merge_caches t cache pc);
    if Latq.Fifo.length pc.Frame.latent < cache.Frame.latent_cap then begin
      Frame.obj_to_latent_cache cache pc obj;
      charge cpu costs.Costs.latent_put
    end
    else begin
      Stats.latent_overflow cache.Frame.stats;
      charge cpu (demote_to_latent_slab t cache pc obj)
    end
  end;
  Prof.exit (Frame.prof cache) Prof.Span.Prudence_defer

(* Regular free: like the baseline, but the overflow flush accounts for the
   latent objects that will need object-cache room after the grace period
   (§4.2 "object cache flush"). *)
let free t (cache : Frame.cache) cpu obj =
  Prof.enter (Frame.prof cache) ~cpu:cpu.Sim.Machine.id Prof.Span.Slab_free;
  let costs = t.env.Frame.costs in
  let pc = Frame.pcpu_for cache cpu in
  Stats.free cache.Frame.stats;
  Frame.note_release pc;
  Frame.release_from_user cache obj;
  charge cpu costs.Costs.free_to_cache;
  Frame.push_ocache cache pc obj;
  (if pc.Frame.ocache_n > cache.Frame.ocache_cap then begin
     let latent_n = Latq.Fifo.length pc.Frame.latent in
     let keep = max 0 ((cache.Frame.ocache_cap / 2) - latent_n) in
     Frame.flush_to_node cache cpu ~count:(pc.Frame.ocache_n - keep)
   end);
  Prof.exit (Frame.prof cache) Prof.Span.Slab_free

let create_cache t ~name ~obj_size =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None ->
      let c =
        Frame.create_cache t.env ~name ~obj_size ~latent_aware:true
          ?latent_cap:t.cfg.latent_cap ()
      in
      (* Hints about the future (§3.6): outstanding deferred objects plus
         the recent per-grace-period allocation volume are allocations
         waiting to happen, so keep that many objects' worth of free slabs
         per node instead of returning pages that would be re-requested
         within a grace period. *)
      Frame.set_free_target c (fun () ->
          let recent_demand =
            Array.fold_left
              (fun acc (pc : Frame.pcpu) -> acc + pc.Frame.recent_allocs)
              0 c.Frame.pcpus
          in
          (* The decayed counter holds ~8x one grace period's allocations;
             keep ~2 grace periods' worth of free slabs. *)
          let demand_objs = (recent_demand / 4) + (2 * Frame.latent_total c) in
          demand_objs
          / (c.Frame.objs_per_slab
            * Array.length c.Frame.nodes));
      Hashtbl.replace t.by_name name c;
      t.caches <- c :: t.caches;
      c

(* Recycle every outstanding deferred object; requires process context. *)
let settle t =
  let rec loop budget =
    if budget = 0 then failwith "Prudence.settle: latent objects failed to drain";
    if latent_outstanding t > 0 then begin
      t.smr.Smr.wait ();
      let horizon = completed t in
      List.iter
        (fun cache ->
          Array.iter
            (fun (pc : Frame.pcpu) ->
              (* Everything ripe now: push latent-cache objects down to
                 their slabs and harvest. *)
              let rec drain () =
                match Frame.latent_cache_pop_ripe cache pc ~completed:horizon with
                | Some obj ->
                    ignore (demote_to_latent_slab t cache pc obj);
                    drain ()
                | None -> ()
              in
              drain ())
            cache.Frame.pcpus;
          Array.iter
            (fun (node : Frame.node) ->
              let refresh slab =
                if slab.Frame.latent_n > 0 then begin
                  ignore (Frame.slab_harvest_ripe slab ~completed:horizon);
                  ignore (Frame.relocate cache slab)
                end
              in
              List.iter refresh (Sim.Dlist.to_list node.Frame.full);
              List.iter refresh (Sim.Dlist.to_list node.Frame.partial);
              List.iter refresh (Sim.Dlist.to_list node.Frame.free_slabs))
            cache.Frame.nodes)
        t.caches;
      loop (budget - 1)
    end
  in
  loop 1_000

let backend t =
  {
    Slab.Backend.label = t.label;
    create_cache = (fun ~name ~obj_size -> create_cache t ~name ~obj_size);
    alloc = (fun cache cpu -> alloc t cache cpu);
    free = (fun cache cpu obj -> free t cache cpu obj);
    free_deferred = (fun cache cpu obj -> free_deferred t cache cpu obj);
    settle = (fun () -> settle t);
    iter_caches = (fun f -> List.iter f t.caches);
  }

let create_smr ?(config = default_config) ?(label = "prudence") env smr =
  let t =
    { env; smr; label; cfg = config; by_name = Hashtbl.create 8; caches = [] }
  in
  smr.Smr.on_ripen (fun _frontier ->
      List.iter
        (fun cache -> Array.iter Frame.decay_rates cache.Frame.pcpus)
        t.caches;
      (* Keep grace detection running while deferred objects wait on it. *)
      if latent_outstanding t > 0 then smr.Smr.request ());
  t

let create ?config env rcu = create_smr ?config env (Smr.of_rcu rcu)
