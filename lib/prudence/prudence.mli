(** The Prudence dynamic memory allocator (paper §4, Algorithm 1).

    Prudence is slab-based like {!Slab.Slub} but tightly integrated with
    the synchronization mechanism: a deferred free ({!free_deferred},
    Listing 2) does not register an RCU callback — the object goes into a
    per-CPU {e latent cache} (bounded by the object-cache size) or its
    slab's {e latent list}, stamped with the grace-period cookie obtained
    from {!Rcu.snapshot}. The allocator itself decides when the object's
    memory is reused:

    - {b merge} (Algorithm 1 l.60-65): on allocation miss, ripe latent
      objects are merged into the object cache before any refill;
    - {b partial refill} (l.14): refills leave room for latent objects that
      will merge after the grace period, avoiding a later overflow flush;
    - {b pre-flush}: when an object-cache flush is foreseeable
      (cache + latent > capacity), latent objects are migrated to latent
      slabs during CPU idle time, rate-adaptively;
    - {b slab pre-movement} (l.52-59): slabs move between node lists as
      soon as deferred objects make their future state certain;
    - {b fragmentation-aware slab selection} (§4.2): refill sources are
      chosen among the first [scan_depth] partial slabs to minimize future
      fragmentation, skipping slabs that are mostly deferred;
    - {b OOM delay} (l.31-32): if allocation fails while deferred objects
      exist, wait a grace period and retry instead of declaring OOM.

    This eliminates extended object lifetimes entirely: an object is
    reusable the instant its grace period completes. *)

type config = {
  scan_depth : int;
      (** Partial slabs examined during slab selection (paper: 10). *)
  preflush_enabled : bool;  (** Idle-time latent-cache pre-flush. *)
  preflush_chunk : int;
      (** Objects migrated per idle pass in the less aggressive mode. *)
  preflush_interval_ns : int;  (** Gap between idle passes. *)
  latent_cap : int option;
      (** Override for the latent-cache bound (default: object-cache
          capacity, §4.1). [Some 0] disables the latent cache entirely
          (ablation). *)
  wait_on_oom : bool;
      (** Delay OOM by waiting for a grace period when deferred objects
          exist. *)
  emergency_flush : bool;
      (** Graceful degradation (default off): under [Critical] memory
          pressure — and as a last step before the OOM delay — flush ripe
          latent objects back to their slabs and eagerly shrink free slabs,
          reclaiming everything that needs no further waiting. *)
  unsafe_skip_gp : bool;
      (** Fault injection: treat every deferred object as immediately
          ripe. Violates RCU safety — used to prove the
          {!Rcu.Readers} checker catches premature reuse. *)
}

val default_config : config

type t

val create : ?config:config -> Slab.Frame.env -> Rcu.t -> t
(** [create env rcu] builds a Prudence instance over RCU grace periods
    ({!Slab.Smr.of_rcu}). It registers a grace-period hook with [rcu] to
    decay per-CPU rate estimates and to keep grace periods running while
    latent objects exist. *)

val create_smr :
  ?config:config -> ?label:string -> Slab.Frame.env -> Slab.Smr.t -> t
(** [create_smr env smr] builds a Prudence instance over an arbitrary
    SMR backend: deferred frees are stamped with [smr.defer] tokens and
    ripen at [smr.ripe_upto]; the OOM-delay path uses [smr.wait].
    [label] names the {!backend} (default ["prudence"]). *)

val env : t -> Slab.Frame.env
val smr : t -> Slab.Smr.t
val config : t -> config

val create_cache : t -> name:string -> obj_size:int -> Slab.Frame.cache
(** Create (or look up) a latent-aware slab cache. *)

val alloc :
  t -> ?may_wait:bool -> Slab.Frame.cache -> Sim.Machine.cpu ->
  Slab.Frame.objekt option
(** Algorithm 1 MALLOC. [may_wait] (default true) permits the OOM-delay
    path, which suspends the calling process for a grace period; pass
    [false] outside process context. *)

val free : t -> Slab.Frame.cache -> Sim.Machine.cpu -> Slab.Frame.objekt -> unit
(** Regular free. The overflow flush size accounts for latent objects
    (§4.2 "object cache flush"). *)

val free_deferred :
  t -> Slab.Frame.cache -> Sim.Machine.cpu -> Slab.Frame.objekt -> unit
(** Algorithm 1 FREE_DEFERRED: Listing 2's turnkey replacement for
    [call_rcu]. *)

val merge_caches : t -> Slab.Frame.cache -> Slab.Frame.pcpu -> int
(** Algorithm 1 MERGE_CACHES: move ripe latent-cache objects into the
    object cache until it is full; returns objects moved. Exposed for
    tests. *)

val emergency_reclaim : t -> int
(** Reclaim without waiting: drain ripe latent-cache objects to their
    slabs, harvest every ripe latent-slab object, eagerly shrink free
    slabs to the floor. Returns latent objects freed. Safe outside process
    context (never suspends). Counted as emergency flushes in the cache
    stats and traced as [Emergency_flush]. *)

val attach_pressure : t -> Mem.Pressure.t -> unit
(** When [config.emergency_flush] is set, register {!emergency_reclaim} to
    run on the transition to [Critical] pressure and as an OOM handler
    (reporting progress so the failed allocation retries). No-op
    otherwise. *)

val settle : t -> unit
(** Process-context helper: wait for grace periods and recycle every
    outstanding deferred object (latent caches and latent slabs), so
    end-of-run measurements see a quiesced allocator. *)

val backend : t -> Slab.Backend.t

val latent_outstanding : t -> int
(** Deferred objects currently held in latent caches/slabs, all caches. *)
