(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one section per artifact), then runs Bechamel real-time
   microbenchmarks of the allocator hot paths.

   Scale via environment:
     BENCH_SCALE=0.3  -- workload scale factor (default 1.0)
     BENCH_CPUS=8     -- simulated CPUs
     BENCH_SEED=42
     BENCH_RUNS=1     -- repetitions for mean +/- stdev
     BENCH_SKIP_BECHAMEL=1 -- skip the real-time section
     BENCH_SKIP_TRACE=1 -- skip the traced lifetime-histogram section
     BENCH_OUT=path   -- machine-readable results file (default
                         BENCH_seed.json); virtual-time metrics only, so
                         the file is deterministic in (seed, scale, cpus,
                         runs) and CI can diff it against a committed
                         baseline with `prudence-repro regress` *)

let getenv_f name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let getenv_i name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let params =
  {
    Core.Experiments.scale = getenv_f "BENCH_SCALE" 1.0;
    seed = getenv_i "BENCH_SEED" 42;
    cpus = getenv_i "BENCH_CPUS" 8;
    runs = getenv_i "BENCH_RUNS" 1;
    trace = None;
  }

(* Every section's reports accumulate here; their attached metrics become
   the machine-readable BENCH_seed.json at the end of the run. *)
let all_reports : Core.Metrics.Report.t list ref = ref []

let section id =
  match Core.Experiments.find id with
  | None -> Format.printf "unknown experiment %s@." id
  | Some e ->
      let t0 = Unix.gettimeofday () in
      let reports = e.Core.Experiments.run params in
      all_reports := !all_reports @ reports;
      Core.Metrics.Report.print_all Format.std_formatter reports;
      Format.printf "(section %s took %.1fs of real time)@.@." id
        (Unix.gettimeofday () -. t0)

let write_bench_json () =
  let module B = Core.Stats.Bench_json in
  let out = Option.value (Sys.getenv_opt "BENCH_OUT") ~default:"BENCH_seed.json" in
  let doc =
    B.make
      ~config:
        {
          B.seed = params.Core.Experiments.seed;
          scale = params.Core.Experiments.scale;
          cpus = params.Core.Experiments.cpus;
          runs = params.Core.Experiments.runs;
        }
      ~metrics:(Core.Metrics.Report.all_metrics !all_reports)
  in
  B.write_file out doc;
  Format.printf "wrote %s (%d metrics)@." out (List.length doc.B.metrics)

(* ------------------------------------------------------------------ *)
(* Traced rerun: defer->reuse lifetime histograms, SLUB vs Prudence.   *)
(* ------------------------------------------------------------------ *)

let trace_section () =
  Format.printf
    "==============================================================================@.";
  Format.printf
    "[TRACE] Deferred-object lifetime (defer -> reuse), fig6 microbenchmark@.";
  Format.printf
    "==============================================================================@.";
  let t0 = Unix.gettimeofday () in
  match Core.Experiments.run_traced params "fig6" with
  | None -> assert false
  | Some runs ->
      List.iter
        (fun (label, tr) ->
          Format.printf "%s@."
            (Core.Metrics.Histview.render
               ~title:(label ^ " defer->reuse lifetime")
               (Core.Trace.lifetime tr)))
        runs;
      Format.printf "(section trace took %.1fs of real time)@.@."
        (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel: real (wall-clock) cost of the allocator hot paths.        *)
(* ------------------------------------------------------------------ *)

let make_slub_pair () =
  let env =
    Workloads.Env.build
      { Workloads.Env.default_config with Workloads.Env.cpus = 1 }
  in
  let cache =
    env.Workloads.Env.backend.Slab.Backend.create_cache ~name:"bench"
      ~obj_size:512
  in
  let cpu = Workloads.Env.cpu env 0 in
  let backend = env.Workloads.Env.backend in
  fun () ->
    match backend.Slab.Backend.alloc cache cpu with
    | Some obj -> backend.Slab.Backend.free cache cpu obj
    | None -> failwith "oom"

let make_prudence_pair () =
  let env =
    Workloads.Env.build
      {
        Workloads.Env.default_config with
        Workloads.Env.cpus = 1;
        kind = Workloads.Env.Prudence_alloc;
      }
  in
  let cache =
    env.Workloads.Env.backend.Slab.Backend.create_cache ~name:"bench"
      ~obj_size:512
  in
  let cpu = Workloads.Env.cpu env 0 in
  let backend = env.Workloads.Env.backend in
  fun () ->
    match backend.Slab.Backend.alloc cache cpu with
    | Some obj -> backend.Slab.Backend.free cache cpu obj
    | None -> failwith "oom"

let make_engine_event () =
  let eng = Sim.Engine.create () in
  fun () ->
    ignore (Sim.Engine.schedule eng ~after:1 (fun () -> ()));
    ignore (Sim.Engine.step eng)

let make_rng () =
  let rng = Sim.Rng.create ~seed:7 in
  fun () -> ignore (Sim.Rng.int rng 1024)

let make_heap_churn () =
  let h = Sim.Heap.create ~cmp:compare () in
  let rng = Sim.Rng.create ~seed:9 in
  for _ = 1 to 256 do
    Sim.Heap.push h (Sim.Rng.int rng 100000)
  done;
  fun () ->
    Sim.Heap.push h (Sim.Rng.int rng 100000);
    ignore (Sim.Heap.pop h)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"hot-paths"
      [
        Test.make ~name:"slub alloc/free pair (real time)"
          (Staged.stage (make_slub_pair ()));
        Test.make ~name:"prudence alloc/free pair (real time)"
          (Staged.stage (make_prudence_pair ()));
        Test.make ~name:"engine schedule+dispatch"
          (Staged.stage (make_engine_event ()));
        Test.make ~name:"rng draw" (Staged.stage (make_rng ()));
        Test.make ~name:"event-heap push+pop (256 live)"
          (Staged.stage (make_heap_churn ()));
      ]
  in
  Format.printf
    "==============================================================================@.";
  Format.printf "[BECHAMEL] Real-time cost of simulator hot paths@.";
  Format.printf
    "==============================================================================@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun label result_tbl ->
      if label = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Format.printf "  %-50s %8.1f ns/run@." name est
            | _ -> Format.printf "  %-50s (no estimate)@." name)
          result_tbl)
    results

let () =
  Format.printf
    "Prudence reproduction benchmark harness (scale=%.2f cpus=%d seed=%d \
     runs=%d)@.@."
    params.Core.Experiments.scale params.Core.Experiments.cpus
    params.Core.Experiments.seed params.Core.Experiments.runs;
  List.iter
    (fun (e : Core.Experiments.experiment) -> section e.Core.Experiments.id)
    Core.Experiments.all;
  if Sys.getenv_opt "BENCH_SKIP_TRACE" = None then trace_section ();
  if Sys.getenv_opt "BENCH_SKIP_BECHAMEL" = None then bechamel_section ();
  write_bench_json ();
  Format.printf "@.done.@."
