(* Wall-clock throughput harness (the `perf` subcommand).

   Every other BENCH metric is virtual-time only: it says what the
   simulated system did, never how fast the simulator itself did it.
   This harness times pinned scenarios on the wall clock and reports
   events per second, simulated nanoseconds per wall millisecond, and
   words allocated per simulated operation.

   Two kinds of fields come out of a run:

   - deterministic counters (executed events, simulated time, workload
     updates, slab alloc/free/deferred-free counts, grace periods) —
     functions of the seed alone, gated byte-identical in CI via the
     [Exact] metric direction;
   - wall-clock readings (seconds, derived rates, GC words) — machine-
     dependent, exported as [Info] so they are tracked but never gate;
   - allocs-per-event — replay-stable for a given compiler but not
     byte-exact across toolchains, gated [Lower_better] with a slack
     tolerance so an accidental allocation regression in a hot path
     fails CI while codegen drift does not.

   With --runs > 1 each scenario repeats in-process; the deterministic
   counters must agree across repetitions (a loud failure otherwise)
   and the smallest wall time wins, minimising scheduler noise. *)

module W = Workloads
module R = Metrics.Report
module T = Metrics.Table

type scenario = Endurance | Fig3 | Chaos_clean | Check

let all_scenarios = [ Endurance; Fig3; Chaos_clean; Check ]

let scenario_name = function
  | Endurance -> "endurance"
  | Fig3 -> "fig3"
  | Chaos_clean -> "chaos-clean"
  | Check -> "check"

let scenario_of_string = function
  | "endurance" -> Some Endurance
  | "fig3" -> Some Fig3
  | "chaos-clean" | "chaos_clean" -> Some Chaos_clean
  | "check" -> Some Check
  | _ -> None

type params = { scale : float; seed : int; cpus : int; runs : int }

let default_params = { scale = 1.0; seed = 42; cpus = 8; runs = 1 }

(* The throttled-callback RCU config of the Fig. 3 endurance family
   (lib/core/experiments.ml): the regime where deferred frees pile up,
   which is exactly what stresses the latent-bookkeeping hot paths. *)
let throttled_rcu =
  {
    Rcu.default_config with
    Rcu.blimit = 10;
    expedited_blimit = 30;
    softirq_period_ns = 1_000_000;
    qhimark = max_int;
  }

let scaled_ns scale ns = max 1 (int_of_float (float_of_int ns *. scale))

(* One run of a pinned scenario. Returns the environment (for post-run
   counter extraction) and the workload's update count. [prof] installs a
   profiler on the run's stack (the `prof` subcommand); the default null
   profiler keeps benchmark runs instrumentation-free. *)
let run_once ?(prof = Prof.null) p scenario kind =
  match scenario with
  | Endurance ->
      (* The `stat` subcommand's live endurance shape: 256 MiB, 2 s. *)
      let env =
        W.Env.build
          {
            W.Env.default_config with
            W.Env.kind;
            cpus = p.cpus;
            seed = p.seed;
            total_pages = 65_536;
            rcu_config = throttled_rcu;
            prof;
            debug_checks = false;
          }
      in
      let r =
        W.Endurance.run env
          {
            W.Endurance.default_config with
            W.Endurance.duration_ns = scaled_ns p.scale (Sim.Clock.s 2);
          }
      in
      (env, r.W.Endurance.updates)
  | Fig3 ->
      (* The Fig. 3 experiment shape: 1 GiB, 12 s, baseline OOMs. *)
      let env =
        W.Env.build
          {
            W.Env.default_config with
            W.Env.kind;
            cpus = p.cpus;
            seed = p.seed;
            total_pages = 262_144;
            rcu_config = throttled_rcu;
            prof;
            debug_checks = false;
          }
      in
      let r =
        W.Endurance.run env
          {
            W.Endurance.default_config with
            W.Endurance.duration_ns =
              Sim.Clock.s (max 1 (int_of_float (12. *. p.scale)));
          }
      in
      (env, r.W.Endurance.updates)
  | Chaos_clean ->
      (* The chaos control row: tracing armed, mitigations on, no
         faults — the heaviest instrumentation the simulator carries. *)
      let base = W.Chaos.default_config ~scenario:W.Chaos.Clean in
      let o =
        W.Chaos.run_one
          {
            base with
            W.Chaos.seed = p.seed;
            cpus = p.cpus;
            duration_ns = scaled_ns p.scale base.W.Chaos.duration_ns;
            prof;
            debug_checks = false;
          }
          kind
      in
      (o.W.Chaos.env, o.W.Chaos.updates)
  | Check ->
      (* The verification stack armed on a 1 s endurance run: shadow-heap
         probes on every slab transition, the pattern oracles polling
         from the engine observer, reader tracking on. The checker's own
         cost lands in the check.probe span and its allocation behaviour
         gates via allocs-per-event like any other hot path. *)
      let duration_ns = scaled_ns p.scale (Sim.Clock.s 1) in
      let env =
        W.Env.build
          {
            W.Env.default_config with
            W.Env.kind;
            cpus = p.cpus;
            seed = p.seed;
            total_pages = 65_536;
            rcu_config =
              {
                throttled_rcu with
                Rcu.stall_timeout_ns = Some (max 1 (duration_ns / 8));
              };
            prof;
            track_readers = true;
            debug_checks = false;
          }
      in
      let oracle = Check.Shadow.install env in
      let orc =
        Check.Oracles.install
          (Check.Oracles.default_config ~duration_ns)
          env
      in
      Sim.Engine.set_observer
        (Sim.Machine.engine env.W.Env.machine)
        (Some (fun ~time:_ -> Check.Oracles.poll_stall orc));
      let r =
        W.Endurance.run env
          { W.Endurance.default_config with W.Endurance.duration_ns }
      in
      Check.Oracles.finalize orc;
      if Check.Shadow.violation_count oracle > 0
         || Check.Oracles.stall_violations orc <> []
         || Check.Oracles.cb_violations orc <> []
      then failwith "wallclock: oracle fired on the clean check scenario";
      (env, r.W.Endurance.updates)

(* Deterministic counters: pure functions of (scenario, kind, params). *)
type counters = {
  events : int;  (** Engine events executed. *)
  sim_ns : int;  (** Final virtual clock. *)
  updates : int;  (** Workload list updates completed. *)
  allocs : int;  (** Slab allocations, summed over caches. *)
  frees : int;
  deferred_frees : int;
  gps : int;  (** RCU grace periods completed. *)
}

let counters_of env updates =
  let allocs = ref 0 and frees = ref 0 and deferred = ref 0 in
  env.W.Env.backend.Slab.Backend.iter_caches (fun c ->
      let s = Slab.Slab_stats.snapshot c.Slab.Frame.stats in
      allocs := !allocs + s.Slab.Slab_stats.allocs;
      frees := !frees + s.Slab.Slab_stats.frees;
      deferred := !deferred + s.Slab.Slab_stats.deferred_frees);
  {
    events = Sim.Engine.executed env.W.Env.eng;
    sim_ns = Sim.Engine.now env.W.Env.eng;
    updates;
    allocs = !allocs;
    frees = !frees;
    deferred_frees = !deferred;
    gps = (Rcu.stats env.W.Env.rcu).Rcu.gps_completed;
  }

type measurement = {
  scenario : scenario;
  alloc_label : string;  (** "slub" / "prudence". *)
  wall_s : float;  (** Best (minimum) wall time over the runs. *)
  minor_words : float;  (** GC minor-heap words allocated (first run). *)
  top_heap_words : int;  (** Process-wide major-heap peak so far. *)
  c : counters;
}

let measure p scenario kind =
  let det = ref None in
  let best_wall = ref infinity in
  let minor = ref 0. in
  for run = 1 to max 1 p.runs do
    Gc.compact ();
    let w0 = Unix.gettimeofday () in
    let m0 = Gc.minor_words () in
    let env, updates = run_once p scenario kind in
    let m1 = Gc.minor_words () in
    let w1 = Unix.gettimeofday () in
    let c = counters_of env updates in
    (match !det with
    | None ->
        det := Some c;
        minor := m1 -. m0
    | Some prev ->
        if prev <> c then
          failwith
            (Printf.sprintf
               "wallclock: deterministic counters changed on %s/%s run %d \
                (simulation is not replay-stable)"
               (scenario_name scenario)
               (W.Env.kind_label kind) run));
    if w1 -. w0 < !best_wall then best_wall := w1 -. w0
  done;
  {
    scenario;
    alloc_label = W.Env.kind_label kind;
    wall_s = !best_wall;
    minor_words = !minor;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    c = Option.get !det;
  }

let events_per_sec m =
  if m.wall_s <= 0. then 0. else float_of_int m.c.events /. m.wall_s

let sim_ns_per_wall_ms m =
  if m.wall_s <= 0. then 0.
  else float_of_int m.c.sim_ns /. (m.wall_s *. 1e3)

let words_per_update m =
  if m.c.updates = 0 then 0. else m.minor_words /. float_of_int m.c.updates

(* The §6-style overhead figure: simulator minor-heap words allocated per
   engine event. The event count is deterministic and the allocation
   profile is replay-stable for a given compiler, so unlike the wall
   readings this gates — Lower_better with slack for codegen drift across
   compiler point releases. *)
let allocs_per_event m =
  if m.c.events = 0 then 0. else m.minor_words /. float_of_int m.c.events

(* 15% historically; tightened to 10% once the timer-wheel scheduler's
   allocation-free hot path cut the steady-state figure (the per-event
   heap record is gone, so there is headroom below the baseline). *)
let allocs_per_event_tolerance_pct = 10.

let run_all ?(scenarios = all_scenarios) p =
  List.concat_map
    (fun s ->
      List.map
        (fun k -> measure p s k)
        [ W.Env.Baseline; W.Env.Prudence_alloc ])
    scenarios

let table ms =
  let row m =
    [
      scenario_name m.scenario;
      m.alloc_label;
      Printf.sprintf "%.1f" (m.wall_s *. 1e3);
      T.fmt_i m.c.events;
      T.fmt_i (int_of_float (events_per_sec m));
      T.fmt_i (int_of_float (sim_ns_per_wall_ms m));
      T.fmt_i m.c.updates;
      Printf.sprintf "%.0f" (words_per_update m);
      Printf.sprintf "%.1f" (allocs_per_event m);
      T.fmt_i m.c.gps;
    ]
  in
  T.render
    ~header:
      [
        "scenario"; "alloc"; "wall ms"; "events"; "events/s";
        "sim-ns/wall-ms"; "updates"; "words/update"; "words/event"; "GPs";
      ]
    (List.map row ms)

let metrics ms =
  List.concat_map
    (fun m ->
      let pre =
        Printf.sprintf "wallclock.%s.%s" (scenario_name m.scenario)
          m.alloc_label
      in
      let exact name v =
        R.metric ~direction:R.Exact ~tolerance_pct:0. (pre ^ "." ^ name) v
      in
      let info name v = R.metric ~direction:R.Info (pre ^ "." ^ name) v in
      let gated_lower name tol v =
        R.metric ~direction:R.Lower_better ~tolerance_pct:tol
          (pre ^ "." ^ name) v
      in
      [
        exact "events" (float_of_int m.c.events);
        exact "sim_ns" (float_of_int m.c.sim_ns);
        exact "updates" (float_of_int m.c.updates);
        exact "allocs" (float_of_int m.c.allocs);
        exact "frees" (float_of_int m.c.frees);
        exact "deferred_frees" (float_of_int m.c.deferred_frees);
        exact "gps" (float_of_int m.c.gps);
        gated_lower "allocs_per_event" allocs_per_event_tolerance_pct
          (allocs_per_event m);
        info "wall_ms" (m.wall_s *. 1e3);
        info "events_per_sec" (events_per_sec m);
        info "sim_ns_per_wall_ms" (sim_ns_per_wall_ms m);
        info "minor_words" m.minor_words;
        info "words_per_update" (words_per_update m);
        info "top_heap_words" (float_of_int m.top_heap_words);
      ])
    ms

let to_bench p ms =
  Stats.Bench_json.make
    ~config:
      {
        Stats.Bench_json.seed = p.seed;
        scale = p.scale;
        cpus = p.cpus;
        runs = p.runs;
      }
    ~metrics:(metrics ms)
