(* Profiling harness (the `prof` subcommand).

   Reruns the wall-clock harness's pinned scenarios with a live
   {!Prof} profiler installed on the whole stack (engine, buddy, slab,
   RCU, Prudence) and reports where simulated work and GC allocation
   go: a per-span table, top-N views by self time or self allocation,
   folded call paths for flamegraph tooling, and an NDJSON export.

   The deterministic counters (events, updates) of a profiled run match
   the unprofiled run of the same scenario — profiling reads clocks and
   GC counters but never schedules events — so figures here can be read
   against bench/BENCH_wallclock.json directly. *)

module W = Workloads
module T = Metrics.Table
module J = Metrics.Json

type sort_key = By_time | By_alloc

let sort_key_of_string = function
  | "time" -> Some By_time
  | "alloc" -> Some By_alloc
  | _ -> None

type run = {
  scenario : Wallclock.scenario;
  alloc_label : string;  (** "slub" / "prudence". *)
  prof : Prof.t;
  events : int;  (** Engine events executed. *)
  updates : int;
  wall_s : float;
}

let run_scenario p scenario kind =
  let prof = Prof.create ~ncpus:p.Wallclock.cpus () in
  let w0 = Unix.gettimeofday () in
  let env, updates = Wallclock.run_once ~prof p scenario kind in
  let w1 = Unix.gettimeofday () in
  {
    scenario;
    alloc_label = W.Env.kind_label kind;
    prof;
    events = Sim.Engine.executed env.W.Env.eng;
    updates;
    wall_s = w1 -. w0;
  }

let run_all ?(scenarios = Wallclock.all_scenarios) p =
  List.concat_map
    (fun s ->
      List.map
        (fun k -> run_scenario p s k)
        [ W.Env.Baseline; W.Env.Prudence_alloc ])
    scenarios

(* Per-span totals of one run, heaviest first under [by], cut to [top]
   rows when positive. *)
let sorted_totals ?(top = 0) ~by r =
  let key (c : Prof.cell) =
    match by with
    | By_time -> c.Prof.self_ns
    | By_alloc -> c.Prof.self_minor_words
  in
  let cells =
    List.sort (fun a b -> compare (key b) (key a)) (Prof.totals r.prof)
  in
  if top <= 0 then cells
  else List.filteri (fun i _ -> i < top) cells

let per_call v calls = if calls = 0 then 0. else v /. float_of_int calls

let share v total = if total <= 0. then 0. else 100. *. v /. total

let span_table ?top ~by r =
  let total_ns = Prof.total_self_ns r.prof in
  let total_minor = Prof.total_minor_words r.prof in
  let row (c : Prof.cell) =
    [
      Prof.Span.name c.Prof.span;
      T.fmt_i c.Prof.calls;
      Printf.sprintf "%.2f" (c.Prof.self_ns /. 1e6);
      Printf.sprintf "%.0f" (per_call c.Prof.self_ns c.Prof.calls);
      Printf.sprintf "%.2f" (c.Prof.incl_ns /. 1e6);
      Printf.sprintf "%.0f" c.Prof.self_minor_words;
      Printf.sprintf "%.1f" (per_call c.Prof.self_minor_words c.Prof.calls);
      Printf.sprintf "%.1f" (share c.Prof.self_ns total_ns);
      Printf.sprintf "%.1f" (share c.Prof.self_minor_words total_minor);
    ]
  in
  T.render
    ~header:
      [
        "span"; "calls"; "self ms"; "ns/call"; "incl ms"; "minor words";
        "words/call"; "time %"; "alloc %";
      ]
    (List.map row (sorted_totals ?top ~by r))

let subsystem_table r =
  let total_ns = Prof.total_self_ns r.prof in
  let total_minor = Prof.total_minor_words r.prof in
  let row (sub, ns, words) =
    [
      sub;
      Printf.sprintf "%.2f" (ns /. 1e6);
      Printf.sprintf "%.1f" (share ns total_ns);
      Printf.sprintf "%.0f" words;
      Printf.sprintf "%.1f" (share words total_minor);
    ]
  in
  T.render
    ~header:[ "subsystem"; "self ms"; "time %"; "minor words"; "alloc %" ]
    (List.map row (Prof.subsystem_totals r.prof))

let ns_per_event r = per_call (Prof.total_self_ns r.prof) r.events
let allocs_per_event r = per_call (Prof.total_minor_words r.prof) r.events

let render ?top ~by r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "== %s/%s: %s events in %.1f wall ms\n"
       (Wallclock.scenario_name r.scenario)
       r.alloc_label (T.fmt_i r.events) (r.wall_s *. 1e3));
  Buffer.add_string b
    (Printf.sprintf
       "   spans: %.2f self ms, %.0f minor words -> %.1f words/event, %.0f \
        ns/event%s\n"
       (Prof.total_self_ns r.prof /. 1e6)
       (Prof.total_minor_words r.prof)
       (allocs_per_event r) (ns_per_event r)
       (let tr = Prof.truncated r.prof and dr = Prof.dropped_exits r.prof in
        if tr = 0 && dr = 0 then ""
        else Printf.sprintf " (%d truncated, %d unmatched exits)" tr dr));
  Buffer.add_string b (span_table ?top ~by r);
  Buffer.add_char b '\n';
  Buffer.add_string b (subsystem_table r);
  Buffer.contents b

(* Folded call paths ("a.b;c.d weight" lines), the input format of
   flamegraph.pl / inferno / speedscope. The weight follows the sort
   key: self ns for --by time, self minor words for --by alloc. *)
let folded ~by r =
  let weight = match by with By_time -> `Self_ns | By_alloc -> `Self_minor_words in
  String.concat ""
    (List.map
       (fun (path, w) -> Printf.sprintf "%s %d\n" path w)
       (Prof.folded ~weight r.prof))

let span_json r (c : Prof.cell) =
  J.Obj
    [
      ("type", J.Str "span");
      ("scenario", J.Str (Wallclock.scenario_name r.scenario));
      ("alloc", J.Str r.alloc_label);
      ("span", J.Str (Prof.Span.name c.Prof.span));
      ("subsystem", J.Str (Prof.Span.subsystem c.Prof.span));
      ("calls", J.Int c.Prof.calls);
      ("self_ns", J.Float c.Prof.self_ns);
      ("incl_ns", J.Float c.Prof.incl_ns);
      ("self_minor_words", J.Float c.Prof.self_minor_words);
      ("self_major_words", J.Float c.Prof.self_major_words);
    ]

let summary_json r =
  J.Obj
    [
      ("type", J.Str "scenario_summary");
      ("scenario", J.Str (Wallclock.scenario_name r.scenario));
      ("alloc", J.Str r.alloc_label);
      ("events", J.Int r.events);
      ("updates", J.Int r.updates);
      ("wall_s", J.Float r.wall_s);
      ("total_self_ns", J.Float (Prof.total_self_ns r.prof));
      ("total_minor_words", J.Float (Prof.total_minor_words r.prof));
      ("total_major_words", J.Float (Prof.total_major_words r.prof));
      ("ns_per_event", J.Float (ns_per_event r));
      ("allocs_per_event", J.Float (allocs_per_event r));
      ("truncated", J.Int (Prof.truncated r.prof));
      ("dropped_exits", J.Int (Prof.dropped_exits r.prof));
      ( "subsystems",
        J.List
          (List.map
             (fun (sub, ns, words) ->
               J.Obj
                 [
                   ("subsystem", J.Str sub);
                   ("self_ns", J.Float ns);
                   ("self_minor_words", J.Float words);
                 ])
             (Prof.subsystem_totals r.prof)) );
    ]

(* One NDJSON line per span per run, then one scenario_summary line per
   run, then one trailing summary line — the same layout `check --json`
   and `regress --json` use, so CI tooling can share a parser. *)
let to_ndjson rs =
  let b = Buffer.create 4096 in
  let line j =
    Buffer.add_string b (J.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun r ->
      List.iter (fun c -> line (span_json r c)) (Prof.totals r.prof);
      line (summary_json r))
    rs;
  line (J.Obj [ ("type", J.Str "summary"); ("runs", J.Int (List.length rs)) ]);
  Buffer.contents b
