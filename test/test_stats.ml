(* lib/stats: metric registry, snapshot providers, the virtual-time
   sampler, and the machine-readable bench document + regression gate.

   The cross-checking tests recount allocator state independently of the
   providers (straight from the Buddy/Frame structures and the lib/check
   auditors) so a provider bug cannot hide behind itself. *)

module Registry = Stats.Registry
module Providers = Stats.Providers
module Live = Stats.Live
module B = Stats.Bench_json
module J = Metrics.Json
module R = Metrics.Report
module W = Workloads

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.Float 3.5);
        ("c", J.Str "he\"llo\n");
        ("d", J.List [ J.Bool true; J.Null; J.Int (-7) ]);
        ("nested", J.Obj [ ("x", J.Float 0.1 ) ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' ->
      Alcotest.(check string) "compact round-trip" (J.to_string v)
        (J.to_string v');
      (match J.of_string (J.to_string_pretty v) with
      | Error e -> Alcotest.failf "pretty reparse failed: %s" e
      | Ok v'' ->
          Alcotest.(check string) "pretty round-trip" (J.to_string v)
            (J.to_string v''))

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "parsed garbage %S" s
      | Error _ -> ())
    bad;
  (* Non-finite floats serialize as null rather than emitting invalid JSON. *)
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float nan))

let test_json_accessors () =
  match J.of_string {|{"i":3,"f":2.5,"s":"x","l":[1]}|} with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check (option int)) "int" (Some 3)
        (Option.bind (J.member "i" j) J.to_int_opt);
      Alcotest.(check (option (float 0.0))) "int as float" (Some 3.)
        (Option.bind (J.member "i" j) J.to_float_opt);
      Alcotest.(check (option (float 0.0))) "float" (Some 2.5)
        (Option.bind (J.member "f" j) J.to_float_opt);
      Alcotest.(check (option string)) "string" (Some "x")
        (Option.bind (J.member "s" j) J.to_string_opt);
      Alcotest.(check (option int)) "missing" None
        (Option.bind (J.member "zzz" j) J.to_int_opt)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_basic () =
  let r = Registry.create () in
  let x = ref 0. in
  Registry.counter r ~name:"a.count" ~help:"first" (fun () -> !x);
  Registry.gauge r ~name:"b.gauge" ~unit_:"pages" (fun () -> 7.);
  Registry.derived r ~name:"c.derived" (fun () -> 0.5);
  Alcotest.(check int) "size" 3 (Registry.size r);
  Alcotest.(check (list string)) "registration order"
    [ "a.count"; "b.gauge"; "c.derived" ]
    (Registry.names r);
  x := 5.;
  (match Registry.find r "a.count" with
  | None -> Alcotest.fail "find"
  | Some m -> Alcotest.(check (float 0.0)) "live read" 5. (m.Registry.read ()));
  Alcotest.(check bool) "dup raises" true
    (try
       Registry.gauge r ~name:"a.count" (fun () -> 0.);
       false
     with Invalid_argument _ -> true);
  let t = Registry.table r in
  Alcotest.(check bool) "table has name" true (contains ~sub:"b.gauge" t);
  Alcotest.(check bool) "table has unit" true (contains ~sub:"pages" t)

let test_registry_attach () =
  let eng = Sim.Engine.create () in
  let s = Sim.Sampler.create eng ~period_ns:100 () in
  let r = Registry.create () in
  Registry.counter r ~name:"m.one" (fun () -> 1.);
  Registry.gauge r ~name:"m.two" (fun () -> 2.);
  let n =
    Registry.attach r ~filter:(fun m -> m.Registry.name = "m.two") s
  in
  Alcotest.(check int) "filtered attach" 1 n;
  Alcotest.(check (list string)) "source names" [ "m.two" ]
    (Sim.Sampler.source_names s)

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_rings_and_export () =
  let eng = Sim.Engine.create () in
  let s = Sim.Sampler.create eng ~capacity:8 ~period_ns:10 () in
  let ticks = ref 0 in
  Sim.Sampler.add_source s ~name:"ticks" (fun () ->
      incr ticks;
      float_of_int !ticks);
  Alcotest.(check bool) "dup source raises" true
    (try
       Sim.Sampler.add_source s ~name:"ticks" (fun () -> 0.);
       false
     with Invalid_argument _ -> true);
  Sim.Sampler.start s;
  (* Keep the engine alive past the daemon sampler with a real event. *)
  ignore (Sim.Engine.schedule eng ~after:200 (fun () -> ()));
  Sim.Engine.run_until_quiet eng;
  Alcotest.(check int) "ring bounded" 8 (Sim.Sampler.rows s);
  Alcotest.(check bool) "oldest rows dropped" true (Sim.Sampler.dropped s > 0);
  let csv = Sim.Sampler.to_csv s in
  Alcotest.(check bool) "csv header" true
    (contains ~sub:"time_ns,ticks" csv);
  Alcotest.(check int) "csv rows = header + ring"
    (1 + Sim.Sampler.rows s)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  (match Sim.Sampler.series s ~name:"ticks" with
  | None -> Alcotest.fail "series missing"
  | Some pts ->
      Alcotest.(check int) "series length" 8 (Array.length pts);
      let times = Array.map fst pts in
      Array.iteri
        (fun i t -> if i > 0 then Alcotest.(check bool) "monotonic" true (t > times.(i - 1)))
        times);
  let nd = Sim.Sampler.to_ndjson s in
  let first_line = List.hd (String.split_on_char '\n' nd) in
  (match J.of_string first_line with
  | Error e -> Alcotest.failf "ndjson line unparseable: %s" e
  | Ok j ->
      Alcotest.(check bool) "ndjson has t" true (J.member "t" j <> None);
      Alcotest.(check bool) "ndjson has source" true
        (J.member "ticks" j <> None))

let test_sampler_wraparound_keeps_newest () =
  (* Overfill the ring 4x: memory must stay bounded at [capacity] rows
     and the retained window must be exactly the newest sweeps, with the
     CSV and NDJSON exports agreeing row for row. The source returns the
     sweep ordinal, so expected values are computable: 32 sweeps into a
     ring of 8 leaves ordinals 25..32 at times 250..320. *)
  let capacity = 8 and period = 10 and sweeps = 32 in
  let eng = Sim.Engine.create () in
  let s = Sim.Sampler.create eng ~capacity ~period_ns:period () in
  let n = ref 0 in
  Sim.Sampler.add_source s ~name:"ordinal" (fun () ->
      incr n;
      float_of_int !n);
  Sim.Sampler.start s;
  (* One tick past the last sweep so the t = sweeps*period daemon event
     runs before the engine quiesces. *)
  ignore (Sim.Engine.schedule eng ~after:((period * sweeps) + 1) (fun () -> ()));
  Sim.Engine.run_until_quiet eng;
  Alcotest.(check int) "all sweeps fired" sweeps !n;
  Alcotest.(check int) "rows capped at capacity" capacity
    (Sim.Sampler.rows s);
  Alcotest.(check int) "dropped = overflow" (sweeps - capacity)
    (Sim.Sampler.dropped s);
  let rows = Sim.Sampler.to_array s in
  Array.iteri
    (fun i (t, vs) ->
      let ordinal = sweeps - capacity + 1 + i in
      Alcotest.(check int) "newest-window time" (ordinal * period) t;
      Alcotest.(check (float 0.)) "newest-window value"
        (float_of_int ordinal) vs.(0))
    rows;
  (* Both exports carry exactly the retained window, oldest first. *)
  let csv_rows =
    match
      List.filter (fun l -> l <> "") (String.split_on_char '\n'
        (Sim.Sampler.to_csv s))
    with
    | _header :: rows -> rows
    | [] -> Alcotest.fail "empty csv"
  in
  Alcotest.(check int) "csv rows = ring" capacity (List.length csv_rows);
  Alcotest.(check string) "csv first row is oldest retained"
    (Printf.sprintf "%d,%d" ((sweeps - capacity + 1) * period)
       (sweeps - capacity + 1))
    (List.hd csv_rows);
  let nd_rows =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Sim.Sampler.to_ndjson s))
  in
  Alcotest.(check int) "ndjson rows = ring" capacity (List.length nd_rows);
  List.iteri
    (fun i line ->
      match J.of_string line with
      | Error e -> Alcotest.failf "ndjson row %d unparseable: %s" i e
      | Ok j ->
          let ordinal = sweeps - capacity + 1 + i in
          Alcotest.(check (option int)) "ndjson time"
            (Some (ordinal * period))
            (Option.bind (J.member "t" j) J.to_int_opt);
          Alcotest.(check (option (float 0.))) "ndjson value"
            (Some (float_of_int ordinal))
            (Option.bind (J.member "ordinal" j) J.to_float_opt))
    nd_rows

(* ------------------------------------------------------------------ *)
(* Live runs: determinism and provider-vs-recount agreement            *)
(* ------------------------------------------------------------------ *)

let live_cfg kind =
  {
    Live.kind;
    seed = 11;
    cpus = 2;
    scale = 1.0;
    duration_ns = 30_000_000 (* 30 ms *);
    sample_every_ns = 1_000_000;
    capacity = 256;
    total_pages = 16_384;
  }

let test_live_deterministic () =
  let run () = Live.run (live_cfg W.Env.Prudence_alloc) in
  let a = run () and b = run () in
  Alcotest.(check string) "csv byte-identical"
    (Sim.Sampler.to_csv a.Live.sampler)
    (Sim.Sampler.to_csv b.Live.sampler);
  Alcotest.(check string) "ndjson byte-identical"
    (Sim.Sampler.to_ndjson a.Live.sampler)
    (Sim.Sampler.to_ndjson b.Live.sampler);
  Alcotest.(check string) "snapshot identical"
    (Providers.snapshot a.Live.env)
    (Providers.snapshot b.Live.env);
  Alcotest.(check int) "same updates" a.Live.updates b.Live.updates

let test_live_watch_fires () =
  let count = ref 0 in
  let r =
    Live.run
      ~on_watch:(fun ~time_ns:_ ~snapshot ->
        incr count;
        Alcotest.(check bool) "watch snapshot has rcu" true
          (contains ~sub:"rcu:" snapshot))
      ~watch_every_ns:10_000_000
      (live_cfg W.Env.Prudence_alloc)
  in
  Alcotest.(check bool) "watch fired" true (!count >= 2);
  Alcotest.(check bool) "workload ran" true (r.Live.updates > 0)

(* The providers must agree with independent recounts of the same
   structures — and with the lib/check auditors. *)
let check_env_agreement kind =
  let r = Live.run (live_cfg kind) in
  let env = r.Live.env in
  (* Buddy provider vs Buddy accessors. *)
  let bv = Providers.buddy_view ~pressure:env.W.Env.pressure env.W.Env.buddy in
  Alcotest.(check int) "buddy total" (Mem.Buddy.total_pages env.W.Env.buddy)
    bv.Providers.total_pages;
  Alcotest.(check int) "buddy used" (Mem.Buddy.used_pages env.W.Env.buddy)
    bv.Providers.used_pages;
  Alcotest.(check int) "buddy used+free = total"
    bv.Providers.total_pages
    (bv.Providers.used_pages + bv.Providers.free_pages);
  (* Free pages recounted from the per-order block counts. *)
  let free_from_orders =
    Array.to_list bv.Providers.free_blocks_per_order
    |> List.mapi (fun order blocks -> blocks * (1 lsl order))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "buddyinfo columns recount free_pages"
    bv.Providers.free_pages free_from_orders;
  (* Slab provider vs a direct walk of the cache structures. *)
  let rows = Providers.slab_rows env.W.Env.backend in
  let live = ref 0 and slabs = ref 0 and latent = ref 0 in
  env.W.Env.backend.Slab.Backend.iter_caches (fun c ->
      live := !live + c.Slab.Frame.live_objs;
      slabs := !slabs + c.Slab.Frame.total_slabs;
      latent := !latent + c.Slab.Frame.latent_count);
  let sum f = List.fold_left (fun a row -> a + f row) 0 rows in
  Alcotest.(check int) "slab active recount" !live
    (sum (fun row -> row.Providers.active_objs));
  Alcotest.(check int) "slab slabs recount" !slabs
    (sum (fun row -> row.Providers.total_slabs));
  Alcotest.(check int) "slab latent recount" !latent
    (sum (fun row -> row.Providers.latent_objs));
  (* Latent views: per-cookie occupancy must sum to the outstanding
     count, which must match the frame counter. *)
  let views = Providers.latent_views ~smr:env.W.Env.smr env.W.Env.backend in
  List.iter
    (fun v ->
      let by_cookie =
        List.fold_left
          (fun a (c : Providers.cookie_row) ->
            a + c.Providers.in_latent_caches + c.Providers.in_latent_slabs)
          0 v.Providers.by_cookie
      in
      Alcotest.(check int)
        (v.Providers.l_cache_name ^ " cookies sum to outstanding")
        v.Providers.outstanding by_cookie)
    views;
  (match kind with
  | W.Env.Baseline ->
      Alcotest.(check int) "no latent views for slub" 0 (List.length views)
  | W.Env.Prudence_alloc | W.Env.Ebr_debra | W.Env.Hyaline_alloc ->
      Alcotest.(check bool) "latent view present" true (views <> []));
  (* Registry totals vs the same recounts. *)
  let reg = r.Live.registry in
  let read name =
    match Registry.find reg name with
    | Some m -> m.Registry.read ()
    | None -> Alcotest.failf "metric %s not registered" name
  in
  Alcotest.(check (float 0.0)) "registry active_objs" (float_of_int !live)
    (read "slab.active_objs");
  Alcotest.(check (float 0.0)) "registry used_pages"
    (float_of_int bv.Providers.used_pages)
    (read "buddy.used_pages");
  if kind = W.Env.Prudence_alloc then
    Alcotest.(check (float 0.0)) "registry latent_outstanding"
      (float_of_int !latent)
      (read "prudence.latent_outstanding");
  (* And the lib/check auditors agree the stack is sane. *)
  Alcotest.(check (list string)) "audit clean" [] (Check.Audit.env env)

let test_agreement_prudence () = check_env_agreement W.Env.Prudence_alloc
let test_agreement_slub () = check_env_agreement W.Env.Baseline

(* ------------------------------------------------------------------ *)
(* Bench document + regression gate                                    *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  B.make
    ~config:{ B.seed = 42; scale = 0.05; cpus = 4; runs = 1 }
    ~metrics:
      [
        R.metric "m.info" 10.;
        R.metric ~direction:R.Lower_better "m.low" 100.;
        R.metric ~direction:R.Higher_better ~tolerance_pct:10. "m.high" 50.;
      ]

let test_bench_json_roundtrip () =
  match B.of_json (B.to_json sample_doc) with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check string) "json identical"
        (J.to_string (B.to_json sample_doc))
        (J.to_string (B.to_json d));
      let file = Filename.temp_file "bench" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          B.write_file file sample_doc;
          match B.load_file file with
          | Error e -> Alcotest.fail e
          | Ok d' ->
              Alcotest.(check string) "file round-trip"
                (J.to_string (B.to_json sample_doc))
                (J.to_string (B.to_json d')))

let test_bench_json_rejects () =
  (match B.load_file "/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "loaded nonexistent file"
  | Error _ -> ());
  match B.of_json (J.Obj [ ("schema", J.Str "wrong/9") ]) with
  | Ok _ -> Alcotest.fail "accepted wrong schema"
  | Error e -> Alcotest.(check bool) "names schema" true (contains ~sub:"schema" e)

let with_metrics metrics = { sample_doc with B.metrics }

let drift_status drifts name =
  match List.find_opt (fun d -> d.B.name = name) drifts with
  | Some d -> d.B.status
  | None -> Alcotest.failf "no drift entry for %s" name

let test_compare_statuses () =
  let current =
    with_metrics
      [
        R.metric "m.info" 10.4 (* +4%: within default 5% *);
        R.metric ~direction:R.Lower_better "m.low" 120. (* +20%: regressed *);
        (* m.high missing from current *)
        R.metric ~direction:R.Higher_better "m.new" 1. (* added *);
      ]
  in
  let drifts = B.compare_runs ~baseline:sample_doc ~current () in
  Alcotest.(check string) "within" "within"
    (B.status_name (drift_status drifts "m.info"));
  Alcotest.(check string) "regressed" "regressed"
    (B.status_name (drift_status drifts "m.low"));
  Alcotest.(check string) "missing" "missing"
    (B.status_name (drift_status drifts "m.high"));
  Alcotest.(check string) "added" "added"
    (B.status_name (drift_status drifts "m.new"));
  Alcotest.(check int) "failures = regressed + missing" 2
    (List.length (B.failures drifts));
  (* Improvements never fail the gate. *)
  let improved =
    with_metrics
      [
        R.metric "m.info" 10.;
        R.metric ~direction:R.Lower_better "m.low" 50.;
        R.metric ~direction:R.Higher_better ~tolerance_pct:10. "m.high" 80.;
      ]
  in
  let drifts = B.compare_runs ~baseline:sample_doc ~current:improved () in
  Alcotest.(check int) "no failures on improvement" 0
    (List.length (B.failures drifts));
  Alcotest.(check string) "lower_better improved" "improved"
    (B.status_name (drift_status drifts "m.low"))

let test_compare_config_mismatch () =
  Alcotest.(check bool) "same config ok" true
    (B.config_mismatch ~baseline:sample_doc ~current:sample_doc = None);
  let other =
    { sample_doc with B.config = { sample_doc.B.config with B.cpus = 8 } }
  in
  match B.config_mismatch ~baseline:sample_doc ~current:other with
  | None -> Alcotest.fail "missed config mismatch"
  | Some msg -> Alcotest.(check bool) "message" true (contains ~sub:"cpus" msg)

let test_report_all_metrics_dup () =
  let mk id =
    R.make ~metrics:[ R.metric "dup.name" 1. ] ~id ~title:"t" ~paper_claim:"c"
      ~verdict:"v" "body"
  in
  Alcotest.(check bool) "duplicate names rejected" true
    (try
       ignore (R.all_metrics [ mk "a"; mk "b" ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: rejects garbage" `Quick test_json_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "registry: basics" `Quick test_registry_basic;
    Alcotest.test_case "registry: filtered attach" `Quick test_registry_attach;
    Alcotest.test_case "sampler: bounded ring + export" `Quick
      test_sampler_rings_and_export;
    Alcotest.test_case "sampler: wraparound keeps newest window" `Quick
      test_sampler_wraparound_keeps_newest;
    Alcotest.test_case "live: byte-identical reruns" `Slow
      test_live_deterministic;
    Alcotest.test_case "live: watch hook fires" `Slow test_live_watch_fires;
    Alcotest.test_case "providers agree with recounts (prudence)" `Slow
      test_agreement_prudence;
    Alcotest.test_case "providers agree with recounts (slub)" `Slow
      test_agreement_slub;
    Alcotest.test_case "bench json: round-trip" `Quick
      test_bench_json_roundtrip;
    Alcotest.test_case "bench json: rejects bad input" `Quick
      test_bench_json_rejects;
    Alcotest.test_case "gate: drift statuses" `Quick test_compare_statuses;
    Alcotest.test_case "gate: config mismatch" `Quick
      test_compare_config_mismatch;
    Alcotest.test_case "report: duplicate metric names" `Quick
      test_report_all_metrics_dup;
  ]
