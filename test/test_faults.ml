open Test_util

(* Fault-injection layer: each Plan spec must perturb exactly the layer it
   targets, deterministically, and the detectors must see it. *)

let install env plan =
  Faults.Injector.install ~pressure:env.pressure plan ~machine:env.machine
    ~buddy:env.buddy ~rcu:env.rcu

let test_cpu_stall_suppresses_ticks () =
  let env = make_env ~cpus:2 () in
  let plan =
    Faults.Plan.make ~seed:1
      [
        Faults.Plan.Cpu_stall
          { cpu = 1; at_ns = Sim.Clock.ms 2; duration_ns = Sim.Clock.ms 10 };
      ]
  in
  let inj = install env plan in
  Sim.Engine.run ~until:Sim.(Clock.ms 30) env.eng;
  let c1 = cpu env 1 in
  Alcotest.(check bool) "ticks were suppressed" true
    (c1.Sim.Machine.suppressed_ticks > 0);
  Alcotest.(check bool) "stall cleared after window" false
    c1.Sim.Machine.stalled;
  let s = Faults.Injector.stats inj in
  Alcotest.(check int) "one stall window" 1 s.Faults.Injector.stall_windows

let test_cpu_stall_pins_gp () =
  let config =
    { Rcu.default_config with stall_timeout_ns = Some (Sim.Clock.ms 3) }
  in
  let env = make_env ~cpus:2 ~rcu_config:config () in
  let plan =
    Faults.Plan.make ~seed:1
      [
        Faults.Plan.Cpu_stall
          { cpu = 1; at_ns = Sim.Clock.ms 1; duration_ns = Sim.Clock.ms 20 };
      ]
  in
  ignore (install env plan);
  Sim.Engine.schedule_at ~daemon:true env.eng ~time:(Sim.Clock.ms 2)
    (fun () -> Rcu.request_gp env.rcu)
  |> ignore;
  Sim.Engine.run ~until:Sim.(Clock.ms 15) env.eng;
  Alcotest.(check int) "gp pinned by the stalled cpu" 0
    (Rcu.completed env.rcu);
  let warnings = Rcu.stall_warnings env.rcu in
  Alcotest.(check bool) "stall warning emitted" true (warnings <> []);
  List.iter
    (fun (w : Rcu.stall_warning) ->
      Alcotest.(check (list int)) "holdout names the stalled cpu" [ 1 ]
        w.Rcu.holdouts)
    warnings;
  Sim.Engine.run ~until:Sim.(Clock.ms 40) env.eng;
  Alcotest.(check bool) "gp completes once the stall ends" true
    (Rcu.completed env.rcu >= 1)

let test_stalled_reader_holdout_named () =
  let config =
    { Rcu.default_config with stall_timeout_ns = Some (Sim.Clock.ms 2) }
  in
  let env = make_env ~cpus:4 ~rcu_config:config () in
  let plan =
    Faults.Plan.make ~seed:1
      [
        Faults.Plan.Stalled_reader
          {
            cpu = 2;
            at_ns = Sim.Clock.ms 1;
            hold_ns = Some (Sim.Clock.ms 10);
          };
      ]
  in
  let inj = install env plan in
  Sim.Engine.schedule_at ~daemon:true env.eng ~time:(Sim.Clock.ms 2)
    (fun () -> Rcu.request_gp env.rcu)
  |> ignore;
  Sim.Engine.run ~until:Sim.(Clock.ms 30) env.eng;
  let s = Rcu.stats env.rcu in
  Alcotest.(check bool) "warnings recorded" true (s.Rcu.stall_warnings >= 1);
  let holdouts =
    List.concat_map
      (fun (w : Rcu.stall_warning) -> w.Rcu.holdouts)
      (Rcu.stall_warnings env.rcu)
  in
  Alcotest.(check bool) "cpu 2 named as holdout" true (List.mem 2 holdouts);
  Alcotest.(check bool) "other cpus not blamed" false (List.mem 0 holdouts);
  Alcotest.(check int) "one reader stalled" 1
    (Faults.Injector.stats inj).Faults.Injector.readers_stalled;
  Alcotest.(check bool) "gp completes after release" true
    (Rcu.completed env.rcu >= 1)

let test_no_warnings_without_faults () =
  let config =
    { Rcu.default_config with stall_timeout_ns = Some (Sim.Clock.ms 5) }
  in
  let env = make_env ~cpus:4 ~rcu_config:config () in
  for _ = 1 to 50 do
    Rcu.call_rcu env.rcu (cpu0 env) (fun () -> ())
  done;
  Sim.Engine.run ~until:Sim.(Clock.ms 100) env.eng;
  Alcotest.(check int) "no stall warnings on a healthy run" 0
    (Rcu.stats env.rcu).Rcu.stall_warnings

let test_alloc_fault_window () =
  let env = make_env ~cpus:2 ~total_pages:1024 () in
  let plan =
    Faults.Plan.make ~seed:7
      [
        Faults.Plan.Alloc_fault
          {
            at_ns = Sim.Clock.ms 1;
            duration_ns = Sim.Clock.ms 2;
            fail_prob = 1.0;
          };
      ]
  in
  ignore (install env plan);
  let inside = ref None and after = ref None in
  Sim.Engine.schedule_at ~daemon:true env.eng ~time:(Sim.Clock.ms 2)
    (fun () -> inside := Some (Mem.Buddy.alloc env.buddy ~order:0))
  |> ignore;
  Sim.Engine.schedule_at ~daemon:true env.eng ~time:(Sim.Clock.ms 5)
    (fun () -> after := Some (Mem.Buddy.alloc env.buddy ~order:0))
  |> ignore;
  Sim.Engine.run ~until:Sim.(Clock.ms 10) env.eng;
  Alcotest.(check bool) "refused inside the window" true
    (!inside = Some None);
  Alcotest.(check bool) "succeeds after the window" true
    (match !after with Some (Some _) -> true | _ -> false);
  Alcotest.(check int) "refusal counted as injected" 1
    (Mem.Buddy.injected_failures env.buddy);
  Alcotest.(check int) "not counted as genuine exhaustion" 0
    (Mem.Buddy.failed_allocs env.buddy)

let test_pressure_spike_level_roundtrip () =
  let env = make_env ~cpus:2 ~total_pages:256 () in
  let log = ref [] in
  Mem.Pressure.on_level_change env.pressure (fun l -> log := l :: !log);
  let plan =
    Faults.Plan.make ~seed:3
      [
        Faults.Plan.Pressure_spike
          {
            at_ns = Sim.Clock.ms 1;
            duration_ns = Sim.Clock.ms 5;
            pages = 250;
          };
      ]
  in
  let inj = install env plan in
  Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
  Alcotest.(check bool) "reached critical during the spike" true
    (List.mem Mem.Pressure.Critical !log);
  Alcotest.(check bool) "back to normal after release" true
    (List.hd !log = Mem.Pressure.Normal);
  Alcotest.(check int) "all pages released" 0 (Mem.Buddy.used_pages env.buddy);
  let s = Faults.Injector.stats inj in
  Alcotest.(check bool) "seizure recorded" true
    (s.Faults.Injector.peak_pages_seized >= 250)

let test_cb_flood_enqueues () =
  let env = make_env ~cpus:2 () in
  let plan =
    Faults.Plan.make ~seed:5
      [
        Faults.Plan.Cb_flood
          {
            cpu = 0;
            at_ns = Sim.Clock.ms 1;
            duration_ns = Sim.Clock.ms 5;
            per_ms = 10;
          };
      ]
  in
  let inj = install env plan in
  Sim.Engine.run ~until:Sim.(Clock.ms 50) env.eng;
  let s = Faults.Injector.stats inj in
  Alcotest.(check bool) "flood enqueued callbacks" true
    (s.Faults.Injector.flood_cbs >= 50);
  Alcotest.(check bool) "rcu saw them" true
    ((Rcu.stats env.rcu).Rcu.cbs_queued >= s.Faults.Injector.flood_cbs)

let test_injection_deterministic () =
  let run () =
    let env = make_env ~cpus:2 ~total_pages:512 () in
    let plan =
      Faults.Plan.make ~seed:11
        [
          Faults.Plan.Alloc_fault
            {
              at_ns = Sim.Clock.ms 1;
              duration_ns = Sim.Clock.ms 10;
              fail_prob = 0.5;
            };
        ]
    in
    ignore (install env plan);
    let refused = ref 0 in
    for i = 1 to 10 do
      Sim.Engine.schedule_at ~daemon:true env.eng
        ~time:(Sim.Clock.ms 1 + (i * Sim.Clock.us 500))
        (fun () ->
          match Mem.Buddy.alloc env.buddy ~order:0 with
          | None -> incr refused
          | Some b -> Mem.Buddy.free env.buddy b)
      |> ignore
    done;
    Sim.Engine.run ~until:Sim.(Clock.ms 20) env.eng;
    (!refused, Mem.Buddy.injected_failures env.buddy)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same refusals" true (a = b);
  Alcotest.(check bool) "some but not all refused" true
    (fst a > 0 && fst a < 10)

(* A stalled reader (injected) still holds the object when a broken
   allocator (unsafe_skip_gp) recycles it: the safety checker must flag
   the premature reuse. *)
let test_stalled_reader_catches_unsafe_skip_gp () =
  let config = { Prudence.default_config with unsafe_skip_gp = true } in
  let env = make_env ~cpus:2 () in
  let pr = Prudence.create ~config env.fenv env.rcu in
  let cache = Prudence.create_cache pr ~name:"t" ~obj_size:128 in
  let readers = Rcu.Readers.create env.rcu in
  env.fenv.Slab.Frame.reuse_check <-
    Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"chaos");
  let plan =
    Faults.Plan.make ~seed:1
      [
        Faults.Plan.Stalled_reader
          { cpu = 1; at_ns = Sim.Clock.ms 1; hold_ns = None };
      ]
  in
  ignore (install env plan);
  Sim.Engine.run ~until:Sim.(Clock.ms 2) env.eng;
  let c0 = cpu0 env and c1 = cpu env 1 in
  Alcotest.(check bool) "reader section open on cpu 1" true
    (c1.Sim.Machine.rcu_nesting > 0);
  let obj =
    match Prudence.alloc pr cache c0 with
    | Some o -> o
    | None -> Alcotest.fail "alloc failed"
  in
  (* Drain the per-cpu object cache so the deferred object is the only
     source for the next allocation. *)
  let pc = Slab.Frame.pcpu_for cache c0 in
  let rec drain () =
    match Slab.Frame.pop_ocache pc with
    | Some o ->
        Slab.Frame.hand_to_user cache c0 o;
        drain ()
    | None -> ()
  in
  drain ();
  (* The stalled reader still references the object... *)
  Rcu.Readers.hold readers c1 ~oid:obj.Slab.Frame.oid;
  (* ...while the writer defers it and unsafe_skip_gp recycles it without
     waiting for the (pinned) grace period. *)
  Prudence.free_deferred pr cache c0 obj;
  let next =
    match Prudence.alloc pr cache c0 with
    | Some o -> o
    | None -> Alcotest.fail "realloc failed"
  in
  Alcotest.(check int) "object recycled under the reader" obj.Slab.Frame.oid
    next.Slab.Frame.oid;
  Alcotest.(check bool) "premature reuse flagged" true
    (List.length (Rcu.Readers.violations readers) >= 1)

let suite =
  [
    Alcotest.test_case "cpu stall suppresses ticks" `Quick
      test_cpu_stall_suppresses_ticks;
    Alcotest.test_case "cpu stall pins gp + warning" `Quick
      test_cpu_stall_pins_gp;
    Alcotest.test_case "stalled reader named as holdout" `Quick
      test_stalled_reader_holdout_named;
    Alcotest.test_case "no warnings without faults" `Quick
      test_no_warnings_without_faults;
    Alcotest.test_case "alloc fault window" `Quick test_alloc_fault_window;
    Alcotest.test_case "pressure spike level roundtrip" `Quick
      test_pressure_spike_level_roundtrip;
    Alcotest.test_case "cb flood enqueues" `Quick test_cb_flood_enqueues;
    Alcotest.test_case "injection deterministic" `Quick
      test_injection_deterministic;
    Alcotest.test_case "stalled reader catches unsafe_skip_gp" `Quick
      test_stalled_reader_catches_unsafe_skip_gp;
  ]
