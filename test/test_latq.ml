(* Latent-queue data structures: the cookie-bucketed queues must be
   observationally equivalent to the naive single-list bookkeeping they
   replaced (same elements, same newest-first harvest order), and a
   harvest must cost O(ripe), never a walk over unripe buckets. *)

let harvest_list q ~completed =
  let out = ref [] in
  let n = Slab.Latq.harvest q ~completed ~f:(fun v -> out := v :: !out) in
  (n, List.rev !out)

(* Reference model: one newest-first list, [List.partition]ed on
   harvest — exactly the bookkeeping Latq replaced. *)
let prop_bucketed_matches_naive =
  QCheck.Test.make ~name:"latq matches naive partition bookkeeping"
    ~count:300
    QCheck.(list (pair (int_bound 1) (int_bound 8)))
    (fun ops ->
      let q = Slab.Latq.create () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun (op, k) ->
          if op = 0 then begin
            let v = !next in
            incr next;
            Slab.Latq.push q ~cookie:k v;
            model := (k, v) :: !model;
            Slab.Latq.length q = List.length !model
          end
          else begin
            let ripe, rest = List.partition (fun (c, _) -> c <= k) !model in
            model := rest;
            let n, got = harvest_list q ~completed:k in
            n = List.length ripe
            && got = List.map snd ripe
            && Slab.Latq.length q = List.length rest
          end)
        ops)

let test_harvest_is_o_ripe () =
  (* 10k latent objects spread over 100 cookies; completing the oldest
     grace period must touch its own 100 objects plus one bucket header
     and nothing else — [work] counts every element and header a
     harvest visits. *)
  let q = Slab.Latq.create () in
  let cookies = 100 and per = 100 in
  for c = 1 to cookies do
    for i = 0 to per - 1 do
      Slab.Latq.push q ~cookie:c ((c * 1000) + i)
    done
  done;
  Alcotest.(check int) "populated" (cookies * per) (Slab.Latq.length q);
  let w0 = Slab.Latq.work q in
  let n, _ = harvest_list q ~completed:1 in
  let w1 = Slab.Latq.work q in
  Alcotest.(check int) "one bucket ripe" per n;
  Alcotest.(check int) "O(ripe) work: objects + 1 header" (per + 1) (w1 - w0);
  Alcotest.(check int)
    "other buckets untouched"
    ((cookies - 1) * per)
    (Slab.Latq.length q)

let test_harvest_merge_order () =
  (* Interleaved pushes across two cookies: harvest must emit globally
     newest-first across buckets, as the old single list's partition
     did. *)
  let q = Slab.Latq.create () in
  Slab.Latq.push q ~cookie:1 10;
  Slab.Latq.push q ~cookie:2 20;
  Slab.Latq.push q ~cookie:1 11;
  Slab.Latq.push q ~cookie:2 21;
  Slab.Latq.push q ~cookie:1 12;
  let n, got = harvest_list q ~completed:2 in
  Alcotest.(check int) "all ripe" 5 n;
  Alcotest.(check (list int)) "newest first" [ 12; 21; 11; 20; 10 ] got

module Fifo = Slab.Latq.Fifo

let prop_fifo_matches_model =
  QCheck.Test.make ~name:"latq fifo matches list model" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 4)))
    (fun ops ->
      let q = Fifo.create () in
      let model = ref [] in
      (* oldest first: (cookie, v) *)
      let cookie = ref 0 in
      let next = ref 0 in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              cookie := !cookie + k;
              let v = !next in
              incr next;
              Fifo.push_back q ~cookie:!cookie v;
              model := !model @ [ (!cookie, v) ];
              true
          | 1 -> (
              let completed = !cookie - k in
              match (!model, Fifo.pop_front_ripe q ~completed) with
              | (c, v) :: rest, Some v' when c <= completed ->
                  model := rest;
                  v = v'
              | (c, _) :: _, None -> c > completed
              | [], None -> true
              | _ -> false)
          | 2 -> (
              match (List.rev !model, Fifo.pop_back q) with
              | (_, v) :: rest_rev, Some v' ->
                  model := List.rev rest_rev;
                  v = v'
              | [], None -> true
              | _ -> false)
          | _ ->
              let completed = !cookie - k in
              let expect =
                List.length (List.filter (fun (c, _) -> c <= completed) !model)
              in
              Fifo.ripe_count q ~completed = expect
              && Fifo.length q = List.length !model)
        ops)

let test_fifo_merge_ripe_batches () =
  let q = Fifo.create () in
  for v = 0 to 9 do
    Fifo.push_back q ~cookie:(v / 3) v
  done;
  (* cookies 0,0,0,1,1,1,2,2,2,3: completed=1 makes six ripe. *)
  let got = ref [] in
  let n =
    Fifo.merge_ripe q ~completed:1 ~limit:4 ~f:(fun v -> got := v :: !got)
  in
  Alcotest.(check int) "limit respected" 4 n;
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2; 3 ] (List.rev !got);
  got := [];
  let n2 =
    Fifo.merge_ripe q ~completed:1 ~limit:10 ~f:(fun v -> got := v :: !got)
  in
  Alcotest.(check int) "rest of the ripe run" 2 n2;
  Alcotest.(check (list int)) "continues in order" [ 4; 5 ] (List.rev !got);
  Alcotest.(check int) "unripe stay" 4 (Fifo.length q)

let test_fifo_wraparound () =
  (* Interleaved push/pop keeps the ring small while the head laps the
     capacity many times. *)
  let q = Fifo.create () in
  for i = 0 to 99 do
    Fifo.push_back q ~cookie:i i;
    if i >= 2 then
      match Fifo.pop_front_ripe q ~completed:i with
      | Some v -> Alcotest.(check int) "fifo order" (i - 2) v
      | None -> Alcotest.fail "expected a ripe element"
  done;
  Alcotest.(check int) "two left" 2 (Fifo.length q)

let test_fifo_growth () =
  (* 100 elements over 100 distinct cookies grows both the payload ring
     and the run-length index past their initial capacities. *)
  let q = Fifo.create () in
  for i = 0 to 99 do
    Fifo.push_back q ~cookie:i i
  done;
  Alcotest.(check int) "ripe prefix" 50 (Fifo.ripe_count q ~completed:49);
  for i = 0 to 99 do
    match Fifo.pop_front_ripe q ~completed:100 with
    | Some v -> Alcotest.(check int) "order preserved across growth" i v
    | None -> Alcotest.fail "element lost in growth"
  done;
  Alcotest.(check int) "empty" 0 (Fifo.length q)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bucketed_matches_naive;
    Alcotest.test_case "harvest is O(ripe), by work counter" `Quick
      test_harvest_is_o_ripe;
    Alcotest.test_case "harvest merges buckets newest-first" `Quick
      test_harvest_merge_order;
    QCheck_alcotest.to_alcotest prop_fifo_matches_model;
    Alcotest.test_case "fifo merge_ripe batches with limit" `Quick
      test_fifo_merge_ripe_batches;
    Alcotest.test_case "fifo ring wraparound" `Quick test_fifo_wraparound;
    Alcotest.test_case "fifo ring growth" `Quick test_fifo_growth;
  ]
