let test_schedule_order () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.Engine.schedule eng ~after:30 (note "c"));
  ignore (Sim.Engine.schedule eng ~after:10 (note "a"));
  ignore (Sim.Engine.schedule eng ~after:20 (note "b"));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_fifo_same_time () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule eng ~after:100 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_now_advances () =
  let eng = Sim.Engine.create () in
  let seen = ref (-1) in
  ignore (Sim.Engine.schedule eng ~after:500 (fun () -> seen := Sim.Engine.now eng));
  Sim.Engine.run eng;
  Alcotest.(check int) "now at event time" 500 !seen;
  Alcotest.(check int) "now after run" 500 (Sim.Engine.now eng)

let test_until_horizon () =
  let eng = Sim.Engine.create () in
  let ran = ref false in
  ignore (Sim.Engine.schedule eng ~after:1_000 (fun () -> ran := true));
  Sim.Engine.run ~until:999 eng;
  Alcotest.(check bool) "event beyond horizon not run" false !ran;
  Alcotest.(check int) "clock advanced to horizon" 999 (Sim.Engine.now eng);
  Sim.Engine.run ~until:1_001 eng;
  Alcotest.(check bool) "event runs later" true !ran

let test_cancel () =
  let eng = Sim.Engine.create () in
  let ran = ref false in
  let h = Sim.Engine.schedule eng ~after:10 (fun () -> ran := true) in
  Sim.Engine.cancel eng h;
  Sim.Engine.run eng;
  Alcotest.(check bool) "cancelled event skipped" false !ran

let test_stop () =
  let eng = Sim.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sim.Engine.schedule eng ~after:10 (fun () ->
           incr count;
           if !count = 3 then Sim.Engine.stop eng))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "stopped after third event" 3 !count;
  Alcotest.(check bool) "stopped flag" true (Sim.Engine.stopped eng)

let test_nested_scheduling () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule eng ~after:10 (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.Engine.schedule eng ~after:5 (fun () -> log := "inner" :: !log))));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "final time" 15 (Sim.Engine.now eng)

let test_negative_delay_rejected () =
  let eng = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Sim.Engine.schedule eng ~after:(-1) ignore))

let test_schedule_at_past_rejected () =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.schedule eng ~after:100 ignore);
  Sim.Engine.run eng;
  (try
     ignore (Sim.Engine.schedule_at eng ~time:50 ignore);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_every_periodic () =
  let eng = Sim.Engine.create () in
  let times = ref [] in
  Sim.Engine.every eng ~period:100 (fun () ->
      times := Sim.Engine.now eng :: !times;
      List.length !times < 4);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "periodic firings" [ 100; 200; 300; 400 ]
    (List.rev !times)

let test_every_phase () =
  let eng = Sim.Engine.create () in
  let times = ref [] in
  Sim.Engine.every eng ~period:100 ~phase:7 (fun () ->
      times := Sim.Engine.now eng :: !times;
      List.length !times < 3);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "phased firings" [ 7; 107; 207 ] (List.rev !times)

let test_executed_counter () =
  let eng = Sim.Engine.create () in
  for _ = 1 to 7 do
    ignore (Sim.Engine.schedule eng ~after:1 ignore)
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "executed" 7 (Sim.Engine.executed eng)

(* Regression: cancelled events stay in the heap (cancel is O(1)) but must
   not be reported as pending work. *)
let test_pending_excludes_cancelled () =
  let eng = Sim.Engine.create () in
  let h1 = Sim.Engine.schedule eng ~after:10 ignore in
  ignore (Sim.Engine.schedule eng ~after:20 ignore);
  ignore (Sim.Engine.schedule eng ~after:30 ignore);
  Alcotest.(check int) "three pending" 3 (Sim.Engine.pending eng);
  Sim.Engine.cancel eng h1;
  Alcotest.(check int) "cancelled one excluded" 2 (Sim.Engine.pending eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "drained" 0 (Sim.Engine.pending eng);
  Alcotest.(check int) "cancelled one never ran" 2 (Sim.Engine.executed eng)

(* Record the order in which [n] same-instant events fire under a
   tie-break policy. *)
let same_time_order ?tiebreak n =
  let eng = Sim.Engine.create ?tiebreak () in
  let order = ref [] in
  for i = 0 to n - 1 do
    ignore (Sim.Engine.schedule eng ~after:5 (fun () -> order := i :: !order))
  done;
  Sim.Engine.run eng;
  List.rev !order

let test_shuffle_tiebreak () =
  let fifo = same_time_order 12 in
  Alcotest.(check (list int)) "fifo = submission order"
    (List.init 12 Fun.id) fifo;
  (* Shuffling is deterministic in the seed... *)
  let s1 = same_time_order ~tiebreak:(Sim.Engine.Shuffle 1) 12 in
  let s1' = same_time_order ~tiebreak:(Sim.Engine.Shuffle 1) 12 in
  Alcotest.(check (list int)) "same seed, same order" s1 s1';
  (* ...still a permutation... *)
  Alcotest.(check (list int)) "a permutation"
    (List.init 12 Fun.id)
    (List.sort compare s1);
  (* ...and some seed actually perturbs the order. *)
  let perturbed = ref false in
  for seed = 1 to 10 do
    if same_time_order ~tiebreak:(Sim.Engine.Shuffle seed) 12 <> fifo then
      perturbed := true
  done;
  Alcotest.(check bool) "some seed perturbs same-instant order" true
    !perturbed

let test_shuffle_preserves_time_order () =
  let eng = Sim.Engine.create ~tiebreak:(Sim.Engine.Shuffle 3) () in
  let times = ref [] in
  for i = 0 to 19 do
    ignore
      (Sim.Engine.schedule eng ~after:(100 - (5 * (i mod 4))) (fun () ->
           times := Sim.Engine.now eng :: !times))
  done;
  Sim.Engine.run eng;
  let times = List.rev !times in
  Alcotest.(check bool) "virtual time still monotone" true
    (List.sort compare times = times)

let suite =
  [
    Alcotest.test_case "events run in time order" `Quick test_schedule_order;
    Alcotest.test_case "FIFO at equal times" `Quick test_fifo_same_time;
    Alcotest.test_case "clock advances" `Quick test_now_advances;
    Alcotest.test_case "run ~until horizon" `Quick test_until_horizon;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "negative delay rejected" `Quick
      test_negative_delay_rejected;
    Alcotest.test_case "schedule_at past rejected" `Quick
      test_schedule_at_past_rejected;
    Alcotest.test_case "every: periodic" `Quick test_every_periodic;
    Alcotest.test_case "every: phase" `Quick test_every_phase;
    Alcotest.test_case "executed counter" `Quick test_executed_counter;
    Alcotest.test_case "pending excludes cancelled" `Quick
      test_pending_excludes_cancelled;
    Alcotest.test_case "shuffle tie-break" `Quick test_shuffle_tiebreak;
    Alcotest.test_case "shuffle keeps time order" `Quick
      test_shuffle_preserves_time_order;
  ]
