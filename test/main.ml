let () =
  Alcotest.run "prudence-repro"
    [
      ("sim.heap", Test_heap.suite);
      ("sim.rng", Test_rng.suite);
      ("sim.engine", Test_engine.suite);
      ("sim.process", Test_process.suite);
      ("sim.simlock", Test_simlock.suite);
      ("sim.dlist", Test_dlist.suite);
      ("sim.deque", Test_deque.suite);
      ("sim.machine", Test_machine.suite);
      ("sim.series+stat", Test_series_stat.suite);
      ("mem.buddy", Test_buddy.suite);
      ("mem.pressure", Test_pressure.suite);
      ("rcu.cblist", Test_cblist.suite);
      ("rcu.gp", Test_rcu.suite);
      ("rcu.readers", Test_readers.suite);
      ("slab.size_class+costs", Test_size_class.suite);
      ("slab.frame", Test_frame.suite);
      ("slab.latq", Test_latq.suite);
      ("slab.slub", Test_slub.suite);
      ("slab.kmalloc", Test_kmalloc.suite);
      ("prudence", Test_prudence.suite);
      ("rcudata", Test_rcudata.suite);
      ("rcudata.tree", Test_rcutree.suite);
      ("trace", Test_trace.suite);
      ("faults", Test_faults.suite);
      ("chaos", Test_chaos.suite);
      ("metrics", Test_metrics.suite);
      ("stats", Test_stats.suite);
      ("workloads", Test_workloads.suite);
      ("bench.wallclock", Test_wallclock.suite);
      ("integration", Test_integration.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("determinism", Test_determinism.suite);
      ("properties", Test_properties.suite);
    ]
