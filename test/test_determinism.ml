(* Golden determinism: the same seed must reproduce experiment reports and
   the chaos matrix byte-for-byte. This pins two things at once — the
   simulation is genuinely deterministic, and the default [Fifo]
   tie-break leaves historical schedules untouched (the [Shuffle] policy
   is opt-in perturbation only). *)

let tiny =
  {
    Core.Experiments.default_params with
    Core.Experiments.scale = 0.03;
    cpus = 2;
  }

let render_reports reports =
  Format.asprintf "%a"
    (fun ppf rs -> Core.Metrics.Report.print_all ppf rs)
    reports

let test_experiment_report_golden () =
  let a = render_reports (Core.Experiments.run_costs tiny) in
  let b = render_reports (Core.Experiments.run_costs tiny) in
  Alcotest.(check string) "costs report byte-identical" a b;
  Alcotest.(check bool) "report is non-trivial" true (String.length a > 100)

let chaos_cfg scenario =
  {
    (Workloads.Chaos.default_config ~scenario) with
    Workloads.Chaos.cpus = 2;
    duration_ns = Sim.Clock.ms 20;
    total_pages = 4_096;
  }

(* Everything except the live [env] handle, which holds closures and is
   not comparable. *)
let chaos_fields (o : Workloads.Chaos.outcome) =
  let open Workloads.Chaos in
  ( ( o.label,
      o.scenario,
      o.survived,
      o.oom_at_ns,
      o.updates,
      o.stall_warnings,
      o.holdout_cpus,
      o.gp_p99_ns,
      o.grow_retries ),
    ( o.emergency_flushes,
      o.emergency_flushed_objs,
      o.ooms_delayed,
      o.max_backlog,
      o.injected_failures,
      o.flood_cbs,
      o.safety_violations,
      o.peak_used_mib,
      o.final_used_mib ) )

let test_chaos_matrix_golden () =
  List.iter
    (fun scenario ->
      let pair (x, y) = (chaos_fields x, chaos_fields y) in
      let a = pair (Workloads.Chaos.run_pair (chaos_cfg scenario)) in
      let b = pair (Workloads.Chaos.run_pair (chaos_cfg scenario)) in
      Alcotest.(check bool)
        (Workloads.Chaos.scenario_name scenario ^ " outcomes identical")
        true (a = b))
    [ Workloads.Chaos.Clean; Workloads.Chaos.Cb_flood ]

(* Installing the verification stack must not steer the simulation: a
   checked run and an unchecked run of the same case do the same work. *)
let test_oracle_is_pure_observation () =
  let base =
    {
      Check.Sweep.default_config with
      Check.Sweep.scenarios = [ Workloads.Chaos.Clean ];
      kinds = [ Workloads.Env.Prudence_alloc ];
      sweeps = 1;
      cpus = 2;
      duration_ns = Sim.Clock.ms 10;
      total_pages = 4_096;
    }
  in
  let case =
    {
      Check.Sweep.scenario = Workloads.Chaos.Clean;
      kind = Workloads.Env.Prudence_alloc;
      shuffle_seed = 5;
    }
  in
  let v1 = Check.Sweep.run_case base case in
  let v2 = Check.Sweep.run_case base case in
  Alcotest.(check int) "same updates across identical checked runs"
    v1.Check.Sweep.updates v2.Check.Sweep.updates;
  Alcotest.(check int) "same probe event count"
    v1.Check.Sweep.oracle_events v2.Check.Sweep.oracle_events

let suite =
  [
    Alcotest.test_case "experiment report golden" `Quick
      test_experiment_report_golden;
    Alcotest.test_case "chaos matrix golden" `Quick test_chaos_matrix_golden;
    Alcotest.test_case "checked runs reproduce" `Quick
      test_oracle_is_pure_observation;
  ]
