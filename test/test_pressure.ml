let make () =
  let b = Mem.Buddy.create ~total_pages:100 () in
  let p = Mem.Pressure.create b ~low_ratio:0.25 ~critical_ratio:0.10 () in
  (b, p)

let test_levels () =
  let b, p = make () in
  Alcotest.(check bool) "normal initially" true (Mem.Pressure.level p = Mem.Pressure.Normal);
  (* Use 76 pages -> 24 free <= 25 low watermark *)
  let blocks = List.init 76 (fun _ -> Mem.Buddy.alloc_exn b ~order:0) in
  Alcotest.(check bool) "low" true (Mem.Pressure.level p = Mem.Pressure.Low);
  let more = List.init 15 (fun _ -> Mem.Buddy.alloc_exn b ~order:0) in
  Alcotest.(check bool) "critical" true
    (Mem.Pressure.level p = Mem.Pressure.Critical);
  List.iter (Mem.Buddy.free b) (blocks @ more);
  Alcotest.(check bool) "normal again" true
    (Mem.Pressure.level p = Mem.Pressure.Normal)

let test_notifier_on_transition () =
  let b, p = make () in
  let log = ref [] in
  Mem.Pressure.on_level_change p (fun l -> log := l :: !log);
  let blocks = List.init 80 (fun _ -> Mem.Buddy.alloc_exn b ~order:0) in
  Mem.Pressure.poll p;
  Mem.Pressure.poll p;
  (* second poll: no change, no duplicate notification *)
  Alcotest.(check int) "one transition" 1 (List.length !log);
  List.iter (Mem.Buddy.free b) blocks;
  Mem.Pressure.poll p;
  Alcotest.(check int) "back transition" 2 (List.length !log);
  Alcotest.(check bool) "last is normal" true
    (List.hd !log = Mem.Pressure.Normal)

let test_transitions_bidirectional () =
  (* Walk the full ladder up and back down, polling at each boundary:
     every crossing must notify exactly once, in order. *)
  let b, p = make () in
  let log = ref [] in
  Mem.Pressure.on_level_change p (fun l -> log := l :: !log);
  let take n = List.init n (fun _ -> Mem.Buddy.alloc_exn b ~order:0) in
  let up_low = take 76 in
  (* 24 free <= 25 *)
  Mem.Pressure.poll p;
  let up_crit = take 15 in
  (* 9 free <= 10 *)
  Mem.Pressure.poll p;
  List.iter (Mem.Buddy.free b) up_crit;
  Mem.Pressure.poll p;
  List.iter (Mem.Buddy.free b) up_low;
  Mem.Pressure.poll p;
  Mem.Pressure.poll p;
  (* no change: no extra notification *)
  Alcotest.(check (list string)) "both directions, one event per crossing"
    [ "low"; "critical"; "low"; "normal" ]
    (List.rev_map (Format.asprintf "%a" Mem.Pressure.pp_level) !log)

let test_oom_chain () =
  let _b, p = make () in
  let calls = ref [] in
  Mem.Pressure.on_oom p (fun () ->
      calls := 1 :: !calls;
      false);
  Mem.Pressure.on_oom p (fun () ->
      calls := 2 :: !calls;
      true);
  Alcotest.(check bool) "retry requested" true
    (Mem.Pressure.handle_alloc_failure p);
  Alcotest.(check (list int)) "handlers in order" [ 1; 2 ] (List.rev !calls)

let test_oom_chain_runs_all_handlers () =
  (* An early success must not short-circuit later handlers: direct
     reclaim gives every registered reclaimer a chance to make progress. *)
  let _b, p = make () in
  let calls = ref [] in
  Mem.Pressure.on_oom p (fun () ->
      calls := 1 :: !calls;
      true);
  Mem.Pressure.on_oom p (fun () ->
      calls := 2 :: !calls;
      false);
  Mem.Pressure.on_oom p (fun () ->
      calls := 3 :: !calls;
      true);
  Alcotest.(check bool) "retry requested" true
    (Mem.Pressure.handle_alloc_failure p);
  Alcotest.(check (list int)) "all handlers ran, in order" [ 1; 2; 3 ]
    (List.rev !calls)

let test_oom_chain_all_fail () =
  let _b, p = make () in
  Mem.Pressure.on_oom p (fun () -> false);
  Alcotest.(check bool) "no retry" false (Mem.Pressure.handle_alloc_failure p)

let test_declare_oom_first_wins () =
  let _b, p = make () in
  Alcotest.(check bool) "no oom yet" false (Mem.Pressure.oom_hit p);
  Mem.Pressure.declare_oom p ~now:123;
  Mem.Pressure.declare_oom p ~now:456;
  Alcotest.(check (option int)) "first wins" (Some 123) (Mem.Pressure.oom_time p);
  Alcotest.(check bool) "oom hit" true (Mem.Pressure.oom_hit p)

let suite =
  [
    Alcotest.test_case "watermark levels" `Quick test_levels;
    Alcotest.test_case "notifier on transition only" `Quick
      test_notifier_on_transition;
    Alcotest.test_case "transitions both directions" `Quick
      test_transitions_bidirectional;
    Alcotest.test_case "oom handler chain" `Quick test_oom_chain;
    Alcotest.test_case "oom chain runs all handlers" `Quick
      test_oom_chain_runs_all_handlers;
    Alcotest.test_case "oom chain all fail" `Quick test_oom_chain_all_fail;
    Alcotest.test_case "declare_oom first wins" `Quick
      test_declare_oom_first_wins;
  ]
