let test_enqueue_advance_take () =
  let cbl = Rcu.Cblist.create () in
  let log = ref [] in
  let cb tag () = log := tag :: !log in
  Rcu.Cblist.enqueue cbl ~cookie:1 (cb "a");
  Rcu.Cblist.enqueue cbl ~cookie:1 (cb "b");
  Rcu.Cblist.enqueue cbl ~cookie:2 (cb "c");
  Alcotest.(check int) "waiting" 3 (Rcu.Cblist.waiting cbl);
  Alcotest.(check int) "none ready" 0 (Rcu.Cblist.ready cbl);
  Alcotest.(check int) "advance to 1 moves 2" 2
    (Rcu.Cblist.advance cbl ~completed:1);
  Alcotest.(check int) "ready" 2 (Rcu.Cblist.ready cbl);
  Alcotest.(check int) "still waiting" 1 (Rcu.Cblist.waiting cbl);
  ignore (Rcu.Cblist.drain cbl ~max:10 ~f:(fun f -> f ()));
  Alcotest.(check (list string)) "fifo invocation" [ "a"; "b" ] (List.rev !log)

let test_throttled_take () =
  let cbl = Rcu.Cblist.create () in
  for i = 1 to 25 do
    Rcu.Cblist.enqueue cbl ~cookie:1 (fun () -> ignore i)
  done;
  ignore (Rcu.Cblist.advance cbl ~completed:1);
  Alcotest.(check int) "first batch" 10
    (Rcu.Cblist.drain cbl ~max:10 ~f:(fun f -> f ()));
  Alcotest.(check int) "remaining ready" 15 (Rcu.Cblist.ready cbl);
  Alcotest.(check int) "second batch" 10
    (Rcu.Cblist.drain cbl ~max:10 ~f:(fun f -> f ()));
  Alcotest.(check int) "tail batch" 5
    (Rcu.Cblist.drain cbl ~max:10 ~f:(fun f -> f ()));
  Alcotest.(check int) "drained" 0 (Rcu.Cblist.total cbl)

let test_advance_partial () =
  let cbl = Rcu.Cblist.create () in
  Rcu.Cblist.enqueue cbl ~cookie:5 ignore;
  Rcu.Cblist.enqueue cbl ~cookie:7 ignore;
  Alcotest.(check int) "nothing ripe at 4" 0 (Rcu.Cblist.advance cbl ~completed:4);
  Alcotest.(check (option int)) "next cookie" (Some 5) (Rcu.Cblist.next_cookie cbl);
  Alcotest.(check int) "one ripe at 5" 1 (Rcu.Cblist.advance cbl ~completed:5);
  Alcotest.(check (option int)) "next cookie now 7" (Some 7)
    (Rcu.Cblist.next_cookie cbl);
  Alcotest.(check int) "rest at 9" 1 (Rcu.Cblist.advance cbl ~completed:9);
  Alcotest.(check (option int)) "no waiters" None (Rcu.Cblist.next_cookie cbl)

let test_empty () =
  let cbl = Rcu.Cblist.create () in
  Alcotest.(check int) "total" 0 (Rcu.Cblist.total cbl);
  Alcotest.(check int) "advance noop" 0 (Rcu.Cblist.advance cbl ~completed:100);
  Alcotest.(check int) "take noop" 0
    (Rcu.Cblist.drain cbl ~max:5 ~f:(fun f -> f ()))

let suite =
  [
    Alcotest.test_case "enqueue/advance/take" `Quick test_enqueue_advance_take;
    Alcotest.test_case "throttled take" `Quick test_throttled_take;
    Alcotest.test_case "partial advance by cookie" `Quick test_advance_partial;
    Alcotest.test_case "empty list" `Quick test_empty;
  ]
