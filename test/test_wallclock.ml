(* The perf harness's gating fields must be pure functions of the
   pinned configuration: two in-process runs of the same scenario have
   to produce identical deterministic counters (the [Exact] metrics
   committed as bench/BENCH_wallclock.json and gated in CI). Wall-clock
   readings are machine noise and deliberately not compared. *)

let counters (m : Wallclock.measurement) = m.Wallclock.c

let test_deterministic_fields () =
  let p =
    { Wallclock.default_params with Wallclock.scale = 0.01; cpus = 2 }
  in
  let run () = Wallclock.run_all ~scenarios:[ Wallclock.Endurance ] p in
  let ms1 = run () and ms2 = run () in
  Alcotest.(check int) "both allocators measured" 2 (List.length ms1);
  List.iter2
    (fun m1 m2 ->
      Alcotest.(check string)
        "same allocator order" m1.Wallclock.alloc_label
        m2.Wallclock.alloc_label;
      Alcotest.(check bool)
        (Printf.sprintf "deterministic counters identical (%s)"
           m1.Wallclock.alloc_label)
        true
        (counters m1 = counters m2))
    ms1 ms2

let test_exact_metrics_are_gated () =
  (* Every deterministic counter must be exported with the Exact
     direction and zero tolerance, so the CI regress gate refuses any
     drift; allocs-per-event gates direction-aware (Lower_better with
     slack); wall readings must stay Info (never gate). *)
  let p =
    { Wallclock.default_params with Wallclock.scale = 0.01; cpus = 2 }
  in
  let ms = Wallclock.run_all ~scenarios:[ Wallclock.Endurance ] p in
  let metrics = Wallclock.metrics ms in
  let exact, rest =
    List.partition
      (fun m -> m.Metrics.Report.direction = Metrics.Report.Exact)
      metrics
  in
  let lower, info =
    List.partition
      (fun m -> m.Metrics.Report.direction = Metrics.Report.Lower_better)
      rest
  in
  Alcotest.(check int) "7 exact counters per measurement" 14
    (List.length exact);
  List.iter
    (fun m ->
      Alcotest.(check (option (float 0.)))
        ("zero tolerance: " ^ m.Metrics.Report.name)
        (Some 0.) m.Metrics.Report.tolerance_pct)
    exact;
  Alcotest.(check int) "one Lower_better gate per measurement" 2
    (List.length lower);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("allocs_per_event gates with slack: " ^ m.Metrics.Report.name)
        true
        (String.ends_with ~suffix:".allocs_per_event" m.Metrics.Report.name
        && m.Metrics.Report.tolerance_pct
           = Some Wallclock.allocs_per_event_tolerance_pct))
    lower;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("wall reading is Info: " ^ m.Metrics.Report.name)
        true
        (m.Metrics.Report.direction = Metrics.Report.Info))
    info

let test_alloc_drift_gates () =
  (* An injected allocation regression past tolerance must classify as
     Regressed (fails CI); the same drift downward must be Improved. *)
  let module B = Stats.Bench_json in
  let cfg = { B.seed = 42; scale = 0.05; cpus = 8; runs = 1 } in
  let apev v =
    Metrics.Report.metric ~direction:Metrics.Report.Lower_better
      ~tolerance_pct:Wallclock.allocs_per_event_tolerance_pct
      "wallclock.endurance.prudence.allocs_per_event" v
  in
  let baseline = B.make ~config:cfg ~metrics:[ apev 100. ] in
  let gate current =
    match
      B.compare_runs ~baseline
        ~current:(B.make ~config:cfg ~metrics:[ apev current ])
        ()
    with
    | [ d ] -> d.B.status
    | ds -> Alcotest.failf "expected one drift, got %d" (List.length ds)
  in
  Alcotest.(check string) "within slack" "within"
    (B.status_name (gate 110.));
  Alcotest.(check string) "injected +30% alloc drift fails" "regressed"
    (B.status_name (gate 130.));
  Alcotest.(check string) "-30% improves, never fails" "improved"
    (B.status_name (gate 70.))

let suite =
  [
    Alcotest.test_case "perf counters are replay-stable" `Quick
      test_deterministic_fields;
    Alcotest.test_case "perf exports gate exact, wall as info" `Quick
      test_exact_metrics_are_gated;
    Alcotest.test_case "allocs-per-event drift gates direction-aware" `Quick
      test_alloc_drift_gates;
  ]
