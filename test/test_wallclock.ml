(* The perf harness's gating fields must be pure functions of the
   pinned configuration: two in-process runs of the same scenario have
   to produce identical deterministic counters (the [Exact] metrics
   committed as bench/BENCH_wallclock.json and gated in CI). Wall-clock
   readings are machine noise and deliberately not compared. *)

let counters (m : Wallclock.measurement) = m.Wallclock.c

let test_deterministic_fields () =
  let p =
    { Wallclock.default_params with Wallclock.scale = 0.01; cpus = 2 }
  in
  let run () = Wallclock.run_all ~scenarios:[ Wallclock.Endurance ] p in
  let ms1 = run () and ms2 = run () in
  Alcotest.(check int) "both allocators measured" 2 (List.length ms1);
  List.iter2
    (fun m1 m2 ->
      Alcotest.(check string)
        "same allocator order" m1.Wallclock.alloc_label
        m2.Wallclock.alloc_label;
      Alcotest.(check bool)
        (Printf.sprintf "deterministic counters identical (%s)"
           m1.Wallclock.alloc_label)
        true
        (counters m1 = counters m2))
    ms1 ms2

let test_exact_metrics_are_gated () =
  (* Every deterministic counter must be exported with the Exact
     direction and zero tolerance, so the CI regress gate refuses any
     drift; wall readings must stay Info (never gate). *)
  let p =
    { Wallclock.default_params with Wallclock.scale = 0.01; cpus = 2 }
  in
  let ms = Wallclock.run_all ~scenarios:[ Wallclock.Endurance ] p in
  let metrics = Wallclock.metrics ms in
  let exact, info =
    List.partition
      (fun m -> m.Metrics.Report.direction = Metrics.Report.Exact)
      metrics
  in
  Alcotest.(check int) "7 exact counters per measurement" 14
    (List.length exact);
  List.iter
    (fun m ->
      Alcotest.(check (option (float 0.)))
        ("zero tolerance: " ^ m.Metrics.Report.name)
        (Some 0.) m.Metrics.Report.tolerance_pct)
    exact;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("wall reading is Info: " ^ m.Metrics.Report.name)
        true
        (m.Metrics.Report.direction = Metrics.Report.Info))
    info

let suite =
  [
    Alcotest.test_case "perf counters are replay-stable" `Quick
      test_deterministic_fields;
    Alcotest.test_case "perf exports gate exact, wall as info" `Quick
      test_exact_metrics_are_gated;
  ]
