(* Cross-cutting property-based tests on the synchronization core. *)

open Test_util
module W = Workloads

(* The fundamental RCU contract: a callback enqueued at time T runs only
   after every read-side critical section active at T has ended. Random
   reader schedules + random enqueue points must never violate it. *)
let prop_callback_waits_for_overlapping_readers =
  QCheck.Test.make ~name:"call_rcu waits for all overlapping readers"
    ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 6)
           (pair (int_bound 5_000_000) (int_bound 8_000_000)))
        (int_bound 6_000_000))
    (fun (readers, enqueue_at) ->
      let env = make_env ~cpus:4 () in
      (* Reader i runs on cpu (i mod 3) + 1; the enqueue happens on cpu0. *)
      let violations = ref [] in
      let reader_windows = ref [] in
      List.iteri
        (fun i (start, len) ->
          let cpu = cpu env (1 + (i mod 3)) in
          Sim.Process.spawn env.eng (fun () ->
              Sim.Process.sleep env.eng start;
              Rcu.read_lock env.rcu cpu;
              let entered = Sim.Engine.now env.eng in
              Sim.Process.sleep env.eng (1 + len);
              Rcu.read_unlock env.rcu cpu;
              reader_windows :=
                (entered, Sim.Engine.now env.eng) :: !reader_windows))
        readers;
      let invoked_at = ref None in
      ignore
        (Sim.Engine.schedule env.eng ~after:enqueue_at (fun () ->
             Rcu.call_rcu env.rcu (cpu0 env) (fun () ->
                 invoked_at := Some (Sim.Engine.now env.eng))));
      Sim.Engine.run_until_quiet ~horizon:(Sim.Clock.s 2) env.eng;
      Sim.Engine.run ~until:(Sim.Clock.s 2) env.eng;
      (match !invoked_at with
      | None -> violations := "callback never ran" :: !violations
      | Some t ->
          List.iter
            (fun (entered, exited) ->
              (* overlapping: the section was active when the callback was
                 enqueued *)
              if entered <= enqueue_at && exited >= enqueue_at && t < exited
              then
                violations :=
                  Printf.sprintf
                    "callback at %d inside overlapping section [%d, %d]" t
                    entered exited
                  :: !violations)
            !reader_windows);
      !violations = [])

(* Rculist against a model association list. *)
let prop_rculist_matches_model =
  QCheck.Test.make ~name:"rculist behaves like an association list" ~count:60
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let env = make_env ~cpus:2 () in
      let readers = Rcu.Readers.create env.rcu in
      let backend = Prudence.backend (Prudence.create env.fenv env.rcu) in
      let cache =
        backend.Slab.Backend.create_cache ~name:"model" ~obj_size:64
      in
      let l = Rcudata.Rculist.create ~backend ~readers ~cache ~name:"m" in
      let c = cpu0 env in
      let model = ref [] in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              if Rcudata.Rculist.insert l c ~key:k ~value:k then
                model := (k, k) :: !model
          | 1 -> (
              match Rcudata.Rculist.update l c ~key:k ~value:(k * 2) with
              | `Updated ->
                  let rec upd = function
                    | [] -> []
                    | (k', _) :: rest when k' = k -> (k, k * 2) :: rest
                    | kv :: rest -> kv :: upd rest
                  in
                  model := upd !model
              | `Absent | `Oom -> ())
          | 2 ->
              if Rcudata.Rculist.delete l c ~key:k then begin
                let rec del = function
                  | [] -> []
                  | (k', _) :: rest when k' = k -> rest
                  | kv :: rest -> kv :: del rest
                in
                model := del !model
              end
          | _ -> (
              let got = Rcudata.Rculist.lookup l c ~key:k in
              let expect = List.assoc_opt k !model in
              if got <> expect then raise Exit))
        ops;
      List.length !model = Rcudata.Rculist.length l
      && List.for_all
           (fun (k, v) -> Rcudata.Rculist.lookup l c ~key:k = Some v)
           (* newest-shadows semantics: only check keys whose first binding
              is this one *)
           (List.filteri
              (fun i (k, _) ->
                not (List.exists (fun (k', _) -> k' = k)
                       (List.filteri (fun j _ -> j < i) !model)))
              !model))

(* NUMA: objects always return to their home node's slabs, wherever they
   are freed, and accounting stays exact with multiple nodes. *)
let test_numa_objects_return_home () =
  let env = make_env ~cpus:4 ~nodes:2 () in
  let slub = Slab.Slub.create env.fenv env.rcu in
  let cache = Slab.Slub.create_cache slub ~name:"numa" ~obj_size:512 in
  let c_node0 = cpu env 0 and c_node1 = cpu env 3 in
  Alcotest.(check int) "cpu0 on node0" 0 c_node0.Sim.Machine.node;
  Alcotest.(check int) "cpu3 on node1" 1 c_node1.Sim.Machine.node;
  (* Allocate enough on node 0 to go through several slabs. *)
  let objs =
    List.init 100 (fun _ ->
        Option.get (Slab.Slub.alloc slub cache c_node0))
  in
  List.iter
    (fun (o : Slab.Frame.objekt) ->
      Alcotest.(check int) "slab homed on node0" 0 o.Slab.Frame.parent.Slab.Frame.node_id)
    objs;
  (* Free them all from a node-1 CPU: flushes must route each object back
     to its node-0 slab. *)
  List.iter (Slab.Slub.free slub cache c_node1) objs;
  Slab.Frame.check_invariants cache;
  let node0 = cache.Slab.Frame.nodes.(0) and node1 = cache.Slab.Frame.nodes.(1) in
  let slabs_on n =
    Sim.Dlist.length n.Slab.Frame.full
    + Sim.Dlist.length n.Slab.Frame.partial
    + Sim.Dlist.length n.Slab.Frame.free_slabs
  in
  Alcotest.(check bool) "node0 owns the slabs" true (slabs_on node0 > 0);
  Alcotest.(check int) "node1 owns none" 0 (slabs_on node1);
  (* The freeing CPU's object cache legitimately retains some node-0
     objects; once those are consumed, a fresh allocation on node 1 must
     grow a node-1 slab (node lists are not shared). *)
  let pc = Slab.Frame.pcpu_for cache c_node1 in
  let leftovers = pc.Slab.Frame.ocache_n in
  let later =
    List.init (leftovers + 1) (fun _ ->
        Option.get (Slab.Slub.alloc slub cache c_node1))
  in
  let last = List.nth later leftovers in
  Alcotest.(check int) "new slab homed on node1" 1
    last.Slab.Frame.parent.Slab.Frame.node_id;
  Slab.Frame.check_invariants cache

let test_numa_prudence_latent_per_node () =
  let env = make_env ~cpus:4 ~nodes:2 () in
  let pr = Prudence.create env.fenv env.rcu in
  let cache = Prudence.create_cache pr ~name:"numa-l" ~obj_size:512 in
  let c0 = cpu env 0 and c3 = cpu env 3 in
  (* Push deferred objects past the latent-cache bound so they land in
     latent slabs; the latent-slab lists are per node. *)
  let alloc_on c n =
    List.init n (fun _ -> Option.get (Prudence.alloc pr ~may_wait:false cache c))
  in
  let a = alloc_on c0 80 and b = alloc_on c3 80 in
  List.iter (Prudence.free_deferred pr cache c0) a;
  List.iter (Prudence.free_deferred pr cache c3) b;
  Slab.Frame.check_invariants cache;
  let lat n =
    Sim.Dlist.length cache.Slab.Frame.nodes.(n).Slab.Frame.latent_slabs
  in
  Alcotest.(check bool) "latent slabs on both nodes" true
    (lat 0 > 0 && lat 1 > 0);
  (* After grace periods + settle everything reclaims. *)
  let finished = run_process env (fun () -> Prudence.settle pr) in
  check_completed "settle" finished;
  Alcotest.(check int) "all recycled" 0 (Prudence.latent_outstanding pr);
  Slab.Frame.check_invariants cache

(* Buddy allocator: any interleaving of alloc / free / would_satisfy
   keeps the block sets tiling the arena exactly (coverage, no overlap,
   split/merge conservation — delegated to the [Check.Audit] walker), and
   [would_satisfy] answers exactly as a real allocation would. *)
let prop_buddy_coverage_and_conservation =
  QCheck.Test.make ~name:"buddy: coverage + conservation under random ops"
    ~count:80
    QCheck.(list_of_size Gen.(1 -- 60) (pair bool (int_bound 3)))
    (fun ops ->
      let b = Mem.Buddy.create ~total_pages:64 () in
      let held = ref [] in
      let step (want_alloc, order) =
        (if want_alloc || !held = [] then begin
           let promised = Mem.Buddy.would_satisfy b ~order in
           match Mem.Buddy.alloc b ~order with
           | Some blk ->
               if not promised then raise Exit;
               held := blk :: !held
           | None -> if promised then raise Exit
         end
         else
           match !held with
           | blk :: rest ->
               Mem.Buddy.free b blk;
               held := rest
           | [] -> ());
        Check.Audit.buddy b = []
      in
      List.for_all step ops
      &&
      begin
        (* Conservation end state: freeing everything re-merges the whole
           arena into max-order blocks. *)
        List.iter (Mem.Buddy.free b) !held;
        Check.Audit.buddy b = []
        && Mem.Buddy.used_pages b = 0
        && Mem.Buddy.would_satisfy b ~order:(Mem.Buddy.largest_free_order b)
      end)

(* Segmented callback list: segment counts always sum, and no callback is
   ever lost or double-invoked across random enqueue / advance / drain
   interleavings. *)
let prop_cblist_conserves_callbacks =
  QCheck.Test.make ~name:"cblist: no callback lost across GP advance"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_bound 2) (int_bound 3)))
    (fun ops ->
      let cbl = Rcu.Cblist.create () in
      let enqueued = ref 0 and invoked = ref 0 and taken = ref 0 in
      let cookie = ref 1 and completed = ref 0 in
      let step (op, arg) =
        (match op with
        | 0 ->
            (* Enqueue with a non-decreasing cookie. *)
            cookie := !cookie + arg;
            incr enqueued;
            Rcu.Cblist.enqueue cbl ~cookie:!cookie (fun () -> incr invoked)
        | 1 ->
            completed := !completed + arg;
            ignore (Rcu.Cblist.advance cbl ~completed:!completed)
        | _ ->
            let n = Rcu.Cblist.drain cbl ~max:(1 + arg) ~f:(fun f -> f ()) in
            taken := !taken + n);
        Rcu.Cblist.waiting cbl + Rcu.Cblist.ready cbl = Rcu.Cblist.total cbl
        && Rcu.Cblist.total cbl + !taken = !enqueued
        && !invoked = !taken
      in
      List.for_all step ops
      &&
      begin
        (* Drain completely: everything enqueued must run exactly once. *)
        ignore (Rcu.Cblist.advance cbl ~completed:max_int);
        ignore (Rcu.Cblist.drain cbl ~max:max_int ~f:(fun f -> f ()));
        !invoked = !enqueued && Rcu.Cblist.total cbl = 0
      end)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_callback_waits_for_overlapping_readers;
    QCheck_alcotest.to_alcotest prop_rculist_matches_model;
    QCheck_alcotest.to_alcotest prop_buddy_coverage_and_conservation;
    QCheck_alcotest.to_alcotest prop_cblist_conserves_callbacks;
    Alcotest.test_case "numa: objects return home" `Quick
      test_numa_objects_return_home;
    Alcotest.test_case "numa: prudence latent per node" `Quick
      test_numa_prudence_latent_per_node;
  ]
